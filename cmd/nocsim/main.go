// Command nocsim runs a synthetic-traffic mesh simulation with a chosen
// arbitration policy and reports latency statistics. It is the quickest way
// to explore the simulator:
//
//	nocsim -size 8 -rate 0.13 -policy global-age -cycles 20000
//	nocsim -size 4 -policy rl-inspired -pattern hotspot
//	nocsim -size 16 -topology torus -rate 0.05 -shards 4
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mlnoc/internal/arb"
	"mlnoc/internal/cliutil"
	"mlnoc/internal/core"
	"mlnoc/internal/fault"
	"mlnoc/internal/nn"
	"mlnoc/internal/noc"
	"mlnoc/internal/obs"
	"mlnoc/internal/prof"
	"mlnoc/internal/trace"
	"mlnoc/internal/traffic"
)

func main() {
	size := flag.Int("size", 8, "mesh edge size (routers per side)")
	topology := flag.String("topology", "mesh", "topology: mesh (open) or torus (wraparound rings)")
	shards := flag.Int("shards", 1,
		"router shards stepped in parallel (bit-identical to sequential; >1 needs a shard-safe routing)")
	rate := flag.Float64("rate", 0.13, "injection rate (messages/node/cycle)")
	policy := flag.String("policy", "global-age",
		"arbitration policy: random, round-robin, islip, fifo, probdist, global-age, rl-inspired")
	pattern := flag.String("pattern", "uniform",
		"traffic pattern: uniform, transpose, bitcomp, hotspot, tornado")
	cycles := flag.Int64("cycles", 10000, "measured cycles")
	warmup := flag.Int64("warmup", 2000, "warmup cycles (stats discarded)")
	vcs := flag.Int("vcs", 3, "virtual channels per port")
	bufcap := flag.Int("bufcap", 8, "buffer capacity per VC (messages)")
	seed := flag.Int64("seed", 1, "random seed")
	nnPath := flag.String("nn", "", "run a saved agent network (gob) as the policy")
	metricsOut := flag.String("metrics-out", "",
		"write per-router/per-port obs counters (JSON) to this file")
	watchdog := flag.Int64("watchdog", 0,
		"flag head messages older than N cycles and N-cycle zero-delivery windows (0 = off)")
	faults := flag.Float64("faults", 0,
		"fraction of mesh links to kill a third into the measured run (0..1, connectivity-preserving)")
	faultSeed := flag.Int64("fault-seed", 0, "fault scenario seed (0 = use -seed)")
	traceOn := flag.Bool("trace", false,
		"attach the per-message lifecycle tracer and print a latency breakdown")
	traceOut := flag.String("trace-out", "",
		"write the trace as Chrome/Perfetto JSON to this file (implies -trace)")
	traceCSV := flag.String("trace-csv", "",
		"write the trace as compact CSV to this file (implies -trace)")
	traceSample := flag.Uint64("trace-sample", 1, "trace only every Nth message (1 = all)")
	var logCfg cliutil.LogConfig
	cliutil.AddLogFlags(flag.CommandLine, &logCfg)
	profCfg := prof.AddFlags(flag.CommandLine)
	flag.Parse()

	log := cliutil.SetupLogger("nocsim", &logCfg)
	log = log.With("corr_id", fmt.Sprintf("nocsim-%d-%d", os.Getpid(), *seed))
	profStop, profErr := prof.Start(*profCfg)
	if profErr != nil {
		cliutil.Fatal("nocsim", "%v", profErr)
	}
	defer profStop()
	var check cliutil.Check
	check.Positive("-size", int64(*size))
	check.OneOf("-topology", *topology, "mesh", "torus")
	if *topology == "torus" {
		check.AtLeast("-size", int64(*size), 3)
	}
	check.Positive("-shards", int64(*shards))
	check.Unit("-rate", *rate)
	check.NonNegative("-cycles", *cycles)
	check.NonNegative("-warmup", *warmup)
	check.Positive("-vcs", int64(*vcs))
	check.Positive("-bufcap", int64(*bufcap))
	check.NonNegative("-watchdog", *watchdog)
	check.Unit("-faults", *faults)
	check.AtLeastU("-trace-sample", *traceSample, 1)
	check.Exit("nocsim")
	cliutil.PrintSeed(os.Stdout, *seed)

	net, cores := noc.BuildMeshCores(noc.Config{
		Width: *size, Height: *size, VCs: *vcs, BufferCap: *bufcap,
		Torus: *topology == "torus",
	})
	net.SetShards(*shards)
	var p noc.Policy
	var err error
	if *nnPath != "" {
		p, err = loadAgent(*nnPath, *vcs, *seed)
	} else {
		p, err = makePolicy(*policy, *size, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	net.SetPolicy(p)
	if agent, ok := p.(*core.Agent); ok {
		net.OnCycle = agent.OnCycle
	}

	pat, err := makePattern(*pattern, *size)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var inj *fault.Injector
	if *faults > 0 {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed
		}
		spec := fault.Spec{
			KillFraction: *faults,
			KillAt:       *warmup + *cycles/3,
			Seed:         fseed,
		}
		if inj, err = spec.Equip(net); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	in := traffic.NewInjector(cores, pat, *rate, rand.New(rand.NewSource(*seed+1)))
	in.Classes = *vcs

	var suite *obs.Suite
	if *metricsOut != "" || *watchdog > 0 {
		cfg := obs.SuiteConfig{SampleEvery: 1}
		if *watchdog > 0 {
			cfg.Watchdog = &obs.WatchdogConfig{
				MaxHeadAge:     *watchdog,
				LivelockWindow: *watchdog,
				OnAlert: func(a obs.Alert) {
					log.Warn("watchdog alert", "kind", string(a.Kind), "alert", a.String())
				},
			}
		}
		suite = obs.Attach(net, cfg)
	}
	var tr *trace.Tracer
	if *traceOn || *traceOut != "" || *traceCSV != "" {
		tr = trace.Attach(net, trace.Config{SampleEvery: *traceSample})
	}

	res := traffic.Run(net, in, *warmup, *cycles)
	st := net.Stats()
	fmt.Printf("policy=%s pattern=%s topology=%s size=%dx%d rate=%.3f shards=%d\n",
		p.Name(), pat.Name(), *topology, *size, *size, *rate, net.Shards())
	fmt.Printf("  delivered %d msgs in %d cycles (%.3f msgs/node/cycle accepted)\n",
		res.Delivered, res.Cycles, float64(res.Delivered)/float64(res.Cycles)/float64(len(cores)))
	fmt.Printf("  latency: avg %.1f, max %.0f (generation to delivery)\n",
		res.AvgLatency, res.MaxLatency)
	fmt.Printf("  in-network latency: avg %.1f, avg hops %.2f\n",
		st.NetLatency.Mean(), st.HopLatency.Mean())
	if inj != nil {
		fs := inj.Stats()
		fmt.Printf("  faults: %d links killed, %d downtime cycles, %d requeued, %d reroutes, %d unreachable\n",
			fs.LinkKills, fs.DowntimeCycles, fs.Requeued, fs.Reroutes, fs.Unreachable)
	}
	if suite != nil {
		reportObs(suite, *metricsOut, *seed)
	}
	if tr != nil {
		reportTrace(tr, *traceOut, *traceCSV)
	}
}

// reportTrace prints the latency breakdown of the traced run and writes the
// requested export files. The trace spans the entire run, warmup included.
func reportTrace(tr *trace.Tracer, jsonOut, csvOut string) {
	fmt.Printf("  trace: %d events retained (%d recorded, %d evicted), sampling every %d msgs\n",
		tr.Len(), tr.Recorded(), tr.Dropped(), tr.SampleEvery())
	fmt.Print(trace.Analyze(tr).Render())
	write := func(path string, export func(f *os.File) error, hint string) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := export(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  (trace written to %s%s)\n", path, hint)
	}
	write(jsonOut, func(f *os.File) error { return trace.WriteChromeTrace(f, tr) },
		"; load in https://ui.perfetto.dev or chrome://tracing")
	write(csvOut, func(f *os.File) error { return trace.WriteCSV(f, tr) }, "")
}

// reportObs prints the observability summary and writes the JSON snapshot.
func reportObs(suite *obs.Suite, metricsOut string, seed int64) {
	snap := suite.Snapshot()
	snap.Seed = seed
	fmt.Printf("  obs: %d grants, %d blocked port-cycles, max head age %d\n",
		snap.TotalGrants(), snap.TotalBlockedCycles(), snap.MaxHeadAge())
	if snap.Delivered > 0 {
		fmt.Printf("  obs: latency p50 %.0f, p95 %.0f, p99 %.0f (since attach, warmup included)\n",
			snap.LatencyP50, snap.LatencyP95, snap.LatencyP99)
	}
	if w := suite.Watchdog; w != nil && w.Tripped() {
		fmt.Printf("  watchdog: %d alerts\n%s", len(w.Alerts()), w.Summary())
	}
	if metricsOut == "" {
		return
	}
	f, err := os.Create(metricsOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := snap.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("  (obs metrics written to %s)\n", metricsOut)
}

func makePolicy(name string, size int, seed int64) (noc.Policy, error) {
	switch name {
	case "random":
		return arb.NewRandom(rand.New(rand.NewSource(seed))), nil
	case "round-robin", "rr":
		return arb.NewRoundRobin(), nil
	case "islip":
		return arb.NewISLIP(2), nil
	case "fifo":
		return arb.NewFIFO(), nil
	case "probdist":
		return arb.NewProbDist(rand.New(rand.NewSource(seed))), nil
	case "global-age":
		return arb.NewGlobalAge(), nil
	case "rl-inspired":
		if size >= 8 {
			return core.NewRLInspiredMesh8x8(), nil
		}
		return core.NewRLInspiredMesh4x4(), nil
	}
	return nil, fmt.Errorf("unknown policy %q", name)
}

func makePattern(name string, size int) (traffic.Pattern, error) {
	switch name {
	case "uniform":
		return traffic.UniformRandom{}, nil
	case "transpose":
		return traffic.Transpose{}, nil
	case "bitcomp":
		return traffic.BitComplement{}, nil
	case "hotspot":
		return traffic.Hotspot{Spots: []int{size/2*size + size/2}, Fraction: 0.3}, nil
	case "tornado":
		return traffic.Tornado{Width: size}, nil
	}
	return nil, fmt.Errorf("unknown pattern %q", name)
}

// loadAgent wraps a saved network as an evaluation-only policy.
func loadAgent(path string, vcs int, seed int64) (noc.Policy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	net, err := nn.Load(f)
	if err != nil {
		return nil, err
	}
	spec := core.MeshSpec(vcs)
	if net.InputSize() != spec.InputSize() {
		return nil, fmt.Errorf("network input %d does not match %d-VC mesh spec (%d)",
			net.InputSize(), vcs, spec.InputSize())
	}
	return core.NewAgentWithNet(spec, net, seed), nil
}
