package main

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"

	"mlnoc/internal/core"
	"mlnoc/internal/telemetry"
)

// trainMetrics owns the mlnoc_train_* series a long run exports on the
// -metrics-addr sidecar. All handles are resolved at registration; the
// training-loop hooks are then pure atomic stores, preserving the
// telemetry-is-passive contract (the run is bit-identical with or without a
// scraper attached).
type trainMetrics struct {
	loss         *telemetry.Gauge
	epsilon      *telemetry.Gauge
	replayFill   *telemetry.Gauge
	steps        *telemetry.Gauge
	targetSyncs  *telemetry.Counter
	epoch        *telemetry.Gauge
	epochLatency *telemetry.Gauge
}

func newTrainMetrics(reg *telemetry.Registry) *trainMetrics {
	return &trainMetrics{
		loss:         reg.Gauge("mlnoc_train_loss", "mean squared TD error of the last recorded batch").With(),
		epsilon:      reg.Gauge("mlnoc_train_epsilon", "exploration rate at the last recorded batch").With(),
		replayFill:   reg.Gauge("mlnoc_train_replay_fill", "replay-memory occupancy fraction in [0,1]").With(),
		steps:        reg.Gauge("mlnoc_train_steps", "SGD steps taken so far").With(),
		targetSyncs:  reg.Counter("mlnoc_train_target_syncs", "target-network refreshes from the online network").With(),
		epoch:        reg.Gauge("mlnoc_train_epoch", "last completed training epoch (1-based)").With(),
		epochLatency: reg.Gauge("mlnoc_train_epoch_latency_cycles", "average delivered-message latency of the last epoch").With(),
	}
}

// install wires the metrics into a TrainTelemetry's live hooks, chaining any
// hooks already present (the slog epoch reporter).
func (m *trainMetrics) install(tel *core.TrainTelemetry) {
	prevBatch, prevSync, prevEpoch := tel.OnBatch, tel.OnSync, tel.OnEpoch
	tel.OnBatch = func(step int64, loss, fill, eps float64) {
		m.steps.SetInt(step)
		m.loss.Set(loss)
		m.replayFill.Set(fill)
		m.epsilon.Set(eps)
		if prevBatch != nil {
			prevBatch(step, loss, fill, eps)
		}
	}
	tel.OnSync = func(step int64) {
		m.targetSyncs.Inc()
		if prevSync != nil {
			prevSync(step)
		}
	}
	tel.OnEpoch = func(epoch int, avg float64) {
		m.epoch.SetInt(int64(epoch))
		m.epochLatency.Set(avg)
		if prevEpoch != nil {
			prevEpoch(epoch, avg)
		}
	}
}

// startMetricsSidecar serves /metrics and /debug/pprof on addr in the
// background for the lifetime of the run. It returns the bound address (so
// ":0" is usable in tests) and a shutdown func.
func startMetricsSidecar(addr string, reg *telemetry.Registry, log *slog.Logger) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Error("metrics sidecar stopped", "err", err)
		}
	}()
	log.Info("metrics sidecar listening", "addr", ln.Addr().String())
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
