// Command trainarb trains the deep Q-learning arbitration agent on a mesh
// under uniform-random traffic (the paper's Section 3.2 setup), reports the
// training curve, the agent's oldest-first accuracy, and the weight heatmap,
// and optionally saves the trained network.
//
//	trainarb -size 4 -cycles 40000 -out agent.gob
//
// It also implements the paper's offline workflow (Fig. 2): record a dataset
// of router states under a behaviour policy, then train from it offline.
//
//	trainarb -record states.gob -behavior round-robin -cycles 20000
//	trainarb -offline states.gob -epochs 20 -out agent.gob
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"mlnoc/internal/arb"
	"mlnoc/internal/cliutil"
	"mlnoc/internal/core"
	"mlnoc/internal/experiments"
	"mlnoc/internal/noc"
	"mlnoc/internal/prof"
	"mlnoc/internal/rl"
	"mlnoc/internal/telemetry"
	"mlnoc/internal/trace"
	"mlnoc/internal/traffic"
	"mlnoc/internal/viz"
)

func main() {
	size := flag.Int("size", 4, "mesh edge size")
	cycles := flag.Int64("cycles", 40000, "training cycles")
	rate := flag.Float64("rate", 0, "injection rate (0 = experiment default)")
	hidden := flag.Int("hidden", 15, "hidden layer width")
	lr := flag.Float64("lr", 0, "learning rate (0 = harness default)")
	batch := flag.Int("batch", 0, "replay batch size per cycle (0 = harness default)")
	eps := flag.Float64("eps", 0.001, "exploration rate floor")
	gamma := flag.Float64("gamma", 0, "discount factor (0 = default)")
	replay := flag.Int("replay", 0, "replay capacity (0 = default)")
	sync := flag.Int64("sync", 0, "target sync interval in steps (0 = default)")
	reward := flag.String("reward", "global_age", "reward: global_age, acc_latency, link_util")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "save trained network to this file (gob)")
	evalCycles := flag.Int64("eval", 6000, "evaluation cycles after training")
	evalRate := flag.Float64("evalrate", 0, "evaluation injection rate (0 = training rate)")
	record := flag.String("record", "", "record a dataset to this file instead of training")
	behavior := flag.String("behavior", "round-robin", "behaviour policy while recording")
	offline := flag.String("offline", "", "train offline from this dataset file")
	epochs := flag.Int("epochs", 20, "offline training epochs over the dataset")
	apuMode := flag.Bool("apu", false, "train the 504-input APU agent (on the bfs model) instead of a mesh agent")
	telemetryOut := flag.String("telemetry-out", "",
		"write training telemetry (training_curves.csv, per-epoch weight-heatmap CSVs) into this directory")
	heatmapEvery := flag.Int("heatmap-every", 0,
		"dump a weight-heatmap CSV every N epochs (0 = 4 dumps per run; needs -telemetry-out)")
	traceOn := flag.Bool("trace", false,
		"trace message lifecycles during training and print a latency breakdown")
	traceOut := flag.String("trace-out", "",
		"write the training-run trace as Chrome/Perfetto JSON to this file (implies -trace)")
	traceSample := flag.Uint64("trace-sample", 16, "trace only every Nth message")
	quantEval := flag.Bool("quant-eval", false,
		"after training, compile the frozen net to the INT8 engine and report action agreement, Q-value error and latency deltas")
	quantMinAgree := flag.Float64("quant-min-agree", 0,
		"with -quant-eval: exit nonzero when INT8/float action agreement falls below this fraction (0 = report only)")
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics and /debug/pprof on this address for the lifetime of the run (e.g. :9100)")
	var logCfg cliutil.LogConfig
	cliutil.AddLogFlags(flag.CommandLine, &logCfg)
	profCfg := prof.AddFlags(flag.CommandLine)
	flag.Parse()

	fail := func(format string, args ...any) {
		cliutil.Fatal("trainarb", format, args...)
	}
	log := cliutil.SetupLogger("trainarb", &logCfg)
	// One correlation ID per invocation, on every record: a multi-run sweep's
	// interleaved JSON logs separate cleanly by corr_id.
	log = log.With("corr_id", fmt.Sprintf("trainarb-%d-%d", os.Getpid(), *seed))
	profStop, err := prof.Start(*profCfg)
	if err != nil {
		fail("%v", err)
	}
	defer profStop()
	var check cliutil.Check
	check.Positive("-size", int64(*size))
	check.Positive("-cycles", *cycles)
	check.Unit("-rate", *rate)
	check.NonNegative("-eval", *evalCycles)
	check.NonNegative("-heatmap-every", int64(*heatmapEvery))
	check.AtLeastU("-trace-sample", *traceSample, 1)
	check.Exit("trainarb")
	cliutil.PrintSeed(os.Stdout, *seed)

	if *apuMode {
		if err := trainAPU(*cycles, *seed, *out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *record != "" {
		if err := recordDataset(*record, *behavior, *size, *rate, *cycles, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *offline != "" {
		if err := trainOffline(*offline, *size, *hidden, *epochs, *seed, *out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var kind rl.RewardKind
	switch *reward {
	case "global_age":
		kind = rl.RewardGlobalAge
	case "acc_latency":
		kind = rl.RewardAccLatency
	case "link_util":
		kind = rl.RewardLinkUtil
	default:
		fmt.Fprintf(os.Stderr, "unknown reward %q\n", *reward)
		os.Exit(2)
	}

	cfg := core.MeshTrainConfig{
		Width:       *size,
		Height:      *size,
		Rate:        *rate,
		Hidden:      *hidden,
		Epochs:      int(*cycles / 1000),
		EpochCycles: 1000,
		Reward:      kind,
		Seed:        *seed,
		DQL: rl.DQLConfig{
			LR:        *lr,
			BatchSize: *batch,
			Epsilon:   *eps,
			Gamma:     *gamma,
			ReplayCap: *replay,
			SyncEvery: *sync,
		},
	}
	cfg.Telemetry = buildTelemetry(*telemetryOut, *heatmapEvery, cfg.Epochs,
		*traceOn || *traceOut != "", *traceSample, fail)
	// Epoch progress goes through slog live (not printed after the fact), so
	// -log-format json turns a long run into machine-parseable progress.
	if cfg.Telemetry == nil {
		cfg.Telemetry = &core.TrainTelemetry{BatchEvery: 10}
	}
	cfg.Telemetry.OnEpoch = func(epoch int, avg float64) {
		log.Info("epoch complete", "epoch", epoch, "epochs", cfg.Epochs,
			"avg_latency", fmt.Sprintf("%.2f", avg))
	}
	if *metricsAddr != "" {
		_, stop, err := startMetricsSidecar(*metricsAddr, telemetry.Default, log)
		if err != nil {
			fail("%v", err)
		}
		defer stop()
		newTrainMetrics(telemetry.Default).install(cfg.Telemetry)
	}
	log.Info("training mesh agent", "size", fmt.Sprintf("%dx%d", *size, *size),
		"cycles", *cycles, "reward", *reward)
	tr := core.TrainMesh(cfg)
	fmt.Printf("decisions=%d explored=%.4f replay=%d steps=%d\n",
		tr.Agent.Decisions(), tr.Agent.ExplorationFraction(),
		tr.Agent.DQL.Replay.Len(), tr.Agent.DQL.Steps())
	reportTelemetry(tr, *telemetryOut, *traceOut, fail)

	tr.Agent.Freeze()
	h := core.NewHeatmap(tr.Spec, tr.Agent.Net())
	fmt.Print(viz.Heatmap(h.RowLabels, h.ColLabels, h.Abs))

	// Oldest-first accuracy: how often the frozen net picks the globally
	// oldest candidate, measured by shadowing a global-age evaluation run.
	if *evalRate > 0 {
		cfg.Rate = *evalRate
	}
	probe := &oldestProbe{inner: tr.Agent}
	res := core.EvaluateMeshPolicy(cfg, probe, 1000, *evalCycles)
	fmt.Printf("frozen NN eval: avg latency %.2f (oldest-pick accuracy %.1f%% of %d decisions)\n",
		res.AvgLatency, 100*probe.accuracy(), probe.total)

	for _, pol := range []noc.Policy{arb.NewFIFO(), arb.NewGlobalAge(), core.NewRLInspiredMesh4x4()} {
		pr := &oldestProbe{inner: pol}
		r := core.EvaluateMeshPolicy(cfg, pr, 1000, *evalCycles)
		fmt.Printf("%-16s avg latency %.2f (oldest accuracy %.1f%%)\n",
			pol.Name(), r.AvgLatency, 100*pr.accuracy())
	}

	if *quantEval {
		sc := experiments.Quick()
		sc.Seed = *seed
		sc.WarmupCycles = 1000
		sc.MeasureCycles = *evalCycles
		if sc.MeasureCycles < 1000 {
			sc.MeasureCycles = 1000
		}
		qr := experiments.QuantEval(tr.Agent, cfg, sc)
		fmt.Print(qr.Render())
		if *quantMinAgree > 0 && qr.Agreement < *quantMinAgree {
			fmt.Fprintf(os.Stderr,
				"trainarb: INT8 action agreement %.3f below required %.3f\n",
				qr.Agreement, *quantMinAgree)
			os.Exit(1)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tr.Agent.Net().Save(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("saved network to %s\n", *out)
	}
}

// buildTelemetry assembles the TrainMesh telemetry config from the CLI
// flags, or returns nil when no introspection was requested.
func buildTelemetry(dir string, heatmapEvery, epochs int, traceOn bool, sample uint64,
	fail func(string, ...any)) *core.TrainTelemetry {
	if dir == "" && !traceOn {
		return nil
	}
	// One curve point per 10 training batches keeps training_curves.csv a
	// few thousand rows on default-length runs.
	tel := &core.TrainTelemetry{BatchEvery: 10}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fail("%v", err)
		}
		every := heatmapEvery
		if every <= 0 {
			every = epochs / 4
			if every < 1 {
				every = 1
			}
		}
		tel.HeatmapEvery = every
		tel.HeatmapSink = func(epoch int, h *core.Heatmap) {
			// Signed weights, not magnitudes: the CSV is the Fig. 4/7 raw
			// artifact, and sign structure is what interpretation reads.
			csv := viz.MatrixCSV("feature", h.RowLabels, h.ColLabels, h.Signed)
			path := filepath.Join(dir, fmt.Sprintf("weights_epoch%03d.csv", epoch))
			if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
				fail("%v", err)
			}
		}
	}
	if traceOn {
		tel.Trace = &trace.Config{SampleEvery: sample}
	}
	return tel
}

// reportTelemetry prints the training-telemetry summary and writes the
// requested artifacts.
func reportTelemetry(tr *core.TrainResult, dir, traceOut string, fail func(string, ...any)) {
	if tt := tr.TrainTrace; tt != nil && tt.Points() > 0 {
		last := tt.Points() - 1
		fmt.Printf("telemetry: %d curve points, %d target syncs, final loss %.5f, final epsilon %.4f, replay fill %.0f%%\n",
			tt.Points(), len(tt.SyncSteps), tt.Loss[last], tt.Epsilon[last], 100*tt.ReplayFill[last])
		if dir != "" {
			var b strings.Builder
			b.WriteString("step,loss,replay_fill,epsilon\n")
			for i := range tt.Steps {
				fmt.Fprintf(&b, "%d,%.6f,%.4f,%.6f\n",
					tt.Steps[i], tt.Loss[i], tt.ReplayFill[i], tt.Epsilon[i])
			}
			if err := os.WriteFile(filepath.Join(dir, "training_curves.csv"),
				[]byte(b.String()), 0o644); err != nil {
				fail("%v", err)
			}
			var sb strings.Builder
			sb.WriteString("step\n")
			for _, s := range tt.SyncSteps {
				fmt.Fprintf(&sb, "%d\n", s)
			}
			if err := os.WriteFile(filepath.Join(dir, "target_syncs.csv"),
				[]byte(sb.String()), 0o644); err != nil {
				fail("%v", err)
			}
			fmt.Printf("telemetry written to %s\n", dir)
		}
	}
	if tr.Tracer != nil {
		fmt.Printf("trace: %d events retained (%d recorded, %d evicted)\n",
			tr.Tracer.Len(), tr.Tracer.Recorded(), tr.Tracer.Dropped())
		fmt.Print(trace.Analyze(tr.Tracer).Render())
		if traceOut != "" {
			f, err := os.Create(traceOut)
			if err != nil {
				fail("%v", err)
			}
			if err := trace.WriteChromeTrace(f, tr.Tracer); err != nil {
				f.Close()
				fail("%v", err)
			}
			if err := f.Close(); err != nil {
				fail("%v", err)
			}
			fmt.Printf("(trace written to %s; load in https://ui.perfetto.dev or chrome://tracing)\n", traceOut)
		}
	}
}

// oldestProbe wraps a policy and counts how often it grants the candidate
// with the largest global age.
type oldestProbe struct {
	inner noc.Policy
	hits  int64
	total int64
}

func (p *oldestProbe) Name() string { return p.inner.Name() + "+probe" }

func (p *oldestProbe) Select(ctx *noc.ArbContext, cands []noc.Candidate) int {
	choice := p.inner.Select(ctx, cands)
	oldest := cands[0].Msg.InjectCycle
	for _, c := range cands[1:] {
		if c.Msg.InjectCycle < oldest {
			oldest = c.Msg.InjectCycle
		}
	}
	p.total++
	if cands[choice].Msg.InjectCycle == oldest {
		p.hits++
	}
	return choice
}

func (p *oldestProbe) accuracy() float64 {
	if p.total == 0 {
		return 0
	}
	return float64(p.hits) / float64(p.total)
}

// recordDataset runs the Fig. 2 data-collection phase: simulate the mesh
// under a behaviour policy and dump the <s,a,r,s'> tuples.
func recordDataset(path, behavior string, size int, rate float64, cycles, seed int64) error {
	var beh noc.Policy
	switch behavior {
	case "round-robin", "rr":
		beh = arb.NewRoundRobin()
	case "fifo":
		beh = arb.NewFIFO()
	case "random":
		beh = arb.NewRandom(rand.New(rand.NewSource(seed)))
	case "global-age":
		beh = arb.NewGlobalAge()
	default:
		return fmt.Errorf("unknown behaviour policy %q", behavior)
	}
	spec := core.MeshSpec(3)
	rec := core.NewRecorder(spec, beh)
	if rate == 0 {
		rate = 0.23
	}
	net, cores := noc.BuildMeshCores(noc.Config{Width: size, Height: size, VCs: 3, BufferCap: 1})
	net.SetPolicy(rec)
	net.OnCycle = rec.OnCycle
	in := traffic.NewInjector(cores, traffic.UniformRandom{}, rate,
		rand.New(rand.NewSource(seed+1)))
	in.Classes = 3
	for i := int64(0); i < cycles; i++ {
		in.Tick()
		net.Step()
	}
	rec.Flush()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rec.Data.Save(f); err != nil {
		return err
	}
	fmt.Printf("recorded %d experiences under %s to %s\n", rec.Data.Len(), beh.Name(), path)
	return nil
}

// trainOffline trains a fresh agent network from a recorded dataset.
func trainOffline(path string, size, hidden, epochs int, seed int64, out string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	data, err := rl.LoadDataset(f)
	f.Close()
	if err != nil {
		return err
	}
	spec := core.MeshSpec(3)
	if spec.InputSize() != data.StateSize {
		return fmt.Errorf("dataset state size %d does not match the mesh spec %d",
			data.StateSize, spec.InputSize())
	}
	agent := core.NewAgent(spec, core.AgentConfig{
		Hidden: hidden,
		Seed:   seed,
		DQL:    rl.DQLConfig{LR: 0.05, Gamma: 0.1, SyncEvery: 2000},
	})
	fmt.Printf("offline training on %d experiences for %d epochs...\n", data.Len(), epochs)
	td := agent.DQL.TrainOffline(rand.New(rand.NewSource(seed+9)), data, epochs)
	fmt.Printf("final epoch mean TD error: %.5f\n", td)
	agent.Freeze()
	h := core.NewHeatmap(spec, agent.Net())
	fmt.Print(viz.Heatmap(h.RowLabels, h.ColLabels, h.Abs))
	_ = size
	if out != "" {
		g, err := os.Create(out)
		if err != nil {
			return err
		}
		defer g.Close()
		if err := agent.Net().Save(g); err != nil {
			return err
		}
		fmt.Printf("saved network to %s\n", out)
	}
	return nil
}

// trainAPU trains the paper's 504-input agent on the APU system and saves it.
func trainAPU(cycles, seed int64, out string) error {
	sc := experiments.Quick()
	sc.TrainCycles = cycles
	sc.Seed = seed
	fmt.Printf("training the APU agent for %d cycles on the bfs model...\n", cycles)
	agent := experiments.TrainAPU(sc)
	agent.Freeze()
	fmt.Printf("decisions: %d\n", agent.Decisions())
	fmt.Print(experiments.RenderAPUHeatmap(experiments.APUHeatmapFromAgent(agent)))
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := agent.Net().Save(f); err != nil {
			return err
		}
		fmt.Printf("saved network to %s\n", out)
	}
	return nil
}
