// Command simd is the simulation-as-a-service daemon: it serves the
// deterministic experiment engine over HTTP with a job queue, a bounded
// worker pool and a content-hash result cache.
//
// Usage:
//
//	simd [-addr :8723] [-workers N] [-queue N] [-cache-entries N]
//	     [-cache-dir DIR] [-watchdog N] [-smoke]
//
// Endpoints:
//
//	POST /jobs              submit a JSON job spec (202, or 200 on cache hit)
//	GET  /jobs              list jobs
//	GET  /jobs/{id}         status + progress
//	GET  /jobs/{id}/result  result payload (rendered tables + CSV artifacts)
//	GET  /jobs/{id}/stream  live SSE feed (progress, obs snapshots, alerts)
//	POST /jobs/{id}/cancel  cancel a queued or running job
//	GET  /healthz           liveness
//	GET  /readyz            readiness (drain / queue / watchdog state)
//	GET  /metrics           Prometheus/OpenMetrics exposition
//	GET  /dashboard         self-contained live HTML dashboard
//
// The first SIGINT/SIGTERM drains gracefully (running jobs finish, queued
// jobs are cancelled, new submissions get 503); a second signal cancels
// running jobs too.
//
// -smoke starts the daemon on a loopback port, submits a tiny deterministic
// sweep twice, verifies the second submission is a byte-identical cache hit,
// checks /healthz, and exits — the self-contained end-to-end check used by
// `make serve-smoke` and CI.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mlnoc/internal/cliutil"
	"mlnoc/internal/obs"
	"mlnoc/internal/serve"
	"mlnoc/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8723", "HTTP listen address")
	workers := flag.Int("workers", 0, "max simultaneously running jobs (0 = NumCPU)")
	queueDepth := flag.Int("queue", 64, "max queued jobs before submissions get 503")
	cacheEntries := flag.Int("cache-entries", 128, "in-memory result cache size (jobs)")
	cacheDir := flag.String("cache-dir", "", "spill results to this directory (survives restarts)")
	watchdog := flag.Int64("watchdog", 0,
		"attach a watchdog to every job's cells: flag head messages older than N cycles and N-cycle zero-delivery windows (0 = off)")
	smoke := flag.Bool("smoke", false, "run the self-contained smoke check and exit")
	var logCfg cliutil.LogConfig
	cliutil.AddLogFlags(flag.CommandLine, &logCfg)
	flag.Parse()

	log := cliutil.SetupLogger("simd", &logCfg)
	var check cliutil.Check
	check.NonNegative("-workers", int64(*workers))
	check.Positive("-queue", int64(*queueDepth))
	check.Positive("-cache-entries", int64(*cacheEntries))
	check.NonNegative("-watchdog", *watchdog)
	check.Exit("simd")

	if *cacheDir != "" {
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			cliutil.Fatal("simd", "cache dir: %v", err)
		}
	}

	cfg := serve.Config{
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		CacheEntries: *cacheEntries,
		CacheDir:     *cacheDir,
		Logger:       log,
		Registry:     telemetry.Default,
	}
	if *watchdog > 0 {
		cfg.Watchdog = &obs.WatchdogConfig{
			MaxHeadAge:     *watchdog,
			LivelockWindow: *watchdog,
		}
	}
	srv := serve.New(cfg)

	if *smoke {
		os.Exit(runSmoke(srv))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cliutil.Fatal("simd", "listen: %v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			cliutil.Fatal("simd", "serve: %v", err)
		}
	}()
	log.Info("listening", "addr", ln.Addr().String(),
		"workers", cfg.Workers, "queue", cfg.QueueDepth)

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	<-sigs
	log.Info("draining: running jobs finish, signal again to cancel them")
	go func() {
		<-sigs
		log.Warn("cancelling running jobs")
		srv.Kill()
	}()
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	log.Info("drained")
}

// smokeSpec is a deliberately tiny deterministic sweep: every workload in the
// catalog at 10% load for a few hundred cycles — seconds of work, stable
// output.
const smokeSpec = `{"type":"sweep","sweep":{"experiment":"ablation"},` +
	`"scale":{"op_scale":0.1,"warmup_cycles":200,"measure_cycles":400}}`

// runSmoke drives the daemon end-to-end over real HTTP and real simulation:
// submit the same job twice, require the second to be an instant cache hit
// with a byte-identical payload, and check the health endpoints.
func runSmoke(srv *serve.Server) int {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "smoke: listen: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "smoke: FAIL: "+format+"\n", args...)
		return 1
	}

	for _, path := range []string{"/healthz", "/readyz"} {
		code, body := httpGet(base + path)
		if code != http.StatusOK {
			return fail("%s: %d %s", path, code, body)
		}
	}

	code, doc := submit(base)
	if code != http.StatusAccepted {
		return fail("first submit: code %d, want 202", code)
	}
	fmt.Printf("smoke: submitted %s (hash %.12s...), waiting\n", doc.ID, doc.Hash)
	start := time.Now()
	for {
		code, st := status(base, doc.ID)
		if code != http.StatusOK {
			return fail("status %s: code %d", doc.ID, code)
		}
		if st.State == serve.StateDone {
			break
		}
		if st.State == serve.StateFailed || st.State == serve.StateCancelled {
			return fail("job ended %s: %s", st.State, st.Error)
		}
		if time.Since(start) > 2*time.Minute {
			return fail("job still %s after %s", st.State, time.Since(start))
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("smoke: %s done in %s\n", doc.ID, time.Since(start).Round(time.Millisecond))

	_, first := httpGet(base + "/jobs/" + doc.ID + "/result")

	code2, doc2 := submit(base)
	if code2 != http.StatusOK {
		return fail("second submit: code %d, want 200 (cached)", code2)
	}
	if !doc2.Cached {
		return fail("second submission of the identical job was not served from cache")
	}
	_, second := httpGet(base + "/jobs/" + doc2.ID + "/result")
	if !bytes.Equal(first, second) {
		return fail("cache hit payload differs from the original result")
	}
	fmt.Printf("smoke: cache hit verified, %d-byte payload byte-identical\n", len(second))

	code, metrics := httpGet(base + "/metrics")
	if code != http.StatusOK {
		return fail("/metrics: code %d", code)
	}
	// The exposition must lint against the strict parser and cover every
	// subsystem: jobs, HTTP routes, pool, cache, watchdog.
	if err := telemetry.Lint(string(metrics)); err != nil {
		return fail("/metrics is not valid exposition text: %v\n%s", err, metrics)
	}
	for _, want := range []string{
		"mlnoc_jobs_submitted_total 2",
		`mlnoc_jobs_finished_total{state="done",type="sweep"} 2`,
		"mlnoc_cache_hits_total 1",
		"mlnoc_cache_misses_total 1",
		"mlnoc_cache_evictions_total 0",
		"mlnoc_cache_spills_total 0",
		"mlnoc_pool_workers",
		"mlnoc_queue_depth 0",
		"mlnoc_draining 0",
		`mlnoc_job_latency_seconds_count{type="sweep"} 1`,
		`mlnoc_http_request_duration_seconds_count{route="submit"} 2`,
		`mlnoc_watchdog_alerts_total{kind="starvation"} 0`,
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			return fail("/metrics missing %q:\n%s", want, metrics)
		}
	}
	fmt.Println("smoke: /metrics lints and covers jobs, http, pool, cache, watchdog")

	code, dash := httpGet(base + "/dashboard")
	if code != http.StatusOK || !bytes.Contains(dash, []byte("<!DOCTYPE html>")) {
		return fail("/dashboard: code %d, want 200 with HTML", code)
	}
	fmt.Printf("smoke: /dashboard served (%d bytes)\n", len(dash))
	fmt.Println("smoke: PASS")
	return 0
}

func submit(base string) (int, serve.StatusDoc) {
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader([]byte(smokeSpec)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "smoke: submit: %v\n", err)
		return 0, serve.StatusDoc{}
	}
	defer resp.Body.Close()
	var doc serve.StatusDoc
	_ = json.NewDecoder(resp.Body).Decode(&doc)
	return resp.StatusCode, doc
}

func status(base, id string) (int, serve.StatusDoc) {
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		return 0, serve.StatusDoc{}
	}
	defer resp.Body.Close()
	var doc serve.StatusDoc
	_ = json.NewDecoder(resp.Body).Decode(&doc)
	return resp.StatusCode, doc
}

func httpGet(url string) (int, []byte) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, []byte(err.Error())
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}
