// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-scale quick|full] [-seed N] [-no-nn] <experiment>
//
// where <experiment> is one of: fig4, fig5, fig7, fig9, fig10, fig11, fig12,
// fig13, table1, table2, table3, ablation, starvation, faults, hillclimb,
// quant, scaling, all.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"

	"mlnoc/internal/cliutil"
	"mlnoc/internal/core"
	"mlnoc/internal/experiments"
	"mlnoc/internal/obs"
	"mlnoc/internal/prof"
	"mlnoc/internal/synfull"
	"mlnoc/internal/trace"
	"mlnoc/internal/viz"
)

func main() {
	scale := flag.String("scale", "quick", "experiment scale: quick or full")
	seed := flag.Int64("seed", 1, "random seed")
	noNN := flag.Bool("no-nn", false, "skip NN training in APU sweeps (faster)")
	csvDir := flag.String("csv", "", "also write results as CSV files into this directory")
	metricsOut := flag.String("metrics-out", "",
		"write per-cell obs snapshots (JSON) of the APU sweeps to this file")
	watchdog := flag.Int64("watchdog", 0,
		"attach a watchdog to every sweep cell: flag head messages older than N cycles and N-cycle zero-delivery windows (0 = off)")
	progress := flag.Bool("progress", false, "print sweep cell progress to stderr")
	traceDir := flag.String("trace-dir", "",
		"write one Chrome/Perfetto trace JSON per APU sweep cell into this directory")
	traceSample := flag.Uint64("trace-sample", 64, "trace only every Nth message per cell")
	flag.StringVar(&scalingSizes, "scaling-sizes", "",
		"scaling experiment: comma-separated topology edge sizes (default 8,16,32)")
	flag.StringVar(&scalingShards, "scaling-shards", "",
		"scaling experiment: comma-separated shard counts (default 1,2,4)")
	flag.BoolVar(&scalingTorus, "scaling-torus", false,
		"scaling experiment: wrap the topology into a 2D torus")
	quantMinAgree := flag.Float64("quant-min-agree", 0,
		"quant experiment: exit nonzero when INT8/float action agreement falls below this fraction (0 = report only)")
	var logCfg cliutil.LogConfig
	cliutil.AddLogFlags(flag.CommandLine, &logCfg)
	flag.Usage = usage
	profCfg := prof.AddFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	log := cliutil.SetupLogger("experiments", &logCfg)
	var check cliutil.Check
	check.NonNegative("-watchdog", *watchdog)
	check.AtLeastU("-trace-sample", *traceSample, 1)
	check.OneOf("-scale", *scale, "quick", "full")
	check.Exit("experiments")
	profStop, err := prof.Start(*profCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	defer profStop()

	var sc experiments.Scale
	if *scale == "full" {
		sc = experiments.Full()
	} else {
		sc = experiments.Quick()
	}
	sc.Seed = *seed
	withNN := !*noNN
	cliutil.PrintSeed(os.Stdout, sc.Seed)

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	what := strings.ToLower(flag.Arg(0))
	// One correlation ID per invocation on every record, mirroring the
	// daemon's per-job IDs: interleaved JSON logs from a batch of runs
	// separate cleanly by corr_id.
	log = log.With("corr_id", fmt.Sprintf("experiments-%s-%d-%d", what, os.Getpid(), *seed))

	tel := buildTelemetry(*metricsOut, *watchdog, *progress, *traceDir, *traceSample, log)
	if tel != nil && tel.Registry != nil {
		tel.Registry.SetSeed(*seed)
	}

	run(what, sc, withNN, *csvDir, tel, *quantMinAgree)

	if tel != nil && tel.Registry != nil && *metricsOut != "" {
		writeMetrics(*metricsOut, tel.Registry)
	}
	if tel != nil && tel.Registry != nil {
		for _, a := range tel.Registry.Alerts() {
			log.Warn("watchdog alert", "alert", a)
		}
	}
}

// buildTelemetry assembles the sweep telemetry from the observability flags,
// or returns nil when none are set.
func buildTelemetry(metricsOut string, watchdog int64, progress bool,
	traceDir string, traceSample uint64, log *slog.Logger) *experiments.Telemetry {
	if metricsOut == "" && watchdog == 0 && !progress && traceDir == "" {
		return nil
	}
	tel := &experiments.Telemetry{}
	if metricsOut != "" || watchdog != 0 {
		tel.Registry = obs.NewRegistry()
	}
	if watchdog > 0 {
		tel.Watchdog = &obs.WatchdogConfig{
			MaxHeadAge:     watchdog,
			LivelockWindow: watchdog,
		}
	}
	if progress {
		tel.Progress = func(done, total int, label string) {
			log.Info("progress", "done", done, "total", total, "cell", label)
		}
	}
	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tel.Trace = &trace.Config{SampleEvery: traceSample}
		tel.TraceSink = func(label string, tr *trace.Tracer) {
			// Labels are "workload/policy"; flatten for the filesystem.
			name := strings.NewReplacer("/", "_", " ", "_").Replace(label) + ".trace.json"
			f, err := os.Create(traceDir + string(os.PathSeparator) + name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			if err := trace.WriteChromeTrace(f, tr); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			log.Info("trace written", "file", name, "events", tr.Len())
		}
	}
	return tel
}

func writeMetrics(path string, reg *obs.Registry) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := reg.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("(obs metrics written to %s: %d runs)\n", path, reg.Len())
}

// writeCSV writes one CSV artifact, reporting the path.
func writeCSV(dir, name, content string) {
	if dir == "" {
		return
	}
	path := dir + string(os.PathSeparator) + name
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("(csv written to %s)\n", path)
}

func run(what string, sc experiments.Scale, withNN bool, csvDir string, tel *experiments.Telemetry, quantMinAgree float64) {
	switch what {
	case "fig4":
		r := experiments.MeshStudy(4, sc)
		fmt.Print(r.RenderHeatmap())
		writeCSV(csvDir, "fig4_heatmap.csv", r.HeatmapCSV())
	case "fig5":
		for _, size := range []int{4, 8} {
			r := experiments.MeshStudy(size, sc)
			fmt.Print(r.Render())
			fmt.Println()
			writeCSV(csvDir, fmt.Sprintf("fig5_%dx%d.csv", size, size), r.CSV())
		}
	case "fig7":
		h := experiments.APUHeatmap(sc)
		fmt.Print(experiments.RenderAPUHeatmap(h))
		writeCSV(csvDir, "fig7_heatmap.csv", viz.HeatmapCSV(h.RowLabels, h.ColLabels, h.Abs))
	case "fig9":
		r := experiments.ExecSweepT(sc, withNN, tel)
		fmt.Print(r.RenderAvg())
		writeCSV(csvDir, "fig9_avg.csv", r.CSVAvg())
	case "fig10":
		r := experiments.ExecSweepT(sc, withNN, tel)
		fmt.Print(r.RenderTail())
		writeCSV(csvDir, "fig10_tail.csv", r.CSVTail())
	case "fig9+10", "exec":
		r := experiments.ExecSweepT(sc, withNN, tel)
		fmt.Print(r.RenderAvg())
		fmt.Println()
		fmt.Print(r.RenderTail())
		writeCSV(csvDir, "fig9_avg.csv", r.CSVAvg())
		writeCSV(csvDir, "fig10_tail.csv", r.CSVTail())
	case "fig11":
		r := experiments.MixedWorkloadsT(sc, withNN, tel)
		fmt.Print(r.Render())
		writeCSV(csvDir, "fig11_mixes.csv", r.CSV())
	case "fig12":
		r := experiments.RewardCurves(sc)
		fmt.Print(r.Render())
		writeCSV(csvDir, "fig12_rewards.csv", r.CSV())
	case "fig13":
		r := experiments.FeatureCurves(sc)
		fmt.Print(r.Render())
		writeCSV(csvDir, "fig13_features.csv", r.CSV())
	case "table1":
		fmt.Print(renderTable1())
	case "table2":
		fmt.Print(renderTable2())
	case "table3":
		r := experiments.Table3()
		fmt.Print(r.Render())
		writeCSV(csvDir, "table3.csv", r.CSV())
	case "ablation":
		r := experiments.AblationT(sc, tel)
		fmt.Print(r.Render())
		writeCSV(csvDir, "ablation.csv", r.CSV())
	case "starvation":
		r := experiments.Starvation(sc)
		fmt.Print(r.Render())
		writeCSV(csvDir, "starvation.csv", r.CSV())
	case "faults":
		r := experiments.FaultSweep(sc, tel)
		fmt.Print(r.Render())
		writeCSV(csvDir, "faults_mesh.csv", r.CSVMesh())
		writeCSV(csvDir, "faults_apu.csv", r.CSVAPU())
	case "fairness":
		r := experiments.Fairness(sc)
		fmt.Print(r.Render())
		writeCSV(csvDir, "fairness.csv", r.CSV())
	case "qtable":
		fmt.Print(experiments.QTableStudy(sc).Render())
	case "bufablation":
		fmt.Print(experiments.BufferAblation(sc).Render())
	case "tiebreak":
		fmt.Print(experiments.TieBreakAblation(sc).Render())
	case "derive":
		fmt.Print(experiments.DeriveReport(sc))
	case "flitcheck":
		r := experiments.FlitCheck(sc)
		fmt.Print(r.Render())
		writeCSV(csvDir, "flitcheck.csv", r.CSV())
	case "hillclimb":
		fmt.Print(experiments.HillClimbReport(sc))
	case "scaling":
		r, err := experiments.ScalingStudy(
			parseIntList("-scaling-sizes", scalingSizes),
			parseIntList("-scaling-shards", scalingShards),
			scalingTorus, sc)
		if err != nil {
			// The study refuses to report if any shard count diverged from
			// the sequential run — that is an engine bug, not a user error.
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(r.Render())
		writeCSV(csvDir, "scaling_throughput.csv", r.CSV())
		writeCSV(csvDir, "scaling_invariant.csv", r.InvariantCSV())
	case "quant":
		r := experiments.QuantStudy(4, sc)
		fmt.Print(r.Render())
		writeCSV(csvDir, "quant_fidelity.csv", r.CSV())
		if quantMinAgree > 0 && r.Agreement < quantMinAgree {
			fmt.Fprintf(os.Stderr, "quant: INT8 action agreement %.3f below required %.3f\n",
				r.Agreement, quantMinAgree)
			os.Exit(1)
		}
	case "all":
		for _, w := range []string{
			"table1", "table2", "table3", "fig4", "fig5", "fig7",
			"fig9+10", "fig11", "fig12", "fig13", "ablation", "starvation",
			"fairness", "faults", "qtable", "flitcheck", "bufablation", "tiebreak",
			"derive", "hillclimb", "quant",
		} {
			fmt.Printf("==== %s ====\n", w)
			run(w, sc, withNN, csvDir, tel, quantMinAgree)
			fmt.Println()
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", what)
		usage()
		os.Exit(2)
	}
}

// Scaling-experiment knobs; package-level because run is recursive for "all"
// and the scaling flags only matter to one subcommand.
var (
	scalingSizes  string
	scalingShards string
	scalingTorus  bool
)

// parseIntList parses a comma-separated flag value; empty means the
// experiment's default list.
func parseIntList(flagName, s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "experiments: %s: %q is not a positive integer list\n", flagName, s)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func renderTable1() string {
	var b strings.Builder
	b.WriteString("Table 1: traffic-intensive workloads\n")
	var rows [][]string
	for _, m := range synfull.Catalog() {
		cls := "low-injection"
		if m.HighInjection {
			cls = "high-injection"
		}
		rows = append(rows, []string{m.Suite, m.Name, cls,
			fmt.Sprintf("%d phases", len(m.Phases))})
	}
	b.WriteString(viz.Table([]string{"suite", "application", "class", "model"}, rows))
	return b.String()
}

func renderTable2() string {
	var b strings.Builder
	b.WriteString("Table 2: message features\n")
	var rows [][]string
	for f := core.Feature(0); f < core.NumFeatures; f++ {
		rows = append(rows, []string{f.String(), fmt.Sprintf("%d", f.Width())})
	}
	b.WriteString(viz.Table([]string{"feature", "state elements"}, rows))
	fmt.Fprintf(&b, "total elements per message: %d\n", core.AllFeatures.Width())
	return b.String()
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: experiments [flags] <experiment>

experiments: fig4 fig5 fig7 fig9 fig10 fig11 fig12 fig13
             table1 table2 table3 ablation starvation fairness faults
             qtable flitcheck bufablation tiebreak derive hillclimb quant
             scaling all

scaling sweeps large mesh/torus sizes across router-shard counts and checks
the sharded engine is bit-identical to the sequential one; it is excluded
from "all" because its throughput numbers are machine-dependent.

flags:
`)
	flag.PrintDefaults()
}
