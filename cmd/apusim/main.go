// Command apusim executes APU-SynFull workloads on the paper's CPU+GPU chip
// model under a chosen arbitration policy and reports program execution times
// and NoC statistics.
//
//	apusim -model bfs -policy rl-inspired
//	apusim -mix 2L2H -policy global-age -opscale 0.5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mlnoc/internal/apu"
	"mlnoc/internal/arb"
	"mlnoc/internal/cliutil"
	"mlnoc/internal/core"
	"mlnoc/internal/fault"
	"mlnoc/internal/nn"
	"mlnoc/internal/noc"
	"mlnoc/internal/obs"
	"mlnoc/internal/prof"
	"mlnoc/internal/synfull"
	"mlnoc/internal/trace"
)

func main() {
	model := flag.String("model", "bfs", "workload model (run four copies, one per quadrant)")
	mix := flag.String("mix", "", `mixed workload spec like "2L2H" (overrides -model)`)
	policy := flag.String("policy", "rl-inspired",
		"policy: random, round-robin, islip, fifo, probdist, global-age, rl-inspired, rl-inspired-we, rl-inspired-no-port, rl-inspired-no-msgtype")
	opscale := flag.Float64("opscale", 0.25, "workload length multiplier")
	quadSide := flag.Int("quadside", 4, "quadrant side in tiles (chip is 2x2 quadrants)")
	bufcap := flag.Int("bufcap", 0, "router buffer capacity per VC (0 = default)")
	seed := flag.Int64("seed", 1, "random seed")
	nnPath := flag.String("nn", "", "run a saved APU agent network (gob) as the policy")
	metricsOut := flag.String("metrics-out", "",
		"write per-router/per-port obs counters (JSON) to this file")
	watchdog := flag.Int64("watchdog", 0,
		"flag head messages older than N cycles and N-cycle zero-delivery windows (0 = off)")
	faults := flag.Float64("faults", 0,
		"fraction of NoC links to kill a third into the programs (0..1, connectivity-preserving)")
	faultSeed := flag.Int64("fault-seed", 0, "fault scenario seed (0 = use -seed)")
	traceOn := flag.Bool("trace", false,
		"attach the per-message lifecycle tracer and print a latency breakdown")
	traceOut := flag.String("trace-out", "",
		"write the trace as Chrome/Perfetto JSON to this file (implies -trace)")
	traceCSV := flag.String("trace-csv", "",
		"write the trace as compact CSV to this file (implies -trace)")
	traceSample := flag.Uint64("trace-sample", 64,
		"trace only every Nth message (APU runs generate millions)")
	var logCfg cliutil.LogConfig
	cliutil.AddLogFlags(flag.CommandLine, &logCfg)
	profCfg := prof.AddFlags(flag.CommandLine)
	flag.Parse()

	log := cliutil.SetupLogger("apusim", &logCfg)
	log = log.With("corr_id", fmt.Sprintf("apusim-%d-%d", os.Getpid(), *seed))
	profStop, profErr := prof.Start(*profCfg)
	if profErr != nil {
		cliutil.Fatal("apusim", "%v", profErr)
	}
	defer profStop()
	var check cliutil.Check
	check.PositiveF("-opscale", *opscale)
	check.AtLeast("-quadside", int64(*quadSide), 3)
	check.NonNegative("-bufcap", int64(*bufcap))
	check.NonNegative("-watchdog", *watchdog)
	check.Unit("-faults", *faults)
	check.AtLeastU("-trace-sample", *traceSample, 1)
	check.Exit("apusim")
	cliutil.PrintSeed(os.Stdout, *seed)

	var models [4]*synfull.Model
	if *mix != "" {
		var low, high int
		if _, err := fmt.Sscanf(*mix, "%dL%dH", &low, &high); err != nil {
			fmt.Fprintf(os.Stderr, "bad -mix %q: %v\n", *mix, err)
			os.Exit(2)
		}
		ms, err := synfull.Mix(low, high)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		copy(models[:], ms)
	} else {
		m, err := synfull.ByName(*model)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		models = apu.Homogeneous(m)
	}

	var p noc.Policy
	var err error
	if *nnPath != "" {
		p, err = loadAgent(*nnPath, *seed)
	} else {
		p, err = makePolicy(*policy, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	runCfg := apu.RunnerConfig{OpScale: *opscale, Seed: *seed}
	if *faults > 0 {
		fseed := *faultSeed
		if fseed == 0 {
			fseed = *seed
		}
		killAt := int64(8000 * *opscale)
		if killAt < 1 {
			killAt = 1
		}
		runCfg.Faults = &fault.Spec{
			KillFraction: *faults,
			KillAt:       killAt,
			Seed:         fseed,
		}
	}
	if *metricsOut != "" || *watchdog > 0 {
		cfg := &obs.SuiteConfig{SampleEvery: 4}
		if *watchdog > 0 {
			cfg.Watchdog = &obs.WatchdogConfig{
				MaxHeadAge:     *watchdog,
				LivelockWindow: *watchdog,
				OnAlert: func(a obs.Alert) {
					log.Warn("watchdog alert", "kind", string(a.Kind), "alert", a.String())
				},
			}
		}
		runCfg.Obs = cfg
	}
	if *traceOn || *traceOut != "" || *traceCSV != "" {
		runCfg.Trace = &trace.Config{SampleEvery: *traceSample}
	}

	res := apu.RunWorkload(apu.Config{QuadSide: *quadSide, BufferCap: *bufcap}, p, models, runCfg)
	if res.Obs != nil {
		reportObs(res.Obs, *metricsOut, *seed)
	}
	if res.Trace != nil {
		reportTrace(res.Trace, *traceOut, *traceCSV)
	}
	if !res.Finished {
		fmt.Fprintf(os.Stderr, "workload did not finish within the cycle budget\n")
		os.Exit(1)
	}
	fmt.Printf("policy=%s models=[%s %s %s %s]\n", p.Name(),
		models[0].Name, models[1].Name, models[2].Name, models[3].Name)
	fmt.Printf("  completion per quadrant: %v\n", res.Completion)
	fmt.Printf("  avg execution time:  %.0f cycles\n", res.Avg)
	fmt.Printf("  tail execution time: %.0f cycles\n", res.Tail)
	fmt.Printf("  avg NoC message latency: %.2f cycles\n", res.AvgLatency)
	if res.Faults != nil {
		fmt.Printf("  faults: %d links killed, %d downtime cycles, %d requeued, %d reroutes, %d unreachable\n",
			res.Faults.LinkKills, res.Faults.DowntimeCycles, res.Faults.Requeued,
			res.Faults.Reroutes, res.Faults.Unreachable)
	}
}

// reportObs prints the observability summary and writes the JSON snapshot.
func reportObs(suite *obs.Suite, metricsOut string, seed int64) {
	snap := suite.Snapshot()
	snap.Seed = seed
	fmt.Printf("obs: %d grants, %d blocked port-cycles, max head age %d, %d in flight\n",
		snap.TotalGrants(), snap.TotalBlockedCycles(), snap.MaxHeadAge(), snap.InFlight)
	if snap.Delivered > 0 {
		fmt.Printf("obs: latency p50 %.0f, p95 %.0f, p99 %.0f\n",
			snap.LatencyP50, snap.LatencyP95, snap.LatencyP99)
	}
	if w := suite.Watchdog; w != nil && w.Tripped() {
		fmt.Printf("watchdog: %d alerts\n%s", len(w.Alerts()), w.Summary())
	}
	if metricsOut == "" {
		return
	}
	f, err := os.Create(metricsOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := snap.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("(obs metrics written to %s)\n", metricsOut)
}

// reportTrace prints the latency breakdown of the traced run and writes the
// requested export files. The trace spans the whole program execution.
func reportTrace(tr *trace.Tracer, jsonOut, csvOut string) {
	fmt.Printf("trace: %d events retained (%d recorded, %d evicted), sampling every %d msgs\n",
		tr.Len(), tr.Recorded(), tr.Dropped(), tr.SampleEvery())
	fmt.Print(trace.Analyze(tr).Render())
	write := func(path string, export func(f *os.File) error, hint string) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := export(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("(trace written to %s%s)\n", path, hint)
	}
	write(jsonOut, func(f *os.File) error { return trace.WriteChromeTrace(f, tr) },
		"; load in https://ui.perfetto.dev or chrome://tracing")
	write(csvOut, func(f *os.File) error { return trace.WriteCSV(f, tr) }, "")
}

func makePolicy(name string, seed int64) (noc.Policy, error) {
	switch name {
	case "random":
		return arb.NewRandom(rand.New(rand.NewSource(seed))), nil
	case "round-robin", "rr":
		return arb.NewRoundRobin(), nil
	case "islip":
		return arb.NewISLIP(2), nil
	case "fifo":
		return arb.NewFIFO(), nil
	case "probdist":
		return arb.NewProbDist(rand.New(rand.NewSource(seed))), nil
	case "global-age":
		return arb.NewGlobalAge(), nil
	case "rl-inspired":
		return core.NewRLInspiredAPU(), nil
	case "rl-inspired-we":
		return core.NewRLInspiredAPUPaper(), nil
	case "rl-inspired-no-port":
		return &core.RLInspiredAPU{InvertNorthSouth: true, DefeaturePort: true}, nil
	case "rl-inspired-no-msgtype":
		return &core.RLInspiredAPU{InvertNorthSouth: true, DefeatureMsgType: true}, nil
	}
	return nil, fmt.Errorf("unknown policy %q", name)
}

// loadAgent wraps a saved APU-spec network as an evaluation-only policy.
func loadAgent(path string, seed int64) (noc.Policy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	net, err := nn.Load(f)
	if err != nil {
		return nil, err
	}
	spec := core.APUSpec()
	if net.InputSize() != spec.InputSize() {
		return nil, fmt.Errorf("network input %d does not match the APU spec (%d)",
			net.InputSize(), spec.InputSize())
	}
	return core.NewAgentWithNet(spec, net, seed), nil
}
