// Command bench runs the repository's hot-path benchmark suite (the
// BenchmarkHot* benchmarks next to the simulate/train hot path) and emits a
// machine-readable snapshot for regression tracking:
//
//	bench -out BENCH_5.json                  # measure and write a snapshot
//	bench -diff BENCH_5.json                 # measure and compare to a snapshot
//	bench -diff BENCH_5.json -threshold 30   # tolerate up to +30% ns/op drift
//
// In -diff mode the exit status is 1 when any benchmark regressed beyond the
// threshold on ns/op, allocs/op, or bytes/op. Allocation counts are exact, so
// any growth from a zero-alloc baseline fails regardless of threshold; bytes
// get a 64-byte absolute slack so whole-object jitter on tiny baselines does
// not flag. CI runs it as a non-gating smoke job so noisy runners flag rather
// than fail a build.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one benchmark measurement.
type Benchmark struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Snapshot is the on-disk format (BENCH_5.json).
type Snapshot struct {
	Go         string      `json:"go"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

var defaultPkgs = []string{
	"./internal/noc", "./internal/nn", "./internal/rl", "./internal/core",
	"./internal/serve",
}

// benchLine matches `BenchmarkHotX-8  1234  56.7 ns/op  8 B/op  2 allocs/op`.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "", "write the snapshot JSON to this file")
	diff := flag.String("diff", "", "compare against this baseline snapshot instead of writing one")
	threshold := flag.Float64("threshold", 25, "regression tolerance in percent for -diff (ns/op, allocs/op, bytes/op)")
	pattern := flag.String("bench", "Hot|JobHash|SubmitCachedJob",
		"benchmark name pattern passed to go test -bench")
	benchtime := flag.String("benchtime", "", "value for go test -benchtime (e.g. 100x, 2s); empty = default")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
		os.Exit(2)
	}
	if *out == "" && *diff == "" {
		fail("pass -out FILE to record a snapshot or -diff FILE to compare against one")
	}

	snap, err := measure(*pattern, *benchtime)
	if err != nil {
		fail("%v", err)
	}
	if len(snap.Benchmarks) == 0 {
		fail("no benchmarks matched pattern %q", *pattern)
	}

	if *out != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fail("%v", err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fail("%v", err)
		}
		fmt.Printf("wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
	}
	if *diff != "" {
		base, err := load(*diff)
		if err != nil {
			fail("%v", err)
		}
		if regressed := compare(base, snap, *threshold); regressed {
			os.Exit(1)
		}
	}
}

func measure(pattern, benchtime string) (*Snapshot, error) {
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchmem"}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, defaultPkgs...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench: %v\n%s", err, stderr.String())
	}
	snap := &Snapshot{Go: runtime.Version()}
	pkg := ""
	sc := bufio.NewScanner(&stdout)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Pkg:     pkg,
			Name:    strings.TrimPrefix(m[1], "Benchmark"),
			NsPerOp: ns,
		}
		if m[3] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[3], 10, 64)
		}
		if m[4] != "" {
			b.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	return snap, sc.Err()
}

func load(path string) (*Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{}
	if err := json.Unmarshal(buf, snap); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return snap, nil
}

func compare(base, cur *Snapshot, threshold float64) (regressed bool) {
	byKey := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		byKey[b.Pkg+"/"+b.Name] = b
	}
	fmt.Printf("%-42s %12s %12s %8s %s\n", "benchmark", "base ns/op", "ns/op", "delta", "allocs")
	for _, c := range cur.Benchmarks {
		key := c.Pkg + "/" + c.Name
		b, ok := byKey[key]
		if !ok {
			fmt.Printf("%-42s %12s %12.0f %8s %d (new)\n", c.Name, "-", c.NsPerOp, "-", c.AllocsPerOp)
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		flag := ""
		if delta > threshold {
			flag = "  << REGRESSION"
			regressed = true
		}
		// Allocation counts are exact (not timer noise), so any increase from
		// a zero-alloc baseline is a real leak into the hot path and fails
		// outright; from a nonzero baseline the percentage threshold applies.
		allocs := fmt.Sprintf("%d", c.AllocsPerOp)
		if c.AllocsPerOp > b.AllocsPerOp {
			allocs = fmt.Sprintf("%d (was %d)", c.AllocsPerOp, b.AllocsPerOp)
			if b.AllocsPerOp == 0 ||
				float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*(1+threshold/100) {
				flag = "  << ALLOC REGRESSION"
				regressed = true
			}
		}
		// Bytes/op gets a small absolute slack on top of the percentage: tiny
		// baselines (a few bytes of amortized growth) jitter by whole-object
		// steps that are not regressions.
		byteSlack := float64(b.BytesPerOp) * threshold / 100
		if byteSlack < 64 {
			byteSlack = 64
		}
		if float64(c.BytesPerOp) > float64(b.BytesPerOp)+byteSlack {
			allocs += fmt.Sprintf(" %dB (was %dB)", c.BytesPerOp, b.BytesPerOp)
			flag = "  << BYTES REGRESSION"
			regressed = true
		}
		fmt.Printf("%-42s %12.0f %12.0f %+7.1f%% %s%s\n",
			c.Name, b.NsPerOp, c.NsPerOp, delta, allocs, flag)
	}
	if regressed {
		fmt.Printf("\nregressions beyond +%.0f%% detected (ns/op, allocs/op, or bytes/op)\n", threshold)
	}
	return regressed
}
