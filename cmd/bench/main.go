// Command bench runs the repository's hot-path benchmark suite (the
// BenchmarkHot* benchmarks next to the simulate/train hot path) and emits a
// machine-readable snapshot for regression tracking:
//
//	bench -out BENCH_5.json                  # measure and write a snapshot
//	bench -diff BENCH_5.json                 # measure and compare to a snapshot
//	bench -diff BENCH_5.json -threshold 30   # tolerate up to +30% ns/op drift
//
// In -diff mode the exit status is 1 when any benchmark regressed beyond the
// threshold on ns/op, allocs/op, or bytes/op. Allocation counts are exact, so
// any growth from a zero-alloc baseline fails regardless of threshold; bytes
// get a 64-byte absolute slack so whole-object jitter on tiny baselines does
// not flag. CI runs it as a non-gating smoke job so noisy runners flag rather
// than fail a build.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"mlnoc/internal/cliutil"
)

// Benchmark is one benchmark measurement. Metrics carries any custom
// b.ReportMetric units (e.g. msgs/s/core); they are recorded for inspection
// but never gate a diff, because custom metrics are throughput-style numbers
// that depend on the machine as much as on the code.
type Benchmark struct {
	Pkg         string             `json:"pkg"`
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the on-disk format (BENCH_5.json).
type Snapshot struct {
	Go         string      `json:"go"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

var defaultPkgs = []string{
	"./internal/noc", "./internal/nn", "./internal/rl", "./internal/core",
	"./internal/serve", "./internal/telemetry",
}

// gomaxprocsSuffix strips the `-8` GOMAXPROCS suffix from a benchmark name.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchLine tokenizes one `go test -bench` result line:
//
//	BenchmarkHotX-8  1234  56.7 ns/op  321 msgs/s/core  8 B/op  2 allocs/op
//
// The tail is a sequence of (value, unit) field pairs in no fixed order —
// b.ReportMetric inserts custom units between ns/op and the -benchmem pair —
// so the line is parsed pairwise instead of by a positional regexp (which
// used to silently drop B/op and allocs/op whenever a custom metric was
// present, zeroing alloc baselines in the snapshot).
func parseBenchLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	if _, err := strconv.Atoi(f[1]); err != nil { // iteration count
		return Benchmark{}, false
	}
	b := Benchmark{Name: strings.TrimPrefix(gomaxprocsSuffix.ReplaceAllString(f[0], ""), "Benchmark")}
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
			seenNs = true
		case "B/op":
			b.BytesPerOp = int64(val)
		case "allocs/op":
			b.AllocsPerOp = int64(val)
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, seenNs
}

func main() {
	out := flag.String("out", "", "write the snapshot JSON to this file")
	diff := flag.String("diff", "", "compare against this baseline snapshot instead of writing one")
	threshold := flag.Float64("threshold", 25, "regression tolerance in percent for -diff (ns/op, allocs/op, bytes/op)")
	pattern := flag.String("bench", "Hot|JobHash|SubmitCachedJob",
		"benchmark name pattern passed to go test -bench")
	benchtime := flag.String("benchtime", "", "value for go test -benchtime (e.g. 100x, 2s); empty = default")
	var logCfg cliutil.LogConfig
	cliutil.AddLogFlags(flag.CommandLine, &logCfg)
	flag.Parse()

	log := cliutil.SetupLogger("bench", &logCfg)
	fail := func(format string, args ...any) {
		log.Error(fmt.Sprintf(format, args...))
		os.Exit(2)
	}
	if *out == "" && *diff == "" {
		fail("pass -out FILE to record a snapshot or -diff FILE to compare against one")
	}

	snap, err := measure(*pattern, *benchtime)
	if err != nil {
		fail("%v", err)
	}
	if len(snap.Benchmarks) == 0 {
		fail("no benchmarks matched pattern %q", *pattern)
	}

	if *out != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fail("%v", err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fail("%v", err)
		}
		fmt.Printf("wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
	}
	if *diff != "" {
		base, err := load(*diff)
		if err != nil {
			fail("%v", err)
		}
		if regressed := compare(base, snap, *threshold); regressed {
			os.Exit(1)
		}
	}
}

func measure(pattern, benchtime string) (*Snapshot, error) {
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchmem"}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, defaultPkgs...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench: %v\n%s", err, stderr.String())
	}
	snap := &Snapshot{Go: runtime.Version()}
	pkg := ""
	sc := bufio.NewScanner(&stdout)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		b, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		b.Pkg = pkg
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	return snap, sc.Err()
}

func load(path string) (*Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{}
	if err := json.Unmarshal(buf, snap); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return snap, nil
}

func compare(base, cur *Snapshot, threshold float64) (regressed bool) {
	byKey := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		byKey[b.Pkg+"/"+b.Name] = b
	}
	fmt.Printf("%-42s %12s %12s %8s %s\n", "benchmark", "base ns/op", "ns/op", "delta", "allocs")
	for _, c := range cur.Benchmarks {
		key := c.Pkg + "/" + c.Name
		b, ok := byKey[key]
		if !ok {
			fmt.Printf("%-42s %12s %12.0f %8s %d (new)\n", c.Name, "-", c.NsPerOp, "-", c.AllocsPerOp)
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		flag := ""
		if delta > threshold {
			flag = "  << REGRESSION"
			regressed = true
		}
		// Allocation counts are exact (not timer noise), so any increase from
		// a zero-alloc baseline is a real leak into the hot path and fails
		// outright; from a nonzero baseline the percentage threshold applies.
		allocs := fmt.Sprintf("%d", c.AllocsPerOp)
		if c.AllocsPerOp > b.AllocsPerOp {
			allocs = fmt.Sprintf("%d (was %d)", c.AllocsPerOp, b.AllocsPerOp)
			if b.AllocsPerOp == 0 ||
				float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*(1+threshold/100) {
				flag = "  << ALLOC REGRESSION"
				regressed = true
			}
		}
		// Bytes/op gets a small absolute slack on top of the percentage: tiny
		// baselines (a few bytes of amortized growth) jitter by whole-object
		// steps that are not regressions.
		byteSlack := float64(b.BytesPerOp) * threshold / 100
		if byteSlack < 64 {
			byteSlack = 64
		}
		if float64(c.BytesPerOp) > float64(b.BytesPerOp)+byteSlack {
			allocs += fmt.Sprintf(" %dB (was %dB)", c.BytesPerOp, b.BytesPerOp)
			flag = "  << BYTES REGRESSION"
			regressed = true
		}
		fmt.Printf("%-42s %12.0f %12.0f %+7.1f%% %s%s%s\n",
			c.Name, b.NsPerOp, c.NsPerOp, delta, allocs, renderMetrics(c.Metrics), flag)
	}
	if regressed {
		fmt.Printf("\nregressions beyond +%.0f%% detected (ns/op, allocs/op, or bytes/op)\n", threshold)
	}
	return regressed
}

// renderMetrics formats custom metrics for the diff table, informational only.
func renderMetrics(m map[string]float64) string {
	if len(m) == 0 {
		return ""
	}
	units := make([]string, 0, len(m))
	for u := range m {
		units = append(units, u)
	}
	sort.Strings(units)
	var b strings.Builder
	for _, u := range units {
		fmt.Fprintf(&b, "  %.1f %s", m[u], u)
	}
	return b.String()
}
