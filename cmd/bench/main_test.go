package main

import "testing"

// TestParseBenchLine pins the pairwise tokenizer, in particular the case the
// old positional regexp got wrong: a custom b.ReportMetric unit between ns/op
// and the -benchmem pair must not drop B/op and allocs/op.
func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line string
		ok   bool
		want Benchmark
	}{
		{"BenchmarkHotNetworkStep-8 \t 1234 \t 56.7 ns/op", true,
			Benchmark{Name: "HotNetworkStep", NsPerOp: 56.7}},
		{"BenchmarkHotNetworkStep-8   1234   56.7 ns/op   8 B/op   2 allocs/op", true,
			Benchmark{Name: "HotNetworkStep", NsPerOp: 56.7, BytesPerOp: 8, AllocsPerOp: 2}},
		{"BenchmarkHotLargeMeshStep32x32K4-8  100  123456 ns/op  321.5 msgs/s/core  8 B/op  2 allocs/op", true,
			Benchmark{Name: "HotLargeMeshStep32x32K4", NsPerOp: 123456,
				BytesPerOp: 8, AllocsPerOp: 2, Metrics: map[string]float64{"msgs/s/core": 321.5}}},
		{"ok  \tmlnoc/internal/noc\t1.5s", false, Benchmark{}},
		{"pkg: mlnoc/internal/noc", false, Benchmark{}},
		{"BenchmarkBroken-8  notanumber  1 ns/op", false, Benchmark{}},
	}
	for _, tc := range cases {
		got, ok := parseBenchLine(tc.line)
		if ok != tc.ok {
			t.Errorf("parseBenchLine(%q) ok = %v, want %v", tc.line, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if got.Name != tc.want.Name || got.NsPerOp != tc.want.NsPerOp ||
			got.BytesPerOp != tc.want.BytesPerOp || got.AllocsPerOp != tc.want.AllocsPerOp {
			t.Errorf("parseBenchLine(%q) = %+v, want %+v", tc.line, got, tc.want)
		}
		for unit, v := range tc.want.Metrics {
			if got.Metrics[unit] != v {
				t.Errorf("parseBenchLine(%q) metric %q = %v, want %v", tc.line, unit, got.Metrics[unit], v)
			}
		}
	}
}
