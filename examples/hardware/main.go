// Hardware: the last mile of the paper's methodology — from Algorithm 2 to
// logic gates (Fig. 8) to synthesis costs (Table 3).
//
// It builds the P-block netlist gate by gate, proves it bit-exact against the
// software Algorithm 2 across the entire input space, sizes the select-max
// tree for a full 6-port/7-VC router, and prints the Table 3 cost comparison
// against a round-robin arbiter and an INT8 inference engine for the trained
// network.
//
//	go run ./examples/hardware
package main

import (
	"fmt"

	"mlnoc/internal/synth"
)

func main() {
	// Build the exact-threshold P-block and check it against Algorithm 2's
	// arithmetic for all 2048 reachable inputs.
	pblock := synth.BuildPBlock(synth.PBlockOptions{})
	mismatches := 0
	for la := 0; la < 32; la++ {
		for hc := 0; hc < 16; hc++ {
			for _, boost := range []bool{false, true} {
				for _, invert := range []bool{false, true} {
					want := algorithm2(la, hc, boost, invert)
					if got := synth.PBlockPriority(pblock, la, hc, boost, invert); got != want {
						mismatches++
					}
				}
			}
		}
	}
	fmt.Printf("P-block netlist: %d gates, depth %d, %d/2048 mismatches vs Algorithm 2\n",
		pblock.NumGates(), pblock.Depth(), mismatches)

	// The paper's simplification: a single AND gate approximates the age
	// threshold, differing only at LA == 24.
	approx := synth.BuildPBlock(synth.PBlockOptions{ApproxThreshold: true})
	fmt.Printf("with the paper's AND-gate threshold: %d gates, depth %d (differs only at LA=24)\n",
		approx.NumGates(), approx.Depth())

	// The select-max tree over all 42 input buffers of a 6-port router.
	selmax := synth.BuildSelectMax(42, 5)
	fmt.Printf("42-way select-max tree: %d gates, depth %d\n\n",
		selmax.NumGates(), selmax.Depth())

	// Exercise the tree on a sample arbitration.
	pris := make([]int, 42)
	pris[17], pris[30], pris[5] = 29, 31, 29
	idx, max := synth.SelectMaxEval(selmax, pris)
	fmt.Printf("sample arbitration: buffer %d wins with priority %d\n\n", idx, max)

	// Table 3: the cost model for the three designs.
	fmt.Println("Table 3 (gate-level cost model, 32nm-class):")
	for _, rep := range synth.Table3() {
		fmt.Printf("  %s\n", rep)
	}
	fmt.Println("\nThe distilled arbiter fits a router cycle; the network it was distilled")
	fmt.Println("from does not — the paper's closing argument in three lines of output.")
}

// algorithm2 mirrors the paper's Algorithm 2 priority arithmetic.
func algorithm2(la, hc int, boost, invert bool) int {
	if la > 24 {
		return la
	}
	base := hc
	if invert {
		base = 15 - hc
	}
	if boost {
		return base << 1
	}
	return base
}
