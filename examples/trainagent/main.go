// Trainagent: the paper's methodology end to end on a small mesh — train the
// deep Q-learning arbitration agent under uniform-random traffic, inspect the
// weight heatmap the way the paper's architects did (Fig. 4), and evaluate
// the frozen network against the classical arbiters.
//
//	go run ./examples/trainagent
package main

import (
	"fmt"

	"mlnoc/internal/arb"
	"mlnoc/internal/core"
	"mlnoc/internal/noc"
	"mlnoc/internal/viz"
)

func main() {
	cfg := core.MeshTrainConfig{
		Width:       4,
		Height:      4,
		Epochs:      40,
		EpochCycles: 1000,
		Seed:        1,
	}
	fmt.Printf("training a %dx%d mesh agent for %d cycles...\n\n",
		cfg.Width, cfg.Height, int64(cfg.Epochs)*cfg.EpochCycles)

	tr := core.TrainMesh(cfg)
	for i := 0; i < len(tr.Curve); i += 5 {
		fmt.Printf("  epoch %2d: avg latency %.1f cycles\n", i+1, tr.Curve[i])
	}

	// Interpret the weights (Section 3.2): which features does the network
	// lean on?
	tr.Agent.Freeze()
	h := core.NewHeatmap(tr.Spec, tr.Agent.Net())
	fmt.Println("\nmean |weight| per input (darker = larger):")
	fmt.Print(viz.Heatmap(h.RowLabels, h.ColLabels, h.Abs))
	fmt.Println("feature importance:")
	for _, row := range h.RankedRows() {
		fmt.Printf("  %-14s %.4f\n", h.RowLabels[row], h.RowMean(row))
	}

	// Evaluate the frozen network ("NN") against the classics.
	fmt.Println("\nevaluation (same traffic for every policy):")
	for _, p := range []noc.Policy{
		arb.NewFIFO(),
		tr.Agent,
		core.NewRLInspiredMesh4x4(),
		arb.NewGlobalAge(),
	} {
		res := core.EvaluateMeshPolicy(cfg, p, 1000, 6000)
		fmt.Printf("  %-16s avg latency %.2f\n", p.Name(), res.AvgLatency)
	}
	fmt.Println("\nThe heatmap is the bridge: local age and hop count dominate, which is")
	fmt.Println("exactly what the paper's human architects distilled into the RL-inspired")
	fmt.Println("priority function.")
}
