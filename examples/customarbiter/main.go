// Customarbiter: implement your own arbitration policy against the noc.Policy
// interface and benchmark it against the library's arbiters under an
// adversarial hotspot pattern.
//
// The example policy ("oldest-plus-longest") favors messages that are both
// old at the router and far from home — a hand-rolled cousin of the paper's
// RL-inspired priorities.
//
//	go run ./examples/customarbiter
package main

import (
	"fmt"
	"math/rand"

	"mlnoc/internal/arb"
	"mlnoc/internal/core"
	"mlnoc/internal/noc"
	"mlnoc/internal/traffic"
)

// oldestPlusLongest is a user-defined policy: priority = local age + number
// of hops still ahead of the message. Everything a policy needs arrives in
// the candidate list; no simulator internals required.
type oldestPlusLongest struct{}

func (oldestPlusLongest) Name() string { return "oldest-plus-longest" }

func (oldestPlusLongest) Select(ctx *noc.ArbContext, cands []noc.Candidate) int {
	best, bestScore := 0, int64(-1)
	for i, c := range cands {
		remaining := int64(c.Msg.Distance - c.Msg.HopCount)
		score := c.Msg.LocalAge(ctx.Cycle) + remaining
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

func main() {
	policies := []noc.Policy{
		arb.NewRoundRobin(),
		arb.NewFIFO(),
		oldestPlusLongest{},
		core.NewRLInspiredMesh8x8(),
		arb.NewGlobalAge(),
	}

	fmt.Println("8x8 mesh, hotspot traffic (20% of messages to two hot nodes)")
	fmt.Println()
	for _, p := range policies {
		net, cores := noc.BuildMeshCores(noc.Config{
			Width: 8, Height: 8, VCs: 3, BufferCap: 1,
		})
		net.SetPolicy(p)
		in := traffic.NewInjector(cores, traffic.Hotspot{
			Spots:    []int{27, 36}, // two central nodes
			Fraction: 0.2,
		}, 0.07, rand.New(rand.NewSource(7)))
		in.Classes = 3

		res := traffic.Run(net, in, 1000, 6000)
		fmt.Printf("%-20s avg %7.2f   p-max %6.0f   delivered %d\n",
			p.Name(), res.AvgLatency, res.MaxLatency, res.Delivered)
	}
}
