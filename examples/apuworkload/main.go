// Apuworkload: run the paper's multi-program APU scenario — four applications
// from the Table 1 catalog, one per chip quadrant — under several arbitration
// policies and compare program execution times (the Fig. 11 mixed-workload
// experiment in miniature).
//
//	go run ./examples/apuworkload
package main

import (
	"fmt"
	"log"

	"mlnoc/internal/apu"
	"mlnoc/internal/arb"
	"mlnoc/internal/core"
	"mlnoc/internal/noc"
	"mlnoc/internal/synfull"
)

func main() {
	// A 2L2H mix: two low-injection and two high-injection applications.
	models, err := synfull.Mix(2, 2)
	if err != nil {
		log.Fatal(err)
	}
	var quadrants [4]*synfull.Model
	copy(quadrants[:], models)

	fmt.Println("APU chip: 8x8 GPU mesh, 64 CUs, 4 CPU clusters")
	fmt.Print("quadrant assignment:")
	for q, m := range quadrants {
		fmt.Printf("  Q%d=%s", q, m.Name)
	}
	fmt.Println()
	fmt.Println()

	policies := []noc.Policy{
		arb.NewRoundRobin(),
		arb.NewFIFO(),
		core.NewRLInspiredAPU(),
		arb.NewGlobalAge(),
	}
	var base float64
	for _, p := range policies {
		res := apu.RunWorkload(apu.Config{}, p, quadrants, apu.RunnerConfig{
			OpScale: 0.25,
			Seed:    11,
		})
		if !res.Finished {
			log.Fatalf("%s: workload did not finish", p.Name())
		}
		if base == 0 {
			base = res.Avg
		}
		fmt.Printf("%-14s avg exec %6.0f cycles  tail %6.0f  noc latency %6.1f  (%.3fx RR)\n",
			p.Name(), res.Avg, res.Tail, res.AvgLatency, res.Avg/base)
	}
	fmt.Println("\nExecution time — not just message latency — is the paper's metric:")
	fmt.Println("each CU stalls when its outstanding-request window fills, so slow")
	fmt.Println("arbitration feeds directly back into program completion time.")
}
