// Quickstart: build a 4x4 mesh NoC, drive it with uniform-random synthetic
// traffic near saturation, and compare a FIFO arbiter against the paper's
// RL-inspired arbiter and the impractical global-age reference — a miniature
// of the paper's Fig. 5 experiment.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"mlnoc/internal/arb"
	"mlnoc/internal/core"
	"mlnoc/internal/noc"
	"mlnoc/internal/traffic"
)

func main() {
	const (
		size   = 4
		rate   = 0.23 // messages per node per cycle, near saturation
		warmup = 2000
		cycles = 15000
	)

	policies := []noc.Policy{
		arb.NewFIFO(),
		core.NewRLInspiredMesh4x4(),
		arb.NewGlobalAge(),
	}

	fmt.Printf("4x4 mesh, uniform random traffic at %.2f msgs/node/cycle\n\n", rate)
	var baseline float64
	for _, p := range policies {
		// A fresh network per policy, fed the same traffic seed, makes the
		// comparison paired.
		net, cores := noc.BuildMeshCores(noc.Config{
			Width: size, Height: size, VCs: 3, BufferCap: 1,
		})
		net.SetPolicy(p)
		in := traffic.NewInjector(cores, traffic.UniformRandom{}, rate,
			rand.New(rand.NewSource(2)))
		in.Classes = 3

		res := traffic.Run(net, in, warmup, cycles)
		if baseline == 0 {
			baseline = res.AvgLatency
		}
		fmt.Printf("%-16s avg latency %7.2f cycles   max %6.0f   (%.2fx FIFO)\n",
			p.Name(), res.AvgLatency, res.MaxLatency, res.AvgLatency/baseline)
	}
	fmt.Println("\nThe RL-inspired arbiter — two shifts and an add in hardware —")
	fmt.Println("recovers most of the gap between FIFO and the impractical global-age policy.")
}
