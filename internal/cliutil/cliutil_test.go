package cliutil

import (
	"strings"
	"testing"
)

func TestCheckPasses(t *testing.T) {
	var c Check
	c.Positive("-size", 8)
	c.PositiveF("-opscale", 0.25)
	c.NonNegative("-watchdog", 0)
	c.Unit("-rate", 1)
	c.Unit("-faults", 0)
	c.AtLeast("-quadside", 4, 3)
	c.AtLeastU("-trace-sample", 1, 1)
	c.OneOf("-scale", "quick", "quick", "full")
	if err := c.Err(); err != nil {
		t.Fatalf("clean check failed: %v", err)
	}
	if len(c.Errs()) != 0 {
		t.Fatalf("Errs = %v", c.Errs())
	}
}

// TestRejectionMessages pins the exact wording each constraint rejects with:
// the messages are user-facing CLI output and daemon API errors, so drift is
// a compatibility break.
func TestRejectionMessages(t *testing.T) {
	cases := []struct {
		name string
		add  func(c *Check)
		want string
	}{
		{"positive", func(c *Check) { c.Positive("-size", 0) },
			"-size must be positive, got 0"},
		{"positive-negative", func(c *Check) { c.Positive("-cycles", -3) },
			"-cycles must be positive, got -3"},
		{"positivef", func(c *Check) { c.PositiveF("-opscale", 0) },
			"-opscale must be positive, got 0"},
		{"nonnegative", func(c *Check) { c.NonNegative("-watchdog", -1) },
			"-watchdog must be >= 0, got -1"},
		{"unit-low", func(c *Check) { c.Unit("-rate", -0.1) },
			"-rate must be in [0,1], got -0.1"},
		{"unit-high", func(c *Check) { c.Unit("-faults", 1.5) },
			"-faults must be in [0,1], got 1.5"},
		{"atleast", func(c *Check) { c.AtLeast("-quadside", 2, 3) },
			"-quadside must be >= 3, got 2"},
		{"atleastu", func(c *Check) { c.AtLeastU("-trace-sample", 0, 1) },
			"-trace-sample must be >= 1, got 0"},
		{"oneof", func(c *Check) { c.OneOf("-scale", "huge", "quick", "full") },
			`-scale must be one of [quick full], got "huge"`},
		{"spec-field", func(c *Check) { c.PositiveF("sweep.op_scale", -2) },
			"sweep.op_scale must be positive, got -2"},
	}
	for _, tc := range cases {
		var c Check
		tc.add(&c)
		err := c.Err()
		if err == nil {
			t.Fatalf("%s: expected rejection", tc.name)
		}
		if err.Error() != tc.want {
			t.Fatalf("%s: message %q, want %q", tc.name, err.Error(), tc.want)
		}
	}
}

// TestCheckRecordsAllViolations verifies a multi-flag mistake reports the
// first violation from Err while keeping the rest for callers that want the
// full list.
func TestCheckRecordsAllViolations(t *testing.T) {
	var c Check
	c.Positive("-size", -1)
	c.Unit("-rate", 2)
	c.NonNegative("-warmup", -5)
	if got := len(c.Errs()); got != 3 {
		t.Fatalf("recorded %d violations, want 3", got)
	}
	if !strings.Contains(c.Err().Error(), "-size") {
		t.Fatalf("first violation should name -size, got %v", c.Err())
	}
}

func TestPrintSeed(t *testing.T) {
	var b strings.Builder
	PrintSeed(&b, 42)
	if b.String() != "seed: 42\n" {
		t.Fatalf("PrintSeed wrote %q", b.String())
	}
}
