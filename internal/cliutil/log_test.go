package cliutil

import (
	"encoding/json"
	"flag"
	"log/slog"
	"strings"
	"testing"
)

func TestAddLogFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var cfg LogConfig
	AddLogFlags(fs, &cfg)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if cfg.Format != "text" || cfg.Level != "info" {
		t.Fatalf("defaults = %+v, want text/info", cfg)
	}
	var c Check
	cfg.Validate(&c)
	if c.Err() != nil {
		t.Fatalf("defaults rejected: %v", c.Err())
	}
}

func TestLogConfigValidateRejects(t *testing.T) {
	for _, cfg := range []LogConfig{
		{Format: "xml", Level: "info"},
		{Format: "text", Level: "loud"},
	} {
		var c Check
		cfg.Validate(&c)
		if c.Err() == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestPlainHandlerLines(t *testing.T) {
	var b strings.Builder
	log := slog.New(NewPlainHandler(&b, slog.LevelDebug))
	log.Info("job submitted", "id", "job-1", "type", "sweep")
	log.Warn("queue saturated", "depth", 64)
	log.Error("job failed", "err", "boom boom")
	log.Debug("detail")
	log = log.With("corr_id", "abc")
	log.Info("with context")
	got := b.String()
	for _, want := range []string{
		"job submitted id=job-1 type=sweep\n",
		"warn: queue saturated depth=64\n",
		`error: job failed err="boom boom"` + "\n",
		"debug: detail\n",
		"with context corr_id=abc\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestPlainHandlerLevelFilter(t *testing.T) {
	var b strings.Builder
	log := slog.New(NewPlainHandler(&b, slog.LevelWarn))
	log.Info("quiet")
	log.Warn("loud")
	if strings.Contains(b.String(), "quiet") || !strings.Contains(b.String(), "loud") {
		t.Fatalf("level filter wrong: %q", b.String())
	}
}

func TestJSONLoggerParses(t *testing.T) {
	var b strings.Builder
	cfg := LogConfig{Format: "json", Level: "info"}
	log := cfg.Logger(&b)
	log.Info("run started", "epochs", 8, "corr_id", "run-42")
	var doc map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(b.String())), &doc); err != nil {
		t.Fatalf("json log line does not parse: %v\n%s", err, b.String())
	}
	if doc["msg"] != "run started" || doc["corr_id"] != "run-42" {
		t.Fatalf("json fields wrong: %v", doc)
	}
}

func TestDiscardDropsEverything(t *testing.T) {
	// Must not panic and must not be enabled at any sane level.
	log := Discard()
	log.Error("nothing")
	if log.Enabled(nil, slog.LevelError) {
		t.Fatal("Discard logger is enabled at error level")
	}
}
