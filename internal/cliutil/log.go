package cliutil

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync"
)

// LogConfig carries the two logging flags every binary exposes. Register it
// with AddLogFlags, validate with Validate, then build the process logger
// with Logger.
type LogConfig struct {
	Format string // "text" (human, default) or "json" (machine-parseable)
	Level  string // "debug", "info", "warn", "error"
}

// AddLogFlags registers -log-format and -log-level on fs.
func AddLogFlags(fs *flag.FlagSet, cfg *LogConfig) {
	fs.StringVar(&cfg.Format, "log-format", "text", "log output format: text or json")
	fs.StringVar(&cfg.Level, "log-level", "info", "minimum log level: debug, info, warn, error")
}

// Validate records flag violations on c.
func (cfg *LogConfig) Validate(c *Check) {
	c.OneOf("-log-format", cfg.Format, "text", "json")
	c.OneOf("-log-level", cfg.Level, "debug", "info", "warn", "error")
}

// Logger builds a *slog.Logger writing to w per the config. Text mode uses a
// minimal single-line handler (no timestamps, so run output stays diffable);
// json mode is slog's standard JSON handler with full timestamps.
func (cfg *LogConfig) Logger(w io.Writer) *slog.Logger {
	level := ParseLevel(cfg.Level)
	if cfg.Format == "json" {
		return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
	}
	return slog.New(NewPlainHandler(w, level))
}

// ParseLevel maps the flag vocabulary onto slog levels; unknown strings fall
// back to info (Validate has already rejected them by then).
func ParseLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// PlainHandler is a minimal slog.Handler for human eyes: one line per
// record, "msg k=v k=v", with a level prefix for anything that is not plain
// info. No timestamps — CLI output stays stable across runs and readable in
// CI logs.
type PlainHandler struct {
	mu    *sync.Mutex
	w     io.Writer
	level slog.Level
	attrs []slog.Attr
	group string
}

// NewPlainHandler returns a PlainHandler writing records at or above level
// to w.
func NewPlainHandler(w io.Writer, level slog.Level) *PlainHandler {
	return &PlainHandler{mu: &sync.Mutex{}, w: w, level: level}
}

// Enabled reports whether records at l are emitted.
func (h *PlainHandler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= h.level
}

// Handle renders one record.
func (h *PlainHandler) Handle(_ context.Context, rec slog.Record) error {
	var b strings.Builder
	switch {
	case rec.Level >= slog.LevelError:
		b.WriteString("error: ")
	case rec.Level >= slog.LevelWarn:
		b.WriteString("warn: ")
	case rec.Level < slog.LevelInfo:
		b.WriteString("debug: ")
	}
	b.WriteString(rec.Message)
	for _, a := range h.attrs {
		writeAttr(&b, h.group, a)
	}
	rec.Attrs(func(a slog.Attr) bool {
		writeAttr(&b, h.group, a)
		return true
	})
	b.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, b.String())
	return err
}

// WithAttrs returns a handler that prepends attrs to every record.
func (h *PlainHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	nh.attrs = append(append([]slog.Attr{}, h.attrs...), attrs...)
	return &nh
}

// WithGroup returns a handler that prefixes attribute keys with name.
func (h *PlainHandler) WithGroup(name string) slog.Handler {
	nh := *h
	if nh.group != "" {
		nh.group += "."
	}
	nh.group += name
	return &nh
}

// writeAttr renders " key=value", quoting values that contain spaces or
// quotes, flattening groups with dotted keys.
func writeAttr(b *strings.Builder, prefix string, a slog.Attr) {
	key := a.Key
	if prefix != "" {
		key = prefix + "." + key
	}
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		for _, ga := range v.Group() {
			writeAttr(b, key, ga)
		}
		return
	}
	b.WriteByte(' ')
	b.WriteString(key)
	b.WriteByte('=')
	s := v.String()
	if strings.ContainsAny(s, " \"=\n") {
		s = fmt.Sprintf("%q", s)
	}
	b.WriteString(s)
}

// Discard returns a logger that drops everything — the default for library
// code (internal/serve) when the caller wired no logger.
func Discard() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}

// SetupLogger is the one-call path for a cmd main: validate the config,
// exit(2) on bad flags, and return the stderr logger.
func SetupLogger(prog string, cfg *LogConfig) *slog.Logger {
	var c Check
	cfg.Validate(&c)
	c.Exit(prog)
	return cfg.Logger(os.Stderr)
}
