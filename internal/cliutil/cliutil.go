// Package cliutil holds the small pieces of command-line plumbing shared by
// every binary in cmd/: flag validation with uniform rejection messages, and
// effective-seed reporting. The same validation vocabulary is reused by
// internal/serve to check JSON job specs, so a flag rejected by a CLI and a
// field rejected by the daemon read identically ("-rate must be in [0,1],
// got 1.5" vs `sweep.op_scale must be positive, got 0`).
package cliutil

import (
	"fmt"
	"io"
	"os"
)

// Check accumulates validation failures. The zero value is ready to use; add
// constraints with the methods below, then inspect Err or call Exit. Names
// are reported verbatim, so CLIs pass "-rate" and spec validators pass
// "sweep.op_scale".
type Check struct {
	errs []error
}

// fail records one violation.
func (c *Check) fail(format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf(format, args...))
}

// Positive requires v > 0.
func (c *Check) Positive(name string, v int64) {
	if v <= 0 {
		c.fail("%s must be positive, got %d", name, v)
	}
}

// PositiveF requires v > 0.
func (c *Check) PositiveF(name string, v float64) {
	if v <= 0 {
		c.fail("%s must be positive, got %g", name, v)
	}
}

// NonNegative requires v >= 0.
func (c *Check) NonNegative(name string, v int64) {
	if v < 0 {
		c.fail("%s must be >= 0, got %d", name, v)
	}
}

// Unit requires v in [0,1].
func (c *Check) Unit(name string, v float64) {
	if v < 0 || v > 1 {
		c.fail("%s must be in [0,1], got %g", name, v)
	}
}

// AtLeast requires v >= min.
func (c *Check) AtLeast(name string, v, min int64) {
	if v < min {
		c.fail("%s must be >= %d, got %d", name, min, v)
	}
}

// AtLeastU requires v >= min.
func (c *Check) AtLeastU(name string, v, min uint64) {
	if v < min {
		c.fail("%s must be >= %d, got %d", name, min, v)
	}
}

// OneOf requires v to be one of the allowed strings.
func (c *Check) OneOf(name, v string, allowed ...string) {
	for _, a := range allowed {
		if v == a {
			return
		}
	}
	c.fail("%s must be one of %v, got %q", name, allowed, v)
}

// Err returns the first recorded violation, or nil when every constraint
// held. Validation is fail-fast in message but exhaustive in recording: all
// violations are kept (see Errs) and the first one names the error.
func (c *Check) Err() error {
	if len(c.errs) == 0 {
		return nil
	}
	return c.errs[0]
}

// Errs returns every recorded violation in check order.
func (c *Check) Errs() []error { return c.errs }

// Exit prints the first violation as "prog: <msg>" to stderr and exits with
// status 2 (the flag-error convention); it is a no-op when the check passed.
func (c *Check) Exit(prog string) {
	if err := c.Err(); err != nil {
		Fatal(prog, "%v", err)
	}
}

// Fatal prints "prog: <msg>" to stderr and exits with status 2. It is the
// shared shape of the per-cmd fail closures.
func Fatal(prog, format string, args ...any) {
	fmt.Fprintf(os.Stderr, prog+": "+format+"\n", args...)
	os.Exit(2)
}

// PrintSeed reports the effective RNG seed on w in the uniform "seed: N"
// format every cmd prints, so any run's exact rerun command can be
// reconstructed from its output.
func PrintSeed(w io.Writer, seed int64) {
	fmt.Fprintf(w, "seed: %d\n", seed)
}
