// Package telemetry is the process-wide metrics layer: a dependency-free
// registry of counters, gauges and histograms (optionally labelled) rendered
// in the Prometheus/OpenMetrics text exposition format.
//
// The design splits cost between two paths:
//
//   - Registration (Registry.Counter, Vec.With, ...) takes locks and
//     allocates. It happens at setup time; callers keep the returned handle.
//   - Observation (Counter.Inc, Gauge.Set, Histogram.Observe) is the hot
//     path: a handful of atomic operations, no locks, no allocations. It is
//     safe to call from a simulation inner loop or from every HTTP request.
//
// Rendering (Registry.Render) walks the registry under its lock and emits a
// deterministic document: families sorted by name, series sorted by label
// values, floats formatted with strconv's shortest round-trip form. The
// output re-parses with Parse, which doubles as the exposition linter used
// by tests and the simd smoke check.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType classifies a family.
type MetricType string

// Family types, named as the exposition format spells them.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// DefBuckets is the default histogram bucket set (seconds), matching the
// conventional Prometheus defaults: fine resolution around fast requests,
// coarse toward multi-second outliers.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ExponentialBuckets returns n bucket upper bounds starting at start and
// multiplying by factor: {start, start*factor, ...}.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n bucket upper bounds {width, 2*width, ...} — the
// fixed-bin shape of stats.Histogram, for bridging series previously kept
// there.
func LinearBuckets(width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("telemetry: LinearBuckets needs width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = width * float64(i+1)
	}
	return out
}

// Registry holds metric families. The zero value is not usable; create with
// NewRegistry. Default is the process-wide instance the binaries share.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// Default is the process-wide registry.
var Default = NewRegistry()

// NewRegistry creates an empty registry (tests and sidecars that must not
// share the process-wide one).
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric family with zero or more labelled series.
type family struct {
	name   string
	help   string
	typ    MetricType
	labels []string

	mu     sync.Mutex
	series map[string]*series // key: joined label values
	// counterFn/gaugeFn back callback families (read at render time).
	counterFn func() uint64
	gaugeFn   func() float64
	buckets   []float64 // histogram families only
}

// series is one label-value combination's metric instance.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	histogram   *Histogram
}

// register adds a family or returns the existing one after checking that the
// caller's declaration matches it. Conflicting re-registration is a
// programmer error and panics, like a duplicate flag name.
func (r *Registry) register(name, help string, typ MetricType, labels []string) *family {
	validateName(name)
	for _, l := range labels {
		validateLabel(l)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s%v, was %s%v",
				name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ,
		labels: append([]string(nil), labels...),
		series: make(map[string]*series)}
	r.families[name] = f
	return f
}

// Counter registers (or finds) a counter family. Pass label names here and
// bind values with With; a family with no labels has exactly one series,
// reachable via With() with no arguments.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, TypeCounter, labels)}
}

// Gauge registers (or finds) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, TypeGauge, labels)}
}

// Histogram registers (or finds) a histogram family with the given bucket
// upper bounds (strictly increasing; +Inf is implicit). Nil buckets means
// DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic(fmt.Sprintf("telemetry: histogram %q buckets must increase strictly", name))
		}
	}
	f := r.register(name, help, TypeHistogram, labels)
	f.mu.Lock()
	if f.buckets == nil {
		f.buckets = append([]float64(nil), buckets...)
	}
	f.mu.Unlock()
	return &HistogramVec{fam: f}
}

// CounterFunc registers a counter family whose single unlabelled value is
// read from fn at render time — the bridge for subsystems that already keep
// their own cumulative counters (e.g. the result cache).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	f := r.register(name, help, TypeCounter, nil)
	f.mu.Lock()
	f.counterFn = fn
	f.mu.Unlock()
}

// GaugeFunc registers a gauge family whose single unlabelled value is read
// from fn at render time (queue depths, pool occupancy, boolean states).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, TypeGauge, nil)
	f.mu.Lock()
	f.gaugeFn = fn
	f.mu.Unlock()
}

// with returns the series for the given label values, creating it on first
// use. This is the registration path: it locks and may allocate, so hot
// paths call it once and keep the handle.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), values...)}
	switch f.typ {
	case TypeCounter:
		s.counter = &Counter{}
	case TypeGauge:
		s.gauge = &Gauge{}
	case TypeHistogram:
		s.histogram = newHistogram(f.buckets)
	}
	f.series[key] = s
	return s
}

// CounterVec is a counter family handle.
type CounterVec struct{ fam *family }

// With binds label values and returns the series' counter.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.fam.with(labelValues).counter
}

// GaugeVec is a gauge family handle.
type GaugeVec struct{ fam *family }

// With binds label values and returns the series' gauge.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.fam.with(labelValues).gauge
}

// HistogramVec is a histogram family handle.
type HistogramVec struct{ fam *family }

// With binds label values and returns the series' histogram.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.fam.with(labelValues).histogram
}

// Counter is a monotonically increasing event count. All methods are
// lock-free and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a point-in-time value that can go up and down. The float64 is
// stored as atomic bits, so Set is a single store and Add a CAS loop.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt replaces the value with an integer.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add folds a delta into the value.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Observe is lock-free:
// one atomic add on the owning bucket, one on the count, and a CAS fold into
// the sum. Bucket reads during concurrent writes are per-bucket atomic, so a
// render taken mid-write is a coherent near-instant view (the same guarantee
// a Prometheus client gives).
type Histogram struct {
	bounds []float64       // upper bounds, strictly increasing; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	// Linear scan: bucket lists are short (~a dozen) and the branch pattern
	// is stable under real latency distributions, which beats binary search
	// at this size.
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear interpolation
// inside the containing bucket — the same estimate stats.Histogram.Quantile
// makes, and the one the dashboard computes client-side from the exposition.
// A quantile landing in the +Inf bucket reports the last finite bound (the
// histogram records no structure beyond it). Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if math.IsNaN(q) || q < 0 || q > 1 {
		panic("telemetry: quantile must be in [0,1]")
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum uint64
	lower := 0.0
	for i, bound := range h.bounds {
		c := h.counts[i].Load()
		if c > 0 && float64(cum+c) >= target {
			frac := (target - float64(cum)) / float64(c)
			return lower + frac*(bound-lower)
		}
		cum += c
		lower = bound
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

func validateName(name string) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	// The exposition format reserves these suffixes for the samples the
	// renderer itself appends; a family registered with one would collide.
	for _, suffix := range []string{"_total", "_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suffix) {
			panic(fmt.Sprintf("telemetry: metric name %q must not end in %s (added at render time)",
				name, suffix))
		}
	}
}

func validateLabel(name string) {
	if !validLabelName(name) {
		panic(fmt.Sprintf("telemetry: invalid label name %q", name))
	}
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		alpha := c == '_' || c == ':' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]* and is
// not a reserved __ name.
func validLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i, c := range name {
		alpha := c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// snapshotFamilies returns the families sorted by name, for rendering.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
