package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: the full sample name (including any
// _total/_bucket/_sum/_count suffix), its label pairs in document order, and
// the value.
type Sample struct {
	Name   string
	Labels [][2]string
	Value  float64
}

// Label returns the value of the named label ("" when absent).
func (s *Sample) Label(name string) string {
	for _, kv := range s.Labels {
		if kv[0] == name {
			return kv[1]
		}
	}
	return ""
}

// baseKey identifies one series within a family: the label pairs minus any
// "le", in sorted order.
func (s *Sample) baseKey() string {
	pairs := make([]string, 0, len(s.Labels))
	for _, kv := range s.Labels {
		if kv[0] == "le" {
			continue
		}
		pairs = append(pairs, kv[0]+"="+kv[1])
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// Family is one parsed metric family.
type Family struct {
	Name    string
	Type    MetricType
	Help    string
	Samples []Sample
}

// Find returns the first sample with the given full name whose labels all
// match want (extra labels on the sample are allowed), or nil.
func Find(fams []Family, name string, want map[string]string) *Sample {
	for i := range fams {
		for j := range fams[i].Samples {
			s := &fams[i].Samples[j]
			if s.Name != name {
				continue
			}
			ok := true
			for k, v := range want {
				if s.Label(k) != v {
					ok = false
					break
				}
			}
			if ok {
				return s
			}
		}
	}
	return nil
}

// Parse reads an exposition document produced by Render (or any conforming
// Prometheus text/OpenMetrics renderer that sticks to typed families) and
// returns its families. It is strict: every sample must belong to a
// preceding # TYPE declaration, names and labels must be valid, counter
// samples must carry the _total suffix, histogram series must have monotone
// cumulative buckets ending in a +Inf bucket that equals _count, and the
// document must end with # EOF.
func Parse(text string) ([]Family, error) {
	var fams []Family
	var cur *Family
	sawEOF := false
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if sawEOF {
			return nil, fmt.Errorf("line %d: content after # EOF", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			if line == "# EOF" {
				sawEOF = true
				continue
			}
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			switch kind {
			case "HELP":
				if cur == nil || cur.Name != name {
					fams = append(fams, Family{Name: name})
					cur = &fams[len(fams)-1]
				}
				cur.Help = rest
			case "TYPE":
				typ := MetricType(rest)
				if typ != TypeCounter && typ != TypeGauge && typ != TypeHistogram {
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, rest)
				}
				if cur == nil || cur.Name != name {
					fams = append(fams, Family{Name: name})
					cur = &fams[len(fams)-1]
				}
				if cur.Type != "" {
					return nil, fmt.Errorf("line %d: duplicate # TYPE for %q", lineNo, name)
				}
				cur.Type = typ
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if cur == nil || cur.Type == "" {
			return nil, fmt.Errorf("line %d: sample %q before any # TYPE declaration", lineNo, s.Name)
		}
		if err := checkSampleName(cur, s.Name); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		cur.Samples = append(cur.Samples, s)
	}
	if !sawEOF {
		return nil, fmt.Errorf("document does not end with # EOF")
	}
	for i := range fams {
		if fams[i].Type == TypeHistogram {
			if err := checkHistogram(&fams[i]); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// Lint is Parse discarding the parsed model — the smoke-test entry point.
func Lint(text string) error {
	_, err := Parse(text)
	return err
}

// parseComment splits "# HELP name rest" / "# TYPE name rest".
func parseComment(line string) (kind, name, rest string, err error) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	kind = fields[1]
	if kind != "HELP" && kind != "TYPE" {
		return "", "", "", fmt.Errorf("unknown comment keyword %q", kind)
	}
	name = fields[2]
	if !validMetricName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	return kind, name, rest, nil
}

// parseSample parses `name{a="b",...} value`.
func parseSample(line string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	if i < len(line) && line[i] == '{' {
		rest, labels, err := parseLabels(line[i:])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		line = rest
	} else {
		line = line[i:]
	}
	line = strings.TrimPrefix(line, " ")
	if line == "" || strings.ContainsRune(line, ' ') {
		return s, fmt.Errorf("expected exactly one value after %q", s.Name)
	}
	v, err := parseValue(line)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes a {a="b",c="d"} block and returns the remainder.
func parseLabels(in string) (rest string, labels [][2]string, err error) {
	i := 1 // past '{'
	for {
		if i >= len(in) {
			return "", nil, fmt.Errorf("unterminated label block")
		}
		if in[i] == '}' {
			return in[i+1:], labels, nil
		}
		j := i
		for j < len(in) && in[j] != '=' {
			j++
		}
		name := in[i:j]
		if !validLabelName(name) {
			return "", nil, fmt.Errorf("invalid label name %q", name)
		}
		if j+1 >= len(in) || in[j+1] != '"' {
			return "", nil, fmt.Errorf("label %q value is not quoted", name)
		}
		value, end, err := unescapeLabelValue(in, j+2)
		if err != nil {
			return "", nil, err
		}
		labels = append(labels, [2]string{name, value})
		i = end
		if i < len(in) && in[i] == ',' {
			i++
		}
	}
}

// unescapeLabelValue reads a quoted label value starting at in[start] (just
// past the opening quote) and returns the value and the index past the
// closing quote.
func unescapeLabelValue(in string, start int) (string, int, error) {
	var b strings.Builder
	for i := start; i < len(in); i++ {
		switch in[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(in) {
				return "", 0, fmt.Errorf("dangling escape in label value")
			}
			i++
			switch in[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("invalid escape \\%c in label value", in[i])
			}
		default:
			b.WriteByte(in[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// parseValue accepts any strconv float, which includes the exposition
// spellings +Inf, -Inf and NaN.
func parseValue(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

// checkSampleName enforces the per-type sample naming contract.
func checkSampleName(f *Family, sample string) error {
	switch f.Type {
	case TypeCounter:
		if sample != f.Name+"_total" {
			return fmt.Errorf("counter %q sample must be %s_total, got %q", f.Name, f.Name, sample)
		}
	case TypeGauge:
		if sample != f.Name {
			return fmt.Errorf("gauge %q sample must be named %q, got %q", f.Name, f.Name, sample)
		}
	case TypeHistogram:
		switch sample {
		case f.Name + "_bucket", f.Name + "_sum", f.Name + "_count":
		default:
			return fmt.Errorf("histogram %q sample must be _bucket/_sum/_count, got %q", f.Name, sample)
		}
	}
	return nil
}

// checkHistogram validates each series of a histogram family: cumulative
// bucket counts non-decreasing with increasing le, a +Inf bucket present,
// and _count equal to the +Inf bucket.
func checkHistogram(f *Family) error {
	type state struct {
		lastLe    float64
		lastCount float64
		inf       float64
		hasInf    bool
		count     float64
		hasCount  bool
	}
	states := map[string]*state{}
	get := func(s *Sample) *state {
		k := s.baseKey()
		st, ok := states[k]
		if !ok {
			st = &state{lastLe: -1 << 62}
			states[k] = st
		}
		return st
	}
	for i := range f.Samples {
		s := &f.Samples[i]
		st := get(s)
		switch s.Name {
		case f.Name + "_bucket":
			leStr := s.Label("le")
			if leStr == "" {
				return fmt.Errorf("histogram %q bucket without le label", f.Name)
			}
			le, err := parseValue(leStr)
			if err != nil {
				return fmt.Errorf("histogram %q: bad le %q", f.Name, leStr)
			}
			if le <= st.lastLe {
				return fmt.Errorf("histogram %q: le %q out of order", f.Name, leStr)
			}
			if s.Value < st.lastCount {
				return fmt.Errorf("histogram %q: cumulative bucket counts decreased at le=%q", f.Name, leStr)
			}
			st.lastLe, st.lastCount = le, s.Value
			if leStr == "+Inf" {
				st.inf, st.hasInf = s.Value, true
			}
		case f.Name + "_count":
			st.count, st.hasCount = s.Value, true
		}
	}
	for key, st := range states {
		if !st.hasInf {
			return fmt.Errorf("histogram %q{%s} has no +Inf bucket", f.Name, key)
		}
		if !st.hasCount {
			return fmt.Errorf("histogram %q{%s} has no _count sample", f.Name, key)
		}
		if st.count != st.inf {
			return fmt.Errorf("histogram %q{%s}: _count %g != +Inf bucket %g", f.Name, key, st.count, st.inf)
		}
	}
	return nil
}
