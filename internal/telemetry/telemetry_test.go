package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs", "jobs seen").With()
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("depth", "queue depth").With()
	g.Set(3.5)
	g.Add(-1.5)
	if g.Value() != 2 {
		t.Fatalf("gauge = %g, want 2", g.Value())
	}
	g.SetInt(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %g, want 7", g.Value())
	}
}

func TestVecLabelsSeparateSeries(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("hits", "hits by kind", "kind")
	v.With("a").Add(2)
	v.With("b").Inc()
	if v.With("a").Value() != 2 || v.With("b").Value() != 1 {
		t.Fatalf("series not separated: a=%d b=%d", v.With("a").Value(), v.With("b").Value())
	}
	// Same labels return the same handle.
	if v.With("a") != v.With("a") {
		t.Fatal("With returned distinct handles for identical labels")
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 4}).With()
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 9} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 15.5 {
		t.Fatalf("sum = %g, want 15.5", h.Sum())
	}
	// Quantile interpolates inside the containing bucket.
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("p50 = %g, want inside (1,2]", q)
	}
	// A quantile in the +Inf bucket reports the last finite bound.
	if q := h.Quantile(1); q != 4 {
		t.Fatalf("p100 = %g, want 4 (last finite bound)", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("p0 = %g, want 0", q)
	}
}

func TestReRegisterReturnsSameFamily(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", "x", "k")
	b := r.Counter("x", "x", "k")
	a.With("v").Inc()
	if b.With("v").Value() != 1 {
		t.Fatal("re-registration did not return the same family")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("x", "x") // different type must panic
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "2x", "a-b", "a b", "x_total", "x_bucket", "x_sum", "x_count"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
	for _, bad := range []string{"", "2x", "a-b", "__reserved"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("label name %q did not panic", bad)
				}
			}()
			r.Counter("ok_"+strings.Repeat("x", 1), "", bad)
		}()
	}
}

func TestCallbackFamilies(t *testing.T) {
	r := NewRegistry()
	n := uint64(41)
	r.CounterFunc("spills", "cache spills", func() uint64 { return n })
	r.GaugeFunc("busy", "busy workers", func() float64 { return 3 })
	n++
	text := r.RenderText()
	for _, want := range []string{"spills_total 42", "busy 3"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
}

// TestRenderParseRoundTrip pins the satellite contract: every line the
// renderer emits re-parses, names and labels are valid, and the parsed
// values match the registry exactly.
func TestRenderParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_submitted", "total submissions").With().Add(17)
	fin := r.Counter("jobs_finished", "terminal transitions", "state", "type")
	fin.With("done", "sweep").Add(3)
	fin.With("failed", `we"ird\label
value`).Inc()
	r.Gauge("queue_depth", "jobs waiting").With().SetInt(5)
	r.Gauge("temperature", "negative and fractional").With().Set(-2.25)
	h := r.Histogram("job_latency_seconds", "latency", []float64{0.1, 1, 10}, "type")
	h.With("sweep").Observe(0.05)
	h.With("sweep").Observe(0.5)
	h.With("sweep").Observe(50)
	r.GaugeFunc("busy", "busy workers", func() float64 { return 2 })
	r.CounterFunc("evictions", "cache evictions", func() uint64 { return 9 })

	text := r.RenderText()
	fams, err := Parse(text)
	if err != nil {
		t.Fatalf("rendered exposition does not re-parse: %v\n%s", err, text)
	}

	check := func(name string, labels map[string]string, want float64) {
		t.Helper()
		s := Find(fams, name, labels)
		if s == nil {
			t.Fatalf("sample %s%v missing:\n%s", name, labels, text)
		}
		if s.Value != want {
			t.Fatalf("sample %s%v = %g, want %g", name, labels, s.Value, want)
		}
	}
	check("jobs_submitted_total", nil, 17)
	check("jobs_finished_total", map[string]string{"state": "done", "type": "sweep"}, 3)
	check("jobs_finished_total", map[string]string{"state": "failed"}, 1)
	check("queue_depth", nil, 5)
	check("temperature", nil, -2.25)
	check("job_latency_seconds_bucket", map[string]string{"type": "sweep", "le": "0.1"}, 1)
	check("job_latency_seconds_bucket", map[string]string{"type": "sweep", "le": "+Inf"}, 3)
	check("job_latency_seconds_count", map[string]string{"type": "sweep"}, 3)
	check("job_latency_seconds_sum", map[string]string{"type": "sweep"}, 50.55)
	check("busy", nil, 2)
	check("evictions_total", nil, 9)

	// The escaped label value must round-trip exactly.
	s := Find(fams, "jobs_finished_total", map[string]string{"state": "failed"})
	if got := s.Label("type"); got != "we\"ird\\label\nvalue" {
		t.Fatalf("escaped label value round-trip = %q", got)
	}
}

func TestRenderDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		v := r.Counter("b_metric", "", "k")
		v.With("z").Inc()
		v.With("a").Inc()
		r.Gauge("a_metric", "").With().Set(1)
		return r.RenderText()
	}
	if build() != build() {
		t.Fatal("identical registries rendered differently")
	}
	text := build()
	if strings.Index(text, "a_metric") > strings.Index(text, "b_metric") {
		t.Fatalf("families not sorted by name:\n%s", text)
	}
	if strings.Index(text, `k="a"`) > strings.Index(text, `k="z"`) {
		t.Fatalf("series not sorted by label values:\n%s", text)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no EOF":             "# TYPE x counter\nx_total 1\n",
		"sample before TYPE": "x_total 1\n# EOF\n",
		"counter no _total":  "# TYPE x counter\nx 1\n# EOF\n",
		"bad name":           "# TYPE 2x counter\n2x_total 1\n# EOF\n",
		"bad value":          "# TYPE x counter\nx_total one\n# EOF\n",
		"unterminated label": "# TYPE x gauge\nx{a=\"b 1\n# EOF\n",
		"bad escape":         "# TYPE x gauge\nx{a=\"\\q\"} 1\n# EOF\n",
		"content after EOF":  "# EOF\n# TYPE x gauge\nx 1\n",
		"no +Inf bucket":     "# TYPE x histogram\nx_bucket{le=\"1\"} 1\nx_sum 1\nx_count 1\n# EOF\n",
		"shrinking buckets":  "# TYPE x histogram\nx_bucket{le=\"1\"} 2\nx_bucket{le=\"+Inf\"} 1\nx_sum 1\nx_count 1\n# EOF\n",
	}
	for name, doc := range cases {
		if err := Lint(doc); err == nil {
			t.Errorf("%s: lint accepted malformed document:\n%s", name, doc)
		}
	}
}

// TestConcurrentHammer drives every metric type from many goroutines; run
// under -race (make race covers internal/...) it doubles as the registry's
// data-race proof, and the exact final counts prove no increments are lost.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer", "", "worker")
	g := r.Gauge("level", "").With()
	h := r.Histogram("obs", "", []float64{1, 10, 100}).With()
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w))
			own := c.With(lbl)
			for i := 0; i < perWorker; i++ {
				own.Inc()
				c.With("shared").Inc()
				g.Set(float64(i))
				h.Observe(float64(i % 200))
				if i%64 == 0 {
					_ = r.RenderText() // render concurrently with writes
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.With("shared").Value(); got != workers*perWorker {
		t.Fatalf("shared counter = %d, want %d", got, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if got := c.With(string(rune('a' + w))).Value(); got != perWorker {
			t.Fatalf("worker %d counter = %d, want %d", w, got, perWorker)
		}
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	if err := Lint(r.RenderText()); err != nil {
		t.Fatalf("post-hammer render does not lint: %v", err)
	}
}

// TestHotPathAllocationFree pins the hot-path contract: once the handle is
// held, counter increments, gauge stores and histogram observations
// allocate nothing.
func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "", "k").With("v")
	g := r.Gauge("g", "").With()
	h := r.Histogram("h", "", nil).With()
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3) }); n != 0 {
		t.Errorf("Gauge.Set allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.42) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f/op", n)
	}
}

func TestBucketConstructors(t *testing.T) {
	exp := ExponentialBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	for i := range want {
		if math.Abs(exp[i]-want[i]) > 1e-12 {
			t.Fatalf("ExponentialBuckets[%d] = %g, want %g", i, exp[i], want[i])
		}
	}
	lin := LinearBuckets(5, 3)
	if lin[0] != 5 || lin[1] != 10 || lin[2] != 15 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
}
