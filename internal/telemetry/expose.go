package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Content-Type of the rendered exposition. The document
// is valid Prometheus text format and carries the OpenMetrics structural
// conventions (typed families, _total counter samples, a trailing # EOF).
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Render writes the full exposition document. The output is deterministic
// for a given registry state: families sorted by name, series sorted by
// label values, shortest-round-trip float formatting.
func (r *Registry) Render(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if err := f.render(w); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

// RenderText returns the exposition document as a string.
func (r *Registry) RenderText() string {
	var b strings.Builder
	_ = r.Render(&b)
	return b.String()
}

// Handler returns an http.Handler serving the exposition (a /metrics
// endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		w.WriteHeader(http.StatusOK)
		_ = r.Render(w)
	})
}

func (f *family) render(w io.Writer) error {
	f.mu.Lock()
	rows := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		rows = append(rows, s)
	}
	counterFn, gaugeFn := f.counterFn, f.gaugeFn
	f.mu.Unlock()
	if len(rows) == 0 && counterFn == nil && gaugeFn == nil {
		return nil // nothing to say yet: a family with no series renders nothing
	}
	sort.Slice(rows, func(i, j int) bool {
		return lessStrings(rows[i].labelValues, rows[j].labelValues)
	})

	var b strings.Builder
	if f.help != "" {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
	switch {
	case counterFn != nil:
		fmt.Fprintf(&b, "%s_total %d\n", f.name, counterFn())
	case gaugeFn != nil:
		fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(gaugeFn()))
	default:
		for _, s := range rows {
			f.renderSeries(&b, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) renderSeries(b *strings.Builder, s *series) {
	labels := labelString(f.labels, s.labelValues, "", "")
	switch f.typ {
	case TypeCounter:
		fmt.Fprintf(b, "%s_total%s %d\n", f.name, labels, s.counter.Value())
	case TypeGauge:
		fmt.Fprintf(b, "%s%s %s\n", f.name, labels, formatFloat(s.gauge.Value()))
	case TypeHistogram:
		h := s.histogram
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			le := labelString(f.labels, s.labelValues, "le", formatFloat(bound))
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, le, cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		le := labelString(f.labels, s.labelValues, "le", "+Inf")
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, le, cum)
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labels, formatFloat(h.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, labels, cum)
	}
}

// labelString renders {a="x",b="y"} with an optional extra pair appended
// (the histogram "le" label); it returns "" for a label-free series with no
// extra.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way the exposition format expects:
// shortest form that round-trips, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes backslash, double-quote and newline, per the
// exposition format.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func lessStrings(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
