package telemetry

import "testing"

// BenchmarkHotTelemetryCounter pins the hot-path contract cmd/bench
// enforces: a held counter handle increments with zero allocations.
func BenchmarkHotTelemetryCounter(b *testing.B) {
	c := NewRegistry().Counter("bench_hits", "", "kind").With("hot")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHotTelemetryHistogram pins the same contract for observations.
func BenchmarkHotTelemetryHistogram(b *testing.B) {
	h := NewRegistry().Histogram("bench_latency_seconds", "", DefBuckets).With()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 0.001)
	}
}

// BenchmarkHotTelemetryCounterParallel measures contended increments — the
// shape a busy worker pool produces.
func BenchmarkHotTelemetryCounterParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_parallel", "").With()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}
