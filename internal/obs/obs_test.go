package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mlnoc/internal/arb"
	"mlnoc/internal/noc"
	"mlnoc/internal/traffic"
)

// runUniform drives a small mesh under uniform-random traffic with the suite
// attached and returns the network and suite.
func runUniform(t *testing.T, cfg SuiteConfig, rate float64, cycles int64) (*noc.Network, *Suite) {
	t.Helper()
	net, cores := noc.BuildMeshCores(noc.Config{Width: 4, Height: 4, VCs: 2})
	net.SetPolicy(arb.NewGlobalAge())
	suite := Attach(net, cfg)
	in := traffic.NewInjector(cores, traffic.UniformRandom{}, rate, rand.New(rand.NewSource(5)))
	in.Classes = 2
	for i := int64(0); i < cycles; i++ {
		in.Tick()
		net.Step()
	}
	return net, suite
}

func TestCollectorCountsMatchStats(t *testing.T) {
	net, suite := runUniform(t, SuiteConfig{SampleEvery: 1}, 0.1, 3000)
	snap := suite.Snapshot()
	st := net.Stats()

	if snap.Injected != st.Injected || snap.Delivered != st.Delivered {
		t.Fatalf("collector injected/delivered %d/%d, stats %d/%d",
			snap.Injected, snap.Delivered, st.Injected, st.Delivered)
	}
	if snap.Injected == 0 || snap.Delivered == 0 {
		t.Fatal("no traffic observed")
	}
	if snap.InFlight != net.InFlight() {
		t.Fatalf("in flight %d, want %d", snap.InFlight, net.InFlight())
	}
	// Every delivered message was granted at least once (ejection grant);
	// every grant moved a message, so grants >= deliveries.
	if g := snap.TotalGrants(); g < snap.Delivered {
		t.Fatalf("grants %d < deliveries %d", g, snap.Delivered)
	}
	// Per-router injected/delivered roll up to the totals.
	var injected, delivered int64
	for _, r := range snap.Routers {
		injected += r.Injected
		delivered += r.Delivered
	}
	if injected != snap.Injected || delivered != snap.Delivered {
		t.Fatalf("per-router sums %d/%d, totals %d/%d",
			injected, delivered, snap.Injected, snap.Delivered)
	}
	if snap.Samples != 3000 {
		t.Fatalf("samples = %d, want 3000", snap.Samples)
	}
	// Under sustained contention some port must have recorded occupancy.
	var occ float64
	for _, r := range snap.Routers {
		for _, p := range r.Ports {
			occ += p.AvgOccupancy
		}
	}
	if occ == 0 {
		t.Fatal("no occupancy sampled under load")
	}
}

func TestCollectorSampling(t *testing.T) {
	_, suite := runUniform(t, SuiteConfig{SampleEvery: 10}, 0.05, 1000)
	snap := suite.Snapshot()
	if snap.Samples != 100 {
		t.Fatalf("samples = %d, want 100", snap.Samples)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	_, suite := runUniform(t, SuiteConfig{
		SampleEvery: 1,
		Watchdog:    &WatchdogConfig{MaxHeadAge: 100000, LivelockWindow: 100000},
	}, 0.1, 2000)
	snap := suite.Snapshot()

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if !reflect.DeepEqual(*snap, back) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", *snap, back)
	}
}

func TestSnapshotCSV(t *testing.T) {
	_, suite := runUniform(t, SuiteConfig{SampleEvery: 1}, 0.1, 500)
	out := suite.Snapshot().CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != csvHeader {
		t.Fatalf("csv header = %q", lines[0])
	}
	// 4x4 mesh: 16 cores + 2*(12+12) direction ports = 64 port rows.
	if len(lines) != 1+64 {
		t.Fatalf("csv rows = %d, want 65", len(lines))
	}
	for _, line := range lines[1:] {
		if got := strings.Count(line, ","); got != strings.Count(csvHeader, ",") {
			t.Fatalf("csv row %q has %d commas", line, got)
		}
	}
}

// TestRegistryOnRecord checks the streaming seam: the hook sees every
// snapshot with its name, after the registry stores it (so the hook can read
// it back), and recording without a hook still works.
func TestRegistryOnRecord(t *testing.T) {
	reg := NewRegistry()
	reg.Record("before-hook", &Snapshot{Cycle: 1}) // no hook installed: no-op

	var mu sync.Mutex
	seen := map[string]int64{}
	reg.SetOnRecord(func(name string, s *Snapshot) {
		mu.Lock()
		defer mu.Unlock()
		if got := reg.Get(name); got != s {
			t.Errorf("hook for %q ran before the snapshot was stored", name)
		}
		seen[name] = s.Cycle
	})

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reg.Record(string(rune('a'+w)), &Snapshot{Cycle: int64(w)})
		}(w)
	}
	wg.Wait()

	if len(seen) != 4 {
		t.Fatalf("hook observed %d records, want 4: %v", len(seen), seen)
	}
	for w := 0; w < 4; w++ {
		if seen[string(rune('a'+w))] != int64(w) {
			t.Fatalf("hook saw wrong snapshot for %c: %v", 'a'+w, seen)
		}
	}
	if _, ok := seen["before-hook"]; ok {
		t.Fatal("hook retroactively saw a record from before installation")
	}
}

func TestRegistryConcurrentRecord(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := string(rune('a'+w)) + "-" + strings.Repeat("x", i%3)
				reg.Record(name, &Snapshot{Cycle: int64(i)})
				_ = reg.Get(name)
				_ = reg.Len()
			}
		}(w)
	}
	wg.Wait()
	if reg.Len() != 8*3 {
		t.Fatalf("registry has %d snapshots, want 24", reg.Len())
	}
	names := reg.Names()
	if !sortedStrings(names) {
		t.Fatalf("names not sorted: %v", names)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string][]struct {
		Name     string    `json:"name"`
		Snapshot *Snapshot `json:"snapshot"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("registry JSON does not parse: %v", err)
	}
	if len(doc["runs"]) != 24 {
		t.Fatalf("registry JSON has %d runs, want 24", len(doc["runs"]))
	}
	if !strings.HasPrefix(reg.CSV(), "run,"+csvHeader+"\n") {
		t.Fatal("registry CSV header malformed")
	}
}

func sortedStrings(xs []string) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			return false
		}
	}
	return true
}

// TestSnapshotLatencyQuantiles pins the end-to-end latency quantiles added to
// the snapshot: present when traffic was delivered, ordered, and bounded by
// the engine's exact latency statistics.
func TestSnapshotLatencyQuantiles(t *testing.T) {
	net, suite := runUniform(t, SuiteConfig{SampleEvery: 1}, 0.1, 3000)
	snap := suite.Snapshot()
	if snap.Delivered == 0 {
		t.Fatal("no traffic delivered")
	}
	if snap.LatencyP50 <= 0 {
		t.Fatalf("LatencyP50 = %v, want > 0", snap.LatencyP50)
	}
	if snap.LatencyP50 > snap.LatencyP95 || snap.LatencyP95 > snap.LatencyP99 {
		t.Fatalf("quantiles not ordered: p50 %v, p95 %v, p99 %v",
			snap.LatencyP50, snap.LatencyP95, snap.LatencyP99)
	}
	st := net.Stats()
	if snap.LatencyP99 > st.Latency.Max() {
		t.Fatalf("p99 %v exceeds exact max %v", snap.LatencyP99, st.Latency.Max())
	}
	if snap.LatencyP50 > st.Latency.Max() || snap.LatencyP99 < st.Latency.Min() {
		t.Fatalf("quantiles outside the exact latency range [%v, %v]",
			st.Latency.Min(), st.Latency.Max())
	}
	// The direct accessor agrees with the snapshot fields.
	if got := suite.Collector.LatencyQuantile(0.95); got != snap.LatencyP95 {
		t.Fatalf("LatencyQuantile(0.95) = %v, snapshot p95 = %v", got, snap.LatencyP95)
	}
}
