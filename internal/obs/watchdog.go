package obs

import (
	"fmt"

	"mlnoc/internal/noc"
)

// AlertKind classifies a watchdog alert.
type AlertKind string

// Watchdog alert kinds.
const (
	// AlertStarvation flags an input-buffer head message whose local age
	// exceeded the configured threshold — the pathology Algorithm 2's
	// local-age override exists to bound.
	AlertStarvation AlertKind = "starvation"
	// AlertLivelock flags a window of cycles with zero deliveries while
	// messages were in flight.
	AlertLivelock AlertKind = "livelock"
	// AlertFaultBlackhole flags an over-age head message that is stuck
	// because of an injected fault — its router is frozen, its route is a
	// dead link, or its destination is unreachable — rather than because the
	// arbitration policy starved it. Telling the two apart matters when
	// judging a policy under fault injection.
	AlertFaultBlackhole AlertKind = "fault-blackhole"
)

// Alert is one structured watchdog finding.
type Alert struct {
	Kind  AlertKind `json:"kind"`
	Cycle int64     `json:"cycle"`
	// Starvation fields: the offending buffer and head message.
	Router int    `json:"router,omitempty"`
	Port   string `json:"port,omitempty"`
	VC     int    `json:"vc,omitempty"`
	Age    int64  `json:"age,omitempty"`
	MsgID  uint64 `json:"msg_id,omitempty"`
	// Livelock fields: the stalled window and the traffic stuck inside it.
	Window   int64 `json:"window,omitempty"`
	InFlight int64 `json:"in_flight,omitempty"`
}

// String formats the alert for logs.
func (a Alert) String() string {
	switch a.Kind {
	case AlertStarvation:
		return fmt.Sprintf("cycle %d: starvation at router#%d %s vc%d: msg#%d head age %d",
			a.Cycle, a.Router, a.Port, a.VC, a.MsgID, a.Age)
	case AlertLivelock:
		return fmt.Sprintf("cycle %d: livelock: no deliveries for %d cycles with %d messages in flight",
			a.Cycle, a.Window, a.InFlight)
	case AlertFaultBlackhole:
		return fmt.Sprintf("cycle %d: fault-blackhole at router#%d %s vc%d: msg#%d head age %d (stuck on a fault, not starved)",
			a.Cycle, a.Router, a.Port, a.VC, a.MsgID, a.Age)
	}
	return fmt.Sprintf("cycle %d: %s", a.Cycle, a.Kind)
}

// WatchdogConfig parameterizes a Watchdog.
type WatchdogConfig struct {
	// MaxHeadAge flags any input-buffer head message older (in local age)
	// than this many cycles. 0 disables starvation checks.
	MaxHeadAge int64
	// LivelockWindow flags any window of at least this many cycles with zero
	// deliveries while messages are in flight. 0 disables livelock checks.
	LivelockWindow int64
	// CheckEvery is the scan period in cycles (default 64, clamped so the
	// livelock window spans at least one check).
	CheckEvery int64
	// MaxAlerts bounds the recorded alert list (default 64); further alerts
	// are counted as suppressed but still reach OnAlert.
	MaxAlerts int
	// OnAlert, if non-nil, runs for every alert, inside Network.Step.
	OnAlert func(Alert)
}

func (c *WatchdogConfig) applyDefaults() {
	if c.CheckEvery <= 0 {
		c.CheckEvery = 64
	}
	if c.LivelockWindow > 0 && c.CheckEvery > c.LivelockWindow {
		c.CheckEvery = c.LivelockWindow
	}
	if c.MaxHeadAge > 0 && c.CheckEvery > c.MaxHeadAge {
		c.CheckEvery = c.MaxHeadAge
	}
	if c.MaxAlerts <= 0 {
		c.MaxAlerts = 64
	}
}

// Watchdog monitors one network for starvation (over-age buffer heads) and
// livelock (delivery silence while traffic is in flight). Create and install
// one with AttachWatchdog.
type Watchdog struct {
	net *noc.Network
	cfg WatchdogConfig

	alerts     []Alert
	suppressed int64

	// starvation dedup: 1 + ID of the last flagged head message per
	// (router, port); 0 means nothing flagged (message IDs may be 0).
	flagged [][noc.MaxPorts]uint64

	// livelock progress tracking.
	lastDelivered int64
	lastProgress  int64 // cycle of the last observed delivery (or scan reset)
}

// AttachWatchdog creates a Watchdog for net and installs its OnCycle hook.
func AttachWatchdog(net *noc.Network, cfg WatchdogConfig) *Watchdog {
	cfg.applyDefaults()
	w := &Watchdog{
		net:           net,
		cfg:           cfg,
		flagged:       make([][noc.MaxPorts]uint64, len(net.Routers())),
		lastDelivered: net.Stats().Delivered,
		lastProgress:  net.Cycle(),
	}
	net.AddOnCycle(w.onCycle)
	return w
}

// Alerts returns the recorded alerts in detection order.
func (w *Watchdog) Alerts() []Alert { return w.alerts }

// Suppressed returns the number of alerts beyond the recording cap.
func (w *Watchdog) Suppressed() int64 { return w.suppressed }

// Tripped reports whether any alert fired.
func (w *Watchdog) Tripped() bool { return len(w.alerts) > 0 || w.suppressed > 0 }

// Summary renders the alerts as one line per alert, or "" when clean.
func (w *Watchdog) Summary() string {
	if !w.Tripped() {
		return ""
	}
	s := ""
	for _, a := range w.alerts {
		s += a.String() + "\n"
	}
	if w.suppressed > 0 {
		s += fmt.Sprintf("(%d further alerts suppressed)\n", w.suppressed)
	}
	return s
}

func (w *Watchdog) raise(a Alert) {
	if len(w.alerts) < w.cfg.MaxAlerts {
		w.alerts = append(w.alerts, a)
	} else {
		w.suppressed++
	}
	if w.cfg.OnAlert != nil {
		w.cfg.OnAlert(a)
	}
}

func (w *Watchdog) onCycle(net *noc.Network) {
	now := net.Cycle()
	if now%w.cfg.CheckEvery != 0 {
		return
	}
	if w.cfg.LivelockWindow > 0 {
		w.checkLivelock(net, now)
	}
	if w.cfg.MaxHeadAge > 0 {
		w.checkStarvation(net, now)
	}
}

func (w *Watchdog) checkLivelock(net *noc.Network, now int64) {
	delivered := net.Stats().Delivered
	if delivered != w.lastDelivered {
		// Progress (or a stats reset); restart the window.
		w.lastDelivered = delivered
		w.lastProgress = now
		return
	}
	if net.InFlight() == 0 {
		w.lastProgress = now
		return
	}
	if window := now - w.lastProgress; window >= w.cfg.LivelockWindow {
		w.raise(Alert{
			Kind:     AlertLivelock,
			Cycle:    now,
			Window:   window,
			InFlight: net.InFlight(),
		})
		w.lastProgress = now // re-arm instead of alerting every scan
	}
}

func (w *Watchdog) checkStarvation(net *noc.Network, now int64) {
	for i, r := range net.Routers() {
		for p := noc.PortID(0); p < noc.MaxPorts; p++ {
			if !r.HasPort(p) {
				continue
			}
			for vc := 0; vc < r.NumVCs(); vc++ {
				m := r.Buffer(p, vc).Head()
				if m == nil || m.LocalAge(now) <= w.cfg.MaxHeadAge {
					continue
				}
				// One alert per stuck message per port: re-alert only when a
				// different message is stuck.
				if w.flagged[i][p] == m.ID+1 {
					continue
				}
				w.flagged[i][p] = m.ID + 1
				kind := AlertStarvation
				if net.Faulty() {
					// Distinguish policy starvation from fault damage: a head
					// is blackholed (not starved) when its router is frozen,
					// its route crosses a dead link, or no route exists.
					if out := r.Route(m); r.Frozen() || out == noc.RouteUnreachable || !r.LinkUp(out) {
						kind = AlertFaultBlackhole
					}
				}
				w.raise(Alert{
					Kind:   kind,
					Cycle:  now,
					Router: r.ID(),
					Port:   p.String(),
					VC:     vc,
					Age:    m.LocalAge(now),
					MsgID:  m.ID,
				})
			}
		}
	}
}

// SuiteConfig parameterizes an observability Suite.
type SuiteConfig struct {
	// SampleEvery is the collector sampling period in cycles (<= 1 samples
	// every cycle).
	SampleEvery int64
	// Watchdog, if non-nil, also attaches a watchdog with this config.
	Watchdog *WatchdogConfig
}

// Suite bundles the collector and optional watchdog attached to one network.
type Suite struct {
	Collector *Collector
	Watchdog  *Watchdog // nil when not configured
}

// Attach installs a full observability suite on net.
func Attach(net *noc.Network, cfg SuiteConfig) *Suite {
	s := &Suite{Collector: AttachCollector(net, cfg.SampleEvery)}
	if cfg.Watchdog != nil {
		s.Watchdog = AttachWatchdog(net, *cfg.Watchdog)
	}
	return s
}

// Snapshot exports the collector counters with any watchdog alerts merged in.
func (s *Suite) Snapshot() *Snapshot {
	snap := s.Collector.Snapshot()
	if s.Watchdog != nil {
		snap.Alerts = append([]Alert(nil), s.Watchdog.Alerts()...)
		snap.SuppressedAlerts = s.Watchdog.Suppressed()
	}
	return snap
}
