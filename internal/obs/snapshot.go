package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"mlnoc/internal/noc"
)

// PortSnapshot is the exported state of one router input port.
type PortSnapshot struct {
	Port          string  `json:"port"`
	Grants        int64   `json:"grants"`
	BlockedCycles int64   `json:"blocked_cycles"`
	AvgOccupancy  float64 `json:"avg_occupancy"`
	MaxOccupancy  int     `json:"max_occupancy"`
	// MaxHeadAge[vc] is the largest head-of-line local age sampled per VC.
	MaxHeadAge []int64 `json:"max_head_age_per_vc"`
}

// RouterSnapshot is the exported state of one router.
type RouterSnapshot struct {
	Router    int            `json:"router"`
	X         int            `json:"x"`
	Y         int            `json:"y"`
	Injected  int64          `json:"injected"`
	Delivered int64          `json:"delivered"`
	Ports     []PortSnapshot `json:"ports"`
}

// Snapshot is a point-in-time export of a Collector (plus any watchdog
// alerts, when taken through a Suite). It is a plain value: safe to hand to
// a Registry, marshal, and compare.
type Snapshot struct {
	Cycle     int64 `json:"cycle"`
	Samples   int64 `json:"samples"`
	Injected  int64 `json:"injected"`
	Delivered int64 `json:"delivered"`
	InFlight  int64 `json:"in_flight"`
	// LatencyP50/P95/P99 are generation-to-delivery latency quantiles over
	// the messages delivered since attach, interpolated from a fixed-bin
	// histogram (absent when nothing was delivered).
	LatencyP50 float64          `json:"latency_p50,omitempty"`
	LatencyP95 float64          `json:"latency_p95,omitempty"`
	LatencyP99 float64          `json:"latency_p99,omitempty"`
	Routers    []RouterSnapshot `json:"routers"`
	Alerts     []Alert          `json:"alerts,omitempty"`
	// SuppressedAlerts counts watchdog alerts beyond the recording cap.
	SuppressedAlerts int64 `json:"suppressed_alerts,omitempty"`
	// Seed is the RNG seed of the run that produced this snapshot, recorded
	// by the CLIs so any exported metrics file identifies its exact rerun.
	Seed int64 `json:"seed,omitempty"`
	// Faults carries the network's fault counters, present only when fault
	// machinery touched the run (see noc.Network.Faulty).
	Faults *noc.FaultStats `json:"faults,omitempty"`
}

// Snapshot exports the collector's current counters.
func (c *Collector) Snapshot() *Snapshot {
	s := &Snapshot{
		Cycle:     c.net.Cycle(),
		Samples:   c.samples,
		Injected:  c.injected,
		Delivered: c.delivered,
		InFlight:  c.net.InFlight(),
	}
	if c.latency.Count() > 0 {
		s.LatencyP50 = c.latency.Quantile(0.50)
		s.LatencyP95 = c.latency.Quantile(0.95)
		s.LatencyP99 = c.latency.Quantile(0.99)
	}
	if c.net.Faulty() {
		fs := c.net.FaultStats()
		s.Faults = &fs
	}
	for i, r := range c.net.Routers() {
		rs := RouterSnapshot{
			Router:    r.ID(),
			X:         r.Coord.X,
			Y:         r.Coord.Y,
			Injected:  c.routers[i].injected,
			Delivered: c.routers[i].delivered,
		}
		for p := noc.PortID(0); p < noc.MaxPorts; p++ {
			pc := c.routers[i].ports[p]
			if pc == nil {
				continue
			}
			ps := PortSnapshot{
				Port:          p.String(),
				Grants:        pc.grants,
				BlockedCycles: pc.blocked,
				MaxOccupancy:  pc.maxOcc,
				MaxHeadAge:    append([]int64(nil), pc.maxHeadAge...),
			}
			if c.samples > 0 {
				ps.AvgOccupancy = float64(pc.occSum) / float64(c.samples)
			}
			rs.Ports = append(rs.Ports, ps)
		}
		s.Routers = append(s.Routers, rs)
	}
	return s
}

// TotalGrants sums grants over every router port.
func (s *Snapshot) TotalGrants() int64 {
	var total int64
	for _, r := range s.Routers {
		for _, p := range r.Ports {
			total += p.Grants
		}
	}
	return total
}

// TotalBlockedCycles sums blocked cycles over every router port.
func (s *Snapshot) TotalBlockedCycles() int64 {
	var total int64
	for _, r := range s.Routers {
		for _, p := range r.Ports {
			total += p.BlockedCycles
		}
	}
	return total
}

// MaxHeadAge returns the largest sampled head-of-line age anywhere in the
// network.
func (s *Snapshot) MaxHeadAge() int64 {
	var maxAge int64
	for _, r := range s.Routers {
		for _, p := range r.Ports {
			for _, a := range p.MaxHeadAge {
				if a > maxAge {
					maxAge = a
				}
			}
		}
	}
	return maxAge
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// csvHeader is the column layout shared by Snapshot.CSV and Registry.CSV.
const csvHeader = "router,x,y,port,grants,blocked_cycles,avg_occupancy,max_occupancy,max_head_age"

// CSV exports one row per router port. Per-VC head ages are collapsed to
// their max; use JSON for the full breakdown.
func (s *Snapshot) CSV() string {
	var b strings.Builder
	b.WriteString(csvHeader + "\n")
	s.appendCSV(&b, "")
	return b.String()
}

func (s *Snapshot) appendCSV(b *strings.Builder, prefix string) {
	for _, r := range s.Routers {
		for _, p := range r.Ports {
			var maxAge int64
			for _, a := range p.MaxHeadAge {
				if a > maxAge {
					maxAge = a
				}
			}
			fmt.Fprintf(b, "%s%d,%d,%d,%s,%d,%d,%.3f,%d,%d\n",
				prefix, r.Router, r.X, r.Y, p.Port,
				p.Grants, p.BlockedCycles, p.AvgOccupancy, p.MaxOccupancy, maxAge)
		}
	}
}

// Registry collects named snapshots from concurrent runs (one per experiment
// sweep cell). All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	snaps    map[string]*Snapshot
	seed     int64
	hasSeed  bool
	onRecord func(name string, s *Snapshot)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{snaps: make(map[string]*Snapshot)}
}

// SetSeed records the RNG seed of the sweep that feeds this registry; it is
// included in WriteJSON so exported metrics identify their exact rerun.
func (g *Registry) SetSeed(seed int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.seed = seed
	g.hasSeed = true
}

// SetOnRecord installs a hook that observes every snapshot as it is
// recorded, after it is stored. It is the registry's streaming seam: a
// long-running server forwards each sweep cell's snapshot to live
// subscribers (SSE) the moment the cell finishes instead of polling the
// registry. The hook runs on the recording goroutine — with parallel sweep
// cells that means concurrently — and outside the registry lock, so it may
// call back into the registry but must be concurrency-safe itself.
func (g *Registry) SetOnRecord(f func(name string, s *Snapshot)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.onRecord = f
}

// Record stores a snapshot under name, replacing any previous snapshot with
// the same name, then invokes the OnRecord hook when one is installed.
func (g *Registry) Record(name string, s *Snapshot) {
	g.mu.Lock()
	g.snaps[name] = s
	f := g.onRecord
	g.mu.Unlock()
	if f != nil {
		f(name, s)
	}
}

// Get returns the snapshot recorded under name, or nil.
func (g *Registry) Get(name string) *Snapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.snaps[name]
}

// Names returns the recorded snapshot names, sorted.
func (g *Registry) Names() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	names := make([]string, 0, len(g.snaps))
	for name := range g.snaps {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of recorded snapshots.
func (g *Registry) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.snaps)
}

// Alerts returns every watchdog alert across recorded snapshots, prefixed
// with the run name.
func (g *Registry) Alerts() []string {
	var out []string
	for _, name := range g.Names() {
		s := g.Get(name)
		for _, a := range s.Alerts {
			out = append(out, name+": "+a.String())
		}
		if s.SuppressedAlerts > 0 {
			out = append(out, fmt.Sprintf("%s: (%d further alerts suppressed)", name, s.SuppressedAlerts))
		}
	}
	return out
}

// namedSnapshot pairs a run name with its snapshot for ordered JSON export.
type namedSnapshot struct {
	Name     string    `json:"name"`
	Snapshot *Snapshot `json:"snapshot"`
}

// registryDoc is the JSON layout of Registry.WriteJSON.
type registryDoc struct {
	Seed *int64          `json:"seed,omitempty"`
	Runs []namedSnapshot `json:"runs"`
}

// WriteJSON writes every recorded snapshot as one JSON document:
// {"seed": ..., "runs": [{"name": ..., "snapshot": {...}}, ...]}, sorted by
// name. The seed field appears when SetSeed was called.
func (g *Registry) WriteJSON(w io.Writer) error {
	doc := registryDoc{Runs: make([]namedSnapshot, 0, g.Len())}
	for _, name := range g.Names() {
		doc.Runs = append(doc.Runs, namedSnapshot{Name: name, Snapshot: g.Get(name)})
	}
	g.mu.Lock()
	if g.hasSeed {
		seed := g.seed
		doc.Seed = &seed
	}
	g.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// CSV exports every recorded snapshot as one table with a leading run column.
func (g *Registry) CSV() string {
	var b strings.Builder
	b.WriteString("run," + csvHeader + "\n")
	for _, name := range g.Names() {
		g.Get(name).appendCSV(&b, name+",")
	}
	return b.String()
}
