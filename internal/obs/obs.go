// Package obs is the observability layer of the NoC simulator: per-router /
// per-port counters (grants, blocked cycles, buffer occupancy, per-VC head
// ages), cycle-sampled and exportable as JSON/CSV snapshots, a concurrent
// registry that aggregates snapshots across parallel experiment cells, and a
// starvation/livelock watchdog that turns silent hangs into structured
// diagnostics.
//
// The package hooks the engine through noc.Observer (event counters) and
// Network.AddOnCycle (cycle sampling and watchdog scans); it never alters
// simulation behaviour. A Collector belongs to one network and, like the
// network itself, is not safe for concurrent use; the Registry is the
// concurrency boundary between parallel runs.
package obs

import (
	"mlnoc/internal/noc"
	"mlnoc/internal/stats"
)

// Latency-histogram shape: 4-cycle bins up to 1024 cycles, with quantiles in
// the overflow region interpolated toward the exact observed maximum.
const (
	latencyBinWidth = 4
	latencyBins     = 256
)

// portCounters accumulates per-input-port measurements.
type portCounters struct {
	grants     int64
	blocked    int64 // sampled cycles with a queued head that did not forward
	occSum     int64 // total queued messages over samples
	maxOcc     int
	maxHeadAge []int64 // per-VC max observed head local age
}

// routerCounters accumulates one router's measurements.
type routerCounters struct {
	ports     [noc.MaxPorts]*portCounters // nil where the port is unconnected
	injected  int64                       // messages entering the network here
	delivered int64                       // messages ejected at attached nodes
}

// Collector gathers per-router/per-port counters from one network: grant
// counts from engine events, and blocked cycles, buffer occupancy and head
// ages from cycle sampling. Create and install one with AttachCollector.
type Collector struct {
	net         *noc.Network
	sampleEvery int64
	startCycle  int64
	samples     int64
	routers     []routerCounters
	injected    int64
	delivered   int64
	// latency histograms generation-to-delivery latency for quantile
	// reporting (p50/p95/p99 in snapshots).
	latency *stats.Histogram
}

// AttachCollector creates a Collector for net and installs its hooks.
// Occupancy, blocked-cycle and head-age sampling runs every sampleEvery
// cycles (<= 1 means every cycle); event counters are exact regardless.
func AttachCollector(net *noc.Network, sampleEvery int64) *Collector {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	c := &Collector{
		net:         net,
		sampleEvery: sampleEvery,
		startCycle:  net.Cycle(),
		routers:     make([]routerCounters, len(net.Routers())),
		latency:     stats.NewHistogram(latencyBinWidth, latencyBins),
	}
	vcs := net.Config().VCs
	for i, r := range net.Routers() {
		for p := noc.PortID(0); p < noc.MaxPorts; p++ {
			if !r.HasPort(p) {
				continue
			}
			c.routers[i].ports[p] = &portCounters{maxHeadAge: make([]int64, vcs)}
		}
	}
	net.AddObserver(c)
	net.AddOnCycle(c.onCycle)
	return c
}

// ObserveInject implements noc.Observer.
func (c *Collector) ObserveInject(now int64, node *noc.Node, m *noc.Message) {
	c.injected++
	c.routers[node.Router.ID()].injected++
}

// ObserveGrant implements noc.Observer.
func (c *Collector) ObserveGrant(now int64, r *noc.Router, out noc.PortID, cand noc.Candidate) {
	c.routers[r.ID()].ports[cand.Port].grants++
}

// ObserveDeliver implements noc.Observer.
func (c *Collector) ObserveDeliver(now int64, node *noc.Node, m *noc.Message) {
	c.delivered++
	c.routers[node.Router.ID()].delivered++
	c.latency.Add(float64(now - m.GenCycle))
}

// LatencyQuantile returns the q-th quantile (0 <= q <= 1) of
// generation-to-delivery latency over the messages delivered since attach.
func (c *Collector) LatencyQuantile(q float64) float64 { return c.latency.Quantile(q) }

// onCycle samples buffer state after arbitration.
func (c *Collector) onCycle(net *noc.Network) {
	now := net.Cycle()
	if (now-c.startCycle)%c.sampleEvery != 0 {
		return
	}
	c.samples++
	for i, r := range net.Routers() {
		rc := &c.routers[i]
		for p := noc.PortID(0); p < noc.MaxPorts; p++ {
			pc := rc.ports[p]
			if pc == nil {
				continue
			}
			occ, queuedHead := 0, false
			for vc := range pc.maxHeadAge {
				b := r.Buffer(p, vc)
				occ += b.Len()
				if m := b.Head(); m != nil {
					queuedHead = true
					if age := m.LocalAge(now); age > pc.maxHeadAge[vc] {
						pc.maxHeadAge[vc] = age
					}
				}
			}
			pc.occSum += int64(occ)
			if occ > pc.maxOcc {
				pc.maxOcc = occ
			}
			if queuedHead && !r.ForwardedThisCycle(p, now) {
				pc.blocked++
			}
		}
	}
}
