package obs

import (
	"math/rand"
	"testing"

	"mlnoc/internal/arb"
	"mlnoc/internal/noc"
	"mlnoc/internal/traffic"
)

// biasPolicy always grants the candidate from the highest-numbered input
// port, so a through-flow on PortWest (4) permanently beats a local
// injection waiting on PortCore (0): the core head ages unboundedly.
type biasPolicy struct{}

func (biasPolicy) Name() string { return "bias" }
func (biasPolicy) Select(_ *noc.ArbContext, cands []noc.Candidate) int {
	best := 0
	for i, c := range cands {
		if c.Port > cands[best].Port {
			best = i
		}
	}
	return best
}

// deadMatcher never grants anything: every injected message freezes in its
// source buffer, producing a zero-delivery livelock.
type deadMatcher struct{}

func (deadMatcher) Name() string                                    { return "dead" }
func (deadMatcher) Select(_ *noc.ArbContext, _ []noc.Candidate) int { return 0 }
func (deadMatcher) Match(_ *noc.MatchContext, reqs []noc.Request) []int {
	out := make([]int, len(reqs))
	for i := range out {
		out[i] = -1
	}
	return out
}

// TestWatchdogCatchesStarvation builds a deterministic starvation scenario:
// on a 3x1 mesh, node 0 and node 1 both stream to node 2. At router 1 the
// east output arbitrates between the west input (node 0's traffic) and the
// core input (node 1's); the biased policy always grants the west input, so
// node 1's head message starves in the core buffer.
func TestWatchdogCatchesStarvation(t *testing.T) {
	net, cores := noc.BuildMeshCores(noc.Config{Width: 3, Height: 1, VCs: 1, BufferCap: 4})
	net.SetPolicy(biasPolicy{})
	w := AttachWatchdog(net, WatchdogConfig{MaxHeadAge: 200, CheckEvery: 10})

	var id uint64
	for cycle := 0; cycle < 2000; cycle++ {
		// Saturate both flows so the contested output never goes idle.
		if cores[0].PendingInjections() < 4 {
			id++
			cores[0].Inject(&noc.Message{ID: id, Dst: cores[2].ID, SizeFlits: 1})
		}
		if cores[1].PendingInjections() < 4 {
			id++
			cores[1].Inject(&noc.Message{ID: id, Dst: cores[2].ID, SizeFlits: 1})
		}
		net.Step()
	}
	if !w.Tripped() {
		t.Fatal("watchdog did not trip on a starved head message")
	}
	var starved *Alert
	for i := range w.Alerts() {
		if w.Alerts()[i].Kind == AlertStarvation {
			starved = &w.Alerts()[i]
			break
		}
	}
	if starved == nil {
		t.Fatalf("no starvation alert in %v", w.Alerts())
	}
	// Router 1's core input is the starved buffer.
	if starved.Router != 1 || starved.Port != noc.PortCore.String() {
		t.Fatalf("starvation flagged at router#%d %s, want router#1 core: %+v",
			starved.Router, starved.Port, *starved)
	}
	if starved.Age <= 200 {
		t.Fatalf("flagged age %d not above threshold", starved.Age)
	}
	if w.Summary() == "" {
		t.Fatal("tripped watchdog has empty summary")
	}
}

// TestWatchdogCatchesLivelock freezes a network mid-flight with a matcher
// that never grants, and checks the zero-delivery window alert fires with
// the in-flight count attached.
func TestWatchdogCatchesLivelock(t *testing.T) {
	net, cores := noc.BuildMeshCores(noc.Config{Width: 2, Height: 2, VCs: 1})
	net.SetPolicy(deadMatcher{})
	w := AttachWatchdog(net, WatchdogConfig{LivelockWindow: 300, CheckEvery: 50})

	cores[0].Inject(&noc.Message{ID: 1, Dst: cores[3].ID, SizeFlits: 1})
	cores[1].Inject(&noc.Message{ID: 2, Dst: cores[2].ID, SizeFlits: 1})
	net.Run(1000)

	if !w.Tripped() {
		t.Fatal("watchdog did not trip on a zero-delivery window")
	}
	a := w.Alerts()[0]
	if a.Kind != AlertLivelock {
		t.Fatalf("first alert = %+v, want livelock", a)
	}
	if a.InFlight != 2 {
		t.Fatalf("livelock alert reports %d in flight, want 2", a.InFlight)
	}
	if a.Window < 300 {
		t.Fatalf("livelock window %d below threshold", a.Window)
	}
	// Re-armed, not spamming: at most one alert per elapsed window.
	if got := len(w.Alerts()); got > 4 {
		t.Fatalf("livelock alert fired %d times in 1000 cycles", got)
	}
}

// TestWatchdogQuietOnHealthyRun checks the control case: a healthy
// uniform-random run under a fair policy must not trip either check.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	net, cores := noc.BuildMeshCores(noc.Config{Width: 4, Height: 4, VCs: 2})
	net.SetPolicy(arb.NewGlobalAge())
	w := AttachWatchdog(net, WatchdogConfig{MaxHeadAge: 500, LivelockWindow: 500, CheckEvery: 25})

	in := traffic.NewInjector(cores, traffic.UniformRandom{}, 0.08, rand.New(rand.NewSource(9)))
	in.Classes = 2
	for i := 0; i < 6000; i++ {
		in.Tick()
		net.Step()
	}
	if w.Tripped() {
		t.Fatalf("watchdog tripped on a healthy run:\n%s", w.Summary())
	}
	// An idle drained network must not look like a livelock either.
	net.Drain(20000)
	net.Run(2000)
	if w.Tripped() {
		t.Fatalf("watchdog tripped on an idle network:\n%s", w.Summary())
	}
}

// TestWatchdogDrainedThenIdle pins the livelock window reset: a network that
// delivered its traffic and then sits idle for many windows has zero
// deliveries but nothing in flight — that is quiescence, not livelock. Late
// traffic arriving after the idle gap must be measured against a fresh
// window, not inherit the gap.
func TestWatchdogDrainedThenIdle(t *testing.T) {
	net, cores := noc.BuildMeshCores(noc.Config{Width: 2, Height: 2, VCs: 1})
	net.SetPolicy(arb.NewGlobalAge())
	w := AttachWatchdog(net, WatchdogConfig{LivelockWindow: 100, CheckEvery: 10})

	cores[0].Inject(&noc.Message{ID: 1, Dst: cores[3].ID, SizeFlits: 1})
	if !net.Drain(1000) {
		t.Fatal("network did not drain")
	}
	net.Run(2000) // twenty livelock windows of drained idleness
	if w.Tripped() {
		t.Fatalf("watchdog tripped on a drained idle network:\n%s", w.Summary())
	}
	cores[0].Inject(&noc.Message{ID: 2, Dst: cores[3].ID, SizeFlits: 1})
	if !net.Drain(1000) {
		t.Fatal("late message did not drain")
	}
	if w.Tripped() {
		t.Fatalf("watchdog tripped on prompt post-idle traffic:\n%s", w.Summary())
	}
}

// TestWatchdogAlertCap checks that the alert list is bounded and overflow is
// counted, not dropped silently.
func TestWatchdogAlertCap(t *testing.T) {
	net, cores := noc.BuildMeshCores(noc.Config{Width: 2, Height: 1, VCs: 1})
	net.SetPolicy(deadMatcher{})
	w := AttachWatchdog(net, WatchdogConfig{LivelockWindow: 10, CheckEvery: 10, MaxAlerts: 3})
	cores[0].Inject(&noc.Message{ID: 1, Dst: cores[1].ID, SizeFlits: 1})
	net.Run(500)
	if len(w.Alerts()) != 3 {
		t.Fatalf("recorded %d alerts, want cap 3", len(w.Alerts()))
	}
	if w.Suppressed() == 0 {
		t.Fatal("no suppressed alerts counted past the cap")
	}
	snapAlerts := (&Suite{Collector: AttachCollector(net, 1), Watchdog: w}).Snapshot()
	if len(snapAlerts.Alerts) != 3 || snapAlerts.SuppressedAlerts != w.Suppressed() {
		t.Fatalf("suite snapshot lost alerts: %d recorded, %d suppressed",
			len(snapAlerts.Alerts), snapAlerts.SuppressedAlerts)
	}
}
