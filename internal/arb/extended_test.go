package arb

import (
	"math/rand"
	"testing"

	"mlnoc/internal/noc"
)

func TestWavefrontMatchValid(t *testing.T) {
	net, _ := noc.BuildMeshCores(noc.Config{Width: 3, Height: 3, VCs: 2})
	r := net.RouterAt(1, 1)
	p := NewWavefront()
	for cycle := int64(0); cycle < 12; cycle++ {
		mctx := &noc.MatchContext{Net: net, Router: r, Cycle: cycle}
		reqs := []noc.Request{
			{Out: noc.PortEast, Cands: []noc.Candidate{
				cand(noc.PortWest, 0, 1, 1, 0),
				cand(noc.PortCore, 0, 2, 2, 0),
			}},
			{Out: noc.PortSouth, Cands: []noc.Candidate{
				cand(noc.PortWest, 1, 3, 3, 0),
				cand(noc.PortNorth, 0, 4, 4, 0),
			}},
		}
		grants := p.Match(mctx, reqs)
		if len(grants) != 2 {
			t.Fatalf("grants = %v", grants)
		}
		used := map[noc.PortID]bool{}
		matched := 0
		for i, g := range grants {
			if g < 0 {
				continue
			}
			c := reqs[i].Cands[g]
			if used[c.Port] {
				t.Fatalf("cycle %d: input %v matched twice", cycle, c.Port)
			}
			used[c.Port] = true
			matched++
		}
		// Two outputs, disjoint inputs available: the wavefront sweep must
		// find the maximal matching of size 2.
		if matched != 2 {
			t.Fatalf("cycle %d: matched %d, want 2", cycle, matched)
		}
	}
}

func TestWavefrontRotatesPriority(t *testing.T) {
	net, _ := noc.BuildMeshCores(noc.Config{Width: 3, Height: 3, VCs: 1})
	r := net.RouterAt(1, 1)
	p := NewWavefront()
	// One output, two competing inputs: the diagonal rotation must not grant
	// the same input forever.
	seen := map[noc.PortID]bool{}
	for cycle := int64(0); cycle < noc.MaxPorts*2; cycle++ {
		mctx := &noc.MatchContext{Net: net, Router: r, Cycle: cycle}
		reqs := []noc.Request{{Out: noc.PortEast, Cands: []noc.Candidate{
			cand(noc.PortWest, 0, 1, 1, 0),
			cand(noc.PortNorth, 0, 2, 2, 0),
		}}}
		grants := p.Match(mctx, reqs)
		if grants[0] < 0 {
			t.Fatalf("cycle %d: output with requesters left idle", cycle)
		}
		seen[reqs[0].Cands[grants[0]].Port] = true
	}
	if len(seen) != 2 {
		t.Fatalf("wavefront always granted the same input: %v", seen)
	}
}

func TestPingPongAlternates(t *testing.T) {
	ctx, _ := testCtx(t, 1)
	p := NewPingPong()
	// Slots 0 (core) and 5 (east) sit in opposite halves of the tree.
	cands := []noc.Candidate{
		cand(noc.PortCore, 0, 1, 1, 0),
		cand(noc.PortEast, 0, 2, 2, 0),
	}
	counts := map[int]int{}
	var last int = -1
	alternations := 0
	for i := 0; i < 10; i++ {
		got := p.Select(ctx, cands)
		counts[got]++
		if last >= 0 && got != last {
			alternations++
		}
		last = got
	}
	if counts[0] != 5 || counts[1] != 5 {
		t.Fatalf("ping-pong not fair between halves: %v", counts)
	}
	if alternations < 9 {
		t.Fatalf("ping-pong did not alternate: %d alternations", alternations)
	}
}

func TestPingPongWorkConserving(t *testing.T) {
	ctx, _ := testCtx(t, 2)
	p := NewPingPong()
	// Only one candidate present: it must always win regardless of toggles.
	cands := []noc.Candidate{cand(noc.PortSouth, 1, 1, 1, 0)}
	for i := 0; i < 8; i++ {
		if got := p.Select(ctx, cands); got != 0 {
			t.Fatalf("sole candidate lost: %d", got)
		}
	}
}

func TestSlackAware(t *testing.T) {
	net, cores := noc.BuildMeshCores(noc.Config{Width: 2, Height: 2, VCs: 1})
	net.SetPolicy(NewSlackAware())
	// Source 0 has two messages in flight, source 1 has one: the policy must
	// prefer source 1's message (less slack -> more critical).
	cores[0].Inject(&noc.Message{ID: 1, Dst: cores[3].ID, SizeFlits: 1})
	cores[0].Inject(&noc.Message{ID: 2, Dst: cores[3].ID, SizeFlits: 1})
	net.Step()
	net.Step()
	cores[1].Inject(&noc.Message{ID: 3, Dst: cores[3].ID, SizeFlits: 1})
	net.Step()

	p := NewSlackAware()
	ctx := &noc.ArbContext{
		Net:    net,
		Router: net.RouterAt(1, 1),
		Out:    noc.PortCore,
		Cycle:  net.Cycle(),
	}
	cands := []noc.Candidate{
		cand(noc.PortWest, 0, 1, 1, 1),
		cand(noc.PortNorth, 0, 2, 2, 1),
	}
	cands[0].Msg.Src = cores[0].ID
	cands[1].Msg.Src = cores[1].ID
	if got := p.Select(ctx, cands); got != 1 {
		t.Fatalf("slack-aware picked %d, want the low-outstanding source (1)", got)
	}
	net.Drain(1000)
}

// TestExtendedPoliciesDeliver drives each extended policy end to end on a
// loaded mesh to check it never wedges or misroutes.
func TestExtendedPoliciesDeliver(t *testing.T) {
	for _, mk := range []func() noc.Policy{
		func() noc.Policy { return NewWavefront() },
		func() noc.Policy { return NewPingPong() },
		func() noc.Policy { return NewSlackAware() },
	} {
		p := mk()
		net, cores := noc.BuildMeshCores(noc.Config{Width: 4, Height: 4, VCs: 2, BufferCap: 2})
		net.SetPolicy(p)
		rng := rand.New(rand.NewSource(9))
		var id uint64
		for i := 0; i < 600; i++ {
			if rng.Float64() < 0.5 {
				id++
				src := cores[rng.Intn(len(cores))]
				dst := cores[rng.Intn(len(cores))]
				src.Inject(&noc.Message{
					ID: id, Dst: dst.ID, Class: noc.Class(rng.Intn(2)),
					SizeFlits: 1 + 4*rng.Intn(2),
				})
			}
			net.Step()
		}
		if !net.Drain(100000) {
			t.Fatalf("%s: network did not drain", p.Name())
		}
		if net.Stats().Delivered != int64(id) {
			t.Fatalf("%s: delivered %d of %d", p.Name(), net.Stats().Delivered, id)
		}
	}
}
