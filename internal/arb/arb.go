// Package arb implements the classical NoC arbitration policies the paper
// compares against: round-robin, FIFO (local age), iSLIP, probabilistic
// distance-based arbitration, global-age and random arbitration.
//
// All policies implement noc.Policy. iSLIP additionally implements
// noc.Matcher, computing a whole-router input/output matching per cycle.
package arb

import (
	"math/rand"

	"mlnoc/internal/noc"
)

// slotIndex flattens a (port, vc) pair into a dense per-router slot index
// used by pointer-based policies.
func slotIndex(c noc.Candidate, vcs int) int { return int(c.Port)*vcs + c.VC }

// perOutput is a lazily grown table of per-(router, output-port) state.
type perOutput[T any] struct{ state []T }

func (t *perOutput[T]) at(routerID int, out noc.PortID) *T {
	idx := routerID*noc.MaxPorts + int(out)
	for idx >= len(t.state) {
		var zero T
		t.state = append(t.state, zero)
	}
	return &t.state[idx]
}

// Random grants a uniformly random candidate. It is the weakest reasonable
// baseline and is also used to sanity-check the benchmark harness.
type Random struct {
	rng *rand.Rand
}

// NewRandom creates a Random policy using the given RNG.
func NewRandom(rng *rand.Rand) *Random { return &Random{rng: rng} }

// Name implements noc.Policy.
func (p *Random) Name() string { return "random" }

// Select implements noc.Policy.
func (p *Random) Select(_ *noc.ArbContext, cands []noc.Candidate) int {
	return p.rng.Intn(len(cands))
}

// RoundRobin is the traditional round-robin arbiter: each output port keeps a
// pointer over the input-buffer slots and grants the first requester at or
// after the pointer, then advances the pointer past the winner. It provides
// local fairness but no global equality of service (Section 2.1).
type RoundRobin struct {
	ptr perOutput[int]
}

// NewRoundRobin creates a round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements noc.Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// Select implements noc.Policy.
func (p *RoundRobin) Select(ctx *noc.ArbContext, cands []noc.Candidate) int {
	vcs := ctx.Router.NumVCs()
	nslots := noc.MaxPorts * vcs
	ptr := p.ptr.at(ctx.Router.ID(), ctx.Out)
	best, bestDist := 0, nslots+1
	for i, c := range cands {
		d := (slotIndex(c, vcs) - *ptr + nslots) % nslots
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	*ptr = (slotIndex(cands[best], vcs) + 1) % nslots
	return best
}

// FIFO grants the message that arrived at the local router earliest, i.e. the
// message with the largest local age. It is cheap to implement in hardware
// and captures a local notion of age, but local and global age diverge as
// networks grow (Section 3.2).
type FIFO struct{}

// NewFIFO creates a FIFO (oldest-local-arrival-first) policy.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements noc.Policy.
func (p *FIFO) Name() string { return "fifo" }

// Select implements noc.Policy.
func (p *FIFO) Select(_ *noc.ArbContext, cands []noc.Candidate) int {
	best := 0
	for i, c := range cands[1:] {
		if c.Msg.ArrivalCycle < cands[best].Msg.ArrivalCycle {
			best = i + 1
		}
	}
	return best
}

// GlobalAge grants the message that entered the network earliest. It is the
// paper's strong reference policy: near-ideal for equality of service but
// impractical to implement in on-chip hardware because it requires global
// timestamps (Section 2.1).
type GlobalAge struct{}

// NewGlobalAge creates a global-age (oldest-first) policy.
func NewGlobalAge() *GlobalAge { return &GlobalAge{} }

// Name implements noc.Policy.
func (p *GlobalAge) Name() string { return "global-age" }

// Select implements noc.Policy.
func (p *GlobalAge) Select(_ *noc.ArbContext, cands []noc.Candidate) int {
	best := 0
	for i, c := range cands[1:] {
		if c.Msg.InjectCycle < cands[best].Msg.InjectCycle {
			best = i + 1
		}
	}
	return best
}

// ProbDist approximates probabilistic distance-based arbitration (Lee et al.,
// MICRO 2010): a candidate wins with probability proportional to the number
// of hops it has already traversed (plus one), so messages that have crossed
// more of the network — and hence consumed more link bandwidth and are likely
// older — are favored, providing approximate equality of service without
// global timestamps.
type ProbDist struct {
	rng *rand.Rand
}

// NewProbDist creates a probabilistic distance-based policy.
func NewProbDist(rng *rand.Rand) *ProbDist { return &ProbDist{rng: rng} }

// Name implements noc.Policy.
func (p *ProbDist) Name() string { return "probdist" }

// Select implements noc.Policy.
func (p *ProbDist) Select(_ *noc.ArbContext, cands []noc.Candidate) int {
	total := 0
	for _, c := range cands {
		total += c.Msg.HopCount + 1
	}
	pick := p.rng.Intn(total)
	for i, c := range cands {
		pick -= c.Msg.HopCount + 1
		if pick < 0 {
			return i
		}
	}
	return len(cands) - 1 // unreachable
}

// ISLIP implements the iSLIP scheduling algorithm (McKeown, 1999) as a
// router-level matcher: in each of Iterations rounds, every unmatched output
// grants the first requesting unmatched input at or after its grant pointer,
// and every input that received grants accepts the first at or after its
// accept pointer. Pointers advance past the winner only for matches made in
// the first iteration, which is what gives iSLIP its desynchronization
// property.
type ISLIP struct {
	// Iterations is the number of grant/accept rounds per cycle (>= 1).
	Iterations int

	grantPtr  map[int]*[noc.MaxPorts]int // router ID -> per-output pointers
	acceptPtr map[int]*[noc.MaxPorts]int // router ID -> per-input pointers
}

// NewISLIP creates an iSLIP policy with the given number of iterations
// (values below 1 are treated as 1).
func NewISLIP(iterations int) *ISLIP {
	if iterations < 1 {
		iterations = 1
	}
	return &ISLIP{
		Iterations: iterations,
		grantPtr:   make(map[int]*[noc.MaxPorts]int),
		acceptPtr:  make(map[int]*[noc.MaxPorts]int),
	}
}

// Name implements noc.Policy.
func (p *ISLIP) Name() string { return "islip" }

// Select implements noc.Policy. It is only invoked if the engine is not using
// the Matcher interface; it applies a single grant round for one output.
func (p *ISLIP) Select(ctx *noc.ArbContext, cands []noc.Candidate) int {
	g := p.ptrs(p.grantPtr, ctx.Router.ID())
	best, bestDist := 0, noc.MaxPorts+1
	for i, c := range cands {
		d := (int(c.Port) - g[ctx.Out] + noc.MaxPorts) % noc.MaxPorts
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	g[ctx.Out] = (int(cands[best].Port) + 1) % noc.MaxPorts
	return best
}

func (p *ISLIP) ptrs(m map[int]*[noc.MaxPorts]int, routerID int) *[noc.MaxPorts]int {
	ptr := m[routerID]
	if ptr == nil {
		ptr = new([noc.MaxPorts]int)
		m[routerID] = ptr
	}
	return ptr
}

// Match implements noc.Matcher.
func (p *ISLIP) Match(ctx *noc.MatchContext, reqs []noc.Request) []int {
	grantPtr := p.ptrs(p.grantPtr, ctx.Router.ID())
	acceptPtr := p.ptrs(p.acceptPtr, ctx.Router.ID())

	result := make([]int, len(reqs))
	for i := range result {
		result[i] = -1
	}
	// repCand[r][in] is the candidate index within reqs[r] representing input
	// port in (the first eligible buffer of that port), or -1.
	repCand := make([][noc.MaxPorts]int, len(reqs))
	for r := range reqs {
		for in := range repCand[r] {
			repCand[r][in] = -1
		}
		for ci, c := range reqs[r].Cands {
			if repCand[r][c.Port] == -1 {
				repCand[r][c.Port] = ci
			}
		}
	}

	var inMatched, outMatched [noc.MaxPorts]bool
	for iter := 0; iter < p.Iterations; iter++ {
		// Grant phase: each unmatched output picks one requesting unmatched
		// input, round-robin from its grant pointer.
		grantTo := [noc.MaxPorts]int{} // output -> granted input, -1 if none
		for i := range grantTo {
			grantTo[i] = -1
		}
		for r := range reqs {
			out := int(reqs[r].Out)
			if outMatched[out] {
				continue
			}
			best, bestDist := -1, noc.MaxPorts+1
			for in := 0; in < noc.MaxPorts; in++ {
				if inMatched[in] || repCand[r][in] == -1 {
					continue
				}
				d := (in - grantPtr[out] + noc.MaxPorts) % noc.MaxPorts
				if d < bestDist {
					best, bestDist = in, d
				}
			}
			grantTo[out] = best
		}
		// Accept phase: each input that received one or more grants accepts
		// the output closest at or after its accept pointer.
		progress := false
		for in := 0; in < noc.MaxPorts; in++ {
			if inMatched[in] {
				continue
			}
			bestReq, bestOut, bestDist := -1, -1, noc.MaxPorts+1
			for r := range reqs {
				out := int(reqs[r].Out)
				if grantTo[out] != in {
					continue
				}
				d := (out - acceptPtr[in] + noc.MaxPorts) % noc.MaxPorts
				if d < bestDist {
					bestReq, bestOut, bestDist = r, out, d
				}
			}
			if bestReq == -1 {
				continue
			}
			inMatched[in] = true
			outMatched[bestOut] = true
			result[bestReq] = repCand[bestReq][in]
			progress = true
			if iter == 0 {
				grantPtr[bestOut] = (in + 1) % noc.MaxPorts
				acceptPtr[in] = (bestOut + 1) % noc.MaxPorts
			}
		}
		if !progress {
			break
		}
	}
	return result
}
