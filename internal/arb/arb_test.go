package arb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlnoc/internal/noc"
)

// testCtx builds a minimal arbitration context on a real 2x2 mesh router.
func testCtx(t *testing.T, vcs int) (*noc.ArbContext, *noc.Network) {
	t.Helper()
	net, _ := noc.BuildMeshCores(noc.Config{Width: 2, Height: 2, VCs: vcs})
	return &noc.ArbContext{
		Net:    net,
		Router: net.RouterAt(0, 0),
		Out:    noc.PortEast,
		Cycle:  100,
	}, net
}

func cand(port noc.PortID, vc int, inject, arrival int64, hops int) noc.Candidate {
	return noc.Candidate{
		Port: port,
		VC:   vc,
		Msg: &noc.Message{
			InjectCycle:  inject,
			ArrivalCycle: arrival,
			HopCount:     hops,
			SizeFlits:    1,
		},
	}
}

func TestGlobalAgePicksOldest(t *testing.T) {
	ctx, _ := testCtx(t, 2)
	cands := []noc.Candidate{
		cand(noc.PortCore, 0, 50, 90, 0),
		cand(noc.PortNorth, 0, 10, 95, 3), // oldest injection
		cand(noc.PortSouth, 1, 30, 80, 1),
	}
	p := NewGlobalAge()
	if got := p.Select(ctx, cands); got != 1 {
		t.Fatalf("GlobalAge picked %d, want 1", got)
	}
}

func TestFIFOPicksEarliestArrival(t *testing.T) {
	ctx, _ := testCtx(t, 2)
	cands := []noc.Candidate{
		cand(noc.PortCore, 0, 50, 90, 0),
		cand(noc.PortNorth, 0, 10, 95, 3),
		cand(noc.PortSouth, 1, 30, 80, 1), // earliest local arrival
	}
	p := NewFIFO()
	if got := p.Select(ctx, cands); got != 2 {
		t.Fatalf("FIFO picked %d, want 2", got)
	}
}

func TestRoundRobinRotates(t *testing.T) {
	ctx, _ := testCtx(t, 1)
	cands := []noc.Candidate{
		cand(noc.PortCore, 0, 1, 1, 0),
		cand(noc.PortNorth, 0, 2, 2, 0),
		cand(noc.PortSouth, 0, 3, 3, 0),
	}
	p := NewRoundRobin()
	var order []int
	for i := 0; i < 6; i++ {
		order = append(order, p.Select(ctx, cands))
	}
	// With a pointer starting at slot 0 and all three always requesting, the
	// grants must cycle through all candidates fairly.
	counts := map[int]int{}
	for _, o := range order {
		counts[o]++
	}
	for i := 0; i < 3; i++ {
		if counts[i] != 2 {
			t.Fatalf("round-robin grants uneven: %v", order)
		}
	}
	// No candidate granted twice in a row.
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			t.Fatalf("round-robin granted %d twice in a row: %v", order[i], order)
		}
	}
}

func TestRoundRobinPerOutputState(t *testing.T) {
	ctx, _ := testCtx(t, 1)
	p := NewRoundRobin()
	cands := []noc.Candidate{
		cand(noc.PortCore, 0, 1, 1, 0),
		cand(noc.PortNorth, 0, 2, 2, 0),
	}
	first := p.Select(ctx, cands)
	// A different output port has independent pointer state.
	ctx2 := *ctx
	ctx2.Out = noc.PortSouth
	if got := p.Select(&ctx2, cands); got != first {
		t.Fatalf("fresh output pointer should start at the same slot: %d vs %d", got, first)
	}
}

func TestProbDistFavorsTraveled(t *testing.T) {
	ctx, _ := testCtx(t, 1)
	rng := rand.New(rand.NewSource(11))
	p := NewProbDist(rng)
	// Candidate 1 has 9 hops vs 0: weight 10 vs 1.
	cands := []noc.Candidate{
		cand(noc.PortCore, 0, 1, 1, 0),
		cand(noc.PortNorth, 0, 2, 2, 9),
	}
	wins := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		if p.Select(ctx, cands) == 1 {
			wins++
		}
	}
	frac := float64(wins) / trials
	if frac < 0.87 || frac > 0.95 {
		t.Fatalf("ProbDist picked the traveled candidate %.3f of the time, want ~10/11", frac)
	}
}

func TestRandomUniform(t *testing.T) {
	ctx, _ := testCtx(t, 1)
	p := NewRandom(rand.New(rand.NewSource(3)))
	cands := []noc.Candidate{
		cand(noc.PortCore, 0, 1, 1, 0),
		cand(noc.PortNorth, 0, 2, 2, 0),
		cand(noc.PortSouth, 0, 3, 3, 0),
	}
	counts := map[int]int{}
	const trials = 9000
	for i := 0; i < trials; i++ {
		counts[p.Select(ctx, cands)]++
	}
	for i := 0; i < 3; i++ {
		frac := float64(counts[i]) / trials
		if frac < 0.30 || frac > 0.37 {
			t.Fatalf("Random candidate %d got %.3f of grants, want ~1/3", i, frac)
		}
	}
}

// TestQuickSelectInRange: every policy must return an index within the
// candidate slice for arbitrary candidate sets.
func TestQuickSelectInRange(t *testing.T) {
	ctx, _ := testCtx(t, 3)
	rng := rand.New(rand.NewSource(17))
	policies := []noc.Policy{
		NewRandom(rand.New(rand.NewSource(1))),
		NewRoundRobin(),
		NewFIFO(),
		NewGlobalAge(),
		NewProbDist(rand.New(rand.NewSource(2))),
		NewISLIP(2),
	}
	f := func(n8 uint8, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(n8)%6 + 2
		cands := make([]noc.Candidate, n)
		ports := []noc.PortID{noc.PortCore, noc.PortNorth, noc.PortSouth, noc.PortWest, noc.PortEast}
		for i := range cands {
			cands[i] = cand(ports[i%len(ports)], r.Intn(3),
				int64(r.Intn(100)), int64(r.Intn(100)), r.Intn(16))
		}
		for _, p := range policies {
			got := p.Select(ctx, cands)
			if got < 0 || got >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestISLIPMatchValid(t *testing.T) {
	net, _ := noc.BuildMeshCores(noc.Config{Width: 3, Height: 3, VCs: 2})
	r := net.RouterAt(1, 1)
	mctx := &noc.MatchContext{Net: net, Router: r, Cycle: 5}
	p := NewISLIP(2)

	reqs := []noc.Request{
		{Out: noc.PortEast, Cands: []noc.Candidate{
			cand(noc.PortWest, 0, 1, 1, 2),
			cand(noc.PortCore, 0, 2, 2, 0),
		}},
		{Out: noc.PortSouth, Cands: []noc.Candidate{
			cand(noc.PortWest, 1, 3, 3, 1),
			cand(noc.PortNorth, 0, 4, 4, 2),
		}},
	}
	grants := p.Match(mctx, reqs)
	if len(grants) != len(reqs) {
		t.Fatalf("got %d grants for %d requests", len(grants), len(reqs))
	}
	used := map[noc.PortID]bool{}
	matched := 0
	for i, g := range grants {
		if g < 0 {
			continue
		}
		c := reqs[i].Cands[g]
		if used[c.Port] {
			t.Fatalf("input port %v matched twice", c.Port)
		}
		used[c.Port] = true
		matched++
	}
	// Both outputs can be served by distinct inputs here; with 2 iterations
	// iSLIP must find a maximal matching of size 2.
	if matched != 2 {
		t.Fatalf("iSLIP matched %d pairs, want 2", matched)
	}
}

// TestISLIPMaximalWithIterations: a conflict resolved in iteration 1 frees an
// output that iteration 2 must fill.
func TestISLIPMaximalWithIterations(t *testing.T) {
	net, _ := noc.BuildMeshCores(noc.Config{Width: 3, Height: 3, VCs: 1})
	r := net.RouterAt(1, 1)
	mctx := &noc.MatchContext{Net: net, Router: r, Cycle: 1}

	// Input W requests both outputs; input N requests only East.
	reqs := []noc.Request{
		{Out: noc.PortEast, Cands: []noc.Candidate{
			cand(noc.PortWest, 0, 1, 1, 0),
			cand(noc.PortNorth, 0, 2, 2, 0),
		}},
		{Out: noc.PortSouth, Cands: []noc.Candidate{
			cand(noc.PortWest, 0, 3, 3, 0),
		}},
	}
	p := NewISLIP(2)
	grants := p.Match(mctx, reqs)
	matched := 0
	for _, g := range grants {
		if g >= 0 {
			matched++
		}
	}
	if matched != 2 {
		t.Fatalf("2-iteration iSLIP matched %d, want 2 (W->South, N->East)", matched)
	}
	// Specifically W must not take East while starving South.
	if g := grants[1]; g < 0 {
		t.Fatal("South output left unmatched")
	}
}

func TestISLIPDesynchronization(t *testing.T) {
	// Two outputs contending for the same two inputs every cycle: after the
	// first cycle's pointer updates, iSLIP should serve both outputs from
	// different inputs (desynchronized pointers), achieving full matching.
	net, _ := noc.BuildMeshCores(noc.Config{Width: 3, Height: 3, VCs: 1})
	r := net.RouterAt(1, 1)
	mctx := &noc.MatchContext{Net: net, Router: r, Cycle: 1}
	p := NewISLIP(1)
	reqs := []noc.Request{
		{Out: noc.PortEast, Cands: []noc.Candidate{
			cand(noc.PortWest, 0, 1, 1, 0), cand(noc.PortNorth, 0, 2, 2, 0)}},
		{Out: noc.PortSouth, Cands: []noc.Candidate{
			cand(noc.PortWest, 0, 3, 3, 0), cand(noc.PortNorth, 0, 4, 4, 0)}},
	}
	total := 0
	for cycle := 0; cycle < 4; cycle++ {
		mctx.Cycle = int64(cycle)
		grants := p.Match(mctx, reqs)
		for _, g := range grants {
			if g >= 0 {
				total++
			}
		}
	}
	// First cycle may match only one pair; afterwards pointers desynchronize
	// and both outputs match every cycle: >= 1 + 2*3 = 7 grants.
	if total < 7 {
		t.Fatalf("iSLIP matched %d pairs over 4 cycles, want >= 7 after desynchronization", total)
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []noc.Policy{
		NewRandom(rand.New(rand.NewSource(1))), NewRoundRobin(), NewFIFO(),
		NewGlobalAge(), NewProbDist(rand.New(rand.NewSource(1))), NewISLIP(1),
	} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}
