package arb

import (
	"mlnoc/internal/noc"
)

// This file implements additional arbiters from the paper's related work
// (Section 7): the wavefront allocator, ping-pong arbitration, and a
// slack-aware policy in the spirit of Aergia. They are extensions beyond the
// paper's Fig. 9 policy set, used by the extended fairness study and
// available to users of the library.

// Wavefront implements a wavefront allocator (Section 7, [34]): a
// router-level matcher that sweeps diagonal "wavefronts" of the input/output
// request matrix, granting every unconflicted request on a diagonal
// simultaneously. The starting diagonal rotates each cycle for fairness. It
// finds a maximal matching but, as the paper notes, its latency grows with
// the number of requesters.
type Wavefront struct{}

// NewWavefront creates a wavefront allocator.
func NewWavefront() *Wavefront { return &Wavefront{} }

// Name implements noc.Policy.
func (p *Wavefront) Name() string { return "wavefront" }

// Select implements noc.Policy for the degenerate single-output case (used
// only if the engine bypasses matching): first candidate of the rotating
// diagonal's input.
func (p *Wavefront) Select(ctx *noc.ArbContext, cands []noc.Candidate) int {
	return int(ctx.Cycle) % len(cands)
}

// Match implements noc.Matcher.
func (p *Wavefront) Match(ctx *noc.MatchContext, reqs []noc.Request) []int {
	grants := make([]int, len(reqs))
	for i := range grants {
		grants[i] = -1
	}
	// Representative candidate per (request, input port).
	const n = noc.MaxPorts
	rep := make([][n]int, len(reqs))
	for r := range reqs {
		for in := range rep[r] {
			rep[r][in] = -1
		}
		for ci, c := range reqs[r].Cands {
			if rep[r][c.Port] == -1 {
				rep[r][c.Port] = ci
			}
		}
	}
	var inUsed [n]bool
	outUsed := make([]bool, len(reqs))
	start := int(ctx.Cycle) % n
	for k := 0; k < n; k++ {
		for r := range reqs {
			if outUsed[r] {
				continue
			}
			out := int(reqs[r].Out)
			// The wavefront for offset k grants (in, out) pairs on the
			// rotating diagonal in + out ≡ start + k (mod n).
			in := ((start+k-out)%n + n) % n
			if inUsed[in] || rep[r][in] == -1 {
				continue
			}
			inUsed[in] = true
			outUsed[r] = true
			grants[r] = rep[r][in]
		}
	}
	return grants
}

// PingPong implements ping-pong arbitration (Section 7, [31]): inputs are
// split recursively into two groups and a per-level toggle alternates which
// group is served first, providing fair bandwidth sharing with a tree of
// small arbiters.
type PingPong struct {
	toggles perOutput[uint32] // per (router, output): one toggle bit per level
}

// NewPingPong creates a ping-pong arbiter.
func NewPingPong() *PingPong { return &PingPong{} }

// Name implements noc.Policy.
func (p *PingPong) Name() string { return "ping-pong" }

// Select implements noc.Policy.
func (p *PingPong) Select(ctx *noc.ArbContext, cands []noc.Candidate) int {
	vcs := ctx.Router.NumVCs()
	nslots := noc.MaxPorts * vcs
	tog := p.toggles.at(ctx.Router.ID(), ctx.Out)

	present := make(map[int]int, len(cands)) // slot -> candidate index
	for i, c := range cands {
		present[slotIndex(c, vcs)] = i
	}
	slot, ok := p.pick(0, 0, nslots, present, tog)
	if !ok {
		return 0 // unreachable: cands is non-empty
	}
	return present[slot]
}

// pick recursively selects a requesting slot in [lo, hi) using the toggle bit
// at the given tree level, flipping the bit of every level it descends
// through (the "ping-pong").
func (p *PingPong) pick(level, lo, hi int, present map[int]int, tog *uint32) (int, bool) {
	if hi-lo == 1 {
		_, ok := present[lo]
		return lo, ok
	}
	mid := (lo + hi + 1) / 2
	first := *tog&(1<<level) == 0
	order := [2][2]int{{lo, mid}, {mid, hi}}
	if !first {
		order[0], order[1] = order[1], order[0]
	}
	for _, seg := range order {
		if slot, ok := p.pick(level+1, seg[0], seg[1], present, tog); ok {
			*tog ^= 1 << level // alternate for the next arbitration
			return slot, true
		}
	}
	return 0, false
}

// SlackAware approximates slack-aware arbitration (Section 7, Das et al.
// [32]): messages whose source has few other requests in flight are likely
// on the critical path (their originator is stalled waiting), so lower
// outstanding-count wins; ties fall back to larger local age.
type SlackAware struct{}

// NewSlackAware creates a slack-aware policy.
func NewSlackAware() *SlackAware { return &SlackAware{} }

// Name implements noc.Policy.
func (p *SlackAware) Name() string { return "slack-aware" }

// Select implements noc.Policy.
func (p *SlackAware) Select(ctx *noc.ArbContext, cands []noc.Candidate) int {
	best := 0
	bestSlack := ctx.Net.OutstandingFrom(cands[0].Msg.Src)
	for i, c := range cands[1:] {
		s := ctx.Net.OutstandingFrom(c.Msg.Src)
		if s < bestSlack ||
			(s == bestSlack && c.Msg.ArrivalCycle < cands[best].Msg.ArrivalCycle) {
			best, bestSlack = i+1, s
		}
	}
	return best
}
