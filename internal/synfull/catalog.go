package synfull

import (
	"fmt"
	"sort"
)

// The nine Table 1 workload models. Each is a hand-parameterized behavioural
// characterization of the named application (see the package comment); the
// parameters were chosen so that the high-injection group sustains more than
// 0.05 flits/cycle/node on the 64-CU system and the low-injection group does
// not, matching Fig. 11's grouping criterion.
var catalog = []*Model{
	{
		Name: "dct", Suite: "AMD SDK",
		// Blocked DCT: long compute phases on cached blocks with short
		// transform-boundary bursts.
		Phases: []Phase{
			{Name: "compute", MemRatio: 0.18, WriteRatio: 0.25, L1Hit: 0.82, L2Hit: 0.75,
				CoherenceRate: 0.0004, CPUMemRate: 0.02, LLCHit: 0.80, Next: []float64{0.85, 0.15}},
			{Name: "block-swap", MemRatio: 0.40, WriteRatio: 0.45, L1Hit: 0.55, L2Hit: 0.65,
				CoherenceRate: 0.0010, CPUMemRate: 0.03, LLCHit: 0.75, Next: []float64{0.60, 0.40}},
		},
		PhaseLen: 300, OpsPerCU: 3000, OpsPerCPU: 900, IssueWidth: 1, Window: 16,
		HighInjection: false,
	},
	{
		Name: "histogram", Suite: "AMD SDK",
		// Bin updates: write-heavy, poor L1 locality on the shared bins,
		// frequent coherence on the merged histogram.
		Phases: []Phase{
			{Name: "scatter", MemRatio: 0.50, WriteRatio: 0.55, L1Hit: 0.35, L2Hit: 0.60,
				CoherenceRate: 0.0030, CPUMemRate: 0.04, LLCHit: 0.70, Next: []float64{0.80, 0.20}},
			{Name: "merge", MemRatio: 0.35, WriteRatio: 0.30, L1Hit: 0.50, L2Hit: 0.55,
				CoherenceRate: 0.0050, CPUMemRate: 0.05, LLCHit: 0.65, Next: []float64{0.50, 0.50}},
		},
		PhaseLen: 250, OpsPerCU: 2600, OpsPerCPU: 1000, IssueWidth: 1, Window: 16,
		HighInjection: true,
	},
	{
		Name: "matrixmul", Suite: "AMD SDK",
		// Tiled GEMM: dominated by reuse out of L1, light steady traffic.
		Phases: []Phase{
			{Name: "tile", MemRatio: 0.22, WriteRatio: 0.15, L1Hit: 0.90, L2Hit: 0.80,
				CoherenceRate: 0.0002, CPUMemRate: 0.015, LLCHit: 0.85, Next: []float64{0.90, 0.10}},
			{Name: "tile-load", MemRatio: 0.45, WriteRatio: 0.10, L1Hit: 0.50, L2Hit: 0.70,
				CoherenceRate: 0.0005, CPUMemRate: 0.02, LLCHit: 0.80, Next: []float64{0.70, 0.30}},
		},
		PhaseLen: 400, OpsPerCU: 3200, OpsPerCPU: 800, IssueWidth: 1, Window: 16,
		HighInjection: false,
	},
	{
		Name: "reduction", Suite: "AMD SDK",
		// Tree reduction: streaming read phase, then narrowing combine
		// rounds with falling locality.
		Phases: []Phase{
			{Name: "stream", MemRatio: 0.55, WriteRatio: 0.20, L1Hit: 0.40, L2Hit: 0.55,
				CoherenceRate: 0.0015, CPUMemRate: 0.03, LLCHit: 0.75, Next: []float64{0.70, 0.30}},
			{Name: "combine", MemRatio: 0.40, WriteRatio: 0.35, L1Hit: 0.55, L2Hit: 0.50,
				CoherenceRate: 0.0025, CPUMemRate: 0.04, LLCHit: 0.70, Next: []float64{0.45, 0.55}},
		},
		PhaseLen: 220, OpsPerCU: 2400, OpsPerCPU: 900, IssueWidth: 1, Window: 16,
		HighInjection: true,
	},
	{
		Name: "spmv", Suite: "OpenDwarfs",
		// Sparse matrix-vector product: irregular gathers, little reuse,
		// memory bound throughout.
		Phases: []Phase{
			{Name: "gather", MemRatio: 0.60, WriteRatio: 0.12, L1Hit: 0.42, L2Hit: 0.45,
				CoherenceRate: 0.0012, CPUMemRate: 0.035, LLCHit: 0.70, Next: []float64{0.88, 0.12}},
			{Name: "row-end", MemRatio: 0.35, WriteRatio: 0.40, L1Hit: 0.60, L2Hit: 0.55,
				CoherenceRate: 0.0020, CPUMemRate: 0.04, LLCHit: 0.70, Next: []float64{0.75, 0.25}},
		},
		PhaseLen: 260, OpsPerCU: 2400, OpsPerCPU: 1100, IssueWidth: 1, Window: 16,
		HighInjection: true,
	},
	{
		Name: "bfs", Suite: "Rodinia",
		// Breadth-first search: bursty frontier expansion alternating with
		// low-activity level boundaries; the paper trains its APU agent on
		// this model (Fig. 7).
		Phases: []Phase{
			{Name: "frontier", MemRatio: 0.58, WriteRatio: 0.30, L1Hit: 0.38, L2Hit: 0.48,
				CoherenceRate: 0.0028, CPUMemRate: 0.05, LLCHit: 0.65, Next: []float64{0.75, 0.25}},
			{Name: "level-sync", MemRatio: 0.20, WriteRatio: 0.50, L1Hit: 0.60, L2Hit: 0.60,
				CoherenceRate: 0.0040, CPUMemRate: 0.06, LLCHit: 0.60, Next: []float64{0.65, 0.35}},
		},
		PhaseLen: 200, OpsPerCU: 2200, OpsPerCPU: 1200, IssueWidth: 1, Window: 16,
		HighInjection: true,
	},
	{
		Name: "hotspot", Suite: "Rodinia",
		// Structured stencil: regular neighbour reads with good tile reuse.
		Phases: []Phase{
			{Name: "stencil", MemRatio: 0.28, WriteRatio: 0.30, L1Hit: 0.74, L2Hit: 0.72,
				CoherenceRate: 0.0006, CPUMemRate: 0.02, LLCHit: 0.80, Next: []float64{0.88, 0.12}},
			{Name: "halo", MemRatio: 0.45, WriteRatio: 0.25, L1Hit: 0.52, L2Hit: 0.60,
				CoherenceRate: 0.0012, CPUMemRate: 0.025, LLCHit: 0.78, Next: []float64{0.70, 0.30}},
		},
		PhaseLen: 320, OpsPerCU: 2800, OpsPerCPU: 850, IssueWidth: 1, Window: 16,
		HighInjection: false,
	},
	{
		Name: "comd", Suite: "HPC proxy",
		// Molecular dynamics proxy: force computation out of cache with
		// periodic neighbour-list exchanges.
		Phases: []Phase{
			{Name: "force", MemRatio: 0.25, WriteRatio: 0.20, L1Hit: 0.80, L2Hit: 0.70,
				CoherenceRate: 0.0005, CPUMemRate: 0.03, LLCHit: 0.82, Next: []float64{0.85, 0.15}},
			{Name: "exchange", MemRatio: 0.50, WriteRatio: 0.40, L1Hit: 0.45, L2Hit: 0.55,
				CoherenceRate: 0.0020, CPUMemRate: 0.05, LLCHit: 0.72, Next: []float64{0.55, 0.45}},
		},
		PhaseLen: 280, OpsPerCU: 3000, OpsPerCPU: 1300, IssueWidth: 1, Window: 16,
		HighInjection: false,
	},
	{
		Name: "minife", Suite: "HPC proxy",
		// Finite-element CG solve: repeated SpMV plus dot products, memory
		// bound with modest CPU orchestration traffic.
		Phases: []Phase{
			{Name: "spmv", MemRatio: 0.55, WriteRatio: 0.15, L1Hit: 0.45, L2Hit: 0.48,
				CoherenceRate: 0.0010, CPUMemRate: 0.045, LLCHit: 0.68, Next: []float64{0.82, 0.18}},
			{Name: "dot", MemRatio: 0.42, WriteRatio: 0.10, L1Hit: 0.55, L2Hit: 0.52,
				CoherenceRate: 0.0018, CPUMemRate: 0.05, LLCHit: 0.66, Next: []float64{0.60, 0.40}},
		},
		PhaseLen: 240, OpsPerCU: 2400, OpsPerCPU: 1400, IssueWidth: 1, Window: 16,
		HighInjection: true,
	},
}

func init() {
	for _, m := range catalog {
		m.validate()
	}
}

// Catalog returns the nine Table 1 workload models in a stable order.
func Catalog() []*Model { return append([]*Model(nil), catalog...) }

// ByName returns the named model or an error listing the available names.
func ByName(name string) (*Model, error) {
	for _, m := range catalog {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("synfull: unknown model %q (have %v)", name, Names())
}

// Names returns the catalog model names in order.
func Names() []string {
	out := make([]string, len(catalog))
	for i, m := range catalog {
		out[i] = m.Name
	}
	return out
}

// HighInjection returns the models classified as high-injection
// (> 0.05 flits/cycle/node), sorted by name.
func HighInjection() []*Model { return byClass(true) }

// LowInjection returns the models classified as low-injection, sorted by
// name.
func LowInjection() []*Model { return byClass(false) }

func byClass(high bool) []*Model {
	var out []*Model
	for _, m := range catalog {
		if m.HighInjection == high {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Mix returns a Fig. 11 workload mix with the given number of low- and
// high-injection applications (low+high must equal 4): the first `low`
// models from the low-injection group and the first `high` from the
// high-injection group, deterministic per (low, high).
func Mix(low, high int) ([]*Model, error) {
	if low < 0 || high < 0 || low+high != 4 {
		return nil, fmt.Errorf("synfull: mix needs low+high == 4, got %d+%d", low, high)
	}
	ls, hs := LowInjection(), HighInjection()
	if low > len(ls) || high > len(hs) {
		return nil, fmt.Errorf("synfull: not enough models for %dL%dH", low, high)
	}
	var out []*Model
	out = append(out, ls[:low]...)
	out = append(out, hs[:high]...)
	return out, nil
}
