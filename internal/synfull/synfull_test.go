package synfull

import (
	"testing"
	"testing/quick"
)

func TestCatalogComplete(t *testing.T) {
	names := map[string]string{
		"dct":       "AMD SDK",
		"histogram": "AMD SDK",
		"matrixmul": "AMD SDK",
		"reduction": "AMD SDK",
		"spmv":      "OpenDwarfs",
		"bfs":       "Rodinia",
		"hotspot":   "Rodinia",
		"comd":      "HPC proxy",
		"minife":    "HPC proxy",
	}
	cat := Catalog()
	if len(cat) != 9 {
		t.Fatalf("catalog has %d models, want 9 (Table 1)", len(cat))
	}
	for _, m := range cat {
		suite, ok := names[m.Name]
		if !ok {
			t.Errorf("unexpected model %q", m.Name)
			continue
		}
		if m.Suite != suite {
			t.Errorf("%s suite = %q, want %q", m.Name, m.Suite, suite)
		}
		delete(names, m.Name)
	}
	for n := range names {
		t.Errorf("missing Table 1 model %q", n)
	}
}

func TestCatalogIsACopy(t *testing.T) {
	a := Catalog()
	a[0] = nil
	if Catalog()[0] == nil {
		t.Fatal("Catalog exposes internal slice")
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("bfs")
	if err != nil || m.Name != "bfs" {
		t.Fatalf("ByName(bfs) = %v, %v", m, err)
	}
	if _, err := ByName("quake3"); err == nil {
		t.Fatal("ByName accepted unknown model")
	}
}

func TestInjectionGroups(t *testing.T) {
	his, lows := HighInjection(), LowInjection()
	if len(his)+len(lows) != 9 {
		t.Fatalf("groups cover %d models", len(his)+len(lows))
	}
	if len(his) < 4 || len(lows) < 4 {
		t.Fatalf("need >= 4 models per group for Fig. 11 (have %dH %dL)", len(his), len(lows))
	}
	for _, m := range his {
		if !m.HighInjection {
			t.Errorf("%s misclassified as high-injection", m.Name)
		}
	}
	for _, m := range lows {
		if m.HighInjection {
			t.Errorf("%s misclassified as low-injection", m.Name)
		}
	}
}

func TestMix(t *testing.T) {
	for high := 0; high <= 4; high++ {
		ms, err := Mix(4-high, high)
		if err != nil {
			t.Fatalf("Mix(%d,%d): %v", 4-high, high, err)
		}
		if len(ms) != 4 {
			t.Fatalf("Mix returned %d models", len(ms))
		}
		gotHigh := 0
		for _, m := range ms {
			if m.HighInjection {
				gotHigh++
			}
		}
		if gotHigh != high {
			t.Fatalf("Mix(%d,%d) has %d high models", 4-high, high, gotHigh)
		}
	}
	if _, err := Mix(2, 3); err == nil {
		t.Fatal("Mix accepted low+high != 4")
	}
	if _, err := Mix(-1, 5); err == nil {
		t.Fatal("Mix accepted negative count")
	}
}

func TestMixDeterministic(t *testing.T) {
	a, _ := Mix(2, 2)
	b, _ := Mix(2, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Mix not deterministic")
		}
	}
}

func TestModelValidation(t *testing.T) {
	bad := &Model{
		Name: "bad", Phases: []Phase{{Next: []float64{0.5}}},
		PhaseLen: 10, OpsPerCU: 1, IssueWidth: 1, Window: 1,
	}
	defer func() {
		if recover() == nil {
			t.Fatal("validate accepted transition probabilities summing to 0.5")
		}
	}()
	bad.validate()
}

func TestInstancePhaseMachine(t *testing.T) {
	m, _ := ByName("bfs")
	in := NewInstance(m, 99)
	if in.PhaseIndex() != 0 {
		t.Fatal("instance must start in phase 0")
	}
	seen := map[int]bool{0: true}
	for cycle := int64(0); cycle < m.PhaseLen*200; cycle++ {
		in.Tick(cycle)
		p := in.PhaseIndex()
		if p < 0 || p >= len(m.Phases) {
			t.Fatalf("phase index %d out of range", p)
		}
		seen[p] = true
	}
	// bfs has two phases with healthy transition probabilities; over 200
	// phase draws both must occur.
	if !seen[1] {
		t.Fatal("Markov chain never left phase 0 in 200 draws")
	}
	if len(in.PhaseHistory()) == 0 {
		t.Fatal("phase history empty after transitions")
	}
}

func TestInstanceDeterministicPerSeed(t *testing.T) {
	m, _ := ByName("spmv")
	a, b := NewInstance(m, 5), NewInstance(m, 5)
	for cycle := int64(0); cycle < m.PhaseLen*50; cycle++ {
		a.Tick(cycle)
		b.Tick(cycle)
		if a.PhaseIndex() != b.PhaseIndex() {
			t.Fatal("same-seed instances diverged")
		}
	}
}

func TestQuickPhaseProbabilitiesAreDistributions(t *testing.T) {
	// Property over the catalog: every phase's transitions form a
	// distribution and all rates are probabilities.
	f := func(mi, pi uint8) bool {
		m := Catalog()[int(mi)%9]
		p := m.Phases[int(pi)%len(m.Phases)]
		sum := 0.0
		for _, pr := range p.Next {
			if pr < 0 || pr > 1 {
				return false
			}
			sum += pr
		}
		if sum < 0.999 || sum > 1.001 {
			return false
		}
		for _, v := range []float64{p.MemRatio, p.WriteRatio, p.L1Hit, p.L2Hit,
			p.CoherenceRate, p.CPUMemRate, p.LLCHit} {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModelString(t *testing.T) {
	m, _ := ByName("dct")
	if m.String() == "" {
		t.Fatal("empty model string")
	}
}
