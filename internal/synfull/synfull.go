// Package synfull provides Markov-model application traffic generators in
// the style of APU-SynFull (Yin et al., HPCA 2016), the methodology the paper
// uses to drive its APU experiments (Section 4.2).
//
// The original APU-SynFull fits stochastic Markov models to gem5 traces of
// real applications. Those traces are not available, so this package ships
// hand-parameterized models that regenerate the same *classes* of behaviour
// the paper relies on: program phases with different traffic intensity,
// distinct CPU and GPU activity, per-node injection-rate classes
// (high-/low-injection for Fig. 11), and — crucially — memory-instruction
// dependencies via a bounded outstanding-request window, which is what lets
// arbitration decisions change total program execution time (Figs. 9-11).
//
// The nine models carry the paper's Table 1 workload names; their parameters
// are synthetic characterizations of those applications, not fits to traces
// (see DESIGN.md, "Substitutions").
package synfull

import (
	"fmt"
	"math/rand"
)

// Phase is one Markov program phase: the per-cycle behavioural parameters of
// the compute units and CPU while the phase is active.
type Phase struct {
	// Name describes the phase ("compute", "memory", ...).
	Name string
	// MemRatio is the fraction of CU operations that access memory.
	MemRatio float64
	// WriteRatio is the fraction of memory operations that are writes
	// (GPU caches are write-through/write-no-allocate, Section 4.1).
	WriteRatio float64
	// L1Hit is the GPU L1D hit rate; hits generate no NoC traffic.
	L1Hit float64
	// L2Hit is the GPU L2 hit rate; misses go to a directory.
	L2Hit float64
	// CoherenceRate is the per-CU per-cycle probability that the directory
	// layer generates a coherence message involving this CU.
	CoherenceRate float64
	// CPUMemRate is the per-cycle probability the CPU issues a memory
	// operation (to its LLC).
	CPUMemRate float64
	// LLCHit is the CPU last-level-cache hit rate.
	LLCHit float64
	// Next holds the Markov transition probabilities to each phase; it must
	// sum to 1 and have one entry per phase of the model.
	Next []float64
}

// Model is one application traffic model.
type Model struct {
	// Name is the paper's Table 1 application name.
	Name string
	// Suite is the benchmark suite of origin (Table 1).
	Suite string
	// Phases are the Markov phases; execution starts in phase 0.
	Phases []Phase
	// PhaseLen is the number of cycles between phase-transition draws.
	PhaseLen int64
	// OpsPerCU is the number of operations each compute unit must retire for
	// the instance to complete (scaled by the runner's OpScale).
	OpsPerCU int64
	// OpsPerCPU is the CPU-side operation count per instance.
	OpsPerCPU int64
	// IssueWidth is the number of operations a CU may issue per cycle.
	IssueWidth int
	// Window is the per-CU bound on outstanding memory requests (MSHRs);
	// a full window stalls the CU, coupling NoC latency to execution time.
	Window int
	// HighInjection classifies the model into Fig. 11's high-injection
	// (> 0.05 flits/cycle/node) or low-injection group.
	HighInjection bool
}

// String implements fmt.Stringer.
func (m *Model) String() string {
	cls := "L"
	if m.HighInjection {
		cls = "H"
	}
	return fmt.Sprintf("%s(%s,%s)", m.Name, m.Suite, cls)
}

// validate panics if the model's Markov structure is malformed; it runs once
// at catalog construction.
func (m *Model) validate() {
	if len(m.Phases) == 0 || m.PhaseLen <= 0 || m.OpsPerCU <= 0 ||
		m.IssueWidth <= 0 || m.Window <= 0 {
		panic("synfull: malformed model " + m.Name)
	}
	for i, p := range m.Phases {
		if len(p.Next) != len(m.Phases) {
			panic(fmt.Sprintf("synfull: %s phase %d has %d transitions, want %d",
				m.Name, i, len(p.Next), len(m.Phases)))
		}
		sum := 0.0
		for _, pr := range p.Next {
			if pr < 0 {
				panic(fmt.Sprintf("synfull: %s phase %d negative transition", m.Name, i))
			}
			sum += pr
		}
		if sum < 0.999 || sum > 1.001 {
			panic(fmt.Sprintf("synfull: %s phase %d transitions sum to %f", m.Name, i, sum))
		}
	}
}

// Instance is the runtime phase state of one model execution (one quadrant's
// application copy).
type Instance struct {
	Model *Model

	phase     int
	nextDraw  int64
	rng       *rand.Rand
	phaseHist []int
}

// NewInstance creates an instance starting in phase 0.
func NewInstance(m *Model, seed int64) *Instance {
	return &Instance{
		Model:    m,
		nextDraw: m.PhaseLen,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Tick advances the Markov phase machine to the given cycle. Call once per
// cycle with a monotonically increasing cycle count.
func (in *Instance) Tick(now int64) {
	if now < in.nextDraw {
		return
	}
	in.nextDraw = now + in.Model.PhaseLen
	r := in.rng.Float64()
	next := in.Model.Phases[in.phase].Next
	for i, p := range next {
		r -= p
		if r < 0 {
			in.phase = i
			break
		}
	}
	in.phaseHist = append(in.phaseHist, in.phase)
}

// Cur returns the active phase.
func (in *Instance) Cur() *Phase { return &in.Model.Phases[in.phase] }

// PhaseIndex returns the index of the active phase.
func (in *Instance) PhaseIndex() int { return in.phase }

// PhaseHistory returns the sequence of phases entered at each transition.
func (in *Instance) PhaseHistory() []int { return in.phaseHist }
