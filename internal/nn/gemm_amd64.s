// AVX2+FMA microkernel for batched MLP inference. See gemm_amd64.go for the
// Go-level contracts and ForwardBatchFast in nn.go for the caller.

#include "textflag.h"

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func fmaDot4x2(w0, w1, x0, x1, x2, x3 *float64, n int, sums *[8]float64)
//
// Eight YMM accumulators hold the 2x4 (neuron x sample) tile, four float64
// lanes each; every loop iteration loads 4 elements of both weight rows and
// all four activation rows and issues 8 FMAs (32 multiply-adds). The n%4 tail
// is left to the Go caller.
TEXT ·fmaDot4x2(SB), NOSPLIT, $0-64
	MOVQ w0+0(FP), DI
	MOVQ w1+8(FP), SI
	MOVQ x0+16(FP), R8
	MOVQ x1+24(FP), R9
	MOVQ x2+32(FP), R10
	MOVQ x3+40(FP), R11
	MOVQ n+48(FP), CX
	MOVQ sums+56(FP), DX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	SHRQ $2, CX  // number of 4-wide steps
	JZ   reduce

loop:
	VMOVUPD (DI), Y8         // w0[i:i+4]
	VMOVUPD (SI), Y9         // w1[i:i+4]
	VMOVUPD (R8), Y10        // x0[i:i+4]
	VFMADD231PD Y8, Y10, Y0  // Y0 += w0*x0
	VFMADD231PD Y9, Y10, Y1  // Y1 += w1*x0
	VMOVUPD (R9), Y11
	VFMADD231PD Y8, Y11, Y2
	VFMADD231PD Y9, Y11, Y3
	VMOVUPD (R10), Y12
	VFMADD231PD Y8, Y12, Y4
	VFMADD231PD Y9, Y12, Y5
	VMOVUPD (R11), Y13
	VFMADD231PD Y8, Y13, Y6
	VFMADD231PD Y9, Y13, Y7
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	DECQ CX
	JNZ  loop

reduce:
	// Horizontal-reduce each accumulator into sums[0..7]: fold the high
	// 128-bit half onto the low one, then HADDPD the remaining pair.
	VEXTRACTF128 $1, Y0, X8
	VADDPD X8, X0, X0
	VHADDPD X0, X0, X0
	VMOVSD X0, (DX)

	VEXTRACTF128 $1, Y1, X8
	VADDPD X8, X1, X1
	VHADDPD X1, X1, X1
	VMOVSD X1, 8(DX)

	VEXTRACTF128 $1, Y2, X8
	VADDPD X8, X2, X2
	VHADDPD X2, X2, X2
	VMOVSD X2, 16(DX)

	VEXTRACTF128 $1, Y3, X8
	VADDPD X8, X3, X3
	VHADDPD X3, X3, X3
	VMOVSD X3, 24(DX)

	VEXTRACTF128 $1, Y4, X8
	VADDPD X8, X4, X4
	VHADDPD X4, X4, X4
	VMOVSD X4, 32(DX)

	VEXTRACTF128 $1, Y5, X8
	VADDPD X8, X5, X5
	VHADDPD X5, X5, X5
	VMOVSD X5, 40(DX)

	VEXTRACTF128 $1, Y6, X8
	VADDPD X8, X6, X6
	VHADDPD X6, X6, X6
	VMOVSD X6, 48(DX)

	VEXTRACTF128 $1, Y7, X8
	VADDPD X8, X7, X7
	VHADDPD X7, X7, X7
	VMOVSD X7, 56(DX)

	VZEROUPPER
	RET
