//go:build !amd64

package nn

// hasFMAKernel is false off amd64: ForwardBatchFast uses the bit-identical
// blocked scalar kernel everywhere the AVX2 microkernel is unavailable.
const hasFMAKernel = false

// fmaDot4x2 is never called when hasFMAKernel is false.
func fmaDot4x2(w0, w1, x0, x1, x2, x3 *float64, n int, sums *[8]float64) {
	panic("nn: fmaDot4x2 called without FMA kernel support")
}
