package nn

import (
	"fmt"
	"math"
)

// Inference is the common interface of the float64 MLP and the INT8 engine:
// anything that maps a state vector to Q-values. The returned slice may alias
// internal scratch, valid until the next call on the same receiver.
type Inference interface {
	Forward(x []float64) []float64
}

var (
	_ Inference = (*MLP)(nil)
	_ Inference = (*Quantized)(nil)
)

// QuantLayer is one dense layer of the INT8 engine: int8 weights at a
// per-layer symmetric scale, int32 biases at the accumulator scale, and the
// float activation applied after dequantization.
type QuantLayer struct {
	In, Out int
	// W holds the int8 weights row-major like Layer.W; the float weight is
	// approximately Sw * W[j*In+i].
	W []int8
	// B holds the biases quantized at the accumulator scale Sw*Sx, so they
	// add directly onto the int32 dot-product accumulator.
	B   []int32
	Act Activation
	// Sw is the weight scale: floatW ≈ Sw * int8W (symmetric, max|W|/127).
	Sw float64
	// Sx is the input-plane activation scale: floatX ≈ Sx * int8X.
	Sx float64
}

// Quantized is an INT8 symmetric-quantized inference engine for a trained
// MLP, mirroring the arithmetic of the paper's Section 4.8 NN hardware: an
// INT8 MAC array with int32 accumulators (internal/synth.NNEngine costs
// exactly this circuit for Table 3). Per layer:
//
//	acc_j  = Bq[j] + Σ_i int32(Wq[j,i]) * int32(Xq[i])   (int32, exact)
//	z_j    = float64(acc_j) * Sw * Sx                     (dequantize)
//	y_j    = Act(z_j)                                     (activation unit)
//	Xq'_j  = clamp(round(y_j / Sx'), ±127)                (requantize)
//
// Activation scales are calibrated per plane (input and every layer output)
// from representative states: symmetric max-abs / 127, the scheme an offline
// compiler for the paper's engine would use. The engine is deterministic —
// same weights, calibration and input always produce the same Q-values — so
// quantized-vs-float disagreement is a property of the network, not of the
// run. It is not safe for concurrent use (shared scratch), like MLP.
type Quantized struct {
	Layers []*QuantLayer

	// OutScale is the calibrated activation scale of the final output plane
	// (exported for introspection; the engine returns dequantized float
	// Q-values, so OutScale only documents the plane's calibrated range).
	OutScale float64

	// scratch: ping-pong int8 planes, the float output row, and the batched
	// equivalents (sized lazily like MLP.bacts).
	xq       [2][]int8
	outF     []float64
	maxWidth int
	bq       [2][]int8
	bout     []float64
	brows    [][]float64
}

// quantInt8 rounds v/scale to the nearest integer and clamps it to the
// symmetric int8 range ±127 (the -128 slot is unused, as in most symmetric
// MAC-array quantizers, so negation never overflows).
func quantInt8(v, scale float64) int8 {
	q := math.Round(v / scale)
	if q > 127 {
		return 127
	}
	if q < -127 {
		return -127
	}
	return int8(q)
}

// maxAbs returns max|xs| over the slice.
func maxAbs(xs []float64) float64 {
	m := 0.0
	for _, v := range xs {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Quantize builds the INT8 engine for m, calibrating activation scales from
// the given representative inputs (typically states recorded from the target
// workload). Calibration runs m.Forward over every input and takes each
// plane's symmetric max-abs range; it must be non-empty, since an engine with
// uncalibrated activation ranges would be silently wrong.
func Quantize(m *MLP, calib [][]float64) *Quantized {
	if len(calib) == 0 {
		panic("nn: Quantize needs at least one calibration input")
	}
	// Plane ranges: planeMax[0] is the input plane, planeMax[l+1] layer l's
	// output plane. Forward leaves per-layer activations in m.acts.
	planeMax := make([]float64, len(m.Layers)+1)
	for _, x := range calib {
		m.Forward(x)
		for p := range planeMax {
			if a := maxAbs(m.acts[p]); a > planeMax[p] {
				planeMax[p] = a
			}
		}
	}
	scale := make([]float64, len(planeMax))
	for p, mx := range planeMax {
		if mx == 0 {
			// An all-zero plane quantizes to zero regardless of scale; 1
			// keeps the bias quantization below well-conditioned.
			scale[p] = 1
		} else {
			scale[p] = mx / 127
		}
	}

	q := &Quantized{OutScale: scale[len(scale)-1], maxWidth: m.Layers[0].In}
	for l, layer := range m.Layers {
		sw := maxAbs(layer.W) / 127
		if sw == 0 {
			sw = 1
		}
		sx := scale[l]
		ql := &QuantLayer{
			In: layer.In, Out: layer.Out, Act: layer.Act,
			W:  make([]int8, len(layer.W)),
			B:  make([]int32, len(layer.B)),
			Sw: sw, Sx: sx,
		}
		for i, w := range layer.W {
			ql.W[i] = quantInt8(w, sw)
		}
		accScale := sw * sx
		for j, b := range layer.B {
			v := math.Round(b / accScale)
			if v > math.MaxInt32 {
				v = math.MaxInt32
			}
			if v < math.MinInt32 {
				v = math.MinInt32
			}
			ql.B[j] = int32(v)
		}
		q.Layers = append(q.Layers, ql)
		if layer.Out > q.maxWidth {
			q.maxWidth = layer.Out
		}
	}
	q.xq[0] = make([]int8, q.maxWidth)
	q.xq[1] = make([]int8, q.maxWidth)
	q.outF = make([]float64, m.OutputSize())
	return q
}

// InputSize returns the width of the input plane.
func (q *Quantized) InputSize() int { return q.Layers[0].In }

// OutputSize returns the width of the output plane.
func (q *Quantized) OutputSize() int { return q.Layers[len(q.Layers)-1].Out }

// MACs returns the number of int8 multiply-accumulates per inference — the
// quantity internal/synth.NNEngine streams through its MAC array.
func (q *Quantized) MACs() int {
	n := 0
	for _, l := range q.Layers {
		n += l.In * l.Out
	}
	return n
}

// LayerSizes returns the layer widths ([in, hidden..., out]), the shape
// argument internal/synth.NNEngine takes.
func (q *Quantized) LayerSizes() []int {
	sizes := []int{q.Layers[0].In}
	for _, l := range q.Layers {
		sizes = append(sizes, l.Out)
	}
	return sizes
}

// Forward runs one INT8 inference and returns the dequantized float64
// Q-values. The returned slice is internal scratch, valid until the next
// Forward call on this engine.
func (q *Quantized) Forward(x []float64) []float64 {
	in0 := q.Layers[0].In
	if len(x) != in0 {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), in0))
	}
	cur := q.xq[0][:in0]
	sx0 := q.Layers[0].Sx
	for i, v := range x {
		cur[i] = quantInt8(v, sx0)
	}
	src := 0
	last := len(q.Layers) - 1
	for l, layer := range q.Layers {
		xq := q.xq[src][:layer.In]
		deq := layer.Sw * layer.Sx
		var nextQ []int8
		var nextSx float64
		if l < last {
			nextQ = q.xq[1-src][:layer.Out]
			nextSx = q.Layers[l+1].Sx
		}
		for j := 0; j < layer.Out; j++ {
			row := layer.W[j*layer.In : (j+1)*layer.In]
			xr := xq[:len(row)]
			acc := layer.B[j]
			for i, w := range row {
				acc += int32(w) * int32(xr[i])
			}
			y := layer.Act.apply(float64(acc) * deq)
			if l < last {
				nextQ[j] = quantInt8(y, nextSx)
			} else {
				q.outF[j] = y
			}
		}
		src = 1 - src
	}
	return q.outF
}

// ForwardBatch runs INT8 inference on a batch and returns one Q-row per
// input, register-blocked 4 samples x 2 neurons like MLP.ForwardBatch (int32
// accumulation is exact, so blocking cannot change results: each row is
// bit-identical to a sequential Quantized.Forward call). Rows alias internal
// scratch, valid until the next ForwardBatch call on this engine.
func (q *Quantized) ForwardBatch(xs [][]float64) [][]float64 {
	nb := len(xs)
	if nb == 0 {
		return nil
	}
	if need := nb * q.maxWidth; cap(q.bq[0]) < need {
		q.bq[0] = make([]int8, need)
		q.bq[1] = make([]int8, need)
	}
	outW := q.OutputSize()
	if cap(q.bout) < nb*outW {
		q.bout = make([]float64, nb*outW)
	}
	in0 := q.Layers[0].In
	cur := q.bq[0][:nb*in0]
	sx0 := q.Layers[0].Sx
	for b, x := range xs {
		if len(x) != in0 {
			panic(fmt.Sprintf("nn: input size %d, want %d", len(x), in0))
		}
		for i, v := range x {
			cur[b*in0+i] = quantInt8(v, sx0)
		}
	}
	src := 0
	last := len(q.Layers) - 1
	for l, layer := range q.Layers {
		prev := q.bq[src][:nb*layer.In]
		var next []int8
		var nextSx float64
		if l < last {
			next = q.bq[1-src][:nb*layer.Out]
			nextSx = q.Layers[l+1].Sx
		}
		layer.forwardBlockedQ(prev, next, q.bout, nb, nextSx, l == last)
		src = 1 - src
	}
	if cap(q.brows) < nb {
		q.brows = make([][]float64, nb)
	}
	rows := q.brows[:nb]
	for b := range rows {
		rows[b] = q.bout[b*outW : (b+1)*outW : (b+1)*outW]
	}
	return rows
}

// forwardBlockedQ is the INT8 analog of Layer.forwardBlocked: a 4-sample x
// 2-neuron register tile of int32 accumulators over int8 operands — in
// software what the paper's MAC array does in parallel hardware. For the
// final layer (final=true) it dequantizes into the float row plane bout;
// otherwise it requantizes into the int8 plane next at scale nextSx.
func (l *QuantLayer) forwardBlockedQ(prev, next []int8, bout []float64, nb int, nextSx float64, final bool) {
	in, out, act := l.In, l.Out, l.Act
	deq := l.Sw * l.Sx
	emit := func(b, j int, acc int32) {
		y := act.apply(float64(acc) * deq)
		if final {
			bout[b*out+j] = y
		} else {
			next[b*out+j] = quantInt8(y, nextSx)
		}
	}
	b := 0
	for ; b+4 <= nb; b += 4 {
		x0 := prev[(b+0)*in : (b+1)*in]
		x1 := prev[(b+1)*in : (b+2)*in]
		x2 := prev[(b+2)*in : (b+3)*in]
		x3 := prev[(b+3)*in : (b+4)*in]
		j := 0
		for ; j+2 <= out; j += 2 {
			w0 := l.W[(j+0)*in : (j+1)*in]
			w1 := l.W[(j+1)*in : (j+2)*in]
			w1 = w1[:len(w0)]
			y0 := x0[:len(w0)]
			y1 := x1[:len(w0)]
			y2 := x2[:len(w0)]
			y3 := x3[:len(w0)]
			a00, a01 := l.B[j], l.B[j+1]
			a10, a11 := a00, a01
			a20, a21 := a00, a01
			a30, a31 := a00, a01
			for i, w8 := range w0 {
				w, v := int32(w8), int32(w1[i])
				e0, e1, e2, e3 := int32(y0[i]), int32(y1[i]), int32(y2[i]), int32(y3[i])
				a00 += w * e0
				a01 += v * e0
				a10 += w * e1
				a11 += v * e1
				a20 += w * e2
				a21 += v * e2
				a30 += w * e3
				a31 += v * e3
			}
			emit(b+0, j, a00)
			emit(b+0, j+1, a01)
			emit(b+1, j, a10)
			emit(b+1, j+1, a11)
			emit(b+2, j, a20)
			emit(b+2, j+1, a21)
			emit(b+3, j, a30)
			emit(b+3, j+1, a31)
		}
		if j < out {
			w0 := l.W[j*in : (j+1)*in]
			y0 := x0[:len(w0)]
			y1 := x1[:len(w0)]
			y2 := x2[:len(w0)]
			y3 := x3[:len(w0)]
			bj := l.B[j]
			a0, a1, a2, a3 := bj, bj, bj, bj
			for i, w8 := range w0 {
				w := int32(w8)
				a0 += w * int32(y0[i])
				a1 += w * int32(y1[i])
				a2 += w * int32(y2[i])
				a3 += w * int32(y3[i])
			}
			emit(b+0, j, a0)
			emit(b+1, j, a1)
			emit(b+2, j, a2)
			emit(b+3, j, a3)
		}
	}
	for ; b < nb; b++ {
		x := prev[b*in : (b+1)*in]
		for j := 0; j < out; j++ {
			row := l.W[j*in : (j+1)*in]
			y := x[:len(row)]
			acc := l.B[j]
			for i, w := range row {
				acc += int32(w) * int32(y[i])
			}
			emit(b, j, acc)
		}
	}
}
