// Package nn implements the small multi-layer perceptrons used by the deep
// Q-learning agent: dense layers with sigmoid/ReLU/tanh activations, plain
// SGD backpropagation, Xavier initialization, weight introspection for the
// paper's heatmap analysis, and gob serialization.
//
// The paper's agents are deliberately shallow (one hidden layer) so their
// weights can be interpreted by a human architect (Sections 3.2 and 4.6);
// this package exposes exactly the weight statistics that analysis needs.
package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// Activation selects a layer's nonlinearity.
type Activation int

// Supported activations.
const (
	Identity Activation = iota
	Sigmoid
	ReLU
	Tanh
	// LeakyReLU is max(x, 0.01*x). Q-value heads use it instead of plain
	// ReLU: with bootstrapped targets, an output neuron whose pre-activation
	// goes negative under plain ReLU receives zero gradient forever (the
	// "dying ReLU" problem) and its Q-value can never recover.
	LeakyReLU
)

// leakySlope is the negative-side slope of LeakyReLU.
const leakySlope = 0.01

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case Sigmoid:
		return "sigmoid"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	case LeakyReLU:
		return "leaky-relu"
	}
	return fmt.Sprintf("Activation(%d)", int(a))
}

func (a Activation) apply(z float64) float64 {
	switch a {
	case Sigmoid:
		return 1 / (1 + math.Exp(-z))
	case ReLU:
		if z < 0 {
			return 0
		}
		return z
	case Tanh:
		return math.Tanh(z)
	case LeakyReLU:
		if z < 0 {
			return leakySlope * z
		}
		return z
	}
	return z
}

// derivFromOutput returns f'(z) expressed via the activation output y=f(z).
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case Sigmoid:
		return y * (1 - y)
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	case LeakyReLU:
		if y > 0 {
			return 1
		}
		return leakySlope
	}
	return 1
}

// Layer is one dense layer: out = act(W*x + b) with W stored row-major
// (W[j*In+i] is the weight from input i to neuron j).
type Layer struct {
	In, Out int
	W       []float64
	B       []float64
	Act     Activation
}

// MLP is a feed-forward multi-layer perceptron trained with SGD. It is not
// safe for concurrent use: Forward and the training methods share scratch
// buffers.
type MLP struct {
	Layers []*Layer

	// scratch: acts[0] is the input copy, acts[l+1] the output of layer l.
	acts   [][]float64
	deltas [][]float64
	// grad is the output-gradient scratch for TrainMSE/TrainAction; it is
	// all-zero between calls so TrainAction only touches one element.
	grad []float64
	// maxWidth is the widest activation plane (input or any layer output),
	// sizing the batched-inference scratch below.
	maxWidth int
	// bacts are the two ping-pong row-major activation planes of
	// ForwardBatch (nb x width each); brows holds the returned row headers.
	bacts [2][]float64
	brows [][]float64
}

// New constructs an MLP with the given layer sizes (len >= 2) and one
// activation per weight layer (len(acts) == len(sizes)-1), Xavier-initialized
// from rng.
func New(sizes []int, acts []Activation, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("nn: need at least input and output sizes")
	}
	if len(acts) != len(sizes)-1 {
		panic("nn: need one activation per layer")
	}
	m := &MLP{}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		if in <= 0 || out <= 0 {
			panic("nn: layer sizes must be positive")
		}
		layer := &Layer{
			In:  in,
			Out: out,
			W:   make([]float64, in*out),
			B:   make([]float64, out),
			Act: acts[l],
		}
		bound := math.Sqrt(6 / float64(in+out))
		for i := range layer.W {
			layer.W[i] = (rng.Float64()*2 - 1) * bound
		}
		m.Layers = append(m.Layers, layer)
	}
	m.allocScratch()
	return m
}

func (m *MLP) allocScratch() {
	m.acts = make([][]float64, len(m.Layers)+1)
	m.deltas = make([][]float64, len(m.Layers))
	m.acts[0] = make([]float64, m.Layers[0].In)
	m.maxWidth = m.Layers[0].In
	for l, layer := range m.Layers {
		m.acts[l+1] = make([]float64, layer.Out)
		m.deltas[l] = make([]float64, layer.Out)
		if layer.Out > m.maxWidth {
			m.maxWidth = layer.Out
		}
	}
	m.grad = make([]float64, m.OutputSize())
}

// InputSize returns the width of the input layer.
func (m *MLP) InputSize() int { return m.Layers[0].In }

// OutputSize returns the width of the output layer.
func (m *MLP) OutputSize() int { return m.Layers[len(m.Layers)-1].Out }

// NumParams returns the total number of weights and biases.
func (m *MLP) NumParams() int {
	n := 0
	for _, l := range m.Layers {
		n += len(l.W) + len(l.B)
	}
	return n
}

// Forward runs inference. The returned slice is an internal buffer, valid
// until the next Forward/training call; copy it to retain it.
func (m *MLP) Forward(x []float64) []float64 {
	if len(x) != m.Layers[0].In {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), m.Layers[0].In))
	}
	copy(m.acts[0], x)
	for l, layer := range m.Layers {
		in, out := m.acts[l], m.acts[l+1]
		for j := 0; j < layer.Out; j++ {
			row := layer.W[j*layer.In : (j+1)*layer.In]
			in := in[:len(row)] // one bounds check; elides them in the loop
			z := layer.B[j]
			for i, w := range row {
				z += w * in[i]
			}
			out[j] = layer.Act.apply(z)
		}
	}
	return m.acts[len(m.Layers)]
}

// ForwardBatch runs inference on a batch of inputs and returns one Q-row per
// input. Each row is computed with exactly Forward's per-row summation order
// (bias first, then weights in input order), so a batched evaluation is
// bit-identical to len(xs) sequential Forward calls; the weight row of each
// neuron is loaded once and reused across the whole batch. The returned rows
// alias internal scratch, valid until the next ForwardBatch call; Forward and
// the training methods use separate scratch and do not invalidate them.
func (m *MLP) ForwardBatch(xs [][]float64) [][]float64 {
	nb := len(xs)
	if nb == 0 {
		return nil
	}
	if need := nb * m.maxWidth; cap(m.bacts[0]) < need {
		m.bacts[0] = make([]float64, need)
		m.bacts[1] = make([]float64, need)
	}
	in0 := m.Layers[0].In
	cur := m.bacts[0][:nb*in0]
	for b, x := range xs {
		if len(x) != in0 {
			panic(fmt.Sprintf("nn: input size %d, want %d", len(x), in0))
		}
		copy(cur[b*in0:(b+1)*in0], x)
	}
	src := 0
	for _, layer := range m.Layers {
		in, out := layer.In, layer.Out
		prev := m.bacts[src][:nb*in]
		next := m.bacts[1-src][:nb*out]
		act := layer.Act
		for j := 0; j < out; j++ {
			row := layer.W[j*in : (j+1)*in]
			bj := layer.B[j]
			for b := 0; b < nb; b++ {
				x := prev[b*in : (b+1)*in]
				x = x[:len(row)] // one bounds check; elides them in the loop
				z := bj
				for i, w := range row {
					z += w * x[i]
				}
				next[b*out+j] = act.apply(z)
			}
		}
		src = 1 - src
	}
	outW := m.OutputSize()
	if cap(m.brows) < nb {
		m.brows = make([][]float64, nb)
	}
	rows := m.brows[:nb]
	flat := m.bacts[src]
	for b := range rows {
		rows[b] = flat[b*outW : (b+1)*outW : (b+1)*outW]
	}
	return rows
}

// Backprop performs one SGD step given dLoss/dOutput evaluated at the current
// forward pass of x. It recomputes the forward pass internally.
func (m *MLP) Backprop(x, outGrad []float64, lr float64) {
	m.Forward(x)
	m.backpropFromActs(outGrad, lr)
}

// backpropFromActs applies one SGD step using the activations left in m.acts
// by the immediately preceding Forward call, avoiding a duplicate forward
// pass. Callers must not have mutated weights since that Forward.
func (m *MLP) backpropFromActs(outGrad []float64, lr float64) {
	y := m.acts[len(m.Layers)]
	last := len(m.Layers) - 1
	outLayer := m.Layers[last]
	for j := range m.deltas[last] {
		m.deltas[last][j] = outGrad[j] * outLayer.Act.derivFromOutput(y[j])
	}
	// Propagate deltas backwards. The accumulation runs k-outer over the
	// next layer's neurons: each delta[j] still sums its terms in ascending
	// k order — bit-identical to the j-outer formulation — but zero deltas
	// (all but one output under Q-learning's single-action gradient) skip
	// their entire weight row, and the rows are walked contiguously.
	for l := last - 1; l >= 0; l-- {
		layer, next := m.Layers[l], m.Layers[l+1]
		outs := m.acts[l+1]
		dl := m.deltas[l][:layer.Out]
		for j := range dl {
			dl[j] = 0
		}
		for k := 0; k < next.Out; k++ {
			d := m.deltas[l+1][k]
			if d == 0 {
				continue
			}
			row := next.W[k*next.In : (k+1)*next.In]
			dl := dl[:len(row)]
			for j, w := range row {
				dl[j] += w * d
			}
		}
		for j := range dl {
			dl[j] *= layer.Act.derivFromOutput(outs[j])
		}
	}
	// Apply gradients.
	for l, layer := range m.Layers {
		in := m.acts[l]
		for j := 0; j < layer.Out; j++ {
			d := m.deltas[l][j]
			if d == 0 {
				continue
			}
			row := layer.W[j*layer.In : (j+1)*layer.In]
			step := lr * d
			for i := range row {
				row[i] -= step * in[i]
			}
			layer.B[j] -= step
		}
	}
}

// TrainMSE performs one SGD step toward target under 0.5*sum((y-t)^2) loss
// and returns the pre-step loss.
func (m *MLP) TrainMSE(x, target []float64, lr float64) float64 {
	y := m.Forward(x)
	if len(target) != len(y) {
		panic("nn: target size mismatch")
	}
	grad := m.grad
	loss := 0.0
	for j := range y {
		e := y[j] - target[j]
		grad[j] = e
		loss += 0.5 * e * e
	}
	m.backpropFromActs(grad, lr)
	for j := range grad {
		grad[j] = 0
	}
	return loss
}

// TrainAction performs one Q-learning SGD step: only the selected action's
// output is pushed toward target; all other outputs receive zero gradient.
// It returns the pre-step squared error on the action.
func (m *MLP) TrainAction(x []float64, action int, target, lr float64) float64 {
	y := m.Forward(x)
	if action < 0 || action >= len(y) {
		panic(fmt.Sprintf("nn: action %d out of range %d", action, len(y)))
	}
	e := y[action] - target
	grad := m.grad
	grad[action] = e
	m.backpropFromActs(grad, lr)
	grad[action] = 0
	return e * e
}

// CopyFrom copies all weights and biases from src, which must have an
// identical architecture. Used to refresh the DQL target network.
func (m *MLP) CopyFrom(src *MLP) {
	if len(m.Layers) != len(src.Layers) {
		panic("nn: CopyFrom architecture mismatch")
	}
	for l, layer := range m.Layers {
		s := src.Layers[l]
		if layer.In != s.In || layer.Out != s.Out {
			panic("nn: CopyFrom layer shape mismatch")
		}
		copy(layer.W, s.W)
		copy(layer.B, s.B)
	}
}

// Clone returns a deep copy with fresh scratch buffers.
func (m *MLP) Clone() *MLP {
	c := &MLP{}
	for _, l := range m.Layers {
		nl := &Layer{In: l.In, Out: l.Out, Act: l.Act,
			W: make([]float64, len(l.W)), B: make([]float64, len(l.B))}
		copy(nl.W, l.W)
		copy(nl.B, l.B)
		c.Layers = append(c.Layers, nl)
	}
	c.allocScratch()
	return c
}

// InputWeightAbsMean returns, for each input, the mean absolute first-layer
// weight across all hidden neurons — the quantity visualized in the paper's
// heatmaps (Figs. 4 and 7): darker pixels = larger mean |weight|.
func (m *MLP) InputWeightAbsMean() []float64 {
	l := m.Layers[0]
	out := make([]float64, l.In)
	for j := 0; j < l.Out; j++ {
		row := l.W[j*l.In : (j+1)*l.In]
		for i, w := range row {
			out[i] += math.Abs(w)
		}
	}
	for i := range out {
		out[i] /= float64(l.Out)
	}
	return out
}

// InputWeightSignedMean returns the signed mean first-layer weight per input.
// Section 4.6 uses the sign to discover that hop count is preferred large on
// N/S ports but small on W/E ports.
func (m *MLP) InputWeightSignedMean() []float64 {
	l := m.Layers[0]
	out := make([]float64, l.In)
	for j := 0; j < l.Out; j++ {
		row := l.W[j*l.In : (j+1)*l.In]
		for i, w := range row {
			out[i] += w
		}
	}
	for i := range out {
		out[i] /= float64(l.Out)
	}
	return out
}

// OutputWeightMean returns the mean of all final-layer weights. The paper
// checks that output-layer weights are mostly positive before reading hidden
// weight signs directly (Section 4.6).
func (m *MLP) OutputWeightMean() float64 {
	l := m.Layers[len(m.Layers)-1]
	sum := 0.0
	for _, w := range l.W {
		sum += w
	}
	return sum / float64(len(l.W))
}

// mlpWire is the gob wire format.
type mlpWire struct {
	Sizes []int
	Acts  []Activation
	W     [][]float64
	B     [][]float64
}

// Save writes the network weights to w in gob format.
func (m *MLP) Save(w io.Writer) error {
	wire := mlpWire{Sizes: []int{m.Layers[0].In}}
	for _, l := range m.Layers {
		wire.Sizes = append(wire.Sizes, l.Out)
		wire.Acts = append(wire.Acts, l.Act)
		wire.W = append(wire.W, l.W)
		wire.B = append(wire.B, l.B)
	}
	return gob.NewEncoder(w).Encode(wire)
}

// Load reads a network previously written with Save.
func Load(r io.Reader) (*MLP, error) {
	var wire mlpWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	if len(wire.Sizes) < 2 || len(wire.Acts) != len(wire.Sizes)-1 ||
		len(wire.W) != len(wire.Acts) || len(wire.B) != len(wire.Acts) {
		return nil, fmt.Errorf("nn: load: malformed network")
	}
	m := &MLP{}
	for l := 0; l < len(wire.Acts); l++ {
		in, out := wire.Sizes[l], wire.Sizes[l+1]
		if len(wire.W[l]) != in*out || len(wire.B[l]) != out {
			return nil, fmt.Errorf("nn: load: layer %d shape mismatch", l)
		}
		m.Layers = append(m.Layers, &Layer{
			In: in, Out: out, Act: wire.Acts[l], W: wire.W[l], B: wire.B[l],
		})
	}
	m.allocScratch()
	return m, nil
}
