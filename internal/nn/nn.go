// Package nn implements the small multi-layer perceptrons used by the deep
// Q-learning agent: dense layers with sigmoid/ReLU/tanh activations, plain
// SGD backpropagation, Xavier initialization, weight introspection for the
// paper's heatmap analysis, and gob serialization.
//
// The paper's agents are deliberately shallow (one hidden layer) so their
// weights can be interpreted by a human architect (Sections 3.2 and 4.6);
// this package exposes exactly the weight statistics that analysis needs.
package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// Activation selects a layer's nonlinearity.
type Activation int

// Supported activations.
const (
	Identity Activation = iota
	Sigmoid
	ReLU
	Tanh
	// LeakyReLU is max(x, 0.01*x). Q-value heads use it instead of plain
	// ReLU: with bootstrapped targets, an output neuron whose pre-activation
	// goes negative under plain ReLU receives zero gradient forever (the
	// "dying ReLU" problem) and its Q-value can never recover.
	LeakyReLU
)

// leakySlope is the negative-side slope of LeakyReLU.
const leakySlope = 0.01

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case Sigmoid:
		return "sigmoid"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	case LeakyReLU:
		return "leaky-relu"
	}
	return fmt.Sprintf("Activation(%d)", int(a))
}

func (a Activation) apply(z float64) float64 {
	switch a {
	case Sigmoid:
		return 1 / (1 + math.Exp(-z))
	case ReLU:
		if z < 0 {
			return 0
		}
		return z
	case Tanh:
		return math.Tanh(z)
	case LeakyReLU:
		if z < 0 {
			return leakySlope * z
		}
		return z
	}
	return z
}

// derivFromOutput returns f'(z) expressed via the activation output y=f(z).
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case Sigmoid:
		return y * (1 - y)
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	case LeakyReLU:
		if y > 0 {
			return 1
		}
		return leakySlope
	}
	return 1
}

// Layer is one dense layer: out = act(W*x + b) with W stored row-major
// (W[j*In+i] is the weight from input i to neuron j).
type Layer struct {
	In, Out int
	W       []float64
	B       []float64
	Act     Activation
}

// MLP is a feed-forward multi-layer perceptron trained with SGD. It is not
// safe for concurrent use: Forward and the training methods share scratch
// buffers.
type MLP struct {
	Layers []*Layer

	// scratch: acts[0] is the input copy, acts[l+1] the output of layer l.
	acts   [][]float64
	deltas [][]float64
	// grad is the output-gradient scratch for TrainMSE/TrainAction; it is
	// all-zero between calls so TrainAction only touches one element.
	grad []float64
	// maxWidth is the widest activation plane (input or any layer output),
	// sizing the batched-inference scratch below.
	maxWidth int
	// bacts are the two ping-pong row-major activation planes of
	// ForwardBatch (nb x width each); brows holds the returned row headers.
	bacts [2][]float64
	brows [][]float64
}

// New constructs an MLP with the given layer sizes (len >= 2) and one
// activation per weight layer (len(acts) == len(sizes)-1), Xavier-initialized
// from rng.
func New(sizes []int, acts []Activation, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("nn: need at least input and output sizes")
	}
	if len(acts) != len(sizes)-1 {
		panic("nn: need one activation per layer")
	}
	m := &MLP{}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		if in <= 0 || out <= 0 {
			panic("nn: layer sizes must be positive")
		}
		layer := &Layer{
			In:  in,
			Out: out,
			W:   make([]float64, in*out),
			B:   make([]float64, out),
			Act: acts[l],
		}
		bound := math.Sqrt(6 / float64(in+out))
		for i := range layer.W {
			layer.W[i] = (rng.Float64()*2 - 1) * bound
		}
		m.Layers = append(m.Layers, layer)
	}
	m.allocScratch()
	return m
}

func (m *MLP) allocScratch() {
	m.acts = make([][]float64, len(m.Layers)+1)
	m.deltas = make([][]float64, len(m.Layers))
	m.acts[0] = make([]float64, m.Layers[0].In)
	m.maxWidth = m.Layers[0].In
	for l, layer := range m.Layers {
		m.acts[l+1] = make([]float64, layer.Out)
		m.deltas[l] = make([]float64, layer.Out)
		if layer.Out > m.maxWidth {
			m.maxWidth = layer.Out
		}
	}
	m.grad = make([]float64, m.OutputSize())
}

// InputSize returns the width of the input layer.
func (m *MLP) InputSize() int { return m.Layers[0].In }

// OutputSize returns the width of the output layer.
func (m *MLP) OutputSize() int { return m.Layers[len(m.Layers)-1].Out }

// NumParams returns the total number of weights and biases.
func (m *MLP) NumParams() int {
	n := 0
	for _, l := range m.Layers {
		n += len(l.W) + len(l.B)
	}
	return n
}

// Forward runs inference. The returned slice is an internal buffer, valid
// until the next Forward/training call; copy it to retain it.
func (m *MLP) Forward(x []float64) []float64 {
	if len(x) != m.Layers[0].In {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), m.Layers[0].In))
	}
	copy(m.acts[0], x)
	for l, layer := range m.Layers {
		in, out := m.acts[l], m.acts[l+1]
		for j := 0; j < layer.Out; j++ {
			row := layer.W[j*layer.In : (j+1)*layer.In]
			in := in[:len(row)] // one bounds check; elides them in the loop
			z := layer.B[j]
			for i, w := range row {
				z += w * in[i]
			}
			out[j] = layer.Act.apply(z)
		}
	}
	return m.acts[len(m.Layers)]
}

// ForwardBatch runs inference on a batch of inputs and returns one Q-row per
// input. Each row is computed with exactly Forward's per-row summation order
// (bias first, then weights in ascending input order), so a batched evaluation
// is bit-identical to len(xs) sequential Forward calls — the blocked kernel
// below only changes *which* dot products are in flight simultaneously, never
// the order of additions within one.
//
// Aliasing contract: the returned row headers and the activations they point
// at live in internal scratch (m.brows/m.bacts) that the NEXT ForwardBatch
// call on this network overwrites. Callers must finish reading (or copy) every
// row of one batch before issuing the next — see rl.DQL.TrainBatch, whose
// SyncEvery-chunked target inference consumes each chunk's rows completely
// before requesting the next chunk. Forward and the training methods use
// separate scratch (m.acts) and do not invalidate batch rows.
func (m *MLP) ForwardBatch(xs [][]float64) [][]float64 {
	return m.forwardBatch(xs, false)
}

// ForwardBatchFast is ForwardBatch running on the AVX2+FMA microkernel when
// the CPU supports it (gemm_amd64.s): four float64 lanes per accumulator and
// fused multiply-adds. Fusing and lane-interleaved partial sums change the
// rounding of each dot product, so rows are NOT bit-identical to Forward —
// they agree to within a few ULPs (pinned by TestForwardBatchFastULP). Use it
// where throughput matters and ULP-exactness does not: rl's batched
// target-network inference rides this path (Bellman targets are estimates;
// ULP noise is far below the TD error they carry). Without CPU support it is
// exactly ForwardBatch. The aliasing contract is ForwardBatch's: rows are
// valid until the next batched call, either flavor.
func (m *MLP) ForwardBatchFast(xs [][]float64) [][]float64 {
	return m.forwardBatch(xs, hasFMAKernel)
}

func (m *MLP) forwardBatch(xs [][]float64, fma bool) [][]float64 {
	nb := len(xs)
	if nb == 0 {
		return nil
	}
	if need := nb * m.maxWidth; cap(m.bacts[0]) < need {
		m.bacts[0] = make([]float64, need)
		m.bacts[1] = make([]float64, need)
	}
	in0 := m.Layers[0].In
	cur := m.bacts[0][:nb*in0]
	for b, x := range xs {
		if len(x) != in0 {
			panic(fmt.Sprintf("nn: input size %d, want %d", len(x), in0))
		}
		copy(cur[b*in0:(b+1)*in0], x)
	}
	src := 0
	for _, layer := range m.Layers {
		prev := m.bacts[src][:nb*layer.In]
		next := m.bacts[1-src][:nb*layer.Out]
		if fma {
			layer.forwardBlockedFMA(prev, next, nb)
		} else {
			layer.forwardBlocked(prev, next, nb)
		}
		src = 1 - src
	}
	outW := m.OutputSize()
	if cap(m.brows) < nb {
		m.brows = make([][]float64, nb)
	}
	rows := m.brows[:nb]
	flat := m.bacts[src]
	for b := range rows {
		rows[b] = flat[b*outW : (b+1)*outW : (b+1)*outW]
	}
	return rows
}

// forwardBlocked computes next = act(prev · Wᵀ + b) for nb row-major rows of
// prev, register-blocked 4 batch rows x 2 neurons. The naive j-outer/b-inner
// formulation runs each (neuron, sample) dot product as one dependent
// float-add chain (latency-bound: one flop per FP-add latency) and re-streams
// the whole nb x in batch plane from L2 once per neuron. The 4x2 tile keeps 8
// independent accumulators in registers, so the inner loop retires 8
// independent multiply-adds per input element while each loaded weight is
// reused across 4 samples and each loaded activation across 2 neurons —
// throughput-bound, and the batch plane is streamed out/2 times instead of
// out times. Every accumulator is initialized to its neuron's bias and then
// adds w[i]*x[i] in ascending i — exactly Forward's summation order — so the
// result is bit-identical to the scalar loop.
func (l *Layer) forwardBlocked(prev, next []float64, nb int) {
	in, out, act := l.In, l.Out, l.Act
	b := 0
	for ; b+4 <= nb; b += 4 {
		x0 := prev[(b+0)*in : (b+1)*in]
		x1 := prev[(b+1)*in : (b+2)*in]
		x2 := prev[(b+2)*in : (b+3)*in]
		x3 := prev[(b+3)*in : (b+4)*in]
		j := 0
		for ; j+2 <= out; j += 2 {
			w0 := l.W[(j+0)*in : (j+1)*in]
			w1 := l.W[(j+1)*in : (j+2)*in]
			// One bounds check each; elides them in the loop below.
			w1 = w1[:len(w0)]
			y0 := x0[:len(w0)]
			y1 := x1[:len(w0)]
			y2 := x2[:len(w0)]
			y3 := x3[:len(w0)]
			b0, b1 := l.B[j], l.B[j+1]
			z00, z01 := b0, b1
			z10, z11 := b0, b1
			z20, z21 := b0, b1
			z30, z31 := b0, b1
			for i, w := range w0 {
				v := w1[i]
				e0, e1, e2, e3 := y0[i], y1[i], y2[i], y3[i]
				z00 += w * e0
				z01 += v * e0
				z10 += w * e1
				z11 += v * e1
				z20 += w * e2
				z21 += v * e2
				z30 += w * e3
				z31 += v * e3
			}
			next[(b+0)*out+j] = act.apply(z00)
			next[(b+0)*out+j+1] = act.apply(z01)
			next[(b+1)*out+j] = act.apply(z10)
			next[(b+1)*out+j+1] = act.apply(z11)
			next[(b+2)*out+j] = act.apply(z20)
			next[(b+2)*out+j+1] = act.apply(z21)
			next[(b+3)*out+j] = act.apply(z30)
			next[(b+3)*out+j+1] = act.apply(z31)
		}
		if j < out { // odd trailing neuron: 4 samples, 1 weight row
			w0 := l.W[j*in : (j+1)*in]
			y0 := x0[:len(w0)]
			y1 := x1[:len(w0)]
			y2 := x2[:len(w0)]
			y3 := x3[:len(w0)]
			bj := l.B[j]
			z0, z1, z2, z3 := bj, bj, bj, bj
			for i, w := range w0 {
				z0 += w * y0[i]
				z1 += w * y1[i]
				z2 += w * y2[i]
				z3 += w * y3[i]
			}
			next[(b+0)*out+j] = act.apply(z0)
			next[(b+1)*out+j] = act.apply(z1)
			next[(b+2)*out+j] = act.apply(z2)
			next[(b+3)*out+j] = act.apply(z3)
		}
	}
	// Trailing samples (nb mod 4): scalar per-row loop, same order as Forward.
	for ; b < nb; b++ {
		x := prev[b*in : (b+1)*in]
		for j := 0; j < out; j++ {
			row := l.W[j*in : (j+1)*in]
			y := x[:len(row)]
			z := l.B[j]
			for i, w := range row {
				z += w * y[i]
			}
			next[b*out+j] = act.apply(z)
		}
	}
}

// forwardBlockedFMA is forwardBlocked with the 4-sample x 2-neuron tile's
// inner loop replaced by the AVX2+FMA assembly microkernel: each accumulator
// becomes four interleaved fused partial sums reduced at the end, which
// trades Forward's exact rounding for ~4x the arithmetic throughput (the
// ForwardBatchFast contract). The bias and the n%4 vector tail are added here
// in scalar code; tile remainders fall back to the scalar paths.
func (l *Layer) forwardBlockedFMA(prev, next []float64, nb int) {
	in, out, act := l.In, l.Out, l.Act
	n4 := in &^ 3
	var sums [8]float64
	b := 0
	for ; b+4 <= nb; b += 4 {
		x0 := prev[(b+0)*in : (b+1)*in]
		x1 := prev[(b+1)*in : (b+2)*in]
		x2 := prev[(b+2)*in : (b+3)*in]
		x3 := prev[(b+3)*in : (b+4)*in]
		j := 0
		for ; j+2 <= out; j += 2 {
			w0 := l.W[(j+0)*in : (j+1)*in]
			w1 := l.W[(j+1)*in : (j+2)*in]
			if n4 > 0 {
				fmaDot4x2(&w0[0], &w1[0], &x0[0], &x1[0], &x2[0], &x3[0], in, &sums)
			} else {
				sums = [8]float64{}
			}
			b0, b1 := l.B[j], l.B[j+1]
			z00, z01 := b0+sums[0], b1+sums[1]
			z10, z11 := b0+sums[2], b1+sums[3]
			z20, z21 := b0+sums[4], b1+sums[5]
			z30, z31 := b0+sums[6], b1+sums[7]
			for i := n4; i < in; i++ {
				w, v := w0[i], w1[i]
				z00 += w * x0[i]
				z01 += v * x0[i]
				z10 += w * x1[i]
				z11 += v * x1[i]
				z20 += w * x2[i]
				z21 += v * x2[i]
				z30 += w * x3[i]
				z31 += v * x3[i]
			}
			next[(b+0)*out+j] = act.apply(z00)
			next[(b+0)*out+j+1] = act.apply(z01)
			next[(b+1)*out+j] = act.apply(z10)
			next[(b+1)*out+j+1] = act.apply(z11)
			next[(b+2)*out+j] = act.apply(z20)
			next[(b+2)*out+j+1] = act.apply(z21)
			next[(b+3)*out+j] = act.apply(z30)
			next[(b+3)*out+j+1] = act.apply(z31)
		}
		if j < out { // odd trailing neuron
			w0 := l.W[j*in : (j+1)*in]
			y0 := x0[:len(w0)]
			y1 := x1[:len(w0)]
			y2 := x2[:len(w0)]
			y3 := x3[:len(w0)]
			bj := l.B[j]
			z0, z1, z2, z3 := bj, bj, bj, bj
			for i, w := range w0 {
				z0 += w * y0[i]
				z1 += w * y1[i]
				z2 += w * y2[i]
				z3 += w * y3[i]
			}
			next[(b+0)*out+j] = act.apply(z0)
			next[(b+1)*out+j] = act.apply(z1)
			next[(b+2)*out+j] = act.apply(z2)
			next[(b+3)*out+j] = act.apply(z3)
		}
	}
	for ; b < nb; b++ { // trailing samples: scalar per-row loop
		x := prev[b*in : (b+1)*in]
		for j := 0; j < out; j++ {
			row := l.W[j*in : (j+1)*in]
			y := x[:len(row)]
			z := l.B[j]
			for i, w := range row {
				z += w * y[i]
			}
			next[b*out+j] = act.apply(z)
		}
	}
}

// Backprop performs one SGD step given dLoss/dOutput evaluated at the current
// forward pass of x. It recomputes the forward pass internally.
func (m *MLP) Backprop(x, outGrad []float64, lr float64) {
	m.Forward(x)
	m.backpropFromActs(outGrad, lr)
}

// backpropFromActs applies one SGD step using the activations left in m.acts
// by the immediately preceding Forward call, avoiding a duplicate forward
// pass. Callers must not have mutated weights since that Forward.
func (m *MLP) backpropFromActs(outGrad []float64, lr float64) {
	y := m.acts[len(m.Layers)]
	last := len(m.Layers) - 1
	outLayer := m.Layers[last]
	for j := range m.deltas[last] {
		m.deltas[last][j] = outGrad[j] * outLayer.Act.derivFromOutput(y[j])
	}
	// Propagate deltas backwards. The accumulation runs k-outer over the
	// next layer's neurons: each delta[j] still sums its terms in ascending
	// k order — bit-identical to the j-outer formulation — but zero deltas
	// (all but one output under Q-learning's single-action gradient) skip
	// their entire weight row, and the rows are walked contiguously.
	for l := last - 1; l >= 0; l-- {
		layer, next := m.Layers[l], m.Layers[l+1]
		outs := m.acts[l+1]
		dl := m.deltas[l][:layer.Out]
		for j := range dl {
			dl[j] = 0
		}
		for k := 0; k < next.Out; k++ {
			d := m.deltas[l+1][k]
			if d == 0 {
				continue
			}
			row := next.W[k*next.In : (k+1)*next.In]
			dl := dl[:len(row)]
			for j, w := range row {
				dl[j] += w * d
			}
		}
		for j := range dl {
			dl[j] *= layer.Act.derivFromOutput(outs[j])
		}
	}
	// Apply gradients.
	for l, layer := range m.Layers {
		in := m.acts[l]
		for j := 0; j < layer.Out; j++ {
			d := m.deltas[l][j]
			if d == 0 {
				continue
			}
			row := layer.W[j*layer.In : (j+1)*layer.In]
			step := lr * d
			for i := range row {
				row[i] -= step * in[i]
			}
			layer.B[j] -= step
		}
	}
}

// TrainMSE performs one SGD step toward target under 0.5*sum((y-t)^2) loss
// and returns the pre-step loss.
func (m *MLP) TrainMSE(x, target []float64, lr float64) float64 {
	y := m.Forward(x)
	if len(target) != len(y) {
		panic("nn: target size mismatch")
	}
	grad := m.grad
	loss := 0.0
	for j := range y {
		e := y[j] - target[j]
		grad[j] = e
		loss += 0.5 * e * e
	}
	m.backpropFromActs(grad, lr)
	for j := range grad {
		grad[j] = 0
	}
	return loss
}

// TrainAction performs one Q-learning SGD step: only the selected action's
// output is pushed toward target; all other outputs receive zero gradient.
// It returns the pre-step squared error on the action.
func (m *MLP) TrainAction(x []float64, action int, target, lr float64) float64 {
	y := m.Forward(x)
	if action < 0 || action >= len(y) {
		panic(fmt.Sprintf("nn: action %d out of range %d", action, len(y)))
	}
	e := y[action] - target
	grad := m.grad
	grad[action] = e
	m.backpropFromActs(grad, lr)
	grad[action] = 0
	return e * e
}

// CopyFrom copies all weights and biases from src, which must have an
// identical architecture. Used to refresh the DQL target network.
func (m *MLP) CopyFrom(src *MLP) {
	if len(m.Layers) != len(src.Layers) {
		panic("nn: CopyFrom architecture mismatch")
	}
	for l, layer := range m.Layers {
		s := src.Layers[l]
		if layer.In != s.In || layer.Out != s.Out {
			panic("nn: CopyFrom layer shape mismatch")
		}
		copy(layer.W, s.W)
		copy(layer.B, s.B)
	}
}

// Clone returns a deep copy with fresh scratch buffers.
func (m *MLP) Clone() *MLP {
	c := &MLP{}
	for _, l := range m.Layers {
		nl := &Layer{In: l.In, Out: l.Out, Act: l.Act,
			W: make([]float64, len(l.W)), B: make([]float64, len(l.B))}
		copy(nl.W, l.W)
		copy(nl.B, l.B)
		c.Layers = append(c.Layers, nl)
	}
	c.allocScratch()
	return c
}

// InputWeightAbsMean returns, for each input, the mean absolute first-layer
// weight across all hidden neurons — the quantity visualized in the paper's
// heatmaps (Figs. 4 and 7): darker pixels = larger mean |weight|.
func (m *MLP) InputWeightAbsMean() []float64 {
	l := m.Layers[0]
	out := make([]float64, l.In)
	for j := 0; j < l.Out; j++ {
		row := l.W[j*l.In : (j+1)*l.In]
		for i, w := range row {
			out[i] += math.Abs(w)
		}
	}
	for i := range out {
		out[i] /= float64(l.Out)
	}
	return out
}

// InputWeightSignedMean returns the signed mean first-layer weight per input.
// Section 4.6 uses the sign to discover that hop count is preferred large on
// N/S ports but small on W/E ports.
func (m *MLP) InputWeightSignedMean() []float64 {
	l := m.Layers[0]
	out := make([]float64, l.In)
	for j := 0; j < l.Out; j++ {
		row := l.W[j*l.In : (j+1)*l.In]
		for i, w := range row {
			out[i] += w
		}
	}
	for i := range out {
		out[i] /= float64(l.Out)
	}
	return out
}

// OutputWeightMean returns the mean of all final-layer weights. The paper
// checks that output-layer weights are mostly positive before reading hidden
// weight signs directly (Section 4.6).
func (m *MLP) OutputWeightMean() float64 {
	l := m.Layers[len(m.Layers)-1]
	sum := 0.0
	for _, w := range l.W {
		sum += w
	}
	return sum / float64(len(l.W))
}

// mlpWire is the gob wire format.
type mlpWire struct {
	Sizes []int
	Acts  []Activation
	W     [][]float64
	B     [][]float64
}

// Save writes the network weights to w in gob format.
func (m *MLP) Save(w io.Writer) error {
	wire := mlpWire{Sizes: []int{m.Layers[0].In}}
	for _, l := range m.Layers {
		wire.Sizes = append(wire.Sizes, l.Out)
		wire.Acts = append(wire.Acts, l.Act)
		wire.W = append(wire.W, l.W)
		wire.B = append(wire.B, l.B)
	}
	return gob.NewEncoder(w).Encode(wire)
}

// Load reads a network previously written with Save.
func Load(r io.Reader) (*MLP, error) {
	var wire mlpWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	if len(wire.Sizes) < 2 || len(wire.Acts) != len(wire.Sizes)-1 ||
		len(wire.W) != len(wire.Acts) || len(wire.B) != len(wire.Acts) {
		return nil, fmt.Errorf("nn: load: malformed network")
	}
	m := &MLP{}
	for l := 0; l < len(wire.Acts); l++ {
		in, out := wire.Sizes[l], wire.Sizes[l+1]
		if len(wire.W[l]) != in*out || len(wire.B[l]) != out {
			return nil, fmt.Errorf("nn: load: layer %d shape mismatch", l)
		}
		m.Layers = append(m.Layers, &Layer{
			In: in, Out: out, Act: wire.Acts[l], W: wire.W[l], B: wire.B[l],
		})
	}
	m.allocScratch()
	return m, nil
}
