package nn

// hasFMAKernel reports whether the AVX2+FMA batched-inference microkernel in
// gemm_amd64.s is usable on this CPU (AVX2 and FMA present, and the OS saves
// YMM state). ForwardBatchFast falls back to the bit-identical blocked scalar
// kernel when it is false, so the flag only ever selects between two correct
// implementations.
var hasFMAKernel = detectAVX2FMA()

// cpuidex executes CPUID with the given leaf and subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (requires OSXSAVE, checked by the caller).
func xgetbv() (eax, edx uint32)

// fmaDot4x2 accumulates, into sums, the dot products of two weight rows
// (w0, w1) against four activation rows (x0..x3) over the first n&^3
// elements, vectorized four float64 lanes at a time with FMA:
//
//	sums[2*b+j] = sum_i w_j[i] * x_b[i]   (i in 0..n&^3, j in {0,1}, b in 0..3)
//
// Each sum is the horizontal reduction of four interleaved lane partials, so
// its rounding differs from left-to-right summation by a few ULPs (the
// ForwardBatchFast contract). The caller adds the bias and the n%4 tail.
//
//go:noescape
func fmaDot4x2(w0, w1, x0, x1, x2, x3 *float64, n int, sums *[8]float64)

// detectAVX2FMA performs the standard AVX2 feature dance: CPUID leaf 1 for
// FMA/AVX/OSXSAVE, XGETBV for OS-enabled XMM+YMM state, CPUID leaf 7 for AVX2.
func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const (
		fma     = 1 << 12
		avx     = 1 << 28
		osxsave = 1 << 27
	)
	if ecx1&fma == 0 || ecx1&avx == 0 || ecx1&osxsave == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&0x6 != 0x6 { // XMM and YMM state enabled by OS
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}
