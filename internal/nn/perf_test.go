package nn

import (
	"math"
	"math/rand"
	"testing"
)

// apuNet builds the paper's 504->42->42 APU Q-network shape (Section 4.6),
// the largest MLP on the simulate/train hot path.
func apuNet() *MLP {
	return New([]int{504, 42, 42}, []Activation{Sigmoid, LeakyReLU},
		rand.New(rand.NewSource(11)))
}

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v
}

func BenchmarkHotMLPForward(b *testing.B) {
	m := apuNet()
	x := randVec(m.InputSize(), 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

func BenchmarkHotTrainAction(b *testing.B) {
	m := apuNet()
	x := randVec(m.InputSize(), 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainAction(x, i%m.OutputSize(), 0.5, 0.001)
	}
}

// BenchmarkHotMLPForwardBatch32 measures the production batched-inference
// path — ForwardBatchFast, the one rl's chunked target inference rides
// (AVX2+FMA microkernel where available, the blocked scalar kernel
// otherwise).
func BenchmarkHotMLPForwardBatch32(b *testing.B) {
	m := apuNet()
	xs := make([][]float64, 32)
	for i := range xs {
		xs[i] = randVec(m.InputSize(), int64(20+i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForwardBatchFast(xs)
	}
}

// BenchmarkHotMLPForwardBatchExact32 measures the bit-identical blocked
// scalar batch path (ForwardBatch), the fallback and reference.
func BenchmarkHotMLPForwardBatchExact32(b *testing.B) {
	m := apuNet()
	xs := make([][]float64, 32)
	for i := range xs {
		xs[i] = randVec(m.InputSize(), int64(20+i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForwardBatch(xs)
	}
}

// BenchmarkHotQuantForward measures single-sample INT8 inference on the APU
// network — the software analog of the paper's Table 3 MAC-array engine.
func BenchmarkHotQuantForward(b *testing.B) {
	m := apuNet()
	q := Quantize(m, [][]float64{randVec(m.InputSize(), 3)})
	x := randVec(m.InputSize(), 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Forward(x)
	}
}

// BenchmarkHotQuantForwardBatch32 measures the blocked INT8 batch path.
func BenchmarkHotQuantForwardBatch32(b *testing.B) {
	m := apuNet()
	q := Quantize(m, [][]float64{randVec(m.InputSize(), 3)})
	xs := make([][]float64, 32)
	for i := range xs {
		xs[i] = randVec(m.InputSize(), int64(20+i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.ForwardBatch(xs)
	}
}

// TestForwardBatchMatchesForward pins ForwardBatch's bit-identity contract:
// every row equals the corresponding sequential Forward call exactly, across
// architectures (including a widest-hidden-plane net, which stresses the
// nb*maxWidth scratch sizing), tile-remainder widths, and a shrink-then-grow
// batch-size sequence reusing one network's warm scratch.
func TestForwardBatchMatchesForward(t *testing.T) {
	archs := []struct {
		name  string
		sizes []int
		acts  []Activation
	}{
		{"square", []int{60, 15, 15}, []Activation{Sigmoid, LeakyReLU}},
		// Widest plane is the hidden layer: the nb*maxWidth scratch sizing
		// must account for interior planes, not just input/output widths.
		{"wide-hidden", []int{6, 40, 4}, []Activation{Sigmoid, LeakyReLU}},
		// Odd widths exercise the 2-neuron tile's trailing-neuron path; a
		// 3-wide input exercises the all-tail (in < 4) kernel case.
		{"odd", []int{3, 7, 5}, []Activation{Tanh, Identity}},
	}
	for _, arch := range archs {
		m := New(arch.sizes, arch.acts, rand.New(rand.NewSource(4)))
		// Shrink-then-grow batch sequence on one network: scratch sized by
		// the 32-batch must survive shrinking to 3 and regrow at 64.
		for _, nb := range []int{1, 3, 32, 7, 3, 64, 5} {
			xs := make([][]float64, nb)
			for i := range xs {
				xs[i] = randVec(m.InputSize(), int64(100*nb+i))
			}
			rows := m.ForwardBatch(xs)
			if len(rows) != nb {
				t.Fatalf("%s batch %d: got %d rows", arch.name, nb, len(rows))
			}
			for b, x := range xs {
				want := m.Forward(x) // separate scratch; does not invalidate rows
				for j := range want {
					if rows[b][j] != want[j] {
						t.Fatalf("%s batch %d row %d out %d: ForwardBatch %v != Forward %v",
							arch.name, nb, b, j, rows[b][j], want[j])
					}
				}
			}
		}
	}
}

// ulpDistance returns the number of representable float64 values between a
// and b (0 when bit-identical).
func ulpDistance(a, b float64) uint64 {
	ia, ib := int64(math.Float64bits(a)), int64(math.Float64bits(b))
	// Map the sign-magnitude float encoding onto the ordered integer line.
	if ia < 0 {
		ia = math.MinInt64 - ia
	}
	if ib < 0 {
		ib = math.MinInt64 - ib
	}
	d := ia - ib
	if d < 0 {
		d = -d
	}
	return uint64(d)
}

// TestForwardBatchFastULP pins the ForwardBatchFast equivalence contract:
// FMA contraction and 4-lane interleaved partial sums may perturb each output
// by a few ULPs relative to sequential Forward, never more. The relative
// bound (512 ULPs ≈ 1e-13 relative) is paired with a tiny absolute floor for
// outputs that a cancelling sum drives toward zero, where ULPs lose meaning —
// a near-zero result can differ by hundreds of its own denormal-scale ULPs
// while the absolute error stays ~1e-18. Any kernel bug (wrong element,
// dropped tail, bad reduction) overshoots both bounds by orders of magnitude.
// Off amd64/AVX2 the fast path IS ForwardBatch and the distance is 0.
func TestForwardBatchFastULP(t *testing.T) {
	const (
		maxULP = 512
		absTol = 1e-12
	)
	for _, arch := range [][]int{{504, 42, 42}, {6, 40, 4}, {3, 7, 5}, {60, 15, 15}} {
		m := New(arch, []Activation{Sigmoid, LeakyReLU}, rand.New(rand.NewSource(8)))
		for _, nb := range []int{1, 4, 32, 33} {
			xs := make([][]float64, nb)
			for i := range xs {
				xs[i] = randVec(m.InputSize(), int64(300*nb+i))
			}
			rows := m.ForwardBatchFast(xs)
			for b, x := range xs {
				want := m.Forward(x)
				for j := range want {
					d := ulpDistance(rows[b][j], want[j])
					if d > maxULP && math.Abs(rows[b][j]-want[j]) > absTol {
						t.Fatalf("%v nb=%d row %d out %d: fast %v vs exact %v (%d ULPs)",
							arch, nb, b, j, rows[b][j], want[j], d)
					}
				}
			}
		}
	}
}

func TestForwardBatchFastZeroAllocs(t *testing.T) {
	m := apuNet()
	xs := make([][]float64, 32)
	for i := range xs {
		xs[i] = randVec(m.InputSize(), int64(i))
	}
	m.ForwardBatchFast(xs) // warm the batch scratch
	if allocs := testing.AllocsPerRun(100, func() { m.ForwardBatchFast(xs) }); allocs != 0 {
		t.Fatalf("ForwardBatchFast allocates %v objects per call, want 0", allocs)
	}
}

func TestForwardZeroAllocs(t *testing.T) {
	m := apuNet()
	x := randVec(m.InputSize(), 7)
	if allocs := testing.AllocsPerRun(100, func() { m.Forward(x) }); allocs != 0 {
		t.Fatalf("Forward allocates %v objects per call, want 0", allocs)
	}
}

func TestForwardBatchZeroAllocs(t *testing.T) {
	m := apuNet()
	xs := make([][]float64, 32)
	for i := range xs {
		xs[i] = randVec(m.InputSize(), int64(i))
	}
	m.ForwardBatch(xs) // warm the batch scratch
	if allocs := testing.AllocsPerRun(100, func() { m.ForwardBatch(xs) }); allocs != 0 {
		t.Fatalf("ForwardBatch allocates %v objects per call, want 0", allocs)
	}
}

func TestTrainActionZeroAllocs(t *testing.T) {
	m := apuNet()
	x := randVec(m.InputSize(), 7)
	if allocs := testing.AllocsPerRun(100, func() {
		m.TrainAction(x, 3, 0.5, 0.001)
	}); allocs != 0 {
		t.Fatalf("TrainAction allocates %v objects per call, want 0", allocs)
	}
}
