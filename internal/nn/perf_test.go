package nn

import (
	"math/rand"
	"testing"
)

// apuNet builds the paper's 504->42->42 APU Q-network shape (Section 4.6),
// the largest MLP on the simulate/train hot path.
func apuNet() *MLP {
	return New([]int{504, 42, 42}, []Activation{Sigmoid, LeakyReLU},
		rand.New(rand.NewSource(11)))
}

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v
}

func BenchmarkHotMLPForward(b *testing.B) {
	m := apuNet()
	x := randVec(m.InputSize(), 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

func BenchmarkHotTrainAction(b *testing.B) {
	m := apuNet()
	x := randVec(m.InputSize(), 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainAction(x, i%m.OutputSize(), 0.5, 0.001)
	}
}

func BenchmarkHotMLPForwardBatch32(b *testing.B) {
	m := apuNet()
	xs := make([][]float64, 32)
	for i := range xs {
		xs[i] = randVec(m.InputSize(), int64(20+i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ForwardBatch(xs)
	}
}

// TestForwardBatchMatchesForward pins ForwardBatch's bit-identity contract:
// every row equals the corresponding sequential Forward call exactly,
// including a ragged batch size and a second call that reuses warm scratch.
func TestForwardBatchMatchesForward(t *testing.T) {
	m := New([]int{60, 15, 15}, []Activation{Sigmoid, LeakyReLU},
		rand.New(rand.NewSource(4)))
	for _, nb := range []int{1, 3, 32, 7} {
		xs := make([][]float64, nb)
		for i := range xs {
			xs[i] = randVec(m.InputSize(), int64(100*nb+i))
		}
		rows := m.ForwardBatch(xs)
		if len(rows) != nb {
			t.Fatalf("batch %d: got %d rows", nb, len(rows))
		}
		for b, x := range xs {
			want := m.Forward(x) // separate scratch; does not invalidate rows
			for j := range want {
				if rows[b][j] != want[j] {
					t.Fatalf("batch %d row %d out %d: ForwardBatch %v != Forward %v",
						nb, b, j, rows[b][j], want[j])
				}
			}
		}
	}
}

func TestForwardZeroAllocs(t *testing.T) {
	m := apuNet()
	x := randVec(m.InputSize(), 7)
	if allocs := testing.AllocsPerRun(100, func() { m.Forward(x) }); allocs != 0 {
		t.Fatalf("Forward allocates %v objects per call, want 0", allocs)
	}
}

func TestForwardBatchZeroAllocs(t *testing.T) {
	m := apuNet()
	xs := make([][]float64, 32)
	for i := range xs {
		xs[i] = randVec(m.InputSize(), int64(i))
	}
	m.ForwardBatch(xs) // warm the batch scratch
	if allocs := testing.AllocsPerRun(100, func() { m.ForwardBatch(xs) }); allocs != 0 {
		t.Fatalf("ForwardBatch allocates %v objects per call, want 0", allocs)
	}
}

func TestTrainActionZeroAllocs(t *testing.T) {
	m := apuNet()
	x := randVec(m.InputSize(), 7)
	if allocs := testing.AllocsPerRun(100, func() {
		m.TrainAction(x, 3, 0.5, 0.001)
	}); allocs != 0 {
		t.Fatalf("TrainAction allocates %v objects per call, want 0", allocs)
	}
}
