package nn

import (
	"math"
	"math/rand"
	"testing"
)

// calibSet returns n random vectors in [-1, 1) of the given width.
func calibSet(n, width int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	for i := range xs {
		v := make([]float64, width)
		for j := range v {
			v[j] = rng.Float64()*2 - 1
		}
		xs[i] = v
	}
	return xs
}

// TestQuantizedTracksFloat: INT8 inference must stay close to the float
// reference on in-calibration-range inputs. With per-layer symmetric scales
// the worst-case step is one input quantum times the weight mass, so a few
// percent of the output range is the expected regime — the test pins a bound
// well inside "same policy most of the time" and far outside "broken".
func TestQuantizedTracksFloat(t *testing.T) {
	for _, arch := range []struct {
		sizes []int
		acts  []Activation
	}{
		{[]int{60, 15, 15}, []Activation{Sigmoid, LeakyReLU}},
		{[]int{504, 42, 42}, []Activation{Sigmoid, LeakyReLU}},
		{[]int{7, 9, 3}, []Activation{Tanh, Identity}},
	} {
		m := New(arch.sizes, arch.acts, rand.New(rand.NewSource(17)))
		calib := calibSet(64, m.InputSize(), 23)
		q := Quantize(m, calib)

		// Output range over the calibration set, for a scale-aware bound.
		rangeMax := 0.0
		for _, x := range calib {
			if a := maxAbs(m.Forward(x)); a > rangeMax {
				rangeMax = a
			}
		}
		tol := 0.05 * (rangeMax + 1e-9)

		worst := 0.0
		for _, x := range calibSet(32, m.InputSize(), 29) {
			yq := q.Forward(x)
			yf := m.Forward(x)
			for j := range yf {
				if d := math.Abs(yq[j] - yf[j]); d > worst {
					worst = d
				}
			}
		}
		if worst > tol {
			t.Errorf("%v: max |quant-float| = %g, want <= %g", arch.sizes, worst, tol)
		}
	}
}

// TestQuantizedBatchMatchesForward pins the INT8 batch path's bit-identity:
// int32 accumulation is exact, so blocking cannot perturb results.
func TestQuantizedBatchMatchesForward(t *testing.T) {
	m := New([]int{33, 21, 10}, []Activation{Sigmoid, LeakyReLU},
		rand.New(rand.NewSource(5)))
	q := Quantize(m, calibSet(16, m.InputSize(), 3))
	for _, nb := range []int{1, 3, 4, 7, 32, 5} {
		xs := calibSet(nb, m.InputSize(), int64(40+nb))
		rows := q.ForwardBatch(xs)
		if len(rows) != nb {
			t.Fatalf("nb=%d: got %d rows", nb, len(rows))
		}
		for b, x := range xs {
			want := q.Forward(x)
			for j := range want {
				if rows[b][j] != want[j] {
					t.Fatalf("nb=%d row %d out %d: batch %v != single %v",
						nb, b, j, rows[b][j], want[j])
				}
			}
		}
	}
}

// TestQuantizedDeterministic: same weights + calibration + input => bitwise
// identical Q-values, the property the fidelity study's CSV output relies on.
func TestQuantizedDeterministic(t *testing.T) {
	build := func() (*Quantized, []float64) {
		m := New([]int{20, 12, 6}, []Activation{Sigmoid, LeakyReLU},
			rand.New(rand.NewSource(9)))
		return Quantize(m, calibSet(8, 20, 2)), calibSet(1, 20, 77)[0]
	}
	q1, x := build()
	q2, _ := build()
	y1 := q1.Forward(x)
	y2 := q2.Forward(x)
	for j := range y1 {
		if y1[j] != y2[j] {
			t.Fatalf("non-deterministic quantized inference at %d: %v vs %v", j, y1[j], y2[j])
		}
	}
}

// TestQuantizedArgmaxAgreement: on a trained-ish network the quantized argmax
// should agree with the float argmax on a clear majority of random states —
// the soft end of the paper's "would the INT8 engine change decisions" loop.
func TestQuantizedArgmaxAgreement(t *testing.T) {
	const slots = 5
	m := New([]int{slots, 15, slots}, []Activation{Sigmoid, LeakyReLU},
		rand.New(rand.NewSource(4)))
	rng := rand.New(rand.NewSource(5))
	// Train argmax-oldest as in TestLearnArgmaxOldest, briefly.
	for step := 0; step < 8000; step++ {
		x := make([]float64, slots)
		best := 0
		for i := range x {
			x[i] = rng.Float64()
			if x[i] > x[best] {
				best = i
			}
		}
		target := make([]float64, slots)
		target[best] = 1
		m.TrainMSE(x, target, 0.05)
	}
	q := Quantize(m, calibSet(64, slots, 6))
	agree := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		x := calibSet(1, slots, int64(100+i))[0]
		for j := range x {
			x[j] = math.Abs(x[j]) // ages are non-negative
		}
		af, aq := argmax(m.Forward(x)), argmax(q.Forward(x))
		if af == aq {
			agree++
		}
	}
	if frac := float64(agree) / trials; frac < 0.8 {
		t.Fatalf("quantized argmax agreement %.2f, want >= 0.8", frac)
	}
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs[1:] {
		if v > xs[best] {
			best = i + 1
		}
	}
	return best
}

func TestQuantizedZeroAllocs(t *testing.T) {
	m := New([]int{504, 42, 42}, []Activation{Sigmoid, LeakyReLU},
		rand.New(rand.NewSource(11)))
	q := Quantize(m, calibSet(4, 504, 1))
	x := calibSet(1, 504, 2)[0]
	if allocs := testing.AllocsPerRun(100, func() { q.Forward(x) }); allocs != 0 {
		t.Fatalf("Quantized.Forward allocates %v objects per call, want 0", allocs)
	}
	xs := calibSet(32, 504, 3)
	q.ForwardBatch(xs) // warm batch scratch
	if allocs := testing.AllocsPerRun(100, func() { q.ForwardBatch(xs) }); allocs != 0 {
		t.Fatalf("Quantized.ForwardBatch allocates %v objects per call, want 0", allocs)
	}
}

func TestQuantizeNeedsCalibration(t *testing.T) {
	m := New([]int{3, 2, 2}, []Activation{Sigmoid, Identity},
		rand.New(rand.NewSource(1)))
	defer func() {
		if recover() == nil {
			t.Fatal("Quantize(nil calibration) did not panic")
		}
	}()
	Quantize(m, nil)
}
