package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func newTestNet(t *testing.T, sizes []int, acts []Activation, seed int64) *MLP {
	t.Helper()
	return New(sizes, acts, rand.New(rand.NewSource(seed)))
}

func TestForwardShapes(t *testing.T) {
	m := newTestNet(t, []int{4, 3, 2}, []Activation{Sigmoid, ReLU}, 1)
	out := m.Forward([]float64{0.1, 0.2, 0.3, 0.4})
	if len(out) != 2 {
		t.Fatalf("output size = %d, want 2", len(out))
	}
	if m.InputSize() != 4 || m.OutputSize() != 2 {
		t.Fatalf("InputSize/OutputSize = %d/%d, want 4/2", m.InputSize(), m.OutputSize())
	}
}

func TestForwardDeterministic(t *testing.T) {
	m := newTestNet(t, []int{5, 4, 3}, []Activation{Tanh, Identity}, 2)
	x := []float64{0.5, -0.2, 0.9, 0, 1}
	a := append([]float64(nil), m.Forward(x)...)
	b := m.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("forward not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNumParams(t *testing.T) {
	m := newTestNet(t, []int{60, 15, 15}, []Activation{Sigmoid, ReLU}, 1)
	want := 60*15 + 15 + 15*15 + 15
	if got := m.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
}

func TestActivations(t *testing.T) {
	cases := []struct {
		act  Activation
		z    float64
		want float64
	}{
		{Identity, 1.5, 1.5},
		{ReLU, -2, 0},
		{ReLU, 3, 3},
		{Sigmoid, 0, 0.5},
		{Tanh, 0, 0},
	}
	for _, c := range cases {
		if got := c.act.apply(c.z); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v(%v) = %v, want %v", c.act, c.z, got, c.want)
		}
	}
}

// TestGradientCheck verifies backprop against numerical differentiation of
// the 0.5*sum((y-t)^2) loss for every parameter of a small network.
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, acts := range [][]Activation{
		{Sigmoid, ReLU},
		{Tanh, Identity},
		{Sigmoid, Sigmoid},
		{Sigmoid, LeakyReLU},
	} {
		m := New([]int{3, 4, 2}, acts, rng)
		x := []float64{0.3, -0.7, 0.9}
		target := []float64{0.2, 0.8}

		loss := func(net *MLP) float64 {
			y := net.Forward(x)
			l := 0.0
			for j := range y {
				e := y[j] - target[j]
				l += 0.5 * e * e
			}
			return l
		}

		// Analytic step: one SGD update with lr. The parameter delta equals
		// -lr * dL/dw, so compare against the numerical gradient.
		const lr = 1e-3
		before := m.Clone()
		y := m.Forward(x)
		grad := make([]float64, len(y))
		for j := range y {
			grad[j] = y[j] - target[j]
		}
		m.Backprop(x, grad, lr)

		const eps = 1e-6
		for l := range before.Layers {
			for i := range before.Layers[l].W {
				plus := before.Clone()
				plus.Layers[l].W[i] += eps
				minus := before.Clone()
				minus.Layers[l].W[i] -= eps
				numGrad := (loss(plus) - loss(minus)) / (2 * eps)
				analytic := (before.Layers[l].W[i] - m.Layers[l].W[i]) / lr
				if math.Abs(numGrad-analytic) > 1e-4*(1+math.Abs(numGrad)) {
					t.Fatalf("acts=%v layer %d w[%d]: numeric %g vs analytic %g",
						acts, l, i, numGrad, analytic)
				}
			}
			for i := range before.Layers[l].B {
				plus := before.Clone()
				plus.Layers[l].B[i] += eps
				minus := before.Clone()
				minus.Layers[l].B[i] -= eps
				numGrad := (loss(plus) - loss(minus)) / (2 * eps)
				analytic := (before.Layers[l].B[i] - m.Layers[l].B[i]) / lr
				if math.Abs(numGrad-analytic) > 1e-4*(1+math.Abs(numGrad)) {
					t.Fatalf("acts=%v layer %d b[%d]: numeric %g vs analytic %g",
						acts, l, i, numGrad, analytic)
				}
			}
		}
	}
}

// TestLearnXOR checks end-to-end training on the classic non-linearly
// separable problem.
func TestLearnXOR(t *testing.T) {
	m := newTestNet(t, []int{2, 8, 1}, []Activation{Tanh, Sigmoid}, 3)
	inputs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := []float64{0, 1, 1, 0}
	for epoch := 0; epoch < 8000; epoch++ {
		for i, x := range inputs {
			m.TrainMSE(x, []float64{targets[i]}, 0.5)
		}
	}
	for i, x := range inputs {
		y := m.Forward(x)[0]
		if math.Abs(y-targets[i]) > 0.2 {
			t.Fatalf("XOR(%v) = %.3f, want %.0f", x, y, targets[i])
		}
	}
}

// TestLearnArgmaxOldest is the supervised sanity check behind the RL setup:
// given a state of per-slot ages, the network must learn Q-values whose
// argmax is the slot with the largest age.
func TestLearnArgmaxOldest(t *testing.T) {
	const slots = 5
	m := newTestNet(t, []int{slots, 15, slots}, []Activation{Sigmoid, LeakyReLU}, 4)
	rng := rand.New(rand.NewSource(5))
	sample := func() ([]float64, int) {
		x := make([]float64, slots)
		best := 0
		for i := range x {
			x[i] = rng.Float64()
			if x[i] > x[best] {
				best = i
			}
		}
		return x, best
	}
	for step := 0; step < 30000; step++ {
		x, best := sample()
		// Supervised targets mimic converged Q: high for oldest, low others.
		target := make([]float64, slots)
		for i := range target {
			if i == best {
				target[i] = 1
			}
		}
		m.TrainMSE(x, target, 0.05)
	}
	correct := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		x, best := sample()
		y := m.Forward(x)
		arg := 0
		for j := range y {
			if y[j] > y[arg] {
				arg = j
			}
		}
		if arg == best {
			correct++
		}
	}
	if acc := float64(correct) / trials; acc < 0.9 {
		t.Fatalf("argmax accuracy %.2f, want >= 0.9", acc)
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	a := newTestNet(t, []int{3, 4, 2}, []Activation{Sigmoid, ReLU}, 1)
	b := a.Clone()
	x := []float64{0.1, 0.2, 0.3}
	ya := append([]float64(nil), a.Forward(x)...)
	yb := b.Forward(x)
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatalf("clone differs at %d", i)
		}
	}
	// Mutate the clone; original must not change.
	b.TrainMSE(x, []float64{1, 1}, 0.5)
	ya2 := a.Forward(x)
	for i := range ya {
		if ya[i] != ya2[i] {
			t.Fatalf("training the clone mutated the original")
		}
	}
	// CopyFrom restores equality.
	b.CopyFrom(a)
	yb2 := b.Forward(x)
	for i := range ya {
		if ya[i] != yb2[i] {
			t.Fatalf("CopyFrom did not restore weights")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	a := newTestNet(t, []int{6, 5, 4}, []Activation{Sigmoid, ReLU}, 9)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	b, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	x := []float64{1, 0, 0.5, -0.5, 0.25, 0.75}
	ya := append([]float64(nil), a.Forward(x)...)
	yb := b.Forward(x)
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatalf("loaded net differs at output %d: %v vs %v", i, ya[i], yb[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("Load accepted garbage input")
	}
}

func TestWeightIntrospection(t *testing.T) {
	m := newTestNet(t, []int{2, 2, 1}, []Activation{Identity, Identity}, 1)
	// Set first-layer weights explicitly: input 0 -> +1/-1, input 1 -> 2/2.
	l := m.Layers[0]
	l.W[0], l.W[1] = 1, 2 // neuron 0: w(in0)=1 w(in1)=2
	l.W[2], l.W[3] = -1, 2
	abs := m.InputWeightAbsMean()
	if abs[0] != 1 || abs[1] != 2 {
		t.Fatalf("InputWeightAbsMean = %v, want [1 2]", abs)
	}
	signed := m.InputWeightSignedMean()
	if signed[0] != 0 || signed[1] != 2 {
		t.Fatalf("InputWeightSignedMean = %v, want [0 2]", signed)
	}
	out := m.Layers[1]
	out.W[0], out.W[1] = 0.5, 1.5
	if got := m.OutputWeightMean(); got != 1 {
		t.Fatalf("OutputWeightMean = %v, want 1", got)
	}
}

func TestTrainActionOnlyMovesAction(t *testing.T) {
	m := newTestNet(t, []int{3, 4, 3}, []Activation{Sigmoid, Identity}, 6)
	x := []float64{0.2, 0.4, 0.6}
	before := append([]float64(nil), m.Forward(x)...)
	m.TrainAction(x, 1, before[1]+1, 0.1)
	after := m.Forward(x)
	if !(after[1] > before[1]) {
		t.Fatalf("action output did not move toward target: %v -> %v", before[1], after[1])
	}
	// Non-action outputs may shift via shared hidden weights, but far less.
	moved := math.Abs(after[1] - before[1])
	for j := 0; j < 3; j++ {
		if j == 1 {
			continue
		}
		if math.Abs(after[j]-before[j]) > moved {
			t.Fatalf("non-action output %d moved more than the action output", j)
		}
	}
}

func TestNewPanics(t *testing.T) {
	cases := []struct {
		sizes []int
		acts  []Activation
	}{
		{[]int{3}, nil},
		{[]int{3, 2}, []Activation{Sigmoid, ReLU}},
		{[]int{0, 2}, []Activation{Sigmoid}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v, %v) did not panic", c.sizes, c.acts)
				}
			}()
			New(c.sizes, c.acts, rand.New(rand.NewSource(1)))
		}()
	}
}
