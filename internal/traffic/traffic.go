// Package traffic provides synthetic traffic patterns and injection processes
// for driving mesh networks: uniform random, transpose, bit-complement,
// hotspot and tornado patterns with Bernoulli injection, plus a harness that
// runs warmup/measure/drain phases and reports latency statistics.
//
// The paper's Section 3.2 study uses uniform random traffic; the other
// patterns are standard NoC evaluation patterns used by the extended tests
// and examples.
package traffic

import (
	"fmt"
	"math/rand"

	"mlnoc/internal/noc"
)

// Pattern chooses a destination index for a message injected by the node at
// srcIdx within the endpoint set. Indices are positions within the slice of
// participating nodes, not raw NodeIDs.
type Pattern interface {
	Name() string
	Dest(rng *rand.Rand, nodes []*noc.Node, srcIdx int) int
}

// UniformRandom sends each message to a destination chosen uniformly at
// random among the other endpoints.
type UniformRandom struct{}

// Name implements Pattern.
func (UniformRandom) Name() string { return "uniform-random" }

// Dest implements Pattern.
func (UniformRandom) Dest(rng *rand.Rand, nodes []*noc.Node, srcIdx int) int {
	d := rng.Intn(len(nodes) - 1)
	if d >= srcIdx {
		d++
	}
	return d
}

// Transpose sends from mesh coordinate (x, y) to (y, x). Nodes whose
// coordinates are on the diagonal send uniformly at random.
type Transpose struct{}

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (Transpose) Dest(rng *rand.Rand, nodes []*noc.Node, srcIdx int) int {
	src := nodes[srcIdx].Router.Coord
	if src.X == src.Y {
		return UniformRandom{}.Dest(rng, nodes, srcIdx)
	}
	want := noc.Coord{X: src.Y, Y: src.X}
	for i, n := range nodes {
		if n.Router.Coord == want {
			return i
		}
	}
	return UniformRandom{}.Dest(rng, nodes, srcIdx)
}

// BitComplement sends from endpoint index i to index (N-1)-i.
type BitComplement struct{}

// Name implements Pattern.
func (BitComplement) Name() string { return "bit-complement" }

// Dest implements Pattern.
func (BitComplement) Dest(rng *rand.Rand, nodes []*noc.Node, srcIdx int) int {
	d := len(nodes) - 1 - srcIdx
	if d == srcIdx {
		return UniformRandom{}.Dest(rng, nodes, srcIdx)
	}
	return d
}

// Hotspot sends a fraction of traffic to a small set of hotspot endpoints and
// the remainder uniformly at random.
type Hotspot struct {
	// Spots are endpoint indices receiving the concentrated traffic.
	Spots []int
	// Fraction in [0,1] is the probability a message targets a hotspot.
	Fraction float64
}

// Name implements Pattern.
func (h Hotspot) Name() string { return "hotspot" }

// Dest implements Pattern.
func (h Hotspot) Dest(rng *rand.Rand, nodes []*noc.Node, srcIdx int) int {
	if len(h.Spots) > 0 && rng.Float64() < h.Fraction {
		d := h.Spots[rng.Intn(len(h.Spots))]
		if d != srcIdx {
			return d
		}
	}
	return UniformRandom{}.Dest(rng, nodes, srcIdx)
}

// Tornado sends from (x, y) to ((x + W/2 - 1) mod W, y) on a W-wide mesh,
// a classic adversarial pattern for dimension-ordered routing.
type Tornado struct{ Width int }

// Name implements Pattern.
func (Tornado) Name() string { return "tornado" }

// Dest implements Pattern.
func (t Tornado) Dest(rng *rand.Rand, nodes []*noc.Node, srcIdx int) int {
	src := nodes[srcIdx].Router.Coord
	if t.Width < 2 {
		return UniformRandom{}.Dest(rng, nodes, srcIdx)
	}
	want := noc.Coord{X: (src.X + t.Width/2 - 1) % t.Width, Y: src.Y}
	for i, n := range nodes {
		if n.Router.Coord == want && i != srcIdx {
			return i
		}
	}
	return UniformRandom{}.Dest(rng, nodes, srcIdx)
}

// SizeMix describes the distribution of message sizes: a message is Long
// flits with probability LongFrac, otherwise Short flits. The paper's system
// uses 1-flit request/coherence messages and 5-flit data messages.
type SizeMix struct {
	Short, Long int
	LongFrac    float64
}

// DefaultSizeMix matches the paper: 1-flit and 5-flit messages.
var DefaultSizeMix = SizeMix{Short: 1, Long: 5, LongFrac: 0.3}

func (s SizeMix) sample(rng *rand.Rand) int {
	if rng.Float64() < s.LongFrac {
		return s.Long
	}
	return s.Short
}

// Injector drives Bernoulli open-loop injection: every cycle each
// participating node independently injects a message with probability Rate.
type Injector struct {
	// Nodes are the participating endpoints (both sources and destinations).
	Nodes []*noc.Node
	// Pattern chooses destinations.
	Pattern Pattern
	// Rate is the per-node injection probability per cycle.
	Rate float64
	// Sizes is the message size mix (DefaultSizeMix if zero).
	Sizes SizeMix
	// Classes is the number of message classes to spread over; messages get
	// a uniformly random class in [0, Classes). Defaults to 1.
	Classes int

	rng    *rand.Rand
	nextID uint64
	net    *noc.Network // cached from Nodes[0] for the message freelist
}

// NewInjector creates an injector over the given nodes.
func NewInjector(nodes []*noc.Node, p Pattern, rate float64, rng *rand.Rand) *Injector {
	if len(nodes) < 2 {
		panic("traffic: injector needs at least two nodes")
	}
	if rate < 0 || rate > 1 {
		panic("traffic: injection rate must be in [0,1]")
	}
	return &Injector{
		Nodes:   nodes,
		Pattern: p,
		Rate:    rate,
		Sizes:   DefaultSizeMix,
		Classes: 1,
		rng:     rng,
	}
}

// Tick performs one cycle of injections. Call it once before each
// Network.Step (or from a wrapper loop).
func (in *Injector) Tick() {
	if in.net == nil {
		in.net = in.Nodes[0].Network()
	}
	for i, node := range in.Nodes {
		if in.rng.Float64() >= in.Rate {
			continue
		}
		// RNG draw order (dest, size, class) matches the historical literal
		// construction so seeded runs stay bit-identical; messages now come
		// from the network's freelist instead of the heap.
		d := in.Pattern.Dest(in.rng, in.Nodes, i)
		size := in.Sizes.sample(in.rng)
		typ := noc.TypeRequest
		if size == in.Sizes.Long {
			typ = noc.TypeResponse
		}
		in.nextID++
		m := in.net.AllocMessage()
		m.ID = in.nextID
		m.Dst = in.Nodes[d].ID
		m.Class = noc.Class(in.rng.Intn(max(1, in.Classes)))
		m.Type = typ
		m.SizeFlits = size
		node.Inject(m)
	}
}

// Generated returns the number of messages generated so far.
func (in *Injector) Generated() uint64 { return in.nextID }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RunResult reports the measured phase of a synthetic-traffic run.
type RunResult struct {
	AvgLatency float64
	MaxLatency float64
	Delivered  int64
	Injected   int64
	Cycles     int64
}

// String implements fmt.Stringer.
func (r RunResult) String() string {
	return fmt.Sprintf("avg=%.2f max=%.0f delivered=%d cycles=%d",
		r.AvgLatency, r.MaxLatency, r.Delivered, r.Cycles)
}

// Run executes a warmup/measure experiment: warmup cycles with injection
// (stats discarded), then measure cycles with injection, then a drain phase
// of up to 4*measure cycles without injection so in-flight messages finish.
// Latency statistics cover every message injected after warmup.
func Run(net *noc.Network, in *Injector, warmup, measure int64) RunResult {
	for i := int64(0); i < warmup; i++ {
		in.Tick()
		net.Step()
	}
	net.ResetStats()
	for i := int64(0); i < measure; i++ {
		in.Tick()
		net.Step()
	}
	net.Drain(4 * measure)
	st := net.Stats()
	return RunResult{
		AvgLatency: st.Latency.Mean(),
		MaxLatency: st.Latency.Max(),
		Delivered:  st.Delivered,
		Injected:   st.Injected,
		Cycles:     net.Cycle(),
	}
}
