package traffic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlnoc/internal/arb"
	"mlnoc/internal/noc"
)

func nodes4x4(t *testing.T) (*noc.Network, []*noc.Node) {
	t.Helper()
	return noc.BuildMeshCores(noc.Config{Width: 4, Height: 4, VCs: 2})
}

func TestUniformRandomNeverSelf(t *testing.T) {
	_, ns := nodes4x4(t)
	rng := rand.New(rand.NewSource(1))
	p := UniformRandom{}
	counts := make([]int, len(ns))
	for i := 0; i < 5000; i++ {
		src := rng.Intn(len(ns))
		d := p.Dest(rng, ns, src)
		if d == src {
			t.Fatal("uniform random chose self")
		}
		counts[d]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("destination %d never chosen", i)
		}
	}
}

func TestTranspose(t *testing.T) {
	_, ns := nodes4x4(t)
	rng := rand.New(rand.NewSource(2))
	p := Transpose{}
	// (1,2) -> (2,1): node index 2*4+1=9 -> 1*4+2=6.
	if d := p.Dest(rng, ns, 9); d != 6 {
		t.Fatalf("transpose dest = %d, want 6", d)
	}
	// Diagonal nodes fall back to uniform (never self).
	for i := 0; i < 100; i++ {
		if d := p.Dest(rng, ns, 0); d == 0 {
			t.Fatal("diagonal transpose chose self")
		}
	}
}

func TestBitComplement(t *testing.T) {
	_, ns := nodes4x4(t)
	rng := rand.New(rand.NewSource(3))
	p := BitComplement{}
	if d := p.Dest(rng, ns, 0); d != 15 {
		t.Fatalf("bit-complement dest = %d, want 15", d)
	}
	if d := p.Dest(rng, ns, 5); d != 10 {
		t.Fatalf("bit-complement dest = %d, want 10", d)
	}
}

func TestHotspotConcentration(t *testing.T) {
	_, ns := nodes4x4(t)
	rng := rand.New(rand.NewSource(4))
	p := Hotspot{Spots: []int{7}, Fraction: 0.8}
	hits := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		if p.Dest(rng, ns, 0) == 7 {
			hits++
		}
	}
	frac := float64(hits) / trials
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("hotspot fraction %.3f, want ~0.8", frac)
	}
}

func TestTornado(t *testing.T) {
	_, ns := nodes4x4(t)
	rng := rand.New(rand.NewSource(5))
	p := Tornado{Width: 4}
	// (0,0) -> ((0+1)%4, 0) = node 1.
	if d := p.Dest(rng, ns, 0); d != 1 {
		t.Fatalf("tornado dest = %d, want 1", d)
	}
}

func TestInjectorRate(t *testing.T) {
	net, ns := nodes4x4(t)
	net.SetPolicy(arb.NewGlobalAge())
	in := NewInjector(ns, UniformRandom{}, 0.25, rand.New(rand.NewSource(6)))
	in.Classes = 2
	const cycles = 2000
	for i := 0; i < cycles; i++ {
		in.Tick()
		net.Step()
	}
	expect := 0.25 * float64(len(ns)) * cycles
	got := float64(in.Generated())
	if got < 0.9*expect || got > 1.1*expect {
		t.Fatalf("generated %v messages, want ~%v", got, expect)
	}
}

func TestInjectorValidation(t *testing.T) {
	_, ns := nodes4x4(t)
	rng := rand.New(rand.NewSource(7))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("injector accepted rate > 1")
			}
		}()
		NewInjector(ns, UniformRandom{}, 1.5, rng)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("injector accepted single node")
			}
		}()
		NewInjector(ns[:1], UniformRandom{}, 0.1, rng)
	}()
}

func TestSizeMixSample(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	mix := SizeMix{Short: 1, Long: 5, LongFrac: 0.3}
	longs := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		switch mix.sample(rng) {
		case 5:
			longs++
		case 1:
		default:
			t.Fatal("unexpected size")
		}
	}
	frac := float64(longs) / trials
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("long fraction %.3f, want ~0.3", frac)
	}
}

func TestRunPhases(t *testing.T) {
	net, ns := nodes4x4(t)
	net.SetPolicy(arb.NewFIFO())
	in := NewInjector(ns, UniformRandom{}, 0.1, rand.New(rand.NewSource(9)))
	in.Classes = 2
	res := Run(net, in, 500, 1000)
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if res.AvgLatency <= 0 {
		t.Fatalf("avg latency %v", res.AvgLatency)
	}
	if res.MaxLatency < res.AvgLatency {
		t.Fatal("max < avg")
	}
	if res.String() == "" {
		t.Fatal("empty result string")
	}
}

// TestQuickPatternsInRange: every pattern returns a valid non-self index for
// arbitrary sources (self allowed only never).
func TestQuickPatternsInRange(t *testing.T) {
	_, ns := nodes4x4(t)
	rng := rand.New(rand.NewSource(10))
	patterns := []Pattern{
		UniformRandom{}, Transpose{}, BitComplement{},
		Hotspot{Spots: []int{3, 9}, Fraction: 0.5}, Tornado{Width: 4},
	}
	f := func(src8 uint8, seed int64) bool {
		src := int(src8) % len(ns)
		r := rand.New(rand.NewSource(seed))
		for _, p := range patterns {
			d := p.Dest(r, ns, src)
			if d < 0 || d >= len(ns) || d == src {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestPatternNames(t *testing.T) {
	for _, p := range []Pattern{
		UniformRandom{}, Transpose{}, BitComplement{}, Hotspot{}, Tornado{},
	} {
		if p.Name() == "" {
			t.Errorf("%T empty name", p)
		}
	}
}
