package experiments

import (
	"fmt"

	"mlnoc/internal/viz"
)

// CSV export for every experiment result, for downstream plotting. Each
// method returns the raw numbers of the corresponding rendered table.

// CSV exports the Fig. 5 panel.
func (r *MeshStudyResult) CSV() string {
	m := make([][]float64, len(r.Policies))
	for i := range r.Policies {
		m[i] = []float64{r.AvgLatency[i], r.Normalized[i]}
	}
	return viz.MatrixCSV("policy", r.Policies, []string{"avg_latency", "normalized"}, m)
}

// HeatmapCSV exports the trained agent's weight heatmap (Fig. 4 / Fig. 7).
func (r *MeshStudyResult) HeatmapCSV() string {
	return viz.HeatmapCSV(r.Heatmap.RowLabels, r.Heatmap.ColLabels, r.Heatmap.Abs)
}

// CSVAvg exports the Fig. 9 matrix.
func (r *ExecSweepResult) CSVAvg() string {
	return viz.MatrixCSV("workload", r.Workloads, r.Policies, r.NormAvg)
}

// CSVTail exports the Fig. 10 matrix.
func (r *ExecSweepResult) CSVTail() string {
	return viz.MatrixCSV("workload", r.Workloads, r.Policies, r.NormTail)
}

// CSV exports the Fig. 11 matrix.
func (r *MixResult) CSV() string {
	return viz.MatrixCSV("mix", r.Mixes, r.Policies, r.NormAvg)
}

// CSV exports the training-curve series (Figs. 12/13): one row per epoch.
func (r *CurveResult) CSV() string {
	n := 0
	for _, c := range r.Curves {
		if len(c) > n {
			n = len(c)
		}
	}
	labels := make([]string, n)
	m := make([][]float64, n)
	for e := 0; e < n; e++ {
		labels[e] = fmt.Sprintf("%d", e+1)
		row := make([]float64, len(r.Curves))
		for s, c := range r.Curves {
			if e < len(c) {
				row[s] = c[e]
			}
		}
		m[e] = row
	}
	return viz.MatrixCSV("epoch", labels, r.Names, m)
}

// CSV exports the Table 3 rows.
func (r *Table3Result) CSV() string {
	names := make([]string, len(r.Reports))
	m := make([][]float64, len(r.Reports))
	for i, rep := range r.Reports {
		names[i] = rep.Name
		m[i] = []float64{rep.LatencyNS, rep.AreaMM2, rep.PowerMW, float64(rep.Gates)}
	}
	return viz.MatrixCSV("design", names,
		[]string{"latency_ns", "area_mm2", "power_mw", "gates"}, m)
}

// CSV exports the Section 5.1 ablation matrix.
func (r *AblationResult) CSV() string {
	return viz.MatrixCSV("workload", r.Workloads, r.Variants, r.Norm)
}

// CSV exports the fairness table.
func (r *FairnessResult) CSV() string {
	m := make([][]float64, len(r.Policies))
	for i := range r.Policies {
		m[i] = []float64{r.Avg[i], r.P99[i], r.Max[i], r.Jain[i]}
	}
	return viz.MatrixCSV("policy", r.Policies,
		[]string{"avg_latency", "p99_source_latency", "max_latency", "jain"}, m)
}

// CSV exports the flit-level cross-validation table.
func (r *FlitCheckResult) CSV() string {
	m := make([][]float64, len(r.Policies))
	for i := range r.Policies {
		m[i] = []float64{r.AvgLatency[i], r.Normalized[i], float64(r.Delivered[i])}
	}
	return viz.MatrixCSV("policy", r.Policies,
		[]string{"avg_latency", "normalized", "packets"}, m)
}

// CSV exports the starvation comparison.
func (r *StarvationResult) CSV() string {
	m := make([][]float64, len(r.Policies))
	for i := range r.Policies {
		m[i] = []float64{
			float64(r.MaxQueuedLocalAge[i]), r.MaxDeliveredLatency[i], r.AvgDeliveredLatency[i],
		}
	}
	return viz.MatrixCSV("policy", r.Policies,
		[]string{"max_queued_local_age", "max_delivered_latency", "avg_latency"}, m)
}
