package experiments

import (
	"fmt"
	"sync"

	"mlnoc/internal/apu"
	"mlnoc/internal/obs"
	"mlnoc/internal/trace"
)

// Telemetry configures observability for the APU sweep experiments
// (ExecSweep, MixedWorkloads, Ablation). The zero value disables everything;
// a nil *Telemetry is valid everywhere one is accepted. One Telemetry may be
// shared by the parallel cells of a sweep: progress reporting is serialized
// and the registry is concurrency-safe.
type Telemetry struct {
	// Progress, if non-nil, is called after each completed sweep cell with
	// the number of finished cells, the sweep total and the cell label
	// ("workload/policy"). Calls are serialized across workers.
	Progress func(done, total int, label string)
	// Registry, if non-nil, receives one obs snapshot per sweep cell, keyed
	// by the cell label.
	Registry *obs.Registry
	// Watchdog, if non-nil, attaches a starvation/livelock watchdog to every
	// cell; alerts land in the cell's snapshot, and a cell that fails to
	// finish panics with the watchdog summary instead of a bare "did not
	// finish".
	Watchdog *obs.WatchdogConfig
	// SampleEvery is the collector sampling period in cycles (default 16; a
	// sweep samples coarsely to stay cheap).
	SampleEvery int64
	// Trace, if non-nil, attaches a per-message lifecycle tracer to every
	// cell; TraceSink receives each cell's tracer (serialized across
	// workers). Both must be set for tracing to run.
	Trace     *trace.Config
	TraceSink func(label string, t *trace.Tracer)

	mu   sync.Mutex
	done int
}

// suiteConfig returns the per-cell obs configuration, or nil when no
// telemetry collection is requested.
func (t *Telemetry) suiteConfig() *obs.SuiteConfig {
	if t == nil || (t.Registry == nil && t.Watchdog == nil) {
		return nil
	}
	every := t.SampleEvery
	if every <= 0 {
		every = 16
	}
	return &obs.SuiteConfig{SampleEvery: every, Watchdog: t.Watchdog}
}

// traceConfig returns the per-cell trace configuration, or nil when no trace
// sink is installed.
func (t *Telemetry) traceConfig() *trace.Config {
	if t == nil || t.Trace == nil || t.TraceSink == nil {
		return nil
	}
	cfg := *t.Trace
	return &cfg
}

// cellDone records one finished cell: snapshots it into the registry and
// reports progress.
func (t *Telemetry) cellDone(total int, label string, r apu.ExecResult) {
	if t == nil {
		return
	}
	if t.Registry != nil && r.Obs != nil {
		t.Registry.Record(label, r.Obs.Snapshot())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.TraceSink != nil && r.Trace != nil {
		t.TraceSink(label, r.Trace)
	}
	t.done++
	if t.Progress != nil {
		t.Progress(t.done, total, label)
	}
}

// cellSnapshot records one finished non-APU cell (e.g. a synthetic-traffic
// mesh run that attached its own obs suite) and reports progress; suite may
// be nil.
func (t *Telemetry) cellSnapshot(total int, label string, suite *obs.Suite) {
	if t == nil {
		return
	}
	if t.Registry != nil && suite != nil {
		t.Registry.Record(label, suite.Snapshot())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done++
	if t.Progress != nil {
		t.Progress(t.done, total, label)
	}
}

// cellFailure builds the panic message for a sweep cell that did not finish,
// appending the cell's watchdog diagnosis when telemetry is attached.
func cellFailure(label string, r apu.ExecResult) string {
	msg := fmt.Sprintf("experiments: %s did not finish after %d cycles", label, r.Cycles)
	if r.Obs != nil {
		snap := r.Obs.Snapshot()
		msg += fmt.Sprintf(" (%d messages in flight, max sampled head age %d)",
			snap.InFlight, snap.MaxHeadAge())
		if r.Obs.Watchdog != nil && r.Obs.Watchdog.Tripped() {
			msg += "\nwatchdog diagnostics:\n" + r.Obs.Watchdog.Summary()
		}
	}
	return msg
}
