package experiments

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestParallelForRunsAllCells checks the no-panic baseline: every cell runs
// exactly once.
func TestParallelForRunsAllCells(t *testing.T) {
	const n = 100
	var counts [n]int32
	parallelFor(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("cell %d ran %d times", i, c)
		}
	}
}

// TestParallelForRepanicsWithCell checks the worker-panic contract: a panic in
// one cell surfaces on the caller's goroutine as a *CellPanic carrying the
// failing cell's index, the original value and a stack trace, while every
// other cell still completes.
func TestParallelForRepanicsWithCell(t *testing.T) {
	const n, bad = 64, 17
	boom := errors.New("boom")
	var ran [n]int32

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic in a cell did not propagate to the caller")
		}
		cp, ok := r.(*CellPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want *CellPanic", r, r)
		}
		if cp.Cell != bad {
			t.Fatalf("panic attributed to cell %d, want %d", cp.Cell, bad)
		}
		if cp.Value != boom {
			t.Fatalf("panic value %v, want %v", cp.Value, boom)
		}
		if !strings.Contains(string(cp.Stack), "parallel_test.go") {
			t.Fatalf("stack does not point at the panicking cell:\n%s", cp.Stack)
		}
		if !strings.Contains(cp.Error(), "cell 17") || cp.String() != cp.Error() {
			t.Fatalf("CellPanic formatting broken: %q", cp.Error())
		}
		// The pool kept going: every non-panicking cell still ran.
		for i := int32(0); i < n; i++ {
			if i != bad && atomic.LoadInt32(&ran[i]) != 1 {
				t.Fatalf("cell %d did not run after cell %d panicked", i, bad)
			}
		}
	}()
	parallelFor(n, func(i int) {
		if i == bad {
			panic(boom)
		}
		atomic.AddInt32(&ran[i], 1)
	})
	t.Fatal("parallelFor returned instead of re-panicking")
}

// TestParallelForFirstPanicWins checks that with several panicking cells
// exactly one CellPanic is reported and it matches one of the panic sites.
func TestParallelForFirstPanicWins(t *testing.T) {
	defer func() {
		cp, ok := recover().(*CellPanic)
		if !ok {
			t.Fatal("no *CellPanic recovered")
		}
		if cp.Cell%3 != 0 {
			t.Fatalf("reported cell %d never panicked", cp.Cell)
		}
		if cp.Value != "bad cell" {
			t.Fatalf("panic value %v", cp.Value)
		}
	}()
	parallelFor(30, func(i int) {
		if i%3 == 0 {
			panic("bad cell")
		}
	})
	t.Fatal("parallelFor returned instead of re-panicking")
}

// TestParallelForSerialPathPanics covers the workers<=1 serial path (n == 1
// forces it regardless of GOMAXPROCS).
func TestParallelForSerialPathPanics(t *testing.T) {
	defer func() {
		cp, ok := recover().(*CellPanic)
		if !ok {
			t.Fatal("serial path did not re-panic a *CellPanic")
		}
		if cp.Cell != 0 {
			t.Fatalf("cell = %d, want 0", cp.Cell)
		}
	}()
	parallelFor(1, func(i int) { panic("serial") })
	t.Fatal("parallelFor returned instead of re-panicking")
}

// TestParallelForZeroCells checks the degenerate sweep.
func TestParallelForZeroCells(t *testing.T) {
	called := false
	parallelFor(0, func(int) { called = true })
	if called {
		t.Fatal("cell function called for n=0")
	}
}

// TestParallelForCtxCancelStopsDispatch checks the cooperative-cancellation
// contract: once the context is cancelled mid-sweep, no new cells are
// dispatched (cells in flight finish), and the call reports ctx.Err().
func TestParallelForCtxCancelStopsDispatch(t *testing.T) {
	const n = 1000
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := parallelForCtx(ctx, n, func(i int) {
		if atomic.AddInt32(&ran, 1) == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// At most the cells already claimed by the worker pool when cancel landed
	// can still run: that is bounded by the worker count, far below n.
	if got := atomic.LoadInt32(&ran); int(got) >= n {
		t.Fatalf("cancellation did not stop dispatch: %d/%d cells ran", got, n)
	}
}

// TestParallelForCtxSerialCancel covers the workers<=1 serial path, where
// cancellation is checked before every cell: exactly the cells before the
// cancel run.
func TestParallelForCtxSerialCancel(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := parallelForCtx(ctx, 1000, func(i int) {
		ran++
		if ran == 2 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 2 {
		t.Fatalf("ran %d cells after serial cancel, want 2", ran)
	}
}

// TestParallelForCtxUncancelled checks the nil-error baseline and that every
// cell runs exactly once under a live context.
func TestParallelForCtxUncancelled(t *testing.T) {
	const n = 64
	var counts [n]int32
	if err := parallelForCtx(context.Background(), n, func(i int) {
		atomic.AddInt32(&counts[i], 1)
	}); err != nil {
		t.Fatalf("err = %v", err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("cell %d ran %d times", i, c)
		}
	}
}

// TestParallelForCtxPanicBeatsCancel checks a cell panic is still re-raised
// as *CellPanic even when the sweep is also cancelled.
func TestParallelForCtxPanicBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer func() {
		if _, ok := recover().(*CellPanic); !ok {
			t.Fatal("panic during a cancelled sweep was not re-raised as *CellPanic")
		}
	}()
	_ = parallelForCtx(ctx, 8, func(i int) {
		cancel()
		panic("boom")
	})
	t.Fatal("parallelForCtx returned instead of re-panicking")
}

// TestParallelForConcurrentCells checks cells genuinely overlap when workers
// are available, so a sweep actually uses the pool (guards against a silent
// regression to serial execution): the first batch of cells all block until
// every expected worker has arrived, which only terminates if they truly run
// concurrently.
func TestParallelForConcurrentCells(t *testing.T) {
	expected := runtime.GOMAXPROCS(0)
	const n = 4
	if expected > n {
		expected = n
	}
	if expected < 2 {
		t.Skip("needs >= 2 CPUs")
	}
	var mu sync.Mutex
	arrived := 0
	release := make(chan struct{})
	parallelFor(n, func(i int) {
		mu.Lock()
		arrived++
		if arrived == expected {
			close(release)
		}
		mu.Unlock()
		<-release
	})
}
