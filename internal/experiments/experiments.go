// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a pure function from a Scale (how much
// simulation/training effort to spend) to a typed result with a Render
// method; the cmd/experiments binary, the repository benchmarks and the
// integration tests all call these functions, so the numbers they print come
// from one implementation.
//
// Absolute numbers depend on the simulator substrate (see DESIGN.md); the
// experiments reproduce the paper's *shape*: policy orderings, approximate
// factors, and crossovers.
package experiments

import (
	"math/rand"

	"mlnoc/internal/arb"
	"mlnoc/internal/core"
	"mlnoc/internal/noc"
)

// Scale controls how much work the experiments perform. The paper's results
// come from industrial-length simulations; these presets trade precision for
// turnaround while preserving result shape.
type Scale struct {
	// TrainCycles is the number of cycles RL agents are trained for.
	TrainCycles int64
	// WarmupCycles and MeasureCycles bound synthetic-traffic measurements.
	WarmupCycles, MeasureCycles int64
	// OpScale multiplies workload op counts in APU runs.
	OpScale float64
	// Epochs and EpochCycles shape training curves (Figs. 12-13).
	Epochs      int
	EpochCycles int64
	// Seed drives all randomness.
	Seed int64
}

// Quick returns a scale suitable for benchmarks and CI: minutes, not hours.
func Quick() Scale {
	return Scale{
		TrainCycles:   50_000,
		WarmupCycles:  1_000,
		MeasureCycles: 4_000,
		OpScale:       0.25,
		Epochs:        16,
		EpochCycles:   1_000,
		Seed:          1,
	}
}

// Full returns a scale closer to the paper's simulation lengths.
func Full() Scale {
	return Scale{
		TrainCycles:   150_000,
		WarmupCycles:  3_000,
		MeasureCycles: 20_000,
		OpScale:       1.0,
		Epochs:        51,
		EpochCycles:   2_000,
		Seed:          1,
	}
}

// PolicyFactory creates a fresh policy instance; stateful policies (pointer
// state, RNGs) must not be shared across runs.
type PolicyFactory struct {
	Name string
	New  func(seed int64) noc.Policy
}

// ClassicFactories returns the paper's practical baseline policies in the
// Fig. 9 legend order: Round-robin, iSLIP, FIFO, ProbDist.
func ClassicFactories() []PolicyFactory {
	return []PolicyFactory{
		{Name: "Round-robin", New: func(int64) noc.Policy { return arb.NewRoundRobin() }},
		{Name: "iSLIP", New: func(int64) noc.Policy { return arb.NewISLIP(2) }},
		{Name: "FIFO", New: func(int64) noc.Policy { return arb.NewFIFO() }},
		{Name: "ProbDist", New: func(seed int64) noc.Policy {
			return arb.NewProbDist(rand.New(rand.NewSource(seed)))
		}},
	}
}

// apuFactories returns the full Fig. 9 policy list. nn may be nil, in which
// case the NN column is omitted.
func apuFactories(nnAgent *core.Agent) []PolicyFactory {
	fs := ClassicFactories()
	fs = append(fs, PolicyFactory{
		Name: "RL-inspired",
		New:  func(int64) noc.Policy { return core.NewRLInspiredAPU() },
	})
	if nnAgent != nil {
		spec := nnAgent.Spec
		frozen := nnAgent.Net()
		fs = append(fs, PolicyFactory{
			Name: "NN",
			// Each run gets its own clone: the MLP's scratch buffers and the
			// agent's RNG are not safe to share across concurrent runs.
			New: func(seed int64) noc.Policy {
				return core.NewAgentWithNet(spec, frozen.Clone(), seed)
			},
		})
	}
	fs = append(fs, PolicyFactory{
		Name: "Global-age",
		New:  func(int64) noc.Policy { return arb.NewGlobalAge() },
	})
	return fs
}

// newSeededRNG returns a deterministic RNG for the given seed.
func newSeededRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
