package experiments

import (
	"fmt"
	"strings"

	"mlnoc/internal/arb"
	"mlnoc/internal/core"
	"mlnoc/internal/noc"
	"mlnoc/internal/traffic"
	"mlnoc/internal/viz"
)

// BufferAblationResult quantifies the DESIGN.md decision that shallow VC
// buffers create the paper's regime: the FIFO-vs-global-age latency gap as a
// function of per-VC buffer capacity. With deep buffers, message-level
// arbitration quality stops mattering (mean latency is fixed by throughput
// and backlog); with one- or two-message buffers, head-of-line blocking makes
// throughput policy-dependent and the gap opens.
type BufferAblationResult struct {
	Caps []int
	// FIFOOverGA[i] is FIFO's average latency divided by global-age's at
	// Caps[i].
	FIFOOverGA []float64
	FIFOAvg    []float64
	GAAvg      []float64
}

// BufferAblation sweeps buffer capacity on the 8x8 mesh at the Fig. 5 rate.
func BufferAblation(sc Scale) *BufferAblationResult {
	res := &BufferAblationResult{Caps: []int{1, 2, 4, 8}}
	for _, cap := range res.Caps {
		run := func(p noc.Policy) float64 {
			net, cores := noc.BuildMeshCores(noc.Config{
				Width: 8, Height: 8, VCs: 3, BufferCap: cap,
			})
			net.SetPolicy(p)
			in := traffic.NewInjector(cores, traffic.UniformRandom{}, MeshRate(8),
				newSeededRNG(sc.Seed+21))
			in.Classes = 3
			return traffic.Run(net, in, sc.WarmupCycles, sc.MeasureCycles).AvgLatency
		}
		fifo := run(arb.NewFIFO())
		ga := run(arb.NewGlobalAge())
		res.FIFOAvg = append(res.FIFOAvg, fifo)
		res.GAAvg = append(res.GAAvg, ga)
		res.FIFOOverGA = append(res.FIFOOverGA, fifo/ga)
	}
	return res
}

// Render formats the sweep.
func (r *BufferAblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Design ablation: VC buffer capacity vs policy sensitivity (8x8 mesh)\n")
	rows := make([][]string, len(r.Caps))
	for i := range r.Caps {
		rows[i] = []string{
			fmt.Sprintf("%d", r.Caps[i]),
			fmt.Sprintf("%.1f", r.FIFOAvg[i]),
			fmt.Sprintf("%.1f", r.GAAvg[i]),
			fmt.Sprintf("%.3f", r.FIFOOverGA[i]),
		}
	}
	b.WriteString(viz.Table(
		[]string{"buffer cap (msgs)", "FIFO avg", "Global-age avg", "FIFO/GA"}, rows))
	b.WriteString("Shallow buffers create the contention regime where arbitration separates policies.\n")
	return b.String()
}

// TieBreakAblationResult quantifies the rotating select-max tie-break
// (DESIGN.md): under hotspot congestion, Algorithm 2 with a fixed tie-break
// starves tied saturated-age messages, while the rotating scan bounds
// waiting.
type TieBreakAblationResult struct {
	// MaxAgeFixed and MaxAgeRotating are the largest local ages among queued
	// messages when injection stops.
	MaxAgeFixed, MaxAgeRotating int64
	AvgFixed, AvgRotating       float64
}

// fixedTieBreakAPU wraps the Algorithm 2 priority with a non-rotating
// (first-max) select, isolating the tie-break as the only difference.
type fixedTieBreakAPU struct{ p *core.RLInspiredAPU }

func (f fixedTieBreakAPU) Name() string { return "rl-inspired(fixed-tiebreak)" }

func (f fixedTieBreakAPU) Select(ctx *noc.ArbContext, cands []noc.Candidate) int {
	best, bestP := 0, f.p.Priority(ctx.Cycle, cands[0].Port, cands[0].Msg)
	for i, c := range cands[1:] {
		if p := f.p.Priority(ctx.Cycle, c.Port, c.Msg); p > bestP {
			best, bestP = i+1, p
		}
	}
	return best
}

// TieBreakAblation compares fixed and rotating tie-breaks under saturated
// hotspot traffic, where 5-bit priorities tie constantly.
func TieBreakAblation(sc Scale) *TieBreakAblationResult {
	run := func(p noc.Policy) (int64, float64) {
		net, cores := noc.BuildMeshCores(noc.Config{Width: 4, Height: 4, VCs: 3})
		net.SetPolicy(p)
		in := traffic.NewInjector(cores, traffic.Hotspot{
			Spots: []int{5, 6}, Fraction: 0.5,
		}, 0.3, newSeededRNG(sc.Seed+23))
		in.Classes = 3
		cycles := sc.MeasureCycles
		if cycles <= 0 {
			cycles = 4000
		}
		for i := int64(0); i < cycles; i++ {
			in.Tick()
			net.Step()
		}
		return MaxQueuedLocalAge(net), net.Stats().Latency.Mean()
	}
	res := &TieBreakAblationResult{}
	res.MaxAgeFixed, res.AvgFixed = run(fixedTieBreakAPU{p: core.NewRLInspiredAPU()})
	res.MaxAgeRotating, res.AvgRotating = run(core.NewRLInspiredAPU())
	return res
}

// Render formats the comparison.
func (r *TieBreakAblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Design ablation: select-max tie-break under saturated hotspot traffic\n")
	rows := [][]string{
		{"fixed (first max)", fmt.Sprintf("%d", r.MaxAgeFixed), fmt.Sprintf("%.1f", r.AvgFixed)},
		{"rotating scan", fmt.Sprintf("%d", r.MaxAgeRotating), fmt.Sprintf("%.1f", r.AvgRotating)},
	}
	b.WriteString(viz.Table([]string{"tie-break", "max queued local age", "avg latency"}, rows))
	b.WriteString("With 5-bit priorities, saturated ages tie; a fixed tie-break starves the loser.\n")
	return b.String()
}
