package experiments

import (
	"fmt"
	"strings"

	"mlnoc/internal/synth"
	"mlnoc/internal/viz"
)

// Table3Result holds the hardware-cost reports for the three Table 3 designs.
type Table3Result struct {
	Reports []synth.Report
}

// Table3 evaluates the gate-level cost model for the agent NN engine, the
// round-robin arbiter and the proposed arbiter in a 6-port, 7-VC router at
// the 32nm-class node.
func Table3() *Table3Result {
	return &Table3Result{Reports: synth.Table3()}
}

// Render formats the reports as the paper's Table 3.
func (r *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 3: synthesis results (gate-level cost model, 32nm-class)\n")
	rows := make([][]string, len(r.Reports))
	for i, rep := range r.Reports {
		rows[i] = []string{
			rep.Name,
			fmt.Sprintf("%.2f", rep.LatencyNS),
			fmt.Sprintf("%.4f", rep.AreaMM2),
			fmt.Sprintf("%.2f", rep.PowerMW),
			fmt.Sprintf("%d", rep.Gates),
		}
	}
	b.WriteString(viz.Table(
		[]string{"design", "latency (ns)", "area (mm2)", "power (mW)", "NAND2-eq gates"}, rows))
	nn, rr, prop := r.Reports[0], r.Reports[1], r.Reports[2]
	fmt.Fprintf(&b, "NN vs proposed: %.1fx latency, %.0fx area, %.0fx power\n",
		nn.LatencyNS/prop.LatencyNS, nn.AreaMM2/prop.AreaMM2, nn.PowerMW/prop.PowerMW)
	fmt.Fprintf(&b, "proposed vs round-robin: %.1fx latency, %.1fx area, %.1fx power\n",
		prop.LatencyNS/rr.LatencyNS, prop.AreaMM2/rr.AreaMM2, prop.PowerMW/rr.PowerMW)
	return b.String()
}
