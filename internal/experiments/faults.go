package experiments

import (
	"context"
	"fmt"
	"strings"

	"mlnoc/internal/apu"
	"mlnoc/internal/arb"
	"mlnoc/internal/core"
	"mlnoc/internal/fault"
	"mlnoc/internal/noc"
	"mlnoc/internal/obs"
	"mlnoc/internal/stats"
	"mlnoc/internal/synfull"
	"mlnoc/internal/traffic"
	"mlnoc/internal/viz"
)

// DefaultFaultRates are the link-kill fractions swept by the faults
// experiment: healthy baseline plus the 5-15% degradation band.
var DefaultFaultRates = []float64{0, 0.05, 0.10, 0.15}

// FaultSweepResult holds the policy-robustness study: for each fault rate
// (fraction of undirected mesh links killed mid-run, connectivity-preserving)
// and each arbitration policy, performance on the 8x8 synthetic-traffic mesh
// and on the APU running bfs. The question it answers: does the RL-inspired
// policy's healthy-network win survive when the network degrades?
type FaultSweepResult struct {
	Rates []float64

	// Mesh part: 8x8 uniform-random traffic at the Section 3.2 rate.
	MeshPolicies []string
	// MeshLatency[r][p] is average message latency in cycles; MeshNorm is
	// normalized to the Global-age column of the same rate row.
	MeshLatency, MeshNorm [][]float64
	// MeshKilled[r] is the number of undirected links killed at rate r (the
	// same physical kill set for every policy in the row).
	MeshKilled []int64
	// MeshReroutes[r][p] counts grants routed around damage.
	MeshReroutes [][]int64
	// MeshUnreachable[r][p] counts unreachable-verdict evictions (zero as
	// long as the kill sets preserve connectivity).
	MeshUnreachable [][]int64

	// APU part: bfs in all four quadrants.
	APUPolicies []string
	// APUAvg[r][p] is average program execution time in cycles; APUNorm is
	// normalized to the Global-age column of the same rate row.
	APUAvg, APUNorm [][]float64
	// APUReroutes[r][p] counts grants routed around damage.
	APUReroutes [][]int64
}

// meshFaultFactories returns the policies compared on the degraded mesh.
func meshFaultFactories() []PolicyFactory {
	return []PolicyFactory{
		{Name: "Round-robin", New: func(int64) noc.Policy { return arb.NewRoundRobin() }},
		{Name: "iSLIP", New: func(int64) noc.Policy { return arb.NewISLIP(2) }},
		{Name: "FIFO", New: func(int64) noc.Policy { return arb.NewFIFO() }},
		{Name: "RL-inspired", New: func(int64) noc.Policy { return core.NewRLInspiredMesh8x8() }},
		{Name: "Global-age", New: func(int64) noc.Policy { return arb.NewGlobalAge() }},
	}
}

// FaultSweep runs the faults experiment at the default rates.
func FaultSweep(sc Scale, tel *Telemetry) *FaultSweepResult {
	return FaultSweepRates(sc, tel, DefaultFaultRates)
}

// FaultSweepRates is FaultSweep over an explicit rate list. Every cell is
// seeded from sc.Seed and the per-rate kill seed is shared across policies,
// so each policy faces the identical physical fault scenario and the whole
// sweep is reproducible run to run.
func FaultSweepRates(sc Scale, tel *Telemetry, rates []float64) *FaultSweepResult {
	r, _ := FaultSweepRatesCtx(context.Background(), sc, tel, rates)
	return r
}

// FaultSweepRatesCtx is FaultSweepRates with cooperative cancellation checked
// between sweep cells; see ExecSweepCtx.
func FaultSweepRatesCtx(ctx context.Context, sc Scale, tel *Telemetry, rates []float64) (*FaultSweepResult, error) {
	res := &FaultSweepResult{Rates: append([]float64(nil), rates...)}

	meshFs := meshFaultFactories()
	for _, f := range meshFs {
		res.MeshPolicies = append(res.MeshPolicies, f.Name)
	}
	apuFs := apuFactories(nil)
	for _, f := range apuFs {
		res.APUPolicies = append(res.APUPolicies, f.Name)
	}
	nr := len(rates)
	res.MeshLatency = makeMatrix(nr, len(meshFs))
	res.MeshKilled = make([]int64, nr)
	res.MeshReroutes = makeIntMatrix(nr, len(meshFs))
	res.MeshUnreachable = makeIntMatrix(nr, len(meshFs))
	res.APUAvg = makeMatrix(nr, len(apuFs))
	res.APUReroutes = makeIntMatrix(nr, len(apuFs))

	meshGA := len(meshFs) - 1 // Global-age is last in both lists
	apuGA := len(apuFs) - 1

	bfs, err := synfull.ByName("bfs")
	if err != nil {
		panic(err)
	}

	meshTotal := nr * len(meshFs)
	apuTotal := nr * len(apuFs)
	total := meshTotal + apuTotal
	// Mid-run fault times: a third into the mesh measurement window, and
	// roughly a third into the APU programs (whose length tracks OpScale).
	meshKillAt := sc.WarmupCycles + sc.MeasureCycles/3
	apuKillAt := int64(8000 * sc.OpScale)
	if apuKillAt < 1 {
		apuKillAt = 1
	}

	err = parallelForCtx(ctx, meshTotal, func(k int) {
		ri, pi := k/len(meshFs), k%len(meshFs)
		f := meshFs[pi]
		label := fmt.Sprintf("faults-mesh-%.0f%%/%s", 100*rates[ri], f.Name)
		spec := fault.Spec{
			KillFraction: rates[ri],
			KillAt:       meshKillAt,
			Seed:         sc.Seed + int64(ri+1)*1009, // same kill set per rate row
		}
		net, cores := noc.BuildMeshCores(noc.Config{Width: 8, Height: 8, VCs: 3, BufferCap: 8})
		net.SetPolicy(f.New(sc.Seed + int64(pi)))
		inj, err := spec.Equip(net)
		if err != nil {
			panic(fmt.Sprintf("experiments: %s: %v", label, err))
		}
		var suite *obs.Suite
		if cfg := tel.suiteConfig(); cfg != nil {
			suite = obs.Attach(net, *cfg)
		}
		in := traffic.NewInjector(cores, traffic.UniformRandom{}, MeshRate(8),
			newSeededRNG(sc.Seed+int64(ri*len(meshFs)+pi)*17))
		run := traffic.Run(net, in, sc.WarmupCycles, sc.MeasureCycles)
		fs := inj.Stats()
		res.MeshLatency[ri][pi] = run.AvgLatency
		res.MeshReroutes[ri][pi] = fs.Reroutes
		res.MeshUnreachable[ri][pi] = fs.Unreachable
		if pi == meshGA {
			res.MeshKilled[ri] = fs.LinkKills
		}
		tel.cellSnapshot(total, label, suite)
	})
	if err != nil {
		return nil, err
	}

	err = parallelForCtx(ctx, apuTotal, func(k int) {
		ri, pi := k/len(apuFs), k%len(apuFs)
		f := apuFs[pi]
		label := fmt.Sprintf("faults-apu-%.0f%%/%s", 100*rates[ri], f.Name)
		spec := fault.Spec{
			KillFraction: rates[ri],
			KillAt:       apuKillAt,
			Seed:         sc.Seed + int64(ri+1)*1009,
		}
		seed := sc.Seed + int64(ri+1)*271
		r := apu.RunWorkload(apu.Config{}, f.New(seed+int64(pi)), apu.Homogeneous(bfs),
			apu.RunnerConfig{
				OpScale: sc.OpScale,
				Seed:    seed,
				Obs:     tel.suiteConfig(),
				Trace:   tel.traceConfig(),
				Faults:  &spec,
			})
		if !r.Finished {
			panic(cellFailure(label, r))
		}
		res.APUAvg[ri][pi] = r.Avg
		if r.Faults != nil {
			res.APUReroutes[ri][pi] = r.Faults.Reroutes
		}
		tel.cellDone(total, label, r)
	})
	if err != nil {
		return nil, err
	}

	for ri := range rates {
		res.MeshNorm = append(res.MeshNorm, stats.Normalize(res.MeshLatency[ri], meshGA))
		res.APUNorm = append(res.APUNorm, stats.Normalize(res.APUAvg[ri], apuGA))
	}
	return res, nil
}

func makeMatrix(rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
	}
	return m
}

func makeIntMatrix(rows, cols int) [][]int64 {
	m := make([][]int64, rows)
	for i := range m {
		m[i] = make([]int64, cols)
	}
	return m
}

// rateLabels formats the fault rates as row labels.
func (r *FaultSweepResult) rateLabels() []string {
	out := make([]string, len(r.Rates))
	for i, v := range r.Rates {
		out[i] = fmt.Sprintf("%.0f%%", 100*v)
	}
	return out
}

// Render formats both parts of the study with a per-rate fault summary.
func (r *FaultSweepResult) Render() string {
	var b strings.Builder
	b.WriteString(renderMatrix(
		"Fault sweep (8x8 mesh, uniform random): avg latency normalized to Global-age per rate",
		"links killed", r.rateLabels(), r.MeshPolicies, r.MeshNorm, nil))
	b.WriteString(renderMatrix(
		"Fault sweep (APU, bfs x4): avg execution time normalized to Global-age per rate",
		"links killed", r.rateLabels(), r.APUPolicies, r.APUNorm, nil))
	b.WriteString("fault summary per rate (Global-age column):\n")
	for ri := range r.Rates {
		ga := len(r.MeshPolicies) - 1
		fmt.Fprintf(&b, "  %4s: %2d links killed, mesh reroutes %d, unreachable %d, apu reroutes %d\n",
			r.rateLabels()[ri], r.MeshKilled[ri],
			r.MeshReroutes[ri][ga], r.MeshUnreachable[ri][ga],
			r.APUReroutes[ri][len(r.APUPolicies)-1])
	}
	return b.String()
}

// CSVMesh exports the mesh part (normalized latency).
func (r *FaultSweepResult) CSVMesh() string {
	return viz.MatrixCSV("fault_rate", r.rateLabels(), r.MeshPolicies, r.MeshNorm)
}

// CSVAPU exports the APU part (normalized execution time).
func (r *FaultSweepResult) CSVAPU() string {
	return viz.MatrixCSV("fault_rate", r.rateLabels(), r.APUPolicies, r.APUNorm)
}

// CSV exports both parts, mesh first.
func (r *FaultSweepResult) CSV() string {
	return r.CSVMesh() + r.CSVAPU()
}
