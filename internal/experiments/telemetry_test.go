package experiments

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"mlnoc/internal/apu"
	"mlnoc/internal/noc"
	"mlnoc/internal/obs"
	"mlnoc/internal/synfull"
)

// TestTelemetryParallelSweep drives a miniature parallel sweep with the full
// telemetry stack attached — shared registry, watchdog per cell, serialized
// progress callback — and checks everything lands. Run with -race this is the
// concurrency test for the obs registry under parallelFor.
func TestTelemetryParallelSweep(t *testing.T) {
	model := synfull.Catalog()[0]
	const cells = 8

	var mu sync.Mutex
	var progress []string
	tel := &Telemetry{
		Progress: func(done, total int, label string) {
			mu.Lock()
			defer mu.Unlock()
			progress = append(progress, fmt.Sprintf("%d/%d %s", done, total, label))
		},
		Registry:    obs.NewRegistry(),
		Watchdog:    &obs.WatchdogConfig{MaxHeadAge: 1 << 20, LivelockWindow: 1 << 20},
		SampleEvery: 8,
	}

	parallelFor(cells, func(i int) {
		label := fmt.Sprintf("cell-%d/%s", i, model.Name)
		r := apu.RunWorkload(apu.Config{}, firstPolicyT{},
			apu.Homogeneous(model),
			apu.RunnerConfig{OpScale: 0.02, Seed: int64(i + 1), Obs: tel.suiteConfig()})
		if !r.Finished {
			panic(cellFailure(label, r))
		}
		tel.cellDone(cells, label, r)
	})

	if got := tel.Registry.Len(); got != cells {
		t.Fatalf("registry has %d snapshots, want %d", got, cells)
	}
	for _, name := range tel.Registry.Names() {
		snap := tel.Registry.Get(name)
		if snap == nil {
			t.Fatalf("registry lost %q", name)
		}
		if snap.Delivered == 0 || snap.TotalGrants() == 0 {
			t.Fatalf("cell %q recorded no traffic: %+v", name, *snap)
		}
		if len(snap.Alerts) != 0 {
			t.Fatalf("cell %q tripped the watchdog: %v", name, snap.Alerts)
		}
	}
	// Progress was serialized: done counted 1..cells exactly once each.
	if len(progress) != cells {
		t.Fatalf("progress fired %d times, want %d", len(progress), cells)
	}
	for i, line := range progress {
		if !strings.HasPrefix(line, fmt.Sprintf("%d/%d ", i+1, cells)) {
			t.Fatalf("progress line %d = %q; done counter not serialized", i, line)
		}
	}
}

// firstPolicyT is the trivial arbitration rule for telemetry tests.
type firstPolicyT struct{}

func (firstPolicyT) Name() string                                    { return "first" }
func (firstPolicyT) Select(_ *noc.ArbContext, _ []noc.Candidate) int { return 0 }

// TestTelemetryNilSafe checks a nil *Telemetry and an empty Telemetry both
// disable collection without blowing up.
func TestTelemetryNilSafe(t *testing.T) {
	var nilTel *Telemetry
	if nilTel.suiteConfig() != nil {
		t.Fatal("nil telemetry produced a suite config")
	}
	nilTel.cellDone(1, "x", apu.ExecResult{})

	empty := &Telemetry{}
	if empty.suiteConfig() != nil {
		t.Fatal("empty telemetry produced a suite config")
	}
	empty.cellDone(1, "x", apu.ExecResult{})

	// Watchdog-only telemetry still attaches a suite (for failure diagnosis).
	wdOnly := &Telemetry{Watchdog: &obs.WatchdogConfig{MaxHeadAge: 100}}
	cfg := wdOnly.suiteConfig()
	if cfg == nil || cfg.Watchdog == nil || cfg.SampleEvery != 16 {
		t.Fatalf("watchdog-only suite config = %+v", cfg)
	}
}

// TestCellFailureDiagnostics checks the did-not-finish panic text includes the
// watchdog's diagnosis when telemetry is attached.
func TestCellFailureDiagnostics(t *testing.T) {
	bare := cellFailure("w/p", apu.ExecResult{Cycles: 42})
	if !strings.Contains(bare, "w/p did not finish after 42 cycles") {
		t.Fatalf("bare failure text: %q", bare)
	}
	if strings.Contains(bare, "watchdog") {
		t.Fatalf("bare failure mentions a watchdog it does not have: %q", bare)
	}

	// Freeze a network mid-flight so the attached watchdog trips, then check
	// its summary surfaces in the failure text.
	net, cores := noc.BuildMeshCores(noc.Config{Width: 2, Height: 1, VCs: 1})
	net.SetPolicy(noMatch{})
	suite := obs.Attach(net, obs.SuiteConfig{
		SampleEvery: 1,
		Watchdog:    &obs.WatchdogConfig{LivelockWindow: 20, CheckEvery: 10},
	})
	cores[0].Inject(&noc.Message{ID: 1, Dst: cores[1].ID, SizeFlits: 1})
	net.Run(200)

	msg := cellFailure("w/p", apu.ExecResult{Cycles: net.Cycle(), Obs: suite})
	if !strings.Contains(msg, "in flight") {
		t.Fatalf("failure text missing in-flight count: %q", msg)
	}
	if !strings.Contains(msg, "watchdog diagnostics") || !strings.Contains(msg, "livelock") {
		t.Fatalf("failure text missing watchdog diagnosis: %q", msg)
	}
}

// noMatch denies every grant, freezing traffic in place.
type noMatch struct{}

func (noMatch) Name() string                                    { return "nomatch" }
func (noMatch) Select(_ *noc.ArbContext, _ []noc.Candidate) int { return 0 }
func (noMatch) Match(_ *noc.MatchContext, reqs []noc.Request) []int {
	out := make([]int, len(reqs))
	for i := range out {
		out[i] = -1
	}
	return out
}

// TestAblationTelemetry runs the real ablation sweep with telemetry attached
// and checks one snapshot lands per cell with the documented labels.
func TestAblationTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tel := &Telemetry{Registry: obs.NewRegistry()}
	r := AblationT(tinyScale(), tel)
	want := len(r.Workloads) * len(r.Variants)
	if got := tel.Registry.Len(); got != want {
		t.Fatalf("registry has %d snapshots, want %d", got, want)
	}
	for _, name := range tel.Registry.Names() {
		if !strings.HasPrefix(name, "ablation-") {
			t.Fatalf("unexpected registry label %q", name)
		}
		if tel.Registry.Get(name).Delivered == 0 {
			t.Fatalf("cell %q recorded no deliveries", name)
		}
	}
}
