package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"mlnoc/internal/arb"
	"mlnoc/internal/core"
	"mlnoc/internal/noc"
	"mlnoc/internal/stats"
	"mlnoc/internal/traffic"
	"mlnoc/internal/viz"
)

// FairnessResult is the extended equality-of-service study (Section 5.2's
// observation that the RL-inspired policy "provides better fairness"): per
// policy, average and maximum latency plus Jain's fairness index over
// per-source mean latencies on an 8x8 mesh near saturation.
type FairnessResult struct {
	Policies []string
	Avg      []float64
	P99      []float64
	Max      []float64
	Jain     []float64
}

// Fairness runs the equality-of-service comparison. Beyond the paper's
// Fig. 9 policies it includes the related-work arbiters implemented as
// extensions (wavefront, ping-pong, slack-aware).
func Fairness(sc Scale) *FairnessResult {
	policies := []struct {
		name string
		mk   func(seed int64) noc.Policy
	}{
		{"round-robin", func(int64) noc.Policy { return arb.NewRoundRobin() }},
		{"islip", func(int64) noc.Policy { return arb.NewISLIP(2) }},
		{"wavefront", func(int64) noc.Policy { return arb.NewWavefront() }},
		{"ping-pong", func(int64) noc.Policy { return arb.NewPingPong() }},
		{"fifo", func(int64) noc.Policy { return arb.NewFIFO() }},
		{"slack-aware", func(int64) noc.Policy { return arb.NewSlackAware() }},
		{"probdist", func(seed int64) noc.Policy {
			return arb.NewProbDist(rand.New(rand.NewSource(seed)))
		}},
		{"rl-inspired", func(int64) noc.Policy { return core.NewRLInspiredMesh8x8() }},
		{"global-age", func(int64) noc.Policy { return arb.NewGlobalAge() }},
	}
	res := &FairnessResult{}
	for _, pp := range policies {
		net, cores := noc.BuildMeshCores(noc.Config{
			Width: 8, Height: 8, VCs: 3, BufferCap: 1,
		})
		net.SetPolicy(pp.mk(sc.Seed + 3))
		in := traffic.NewInjector(cores, traffic.UniformRandom{}, MeshRate(8),
			newSeededRNG(sc.Seed+4))
		in.Classes = 3
		traffic.Run(net, in, sc.WarmupCycles, sc.MeasureCycles)
		st := net.Stats()
		res.Policies = append(res.Policies, pp.name)
		res.Avg = append(res.Avg, st.Latency.Mean())
		res.P99 = append(res.P99, stats.Percentile(st.SourceMeanLatencies(), 99))
		res.Max = append(res.Max, st.Latency.Max())
		res.Jain = append(res.Jain, st.FairnessIndex())
	}
	return res
}

// Render formats the fairness table.
func (r *FairnessResult) Render() string {
	var b strings.Builder
	b.WriteString("Equality of service (8x8 mesh, uniform random near saturation):\n")
	rows := make([][]string, len(r.Policies))
	for i := range r.Policies {
		rows[i] = []string{
			r.Policies[i],
			fmt.Sprintf("%.1f", r.Avg[i]),
			fmt.Sprintf("%.1f", r.P99[i]),
			fmt.Sprintf("%.0f", r.Max[i]),
			fmt.Sprintf("%.4f", r.Jain[i]),
		}
	}
	b.WriteString(viz.Table(
		[]string{"policy", "avg latency", "p99 source latency", "max latency", "Jain index"},
		rows))
	b.WriteString("Jain index of 1.0 = every source sees the same mean latency.\n")
	return b.String()
}
