package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"mlnoc/internal/core"
	"mlnoc/internal/flit"
	"mlnoc/internal/noc"
	"mlnoc/internal/viz"
)

// FlitCheckResult is the flit-level cross-validation of the Fig. 5 policy
// ordering: the same uniform-random experiment run on the flit-granularity
// wormhole/VC engine (Garnet's granularity, see internal/flit).
type FlitCheckResult struct {
	Policies   []string
	AvgLatency []float64
	Normalized []float64 // to global-age
	Delivered  []int64
}

// FlitCheck runs round-robin, FIFO, the RL-inspired priority and global-age
// on the 8x8 flit-level mesh under identical traffic and reports average
// packet latency.
func FlitCheck(sc Scale) *FlitCheckResult {
	arbs := []struct {
		name string
		mk   func() flit.Arbiter
	}{
		{"Round-robin", func() flit.Arbiter { return flit.NewRoundRobin(3) }},
		{"FIFO", func() flit.Arbiter { return flit.FIFO{} }},
		{"RL-inspired", func() flit.Arbiter { return flit.NewRLInspired(core.NewRLInspiredMesh8x8()) }},
		{"Global-age", func() flit.Arbiter { return flit.GlobalAge{} }},
	}
	cycles := sc.MeasureCycles * 3
	if cycles < 6000 {
		cycles = 6000
	}
	res := &FlitCheckResult{}
	for _, a := range arbs {
		e := flit.New(flit.Config{Width: 8, Height: 8, VCs: 3}, a.mk())
		rng := rand.New(rand.NewSource(sc.Seed + 11))
		const msgRate = 0.35 / 2.2 // ~0.35 flits/node/cycle offered
		for i := int64(0); i < cycles; i++ {
			for nd := 0; nd < e.NumNodes(); nd++ {
				if rng.Float64() >= msgRate {
					continue
				}
				size := 1
				if rng.Float64() < 0.3 {
					size = 5
				}
				dst := rng.Intn(e.NumNodes() - 1)
				if dst >= nd {
					dst++
				}
				e.Inject(nd, dst, noc.Class(rng.Intn(3)), size)
			}
			e.Step()
		}
		e.Drain(20 * cycles)
		res.Policies = append(res.Policies, a.name)
		res.AvgLatency = append(res.AvgLatency, e.Stats().Latency.Mean())
		res.Delivered = append(res.Delivered, e.Stats().Delivered)
	}
	base := res.AvgLatency[len(res.AvgLatency)-1]
	for _, v := range res.AvgLatency {
		res.Normalized = append(res.Normalized, v/base)
	}
	return res
}

// Render formats the cross-validation table.
func (r *FlitCheckResult) Render() string {
	var b strings.Builder
	b.WriteString("Flit-level cross-validation (8x8 wormhole/VC mesh, uniform random):\n")
	rows := make([][]string, len(r.Policies))
	for i := range r.Policies {
		rows[i] = []string{
			r.Policies[i],
			fmt.Sprintf("%.1f", r.AvgLatency[i]),
			fmt.Sprintf("%.3f", r.Normalized[i]),
			fmt.Sprintf("%d", r.Delivered[i]),
		}
	}
	b.WriteString(viz.Table(
		[]string{"policy", "avg latency", "normalized", "packets"}, rows))
	b.WriteString("The Fig. 5 policy ordering must hold at flit granularity too.\n")
	return b.String()
}
