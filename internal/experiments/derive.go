package experiments

import (
	"fmt"
	"strings"

	"mlnoc/internal/core"
)

// DeriveReport runs the future-work experiment: train the mesh agent on the
// 4x4 and 8x8 meshes, auto-derive the priority function from each heatmap
// (core.DeriveMeshPolicy — the mechanized version of the paper's Section 3.2
// human reading), and evaluate derived vs hand-derived vs the network itself.
func DeriveReport(sc Scale) string {
	var b strings.Builder
	b.WriteString("Automated NN -> algorithm derivation (the paper's future-work gap):\n\n")
	for _, size := range []int{4, 8} {
		cfg := core.MeshTrainConfig{
			Width:       size,
			Height:      size,
			Rate:        MeshRate(size),
			Hidden:      15,
			Epochs:      int(sc.TrainCycles / 1000),
			EpochCycles: 1000,
			Seed:        sc.Seed,
		}
		if cfg.Epochs < 1 {
			cfg.Epochs = 1
		}
		tr := core.TrainMesh(cfg)
		tr.Agent.Freeze()
		h := core.NewHeatmap(tr.Spec, tr.Agent.Net())
		derived, d, err := core.DeriveMeshPolicy(h)
		if err != nil {
			fmt.Fprintf(&b, "%dx%d: derivation failed: %v\n", size, size, err)
			continue
		}
		var hand *core.RLInspiredMesh
		if size >= 8 {
			hand = core.NewRLInspiredMesh8x8()
		} else {
			hand = core.NewRLInspiredMesh4x4()
		}
		auto := core.EvaluateMeshPolicy(cfg, derived, sc.WarmupCycles, sc.MeasureCycles).AvgLatency
		handLat := core.EvaluateMeshPolicy(cfg, hand, sc.WarmupCycles, sc.MeasureCycles).AvgLatency
		nnLat := core.EvaluateMeshPolicy(cfg, tr.Agent, sc.WarmupCycles, sc.MeasureCycles).AvgLatency
		fmt.Fprintf(&b, "%dx%d mesh:\n", size, size)
		fmt.Fprintf(&b, "  heatmap: local age %.3f, hop count %.3f -> %s\n",
			d.LAWeight, d.HCWeight, d.Notes)
		fmt.Fprintf(&b, "  derived  priority = (local_age<<%d) + (hop_count<<%d): avg latency %.2f\n",
			derived.LAShift, derived.HCShift, auto)
		fmt.Fprintf(&b, "  paper's  %-34s avg latency %.2f\n", hand.Name()+":", handLat)
		fmt.Fprintf(&b, "  trained network (frozen):                 avg latency %.2f\n\n", nnLat)
	}
	b.WriteString("The heuristic mechanizes the paper's Fig. 4 reading; the paper's conclusion\n")
	b.WriteString("calls exactly this NN->algorithm step out as the open methodological gap.\n")
	return b.String()
}
