package experiments

import (
	"strings"
	"testing"
)

// TestQuantStudyShape runs the quantization-fidelity study at tiny scale and
// checks its structural invariants: a trained 4x4 agent's INT8 compilation
// must mostly agree with the float policy, the Q-value error must be small
// against the observed Q range, and the Table 3 engine cross-reference must
// cost the deployed network shape.
func TestQuantStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := QuantStudy(4, tinyScale())
	if r.Decisions < 100 {
		t.Fatalf("only %d evaluation decisions recorded", r.Decisions)
	}
	// Even a briefly-trained agent must keep the large majority of its
	// decisions under INT8: per-layer symmetric quantization of a 15-hidden
	// net has far more than enough resolution for argmax stability.
	if r.Agreement < 0.8 {
		t.Fatalf("INT8 action agreement %.3f, want >= 0.8", r.Agreement)
	}
	if r.QRange <= 0 {
		t.Fatal("no Q range observed")
	}
	if r.QErrMean > 0.1*r.QRange {
		t.Fatalf("mean Q error %g too large for range %g", r.QErrMean, r.QRange)
	}
	if len(r.Deltas) != 2 {
		t.Fatalf("deltas = %d, want 2", len(r.Deltas))
	}
	for _, d := range r.Deltas {
		if d.FloatAvg <= 0 || d.QuantAvg <= 0 {
			t.Fatalf("degenerate latency delta: %+v", d)
		}
		// The INT8 policy must stay in the same latency regime as the float
		// policy: a broken engine degenerates to FIFO-like latencies (2x+).
		if d.QuantAvg > 1.5*d.FloatAvg {
			t.Fatalf("INT8 latency regression at rate %.3f: float %.2f vs int8 %.2f",
				d.Rate, d.FloatAvg, d.QuantAvg)
		}
	}
	if r.Engine.Gates <= 0 || r.Engine.SRAMBits <= 0 {
		t.Fatalf("engine cost not populated: %+v", r.Engine)
	}
	out := r.Render()
	for _, want := range []string{"action agreement", "Table 3 engine", "int8 avg lat"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if csv := r.CSV(); !strings.Contains(csv, "action_agreement") {
		t.Fatal("CSV missing action_agreement column")
	}
}
