package experiments

import (
	"fmt"
	"strings"

	"mlnoc/internal/arb"
	"mlnoc/internal/core"
	"mlnoc/internal/noc"
	"mlnoc/internal/traffic"
	"mlnoc/internal/viz"
)

// StarvationResult compares policies under adversarial hotspot traffic
// (Section 6.4): the naive newest-first arbiter — the behaviour an agent
// trained on a completed-messages-only latency reward learns — starves old
// messages, while Algorithm 2's local-age clause bounds waiting time.
type StarvationResult struct {
	Policies []string
	// MaxQueuedLocalAge is the largest local age among messages still queued
	// when injection stops — unbounded growth indicates starvation.
	MaxQueuedLocalAge []int64
	// MaxDeliveredLatency and AvgDeliveredLatency cover delivered messages.
	MaxDeliveredLatency []float64
	AvgDeliveredLatency []float64
}

// Starvation runs the Section 6.4 guard experiment on a 4x4 mesh under
// hotspot traffic.
func Starvation(sc Scale) *StarvationResult {
	policies := []struct {
		name string
		p    noc.Policy
	}{
		{"naive-newest-first", core.NaiveLatencyArbiter{}},
		{"fifo", arb.NewFIFO()},
		{"rl-inspired (Alg.2)", core.NewRLInspiredAPU()},
	}
	res := &StarvationResult{}
	for _, pp := range policies {
		net, cores := noc.BuildMeshCores(noc.Config{Width: 4, Height: 4, VCs: 3})
		net.SetPolicy(pp.p)
		// Heavy contention, but inside the regime Algorithm 2 was designed
		// for (per-hop waits around the starvation threshold, not far past
		// it): under extreme super-saturation every 5-bit age saturates and
		// a fixed tie-break would starve in any priority arbiter.
		// Sustained but unsaturated contention: the newest-first arbiter
		// starves waiting heads behind the continuous stream of fresh
		// arrivals, while any aging-aware policy bounds waiting time. (At
		// saturation the metric would instead measure congestion-tree depth,
		// which no arbiter can bound.)
		in := traffic.NewInjector(cores, traffic.Hotspot{
			Spots:    []int{5, 6},
			Fraction: 0.3,
		}, 0.14, newSeededRNG(sc.Seed+17))
		in.Classes = 3
		cycles := sc.MeasureCycles
		if cycles <= 0 {
			cycles = 4000
		}
		for i := int64(0); i < cycles; i++ {
			in.Tick()
			net.Step()
		}
		res.Policies = append(res.Policies, pp.name)
		res.MaxQueuedLocalAge = append(res.MaxQueuedLocalAge, MaxQueuedLocalAge(net))
		res.MaxDeliveredLatency = append(res.MaxDeliveredLatency, net.Stats().Latency.Max())
		res.AvgDeliveredLatency = append(res.AvgDeliveredLatency, net.Stats().Latency.Mean())
	}
	return res
}

// MaxQueuedLocalAge scans every input buffer of the network and returns the
// largest local age among queued messages.
func MaxQueuedLocalAge(net *noc.Network) int64 {
	now := net.Cycle()
	var maxAge int64
	for _, r := range net.Routers() {
		for p := noc.PortID(0); p < noc.MaxPorts; p++ {
			for vc := 0; vc < r.NumVCs(); vc++ {
				b := r.Buffer(p, vc)
				if b == nil {
					continue
				}
				for i := 0; i < b.Len(); i++ {
					if age := b.At(i).LocalAge(now); age > maxAge {
						maxAge = age
					}
				}
			}
		}
	}
	return maxAge
}

// Render formats the comparison.
func (r *StarvationResult) Render() string {
	var b strings.Builder
	b.WriteString("Section 6.4 starvation guard: hotspot traffic on a 4x4 mesh\n")
	rows := make([][]string, len(r.Policies))
	for i := range r.Policies {
		rows[i] = []string{
			r.Policies[i],
			fmt.Sprintf("%d", r.MaxQueuedLocalAge[i]),
			fmt.Sprintf("%.0f", r.MaxDeliveredLatency[i]),
			fmt.Sprintf("%.1f", r.AvgDeliveredLatency[i]),
		}
	}
	b.WriteString(viz.Table(
		[]string{"policy", "max queued local age", "max delivered latency", "avg latency"}, rows))
	return b.String()
}
