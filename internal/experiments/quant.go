package experiments

import (
	"fmt"
	"math"
	"strings"

	"mlnoc/internal/core"
	"mlnoc/internal/nn"
	"mlnoc/internal/noc"
	"mlnoc/internal/synth"
	"mlnoc/internal/viz"
)

// This file is the software half of the paper's Section 4.8 deployment story:
// the NN policy runs on an INT8 MAC-array engine (costed by
// internal/synth.NNEngine in Table 3), not on float64 hardware. QuantStudy
// trains the mesh agent, compiles its network to the nn.Quantized INT8 engine
// with workload-calibrated activation scales, and answers the question the
// paper's engine design implicitly assumes away: does 8-bit inference change
// the decisions, and if so does it change the delivered latency?

// quantProbeLimit caps how many arbitration states the calibration run
// records. Half calibrate the quantizer, half evaluate fidelity.
const quantProbeLimit = 2048

// stateProbe wraps a frozen agent as a noc.Policy, recording a copy of each
// arbitration state vector and the competing buffer slots before delegating
// the decision. It is how the study gathers *workload-representative*
// calibration states — random vectors would miscalibrate the activation
// scales, since real states are sparse and feature-normalized.
type stateProbe struct {
	agent  *core.Agent
	states [][]float64
	slots  [][]int
}

// Name implements noc.Policy.
func (p *stateProbe) Name() string { return p.agent.Name() }

// Select implements noc.Policy.
func (p *stateProbe) Select(ctx *noc.ArbContext, cands []noc.Candidate) int {
	if len(p.states) < quantProbeLimit {
		s := make([]float64, p.agent.Spec.InputSize())
		p.agent.Spec.BuildStateInto(s, ctx.Net, ctx.Cycle, cands)
		sl := make([]int, len(cands))
		for i, c := range cands {
			sl[i] = p.agent.Spec.Slot(c.Port, c.VC)
		}
		p.states = append(p.states, s)
		p.slots = append(p.slots, sl)
	}
	return p.agent.Select(ctx, cands)
}

// QuantRunDelta compares the float and INT8 policies end to end at one
// injection rate.
type QuantRunDelta struct {
	Rate            float64
	FloatAvg        float64 // avg latency, float64 inference (cycles)
	QuantAvg        float64 // avg latency, INT8 inference (cycles)
	FloatThroughput float64 // delivered messages per cycle
	QuantThroughput float64
}

// QuantStudyResult is the outcome of the quantization-fidelity study.
type QuantStudyResult struct {
	Size int
	// LayerSizes is the deployed network shape ([in, hidden, out]).
	LayerSizes []int
	// MACs is the INT8 multiply-accumulates per inference.
	MACs int
	// Decisions is the number of recorded arbitration states the fidelity
	// numbers below are computed over (the evaluation half of the probe).
	Decisions int
	// Agreement is the fraction of recorded decisions where the INT8 argmax
	// over the competing buffer slots equals the float argmax — "would the
	// MAC-array engine grant the same buffer".
	Agreement float64
	// QErrMean and QErrMax summarize |Q_int8 - Q_float| over the competing
	// slots of the recorded decisions.
	QErrMean, QErrMax float64
	// QRange is the max |Q_float| over the same decisions, the scale against
	// which the errors should be read.
	QRange float64
	// Deltas holds end-to-end float-vs-INT8 policy comparisons.
	Deltas []QuantRunDelta
	// Engine is the Table 3 hardware cost of this network on the paper's
	// MAC-array circuit (internal/synth.NNEngine, 32nm library).
	Engine synth.Report
}

// QuantStudy trains the size x size mesh agent (as MeshStudy does), freezes
// it, compiles the network to the INT8 engine with states recorded from the
// live workload, and measures policy fidelity at three levels: per-decision
// action agreement, Q-value error, and end-to-end latency/throughput deltas.
func QuantStudy(size int, sc Scale) *QuantStudyResult {
	cfg := core.MeshTrainConfig{
		Width:       size,
		Height:      size,
		VCs:         3,
		Rate:        MeshRate(size),
		Hidden:      15,
		Epochs:      int(sc.TrainCycles / 1000),
		EpochCycles: 1000,
		Seed:        sc.Seed,
	}
	if cfg.Epochs < 1 {
		cfg.Epochs = 1
	}
	tr := core.TrainMesh(cfg)
	tr.Agent.Freeze()
	return QuantEval(tr.Agent, cfg, sc)
}

// QuantEval compiles a frozen agent's network to the INT8 engine with states
// recorded from a live run under cfg's traffic, and measures fidelity. It is
// the evaluation half of QuantStudy, exported so cmd/trainarb can run the
// same study on a network it just trained.
func QuantEval(agent *core.Agent, cfg core.MeshTrainConfig, sc Scale) *QuantStudyResult {
	if cfg.Rate == 0 {
		// Mirror MeshTrainConfig's default so the rate sweep below varies
		// the actual load instead of passing 0 ("use default") twice.
		cfg.Rate = 0.23
	}
	net := agent.Net()

	// Record workload states by replaying the frozen policy once.
	probe := &stateProbe{agent: agent}
	core.EvaluateMeshPolicy(cfg, probe, sc.WarmupCycles, sc.MeasureCycles)
	if len(probe.states) < 2 {
		panic("experiments: quant probe recorded too few arbitration states")
	}
	// Even-indexed states calibrate the quantizer; odd-indexed states (and
	// their competing slots) evaluate fidelity. The split keeps evaluation
	// out-of-calibration without a second simulation run.
	var calib, evalStates [][]float64
	var evalSlots [][]int
	for i, s := range probe.states {
		if i%2 == 0 {
			calib = append(calib, s)
		} else {
			evalStates = append(evalStates, s)
			evalSlots = append(evalSlots, probe.slots[i])
		}
	}
	q := nn.Quantize(net, calib)

	res := &QuantStudyResult{
		Size:       cfg.Width,
		LayerSizes: q.LayerSizes(),
		MACs:       q.MACs(),
		Decisions:  len(evalStates),
		Engine:     synth.Evaluate(synth.NNEngine(q.LayerSizes(), 2048), synth.Lib32nm),
	}

	// Per-decision fidelity: restricted argmax over the competing slots,
	// first-best tie-breaking exactly as Agent.Select does.
	agree := 0
	for d, s := range evalStates {
		qf := net.Forward(s)
		qqRow := q.Forward(s)
		slots := evalSlots[d]
		bf, bq := slots[0], slots[0]
		for _, sl := range slots[1:] {
			if qf[sl] > qf[bf] {
				bf = sl
			}
			if qqRow[sl] > qqRow[bq] {
				bq = sl
			}
		}
		if bf == bq {
			agree++
		}
		for _, sl := range slots {
			e := math.Abs(qqRow[sl] - qf[sl])
			res.QErrMean += e
			if e > res.QErrMax {
				res.QErrMax = e
			}
			if a := math.Abs(qf[sl]); a > res.QRange {
				res.QRange = a
			}
		}
	}
	nQ := 0
	for _, slots := range evalSlots {
		nQ += len(slots)
	}
	if nQ > 0 {
		res.QErrMean /= float64(nQ)
	}
	res.Agreement = float64(agree) / float64(len(evalStates))

	// End-to-end deltas: the same frozen weights deployed as float64 and as
	// INT8, at the training rate and at a lighter load. Each run gets fresh
	// agents (cloned nets / rebuilt engines): scratch is not shareable.
	for _, rate := range []float64{cfg.Rate, cfg.Rate / 2} {
		rcfg := cfg
		rcfg.Rate = rate
		fa := core.NewAgentWithNet(agent.Spec, net.Clone(), sc.Seed+7)
		fr := core.EvaluateMeshPolicy(rcfg, fa, sc.WarmupCycles, sc.MeasureCycles)
		qa := core.NewAgentWithNet(agent.Spec, net.Clone(), sc.Seed+7)
		qa.Infer = nn.Quantize(net, calib)
		qr := core.EvaluateMeshPolicy(rcfg, qa, sc.WarmupCycles, sc.MeasureCycles)
		res.Deltas = append(res.Deltas, QuantRunDelta{
			Rate:            rate,
			FloatAvg:        fr.AvgLatency,
			QuantAvg:        qr.AvgLatency,
			FloatThroughput: float64(fr.Delivered) / float64(fr.Cycles),
			QuantThroughput: float64(qr.Delivered) / float64(qr.Cycles),
		})
	}
	return res
}

// Render formats the study.
func (r *QuantStudyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "INT8 quantized inference fidelity (%dx%d mesh agent, net %v, %d MACs/inference)\n",
		r.Size, r.Size, r.LayerSizes, r.MACs)
	fmt.Fprintf(&b, "action agreement: %.1f%% over %d recorded arbitrations\n",
		100*r.Agreement, r.Decisions)
	fmt.Fprintf(&b, "Q-value error:    mean %.4g, max %.4g (float |Q| range %.4g)\n",
		r.QErrMean, r.QErrMax, r.QRange)
	rows := make([][]string, len(r.Deltas))
	for i, d := range r.Deltas {
		rows[i] = []string{
			fmt.Sprintf("%.3f", d.Rate),
			fmt.Sprintf("%.2f", d.FloatAvg),
			fmt.Sprintf("%.2f", d.QuantAvg),
			fmt.Sprintf("%+.2f%%", 100*(d.QuantAvg-d.FloatAvg)/d.FloatAvg),
			fmt.Sprintf("%.4f", d.FloatThroughput),
			fmt.Sprintf("%.4f", d.QuantThroughput),
		}
	}
	b.WriteString(viz.Table([]string{
		"inj rate", "float avg lat", "int8 avg lat", "lat delta",
		"float thpt", "int8 thpt"}, rows))
	fmt.Fprintf(&b, "Table 3 engine for this net: %s\n", r.Engine)
	return b.String()
}

// CSV exports the end-to-end deltas.
func (r *QuantStudyResult) CSV() string {
	labels := make([]string, len(r.Deltas))
	m := make([][]float64, len(r.Deltas))
	for i, d := range r.Deltas {
		labels[i] = fmt.Sprintf("%.3f", d.Rate)
		m[i] = []float64{d.FloatAvg, d.QuantAvg, d.FloatThroughput, d.QuantThroughput,
			r.Agreement, r.QErrMean, r.QErrMax}
	}
	return viz.MatrixCSV("rate", labels, []string{
		"float_avg_latency", "int8_avg_latency", "float_throughput",
		"int8_throughput", "action_agreement", "qerr_mean", "qerr_max"}, m)
}
