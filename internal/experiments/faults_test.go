package experiments

import (
	"testing"

	"mlnoc/internal/obs"
)

// faultTestScale is small enough for CI but long enough that the mid-run kill
// lands inside both the mesh measurement window and the APU programs.
func faultTestScale() Scale {
	return Scale{WarmupCycles: 200, MeasureCycles: 600, OpScale: 0.05, Seed: 3}
}

// TestFaultSweepDeterministic pins the acceptance criterion that a seeded
// faults experiment is reproducible: two runs render identical CSV.
func TestFaultSweepDeterministic(t *testing.T) {
	rates := []float64{0, 0.12}
	a := FaultSweepRates(faultTestScale(), nil, rates)
	b := FaultSweepRates(faultTestScale(), nil, rates)
	if a.CSV() != b.CSV() {
		t.Fatalf("fault sweep not deterministic:\nfirst:\n%s\nsecond:\n%s", a.CSV(), b.CSV())
	}
	if a.MeshKilled[0] != 0 {
		t.Fatalf("healthy row killed %d links", a.MeshKilled[0])
	}
	if a.MeshKilled[1] == 0 {
		t.Fatal("12%% row killed no links")
	}
	for pi := range a.MeshPolicies {
		if a.MeshUnreachable[1][pi] != 0 {
			t.Fatalf("connectivity-preserving kills produced %d unreachable messages under %s",
				a.MeshUnreachable[1][pi], a.MeshPolicies[pi])
		}
		if a.MeshReroutes[1][pi] == 0 {
			t.Fatalf("no reroutes under %s despite killed links", a.MeshPolicies[pi])
		}
	}
	// Degraded cells must still hold real measurements.
	for ri := range rates {
		for pi := range a.APUPolicies {
			if a.APUAvg[ri][pi] <= 0 {
				t.Fatalf("APU cell [%d][%d] has no result", ri, pi)
			}
		}
	}
}

// TestFaultSweepTelemetry checks that the sweep feeds both mesh and APU cell
// snapshots into a shared registry, with fault counters attached.
func TestFaultSweepTelemetry(t *testing.T) {
	tel := &Telemetry{Registry: obs.NewRegistry(), SampleEvery: 64}
	res := FaultSweepRates(faultTestScale(), tel, []float64{0.12})
	want := len(res.MeshPolicies) + len(res.APUPolicies)
	if tel.Registry.Len() != want {
		t.Fatalf("registry holds %d snapshots, want %d", tel.Registry.Len(), want)
	}
	faulted := 0
	for _, name := range tel.Registry.Names() {
		if tel.Registry.Get(name).Faults != nil {
			faulted++
		}
	}
	if faulted != want {
		t.Fatalf("%d/%d snapshots carry fault counters", faulted, want)
	}
}
