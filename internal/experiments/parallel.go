package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// CellPanic is the panic value parallelFor re-raises on the caller's goroutine
// when a worker panics: it names the failing cell and preserves the original
// panic value and stack, so a crashed sweep says which (workload, policy) cell
// died instead of killing the process with an unattributed goroutine trace.
type CellPanic struct {
	// Cell is the index passed to the cell function that panicked.
	Cell int
	// Value is the original panic value.
	Value any
	// Stack is the worker's stack at the point of the panic.
	Stack []byte
}

// Error implements error.
func (p *CellPanic) Error() string {
	return fmt.Sprintf("experiments: cell %d panicked: %v\n%s", p.Cell, p.Value, p.Stack)
}

// String implements fmt.Stringer.
func (p *CellPanic) String() string { return p.Error() }

// parallelFor runs f(0..n-1) on up to GOMAXPROCS worker goroutines and waits
// for completion. Every experiment cell builds its own fully independent
// simulator state (policies are created per cell, the frozen NN is cloned),
// so cells can execute concurrently without changing any result.
//
// A panic inside f does not crash the worker pool: the first panic is
// captured (with its cell index and stack), remaining cells still run, and
// the panic is re-raised on the caller's goroutine as a *CellPanic after all
// workers finish.
func parallelFor(n int, f func(i int)) {
	// context.Background never cancels, so the error return is always nil.
	_ = parallelForCtx(context.Background(), n, f)
}

// parallelForCtx is parallelFor with cooperative cancellation: ctx is checked
// between cells, so a cancelled sweep stops dispatching promptly while cells
// already in flight run to completion (cells are not preemptible — a partial
// simulation has no meaningful result). It returns ctx.Err() when cancelled,
// nil otherwise. Panic capture is identical to parallelFor and takes
// precedence over cancellation.
func parallelForCtx(ctx context.Context, n int, f func(i int)) error {
	var (
		panicOnce sync.Once
		cellPanic *CellPanic
	)
	runCell := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() {
					cellPanic = &CellPanic{Cell: i, Value: r, Stack: debug.Stack()}
				})
			}
		}()
		f(i)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			runCell(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					// Drain the channel but skip the work once cancelled.
					if ctx.Err() == nil {
						runCell(i)
					}
				}
			}()
		}
	feed:
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(next)
		wg.Wait()
	}
	if cellPanic != nil {
		panic(cellPanic)
	}
	return ctx.Err()
}
