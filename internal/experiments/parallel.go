package experiments

import (
	"runtime"
	"sync"
)

// parallelFor runs f(0..n-1) on up to GOMAXPROCS worker goroutines and waits
// for completion. Every experiment cell builds its own fully independent
// simulator state (policies are created per cell, the frozen NN is cloned),
// so cells can execute concurrently without changing any result.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
