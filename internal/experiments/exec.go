package experiments

import (
	"context"
	"fmt"
	"strings"

	"mlnoc/internal/apu"
	"mlnoc/internal/core"
	"mlnoc/internal/rl"
	"mlnoc/internal/stats"
	"mlnoc/internal/synfull"
	"mlnoc/internal/viz"
)

// TrainAPU trains the paper's 504-input APU agent (Section 4.6) online on the
// Bfs workload model — the application the paper uses to derive Fig. 7 —
// re-launching the workload until the training budget is spent. The returned
// agent is still in training mode; call Freeze before using it as the "NN"
// evaluation policy.
func TrainAPU(sc Scale) *core.Agent {
	agent, _ := TrainAPUCtx(context.Background(), sc)
	return agent
}

// TrainAPUCtx is TrainAPU with cooperative cancellation: ctx is polled every
// trainCheckEvery cycles and between workload launches, so a cancelled
// server-side training job stops within a bounded number of simulated cycles
// instead of spending the whole training budget. On cancellation the agent
// trained so far is returned alongside ctx.Err().
func TrainAPUCtx(ctx context.Context, sc Scale) (*core.Agent, error) {
	spec := core.APUSpec()
	agent := core.NewAgent(spec, core.AgentConfig{
		Hidden: 42,
		DQL: rl.DQLConfig{
			BatchSize: 32,
			LR:        0.05,
			Gamma:     0.5,
			ReplayCap: 16000,
			SyncEvery: 2000,
		},
		EpsStart:       0.5,
		EpsDecayCycles: sc.TrainCycles / 2,
		Seed:           sc.Seed,
	})
	sys := apu.NewSystem(apu.Config{}, sc.Seed+11)
	sys.Net.SetPolicy(agent)
	sys.Net.OnCycle = agent.OnCycle

	model, err := synfull.ByName("bfs")
	if err != nil {
		panic(err)
	}
	var cycles int64
	for launch := int64(0); cycles < sc.TrainCycles; launch++ {
		if ctx.Err() != nil {
			return agent, ctx.Err()
		}
		runner := apu.NewRunner(sys, apu.Homogeneous(model), apu.RunnerConfig{
			OpScale: sc.OpScale,
			Seed:    sc.Seed + 101*launch,
		})
		for !runner.Done() && cycles < sc.TrainCycles {
			if cycles%trainCheckEvery == 0 && ctx.Err() != nil {
				return agent, ctx.Err()
			}
			runner.Step()
			cycles++
		}
	}
	return agent, nil
}

// trainCheckEvery is the cancellation poll period of TrainAPUCtx in cycles:
// coarse enough that the atomic ctx.Err() check is invisible next to a
// simulated cycle, fine enough that cancellation lands within milliseconds.
const trainCheckEvery = 1024

// APUHeatmap trains the APU agent and returns its Fig. 7 weight heatmap.
func APUHeatmap(sc Scale) *core.Heatmap {
	agent := TrainAPU(sc)
	agent.Freeze()
	return APUHeatmapFromAgent(agent)
}

// APUHeatmapFromAgent extracts the Fig. 7 heatmap from an already trained
// agent.
func APUHeatmapFromAgent(agent *core.Agent) *core.Heatmap {
	return core.NewHeatmap(agent.Spec, agent.Net())
}

// RenderAPUHeatmap formats a Fig. 7 heatmap with the Section 4.6 sign
// analysis of the hop-count feature per port.
func RenderAPUHeatmap(h *core.Heatmap) string {
	var b strings.Builder
	b.WriteString("Fig. 7 (APU agent, trained on bfs): mean |weight| of hidden-layer inputs\n")
	b.WriteString(viz.Heatmap(h.RowLabels, h.ColLabels, h.Abs))
	b.WriteString("feature importance (row means, descending):\n")
	for _, row := range h.RankedRows() {
		fmt.Fprintf(&b, "  %-22s %.4f\n", h.RowLabels[row], h.RowMean(row))
	}
	hopRow := -1
	for i, lbl := range h.RowLabels {
		if lbl == "hop count" {
			hopRow = i
		}
	}
	if hopRow >= 0 {
		fmt.Fprintf(&b, "hop-count signed weight by port (Section 4.6 analysis; output-layer mean %.4f):\n",
			h.OutputWeightMean)
		for _, port := range []string{"core", "mem", "north", "south", "west", "east"} {
			fmt.Fprintf(&b, "  %-6s %+.4f\n", port, h.PortSignedMean(hopRow, port))
		}
	}
	return b.String()
}

// ExecSweepResult holds the Figs. 9 and 10 matrices: average and tail program
// execution times per (workload, policy), plus their normalizations to the
// Global-age column.
type ExecSweepResult struct {
	Workloads []string
	Policies  []string
	// Avg[w][p] and Tail[w][p] are execution times in cycles.
	Avg, Tail [][]float64
	// NormAvg and NormTail are normalized to the Global-age policy.
	NormAvg, NormTail [][]float64
	// MeanNormAvg and MeanNormTail average the normalized values across
	// workloads (the paper's "on average" numbers).
	MeanNormAvg, MeanNormTail []float64
}

// ExecSweep runs every Table 1 workload (four copies, one per quadrant) under
// every Fig. 9 policy. With trainNN true it first trains the APU agent and
// includes the frozen network as the "NN" policy.
func ExecSweep(sc Scale, trainNN bool) *ExecSweepResult {
	return ExecSweepT(sc, trainNN, nil)
}

// ExecSweepT is ExecSweep with per-cell telemetry (progress reporting, obs
// snapshots, watchdog); tel may be nil.
func ExecSweepT(sc Scale, trainNN bool, tel *Telemetry) *ExecSweepResult {
	r, _ := ExecSweepCtx(context.Background(), sc, trainNN, tel)
	return r
}

// ExecSweepCtx is ExecSweepT with cooperative cancellation: ctx is checked
// between sweep cells (and inside NN training), so a killed server job stops
// dispatching promptly instead of finishing the whole sweep. On cancellation
// it returns (nil, ctx.Err()); cells already in flight complete first.
func ExecSweepCtx(ctx context.Context, sc Scale, trainNN bool, tel *Telemetry) (*ExecSweepResult, error) {
	var nnAgent *core.Agent
	if trainNN {
		var err error
		if nnAgent, err = TrainAPUCtx(ctx, sc); err != nil {
			return nil, err
		}
		nnAgent.Freeze()
	}
	factories := apuFactories(nnAgent)

	res := &ExecSweepResult{}
	for _, f := range factories {
		res.Policies = append(res.Policies, f.Name)
	}
	gaCol := len(factories) - 1 // Global-age is last

	models := synfull.Catalog()
	res.Avg = make([][]float64, len(models))
	res.Tail = make([][]float64, len(models))
	for _, model := range models {
		res.Workloads = append(res.Workloads, model.Name)
	}
	for wi := range models {
		res.Avg[wi] = make([]float64, len(factories))
		res.Tail[wi] = make([]float64, len(factories))
	}
	total := len(models) * len(factories)
	err := parallelForCtx(ctx, total, func(k int) {
		wi, pi := k/len(factories), k%len(factories)
		model, f := models[wi], factories[pi]
		label := model.Name + "/" + f.Name
		seed := sc.Seed + int64(wi+1)*1000
		r := apu.RunWorkload(apu.Config{}, f.New(seed+int64(pi)),
			apu.Homogeneous(model), apu.RunnerConfig{
				OpScale: sc.OpScale,
				Seed:    seed,
				Obs:     tel.suiteConfig(),
				Trace:   tel.traceConfig(),
			})
		if !r.Finished {
			panic(cellFailure(label, r))
		}
		res.Avg[wi][pi], res.Tail[wi][pi] = r.Avg, r.Tail
		tel.cellDone(total, label, r)
	})
	if err != nil {
		return nil, err
	}
	for wi := range models {
		res.NormAvg = append(res.NormAvg, stats.Normalize(res.Avg[wi], gaCol))
		res.NormTail = append(res.NormTail, stats.Normalize(res.Tail[wi], gaCol))
	}

	res.MeanNormAvg = columnMeans(res.NormAvg)
	res.MeanNormTail = columnMeans(res.NormTail)
	return res, nil
}

func columnMeans(m [][]float64) []float64 {
	if len(m) == 0 {
		return nil
	}
	out := make([]float64, len(m[0]))
	for _, row := range m {
		for i, v := range row {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(m))
	}
	return out
}

func renderMatrix(title, rowName string, rows []string, cols []string, m [][]float64, mean []float64) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	table := make([][]string, 0, len(rows)+1)
	for i, r := range rows {
		cells := []string{r}
		for _, v := range m[i] {
			cells = append(cells, fmt.Sprintf("%.3f", v))
		}
		table = append(table, cells)
	}
	if mean != nil {
		cells := []string{"MEAN"}
		for _, v := range mean {
			cells = append(cells, fmt.Sprintf("%.3f", v))
		}
		table = append(table, cells)
	}
	b.WriteString(viz.Table(append([]string{rowName}, cols...), table))
	return b.String()
}

// RenderAvg formats the Fig. 9 matrix (normalized average execution time).
func (r *ExecSweepResult) RenderAvg() string {
	return renderMatrix(
		"Fig. 9: average program execution time, normalized to Global-age",
		"workload", r.Workloads, r.Policies, r.NormAvg, r.MeanNormAvg)
}

// RenderTail formats the Fig. 10 matrix (normalized tail execution time).
func (r *ExecSweepResult) RenderTail() string {
	return renderMatrix(
		"Fig. 10: tail program execution time, normalized to Global-age",
		"workload", r.Workloads, r.Policies, r.NormTail, r.MeanNormTail)
}

// MixResult holds the Fig. 11 matrix: normalized average execution time per
// (mix, policy).
type MixResult struct {
	Mixes    []string
	Policies []string
	NormAvg  [][]float64
	Avg      [][]float64
}

// MixedWorkloads reproduces Fig. 11: five mixes from four low-injection (L)
// and four high-injection (H) applications, 4L0H through 0L4H, one
// application per quadrant.
func MixedWorkloads(sc Scale, trainNN bool) *MixResult {
	return MixedWorkloadsT(sc, trainNN, nil)
}

// MixedWorkloadsT is MixedWorkloads with per-cell telemetry; tel may be nil.
func MixedWorkloadsT(sc Scale, trainNN bool, tel *Telemetry) *MixResult {
	r, _ := MixedWorkloadsCtx(context.Background(), sc, trainNN, tel)
	return r
}

// MixedWorkloadsCtx is MixedWorkloadsT with cooperative cancellation checked
// between sweep cells; see ExecSweepCtx.
func MixedWorkloadsCtx(ctx context.Context, sc Scale, trainNN bool, tel *Telemetry) (*MixResult, error) {
	var nnAgent *core.Agent
	if trainNN {
		var err error
		if nnAgent, err = TrainAPUCtx(ctx, sc); err != nil {
			return nil, err
		}
		nnAgent.Freeze()
	}
	factories := apuFactories(nnAgent)
	res := &MixResult{}
	for _, f := range factories {
		res.Policies = append(res.Policies, f.Name)
	}
	gaCol := len(factories) - 1

	quads := make([][4]*synfull.Model, 5)
	res.Avg = make([][]float64, 5)
	for high := 0; high <= 4; high++ {
		low := 4 - high
		models, err := synfull.Mix(low, high)
		if err != nil {
			panic(err)
		}
		copy(quads[high][:], models)
		res.Mixes = append(res.Mixes, fmt.Sprintf("%dL%dH", low, high))
		res.Avg[high] = make([]float64, len(factories))
	}
	total := 5 * len(factories)
	err := parallelForCtx(ctx, total, func(k int) {
		high, pi := k/len(factories), k%len(factories)
		f := factories[pi]
		label := fmt.Sprintf("%dL%dH/%s", 4-high, high, f.Name)
		seed := sc.Seed + int64(high+1)*773
		r := apu.RunWorkload(apu.Config{}, f.New(seed+int64(pi)), quads[high],
			apu.RunnerConfig{OpScale: sc.OpScale, Seed: seed, Obs: tel.suiteConfig(),
				Trace: tel.traceConfig()})
		if !r.Finished {
			panic(cellFailure(label, r))
		}
		res.Avg[high][pi] = r.Avg
		tel.cellDone(total, label, r)
	})
	if err != nil {
		return nil, err
	}
	for high := 0; high <= 4; high++ {
		res.NormAvg = append(res.NormAvg, stats.Normalize(res.Avg[high], gaCol))
	}
	return res, nil
}

// Render formats the Fig. 11 matrix.
func (r *MixResult) Render() string {
	return renderMatrix(
		"Fig. 11: mixed workloads, average execution time normalized to Global-age",
		"mix", r.Mixes, r.Policies, r.NormAvg, nil)
}

// AblationResult holds the Section 5.1 de-featuring study: execution time of
// Algorithm 2 variants normalized to the full algorithm, per workload.
type AblationResult struct {
	Workloads []string
	Variants  []string
	// Norm[w][v] is variant v's average execution time divided by the full
	// algorithm's on workload w.
	Norm [][]float64
	// MaxIncrease[v] and MeanIncrease[v] summarize (norm-1) per variant,
	// matching the paper's "up to X% (Y% on average)" phrasing.
	MaxIncrease, MeanIncrease []float64
}

// Ablation reproduces the Section 5.1 de-featuring experiment: remove the
// port condition (W/E hop inversion) and the message-type condition (boost)
// from Algorithm 2, one at a time, and measure the slowdown.
func Ablation(sc Scale) *AblationResult {
	return AblationT(sc, nil)
}

// AblationT is Ablation with per-cell telemetry; tel may be nil.
func AblationT(sc Scale, tel *Telemetry) *AblationResult {
	r, _ := AblationCtx(context.Background(), sc, tel)
	return r
}

// AblationCtx is AblationT with cooperative cancellation checked between
// sweep cells; see ExecSweepCtx.
func AblationCtx(ctx context.Context, sc Scale, tel *Telemetry) (*AblationResult, error) {
	variants := []struct {
		name string
		p    *core.RLInspiredAPU
	}{
		{"full", core.NewRLInspiredAPU()},
		{"no-port", &core.RLInspiredAPU{InvertNorthSouth: true, DefeaturePort: true}},
		{"no-msgtype", &core.RLInspiredAPU{InvertNorthSouth: true, DefeatureMsgType: true}},
		{"paper-we-rule", core.NewRLInspiredAPUPaper()},
	}
	res := &AblationResult{}
	for _, v := range variants {
		res.Variants = append(res.Variants, v.name)
	}
	models := synfull.Catalog()
	avgs := make([][]float64, len(models))
	for wi, model := range models {
		res.Workloads = append(res.Workloads, model.Name)
		avgs[wi] = make([]float64, len(variants))
	}
	total := len(models) * len(variants)
	err := parallelForCtx(ctx, total, func(k int) {
		wi, vi := k/len(variants), k%len(variants)
		model, v := models[wi], variants[vi]
		label := "ablation-" + model.Name + "/" + v.name
		seed := sc.Seed + int64(wi+1)*131
		// Each cell builds its own policy value: RLInspiredAPU is stateless,
		// so copying the variant struct is enough for concurrency safety.
		p := *v.p
		r := apu.RunWorkload(apu.Config{}, &p, apu.Homogeneous(model),
			apu.RunnerConfig{OpScale: sc.OpScale, Seed: seed, Obs: tel.suiteConfig(),
				Trace: tel.traceConfig()})
		if !r.Finished {
			panic(cellFailure(label, r))
		}
		avgs[wi][vi] = r.Avg
		tel.cellDone(total, label, r)
	})
	if err != nil {
		return nil, err
	}
	for wi := range models {
		res.Norm = append(res.Norm, stats.Normalize(avgs[wi], 0))
	}
	res.MaxIncrease = make([]float64, len(variants))
	res.MeanIncrease = make([]float64, len(variants))
	for _, row := range res.Norm {
		for v, x := range row {
			inc := x - 1
			res.MeanIncrease[v] += inc
			if inc > res.MaxIncrease[v] {
				res.MaxIncrease[v] = inc
			}
		}
	}
	for v := range res.MeanIncrease {
		res.MeanIncrease[v] /= float64(len(res.Norm))
	}
	return res, nil
}

// Render formats the ablation matrix with the paper-style summary line.
func (r *AblationResult) Render() string {
	s := renderMatrix(
		"Section 5.1 ablation: Algorithm 2 variants, avg execution time normalized to full",
		"workload", r.Workloads, r.Variants, r.Norm, nil)
	var b strings.Builder
	b.WriteString(s)
	for v := 1; v < len(r.Variants); v++ {
		fmt.Fprintf(&b, "%s vs full: %+.1f%% max, %+.1f%% mean execution time\n",
			r.Variants[v], 100*r.MaxIncrease[v], 100*r.MeanIncrease[v])
	}
	return b.String()
}
