package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"mlnoc/internal/arb"
	"mlnoc/internal/noc"
	"mlnoc/internal/traffic"
	"mlnoc/internal/viz"
)

// DefaultScalingSizes are the mesh edge sizes swept by the scaling study: the
// paper's 8x8 plus the large-topology axis the sharded engine unlocks.
var DefaultScalingSizes = []int{8, 16, 32}

// DefaultScalingShards are the shard counts compared per size.
var DefaultScalingShards = []int{1, 2, 4}

// ScalingRate returns the uniform-random injection rate for a large-topology
// throughput run. Meshes run at the Section 3.2 near-saturation rate; a torus
// runs well below it, because ring-shortest DOR on wrapped rings has a cyclic
// channel dependency and saturating a healthy torus can wedge it (see
// DESIGN.md §13) — the scaling story needs sustained throughput, not a study
// of that deadlock.
func ScalingRate(size int, torus bool) float64 {
	if torus {
		return 0.05
	}
	return MeshRate(size)
}

// LargeMeshConfig parameterizes one large-topology throughput run.
type LargeMeshConfig struct {
	Size   int  // mesh edge length (Size x Size routers, one core each)
	Torus  bool // wrap both dimensions into rings
	Shards int  // router shards stepped in parallel; <= 1 is sequential
	// Rate overrides the injection rate; 0 uses ScalingRate.
	Rate float64
}

// LargeMeshResult is the outcome of one large-topology run. The simulation
// fields are bit-identical across shard counts (that invariance is what
// ScalingStudyCtx asserts); only the wall-clock fields vary with K.
type LargeMeshResult struct {
	Size   int     `json:"size"`
	Torus  bool    `json:"torus"`
	Shards int     `json:"shards"`
	Rate   float64 `json:"rate"`

	// Deterministic simulation outcome of the measured window.
	Cycles     int64   `json:"cycles"`
	Injected   int64   `json:"injected"`
	Delivered  int64   `json:"delivered"`
	AvgLatency float64 `json:"avg_latency"`

	// Wall-clock throughput of the measured window (machine-dependent).
	WallSeconds       float64 `json:"wall_seconds"`
	StepsPerSec       float64 `json:"steps_per_sec"`
	MsgsPerSec        float64 `json:"msgs_per_sec"`
	MsgsPerSecPerCore float64 `json:"msgs_per_sec_per_core"`
}

// LargeMesh runs LargeMeshCtx without cancellation.
func LargeMesh(cfg LargeMeshConfig, sc Scale) *LargeMeshResult {
	r, _ := LargeMeshCtx(context.Background(), cfg, sc)
	return r
}

// LargeMeshCtx drives one seeded uniform-random run on a Size x Size mesh or
// torus under the global-age policy with the requested shard count, timing
// the measured window. Cancellation is polled every trainCheckEvery cycles.
func LargeMeshCtx(ctx context.Context, cfg LargeMeshConfig, sc Scale) (*LargeMeshResult, error) {
	if cfg.Size < 2 {
		return nil, fmt.Errorf("experiments: scaling size %d too small", cfg.Size)
	}
	rate := cfg.Rate
	if rate == 0 {
		rate = ScalingRate(cfg.Size, cfg.Torus)
	}
	ncfg := noc.Config{Width: cfg.Size, Height: cfg.Size, VCs: 3, BufferCap: 8, Torus: cfg.Torus}
	net, cores := noc.BuildMeshCores(ncfg)
	net.SetPolicy(arb.NewGlobalAge())
	net.SetShards(cfg.Shards)
	defer net.SetShards(1)

	in := traffic.NewInjector(cores, traffic.UniformRandom{}, rate, newSeededRNG(sc.Seed))
	in.Classes = ncfg.VCs
	for i := int64(0); i < sc.WarmupCycles; i++ {
		if i%trainCheckEvery == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		in.Tick()
		net.Step()
	}
	net.ResetStats()
	start := time.Now()
	for i := int64(0); i < sc.MeasureCycles; i++ {
		if i%trainCheckEvery == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		in.Tick()
		net.Step()
	}
	wall := time.Since(start).Seconds()
	net.Drain(4 * sc.MeasureCycles)

	st := net.Stats()
	res := &LargeMeshResult{
		Size:        cfg.Size,
		Torus:       cfg.Torus,
		Shards:      net.Shards(),
		Rate:        rate,
		Cycles:      net.Cycle(),
		Injected:    st.Injected,
		Delivered:   st.Delivered,
		AvgLatency:  st.Latency.Mean(),
		WallSeconds: wall,
	}
	if wall > 0 {
		res.StepsPerSec = float64(sc.MeasureCycles) / wall
		res.MsgsPerSec = float64(st.Delivered) / wall
		res.MsgsPerSecPerCore = res.MsgsPerSec / float64(len(cores))
	}
	return res, nil
}

// ScalingStudyResult is the sizes x shards throughput matrix. Rows follow
// Sizes, columns follow Shards.
type ScalingStudyResult struct {
	Sizes  []int     `json:"sizes"`
	Shards []int     `json:"shards"`
	Torus  bool      `json:"torus"`
	Rates  []float64 `json:"rates"`

	// Shard-invariant simulation outcome per size, asserted identical across
	// every shard column before the result is returned.
	Delivered  []int64   `json:"delivered"`
	AvgLatency []float64 `json:"avg_latency"`

	// MsgsPerSecPerCore[s][k] is the headline scaling number; Speedup is the
	// same row normalized to its first (fewest-shards) column.
	MsgsPerSecPerCore [][]float64 `json:"msgs_per_sec_per_core"`
	StepsPerSec       [][]float64 `json:"steps_per_sec"`
	Speedup           [][]float64 `json:"speedup"`
}

// ScalingStudy runs ScalingStudyCtx without cancellation.
func ScalingStudy(sizes, shards []int, torus bool, sc Scale) (*ScalingStudyResult, error) {
	return ScalingStudyCtx(context.Background(), sizes, shards, torus, sc)
}

// ScalingStudyCtx measures single-network step throughput for every
// (size, shard count) pair. Cells run strictly sequentially — each one wants
// the whole machine, and interleaving them would corrupt the wall-clock
// numbers — and the study doubles as a production bit-identity check: if any
// shard count delivers a different message count or latency than the first
// column for the same size, the engine's determinism contract is broken and
// an error is returned instead of a result.
func ScalingStudyCtx(ctx context.Context, sizes, shards []int, torus bool, sc Scale) (*ScalingStudyResult, error) {
	if len(sizes) == 0 {
		sizes = DefaultScalingSizes
	}
	if len(shards) == 0 {
		shards = DefaultScalingShards
	}
	res := &ScalingStudyResult{
		Sizes:             append([]int(nil), sizes...),
		Shards:            append([]int(nil), shards...),
		Torus:             torus,
		Delivered:         make([]int64, len(sizes)),
		AvgLatency:        make([]float64, len(sizes)),
		MsgsPerSecPerCore: makeMatrix(len(sizes), len(shards)),
		StepsPerSec:       makeMatrix(len(sizes), len(shards)),
		Speedup:           makeMatrix(len(sizes), len(shards)),
	}
	for si, size := range sizes {
		res.Rates = append(res.Rates, ScalingRate(size, torus))
		for ki, k := range shards {
			r, err := LargeMeshCtx(ctx, LargeMeshConfig{Size: size, Torus: torus, Shards: k}, sc)
			if err != nil {
				return nil, err
			}
			if ki == 0 {
				res.Delivered[si] = r.Delivered
				res.AvgLatency[si] = r.AvgLatency
			} else if r.Delivered != res.Delivered[si] || r.AvgLatency != res.AvgLatency[si] {
				return nil, fmt.Errorf(
					"experiments: shard determinism broken on %dx%d: K=%d delivered %d (avg %.6f), K=%d delivered %d (avg %.6f)",
					size, size, shards[0], res.Delivered[si], res.AvgLatency[si],
					r.Shards, r.Delivered, r.AvgLatency)
			}
			res.MsgsPerSecPerCore[si][ki] = r.MsgsPerSecPerCore
			res.StepsPerSec[si][ki] = r.StepsPerSec
			if base := res.MsgsPerSecPerCore[si][0]; base > 0 {
				res.Speedup[si][ki] = res.MsgsPerSecPerCore[si][ki] / base
			}
		}
	}
	return res, nil
}

func (r *ScalingStudyResult) sizeLabels() []string {
	kind := "mesh"
	if r.Torus {
		kind = "torus"
	}
	out := make([]string, len(r.Sizes))
	for i, s := range r.Sizes {
		out[i] = fmt.Sprintf("%s%dx%d", kind, s, s)
	}
	return out
}

func (r *ScalingStudyResult) shardLabels() []string {
	out := make([]string, len(r.Shards))
	for i, k := range r.Shards {
		out[i] = fmt.Sprintf("K=%d", k)
	}
	return out
}

// Render formats the throughput and speedup matrices with the per-size
// shard-invariant outcome line.
func (r *ScalingStudyResult) Render() string {
	var b strings.Builder
	b.WriteString(renderMatrix(
		"Scaling study: delivered messages/sec/core by topology size and shard count",
		"topology", r.sizeLabels(), r.shardLabels(), r.MsgsPerSecPerCore, nil))
	b.WriteString(renderMatrix(
		"Speedup over the first shard column (same seeded run, bit-identical outcome)",
		"topology", r.sizeLabels(), r.shardLabels(), r.Speedup, nil))
	b.WriteString("shard-invariant outcome per size (asserted identical across K):\n")
	for si := range r.Sizes {
		fmt.Fprintf(&b, "  %-10s rate %.2f: delivered %d, avg latency %.2f cycles\n",
			r.sizeLabels()[si], r.Rates[si], r.Delivered[si], r.AvgLatency[si])
	}
	return b.String()
}

// CSV exports the messages/sec/core matrix.
func (r *ScalingStudyResult) CSV() string {
	return viz.MatrixCSV("topology", r.sizeLabels(), r.shardLabels(), r.MsgsPerSecPerCore)
}

// RenderInvariant formats only the shard-invariant simulation outcome — no
// wall-clock numbers — so the output is byte-identical for any shard count on
// any machine. The serve daemon caches this rendering.
func (r *ScalingStudyResult) RenderInvariant() string {
	var b strings.Builder
	b.WriteString("Large-topology outcome (shard-invariant, asserted identical across K):\n")
	for si := range r.Sizes {
		fmt.Fprintf(&b, "  %-10s rate %.2f: delivered %d, avg latency %.2f cycles\n",
			r.sizeLabels()[si], r.Rates[si], r.Delivered[si], r.AvgLatency[si])
	}
	return b.String()
}

// InvariantCSV exports the shard-invariant outcome per topology size.
func (r *ScalingStudyResult) InvariantCSV() string {
	var b strings.Builder
	b.WriteString("topology,rate,delivered,avg_latency\n")
	for si := range r.Sizes {
		fmt.Fprintf(&b, "%s,%.4f,%d,%.6f\n",
			r.sizeLabels()[si], r.Rates[si], r.Delivered[si], r.AvgLatency[si])
	}
	return b.String()
}
