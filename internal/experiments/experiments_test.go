package experiments

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"mlnoc/internal/rl"
	"mlnoc/internal/synfull"
)

// tinyScale keeps integration tests fast while preserving the contention
// regimes the shape assertions rely on.
func tinyScale() Scale {
	return Scale{
		TrainCycles:   8_000,
		WarmupCycles:  500,
		MeasureCycles: 3_000,
		OpScale:       0.15,
		Epochs:        5,
		EpochCycles:   600,
		Seed:          1,
	}
}

func TestTable3Relationships(t *testing.T) {
	r := Table3()
	if len(r.Reports) != 3 {
		t.Fatalf("reports = %d", len(r.Reports))
	}
	nn, rr, prop := r.Reports[0], r.Reports[1], r.Reports[2]
	if !(nn.LatencyNS > prop.LatencyNS && prop.LatencyNS > rr.LatencyNS) {
		t.Fatalf("latency ordering broken: %v %v %v", nn.LatencyNS, prop.LatencyNS, rr.LatencyNS)
	}
	if !(nn.AreaMM2 > 50*prop.AreaMM2 && prop.AreaMM2 > rr.AreaMM2) {
		t.Fatalf("area ordering broken: %v %v %v", nn.AreaMM2, prop.AreaMM2, rr.AreaMM2)
	}
	if out := r.Render(); !strings.Contains(out, "Table 3") {
		t.Fatal("render missing title")
	}
}

func TestStarvationGuard(t *testing.T) {
	res := Starvation(tinyScale())
	if len(res.Policies) != 3 {
		t.Fatalf("policies = %v", res.Policies)
	}
	naive, inspired := res.MaxQueuedLocalAge[0], res.MaxQueuedLocalAge[2]
	// The naive newest-first arbiter starves: messages stuck for most of the
	// run. Algorithm 2's local-age clause bounds waiting.
	if naive < 2*inspired {
		t.Fatalf("starvation not demonstrated: naive max age %d vs inspired %d",
			naive, inspired)
	}
	if out := res.Render(); !strings.Contains(out, "starvation") {
		t.Fatal("render missing title")
	}
}

func TestMeshStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := MeshStudy(4, tinyScale())
	if len(r.Policies) != 4 || r.Policies[3] != "Global-age" {
		t.Fatalf("policies = %v", r.Policies)
	}
	if r.Normalized[3] != 1.0 {
		t.Fatalf("global-age not normalized to 1: %v", r.Normalized)
	}
	fifo, inspired := r.Normalized[0], r.Normalized[1]
	if fifo < 1.05 {
		t.Fatalf("FIFO normalized latency %.3f; expected clearly above Global-age", fifo)
	}
	if inspired >= fifo {
		t.Fatalf("RL-inspired (%.3f) not better than FIFO (%.3f)", inspired, fifo)
	}
	// Fig. 4: with the tiny training budget the heatmap exists and is sane;
	// feature dominance is asserted by the longer core tests.
	if r.Heatmap == nil || len(r.Heatmap.Abs) != 4 {
		t.Fatal("heatmap missing")
	}
	if out := r.Render(); !strings.Contains(out, "Fig. 5") {
		t.Fatal("render missing title")
	}
	if out := r.RenderHeatmap(); !strings.Contains(out, "Fig. 4") {
		t.Fatal("heatmap render missing title")
	}
}

func TestExecSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	sc := tinyScale()
	r := ExecSweep(sc, false)
	if len(r.Workloads) != 9 {
		t.Fatalf("workloads = %v", r.Workloads)
	}
	if r.Policies[len(r.Policies)-1] != "Global-age" {
		t.Fatalf("policies = %v", r.Policies)
	}
	// Normalization: global-age column is exactly 1.
	ga := len(r.Policies) - 1
	for w := range r.Workloads {
		if r.NormAvg[w][ga] != 1 {
			t.Fatalf("row %d not normalized", w)
		}
	}
	// Headline shape: the RL-inspired arbiter beats round-robin and iSLIP on
	// mean normalized execution time, and is within a few percent of
	// global-age.
	idx := func(name string) int {
		for i, p := range r.Policies {
			if p == name {
				return i
			}
		}
		t.Fatalf("policy %s missing", name)
		return -1
	}
	rlMean := r.MeanNormAvg[idx("RL-inspired")]
	if rlMean >= r.MeanNormAvg[idx("Round-robin")] {
		t.Fatalf("RL-inspired (%.3f) not better than round-robin (%.3f)",
			rlMean, r.MeanNormAvg[idx("Round-robin")])
	}
	if rlMean >= r.MeanNormAvg[idx("iSLIP")] {
		t.Fatalf("RL-inspired (%.3f) not better than iSLIP (%.3f)",
			rlMean, r.MeanNormAvg[idx("iSLIP")])
	}
	if rlMean > 1.05 {
		t.Fatalf("RL-inspired mean %.3f not close to global-age", rlMean)
	}
	// Tail metric exists and renders.
	if out := r.RenderAvg(); !strings.Contains(out, "Fig. 9") {
		t.Fatal("avg render missing title")
	}
	if out := r.RenderTail(); !strings.Contains(out, "Fig. 10") {
		t.Fatal("tail render missing title")
	}
}

func TestMixedWorkloadsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := MixedWorkloads(tinyScale(), false)
	if len(r.Mixes) != 5 || r.Mixes[0] != "4L0H" || r.Mixes[4] != "0L4H" {
		t.Fatalf("mixes = %v", r.Mixes)
	}
	// Under-utilized 4L0H: policy choice hardly matters (paper Section 5.3).
	spread4L := rowSpread(r.NormAvg[0])
	spread0H := rowSpread(r.NormAvg[4])
	if spread4L > 0.1 {
		t.Fatalf("4L0H spread %.3f; policies should hardly matter", spread4L)
	}
	if spread0H <= spread4L {
		t.Fatalf("0L4H spread (%.3f) not larger than 4L0H (%.3f)", spread0H, spread4L)
	}
	if out := r.Render(); !strings.Contains(out, "Fig. 11") {
		t.Fatal("render missing title")
	}
}

func rowSpread(row []float64) float64 {
	lo, hi := row[0], row[0]
	for _, v := range row {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

func TestAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := Ablation(tinyScale())
	if len(r.Variants) != 4 || r.Variants[0] != "full" {
		t.Fatalf("variants = %v", r.Variants)
	}
	for w := range r.Workloads {
		if r.Norm[w][0] != 1 {
			t.Fatal("full variant not the baseline")
		}
	}
	// De-featuring the port rule must cost performance on at least one
	// workload (the paper's "up to 6.5%" claim).
	if r.MaxIncrease[1] <= 0 {
		t.Fatalf("port ablation shows no cost anywhere: %+v", r.MaxIncrease)
	}
	if out := r.Render(); !strings.Contains(out, "ablation") {
		t.Fatal("render missing title")
	}
}

// TestAblationCtxCancellation checks the server-job contract on a real sweep
// runner: cancelling the context after the first finished cell makes the
// sweep return ctx.Err() promptly (without running every remaining cell)
// instead of completing the whole grid.
func TestAblationCtxCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	ctx, cancel := context.WithCancel(context.Background())
	var cells int32
	tel := &Telemetry{Progress: func(done, total int, label string) {
		atomic.AddInt32(&cells, 1)
		cancel()
	}}
	r, err := AblationCtx(ctx, tinyScale(), tel)
	if r != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned (%v, %v), want (nil, context.Canceled)", r, err)
	}
	total := int32(len(synfull.Catalog()) * 4)
	if done := atomic.LoadInt32(&cells); done >= total {
		t.Fatalf("cancelled sweep still ran all %d/%d cells", done, total)
	}
}

func TestRewardCurvesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy")
	}
	sc := tinyScale()
	sc.Epochs, sc.EpochCycles = 8, 800
	r := RewardCurves(sc)
	if len(r.Names) != 3 || r.Names[0] != "global_age" {
		t.Fatalf("names = %v", r.Names)
	}
	for i, c := range r.Curves {
		if len(c) != sc.Epochs {
			t.Fatalf("curve %d has %d points, want %d", i, len(c), sc.Epochs)
		}
	}
	if out := r.Render(); !strings.Contains(out, "Fig. 12") {
		t.Fatal("render missing title")
	}
}

func TestFeatureCurvesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy")
	}
	sc := tinyScale()
	sc.Epochs, sc.EpochCycles = 6, 800
	r := FeatureCurves(sc)
	want := []string{"payload", "localage", "distance", "hop", "allfeature"}
	for i, n := range want {
		if r.Names[i] != n {
			t.Fatalf("names = %v", r.Names)
		}
	}
	if out := r.Render(); !strings.Contains(out, "Fig. 13") {
		t.Fatal("render missing title")
	}
}

func TestClassicFactoriesFresh(t *testing.T) {
	fs := ClassicFactories()
	if len(fs) != 4 {
		t.Fatalf("factories = %d", len(fs))
	}
	for _, f := range fs {
		// Stateful policies must not share instances across runs. FIFO and
		// Global-age are stateless zero-size structs, for which Go may
		// legitimately return identical pointers.
		if f.Name == "FIFO" {
			continue
		}
		a, b := f.New(1), f.New(1)
		if a == b {
			t.Fatalf("%s factory returned a shared instance", f.Name)
		}
	}
}

func TestMeshRate(t *testing.T) {
	if MeshRate(4) <= 0 || MeshRate(8) <= 0 {
		t.Fatal("non-positive rates")
	}
	if MeshRate(8) >= MeshRate(4) {
		t.Fatal("larger meshes must use lower per-node rates")
	}
}

func TestTrainAPUSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy")
	}
	sc := tinyScale()
	sc.TrainCycles = 1_500
	agent := TrainAPU(sc)
	if agent.Decisions() == 0 {
		t.Fatal("APU training made no arbitration decisions")
	}
	agent.Freeze()
	h := APUHeatmapFromAgent(agent)
	if len(h.Abs) != 12 || len(h.Abs[0]) != 42 {
		t.Fatalf("APU heatmap shape %dx%d, want 12x42", len(h.Abs), len(h.Abs[0]))
	}
	if out := RenderAPUHeatmap(h); !strings.Contains(out, "Fig. 7") {
		t.Fatal("render missing title")
	}
}

func TestHillClimbReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy")
	}
	sc := tinyScale()
	sc.Epochs, sc.EpochCycles = 4, 400
	out := HillClimbReport(sc)
	if !strings.Contains(out, "hill-climbing") || !strings.Contains(out, "selected") {
		t.Fatalf("hill climb report malformed:\n%s", out)
	}
}

var _ = rl.RewardGlobalAge // document the reward default used throughout

func TestFairnessShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := Fairness(tinyScale())
	if len(r.Policies) != 9 {
		t.Fatalf("policies = %v", r.Policies)
	}
	idx := func(name string) int {
		for i, p := range r.Policies {
			if p == name {
				return i
			}
		}
		t.Fatalf("missing %s", name)
		return -1
	}
	ga, rr := idx("global-age"), idx("round-robin")
	// Global-age provides equality of service: best fairness index and the
	// lowest maximum latency among the compared policies.
	if r.Jain[ga] <= r.Jain[rr] {
		t.Fatalf("global-age Jain %.3f not better than round-robin %.3f",
			r.Jain[ga], r.Jain[rr])
	}
	if r.Max[ga] >= r.Max[rr] {
		t.Fatalf("global-age max latency %.0f not lower than round-robin %.0f",
			r.Max[ga], r.Max[rr])
	}
	for i, j := range r.Jain {
		if j <= 0 || j > 1 {
			t.Fatalf("Jain index %d = %v out of (0,1]", i, j)
		}
	}
	if out := r.Render(); !strings.Contains(out, "Equality of service") {
		t.Fatal("render missing title")
	}
}

func TestQTableStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy")
	}
	sc := tinyScale()
	r := QTableStudy(sc)
	// The table must grow monotonically through training and keep growing in
	// the final quarter (the paper's impracticality argument).
	for i := 1; i < 4; i++ {
		if r.GrowthAt[i] < r.GrowthAt[i-1] {
			t.Fatalf("table shrank: %v", r.GrowthAt)
		}
	}
	if r.GrowthAt[3] <= r.GrowthAt[2] {
		t.Fatalf("table stopped growing: %v", r.GrowthAt)
	}
	if r.States < 100 {
		t.Fatalf("only %d states; discretization too coarse to demonstrate growth", r.States)
	}
	if r.DQLParams != 1155 { // 60*15+15 + 15*15+15
		t.Fatalf("DQL params = %d, want 1155", r.DQLParams)
	}
	if r.TabularLatency <= 0 || r.DQLLatency <= 0 {
		t.Fatal("missing latencies")
	}
	if out := r.Render(); !strings.Contains(out, "tabular") {
		t.Fatal("render missing title")
	}
}

func TestFlitCheckShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := FlitCheck(tinyScale())
	if len(r.Policies) != 4 || r.Policies[3] != "Global-age" {
		t.Fatalf("policies = %v", r.Policies)
	}
	ga, fifo, rl := r.Normalized[3], r.Normalized[1], r.Normalized[2]
	if ga != 1 {
		t.Fatalf("normalization broken: %v", r.Normalized)
	}
	if fifo < 1.2 {
		t.Fatalf("flit-level FIFO %.3f not clearly worse than global-age", fifo)
	}
	if rl >= fifo {
		t.Fatalf("flit-level RL-inspired (%.3f) not better than FIFO (%.3f)", rl, fifo)
	}
	if out := r.Render(); !strings.Contains(out, "Flit-level") {
		t.Fatal("render missing title")
	}
}

func TestBufferAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := BufferAblation(tinyScale())
	if len(r.Caps) != 4 || r.Caps[0] != 1 {
		t.Fatalf("caps = %v", r.Caps)
	}
	// The FIFO/GA gap must be largest with the shallowest buffers and shrink
	// toward parity as buffers deepen.
	if r.FIFOOverGA[0] < 1.1 {
		t.Fatalf("cap-1 gap %.3f too small", r.FIFOOverGA[0])
	}
	last := r.FIFOOverGA[len(r.FIFOOverGA)-1]
	if last > r.FIFOOverGA[0] {
		t.Fatalf("gap grew with buffer depth: %v", r.FIFOOverGA)
	}
	if last < 0.9 || last > 1.15 {
		t.Fatalf("deep-buffer gap %.3f not near parity", last)
	}
	if out := r.Render(); !strings.Contains(out, "buffer capacity") {
		t.Fatal("render missing title")
	}
}

func TestTieBreakAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r := TieBreakAblation(tinyScale())
	if r.MaxAgeFixed < 3*r.MaxAgeRotating {
		t.Fatalf("fixed tie-break max age %d not clearly worse than rotating %d",
			r.MaxAgeFixed, r.MaxAgeRotating)
	}
	if out := r.Render(); !strings.Contains(out, "tie-break") {
		t.Fatal("render missing title")
	}
}
