package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestScalingStudyDeterminism runs the scaling study at test scale on a mesh
// and a torus. The study itself asserts the bit-identity contract (an error
// means a shard count diverged from the sequential run), so the test mostly
// pins that the assertion machinery is wired and the outputs are populated.
func TestScalingStudyDeterminism(t *testing.T) {
	sc := Scale{WarmupCycles: 200, MeasureCycles: 600, Seed: 5}
	for _, torus := range []bool{false, true} {
		res, err := ScalingStudy([]int{4, 8}, []int{1, 2, 4}, torus, sc)
		if err != nil {
			t.Fatalf("torus=%v: %v", torus, err)
		}
		for si := range res.Sizes {
			if res.Delivered[si] == 0 {
				t.Fatalf("torus=%v size %d delivered nothing", torus, res.Sizes[si])
			}
			for ki := range res.Shards {
				if res.MsgsPerSecPerCore[si][ki] <= 0 {
					t.Fatalf("torus=%v cell (%d,%d) has no throughput", torus, si, ki)
				}
			}
		}
		out := res.Render()
		for _, want := range []string{"messages/sec/core", "Speedup", "delivered"} {
			if !strings.Contains(out, want) {
				t.Fatalf("Render missing %q:\n%s", want, out)
			}
		}
		if csv := res.CSV(); !strings.Contains(csv, "topology") {
			t.Fatalf("CSV missing header: %q", csv)
		}
	}
}

// TestLargeMeshShardsReported pins that the run reports the effective shard
// count and the deterministic fields are shard-invariant for a single size.
func TestLargeMeshShardsReported(t *testing.T) {
	sc := Scale{WarmupCycles: 100, MeasureCycles: 400, Seed: 9}
	base, err := LargeMeshCtx(context.Background(), LargeMeshConfig{Size: 8, Shards: 1}, sc)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := LargeMeshCtx(context.Background(), LargeMeshConfig{Size: 8, Shards: 4}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if base.Shards != 1 || sharded.Shards != 4 {
		t.Fatalf("shard counts reported as %d/%d, want 1/4", base.Shards, sharded.Shards)
	}
	if base.Delivered != sharded.Delivered || base.AvgLatency != sharded.AvgLatency ||
		base.Injected != sharded.Injected || base.Cycles != sharded.Cycles {
		t.Fatalf("deterministic fields diverge: K=1 %+v, K=4 %+v", base, sharded)
	}
}
