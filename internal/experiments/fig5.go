package experiments

import (
	"fmt"
	"strings"

	"mlnoc/internal/arb"
	"mlnoc/internal/core"
	"mlnoc/internal/noc"
	"mlnoc/internal/rl"
	"mlnoc/internal/viz"
)

// MeshRate returns the uniform-random injection rate (messages per node per
// cycle) used by the Section 3.2 study for the given mesh edge size. The
// rates sit at the onset of saturation, where the paper evaluates ("NoCs
// under heavy contention"): larger meshes saturate at lower per-node rates.
func MeshRate(size int) float64 {
	if size >= 8 {
		return 0.14
	}
	return 0.23
}

// MeshStudyResult is the outcome of the Section 3.2 synthetic-traffic study
// for one mesh size: Fig. 5's latency comparison plus Fig. 4's heatmap from
// the trained agent.
type MeshStudyResult struct {
	Size       int
	Policies   []string
	AvgLatency []float64
	// Normalized is AvgLatency divided by the Global-age policy's latency —
	// the quantity plotted in Fig. 5.
	Normalized []float64
	// Heatmap is the trained agent's weight heatmap (Fig. 4 for 4x4).
	Heatmap *core.Heatmap
	// TrainCurve is the per-epoch average latency during agent training.
	TrainCurve []float64
}

// MeshStudy reproduces the Section 3.2 study on a size x size mesh: train the
// DQL agent under uniform-random traffic, freeze it, and compare FIFO, the
// RL-inspired policy, the frozen NN and Global-age arbitration.
func MeshStudy(size int, sc Scale) *MeshStudyResult {
	cfg := core.MeshTrainConfig{
		Width:       size,
		Height:      size,
		VCs:         3,
		Rate:        MeshRate(size),
		Hidden:      15,
		Epochs:      int(sc.TrainCycles / 1000),
		EpochCycles: 1000,
		Reward:      rl.RewardGlobalAge,
		Seed:        sc.Seed,
	}
	if cfg.Epochs < 1 {
		cfg.Epochs = 1
	}
	tr := core.TrainMesh(cfg)
	tr.Agent.Freeze()

	var inspired noc.Policy
	if size >= 8 {
		inspired = core.NewRLInspiredMesh8x8()
	} else {
		inspired = core.NewRLInspiredMesh4x4()
	}

	policies := []struct {
		name string
		p    noc.Policy
	}{
		{"FIFO", arb.NewFIFO()},
		{"RL-inspired", inspired},
		{"NN", tr.Agent},
		{"Global-age", arb.NewGlobalAge()},
	}

	res := &MeshStudyResult{
		Size:       size,
		Heatmap:    core.NewHeatmap(tr.Spec, tr.Agent.Net()),
		TrainCurve: tr.Curve,
	}
	for _, pp := range policies {
		run := core.EvaluateMeshPolicy(cfg, pp.p, sc.WarmupCycles, sc.MeasureCycles)
		res.Policies = append(res.Policies, pp.name)
		res.AvgLatency = append(res.AvgLatency, run.AvgLatency)
	}
	base := res.AvgLatency[len(res.AvgLatency)-1] // Global-age
	for _, v := range res.AvgLatency {
		res.Normalized = append(res.Normalized, v/base)
	}
	return res
}

// Render formats the result as a Fig. 5 panel.
func (r *MeshStudyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 (%dx%d mesh, uniform random): avg latency normalized to Global-age\n",
		r.Size, r.Size)
	rows := make([][]string, len(r.Policies))
	for i := range r.Policies {
		rows[i] = []string{
			r.Policies[i],
			fmt.Sprintf("%.2f", r.AvgLatency[i]),
			fmt.Sprintf("%.3f", r.Normalized[i]),
		}
	}
	b.WriteString(viz.Table([]string{"policy", "avg latency (cycles)", "normalized"}, rows))
	return b.String()
}

// RenderHeatmap formats the trained agent's weight heatmap (Fig. 4).
func (r *MeshStudyResult) RenderHeatmap() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 (%dx%d agent): mean |weight| of hidden-layer inputs\n", r.Size, r.Size)
	b.WriteString(viz.Heatmap(r.Heatmap.RowLabels, r.Heatmap.ColLabels, r.Heatmap.Abs))
	b.WriteString("feature importance (row means, descending):\n")
	for _, row := range r.Heatmap.RankedRows() {
		fmt.Fprintf(&b, "  %-18s %.4f\n", r.Heatmap.RowLabels[row], r.Heatmap.RowMean(row))
	}
	return b.String()
}
