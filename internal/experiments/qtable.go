package experiments

import (
	"fmt"
	"strings"

	"mlnoc/internal/arb"
	"mlnoc/internal/core"
	"mlnoc/internal/noc"
	"mlnoc/internal/traffic"
	"mlnoc/internal/viz"
)

// QTableResult quantifies the paper's Section 2.2 argument against tabular
// Q-learning for NoC arbitration: the table grows with every distinct traffic
// situation while the DQL network's parameter count stays fixed, and at an
// equal training budget the table generalizes worse.
type QTableResult struct {
	// TrainCycles is the shared training budget.
	TrainCycles int64
	// States and TableBytes describe the trained Q-table; growth checkpoints
	// record distinct-state counts at training fractions 25/50/75/100%.
	States     int
	TableBytes int64
	GrowthAt   [4]int
	// DQLParams is the MLP's fixed parameter count.
	DQLParams int
	// Latencies of the frozen policies plus baselines on identical traffic.
	TabularLatency, DQLLatency, FIFOLatency, GlobalAgeLatency float64
}

// QTableStudy trains a tabular agent and the DQL agent on the same 4x4 mesh
// traffic for the same number of cycles and compares table growth and
// evaluation latency.
func QTableStudy(sc Scale) *QTableResult {
	cfg := core.MeshTrainConfig{
		Width: 4, Height: 4,
		Epochs:      int(sc.TrainCycles / 1000),
		EpochCycles: 1000,
		Seed:        sc.Seed,
	}
	if cfg.Epochs < 4 {
		cfg.Epochs = 4
	}
	res := &QTableResult{TrainCycles: int64(cfg.Epochs) * cfg.EpochCycles}

	// Train the tabular agent, sampling table growth at quarter points.
	spec := core.MeshSpec(3)
	tab := core.NewTabularAgent(spec, sc.Seed)
	net, cores := noc.BuildMeshCores(noc.Config{
		Width: cfg.Width, Height: cfg.Height, VCs: 3, BufferCap: 1,
	})
	net.SetPolicy(tab)
	net.OnCycle = tab.OnCycle
	in := traffic.NewInjector(cores, traffic.UniformRandom{}, MeshRate(4),
		newSeededRNG(sc.Seed+1))
	in.Classes = 3
	total := res.TrainCycles
	for i := int64(0); i < total; i++ {
		in.Tick()
		net.Step()
		for q := 0; q < 4; q++ {
			if i == (total*int64(q+1))/4-1 {
				res.GrowthAt[q] = tab.Table.States()
			}
		}
	}
	res.States = tab.Table.States()
	res.TableBytes = tab.Table.Bytes()
	tab.Freeze()

	// Train the DQL agent with the same budget.
	tr := core.TrainMesh(cfg)
	tr.Agent.Freeze()
	res.DQLParams = tr.Agent.Net().NumParams()

	// Paired evaluation.
	res.TabularLatency = core.EvaluateMeshPolicy(cfg, tab, sc.WarmupCycles, sc.MeasureCycles).AvgLatency
	res.DQLLatency = core.EvaluateMeshPolicy(cfg, tr.Agent, sc.WarmupCycles, sc.MeasureCycles).AvgLatency
	res.FIFOLatency = core.EvaluateMeshPolicy(cfg, arb.NewFIFO(), sc.WarmupCycles, sc.MeasureCycles).AvgLatency
	res.GlobalAgeLatency = core.EvaluateMeshPolicy(cfg, arb.NewGlobalAge(), sc.WarmupCycles, sc.MeasureCycles).AvgLatency
	return res
}

// Render formats the comparison.
func (r *QTableResult) Render() string {
	var b strings.Builder
	b.WriteString("Section 2.2: tabular Q-learning vs deep Q-learning (4x4 mesh)\n")
	fmt.Fprintf(&b, "training budget: %d cycles\n\n", r.TrainCycles)
	fmt.Fprintf(&b, "Q-table growth (distinct discretized states at 25/50/75/100%% of training):\n")
	fmt.Fprintf(&b, "  %d -> %d -> %d -> %d states (%.1f KiB; still growing)\n",
		r.GrowthAt[0], r.GrowthAt[1], r.GrowthAt[2], r.GrowthAt[3],
		float64(r.TableBytes)/1024)
	fmt.Fprintf(&b, "DQL network: %d parameters (fixed)\n\n", r.DQLParams)
	rows := [][]string{
		{"q-table", fmt.Sprintf("%.2f", r.TabularLatency)},
		{"dql-nn", fmt.Sprintf("%.2f", r.DQLLatency)},
		{"fifo", fmt.Sprintf("%.2f", r.FIFOLatency)},
		{"global-age", fmt.Sprintf("%.2f", r.GlobalAgeLatency)},
	}
	b.WriteString(viz.Table([]string{"policy", "avg latency"}, rows))
	b.WriteString("The table only knows states it has visited; the network interpolates.\n")
	return b.String()
}
