package experiments

import (
	"fmt"
	"strings"

	"mlnoc/internal/core"
	"mlnoc/internal/rl"
	"mlnoc/internal/viz"
)

// CurveResult holds a family of training curves over a shared epoch axis
// (Figs. 12 and 13: average message latency vs. training time).
type CurveResult struct {
	Title  string
	Names  []string
	Curves [][]float64
}

// Render formats the curves as an epoch-indexed series table.
func (r *CurveResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Title)
	b.WriteByte('\n')
	n := 0
	for _, c := range r.Curves {
		if len(c) > n {
			n = len(c)
		}
	}
	xs := make([]string, n)
	for i := range xs {
		xs[i] = fmt.Sprintf("%d", i+1)
	}
	b.WriteString(viz.Series("epoch", xs, r.Names, r.Curves))
	b.WriteString("final latency (mean of last quarter):\n")
	for i, c := range r.Curves {
		fmt.Fprintf(&b, "  %-12s %.2f\n", r.Names[i], (&core.TrainResult{Curve: c}).FinalLatency())
	}
	return b.String()
}

// curveMeshConfig is the shared training setup for Figs. 12 and 13: the 8x8
// mesh under uniform-random traffic just below saturation. Below saturation a
// well-trained arbiter keeps source backlogs — and hence the per-epoch
// latency curve — bounded, while a poorly rewarded agent lets the network
// saturate and its curve climb, which is exactly the contrast Fig. 12 shows.
func curveMeshConfig(sc Scale) core.MeshTrainConfig {
	return core.MeshTrainConfig{
		Width:       8,
		Height:      8,
		VCs:         3,
		Rate:        0.12,
		Hidden:      15,
		Epochs:      sc.Epochs,
		EpochCycles: sc.EpochCycles,
		Seed:        sc.Seed,
	}
}

// RewardCurves reproduces Fig. 12: train the agent with each Section 6.3
// reward function and record the latency curve. Only the global-age reward
// should converge to low latency.
func RewardCurves(sc Scale) *CurveResult {
	res := &CurveResult{
		Title: "Fig. 12: avg message latency vs training time, per reward function",
	}
	for _, kind := range []rl.RewardKind{rl.RewardGlobalAge, rl.RewardAccLatency, rl.RewardLinkUtil} {
		cfg := curveMeshConfig(sc)
		cfg.Reward = kind
		tr := core.TrainMesh(cfg)
		res.Names = append(res.Names, kind.String())
		res.Curves = append(res.Curves, tr.Curve)
	}
	return res
}

// FeatureCurves reproduces Fig. 13: train the agent with a single input
// feature at a time (payload, local age, distance, hop count) plus the full
// feature set, and record the latency curves. Local age should be the best
// single feature.
func FeatureCurves(sc Scale) *CurveResult {
	res := &CurveResult{
		Title: "Fig. 13: avg message latency vs training time, per input feature",
	}
	cases := []struct {
		name  string
		feats core.FeatureSet
	}{
		{"payload", core.FeatureSet{core.FeatPayload}},
		{"localage", core.FeatureSet{core.FeatLocalAge}},
		{"distance", core.FeatureSet{core.FeatDistance}},
		{"hop", core.FeatureSet{core.FeatHopCount}},
		{"allfeature", core.MeshFeatures},
	}
	for _, c := range cases {
		cfg := curveMeshConfig(sc)
		cfg.Features = c.feats
		tr := core.TrainMesh(cfg)
		res.Names = append(res.Names, c.name)
		res.Curves = append(res.Curves, tr.Curve)
	}
	return res
}

// HillClimbReport runs the Section 6.5 hill-climbing feature selection on the
// 4x4 mesh and renders the selection path.
func HillClimbReport(sc Scale) string {
	cfg := core.MeshTrainConfig{
		Width: 4, Height: 4, VCs: 3,
		Rate:        MeshRate(4),
		Hidden:      15,
		Epochs:      sc.Epochs / 2,
		EpochCycles: sc.EpochCycles,
		Seed:        sc.Seed,
	}
	if cfg.Epochs < 2 {
		cfg.Epochs = 2
	}
	hc := core.HillClimb(cfg, nil, 3)
	var b strings.Builder
	b.WriteString("Section 6.5 hill-climbing feature selection (4x4 mesh):\n")
	for i, step := range hc.Steps {
		fmt.Fprintf(&b, "round %d:\n", i+1)
		for f, lat := range step.Tried {
			fmt.Fprintf(&b, "    try +%-18s -> %.2f cycles\n", f, lat)
		}
		fmt.Fprintf(&b, "  selected %q (latency %.2f)\n", step.Added.String(), step.Latency)
	}
	fmt.Fprintf(&b, "final set: %v (latency %.2f)\n", featureNames(hc.Best), hc.BestLatency)
	return b.String()
}

func featureNames(fs core.FeatureSet) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	return out
}
