package noc

import "fmt"

// Buffer is one virtual-channel input FIFO of a router port.
type Buffer struct {
	q        []*Message
	reserved int   // slots reserved by in-flight granted messages
	lastArr  int64 // cycle of the most recent arrival, -1 if none
	cap      int

	// owner/bit wire the buffer into its router's occupancy bitmask: bit
	// port*VCs+vc of owner.occ is set iff the buffer is non-empty. owner is
	// nil when occupancy tracking is disabled (ports*VCs > 64).
	owner *Router
	bit   uint8
}

// Len returns the number of messages queued in the buffer.
func (b *Buffer) Len() int { return len(b.q) }

// Head returns the message at the head of the buffer, or nil if empty.
func (b *Buffer) Head() *Message {
	if len(b.q) == 0 {
		return nil
	}
	return b.q[0]
}

// Free reports whether the buffer can accept one more message, counting
// reservations made for messages currently in flight toward it.
func (b *Buffer) Free() bool { return len(b.q)+b.reserved < b.cap }

// At returns the i-th queued message (0 is the head).
func (b *Buffer) At(i int) *Message { return b.q[i] }

// Cap returns the buffer capacity in messages.
func (b *Buffer) Cap() int { return b.cap }

func (b *Buffer) push(now int64, m *Message) {
	if b.lastArr >= 0 {
		m.ArrivalGap = now - b.lastArr
	} else {
		m.ArrivalGap = 0
	}
	b.lastArr = now
	m.ArrivalCycle = now
	b.q = append(b.q, m)
	if b.owner != nil && len(b.q) == 1 {
		r := b.owner
		if r.occ == 0 {
			r.net.activateRouter(r)
		}
		r.occ |= 1 << b.bit
		// The push exposed a new head; its unreachable verdict is unknown.
		r.net.markEvictDirty(r)
	}
}

func (b *Buffer) pop() *Message {
	m := b.q[0]
	copy(b.q, b.q[1:])
	b.q[len(b.q)-1] = nil
	b.q = b.q[:len(b.q)-1]
	if b.owner != nil {
		r := b.owner
		if len(b.q) == 0 {
			r.occ &^= 1 << b.bit
			if r.occ == 0 {
				r.net.deactivateRouter(r)
			}
		} else {
			// The pop exposed the successor as the new head; its unreachable
			// verdict is unknown.
			r.net.markEvictDirty(r)
		}
	}
	return m
}

// syncOcc re-derives the buffer's occupancy bit from its queue length. Code
// that rewrites b.q wholesale (instead of going through push/pop) must call
// it afterwards.
func (b *Buffer) syncOcc() {
	if b.owner == nil {
		return
	}
	r := b.owner
	was := r.occ
	if len(b.q) == 0 {
		r.occ &^= 1 << b.bit
	} else {
		r.occ |= 1 << b.bit
	}
	if was == 0 && r.occ != 0 {
		r.net.activateRouter(r)
	} else if was != 0 && r.occ == 0 {
		r.net.deactivateRouter(r)
	}
	// A wholesale queue rewrite may have put any message at the head.
	r.net.markEvictDirty(r)
}

// Router is one mesh router. Each port has one input buffer per virtual
// channel (message class). Output ports are arbitrated independently, one
// grant per cycle, and stay busy for the granted message's flit count.
type Router struct {
	id    int
	Coord Coord

	net *Network

	// peers[p] is what port p connects to: a neighboring router, an attached
	// node, or nothing.
	peerRouter [MaxPorts]*Router
	peerNode   [MaxPorts]*Node

	// in[p][vc] is the input buffer of port p, virtual channel vc. Ports
	// without a peer have nil buffer slices.
	in [MaxPorts][]*Buffer

	// outBusyUntil[p] is the first cycle at which output port p is free.
	outBusyUntil [MaxPorts]int64

	// inGrantedAt[p] is the last cycle input port p forwarded a message,
	// enforcing the one-message-per-input-port-per-cycle constraint.
	inGrantedAt [MaxPorts]int64

	// linkDown[p] marks the outgoing link at port p as failed: the output
	// accepts no grants until the link is restored (Network.SetLinkDown).
	linkDown [MaxPorts]bool

	// frozen marks the whole router as fault-frozen: it makes no grants,
	// though its input buffers still accept in-flight arrivals.
	frozen bool

	// occ is the input-buffer occupancy bitmask: bit p*VCs+vc is set iff
	// in[p][vc] is non-empty. Maintained by Buffer push/pop when the network
	// enables occupancy tracking; arbitration iterates set bits instead of
	// scanning every (port, VC) pair.
	occ uint64

	// actWord/actMask locate this router's bit in the network-level activity
	// and evict-dirty bitmaps (actWord = id/64, actMask = 1<<(id%64)),
	// precomputed so the occ 0<->nonzero transitions in Buffer push/pop cost
	// two loads and an OR instead of two shifts.
	actWord int
	actMask uint64

	nPorts int // number of connected ports (for stats/diagnostics)
}

// ID returns the router's dense index within its network.
func (r *Router) ID() int { return r.id }

// HasPort reports whether port p is connected (to a neighbor router or to an
// attached node).
func (r *Router) HasPort(p PortID) bool {
	return r.peerRouter[p] != nil || r.peerNode[p] != nil
}

// NumPorts returns the number of connected ports.
func (r *Router) NumPorts() int { return r.nPorts }

// Neighbor returns the router connected at direction port p, or nil.
func (r *Router) Neighbor(p PortID) *Router { return r.peerRouter[p] }

// AttachedNode returns the node attached at port p, or nil.
func (r *Router) AttachedNode(p PortID) *Node { return r.peerNode[p] }

// Buffer returns the input buffer for (port, vc), or nil if the port is not
// connected.
func (r *Router) Buffer(p PortID, vc int) *Buffer {
	if r.in[p] == nil {
		return nil
	}
	return r.in[p][vc]
}

// NumVCs returns the number of virtual channels per port.
func (r *Router) NumVCs() int { return r.net.cfg.VCs }

// OutputBusy reports whether output port p is still serializing a previously
// granted message at the given cycle.
func (r *Router) OutputBusy(p PortID, now int64) bool {
	return r.outBusyUntil[p] > now
}

// ForwardedThisCycle reports whether input port p forwarded a message during
// the given cycle. After arbitration (e.g. inside an OnCycle hook), a queued
// head on a port that did not forward was blocked for the cycle.
func (r *Router) ForwardedThisCycle(p PortID, now int64) bool {
	return r.inGrantedAt[p] == now
}

// QueuedMessages returns the total number of messages queued in all input
// buffers of the router.
func (r *Router) QueuedMessages() int {
	total := 0
	for p := 0; p < MaxPorts; p++ {
		for _, b := range r.in[p] {
			total += b.Len()
		}
	}
	return total
}

// LinkUp reports whether the outgoing link at port p is healthy. Ports never
// taken down by Network.SetLinkDown are always up.
func (r *Router) LinkUp(p PortID) bool { return !r.linkDown[p] }

// Frozen reports whether the router is fault-frozen (making no grants).
func (r *Router) Frozen() bool { return r.frozen }

// Route returns the output port the installed routing algorithm picks for m
// at this router, or RouteUnreachable when no healthy path exists. Without
// an installed Routing it is dimension-ordered X-Y routing.
func (r *Router) Route(m *Message) PortID {
	if rt := r.net.routing; rt != nil {
		return rt.Route(r, m)
	}
	return r.XYPort(m)
}

// XYPort returns the dimension-ordered X-Y output port for m at this router:
// correct X first, then Y, then the destination node's attach port. It is
// the default routing function and the reference fault-aware routers deviate
// from only around dead links (the engine counts such deviations as
// reroutes). On a torus each dimension takes the shorter way around its ring
// (see DirToward), so it stays a pure function of (router, destination) and
// the route memo remains valid.
func (r *Router) XYPort(m *Message) PortID {
	dst := r.net.nodes[m.Dst]
	if dst.Router == r {
		return dst.Port
	}
	return r.DirToward(dst.Router.Coord)
}

// DirToward returns the dimension-ordered routing direction from r toward
// router coordinate dc: correct X first, then Y. On a mesh it is the plain
// X-Y comparison; on a torus each dimension takes the shorter way around its
// ring, with the tie at exactly half an even ring broken deterministically
// toward east/south. dc must differ from r.Coord.
func (r *Router) DirToward(dc Coord) PortID {
	cfg := &r.net.cfg
	if dc.X != r.Coord.X {
		if !cfg.Torus {
			if dc.X > r.Coord.X {
				return PortEast
			}
			return PortWest
		}
		fwd := dc.X - r.Coord.X // eastward hops, modulo the ring
		if fwd < 0 {
			fwd += cfg.Width
		}
		if 2*fwd <= cfg.Width {
			return PortEast
		}
		return PortWest
	}
	if dc.Y == r.Coord.Y {
		panic("noc: DirToward called with the router's own coordinate")
	}
	if !cfg.Torus {
		if dc.Y > r.Coord.Y {
			return PortSouth
		}
		return PortNorth
	}
	fwd := dc.Y - r.Coord.Y // southward hops, modulo the ring
	if fwd < 0 {
		fwd += cfg.Height
	}
	if 2*fwd <= cfg.Height {
		return PortSouth
	}
	return PortNorth
}

// String implements fmt.Stringer.
func (r *Router) String() string {
	return fmt.Sprintf("router#%d%s ports=%d", r.id, r.Coord, r.nPorts)
}
