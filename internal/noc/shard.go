package noc

import "math/bits"

// Sharded two-phase stepping.
//
// SetShards(K) with K > 1 splits the router array into K contiguous shards
// and turns the arbitrate stage of Step into two phases:
//
//   - Phase 1 (parallel): each shard scans its routers' occupancy bitmasks
//     against the committed state of the cycle — one Route call per buffered
//     head — and buckets the heads whose output port is grantable into a
//     per-router plan. The scan is read-only outside shard-owned memory: it
//     writes only the shard's own plans, the scanned routers' route-memo rows
//     and the scanned messages' routing scratch, all of which are owned by
//     the shard that owns the buffering router.
//   - Phase 2 (serial): one goroutine walks the routers in the same fixed
//     ascending order as the sequential engine and commits grants from the
//     plans, re-checking the two facts phase 1 could not know: whether an
//     earlier output of the same router already granted the input port this
//     cycle, and whether the downstream buffer still has space (an earlier
//     router's grant may have reserved the last slot — or freed one by
//     popping its own head). Policy Select/Match calls, grant application,
//     delivery scheduling and all stats run exclusively in this phase, in
//     the exact sequential order.
//
// Because deliveries land on future cycles and a grant pops only from the
// granting router's own buffers, every router's buffer heads are invariant
// across the whole arbitrate stage — so phase 1's head snapshot is exact,
// and the only state that moves under phase 2's feet is what it re-checks
// live. A seeded run is therefore bit-identical to the sequential engine for
// any shard count (pinned by TestShardInvariance). See DESIGN.md §13.
//
// A router whose scan meets a RouteUnreachable head falls back wholesale:
// phase 2 replays the sequential evict + arbitrate sequence for it, because
// evicting a head exposes a successor the scan never saw.

// ShardSafeRouting marks a Routing implementation as safe for the parallel
// phase-1 scan: Route must depend only on the queried router, the message,
// and state that does not change during arbitration (topology, link health,
// routing tables rebuilt from fault events), and may write only to the
// message itself. Routings that do not implement it — or return false — force
// the network back to sequential stepping regardless of SetShards.
type ShardSafeRouting interface {
	Routing
	ShardSafe() bool
}

// routerPlan is one router's phase-1 output: for each output port with at
// least one grantable head, the candidate group in (input port, VC) ascending
// order — the exact order the sequential gather produces.
type routerPlan struct {
	cands    []Candidate     // per-output groups, packed ascending by output
	off, cnt [MaxPorts]uint8 // group bounds: cands[off[out]:off[out]+cnt[out]]
	filled   uint32          // bitmask of outputs with a non-empty group
	fallback bool            // unreachable head seen; replay sequentially
}

// shardScratch is per-shard bucketing scratch for the phase-1 scan, mirroring
// the sequential engine's Network.outHeads.
type shardScratch struct {
	outHeads [MaxPorts][]Candidate
}

// SetShards sets the number of router shards stepped in parallel during
// arbitration. K <= 1 restores pure sequential stepping and stops the worker
// goroutines; K is clamped to the router count. Seeded runs are bit-identical
// across every K. Call SetShards(1) when done with a network to release its
// workers.
//
// Sharding engages only while the network is in a shardable configuration:
// occupancy tracking on (MaxPorts*VCs <= 64) and either built-in X-Y routing
// or an installed ShardSafeRouting. Otherwise Step silently runs the
// sequential engine, so SetShards is always safe to call.
func (n *Network) SetShards(k int) {
	if k < 1 {
		k = 1
	}
	if k > len(n.routers) {
		k = len(n.routers)
	}
	if k == n.shards || (k == 1 && n.shards == 0) {
		return
	}
	n.stopShardWorkers()
	n.shards = k
	if k == 1 {
		return
	}
	n.shardBounds = make([]int, k+1)
	for i := 0; i <= k; i++ {
		n.shardBounds[i] = i * len(n.routers) / k
	}
	if len(n.plans) != len(n.routers) {
		n.plans = make([]routerPlan, len(n.routers))
	}
	n.shardHeads = make([]shardScratch, k)
	n.shardWake = make([]chan struct{}, k-1)
	n.shardDone = make(chan struct{}, k-1)
	for i := range n.shardWake {
		wake := make(chan struct{}, 1)
		n.shardWake[i] = wake
		shard := i + 1
		go func() {
			for range wake {
				n.scanShard(shard)
				n.shardDone <- struct{}{}
			}
		}()
	}
}

// Shards returns the configured shard count (1 when sequential).
func (n *Network) Shards() int {
	if n.shards < 1 {
		return 1
	}
	return n.shards
}

// stopShardWorkers terminates the phase-1 worker goroutines. Only called
// between cycles, so no wake is ever pending when the channels close.
func (n *Network) stopShardWorkers() {
	for _, wake := range n.shardWake {
		close(wake)
	}
	n.shardWake = nil
	n.shardDone = nil
}

// shardReady reports whether this cycle's arbitration may run the sharded
// two-phase path, mirroring fusedScanOK's occupancy/route-memo requirements
// and additionally requiring any installed Routing to declare itself
// shard-safe.
func (n *Network) shardReady() bool {
	if !n.occTrack {
		return false
	}
	if n.routing != nil {
		sr, ok := n.routing.(ShardSafeRouting)
		return ok && sr.ShardSafe()
	}
	n.ensureRouteMemo()
	return true
}

// arbitrateSharded runs one two-phase arbitration: wake the workers, scan
// shard 0 on this goroutine, barrier on the workers, then commit serially.
func (n *Network) arbitrateSharded() {
	n.shardForks++
	for _, wake := range n.shardWake {
		wake <- struct{}{}
	}
	n.scanShard(0)
	for range n.shardWake {
		<-n.shardDone
	}
	if n.matcher != nil {
		n.commitPlansMatched()
		return
	}
	n.commitPlans()
}

// scanShard builds the phase-1 plans for every router of one shard. It runs
// concurrently with the other shards' scans and must only write shard-owned
// state (see the file comment).
//
// In faulty mode every buffered head is routed even when no output is free,
// matching the sequential engine's per-cycle evictUnreachable probe — that is
// how unreachable heads are detected and how stateful routings see the same
// per-head Route coverage.
func (n *Network) scanShard(shard int) {
	sc := &n.shardHeads[shard]
	rt := n.routing
	faulty := n.faulty
	lo, hi := n.shardBounds[shard], n.shardBounds[shard+1]
	if n.activeOK() {
		// Scan only the active routers of [lo, hi) by masking the shard's
		// boundary words of the activity bitmap. Phase 1 never mutates the
		// bitmap (it pops nothing), so the words are stable under the
		// concurrent shard scans. Plans of skipped routers go stale, which
		// is fine: phase 2 iterates the same activity snapshot, so a plan is
		// only read in the cycle that refreshed it.
		loWord := lo >> 6
		hiWord := (hi + 63) >> 6
		for wi := loWord; wi < hiWord; wi++ {
			word := n.actR[wi]
			if wi == loWord {
				word &^= (1 << (uint(lo) & 63)) - 1
			}
			if wi<<6+64 > hi {
				word &= (1 << (uint(hi) & 63)) - 1
			}
			base := wi << 6
			for ; word != 0; word &= word - 1 {
				id := base + bits.TrailingZeros64(word)
				r := n.routers[id]
				if faulty && r.frozen {
					continue
				}
				n.scanRouter(sc, rt, faulty, true, r, &n.plans[id])
			}
		}
		return
	}
	for id := lo; id < hi; id++ {
		r := n.routers[id]
		p := &n.plans[id]
		p.filled = 0
		p.fallback = false
		if (faulty && r.frozen) || r.occ == 0 {
			continue
		}
		n.scanRouter(sc, rt, faulty, false, r, p)
	}
}

// scanRouter builds one router's phase-1 plan: route every buffered head and
// bucket the grantable ones per output. The caller guarantees r.occ != 0 and
// !r.frozen.
func (n *Network) scanRouter(sc *shardScratch, rt Routing, faulty, active bool, r *Router, p *routerPlan) {
	p.filled = 0
	p.fallback = false
	vcs := n.cfg.VCs
	var freeOuts uint32
	for out := PortID(0); out < MaxPorts; out++ {
		if r.HasPort(out) && !r.linkDown[out] && !r.OutputBusy(out, n.cycle) {
			freeOuts |= 1 << out
		}
	}
	if freeOuts == 0 {
		if !faulty {
			return
		}
		// Faulty with no free output: heads are routed purely to detect
		// unreachable verdicts (and to give stateful routings the same Route
		// coverage as the sequential eviction probe). On the active-set path
		// the eviction modes prove when that probe cannot find anything:
		// built-in X-Y never returns unreachable, and under a shard-safe
		// routing a clean evict-dirty bit means every head's verdict is
		// already known reachable.
		if active {
			if n.evictMode == evictSkip {
				return
			}
			if n.evictMode == evictLazy && n.evictDirty[r.actWord]&r.actMask == 0 {
				return
			}
		}
	}
	var filled uint32
	for mask := r.occ; mask != 0; mask &= mask - 1 {
		bit := bits.TrailingZeros64(mask)
		pp := PortID(bit / vcs)
		vc := bit - int(pp)*vcs
		m := r.in[pp][vc].q[0]
		var out PortID
		if rt != nil {
			out = rt.Route(r, m)
		} else {
			out = n.xyRouteMemo(r, m)
		}
		if out == RouteUnreachable {
			// Evicting the head exposes a successor this scan never
			// routed; replay the router sequentially in phase 2.
			p.fallback = true
			return
		}
		if uint(out) >= MaxPorts || freeOuts&(1<<out) == 0 {
			continue
		}
		if filled&(1<<out) == 0 {
			filled |= 1 << out
			sc.outHeads[out] = sc.outHeads[out][:0]
		}
		sc.outHeads[out] = append(sc.outHeads[out], Candidate{Port: pp, VC: vc, Msg: m})
	}
	if filled == 0 {
		return
	}
	cands := p.cands[:0]
	for out := PortID(0); out < MaxPorts; out++ {
		if filled&(1<<out) == 0 {
			continue
		}
		p.off[out] = uint8(len(cands))
		p.cnt[out] = uint8(len(sc.outHeads[out]))
		cands = append(cands, sc.outHeads[out]...)
	}
	p.cands = cands
	p.filled = filled
}

// commitPlans is phase 2 for per-output selection policies: walk routers in
// ascending order, filter each plan group by the two live facts (input port
// already granted this cycle by an earlier output; downstream buffer full),
// and select/grant exactly as the sequential engine does.
func (n *Network) commitPlans() {
	ctx := &n.arbCtx
	*ctx = ArbContext{Net: n, Cycle: n.cycle}
	if n.activeOK() {
		// Walk the same activity snapshot phase 1 scanned (phase 1 pops
		// nothing, so the bitmap is unchanged); within phase 2 only the
		// router currently committing can clear its own bit, so per-word
		// snapshots stay exact.
		lazy := n.faulty && n.evictMode == evictLazy
		for wi, word := range n.actR {
			if word == 0 {
				continue
			}
			base := wi << 6
			for ; word != 0; word &= word - 1 {
				id := base + bits.TrailingZeros64(word)
				r := n.routers[id]
				if n.faulty && r.frozen {
					continue
				}
				n.commitRouter(ctx, r, &n.plans[id], lazy)
			}
		}
		return
	}
	for id, r := range n.routers {
		if n.faulty && r.frozen {
			continue
		}
		n.commitRouter(ctx, r, &n.plans[id], false)
	}
}

// commitRouter applies one router's phase-1 plan: fallback routers replay the
// sequential evict + arbitrate sequence; planned routers re-check the two
// live facts (input port already granted, downstream space) per group and
// select/grant exactly as the sequential engine does. With lazy set the
// router's evict-dirty bit is cleared after its eviction coverage is current
// (phase 1 routed every head or a fallback eviction just re-probed them) and
// before any grant pops can re-mark it — the same evict, clear, grant order
// the sequential maybeEvict path produces.
func (n *Network) commitRouter(ctx *ArbContext, r *Router, p *routerPlan, lazy bool) {
	if p.fallback {
		n.evictUnreachable(r)
		if lazy {
			n.evictDirty[r.actWord] &^= r.actMask
		}
		ctx.Router = r
		n.arbitrateRouterLegacy(ctx, r)
		return
	}
	if lazy {
		n.evictDirty[r.actWord] &^= r.actMask
	}
	if p.filled == 0 {
		return
	}
	ctx.Router = r
	for out := PortID(0); out < MaxPorts; out++ {
		if p.filled&(1<<out) == 0 {
			continue
		}
		group := p.cands[p.off[out] : int(p.off[out])+int(p.cnt[out])]
		var down []*Buffer
		if next := r.peerRouter[out]; next != nil {
			down = next.in[out.Opposite()]
		}
		cands := n.candScratch[:0]
		for _, c := range group {
			if r.inGrantedAt[c.Port] == n.cycle {
				continue
			}
			if down != nil && !down[c.VC].Free() {
				continue
			}
			cands = append(cands, c)
		}
		n.candScratch = cands
		if len(cands) == 0 {
			continue
		}
		ctx.Out = out
		n.selectAndGrant(ctx, r, out, cands)
	}
}

// commitPlansMatched is phase 2 for whole-router matchers: build each
// router's request list from its plan with the live downstream-space filter
// (no granted-input filter is needed — grants apply only after Match) and run
// the sequential match-and-apply tail.
func (n *Network) commitPlansMatched() {
	if cap(n.candArena) < MaxPorts*n.cfg.VCs {
		n.candArena = make([]Candidate, 0, MaxPorts*n.cfg.VCs)
	}
	mctx := &n.matchCtx
	*mctx = MatchContext{Net: n, Cycle: n.cycle}
	if n.activeOK() {
		// Same activity-snapshot walk as commitPlans.
		lazy := n.faulty && n.evictMode == evictLazy
		for wi, word := range n.actR {
			if word == 0 {
				continue
			}
			base := wi << 6
			for ; word != 0; word &= word - 1 {
				id := base + bits.TrailingZeros64(word)
				r := n.routers[id]
				if n.faulty && r.frozen {
					continue
				}
				n.commitRouterMatched(mctx, r, &n.plans[id], lazy)
			}
		}
		return
	}
	for id, r := range n.routers {
		if n.faulty && r.frozen {
			continue
		}
		n.commitRouterMatched(mctx, r, &n.plans[id], false)
	}
}

// commitRouterMatched is commitRouter's counterpart for whole-router matchers;
// see commitRouter for the lazy dirty-clear ordering.
func (n *Network) commitRouterMatched(mctx *MatchContext, r *Router, p *routerPlan, lazy bool) {
	if p.fallback {
		n.evictUnreachable(r)
		if lazy {
			n.evictDirty[r.actWord] &^= r.actMask
		}
		_, reqs := n.gatherRequestsLegacy(r, n.candArena[:0], n.reqScratch[:0])
		n.matchAndApply(mctx, r, reqs)
		return
	}
	if lazy {
		n.evictDirty[r.actWord] &^= r.actMask
	}
	arena := n.candArena[:0]
	reqs := n.reqScratch[:0]
	for out := PortID(0); p.filled != 0 && out < MaxPorts; out++ {
		if p.filled&(1<<out) == 0 {
			continue
		}
		group := p.cands[p.off[out] : int(p.off[out])+int(p.cnt[out])]
		var down []*Buffer
		if next := r.peerRouter[out]; next != nil {
			down = next.in[out.Opposite()]
		}
		start := len(arena)
		for _, c := range group {
			if down != nil && !down[c.VC].Free() {
				continue
			}
			arena = append(arena, c)
		}
		if len(arena) == start {
			continue
		}
		reqs = append(reqs, Request{Out: out, Cands: arena[start:len(arena):len(arena)]})
	}
	n.matchAndApply(mctx, r, reqs)
}
