package noc

import "fmt"

// FaultStats counts the engine-level effects of injected faults. All counters
// stay zero (and cost nothing to maintain) until the first fault-related call
// touches the network; see Network.Faulty.
type FaultStats struct {
	// LinksDown is the number of directed links currently down.
	LinksDown int64 `json:"links_down"`
	// FrozenRouters is the number of routers currently frozen.
	FrozenRouters int64 `json:"frozen_routers"`
	// DowntimeCycles accumulates, per cycle, the number of directed links
	// down during that cycle (i.e. the sum of per-link downtimes).
	DowntimeCycles int64 `json:"downtime_cycles"`
	// Requeued counts messages pulled out of harm's way instead of being lost
	// in flight: off a killed link back into the upstream router's buffer, or
	// stranded by a routing-table change and requeued at their source node
	// (RequeueStranded).
	Requeued int64 `json:"requeued"`
	// Reroutes counts grants whose output port deviated from the X-Y port —
	// messages actively routed around damage by a fault-aware Routing.
	Reroutes int64 `json:"reroutes"`
	// Unreachable counts messages evicted with an explicit
	// unreachable-destination verdict (RouteUnreachable).
	Unreachable int64 `json:"unreachable"`
}

// Faulty reports whether any fault machinery has touched the network: a link
// taken down, a router frozen, or a custom Routing installed. While false,
// the fault layer is zero-cost: Step takes the exact code path of a
// fault-free network.
func (n *Network) Faulty() bool { return n.faulty }

// FaultStats returns a copy of the accumulated fault counters.
func (n *Network) FaultStats() FaultStats { return n.fstats }

// SetUnreachableHandler installs f to run whenever the engine evicts a
// message whose route is an unreachable verdict. The previous handler (if
// any) is replaced. f runs inside Network.Step and must not call Step.
func (n *Network) SetUnreachableHandler(f func(now int64, r *Router, m *Message)) {
	n.onUnreachable = f
}

// SetLinkDown sets the state of the directed link leaving router rid through
// port p. Taking a link down removes it from arbitration — the output
// accepts no further grants and, being unable to deliver, effectively
// returns no credits — and requeues any message currently serializing
// across it at the upstream router (the returned count), so in-flight
// messages are never lost to a link kill. Taking a node's attach port down
// also blocks that node's injections. Restoring a link (down=false) is
// immediate. It panics on an unconnected port.
func (n *Network) SetLinkDown(rid int, p PortID, down bool) int {
	r := n.routers[rid]
	if !r.HasPort(p) {
		panic(fmt.Sprintf("noc: SetLinkDown on unconnected port %s of %s", p, r))
	}
	if r.linkDown[p] == down {
		return 0
	}
	r.linkDown[p] = down
	n.faulty = true
	// A link transition (either direction) can change the routing verdict of
	// any buffered head anywhere in the network.
	n.markAllEvictDirty()
	if !down {
		n.fstats.LinksDown--
		return 0
	}
	n.fstats.LinksDown++
	return n.requeueLink(r, p)
}

// FreezeRouter sets the frozen state of router rid. A frozen router makes no
// grants on any output; messages already heading toward it still land in its
// input buffers.
func (n *Network) FreezeRouter(rid int, frozen bool) {
	r := n.routers[rid]
	if r.frozen == frozen {
		return
	}
	r.frozen = frozen
	n.faulty = true
	// Frozen routers are skipped by the eviction sweep without clearing their
	// dirty bit, so marks accumulated while frozen survive to the unfreeze;
	// mark here as well so the transition itself forces a re-probe.
	n.markEvictDirty(r)
	if frozen {
		n.fstats.FrozenRouters++
	} else {
		n.fstats.FrozenRouters--
	}
}

// requeueLink pulls every delivery still in flight across the dead directed
// link (r, p) off the wheel and requeues the messages at the upstream router
// r, in the input buffer of port p for their class. The buffer may
// transiently exceed its capacity (it accepts no new arrivals until it
// drains below cap); this is the price of never losing a granted message.
func (n *Network) requeueLink(r *Router, p PortID) int {
	next := r.peerRouter[p]
	node := r.peerNode[p]
	requeued := 0
	for s := range n.wheel {
		ds := n.wheel[s]
		kept := ds[:0]
		for _, d := range ds {
			hit := false
			if next != nil && d.router == next && d.port == p.Opposite() {
				hit = true
			}
			if node != nil && d.node == node {
				hit = true
			}
			if !hit {
				kept = append(kept, d)
				continue
			}
			if d.router != nil {
				// Undo the downstream buffer reservation and the hop count
				// credited at grant time.
				d.router.in[d.port][d.vc].reserved--
				d.msg.HopCount--
			}
			n.pending--
			requeued++
			n.fstats.Requeued++
			r.in[p][d.msg.Class].push(n.cycle, d.msg)
			if len(n.faultObs) > 0 {
				n.observeRequeue(r, p, d.msg)
			}
		}
		for i := len(kept); i < len(ds); i++ {
			ds[i] = delivery{}
		}
		n.wheel[s] = kept
	}
	return requeued
}

// RequeueStranded scans every router input buffer and every delivery still in
// flight on a link, removes each message for which strand reports true, and
// requeues it at its source node's injection queue. Fault-aware routings call
// it after a table rebuild to pull out messages whose buffered position has no
// legal continuation under the new tables (e.g. an up*/down* phase violation
// left behind by a reorientation); strand may also normalize per-message
// routing state in place for messages it keeps.
//
// A requeued message keeps its GenCycle — source-to-sink latency still charges
// the wasted excursion — but its original injection is uncounted and recounted
// when it re-enters, so the conservation identity
// Injected == Delivered + Unreachable + InFlight holds at every instant.
func (n *Network) RequeueStranded(strand func(r *Router, p PortID, m *Message) bool) int {
	requeued := 0
	reinject := func(r *Router, p PortID, m *Message) {
		n.stats.Injected--
		n.inflightCount--
		n.inflightBase -= m.InjectCycle
		n.inflightBySrc[m.Src]--
		n.fstats.Requeued++
		requeued++
		if len(n.faultObs) > 0 {
			n.observeRequeue(r, p, m)
		}
		n.nodes[m.Src].Inject(m)
	}
	for _, r := range n.routers {
		for p := PortID(0); p < MaxPorts; p++ {
			for _, buf := range r.in[p] {
				kept := buf.q[:0]
				for _, m := range buf.q {
					if strand(r, p, m) {
						reinject(r, p, m)
					} else {
						kept = append(kept, m)
					}
				}
				for i := len(kept); i < len(buf.q); i++ {
					buf.q[i] = nil
				}
				buf.q = kept
				// The queue was rewritten in place, bypassing push/pop:
				// re-derive the occupancy bit.
				buf.syncOcc()
			}
		}
	}
	for s := range n.wheel {
		ds := n.wheel[s]
		kept := ds[:0]
		for _, d := range ds {
			// Deliveries to a router input buffer are mid-link messages; the
			// channel they occupy is the one feeding (d.router, d.port).
			// Ejections to a node always sink and are never stranded.
			if d.router == nil || !strand(d.router, d.port, d.msg) {
				kept = append(kept, d)
				continue
			}
			d.router.in[d.port][d.vc].reserved--
			d.msg.HopCount--
			n.pending--
			reinject(d.router, d.port, d.msg)
		}
		for i := len(kept); i < len(ds); i++ {
			ds[i] = delivery{}
		}
		n.wheel[s] = kept
	}
	return requeued
}

// evictUnreachable pops head messages whose route is an unreachable verdict
// from every input buffer of r, counting and reporting each one. It runs
// once per router per arbitration cycle, only on faulty networks.
func (n *Network) evictUnreachable(r *Router) {
	for p := PortID(0); p < MaxPorts; p++ {
		bufs := r.in[p]
		if bufs == nil {
			continue
		}
		for _, buf := range bufs {
			for {
				m := buf.Head()
				if m == nil || r.Route(m) != RouteUnreachable {
					break
				}
				buf.pop()
				n.fstats.Unreachable++
				n.inflightCount--
				n.inflightBase -= m.InjectCycle
				n.inflightBySrc[m.Src]--
				if n.onUnreachable != nil {
					n.onUnreachable(n.cycle, r, m)
				}
				if len(n.faultObs) > 0 {
					n.observeUnreachable(r, m)
				}
				n.recycleMessage(m)
			}
		}
	}
}
