package noc

import (
	"fmt"
	"math/rand"
	"testing"
)

// orderPolicy is deliberately sensitive to candidate order and count: any
// divergence between the fused single-scan arbitration and the legacy
// per-output gather (extra, missing or reordered candidates) changes which
// message wins and cascades through the rest of the run.
type orderPolicy struct{}

func (orderPolicy) Name() string { return "order-sensitive" }

func (orderPolicy) Select(ctx *ArbContext, cands []Candidate) int {
	return int(ctx.Cycle+int64(len(cands))+int64(ctx.Out)) % len(cands)
}

// orderMatcher adds a whole-router matching with the same order sensitivity:
// per request it prefers the (cycle+len)-th candidate, falling back to the
// first whose input port is still free, and leaves the output idle otherwise.
type orderMatcher struct{ orderPolicy }

func (orderMatcher) Match(ctx *MatchContext, reqs []Request) []int {
	grants := make([]int, len(reqs))
	var used [MaxPorts]bool
	for i, req := range reqs {
		grants[i] = -1
		start := int(ctx.Cycle+int64(len(req.Cands))) % len(req.Cands)
		for k := 0; k < len(req.Cands); k++ {
			j := (start + k) % len(req.Cands)
			if !used[req.Cands[j].Port] {
				grants[i] = j
				used[req.Cands[j].Port] = true
				break
			}
		}
	}
	return grants
}

// driveEquivalence runs two identically-seeded copies of the same workload,
// one on the fused occupancy-mask arbitration path and one forced onto the
// legacy full-scan path, and requires bit-identical delivery traces.
func driveEquivalence(t *testing.T, policy Policy) {
	t.Helper()
	build := func(legacy bool) (*Network, []*Node, *[]string) {
		net, nodes := BuildMeshCores(Config{Width: 4, Height: 4, VCs: 3, BufferCap: 2})
		if legacy {
			net.occTrack = false // forces gatherCandidates' full scan + per-output arbitration
		}
		net.SetPolicy(policy)
		log := &[]string{}
		for _, nd := range nodes {
			nd.Sink = func(now int64, m *Message) {
				*log = append(*log, fmt.Sprintf("%d:%d->%d@%d", m.ID, m.Src, m.Dst, now))
			}
		}
		return net, nodes, log
	}
	run := func(net *Network, nodes []*Node) {
		rng := rand.New(rand.NewSource(21))
		var id uint64
		for cycle := 0; cycle < 600; cycle++ {
			for i, nd := range nodes {
				if rng.Float64() >= 0.3 {
					continue
				}
				d := rng.Intn(len(nodes) - 1)
				if d >= i {
					d++
				}
				id++
				m := net.AllocMessage()
				m.ID = id
				m.Dst = nodes[d].ID
				m.Class = Class(rng.Intn(3))
				m.SizeFlits = 1 + 4*rng.Intn(2)
				nd.Inject(m)
			}
			net.Step()
		}
		net.Drain(4000)
	}

	fusedNet, fusedNodes, fusedLog := build(false)
	legacyNet, legacyNodes, legacyLog := build(true)
	run(fusedNet, fusedNodes)
	run(legacyNet, legacyNodes)

	if len(*fusedLog) == 0 {
		t.Fatal("no deliveries recorded; workload is vacuous")
	}
	if len(*fusedLog) != len(*legacyLog) {
		t.Fatalf("delivery counts diverge: fused %d, legacy %d", len(*fusedLog), len(*legacyLog))
	}
	for i := range *fusedLog {
		if (*fusedLog)[i] != (*legacyLog)[i] {
			t.Fatalf("delivery %d diverges: fused %q, legacy %q", i, (*fusedLog)[i], (*legacyLog)[i])
		}
	}
	fs, ls := fusedNet.Stats(), legacyNet.Stats()
	if fs.Latency.Mean() != ls.Latency.Mean() || fs.Injected != ls.Injected {
		t.Fatalf("stats diverge: fused avg=%v inj=%d, legacy avg=%v inj=%d",
			fs.Latency.Mean(), fs.Injected, ls.Latency.Mean(), ls.Injected)
	}
}

func TestFusedArbitrationMatchesLegacy(t *testing.T) {
	driveEquivalence(t, orderPolicy{})
}

func TestFusedMatchedArbitrationMatchesLegacy(t *testing.T) {
	driveEquivalence(t, orderMatcher{})
}
