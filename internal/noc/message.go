// Package noc implements a cycle-driven, message-granularity network-on-chip
// simulator: 2D-mesh topologies, routers with per-port virtual-channel input
// buffers and credit-based backpressure, dimension-ordered (X-Y) routing,
// multi-flit serialization, and a pluggable output-port arbitration policy.
//
// The simulator models the structures that NoC arbitration interacts with —
// input-buffer queueing, output-port contention, multi-flit link occupancy and
// backpressure — at the same granularity as the arbiters in the HPCA 2020
// paper "Experiences with ML-Driven Design: A NoC Case Study": one arbitration
// decision per output port per cycle, selecting among the head messages of the
// competing input buffers (Algorithm 1 of the paper).
package noc

import "fmt"

// MsgType is the protocol-level type of a message. The paper's Table 2 uses
// three one-hot-encoded types: request, response and coherence.
type MsgType uint8

// Message types.
const (
	TypeRequest MsgType = iota
	TypeResponse
	TypeCoherence

	NumMsgTypes = 3
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case TypeRequest:
		return "request"
	case TypeResponse:
		return "response"
	case TypeCoherence:
		return "coherence"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// DstType classifies the destination node of a message. The paper's Table 2
// uses three one-hot-encoded destination types: core, cache and memory.
type DstType uint8

// Destination node types.
const (
	DstCore DstType = iota
	DstCache
	DstMemory

	NumDstTypes = 3
)

// String implements fmt.Stringer.
func (t DstType) String() string {
	switch t {
	case DstCore:
		return "core"
	case DstCache:
		return "cache"
	case DstMemory:
		return "memory"
	}
	return fmt.Sprintf("DstType(%d)", uint8(t))
}

// Class identifies a message class. Each class travels in its own virtual
// channel; the APU system of the paper uses seven classes (Section 4.1).
type Class uint8

// NodeID identifies an endpoint (core, cache, directory, ...) attached to a
// router port.
type NodeID int

// Message is a network message. The simulator moves whole messages; a message
// of SizeFlits flits occupies its granted output port for SizeFlits cycles
// (serialization latency), which is the effect arbitration policies contend
// with.
//
// Fields marked "dynamic" are updated by the simulator as the message moves.
type Message struct {
	ID    uint64
	Src   NodeID
	Dst   NodeID
	Class Class
	Type  MsgType
	// DstKind is the type of the destination node, used as an arbitration
	// feature (Table 2 "Destination type").
	DstKind   DstType
	SizeFlits int

	// GenCycle is the cycle at which the message was generated (queued at its
	// source node). Latency statistics are measured from generation, so
	// source queueing under contention is included.
	GenCycle int64

	// InjectCycle is the cycle at which the message entered the network;
	// global age = now - InjectCycle.
	InjectCycle int64

	// Distance is the hop distance from source to destination router
	// (Manhattan distance under X-Y routing), set at injection.
	Distance int

	// ArrivalCycle (dynamic) is the cycle the message arrived at its current
	// router; local age = now - ArrivalCycle.
	ArrivalCycle int64

	// HopCount (dynamic) is the number of router-to-router hops traversed so
	// far. It is zero while the message waits at its source router.
	HopCount int

	// ArrivalGap (dynamic) is the number of cycles between this message's
	// arrival at its current input buffer and the previous arrival at the
	// same buffer (Table 2 "Inter-arrival time").
	ArrivalGap int64

	// Payload carries opaque protocol-level state for higher layers (e.g.
	// the APU coherence layer); the NoC never inspects it.
	Payload any

	// RouteBits is per-message scratch state owned by the active Routing
	// implementation (e.g. the up*/down* phase bit of the fault-aware
	// router); the engine itself never reads or writes it. A ShardSafe
	// routing's writes to it must be idempotent per (router position,
	// tables): the active-set engine may skip re-probing a head whose
	// verdict is provably unchanged, so implementations cannot rely on
	// getting a Route call every cycle to advance RouteBits.
	RouteBits uint8

	// pooled marks messages obtained from Network.AllocMessage; the engine
	// returns them to the freelist after delivery or eviction.
	pooled bool
}

// GlobalAge returns the number of cycles since the message entered the
// network.
func (m *Message) GlobalAge(now int64) int64 { return now - m.InjectCycle }

// LocalAge returns the number of cycles the message has waited at its current
// router.
func (m *Message) LocalAge(now int64) int64 { return now - m.ArrivalCycle }

// String implements fmt.Stringer.
func (m *Message) String() string {
	return fmt.Sprintf("msg#%d %s %d->%d class=%d flits=%d hops=%d",
		m.ID, m.Type, m.Src, m.Dst, m.Class, m.SizeFlits, m.HopCount)
}
