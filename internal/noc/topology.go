package noc

import "fmt"

// PortID identifies a router port. Ports double as inputs and outputs: port p
// receives messages from its peer and transmits messages to its peer.
//
// The fixed layout mirrors the paper's heatmap column ordering (Fig. 7):
// core, memory, north, south, west, east. Simple meshes only use PortCore plus
// the four direction ports.
type PortID int

// Router port indices.
const (
	PortCore PortID = iota // primary local endpoint
	PortMem                // secondary local endpoint ("memory" in the paper)
	PortNorth
	PortSouth
	PortWest
	PortEast

	// MaxPorts is the maximum number of ports on any router; state vectors
	// are padded to this width (Section 4.4 of the paper).
	MaxPorts = 6
)

// String implements fmt.Stringer.
func (p PortID) String() string {
	switch p {
	case PortCore:
		return "core"
	case PortMem:
		return "mem"
	case PortNorth:
		return "north"
	case PortSouth:
		return "south"
	case PortWest:
		return "west"
	case PortEast:
		return "east"
	}
	return fmt.Sprintf("port(%d)", int(p))
}

// IsDirection reports whether p is one of the four mesh direction ports.
func (p PortID) IsDirection() bool { return p >= PortNorth && p <= PortEast }

// Opposite returns the direction port facing p (north<->south, west<->east).
// It panics for non-direction ports. The pairing is purely local to a link and
// holds on torus wraparound links too: the east port of the last column feeds
// the west port of column zero, exactly as on an interior link.
func (p PortID) Opposite() PortID {
	switch p {
	case PortNorth:
		return PortSouth
	case PortSouth:
		return PortNorth
	case PortWest:
		return PortEast
	case PortEast:
		return PortWest
	}
	panic("noc: Opposite of non-direction port " + p.String())
}

// Coord is a router coordinate in the mesh. X grows eastward (columns), Y
// grows southward (rows); router (0,0) is the north-west corner.
type Coord struct{ X, Y int }

// Manhattan returns the Manhattan distance between two coordinates.
func (c Coord) Manhattan(o Coord) int {
	return abs(c.X-o.X) + abs(c.Y-o.Y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// ringDist returns the distance between positions a and b on a ring of n
// slots: the shorter of the two ways around.
func ringDist(a, b, n int) int {
	d := abs(a - b)
	if n-d < d {
		return n - d
	}
	return d
}

// String implements fmt.Stringer.
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Node is an endpoint attached to one router port: it injects messages into
// the network and consumes ("ejects") messages addressed to it.
type Node struct {
	ID     NodeID
	Kind   DstType // how this node is classified as a destination
	Label  string  // human-readable role, e.g. "CU/L1D", "Dir", "CPU"
	Router *Router
	Port   PortID

	net *Network

	// Sink, if non-nil, is invoked for every message delivered to this node.
	// It runs inside Network.Step; it may inject new messages but must not
	// call Step.
	Sink func(now int64, m *Message)

	// injectQ holds pending injections, drained one per cycle. Dequeue
	// advances injectHead instead of shifting the slice, so heavy backlogs
	// (queue depths in the thousands under APU bursts) stay O(1) per message.
	injectQ    []*Message
	injectHead int
}

// Inject queues a message for injection at this node. The message enters the
// node's router when the local input buffer has space; one message enters per
// cycle. Src, Dst and SizeFlits must be set by the caller; the network fills
// in timing and distance fields.
func (n *Node) Inject(m *Message) {
	if m.SizeFlits <= 0 {
		panic("noc: message must have at least one flit")
	}
	m.Src = n.ID
	m.GenCycle = n.net.cycle
	if n.injectHead == len(n.injectQ) {
		n.net.activateNode(n.ID) // empty -> non-empty
	}
	n.injectQ = append(n.injectQ, m)
	n.net.pendingInj++
}

// Network returns the network this node is attached to. Traffic generators
// use it to reach the message freelist (Network.AllocMessage).
func (n *Node) Network() *Network { return n.net }

// PendingInjections returns the number of messages queued at the node that
// have not yet entered the network.
func (n *Node) PendingInjections() int { return len(n.injectQ) - n.injectHead }

// dequeue removes and forgets the message at the head of the injection queue.
// The consumed prefix is reclaimed when the queue drains, or compacted once it
// dominates a large backlog, keeping both time and memory amortized O(1).
func (n *Node) dequeue() {
	n.injectQ[n.injectHead] = nil
	n.injectHead++
	n.net.pendingInj--
	if n.injectHead == len(n.injectQ) {
		n.injectQ = n.injectQ[:0]
		n.injectHead = 0
		n.net.deactivateNode(n.ID) // non-empty -> empty
		return
	}
	if n.injectHead >= 1024 && n.injectHead*2 >= len(n.injectQ) {
		rem := copy(n.injectQ, n.injectQ[n.injectHead:])
		for i := rem; i < len(n.injectQ); i++ {
			n.injectQ[i] = nil
		}
		n.injectQ = n.injectQ[:rem]
		n.injectHead = 0
	}
}

// String implements fmt.Stringer.
func (n *Node) String() string {
	return fmt.Sprintf("node#%d %s@%s.%s", n.ID, n.Label, n.Router.Coord, n.Port)
}
