package noc

import (
	"math/rand"
	"testing"
)

// TestTorusWiring checks the wraparound links: every router has all four
// direction neighbors, edge routers wrap to the opposite edge, and the
// Opposite pairing holds across wrap links exactly as on interior ones.
func TestTorusWiring(t *testing.T) {
	net, _ := BuildTorusCores(Config{Width: 4, Height: 3, VCs: 1, BufferCap: 2})
	for _, r := range net.Routers() {
		for _, p := range []PortID{PortNorth, PortSouth, PortWest, PortEast} {
			next := r.Neighbor(p)
			if next == nil {
				t.Fatalf("%s has no neighbor at %s on a torus", r, p)
			}
			if back := next.Neighbor(p.Opposite()); back != r {
				t.Fatalf("Opposite pairing broken: %s --%s--> %s --%s--> %v",
					r, p, next, p.Opposite(), back)
			}
		}
	}
	if got := net.RouterAt(0, 0).Neighbor(PortWest); got != net.RouterAt(3, 0) {
		t.Fatalf("west wrap of (0,0) = %s, want (3,0)", got)
	}
	if got := net.RouterAt(0, 0).Neighbor(PortNorth); got != net.RouterAt(0, 2) {
		t.Fatalf("north wrap of (0,0) = %s, want (0,2)", got)
	}
	if got := net.RouterAt(3, 2).Neighbor(PortEast); got != net.RouterAt(0, 2) {
		t.Fatalf("east wrap of (3,2) = %s, want (0,2)", got)
	}
}

// TestTorusTooSmall pins the dimension guard: rings shorter than 3 would make
// a router's two ring directions coincide.
func TestTorusTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("2-wide torus did not panic")
		}
	}()
	New(Config{Width: 2, Height: 4, Torus: true})
}

// TestTorusDirTowardAndDistance checks ring-shortest dimension-ordered routing
// and the topology-aware Distance metric, including the deterministic
// east/south tie-break at exactly half an even ring.
func TestTorusDirTowardAndDistance(t *testing.T) {
	net, _ := BuildTorusCores(Config{Width: 4, Height: 4, VCs: 1, BufferCap: 2})
	r := net.RouterAt(0, 0)
	cases := []struct {
		to   Coord
		want PortID
		dist int
	}{
		{Coord{X: 1, Y: 0}, PortEast, 1},
		{Coord{X: 3, Y: 0}, PortWest, 1},  // wrap is shorter: 1 vs 3
		{Coord{X: 2, Y: 0}, PortEast, 2},  // exact half: tie-break east
		{Coord{X: 0, Y: 2}, PortSouth, 2}, // exact half: tie-break south
		{Coord{X: 0, Y: 3}, PortNorth, 1},
		{Coord{X: 3, Y: 3}, PortWest, 2}, // X corrected before Y
	}
	for _, c := range cases {
		if got := r.DirToward(c.to); got != c.want {
			t.Errorf("DirToward(%s) = %s, want %s", c.to, got, c.want)
		}
		if got := net.Distance(r.Coord, c.to); got != c.dist {
			t.Errorf("Distance((0,0), %s) = %d, want %d", c.to, got, c.dist)
		}
	}
	// Mesh semantics are untouched: the same coordinates on an open mesh.
	mesh, _ := BuildMeshCores(Config{Width: 4, Height: 4, VCs: 1, BufferCap: 2})
	if got := mesh.RouterAt(0, 0).DirToward(Coord{X: 3, Y: 0}); got != PortEast {
		t.Errorf("mesh DirToward((3,0)) = %s, want east", got)
	}
	if got := mesh.Distance(Coord{X: 0, Y: 0}, Coord{X: 3, Y: 3}); got != 6 {
		t.Errorf("mesh Distance = %d, want 6", got)
	}
}

// TestTorusWrapDelivery sends one message the wrap way around and checks it
// arrives in ring-distance hops with the Distance field recorded to match.
func TestTorusWrapDelivery(t *testing.T) {
	net, nodes := BuildTorusCores(Config{Width: 5, Height: 5, VCs: 1, BufferCap: 2})
	net.SetPolicy(firstPolicy{})
	var hops, dist int
	nodes[0].Sink = nil
	src := nodes[net.RouterAt(0, 0).ID()]
	dst := nodes[net.RouterAt(4, 4).ID()]
	dst.Sink = func(now int64, m *Message) { hops, dist = m.HopCount, m.Distance }
	src.Inject(&Message{ID: 1, Dst: dst.ID, SizeFlits: 1})
	if !net.Drain(100) {
		t.Fatal("message not delivered")
	}
	// (0,0) -> (4,4) on a 5-ring is one hop west and one hop north.
	if hops != 2 || dist != 2 {
		t.Fatalf("hops=%d dist=%d, want 2/2 via wraparound", hops, dist)
	}
}

// TestTorusConservation runs random traffic on a healthy torus and checks the
// conservation identity Injected == Delivered + Unreachable + InFlight at
// every sampled instant and exactly after drain.
//
// The injection rate is deliberately moderate: ring-shortest DOR on a torus
// has a cyclic channel dependency around each wrapped ring (the open mesh's
// deadlock-freedom argument does not transfer), and message classes double as
// VCs here, so no dateline channel split is possible. At saturation a healthy
// torus can therefore wedge — by design, and documented in DESIGN.md §13 —
// while the conservation identity keeps holding.
func TestTorusConservation(t *testing.T) {
	net, nodes := BuildTorusCores(Config{Width: 6, Height: 6, VCs: 2, BufferCap: 4})
	net.SetPolicy(firstPolicy{})
	rng := rand.New(rand.NewSource(11))
	var id uint64
	for cycle := 0; cycle < 400; cycle++ {
		for i, nd := range nodes {
			if rng.Float64() >= 0.05 {
				continue
			}
			id++
			m := net.AllocMessage()
			m.ID = id
			m.Dst = nodes[(i+1+rng.Intn(len(nodes)-1))%len(nodes)].ID
			m.Class = Class(rng.Intn(2))
			m.SizeFlits = 1 + rng.Intn(3)
			nd.Inject(m)
		}
		net.Step()
		if cycle%23 == 0 {
			s, fs := net.Stats(), net.FaultStats()
			if s.Injected != s.Delivered+fs.Unreachable+net.InFlight() {
				t.Fatalf("cycle %d: injected=%d delivered=%d unreachable=%d inflight=%d",
					cycle, s.Injected, s.Delivered, fs.Unreachable, net.InFlight())
			}
		}
	}
	if !net.Drain(5000) {
		t.Fatal("healthy torus failed to drain")
	}
	s := net.Stats()
	if s.Injected != s.Delivered || s.Injected == 0 {
		t.Fatalf("after drain: injected=%d delivered=%d", s.Injected, s.Delivered)
	}
}
