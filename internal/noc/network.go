package noc

import (
	"fmt"
	"math/bits"

	"mlnoc/internal/stats"
)

// Config describes a mesh network.
type Config struct {
	// Width and Height are the mesh dimensions in routers.
	Width, Height int
	// VCs is the number of virtual channels (message classes) per port.
	VCs int
	// BufferCap is the per-VC input buffer capacity in messages.
	BufferCap int
	// MaxFlits bounds message size; the delivery wheel is sized from it.
	// Defaults to 32.
	MaxFlits int
	// Torus closes both dimensions into rings: every router gets wraparound
	// links (east of column Width-1 connects to column 0, south of row
	// Height-1 to row 0), turning the mesh into a 2D torus. Requires Width
	// and Height >= 3 so the two ring directions of a router are distinct.
	Torus bool
}

func (c *Config) applyDefaults() {
	if c.VCs <= 0 {
		c.VCs = 1
	}
	if c.BufferCap <= 0 {
		c.BufferCap = 4
	}
	if c.MaxFlits <= 0 {
		c.MaxFlits = 32
	}
}

// Stats aggregates network-level measurements. Latency is measured from
// injection into the source router to delivery at the destination node.
type Stats struct {
	Injected  int64
	Delivered int64
	// Latency is generation-to-delivery latency (includes source queueing).
	Latency stats.Accumulator
	// NetLatency is network-injection-to-delivery latency (excludes source
	// queueing); the difference to Latency is time spent waiting to enter
	// the network.
	NetLatency stats.Accumulator
	// HopLatency accumulates per-message hop counts at delivery.
	HopLatency stats.Accumulator
	// PerSource accumulates generation-to-delivery latency per source node,
	// for equality-of-service analysis (Section 5.2 of the paper).
	PerSource []stats.Accumulator
}

// SourceMeanLatencies returns the mean latency per source node with at least
// one delivered message.
func (s *Stats) SourceMeanLatencies() []float64 {
	var out []float64
	for i := range s.PerSource {
		if s.PerSource[i].Count() > 0 {
			out = append(out, s.PerSource[i].Mean())
		}
	}
	return out
}

// FairnessIndex returns Jain's fairness index over the per-source mean
// latencies: 1.0 means every source observes the same average latency.
func (s *Stats) FairnessIndex() float64 {
	return stats.JainIndex(s.SourceMeanLatencies())
}

type delivery struct {
	msg    *Message
	router *Router // destination router for a hop, nil for ejection
	port   PortID
	vc     int
	node   *Node // ejection target, nil for a hop
}

// Network is a mesh NoC simulation. Create one with New, attach nodes, set a
// policy, inject traffic via the nodes, and call Step once per cycle.
type Network struct {
	cfg     Config
	routers []*Router
	nodes   []*Node
	policy  Policy
	matcher Matcher // non-nil when policy implements Matcher
	grantOb GrantObserver
	routing Routing // nil means built-in X-Y routing

	// fault layer (see faultstate.go); zero-cost while faulty is false.
	faulty        bool
	fstats        FaultStats
	onUnreachable func(now int64, r *Router, m *Message)

	observers []Observer      // engine instrumentation (see observe.go)
	arbObs    []ArbObserver   // observers that also watch whole arbitrations
	faultObs  []FaultObserver // observers that also watch fault events

	cycle int64

	wheel   [][]delivery // delivery wheel indexed by cycle % len(wheel)
	pending int          // messages scheduled but not yet delivered

	// pendingInj counts messages queued at nodes that have not yet entered
	// the network, maintained incrementally by Node.Inject/dequeue so the
	// Drain/Quiescent check is O(1) instead of O(nodes) per cycle.
	pendingInj int

	inflightBySrc []int // outstanding messages per source node

	// in-flight age tracking for reward functions
	inflightCount int64
	inflightBase  int64 // sum of InjectCycle over in-flight messages

	// delivery window for the accumulated-latency reward
	windowLatencySum int64
	windowDelivered  int64

	// link utilization of the most recently completed cycle. busyOutputs is
	// maintained incrementally: grants increment it, and busyRelease (a wheel
	// parallel to the delivery wheel) schedules the decrement for the cycle
	// each output port frees up.
	busyOutputs  int
	busyRelease  []int
	totalOutputs int
	lastUtil     float64

	stats Stats

	// OnCycle, if non-nil, runs at the end of every Step (after arbitration
	// and delivery). The RL trainer uses it to run one training batch per
	// cycle.
	OnCycle func(n *Network)

	// scratch buffers reused across cycles
	candScratch []Candidate
	reqScratch  []Request

	// arbCtx/matchCtx are the per-cycle contexts handed to policies. They
	// live on the Network so the interface call does not force a heap
	// allocation every Step.
	arbCtx   ArbContext
	matchCtx MatchContext

	// occTrack enables the per-router occupancy bitmask (requires
	// MaxPorts*VCs <= 64); arbitration then visits only non-empty buffers.
	occTrack bool

	// Active-set stepping (see activeset.go). actR bit r is set iff router r
	// has occ != 0; actN bit i is set iff node i has a pending injection;
	// evictDirty bit r is set iff router r's buffer heads need re-probing for
	// unreachable verdicts. fullScan forces the original full-scan engine
	// (SetActiveStepping); the bitmaps stay maintained either way.
	actR       []uint64
	actN       []uint64
	evictDirty []uint64
	actRCount  int
	fullScan   bool
	evictMode  uint8

	// shardMinActive is the per-shard activity threshold below which a
	// sharded cycle skips the fork/join and runs the sequential active-set
	// path instead; shardForks counts the cycles that did fork (white-box
	// test hook).
	shardMinActive int
	shardForks     int64

	// routeMemo caches the X-Y output port per (router, destination node),
	// indexed router.id*len(nodes)+dst. X-Y routing is a pure function of
	// that pair, so buffered messages never need their route recomputed.
	// Only consulted while no Routing is installed; rebuilt when the node
	// count changes. On big topologies the table outgrows the cache and a
	// lookup costs more than the X-Y arithmetic it memoizes — routeDirect
	// then bypasses it (see routeMemoMaxEntries).
	routeMemo   []PortID
	routeDirect bool

	// outHeads accumulates per-output candidate lists during the fused
	// single-scan arbitration; candArena backs matcher Request slices.
	outHeads  [MaxPorts][]Candidate
	candArena []Candidate

	// msgFree recycles delivered/evicted pooled messages (AllocMessage).
	msgFree []*Message

	// sharded two-phase stepping (see shard.go); shards <= 1 is sequential.
	shards      int
	shardBounds []int           // router range of shard i is [bounds[i], bounds[i+1])
	shardWake   []chan struct{} // one wake channel per worker goroutine
	shardDone   chan struct{}   // workers signal scan completion here
	plans       []routerPlan    // per-router phase-1 output, indexed by router ID
	shardHeads  []shardScratch  // per-shard bucketing scratch
}

// New creates an empty W x H mesh with no nodes attached. Use AttachNode (or
// a topology helper) to add endpoints, then SetPolicy.
func New(cfg Config) *Network {
	cfg.applyDefaults()
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic("noc: mesh dimensions must be positive")
	}
	if cfg.Torus && (cfg.Width < 3 || cfg.Height < 3) {
		panic("noc: torus dimensions must be at least 3x3")
	}
	n := &Network{
		cfg:            cfg,
		wheel:          make([][]delivery, cfg.MaxFlits+2),
		busyRelease:    make([]int, cfg.MaxFlits+2),
		occTrack:       MaxPorts*cfg.VCs <= 64,
		shardMinActive: DefaultShardMinActive,
	}
	n.routers = make([]*Router, cfg.Width*cfg.Height)
	words := (len(n.routers) + 63) / 64
	n.actR = make([]uint64, words)
	n.evictDirty = make([]uint64, words)
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			id := y*cfg.Width + x
			r := &Router{
				id: id, Coord: Coord{X: x, Y: y}, net: n,
				actWord: id >> 6, actMask: 1 << (uint(id) & 63),
			}
			for p := range r.inGrantedAt {
				r.inGrantedAt[p] = -1
			}
			n.routers[id] = r
		}
	}
	// Wire mesh links and allocate direction-port buffers. On a torus the
	// neighbor coordinates wrap, so every router has all four direction
	// ports; the east<->west and north<->south pairing of Opposite holds on
	// wraparound links exactly as on interior ones.
	for _, r := range n.routers {
		link := func(p PortID, nx, ny int) {
			if cfg.Torus {
				nx = (nx + cfg.Width) % cfg.Width
				ny = (ny + cfg.Height) % cfg.Height
			} else if nx < 0 || ny < 0 || nx >= cfg.Width || ny >= cfg.Height {
				return
			}
			r.peerRouter[p] = n.routers[ny*cfg.Width+nx]
			n.allocPortBuffers(r, p)
		}
		link(PortNorth, r.Coord.X, r.Coord.Y-1)
		link(PortSouth, r.Coord.X, r.Coord.Y+1)
		link(PortWest, r.Coord.X-1, r.Coord.Y)
		link(PortEast, r.Coord.X+1, r.Coord.Y)
	}
	return n
}

func (n *Network) allocPortBuffers(r *Router, p PortID) {
	if r.in[p] != nil {
		return
	}
	bufs := make([]*Buffer, n.cfg.VCs)
	for vc := range bufs {
		bufs[vc] = &Buffer{cap: n.cfg.BufferCap, lastArr: -1}
		if n.occTrack {
			bufs[vc].owner = r
			bufs[vc].bit = uint8(int(p)*n.cfg.VCs + vc)
		}
	}
	r.in[p] = bufs
	r.nPorts++
	n.totalOutputs++
}

// AttachNode attaches a new endpoint to the router at (x, y) on the given
// port. Attaching to a direction port is only allowed when that port has no
// mesh neighbor (an edge port), which is how the paper's CPU clusters hang
// off the GPU mesh.
func (n *Network) AttachNode(x, y int, port PortID, kind DstType, label string) *Node {
	r := n.RouterAt(x, y)
	if r.peerRouter[port] != nil {
		panic(fmt.Sprintf("noc: port %s of %s already linked to a neighbor", port, r))
	}
	if r.peerNode[port] != nil {
		panic(fmt.Sprintf("noc: port %s of %s already has a node", port, r))
	}
	node := &Node{
		ID:     NodeID(len(n.nodes)),
		Kind:   kind,
		Label:  label,
		Router: r,
		Port:   port,
		net:    n,
	}
	r.peerNode[port] = node
	n.allocPortBuffers(r, port)
	n.nodes = append(n.nodes, node)
	n.inflightBySrc = append(n.inflightBySrc, 0)
	if want := (len(n.nodes) + 63) / 64; len(n.actN) < want {
		n.actN = append(n.actN, 0)
	}
	return node
}

// SetPolicy installs the arbitration policy. If the policy also implements
// Matcher, whole-router matching is used instead of per-output selection.
func (n *Network) SetPolicy(p Policy) {
	n.policy = p
	n.matcher, _ = p.(Matcher)
	n.grantOb, _ = p.(GrantObserver)
}

// Policy returns the installed arbitration policy.
func (n *Network) Policy() Policy { return n.policy }

// SetRouting installs a routing algorithm, replacing built-in X-Y routing
// (pass nil to restore it). Installing a Routing marks the network faulty so
// unreachable verdicts are honored; with all links healthy, the reference
// implementations route identically to X-Y.
func (n *Network) SetRouting(rt Routing) {
	n.routing = rt
	if rt != nil {
		n.faulty = true
	}
	n.refreshEvictMode()
	// The new routing may reach different verdicts on every buffered head.
	n.markAllEvictDirty()
}

// Routing returns the installed routing algorithm, or nil when the built-in
// X-Y routing is active.
func (n *Network) Routing() Routing { return n.routing }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Torus reports whether the network's dimensions wrap around (2D torus).
func (n *Network) Torus() bool { return n.cfg.Torus }

// Distance returns the minimal hop distance between two router coordinates
// under the network's topology: Manhattan distance on a mesh, per-dimension
// ring distance on a torus.
func (n *Network) Distance(a, b Coord) int {
	if !n.cfg.Torus {
		return a.Manhattan(b)
	}
	return ringDist(a.X, b.X, n.cfg.Width) + ringDist(a.Y, b.Y, n.cfg.Height)
}

// Cycle returns the current simulation cycle.
func (n *Network) Cycle() int64 { return n.cycle }

// RouterAt returns the router at mesh coordinate (x, y).
func (n *Network) RouterAt(x, y int) *Router {
	if x < 0 || y < 0 || x >= n.cfg.Width || y >= n.cfg.Height {
		panic(fmt.Sprintf("noc: router (%d,%d) out of range", x, y))
	}
	return n.routers[y*n.cfg.Width+x]
}

// Routers returns all routers in row-major order.
func (n *Network) Routers() []*Router { return n.routers }

// Nodes returns all attached nodes in attachment order.
func (n *Network) Nodes() []*Node { return n.nodes }

// Node returns the node with the given ID.
func (n *Network) Node(id NodeID) *Node { return n.nodes[id] }

// Stats returns the accumulated network statistics.
func (n *Network) Stats() *Stats { return &n.stats }

// ResetStats clears latency and counter statistics (typically after warmup).
// In-flight bookkeeping is preserved.
func (n *Network) ResetStats() {
	n.stats = Stats{}
	n.windowLatencySum = 0
	n.windowDelivered = 0
}

// InFlight returns the number of messages currently inside the network.
func (n *Network) InFlight() int64 { return n.inflightCount }

// OutstandingFrom returns the number of in-flight messages injected by the
// given source node (Table 2 "In-flight messages" feature).
func (n *Network) OutstandingFrom(src NodeID) int { return n.inflightBySrc[src] }

// AvgInFlightAge returns the mean age of all in-flight messages at the
// current cycle, or 0 when the network is empty.
func (n *Network) AvgInFlightAge() float64 {
	if n.inflightCount == 0 {
		return 0
	}
	return float64(n.cycle*n.inflightCount-n.inflightBase) / float64(n.inflightCount)
}

// TakeDeliveryWindow returns and resets the (latency sum, count) of messages
// delivered since the previous call. The accumulated-latency reward function
// samples this every period.
func (n *Network) TakeDeliveryWindow() (sum int64, count int64) {
	sum, count = n.windowLatencySum, n.windowDelivered
	n.windowLatencySum, n.windowDelivered = 0, 0
	return sum, count
}

// LinkUtilization returns the fraction of connected output ports that were
// transferring a message during the most recently completed cycle (Section
// 6.3 "link utilization" reward).
func (n *Network) LinkUtilization() float64 { return n.lastUtil }

// AllocMessage returns a zeroed Message, reusing one the engine recycled
// after delivery or eviction when possible. Messages from this pool are
// returned to it as soon as they are delivered (after the destination node's
// Sink and the observers ran) — callers and sinks must not retain the
// pointer past that point. Traffic generators and protocol layers use this
// to make steady-state injection allocation-free.
func (n *Network) AllocMessage() *Message {
	if k := len(n.msgFree); k > 0 {
		m := n.msgFree[k-1]
		n.msgFree = n.msgFree[:k-1]
		*m = Message{pooled: true}
		return m
	}
	return &Message{pooled: true}
}

// recycleMessage returns a pooled message to the freelist. Messages built
// with plain &Message{} literals are left alone: the engine cannot know who
// still references them.
func (n *Network) recycleMessage(m *Message) {
	if m.pooled {
		n.msgFree = append(n.msgFree, m)
	}
}

// routeMemoUnset marks an uncomputed routeMemo entry. It must differ from
// every real PortID and from RouteUnreachable.
const routeMemoUnset PortID = -2

// routeMemoMaxEntries caps the X-Y route memo: past this size (512 KiB of
// PortIDs — a 16x16 cores-on-every-router mesh) the table no longer fits the
// cache, and a random-access lookup costs more than the few compares of
// DirToward it memoizes. Bigger topologies compute X-Y routes directly; the
// result is the same either way, only the lookup cost changes.
const routeMemoMaxEntries = 64 * 1024

// ensureRouteMemo sizes the X-Y route memo for the current router and node
// counts, invalidating it when nodes were attached since the last build.
func (n *Network) ensureRouteMemo() {
	want := len(n.routers) * len(n.nodes)
	if n.routeDirect = want > routeMemoMaxEntries; n.routeDirect {
		n.routeMemo = nil
		return
	}
	if len(n.routeMemo) == want {
		return
	}
	n.routeMemo = make([]PortID, want)
	for i := range n.routeMemo {
		n.routeMemo[i] = routeMemoUnset
	}
}

// xyRouteMemo returns XYPort(m) at r through the (router, destination) memo,
// or directly when the topology is past the memo size cap. Callers must have
// called ensureRouteMemo and must only use it while no Routing override is
// installed.
func (n *Network) xyRouteMemo(r *Router, m *Message) PortID {
	if n.routeDirect {
		return r.XYPort(m)
	}
	idx := r.id*len(n.nodes) + int(m.Dst)
	if out := n.routeMemo[idx]; out != routeMemoUnset {
		return out
	}
	out := r.XYPort(m)
	n.routeMemo[idx] = out
	return out
}

// Step advances the simulation by one cycle: deliveries scheduled for this
// cycle land, nodes inject, every router arbitrates its free output ports,
// and OnCycle runs.
func (n *Network) Step() {
	if n.policy == nil {
		panic("noc: Step called with no policy installed")
	}
	n.cycle++
	n.deliver()
	n.inject()
	n.arbitrate()
	n.countUtilization()
	if n.faulty {
		n.fstats.DowntimeCycles += n.fstats.LinksDown
	}
	if n.OnCycle != nil {
		n.OnCycle(n)
	}
}

// Run advances the simulation by cycles steps.
func (n *Network) Run(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		n.Step()
	}
}

// Drain steps the simulation until every injected message has been delivered
// and all node injection queues are empty, or maxCycles additional cycles
// elapse. It reports whether the network fully drained.
func (n *Network) Drain(maxCycles int64) bool {
	for i := int64(0); i < maxCycles; i++ {
		if n.Quiescent() {
			return true
		}
		n.Step()
	}
	return n.Quiescent()
}

// Quiescent reports whether no messages are in flight and no node has pending
// injections. It is O(1): the pending-injection total is maintained
// incrementally as messages enter and leave the node queues.
func (n *Network) Quiescent() bool {
	return n.inflightCount == 0 && n.pending == 0 && n.pendingInj == 0
}

// PendingInjections returns the total number of messages queued at nodes that
// have not yet entered the network.
func (n *Network) PendingInjections() int { return n.pendingInj }

func (n *Network) schedule(delay int64, d delivery) {
	if delay <= 0 {
		panic("noc: delivery delay must be positive")
	}
	if delay >= int64(len(n.wheel)) {
		panic(fmt.Sprintf(
			"noc: delivery delay %d does not fit the %d-slot wheel (MaxFlits=%d; message %s has %d flits)",
			delay, len(n.wheel), n.cfg.MaxFlits, d.msg, d.msg.SizeFlits))
	}
	slot := (n.cycle + delay) % int64(len(n.wheel))
	n.wheel[slot] = append(n.wheel[slot], d)
	n.pending++
}

func (n *Network) deliver() {
	slot := n.cycle % int64(len(n.wheel))
	ds := n.wheel[slot]
	if len(ds) == 0 {
		return
	}
	n.wheel[slot] = ds[:0]
	n.pending -= len(ds)
	for _, d := range ds {
		if d.router != nil {
			buf := d.router.in[d.port][d.vc]
			buf.reserved--
			buf.push(n.cycle, d.msg)
			continue
		}
		// Ejection at destination node.
		m := d.msg
		lat := n.cycle - m.InjectCycle
		n.stats.Delivered++
		genLat := float64(n.cycle - m.GenCycle)
		n.stats.Latency.Add(genLat)
		n.stats.NetLatency.Add(float64(lat))
		n.stats.HopLatency.Add(float64(m.HopCount))
		for int(m.Src) >= len(n.stats.PerSource) {
			n.stats.PerSource = append(n.stats.PerSource, stats.Accumulator{})
		}
		n.stats.PerSource[m.Src].Add(genLat)
		n.windowLatencySum += lat
		n.windowDelivered++
		n.inflightCount--
		n.inflightBase -= m.InjectCycle
		n.inflightBySrc[m.Src]--
		if d.node.Sink != nil {
			d.node.Sink(n.cycle, m)
		}
		if len(n.observers) > 0 {
			n.observeDeliver(d.node, m)
		}
		n.recycleMessage(m)
	}
}

func (n *Network) inject() {
	if n.pendingInj == 0 {
		return // no node holds a queued message; nothing can inject
	}
	if n.fullScan {
		for _, node := range n.nodes {
			if node.injectHead >= len(node.injectQ) {
				continue
			}
			n.injectFrom(node)
		}
		return
	}
	// Visit only nodes with a pending injection, in ascending node ID —
	// the same order the full scan produces. The per-word snapshot is safe:
	// injectFrom never sets a node-activity bit (it only dequeues), so no
	// active node can be missed mid-scan.
	for wi, word := range n.actN {
		if word == 0 {
			continue
		}
		base := wi << 6
		for ; word != 0; word &= word - 1 {
			n.injectFrom(n.nodes[base+bits.TrailingZeros64(word)])
		}
	}
}

// injectFrom moves the head of node's injection queue into its attach buffer
// if the attach link is up and the buffer has space. The caller guarantees
// the queue is non-empty.
func (n *Network) injectFrom(node *Node) {
	if n.faulty && node.Router.linkDown[node.Port] {
		return // the node's attach link is down; injections wait
	}
	m := node.injectQ[node.injectHead]
	if int(m.Class) >= n.cfg.VCs {
		panic(fmt.Sprintf("noc: %s has class %d but network has %d VCs",
			m, m.Class, n.cfg.VCs))
	}
	buf := node.Router.in[node.Port][m.Class]
	if !buf.Free() {
		return
	}
	node.dequeue()

	dst := n.nodes[m.Dst]
	m.InjectCycle = n.cycle
	m.Distance = n.Distance(node.Router.Coord, dst.Router.Coord)
	m.DstKind = dst.Kind
	m.HopCount = 0
	buf.push(n.cycle, m)

	n.stats.Injected++
	n.inflightCount++
	n.inflightBase += n.cycle
	n.inflightBySrc[m.Src]++
	if len(n.observers) > 0 {
		n.observeInject(node, m)
	}
}

// gatherCandidates collects the competing input buffers for output port out
// of router r: head messages routed to out, whose input port has not already
// forwarded a message this cycle, and whose downstream buffer (for hops) has
// space. The result is valid until the next gather call.
//
// With occupancy tracking on, the walk visits only non-empty buffers by
// iterating r.occ's set bits; bit order is (port, VC) ascending, so the
// candidate order — and the sequence of Route calls, which fault-aware
// Routing implementations are sensitive to — matches the full scan exactly.
func (n *Network) gatherCandidates(r *Router, out PortID) []Candidate {
	cands := n.candScratch[:0]
	if n.occTrack {
		vcs := n.cfg.VCs
		for mask := r.occ; mask != 0; mask &= mask - 1 {
			bit := bits.TrailingZeros64(mask)
			p := PortID(bit / vcs)
			if r.inGrantedAt[p] == n.cycle {
				continue
			}
			vc := bit - int(p)*vcs
			m := r.in[p][vc].q[0]
			if r.Route(m) != out {
				continue
			}
			if next := r.peerRouter[out]; next != nil {
				if !next.in[out.Opposite()][vc].Free() {
					continue
				}
			}
			cands = append(cands, Candidate{Port: p, VC: vc, Msg: m})
		}
		n.candScratch = cands
		return cands
	}
	for p := PortID(0); p < MaxPorts; p++ {
		if r.in[p] == nil || r.inGrantedAt[p] == n.cycle {
			continue
		}
		for vc, buf := range r.in[p] {
			m := buf.Head()
			if m == nil || r.Route(m) != out {
				continue
			}
			if next := r.peerRouter[out]; next != nil {
				if !next.in[out.Opposite()][vc].Free() {
					continue
				}
			}
			cands = append(cands, Candidate{Port: p, VC: vc, Msg: m})
		}
	}
	n.candScratch = cands
	return cands
}

func (n *Network) applyGrant(r *Router, out PortID, c Candidate) {
	buf := r.in[c.Port][c.VC]
	m := buf.pop()
	if m != c.Msg {
		panic("noc: granted candidate is no longer at its buffer head")
	}
	r.outBusyUntil[out] = n.cycle + int64(m.SizeFlits)
	r.inGrantedAt[c.Port] = n.cycle
	if n.faulty && out != r.XYPort(m) {
		n.fstats.Reroutes++
	}
	// The output stays busy for cycles [now, now+SizeFlits); schedule the
	// matching busy-count decrement for the cycle it frees up.
	n.busyOutputs++
	n.busyRelease[(n.cycle+int64(m.SizeFlits))%int64(len(n.busyRelease))]++
	if len(n.observers) > 0 {
		n.observeGrant(r, out, c)
	}

	if next := r.peerRouter[out]; next != nil {
		m.HopCount++
		inPort := out.Opposite()
		next.in[inPort][c.VC].reserved++
		n.schedule(int64(m.SizeFlits), delivery{
			msg: m, router: next, port: inPort, vc: c.VC,
		})
		return
	}
	node := r.peerNode[out]
	if node == nil {
		panic(fmt.Sprintf("noc: grant to unconnected output %s of %s", out, r))
	}
	if m.Dst != node.ID {
		panic(fmt.Sprintf("noc: %s misrouted to %s", m, node))
	}
	n.schedule(int64(m.SizeFlits), delivery{msg: m, node: node})
}

func (n *Network) arbitrate() {
	active := n.activeOK()
	if n.shards > 1 && n.shardReady() &&
		(!active || n.actRCount >= n.shardMinActive*n.shards) {
		n.arbitrateSharded()
		return
	}
	if n.matcher != nil {
		n.arbitrateMatched(active)
		return
	}
	fast := n.fusedScanOK()
	ctx := &n.arbCtx
	*ctx = ArbContext{Net: n, Cycle: n.cycle}
	if active {
		// Visit only routers with buffered messages, ascending router ID —
		// the order the full scan produces. Per-word snapshots are safe: no
		// activity bit is ever set during arbitration (deliveries land on
		// future cycles, grants and evictions only pop), and a mid-word
		// clear can only come from the router currently being visited.
		// Under a ShardSafe routing the routed path folds the eviction probe
		// and the per-output route lookups into one Route call per head.
		routed := n.evictMode == evictLazy
		for wi, word := range n.actR {
			if word == 0 {
				continue
			}
			base := wi << 6
			for ; word != 0; word &= word - 1 {
				r := n.routers[base+bits.TrailingZeros64(word)]
				if n.faulty {
					if r.frozen {
						continue
					}
					if !routed {
						n.maybeEvict(r)
					}
				}
				ctx.Router = r
				switch {
				case fast:
					n.arbitrateRouterFused(ctx, r)
				case routed:
					n.arbitrateRouterRouted(ctx, r)
				default:
					n.arbitrateRouterLegacy(ctx, r)
				}
			}
		}
		return
	}
	// Full-scan reference path: every router, unconditional eviction sweep.
	for _, r := range n.routers {
		if n.faulty {
			if r.frozen {
				continue
			}
			n.evictUnreachable(r)
		}
		ctx.Router = r
		if fast {
			n.arbitrateRouterFused(ctx, r)
			continue
		}
		n.arbitrateRouterLegacy(ctx, r)
	}
}

// arbitrateRouterLegacy arbitrates r's outputs with one gather per output —
// the reference per-router sequence the fused and sharded paths must
// reproduce, and the path sharded phase 2 falls back to for routers whose
// phase-1 plan was invalidated by an unreachable head.
func (n *Network) arbitrateRouterLegacy(ctx *ArbContext, r *Router) {
	for out := PortID(0); out < MaxPorts; out++ {
		if !r.HasPort(out) || r.linkDown[out] || r.OutputBusy(out, n.cycle) {
			continue
		}
		cands := n.gatherCandidates(r, out)
		if len(cands) == 0 {
			continue
		}
		ctx.Out = out
		n.selectAndGrant(ctx, r, out, cands)
	}
}

// fusedScanOK reports whether arbitration may use the fused single-scan path:
// it routes through the X-Y memo with one route lookup per buffered head, so
// it is only sound while routing is the built-in pure X-Y function (an
// installed Routing may be stateful — the fault-aware router mutates
// Message.RouteBits — and must see the per-output probe sequence the legacy
// gather produces).
func (n *Network) fusedScanOK() bool {
	if n.routing != nil || !n.occTrack {
		return false
	}
	n.ensureRouteMemo()
	return true
}

func (n *Network) selectAndGrant(ctx *ArbContext, r *Router, out PortID, cands []Candidate) {
	choice := 0
	if len(cands) > 1 {
		choice = n.policy.Select(ctx, cands)
		if choice < 0 || choice >= len(cands) {
			panic(fmt.Sprintf("noc: policy %s returned choice %d of %d candidates",
				n.policy.Name(), choice, len(cands)))
		}
	}
	if n.grantOb != nil {
		n.grantOb.ObserveGrant(ctx, cands, choice)
	}
	if len(n.arbObs) > 0 && len(cands) > 1 {
		n.observeArb(r, out, cands, choice)
	}
	n.applyGrant(r, out, cands[choice])
}

// scanHeads makes one pass over r's occupancy bitmask, bucketing every
// buffered head whose (memoized X-Y) output is grantable this cycle and
// whose downstream buffer has space into n.outHeads[out]. It returns the
// bitmask of outputs that received at least one candidate. Head order within
// each output is (port, VC) ascending — identical to gatherCandidates.
func (n *Network) scanHeads(r *Router) (filled uint32) {
	var freeOuts uint32
	for out := PortID(0); out < MaxPorts; out++ {
		if r.HasPort(out) && !r.linkDown[out] && !r.OutputBusy(out, n.cycle) {
			freeOuts |= 1 << out
		}
	}
	if freeOuts == 0 {
		return 0
	}
	vcs := n.cfg.VCs
	for mask := r.occ; mask != 0; mask &= mask - 1 {
		bit := bits.TrailingZeros64(mask)
		p := PortID(bit / vcs)
		vc := bit - int(p)*vcs
		m := r.in[p][vc].q[0]
		out := n.xyRouteMemo(r, m)
		if freeOuts&(1<<out) == 0 {
			continue
		}
		if next := r.peerRouter[out]; next != nil && !next.in[out.Opposite()][vc].Free() {
			continue
		}
		if filled&(1<<out) == 0 {
			filled |= 1 << out
			n.outHeads[out] = n.outHeads[out][:0]
		}
		n.outHeads[out] = append(n.outHeads[out], Candidate{Port: p, VC: vc, Msg: m})
	}
	return filled
}

// arbitrateRouterFused arbitrates all outputs of r from one occupancy-mask
// scan instead of one gather per output. Grants are applied per output in
// ascending order, filtering out candidates whose input port was granted by
// an earlier output of the same router this cycle — the exact exclusion the
// sequential gather applies, so policies see identical candidate lists. The
// downstream-space check does not move: within a router's turn only its own
// grants could change it, and each output is granted at most once.
func (n *Network) arbitrateRouterFused(ctx *ArbContext, r *Router) {
	if r.occ == 0 {
		return
	}
	filled := n.scanHeads(r)
	for out := PortID(0); out < MaxPorts; out++ {
		if filled&(1<<out) == 0 {
			continue
		}
		cands := n.candScratch[:0]
		for _, c := range n.outHeads[out] {
			if r.inGrantedAt[c.Port] == n.cycle {
				continue
			}
			cands = append(cands, c)
		}
		n.candScratch = cands
		if len(cands) == 0 {
			continue
		}
		ctx.Out = out
		n.selectAndGrant(ctx, r, out, cands)
	}
}

func (n *Network) arbitrateMatched(active bool) {
	fast := n.fusedScanOK()
	if cap(n.candArena) < MaxPorts*n.cfg.VCs {
		// Each head routes to exactly one output, so a router's requests
		// hold at most one candidate per (port, VC) buffer: the arena never
		// regrows in the fused path and rarely overflows in the legacy one.
		n.candArena = make([]Candidate, 0, MaxPorts*n.cfg.VCs)
	}
	mctx := &n.matchCtx
	*mctx = MatchContext{Net: n, Cycle: n.cycle}
	if active {
		// Active-set scan; see arbitrate for the snapshot-safety argument.
		for wi, word := range n.actR {
			if word == 0 {
				continue
			}
			base := wi << 6
			for ; word != 0; word &= word - 1 {
				r := n.routers[base+bits.TrailingZeros64(word)]
				if n.faulty {
					if r.frozen {
						continue
					}
					n.maybeEvict(r)
				}
				n.matchRouter(mctx, r, fast)
			}
		}
		return
	}
	for _, r := range n.routers {
		if n.faulty {
			if r.frozen {
				continue
			}
			n.evictUnreachable(r)
		}
		n.matchRouter(mctx, r, fast)
	}
}

// matchRouter builds router r's per-output requests (fused single scan or
// legacy per-output gather) and hands them to the installed matcher.
func (n *Network) matchRouter(mctx *MatchContext, r *Router, fast bool) {
	arena := n.candArena[:0]
	reqs := n.reqScratch[:0]
	if fast {
		filled := uint32(0)
		if r.occ != 0 {
			filled = n.scanHeads(r)
		}
		for out := PortID(0); out < MaxPorts; out++ {
			if filled&(1<<out) == 0 {
				continue
			}
			start := len(arena)
			arena = append(arena, n.outHeads[out]...)
			reqs = append(reqs, Request{Out: out, Cands: arena[start:len(arena):len(arena)]})
		}
	} else {
		arena, reqs = n.gatherRequestsLegacy(r, arena, reqs)
	}
	n.matchAndApply(mctx, r, reqs)
}

// gatherRequestsLegacy builds r's per-output requests with one gather per
// output, parking candidates in arena. Appending to the arena must never
// reallocate, or earlier requests' slices would go stale — overflow falls
// back to a fresh slice instead.
func (n *Network) gatherRequestsLegacy(r *Router, arena []Candidate, reqs []Request) ([]Candidate, []Request) {
	for out := PortID(0); out < MaxPorts; out++ {
		if !r.HasPort(out) || r.linkDown[out] || r.OutputBusy(out, n.cycle) {
			continue
		}
		cands := n.gatherCandidates(r, out)
		if len(cands) == 0 {
			continue
		}
		var own []Candidate
		if len(arena)+len(cands) <= cap(arena) {
			start := len(arena)
			arena = append(arena, cands...)
			own = arena[start:len(arena):len(arena)]
		} else {
			own = make([]Candidate, len(cands))
			copy(own, cands)
		}
		reqs = append(reqs, Request{Out: out, Cands: own})
	}
	return arena, reqs
}

// matchAndApply runs the installed matcher over r's requests and applies the
// grants, enforcing the one-grant-per-input-port invariant.
func (n *Network) matchAndApply(mctx *MatchContext, r *Router, reqs []Request) {
	n.reqScratch = reqs[:0]
	if len(reqs) == 0 {
		return
	}
	mctx.Router = r
	grants := n.matcher.Match(mctx, reqs)
	if len(grants) != len(reqs) {
		panic(fmt.Sprintf("noc: matcher %s returned %d grants for %d requests",
			n.policy.Name(), len(grants), len(reqs)))
	}
	var usedIn [MaxPorts]bool
	for i, g := range grants {
		if len(n.arbObs) > 0 && (len(reqs[i].Cands) > 1 || g < 0) {
			n.observeArb(r, reqs[i].Out, reqs[i].Cands, g)
		}
		if g < 0 {
			continue
		}
		if g >= len(reqs[i].Cands) {
			panic(fmt.Sprintf("noc: matcher %s grant %d out of range", n.policy.Name(), g))
		}
		c := reqs[i].Cands[g]
		if usedIn[c.Port] {
			panic(fmt.Sprintf("noc: matcher %s granted input port %s twice", n.policy.Name(), c.Port))
		}
		usedIn[c.Port] = true
		n.applyGrant(r, reqs[i].Out, c)
	}
}

func (n *Network) countUtilization() {
	// Retire ports whose serialization ended this cycle (outBusyUntil ==
	// cycle): they were busy through cycle-1 but are idle now. Grants made
	// this cycle always release at cycle+SizeFlits >= cycle+1, so the slot
	// only holds releases that are due.
	slot := n.cycle % int64(len(n.busyRelease))
	n.busyOutputs -= n.busyRelease[slot]
	n.busyRelease[slot] = 0
	if n.totalOutputs == 0 {
		n.lastUtil = 0
		return
	}
	n.lastUtil = float64(n.busyOutputs) / float64(n.totalOutputs)
}
