package noc

// RouteUnreachable is the explicit unreachable-destination verdict a Routing
// implementation returns when no admissible healthy path to the destination
// exists from the queried router. The engine evicts a head message whose
// route is RouteUnreachable from its buffer, counts it in FaultStats, and
// reports it through the unreachable handler — messages are never silently
// blackholed.
const RouteUnreachable PortID = -1

// Routing is a pluggable per-hop routing algorithm. Route returns the output
// port taking m one hop closer to its destination from router r, the
// destination node's attach port once m sits at its destination router, or
// RouteUnreachable when no healthy path exists.
//
// Route is called from the arbitration hot path (several times per head
// message per cycle) and must be deterministic and side-effect free per
// cycle. Implementations that maintain tables (see internal/fault) rebuild
// them from fault events, not inside Route.
//
// The active-set engine additionally leans on that determinism for routings
// that declare themselves ShardSafe: because a head's verdict can only change
// when the fault state changes or a different message reaches the head, the
// unreachable-eviction sweep re-probes only routers flagged by such a
// transition (see the evict-dirty tracking in activeset.go) instead of every
// router every faulty cycle. Opaque routings keep the full per-cycle probe.
//
// When no Routing is installed the engine uses built-in dimension-ordered
// X-Y routing (XYRouting's behaviour) without an interface call.
type Routing interface {
	Name() string
	Route(r *Router, m *Message) PortID
}

// XYRouting is dimension-ordered X-Y routing, the default algorithm: correct
// X first, then Y, then deliver to the destination node's attach port. It is
// oblivious to link faults: a message whose X-Y port is a dead link waits
// (and is flagged by the obs watchdog as fault-blackholed) rather than
// rerouting.
type XYRouting struct{}

// Name implements Routing.
func (XYRouting) Name() string { return "xy" }

// Route implements Routing.
func (XYRouting) Route(r *Router, m *Message) PortID { return r.XYPort(m) }

// ShardSafe implements ShardSafeRouting: X-Y routing is a pure function of
// (router, message destination) with no cross-router state.
func (XYRouting) ShardSafe() bool { return true }
