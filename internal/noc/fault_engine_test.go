package noc

import "testing"

// stubRouting routes via fn; used to exercise engine fault hooks without
// importing internal/fault (which would be an import cycle from this package).
type stubRouting struct {
	fn func(r *Router, m *Message) PortID
}

func (stubRouting) Name() string                         { return "stub" }
func (s stubRouting) Route(r *Router, m *Message) PortID { return s.fn(r, m) }

func TestLinkDownBlocksGrants(t *testing.T) {
	net, cores := buildMesh(t, 2, 1, 1)
	net.SetPolicy(firstPolicy{})
	net.SetLinkDown(0, PortEast, true)
	if net.RouterAt(0, 0).LinkUp(PortEast) {
		t.Fatal("link reported up after SetLinkDown")
	}
	if got := net.FaultStats().LinksDown; got != 1 {
		t.Fatalf("LinksDown = %d, want 1", got)
	}
	cores[0].Inject(&Message{ID: 1, Dst: cores[1].ID, SizeFlits: 1})
	net.Run(50)
	if net.Stats().Delivered != 0 {
		t.Fatal("message crossed a dead link")
	}
	if net.RouterAt(0, 0).Buffer(PortCore, 0).Len() != 1 {
		t.Fatal("message left its buffer despite the dead output link")
	}
	if got := net.FaultStats().DowntimeCycles; got != 50 {
		t.Fatalf("DowntimeCycles = %d, want 50", got)
	}
	// Restoring the link lets the message through.
	net.SetLinkDown(0, PortEast, false)
	if !net.Drain(100) || net.Stats().Delivered != 1 {
		t.Fatalf("after restore: delivered %d, want 1", net.Stats().Delivered)
	}
}

func TestLinkDownRequeuesInFlight(t *testing.T) {
	net, cores := buildMesh(t, 2, 1, 1)
	net.SetPolicy(firstPolicy{})
	cores[0].Inject(&Message{ID: 1, Dst: cores[1].ID, SizeFlits: 5})
	// One step: the message is injected, granted, and starts serializing
	// across the east link (5 flits, so it lands 5 cycles later).
	net.Step()
	r0 := net.RouterAt(0, 0)
	if r0.Buffer(PortCore, 0).Len() != 0 || net.Stats().Delivered != 0 {
		t.Fatal("message is not in flight after one step")
	}
	requeued := net.SetLinkDown(0, PortEast, true)
	if requeued != 1 {
		t.Fatalf("SetLinkDown requeued %d messages, want 1", requeued)
	}
	if got := net.FaultStats().Requeued; got != 1 {
		t.Fatalf("Requeued stat = %d, want 1", got)
	}
	if r0.Buffer(PortEast, 0).Len() != 1 {
		t.Fatal("in-flight message was not requeued at the upstream router")
	}
	// The message must not have been lost or double-counted: restore the
	// link, drain, and see exactly one delivery with a single counted hop.
	net.SetLinkDown(0, PortEast, false)
	var hops int
	cores[1].Sink = func(_ int64, m *Message) { hops = m.HopCount }
	if !net.Drain(100) {
		t.Fatal("network did not drain after link restore")
	}
	if net.Stats().Delivered != 1 {
		t.Fatalf("delivered %d, want exactly 1", net.Stats().Delivered)
	}
	if hops != 1 {
		t.Fatalf("delivered with HopCount=%d, want 1 (grant-time hop must be undone on requeue)", hops)
	}
}

func TestUnreachableEviction(t *testing.T) {
	net, cores := buildMesh(t, 2, 2, 1)
	net.SetPolicy(firstPolicy{})
	net.SetRouting(stubRouting{fn: func(r *Router, m *Message) PortID {
		return RouteUnreachable
	}})
	var gotRouter, gotDst int
	evictions := 0
	net.SetUnreachableHandler(func(now int64, r *Router, m *Message) {
		evictions++
		gotRouter, gotDst = r.ID(), int(m.Dst)
	})
	cores[0].Inject(&Message{ID: 1, Dst: cores[3].ID, SizeFlits: 1})
	net.Run(3)
	if evictions != 1 {
		t.Fatalf("unreachable handler ran %d times, want 1", evictions)
	}
	if gotRouter != 0 || gotDst != int(cores[3].ID) {
		t.Fatalf("evicted at router %d for dst %d, want router 0 dst %d", gotRouter, gotDst, cores[3].ID)
	}
	fs := net.FaultStats()
	if fs.Unreachable != 1 {
		t.Fatalf("Unreachable stat = %d, want 1", fs.Unreachable)
	}
	// Accounting identity: every injected message is delivered, evicted as
	// unreachable, or still in flight — and here nothing is in flight.
	if net.InFlight() != 0 {
		t.Fatalf("InFlight = %d after eviction, want 0", net.InFlight())
	}
	if !net.Quiescent() {
		t.Fatal("network not quiescent after eviction")
	}
	if s := net.Stats(); s.Injected != s.Delivered+fs.Unreachable {
		t.Fatalf("accounting broken: injected=%d delivered=%d unreachable=%d",
			s.Injected, s.Delivered, fs.Unreachable)
	}
}

// TestRequeueStranded pins the stranded-message rescue path: messages pulled
// out of an input buffer and off the delivery wheel go back to their source
// node's injection queue with the conservation identity
// Injected == Delivered + Unreachable + InFlight intact throughout.
func TestRequeueStranded(t *testing.T) {
	net, cores := buildMesh(t, 2, 1, 1)
	net.SetPolicy(firstPolicy{})
	// A 5-flit message that will be mid-link after one step, and a 1-flit
	// message still waiting in router 0's core input buffer behind it.
	cores[0].Inject(&Message{ID: 1, Dst: cores[1].ID, SizeFlits: 5})
	cores[0].Inject(&Message{ID: 2, Dst: cores[1].ID, SizeFlits: 1})
	net.Step()
	net.Step()
	if got := net.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d before rescue, want 2", got)
	}
	normalized := 0
	requeued := net.RequeueStranded(func(r *Router, p PortID, m *Message) bool {
		if m.ID == 2 {
			m.RouteBits = 7 // kept messages may be normalized in place
			normalized++
			return false
		}
		return true
	})
	if requeued != 1 {
		t.Fatalf("RequeueStranded returned %d, want 1", requeued)
	}
	if got := net.FaultStats().Requeued; got != 1 {
		t.Fatalf("Requeued stat = %d, want 1", got)
	}
	if normalized != 1 {
		t.Fatalf("strand saw the kept message %d times, want 1", normalized)
	}
	if got := cores[0].PendingInjections(); got != 1 {
		t.Fatalf("PendingInjections = %d after rescue, want 1", got)
	}
	if s := net.Stats(); s.Injected != s.Delivered+net.FaultStats().Unreachable+net.InFlight() {
		t.Fatalf("conservation broken after rescue: injected=%d delivered=%d inflight=%d",
			s.Injected, s.Delivered, net.InFlight())
	}
	var hops []int
	cores[1].Sink = func(_ int64, m *Message) { hops = append(hops, m.HopCount) }
	if !net.Drain(100) {
		t.Fatal("network did not drain after rescue")
	}
	if net.Stats().Delivered != 2 {
		t.Fatalf("delivered %d, want exactly 2 (no loss, no duplication)", net.Stats().Delivered)
	}
	for _, h := range hops {
		t.Logf("delivered with %d hops", h)
		if h != 1 {
			t.Fatalf("HopCount=%d, want 1 (grant-time hop must be undone on rescue)", h)
		}
	}
	if s := net.Stats(); s.Injected != s.Delivered {
		t.Fatalf("conservation broken after drain: injected=%d delivered=%d", s.Injected, s.Delivered)
	}
}

func TestFrozenRouterMakesNoGrants(t *testing.T) {
	net, cores := buildMesh(t, 2, 1, 1)
	net.SetPolicy(firstPolicy{})
	net.FreezeRouter(0, true)
	if got := net.FaultStats().FrozenRouters; got != 1 {
		t.Fatalf("FrozenRouters = %d, want 1", got)
	}
	cores[0].Inject(&Message{ID: 1, Dst: cores[1].ID, SizeFlits: 1})
	net.Run(50)
	if net.Stats().Delivered != 0 {
		t.Fatal("frozen router forwarded a message")
	}
	net.FreezeRouter(0, false)
	if !net.Drain(100) || net.Stats().Delivered != 1 {
		t.Fatalf("after thaw: delivered %d, want 1", net.Stats().Delivered)
	}
	if got := net.FaultStats().FrozenRouters; got != 0 {
		t.Fatalf("FrozenRouters = %d after thaw, want 0", got)
	}
}

func TestAttachPortDownBlocksInjection(t *testing.T) {
	net, cores := buildMesh(t, 2, 1, 1)
	net.SetPolicy(firstPolicy{})
	net.SetLinkDown(0, PortCore, true)
	cores[0].Inject(&Message{ID: 1, Dst: cores[1].ID, SizeFlits: 1})
	net.Run(20)
	if cores[0].PendingInjections() != 1 || net.Stats().Injected != 0 {
		t.Fatal("injection proceeded through a dead attach port")
	}
	net.SetLinkDown(0, PortCore, false)
	if !net.Drain(100) || net.Stats().Delivered != 1 {
		t.Fatalf("after restore: delivered %d, want 1", net.Stats().Delivered)
	}
}

// TestHealthyFaultHooksAreInert pins the zero-cost-off contract at the engine
// level: enabling the fault machinery without any actual fault (install and
// remove, or a down-up bounce before traffic) leaves behavior identical.
func TestHealthyFaultHooksAreInert(t *testing.T) {
	run := func(prep func(*Network)) (int64, float64) {
		net, cores := buildMesh(t, 3, 3, 2)
		net.SetPolicy(firstPolicy{})
		prep(net)
		id := uint64(0)
		for i := 0; i < 40; i++ {
			src := cores[i%len(cores)]
			dst := cores[(i*3+1)%len(cores)]
			if src == dst {
				continue
			}
			id++
			src.Inject(&Message{ID: id, Dst: dst.ID, Class: Class(i % 2), SizeFlits: 1 + i%4})
			net.Step()
		}
		net.Drain(10000)
		return net.Stats().Delivered, net.Stats().Latency.Mean()
	}
	baseD, baseL := run(func(*Network) {})
	bounceD, bounceL := run(func(n *Network) {
		n.SetLinkDown(0, PortEast, true)  // marks the network faulty...
		n.SetLinkDown(0, PortEast, false) // ...but leaves every link healthy
	})
	if baseD != bounceD || baseL != bounceL {
		t.Fatalf("healthy faulty-flagged run diverged: delivered %d/%d, latency %v/%v",
			baseD, bounceD, baseL, bounceL)
	}
}
