package noc

// Observer receives the structural events of a simulation: injections into the
// network, arbitration grants, and deliveries. Observers are the engine-level
// instrumentation hook used by the obs package; unlike GrantObserver (a policy
// concern), observers see every event regardless of the installed policy.
//
// Observer methods run inside Network.Step and must not call Step, Run or
// Drain. They may inspect any exported network state.
type Observer interface {
	// ObserveInject runs when a message leaves its node's injection queue and
	// enters the network at the source router.
	ObserveInject(now int64, node *Node, m *Message)
	// ObserveGrant runs for every arbitration grant, including the
	// single-candidate grants that bypass Policy.Select. The candidate's head
	// message has been granted output port out of router r.
	ObserveGrant(now int64, r *Router, out PortID, c Candidate)
	// ObserveDeliver runs when a message is ejected at its destination node.
	ObserveDeliver(now int64, node *Node, m *Message)
}

// AddObserver registers an engine observer. Multiple observers run in
// registration order.
func (n *Network) AddObserver(o Observer) {
	n.observers = append(n.observers, o)
}

// AddOnCycle chains f to run after the currently installed OnCycle hook (if
// any) at the end of every Step. It lets instrumentation attach without
// clobbering a hook already claimed by a policy or trainer.
func (n *Network) AddOnCycle(f func(*Network)) {
	prev := n.OnCycle
	if prev == nil {
		n.OnCycle = f
		return
	}
	n.OnCycle = func(net *Network) {
		prev(net)
		f(net)
	}
}

func (n *Network) observeInject(node *Node, m *Message) {
	for _, o := range n.observers {
		o.ObserveInject(n.cycle, node, m)
	}
}

func (n *Network) observeGrant(r *Router, out PortID, c Candidate) {
	for _, o := range n.observers {
		o.ObserveGrant(n.cycle, r, out, c)
	}
}

func (n *Network) observeDeliver(node *Node, m *Message) {
	for _, o := range n.observers {
		o.ObserveDeliver(n.cycle, node, m)
	}
}
