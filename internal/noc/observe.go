package noc

// Observer receives the structural events of a simulation: injections into the
// network, arbitration grants, and deliveries. Observers are the engine-level
// instrumentation hook used by the obs package; unlike GrantObserver (a policy
// concern), observers see every event regardless of the installed policy.
//
// Observer methods run inside Network.Step and must not call Step, Run or
// Drain. They may inspect any exported network state. ObserveInject
// additionally must not call Node.Inject: it fires mid-way through the
// inject stage's walk over the node-activity bitmap, and a node activated
// during that walk may or may not be visited in the same cycle. Node.Sink
// and OnCycle run after the stages that scan the bitmaps and remain the
// supported injection points.
type Observer interface {
	// ObserveInject runs when a message leaves its node's injection queue and
	// enters the network at the source router.
	ObserveInject(now int64, node *Node, m *Message)
	// ObserveGrant runs for every arbitration grant, including the
	// single-candidate grants that bypass Policy.Select. The candidate's head
	// message has been granted output port out of router r.
	ObserveGrant(now int64, r *Router, out PortID, c Candidate)
	// ObserveDeliver runs when a message is ejected at its destination node.
	ObserveDeliver(now int64, node *Node, m *Message)
}

// ArbObserver is an optional extension of Observer for instrumentation that
// needs to see whole arbitration decisions — the full competing candidate set
// and the arbiter's choice — not just the resulting grants. It runs for every
// contested (two-or-more-candidate) arbitration, and additionally whenever a
// Matcher leaves a requested output idle (chosen == -1, every candidate
// lost). Observers that also implement ArbObserver are registered for both
// event streams by AddObserver.
//
// The cands slice is only valid for the duration of the call.
type ArbObserver interface {
	ObserveArb(now int64, r *Router, out PortID, cands []Candidate, chosen int)
}

// FaultObserver is an optional extension of Observer for instrumentation that
// follows messages through fault events: requeues (off a killed link, or
// stranded by a routing-table rebuild) and unreachable evictions. Observers
// that also implement FaultObserver are registered by AddObserver.
type FaultObserver interface {
	// ObserveRequeue runs when a message is pulled out of harm's way: r and p
	// identify the buffer (link requeue) or in-flight channel (stranded
	// rescue) it was removed from.
	ObserveRequeue(now int64, r *Router, p PortID, m *Message)
	// ObserveUnreachable runs when a message is evicted with an explicit
	// unreachable-destination verdict at router r.
	ObserveUnreachable(now int64, r *Router, m *Message)
}

// AddObserver registers an engine observer. Multiple observers run in
// registration order. Observers that also implement ArbObserver or
// FaultObserver receive those event streams too.
func (n *Network) AddObserver(o Observer) {
	n.observers = append(n.observers, o)
	if ao, ok := o.(ArbObserver); ok {
		n.arbObs = append(n.arbObs, ao)
	}
	if fo, ok := o.(FaultObserver); ok {
		n.faultObs = append(n.faultObs, fo)
	}
}

// AddOnCycle chains f to run after the currently installed OnCycle hook (if
// any) at the end of every Step. It lets instrumentation attach without
// clobbering a hook already claimed by a policy or trainer.
func (n *Network) AddOnCycle(f func(*Network)) {
	prev := n.OnCycle
	if prev == nil {
		n.OnCycle = f
		return
	}
	n.OnCycle = func(net *Network) {
		prev(net)
		f(net)
	}
}

func (n *Network) observeInject(node *Node, m *Message) {
	for _, o := range n.observers {
		o.ObserveInject(n.cycle, node, m)
	}
}

func (n *Network) observeGrant(r *Router, out PortID, c Candidate) {
	for _, o := range n.observers {
		o.ObserveGrant(n.cycle, r, out, c)
	}
}

func (n *Network) observeDeliver(node *Node, m *Message) {
	for _, o := range n.observers {
		o.ObserveDeliver(n.cycle, node, m)
	}
}

func (n *Network) observeArb(r *Router, out PortID, cands []Candidate, chosen int) {
	for _, o := range n.arbObs {
		o.ObserveArb(n.cycle, r, out, cands, chosen)
	}
}

func (n *Network) observeRequeue(r *Router, p PortID, m *Message) {
	for _, o := range n.faultObs {
		o.ObserveRequeue(n.cycle, r, p, m)
	}
}

func (n *Network) observeUnreachable(r *Router, m *Message) {
	for _, o := range n.faultObs {
		o.ObserveUnreachable(n.cycle, r, m)
	}
}
