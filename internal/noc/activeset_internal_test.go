package noc

import (
	"fmt"
	"math/bits"
	"math/rand"
	"testing"
)

// attachRouting is a shard-safe X-Y routing that declares a destination
// unreachable while its attach link is down — verdicts are a pure function of
// (message destination, live link state), so it is legal for the lazy
// eviction mode and lets fault schedules create and repair unreachable heads
// mid-run.
type attachRouting struct{}

func (attachRouting) Name() string    { return "attach-xy" }
func (attachRouting) ShardSafe() bool { return true }
func (attachRouting) Route(r *Router, m *Message) PortID {
	dst := r.net.nodes[m.Dst]
	if dst.Router.linkDown[dst.Port] {
		return RouteUnreachable
	}
	return r.XYPort(m)
}

// fullScanOpt forces a network onto the full-scan reference engine.
func fullScanOpt(net *Network) { net.SetActiveStepping(false) }

// TestActiveSetInvariance pins the tentpole contract of this PR: the
// active-set stepping engine produces delivery traces and stats bit-identical
// to the full-scan engine, on mesh and torus, for an order-sensitive
// per-output policy and an order-sensitive whole-router matcher, sequentially
// and for every shard count — with the fork threshold both forced off and
// forced unreachably high (sequential active fallback under SetShards).
func TestActiveSetInvariance(t *testing.T) {
	cfgs := map[string]Config{
		"mesh8x8":  {Width: 8, Height: 8, VCs: 3, BufferCap: 2},
		"torus8x8": {Width: 8, Height: 8, VCs: 3, BufferCap: 2, Torus: true},
	}
	policies := map[string]Policy{"policy": orderPolicy{}, "matcher": orderMatcher{}}
	for cname, cfg := range cfgs {
		for pname, pol := range policies {
			t.Run(cname+"/"+pname, func(t *testing.T) {
				base, baseLog := shardRun(t, pol, cfg, 1, 600, nil, nil, fullScanOpt)
				// Sequential active-set.
				net, log := shardRun(t, pol, cfg, 1, 600, nil, nil)
				requireIdentical(t, 1, base, baseLog, net, log)
				// Sharded active-set, forking every cycle.
				for _, k := range []int{2, 4, 8} {
					net, log := shardRun(t, pol, cfg, k, 600, nil, nil)
					requireIdentical(t, k, base, baseLog, net, log)
				}
				// Sharded config whose threshold never engages: every cycle
				// must fall through to the sequential active-set path.
				net, log = shardRun(t, pol, cfg, 4, 600, nil, nil,
					func(n *Network) { n.SetShardMinActive(1 << 20) })
				if net.shardForks != 0 {
					t.Fatalf("fork ran %d times despite an unreachable threshold", net.shardForks)
				}
				requireIdentical(t, 4, base, baseLog, net, log)
			})
		}
	}
}

// TestActiveSetInvarianceFaulted runs the mid-run link-kill + freeze schedule
// under built-in X-Y routing: the active-set engine must keep the faulty-mode
// rules (frozen-router skip, eviction sweep, attach-link injection block)
// bit-identical to the full scan, sequentially and sharded.
func TestActiveSetInvarianceFaulted(t *testing.T) {
	cfg := Config{Width: 8, Height: 8, VCs: 3, BufferCap: 2}
	faults := func(net *Network, cycle int) {
		switch cycle {
		case 200:
			net.SetLinkDown(net.RouterAt(3, 3).ID(), PortEast, true)
			net.SetLinkDown(net.RouterAt(4, 3).ID(), PortWest, true)
			net.SetLinkDown(net.RouterAt(1, 6).ID(), PortCore, true)
			net.FreezeRouter(net.RouterAt(5, 5).ID(), true)
		case 450:
			net.SetLinkDown(net.RouterAt(3, 3).ID(), PortEast, false)
			net.SetLinkDown(net.RouterAt(4, 3).ID(), PortWest, false)
			net.SetLinkDown(net.RouterAt(1, 6).ID(), PortCore, false)
			net.FreezeRouter(net.RouterAt(5, 5).ID(), false)
		}
	}
	for pname, pol := range map[string]Policy{"policy": orderPolicy{}, "matcher": orderMatcher{}} {
		t.Run(pname, func(t *testing.T) {
			base, baseLog := shardRun(t, pol, cfg, 1, 600, nil, faults, fullScanOpt)
			if base.FaultStats().Requeued == 0 {
				t.Fatal("fault schedule requeued nothing; scenario is vacuous")
			}
			for _, k := range []int{1, 2, 4, 8} {
				net, log := shardRun(t, pol, cfg, k, 600, nil, faults)
				requireIdentical(t, k, base, baseLog, net, log)
			}
		})
	}
}

// TestActiveSetInvarianceUnreachable drives a run where a fault schedule makes
// buffered heads unreachable mid-flight (attach link killed, later repaired):
// the lazy eviction mode must find and evict exactly the same messages as the
// full scan's unconditional per-cycle probe, sequentially and sharded.
func TestActiveSetInvarianceUnreachable(t *testing.T) {
	cfg := Config{Width: 8, Height: 8, VCs: 3, BufferCap: 2}
	faults := func(net *Network, cycle int) {
		// Node 10's attach port: in-flight traffic toward it becomes
		// unreachable at 150 and routable again at 400.
		r := net.Node(10).Router
		switch cycle {
		case 150:
			net.SetLinkDown(r.ID(), net.Node(10).Port, true)
		case 400:
			net.SetLinkDown(r.ID(), net.Node(10).Port, false)
		}
	}
	base, baseLog := shardRun(t, orderPolicy{}, cfg, 1, 600, attachRouting{}, faults, fullScanOpt)
	if base.FaultStats().Unreachable == 0 {
		t.Fatal("no unreachable evictions; lazy eviction path not exercised")
	}
	for _, k := range []int{1, 2, 4, 8} {
		net, log := shardRun(t, orderPolicy{}, cfg, k, 600, attachRouting{}, faults)
		requireIdentical(t, k, base, baseLog, net, log)
		fs := net.FaultStats()
		if net.Stats().Injected != net.Stats().Delivered+fs.Unreachable+net.InFlight() {
			t.Fatalf("K=%d conservation broken: injected=%d delivered=%d unreachable=%d inflight=%d",
				k, net.Stats().Injected, net.Stats().Delivered, fs.Unreachable, net.InFlight())
		}
	}
}

// checkBitmaps recomputes the activity bitmaps brute-force from the buffer
// and queue state and diffs them against the incrementally maintained ones.
func checkBitmaps(t *testing.T, net *Network, when string) {
	t.Helper()
	count := 0
	for _, r := range net.routers {
		// Re-derive occ from the buffers, then the activity bit from occ.
		var occ uint64
		for p := PortID(0); p < MaxPorts; p++ {
			for vc, buf := range r.in[p] {
				if buf.Len() > 0 {
					occ |= 1 << uint(int(p)*net.cfg.VCs+vc)
				}
			}
		}
		if occ != r.occ {
			t.Fatalf("%s: router %d occ = %b, brute force %b", when, r.id, r.occ, occ)
		}
		got := net.actR[r.actWord]&r.actMask != 0
		if want := occ != 0; got != want {
			t.Fatalf("%s: router %d activity bit = %v, occ = %b", when, r.id, got, occ)
		}
		if occ != 0 {
			count++
		}
	}
	if count != net.actRCount {
		t.Fatalf("%s: actRCount = %d, brute force %d", when, net.actRCount, count)
	}
	for wi, word := range net.actR {
		pop := 0
		for _, r := range net.routers {
			if r.actWord == wi && r.occ != 0 {
				pop++
			}
		}
		if bits.OnesCount64(word) != pop {
			t.Fatalf("%s: actR word %d popcount = %d, brute force %d", when, wi, bits.OnesCount64(word), pop)
		}
	}
	for _, nd := range net.nodes {
		got := net.actN[nd.ID>>6]&(1<<(uint(nd.ID)&63)) != 0
		if want := nd.PendingInjections() > 0; got != want {
			t.Fatalf("%s: node %d activity bit = %v, pending = %d", when, nd.ID, got, nd.PendingInjections())
		}
	}
}

// checkDirtySuperset verifies the lazy-eviction soundness invariant under a
// shard-safe routing: an active, unfrozen router whose evict-dirty bit is
// clear has no buffered head with an unreachable verdict. (Probing is safe
// here because attachRouting is pure.)
func checkDirtySuperset(t *testing.T, net *Network, when string) {
	t.Helper()
	for _, r := range net.routers {
		if r.occ == 0 || r.frozen || net.evictDirty[r.actWord]&r.actMask != 0 {
			continue
		}
		for p := PortID(0); p < MaxPorts; p++ {
			for _, buf := range r.in[p] {
				if m := buf.Head(); m != nil && r.Route(m) == RouteUnreachable {
					t.Fatalf("%s: router %d is clean but head %s is unreachable", when, r.id, m)
				}
			}
		}
	}
}

// TestActiveSetBitmapInvariants fuzzes a small faulted mesh — random
// injections, link kills and repairs, freezes, wholesale requeues — and
// recomputes every activity bitmap brute-force after each step. This is the
// safety net for the incremental maintenance in Buffer.push/pop/syncOcc,
// Node.Inject/dequeue and the fault transitions.
func TestActiveSetBitmapInvariants(t *testing.T) {
	net, nodes := BuildMeshCores(Config{Width: 4, Height: 4, VCs: 2, BufferCap: 2})
	net.SetPolicy(orderPolicy{})
	net.SetRouting(attachRouting{})
	rng := rand.New(rand.NewSource(11))
	var id uint64
	downAttach := -1 // node whose attach link is currently down
	for cycle := 0; cycle < 800; cycle++ {
		for i, nd := range nodes {
			if rng.Float64() >= 0.4 {
				continue
			}
			d := rng.Intn(len(nodes) - 1)
			if d >= i {
				d++
			}
			id++
			m := net.AllocMessage()
			m.ID = id
			m.Dst = nodes[d].ID
			m.Class = Class(rng.Intn(2))
			m.SizeFlits = 1 + rng.Intn(2)
			nd.Inject(m)
		}
		switch {
		case cycle%97 == 13:
			if downAttach >= 0 {
				nd := net.Node(NodeID(downAttach))
				net.SetLinkDown(nd.Router.ID(), nd.Port, false)
			}
			downAttach = rng.Intn(len(nodes))
			nd := net.Node(NodeID(downAttach))
			net.SetLinkDown(nd.Router.ID(), nd.Port, true)
		case cycle%131 == 40:
			rid := rng.Intn(len(net.routers))
			net.FreezeRouter(rid, !net.routers[rid].frozen)
		case cycle%211 == 77:
			// Strand every message bound for a random destination.
			victim := NodeID(rng.Intn(len(nodes)))
			net.RequeueStranded(func(r *Router, p PortID, m *Message) bool {
				return m.Dst == victim
			})
		}
		net.Step()
		when := fmt.Sprintf("cycle %d", cycle)
		checkBitmaps(t, net, when)
		checkDirtySuperset(t, net, when)
	}
	// Repair and drain so the terminal state is checked empty.
	if downAttach >= 0 {
		nd := net.Node(NodeID(downAttach))
		net.SetLinkDown(nd.Router.ID(), nd.Port, false)
	}
	for _, r := range net.routers {
		if r.frozen {
			net.FreezeRouter(r.id, false)
		}
	}
	net.Drain(20000)
	checkBitmaps(t, net, "after drain")
	if net.actRCount != 0 {
		t.Fatalf("drained network has %d active routers", net.actRCount)
	}
}

// TestActiveSetShardThreshold white-boxes the fork gate: below the per-shard
// activity threshold a sharded network must step sequentially, above it the
// two-phase fork must engage, and both regimes stay bit-identical (covered by
// TestActiveSetInvariance; here the gate itself is probed).
func TestActiveSetShardThreshold(t *testing.T) {
	net, nodes := BuildMeshCores(Config{Width: 8, Height: 8, VCs: 2, BufferCap: 4})
	net.SetPolicy(orderPolicy{})
	net.SetShards(4)
	defer net.SetShards(1)

	// Empty network: no fork regardless of threshold.
	net.SetShardMinActive(1)
	net.Step()
	if net.shardForks != 0 {
		t.Fatalf("empty network forked %d times", net.shardForks)
	}

	// Park a little traffic in a frozen hub router so activity persists
	// across cycle boundaries (an unobstructed message is granted within its
	// arrival cycle and never shows at a boundary). One active router stays
	// below the 1-per-shard * 4-shard threshold: still sequential.
	hub := net.RouterAt(4, 4)
	net.FreezeRouter(hub.ID(), true)
	for i, src := range []int{35, 37} {
		m := net.AllocMessage()
		m.ID = uint64(i + 1)
		m.Dst = nodes[36].ID // the node attached to the frozen hub
		m.SizeFlits = 1
		nodes[src].Inject(m)
	}
	net.Run(5)
	if net.ActiveRouters() == 0 {
		t.Fatal("parked messages did not keep their router active")
	}
	if net.shardForks != 0 {
		t.Fatalf("%d active routers forked %d times with threshold 1/shard",
			net.ActiveRouters(), net.shardForks)
	}

	// Threshold zero: every cycle forks.
	net.SetShardMinActive(0)
	before := net.shardForks
	net.Step()
	if net.shardForks != before+1 {
		t.Fatalf("threshold 0 did not fork: %d -> %d", before, net.shardForks)
	}

	// Full-scan mode ignores the threshold entirely (reference behavior).
	net.SetActiveStepping(true)
	net.SetShardMinActive(1 << 20)
	net.SetActiveStepping(false)
	before = net.shardForks
	net.Step()
	if net.shardForks != before+1 {
		t.Fatalf("full-scan sharded step did not fork: %d -> %d", before, net.shardForks)
	}
	net.SetActiveStepping(true)
	net.FreezeRouter(hub.ID(), false)
	net.Drain(4000)
}

// TestActiveSetToggleMidRun flips the engine between active-set and full-scan
// stepping every few hundred cycles of a seeded run and requires the combined
// trace to match a pure full-scan run — SetActiveStepping is documented as
// safe to toggle between cycles without a rebuild.
func TestActiveSetToggleMidRun(t *testing.T) {
	cfg := Config{Width: 8, Height: 8, VCs: 3, BufferCap: 2}
	toggle := func(net *Network, cycle int) {
		if cycle%150 == 0 {
			net.SetActiveStepping(cycle%300 == 0)
		}
	}
	base, baseLog := shardRun(t, orderPolicy{}, cfg, 1, 600, nil, nil, fullScanOpt)
	net, log := shardRun(t, orderPolicy{}, cfg, 1, 600, nil, toggle)
	requireIdentical(t, 1, base, baseLog, net, log)
}
