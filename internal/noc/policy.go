package noc

// Candidate describes one input buffer whose head message competes for an
// output port in the current arbitration.
type Candidate struct {
	Port PortID
	VC   int
	Msg  *Message
}

// ArbContext carries the arbitration site: which router and output port are
// being arbitrated, at which cycle, inside which network.
type ArbContext struct {
	Net    *Network
	Router *Router
	Out    PortID
	Cycle  int64
}

// Policy selects, for one output port, which competing input buffer is
// granted. Select is only invoked with two or more candidates; a sole
// requester is granted directly without consulting the policy (Section 4.5 of
// the paper). Implementations may keep per-(router,output) state keyed by
// ctx.Router.ID() and ctx.Out.
//
// Select must return an index into cands.
type Policy interface {
	Name() string
	Select(ctx *ArbContext, cands []Candidate) int
}

// Request is one output port's arbitration problem, used by router-level
// matchers such as iSLIP.
type Request struct {
	Out   PortID
	Cands []Candidate
}

// Matcher is an optional interface for policies that compute a whole-router
// input/output matching (e.g. iSLIP's iterative grant/accept). When a Policy
// also implements Matcher, the engine calls Match once per router per cycle
// with every free, requested output port; the returned slice gives, for each
// request, the index of the winning candidate or -1 to leave the output idle.
//
// A valid matching grants each input port at most once; the engine verifies
// this and panics on violation, since it indicates a policy bug.
type Matcher interface {
	Match(ctx *MatchContext, reqs []Request) []int
}

// MatchContext carries the matching site for Matcher policies.
type MatchContext struct {
	Net    *Network
	Router *Router
	Cycle  int64
}

// GrantObserver is an optional interface for policies that need to see every
// grant, including the single-candidate grants that bypass Select. The RL
// reward machinery uses it.
type GrantObserver interface {
	ObserveGrant(ctx *ArbContext, cands []Candidate, chosen int)
}
