package noc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// cutRouting is a shard-safe X-Y routing that declares a fixed destination
// set unreachable, exercising the sharded engine's fallback-and-evict path
// against the sequential one.
type cutRouting struct {
	cut map[NodeID]bool
}

func (cutRouting) Name() string    { return "cut-xy" }
func (cutRouting) ShardSafe() bool { return true }
func (c cutRouting) Route(r *Router, m *Message) PortID {
	if c.cut[m.Dst] {
		return RouteUnreachable
	}
	return r.XYPort(m)
}

// shardRun drives a seeded workload on a fresh network and returns the
// delivery log. faults, when non-nil, runs before every Step with the cycle
// number so fault schedules stay aligned across shard counts. The activity
// threshold is zeroed so sharded runs exercise the fork/join every cycle
// regardless of load; opts run after that for per-test engine configuration
// (e.g. SetActiveStepping(false) baselines).
func shardRun(t *testing.T, policy Policy, cfg Config, shards, cycles int,
	routing Routing, faults func(net *Network, cycle int),
	opts ...func(net *Network)) (*Network, []string) {
	t.Helper()
	net, nodes := BuildMeshCores(cfg)
	net.SetPolicy(policy)
	if routing != nil {
		net.SetRouting(routing)
	}
	net.SetShards(shards)
	net.SetShardMinActive(0)
	for _, opt := range opts {
		opt(net)
	}
	if shards > 1 {
		if got := net.Shards(); got != shards {
			t.Fatalf("Shards() = %d after SetShards(%d)", got, shards)
		}
		if !net.shardReady() {
			t.Fatalf("network not shard-ready with routing %v", routing)
		}
	}
	var log []string
	for _, nd := range nodes {
		nd.Sink = func(now int64, m *Message) {
			log = append(log, fmt.Sprintf("%d:%d->%d@%d", m.ID, m.Src, m.Dst, now))
		}
	}
	rng := rand.New(rand.NewSource(21))
	var id uint64
	for cycle := 0; cycle < cycles; cycle++ {
		if faults != nil {
			faults(net, cycle)
		}
		for i, nd := range nodes {
			if rng.Float64() >= 0.3 {
				continue
			}
			d := rng.Intn(len(nodes) - 1)
			if d >= i {
				d++
			}
			id++
			m := net.AllocMessage()
			m.ID = id
			m.Dst = nodes[d].ID
			m.Class = Class(rng.Intn(cfg.VCs))
			m.SizeFlits = 1 + 4*rng.Intn(2)
			nd.Inject(m)
		}
		net.Step()
	}
	net.Drain(8000)
	if shards > 1 && net.shardMinActive == 0 && net.shardForks == 0 {
		t.Fatalf("sharded run with K=%d never forked its phase-1 workers", shards)
	}
	net.SetShards(1)
	return net, log
}

// requireIdentical fails unless the sharded run's delivery trace and stats are
// bit-identical to the sequential baseline's.
func requireIdentical(t *testing.T, k int, base *Network, baseLog []string, got *Network, gotLog []string) {
	t.Helper()
	if len(baseLog) == 0 {
		t.Fatal("no deliveries recorded; workload is vacuous")
	}
	if len(gotLog) != len(baseLog) {
		t.Fatalf("K=%d delivery counts diverge: sharded %d, sequential %d", k, len(gotLog), len(baseLog))
	}
	for i := range baseLog {
		if gotLog[i] != baseLog[i] {
			t.Fatalf("K=%d delivery %d diverges: sharded %q, sequential %q", k, i, gotLog[i], baseLog[i])
		}
	}
	bs, gs := base.Stats(), got.Stats()
	if bs.Injected != gs.Injected || bs.Delivered != gs.Delivered ||
		bs.Latency.Mean() != gs.Latency.Mean() || bs.NetLatency.Mean() != gs.NetLatency.Mean() {
		t.Fatalf("K=%d stats diverge: sharded inj=%d del=%d avg=%v, sequential inj=%d del=%d avg=%v",
			k, gs.Injected, gs.Delivered, gs.Latency.Mean(), bs.Injected, bs.Delivered, bs.Latency.Mean())
	}
	if base.FaultStats() != got.FaultStats() {
		t.Fatalf("K=%d fault stats diverge: sharded %+v, sequential %+v", k, got.FaultStats(), base.FaultStats())
	}
}

// TestShardInvariance pins the tentpole contract: for every shard count the
// two-phase engine produces a delivery trace bit-identical to the sequential
// engine, on mesh and torus, for an order-sensitive per-output policy and an
// order-sensitive whole-router matcher.
func TestShardInvariance(t *testing.T) {
	cfgs := map[string]Config{
		"mesh8x8":   {Width: 8, Height: 8, VCs: 3, BufferCap: 2},
		"torus8x8":  {Width: 8, Height: 8, VCs: 3, BufferCap: 2, Torus: true},
		"mesh16x16": {Width: 16, Height: 16, VCs: 3, BufferCap: 4},
	}
	policies := map[string]Policy{"policy": orderPolicy{}, "matcher": orderMatcher{}}
	for cname, cfg := range cfgs {
		for pname, pol := range policies {
			t.Run(cname+"/"+pname, func(t *testing.T) {
				cycles := 600
				if cfg.Width == 16 {
					cycles = 300
				}
				base, baseLog := shardRun(t, pol, cfg, 1, cycles, nil, nil)
				for _, k := range []int{2, 4, 8} {
					net, log := shardRun(t, pol, cfg, k, cycles, nil, nil)
					requireIdentical(t, k, base, baseLog, net, log)
				}
			})
		}
	}
}

// TestShardInvarianceFaulted runs a mid-run fault schedule — a bidirectional
// link kill plus a router freeze, later repaired — under built-in X-Y routing,
// checking that the faulty-mode scan rules (frozen-router skip, full head scan
// while any output is blocked) keep every shard count bit-identical.
func TestShardInvarianceFaulted(t *testing.T) {
	cfg := Config{Width: 8, Height: 8, VCs: 3, BufferCap: 2}
	faults := func(net *Network, cycle int) {
		switch cycle {
		case 200:
			net.SetLinkDown(net.RouterAt(3, 3).ID(), PortEast, true)
			net.SetLinkDown(net.RouterAt(4, 3).ID(), PortWest, true)
			net.FreezeRouter(net.RouterAt(5, 5).ID(), true)
		case 450:
			net.SetLinkDown(net.RouterAt(3, 3).ID(), PortEast, false)
			net.SetLinkDown(net.RouterAt(4, 3).ID(), PortWest, false)
			net.FreezeRouter(net.RouterAt(5, 5).ID(), false)
		}
	}
	for pname, pol := range map[string]Policy{"policy": orderPolicy{}, "matcher": orderMatcher{}} {
		t.Run(pname, func(t *testing.T) {
			base, baseLog := shardRun(t, pol, cfg, 1, 600, nil, faults)
			if base.FaultStats().Requeued == 0 {
				t.Fatal("fault schedule requeued nothing; scenario is vacuous")
			}
			for _, k := range []int{2, 4, 8} {
				net, log := shardRun(t, pol, cfg, k, 600, nil, faults)
				requireIdentical(t, k, base, baseLog, net, log)
			}
		})
	}
}

// TestShardInvarianceUnreachable drives traffic at destinations a shard-safe
// routing declares unreachable, forcing the phase-1 fallback flag and the
// sequential evict-and-replay path, and checks trace identity plus the
// conservation identity Injected == Delivered + Unreachable + InFlight.
func TestShardInvarianceUnreachable(t *testing.T) {
	cfg := Config{Width: 8, Height: 8, VCs: 3, BufferCap: 2}
	routing := func() Routing { return cutRouting{cut: map[NodeID]bool{10: true, 37: true}} }
	base, baseLog := shardRun(t, orderPolicy{}, cfg, 1, 600, routing(), nil)
	if base.FaultStats().Unreachable == 0 {
		t.Fatal("no unreachable evictions; fallback path not exercised")
	}
	for _, k := range []int{2, 4, 8} {
		net, log := shardRun(t, orderPolicy{}, cfg, k, 600, routing(), nil)
		requireIdentical(t, k, base, baseLog, net, log)
		fs := net.FaultStats()
		if net.Stats().Injected != net.Stats().Delivered+fs.Unreachable+net.InFlight() {
			t.Fatalf("K=%d conservation broken: injected=%d delivered=%d unreachable=%d inflight=%d",
				k, net.Stats().Injected, net.Stats().Delivered, fs.Unreachable, net.InFlight())
		}
	}
}

// TestSetShardsClampsAndRestores checks the SetShards edge cases: clamping to
// the router count, no-op repeats, and restoring sequential mode.
func TestSetShardsClampsAndRestores(t *testing.T) {
	net, _ := BuildMeshCores(Config{Width: 2, Height: 2, VCs: 1, BufferCap: 2})
	if net.Shards() != 1 {
		t.Fatalf("fresh network Shards() = %d, want 1", net.Shards())
	}
	net.SetShards(64) // clamped to 4 routers
	if net.Shards() != 4 {
		t.Fatalf("Shards() = %d after SetShards(64) on 4 routers, want 4", net.Shards())
	}
	net.SetShards(4) // no-op repeat must not leak workers
	net.SetShards(0)
	if net.Shards() != 1 {
		t.Fatalf("Shards() = %d after SetShards(0), want 1", net.Shards())
	}
}

// TestSchedulePanicReportsDelay is the regression test for the schedule panic
// message: an over-length delay must be reported as a delay/wheel mismatch
// with the actual numbers, not as a generic flit-count complaint.
func TestSchedulePanicReportsDelay(t *testing.T) {
	net, nodes := BuildMeshCores(Config{Width: 2, Height: 2, VCs: 1, BufferCap: 2, MaxFlits: 4})
	net.SetPolicy(orderPolicy{})
	// 9 flits exceed MaxFlits=4: the serialization delay overruns the 6-slot
	// delivery wheel at the first grant.
	nodes[0].Inject(&Message{ID: 1, Dst: nodes[3].ID, SizeFlits: 9})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("over-length delay did not panic")
		}
		msg := fmt.Sprint(r)
		for _, want := range []string{"delay 9", "6-slot wheel", "MaxFlits=4", "9 flits"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("panic %q does not mention %q", msg, want)
			}
		}
	}()
	net.Run(4)
}

// TestPendingInjectionsCounter asserts the incremental pending-injections
// counter against a full scan of the node queues throughout a bursty run,
// including the RequeueStranded path that re-enters messages through Inject.
func TestPendingInjectionsCounter(t *testing.T) {
	net, nodes := BuildMeshCores(Config{Width: 4, Height: 4, VCs: 2, BufferCap: 2})
	net.SetPolicy(orderPolicy{})
	scan := func() int {
		total := 0
		for _, nd := range nodes {
			total += nd.PendingInjections()
		}
		return total
	}
	check := func(when string) {
		t.Helper()
		if got, want := net.PendingInjections(), scan(); got != want {
			t.Fatalf("%s: PendingInjections() = %d, scan = %d", when, got, want)
		}
	}
	rng := rand.New(rand.NewSource(7))
	var id uint64
	for cycle := 0; cycle < 300; cycle++ {
		// Bursts far above the one-injection-per-node-per-cycle drain rate
		// keep the queues deep, so the counter is exercised against real
		// backlogs, not the trivially empty state.
		for i, nd := range nodes {
			for burst := rng.Intn(4); burst > 0; burst-- {
				id++
				m := net.AllocMessage()
				m.ID = id
				m.Dst = nodes[(i+1+rng.Intn(len(nodes)-1))%len(nodes)].ID
				m.SizeFlits = 1
				nd.Inject(m)
			}
		}
		net.Step()
		if cycle%17 == 0 {
			check(fmt.Sprintf("cycle %d", cycle))
		}
	}
	// Requeue every buffered message back to its source queue: Inject must
	// re-count them.
	net.RequeueStranded(func(r *Router, p PortID, m *Message) bool { return true })
	check("after RequeueStranded")
	if !net.Drain(10000) {
		t.Fatal("network failed to drain")
	}
	check("after drain")
	if net.PendingInjections() != 0 {
		t.Fatalf("drained network has %d pending injections", net.PendingInjections())
	}
}
