package noc

import (
	"math/rand"
	"testing"
)

// TestInjectQueueFIFOUnderBacklog piles a deep backlog onto one node and
// checks that the ring-style dequeue preserves FIFO order, drains fully, and
// keeps PendingInjections consistent throughout.
func TestInjectQueueFIFOUnderBacklog(t *testing.T) {
	net, cores := buildMesh(t, 2, 1, 1)
	net.SetPolicy(firstPolicy{})

	const n = 5000
	var got []uint64
	cores[1].Sink = func(now int64, m *Message) { got = append(got, m.ID) }
	for i := 0; i < n; i++ {
		cores[0].Inject(&Message{ID: uint64(i + 1), Dst: cores[1].ID, SizeFlits: 1})
	}
	if p := cores[0].PendingInjections(); p != n {
		t.Fatalf("pending = %d, want %d", p, n)
	}
	prevPending := n
	for i := 0; i < 10*n && !net.Quiescent(); i++ {
		net.Step()
		p := cores[0].PendingInjections()
		if p > prevPending || p < 0 {
			t.Fatalf("pending went from %d to %d", prevPending, p)
		}
		prevPending = p
	}
	if !net.Quiescent() {
		t.Fatal("backlog did not drain")
	}
	if cores[0].PendingInjections() != 0 {
		t.Fatalf("pending = %d after drain", cores[0].PendingInjections())
	}
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	for i, id := range got {
		if id != uint64(i+1) {
			t.Fatalf("delivery %d has id %d; FIFO order broken", i, id)
		}
	}
}

// TestInjectQueueInterleaved keeps injecting while the queue drains, crossing
// the ring's reset and compaction paths.
func TestInjectQueueInterleaved(t *testing.T) {
	net, cores := buildMesh(t, 2, 1, 1)
	net.SetPolicy(firstPolicy{})
	var delivered int
	var lastID uint64
	cores[1].Sink = func(now int64, m *Message) {
		if m.ID <= lastID {
			t.Fatalf("out of order: %d after %d", m.ID, lastID)
		}
		lastID = m.ID
		delivered++
	}
	nextID := uint64(1)
	rng := rand.New(rand.NewSource(7))
	for cycle := 0; cycle < 12000; cycle++ {
		if cycle < 9000 {
			// Inject in bursts so the queue oscillates between deep and empty.
			for k := 0; k < rng.Intn(3); k++ {
				cores[0].Inject(&Message{ID: nextID, Dst: cores[1].ID, SizeFlits: 1})
				nextID++
			}
		}
		net.Step()
	}
	if !net.Drain(20000) {
		t.Fatal("network did not drain")
	}
	if want := int(nextID - 1); delivered != want {
		t.Fatalf("delivered %d of %d", delivered, want)
	}
}

// TestLinkUtilizationMatchesRecount cross-checks the incrementally maintained
// busy-output count against a direct recount of port busy state every cycle.
func TestLinkUtilizationMatchesRecount(t *testing.T) {
	net, cores := buildMesh(t, 4, 4, 2)
	net.SetPolicy(firstPolicy{})
	rng := rand.New(rand.NewSource(3))

	totalOutputs := 0
	for _, r := range net.Routers() {
		totalOutputs += r.NumPorts()
	}
	net.OnCycle = func(n *Network) {
		now := n.Cycle()
		busy := 0
		for _, r := range n.Routers() {
			for p := PortID(0); p < MaxPorts; p++ {
				if r.HasPort(p) && r.OutputBusy(p, now) {
					busy++
				}
			}
		}
		want := float64(busy) / float64(totalOutputs)
		if got := n.LinkUtilization(); got != want {
			t.Fatalf("cycle %d: incremental utilization %v, recount %v", now, got, want)
		}
	}
	var id uint64
	for cycle := 0; cycle < 3000; cycle++ {
		for _, c := range cores {
			if rng.Float64() < 0.1 {
				id++
				net.Step() // interleave stepping and injection points
				c.Inject(&Message{
					ID:        id,
					Dst:       cores[rng.Intn(len(cores))].ID,
					Class:     Class(rng.Intn(2)),
					SizeFlits: 1 + rng.Intn(4),
				})
			}
		}
		net.Step()
	}
	net.Drain(10000)
}

// TestLinkUtilizationZeroOutputs guards the totalOutputs == 0 case: a mesh
// with no attached nodes and no links must report zero utilization, not a
// stale or NaN value.
func TestLinkUtilizationZeroOutputs(t *testing.T) {
	net := New(Config{Width: 1, Height: 1})
	net.SetPolicy(firstPolicy{})
	for i := 0; i < 10; i++ {
		net.Step()
		if u := net.LinkUtilization(); u != 0 {
			t.Fatalf("utilization = %v on a network with no outputs", u)
		}
	}
}

// countingObserver records engine events for the observer-hook test.
type countingObserver struct {
	injects, grants, delivers int
}

func (o *countingObserver) ObserveInject(int64, *Node, *Message)           { o.injects++ }
func (o *countingObserver) ObserveGrant(int64, *Router, PortID, Candidate) { o.grants++ }
func (o *countingObserver) ObserveDeliver(int64, *Node, *Message)          { o.delivers++ }

// TestObserverSeesAllEvents checks that every injection, grant and delivery
// reaches registered observers, and that AddOnCycle chains instead of
// clobbering.
func TestObserverSeesAllEvents(t *testing.T) {
	net, cores := buildMesh(t, 3, 3, 1)
	net.SetPolicy(firstPolicy{})
	var ob countingObserver
	net.AddObserver(&ob)

	first, second := 0, 0
	net.OnCycle = func(*Network) { first++ }
	net.AddOnCycle(func(*Network) { second++ })

	rng := rand.New(rand.NewSource(11))
	const n = 200
	for i := 0; i < n; i++ {
		src := rng.Intn(len(cores))
		dst := rng.Intn(len(cores))
		for dst == src {
			dst = rng.Intn(len(cores))
		}
		cores[src].Inject(&Message{ID: uint64(i + 1), Dst: cores[dst].ID, SizeFlits: 1})
	}
	if !net.Drain(100000) {
		t.Fatal("network did not drain")
	}
	st := net.Stats()
	if int64(ob.injects) != st.Injected || int64(ob.delivers) != st.Delivered {
		t.Fatalf("observer saw %d injects / %d delivers; stats say %d / %d",
			ob.injects, ob.delivers, st.Injected, st.Delivered)
	}
	if ob.delivers != n {
		t.Fatalf("delivered %d of %d", ob.delivers, n)
	}
	// Every message needs at least one grant (source router output), and
	// grants never exceed one per hop+ejection.
	if ob.grants < n {
		t.Fatalf("grants %d < deliveries %d", ob.grants, n)
	}
	if first == 0 || first != second {
		t.Fatalf("OnCycle chain broken: first=%d second=%d", first, second)
	}
}
