package noc

import "testing"

// injectQHarness drives Node.Inject and Node.dequeue directly (white-box),
// tracking the ID sequence so every head observation checks FIFO order and
// every dequeue checks PendingInjections.
type injectQHarness struct {
	t      *testing.T
	node   *Node
	dst    NodeID
	next   uint64 // next ID to inject
	expect uint64 // next ID expected at the queue head
}

func (h *injectQHarness) inject(k int) {
	h.t.Helper()
	for i := 0; i < k; i++ {
		h.node.Inject(&Message{ID: h.next, Dst: h.dst, SizeFlits: 1})
		h.next++
	}
	if p, want := h.node.PendingInjections(), int(h.next-h.expect); p != want {
		h.t.Fatalf("pending = %d after inject, want %d", p, want)
	}
}

func (h *injectQHarness) drain(k int) {
	h.t.Helper()
	for i := 0; i < k; i++ {
		if got := h.node.injectQ[h.node.injectHead].ID; got != h.expect {
			h.t.Fatalf("head has id %d, want %d; FIFO order broken", got, h.expect)
		}
		h.node.dequeue()
		h.expect++
		if p, want := h.node.PendingInjections(), int(h.next-h.expect); p != want {
			h.t.Fatalf("pending = %d after dequeue, want %d", p, want)
		}
	}
}

// TestInjectQueueCompactionBoundary pins the ring dequeue's compaction rule
// (injectHead >= 1024 and the consumed prefix at least as large as the
// remainder) with interleaved Inject/dequeue right at the boundary: order and
// PendingInjections must be unaffected by when the copy-down happens.
func TestInjectQueueCompactionBoundary(t *testing.T) {
	net, cores := buildMesh(t, 2, 1, 1)
	net.SetPolicy(firstPolicy{})
	h := &injectQHarness{t: t, node: cores[0], dst: cores[1].ID, next: 1, expect: 1}
	n := h.node

	// Below the threshold: head 1023 never compacts regardless of length.
	h.inject(2000)
	h.drain(1023)
	if n.injectHead != 1023 {
		t.Fatalf("head = %d before the boundary, want 1023", n.injectHead)
	}

	// Interleave an append exactly at the boundary, then cross it: at head
	// 1024 with 2001 queued the consumed prefix (2048 >= 2001) dominates, so
	// this single dequeue must compact.
	h.inject(1)
	h.drain(1)
	if n.injectHead != 0 {
		t.Fatalf("head = %d after crossing the boundary, want 0 (compaction)", n.injectHead)
	}
	if got, want := len(n.injectQ), int(h.next-h.expect); got != want {
		t.Fatalf("queue length %d after compaction, want %d", got, want)
	}

	// Appends after the copy-down land behind the surviving tail.
	h.inject(500)
	h.drain(int(h.next - h.expect)) // drain everything
	if n.injectHead != 0 || len(n.injectQ) != 0 {
		t.Fatalf("drained queue not reset: head %d, len %d", n.injectHead, len(n.injectQ))
	}

	// Above the head threshold but with the remainder still dominating
	// (1024*2 < 4000), compaction must hold off.
	h.inject(4000)
	h.drain(1024)
	if n.injectHead != 1024 {
		t.Fatalf("head = %d with a dominating remainder, want 1024 (no compaction)", n.injectHead)
	}
	h.drain(int(h.next - h.expect))
	if n.PendingInjections() != 0 {
		t.Fatalf("pending = %d after full drain", n.PendingInjections())
	}
}
