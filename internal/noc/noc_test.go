package noc

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// firstPolicy always grants the first candidate (deterministic).
type firstPolicy struct{}

func (firstPolicy) Name() string                            { return "first" }
func (firstPolicy) Select(_ *ArbContext, _ []Candidate) int { return 0 }

// panicPolicy fails the test if Select is ever invoked.
type panicPolicy struct{ t *testing.T }

func (panicPolicy) Name() string { return "panic" }
func (p panicPolicy) Select(_ *ArbContext, cands []Candidate) int {
	p.t.Fatalf("Select invoked with %d candidates; single requesters must bypass the policy", len(cands))
	return 0
}

func buildMesh(t *testing.T, w, h, vcs int) (*Network, []*Node) {
	t.Helper()
	return BuildMeshCores(Config{Width: w, Height: h, VCs: vcs})
}

func TestMeshWiring(t *testing.T) {
	net, cores := buildMesh(t, 4, 3, 2)
	if len(net.Routers()) != 12 || len(cores) != 12 {
		t.Fatalf("got %d routers, %d cores", len(net.Routers()), len(cores))
	}
	r := net.RouterAt(1, 1) // interior: core + 4 directions
	if r.NumPorts() != 5 {
		t.Fatalf("interior router has %d ports, want 5", r.NumPorts())
	}
	corner := net.RouterAt(0, 0)
	if corner.NumPorts() != 3 { // core, south, east
		t.Fatalf("corner router has %d ports, want 3", corner.NumPorts())
	}
	if corner.Neighbor(PortNorth) != nil || corner.Neighbor(PortWest) != nil {
		t.Fatal("corner router has neighbors off the mesh edge")
	}
	if n := net.RouterAt(1, 0).Neighbor(PortWest); n != corner {
		t.Fatalf("west neighbor of (1,0) = %v, want (0,0)", n)
	}
	// Links are symmetric.
	for _, r := range net.Routers() {
		for p := PortNorth; p <= PortEast; p++ {
			if nb := r.Neighbor(p); nb != nil && nb.Neighbor(p.Opposite()) != r {
				t.Fatalf("asymmetric link at %v port %v", r, p)
			}
		}
	}
}

func TestOppositePorts(t *testing.T) {
	pairs := map[PortID]PortID{
		PortNorth: PortSouth, PortSouth: PortNorth,
		PortWest: PortEast, PortEast: PortWest,
	}
	for p, want := range pairs {
		if got := p.Opposite(); got != want {
			t.Errorf("%v.Opposite() = %v, want %v", p, got, want)
		}
	}
	for _, p := range []PortID{PortCore, PortMem} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v.Opposite() did not panic", p)
				}
			}()
			p.Opposite()
		}()
	}
}

func TestManhattan(t *testing.T) {
	if d := (Coord{0, 0}).Manhattan(Coord{3, 4}); d != 7 {
		t.Fatalf("Manhattan = %d, want 7", d)
	}
	if d := (Coord{2, 5}).Manhattan(Coord{2, 5}); d != 0 {
		t.Fatalf("Manhattan of identical coords = %d, want 0", d)
	}
}

func TestAttachNodeRejectsLinkedPort(t *testing.T) {
	net, _ := buildMesh(t, 2, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("attaching a node to a linked direction port did not panic")
		}
	}()
	net.AttachNode(0, 0, PortEast, DstCore, "bad") // east is linked to (1,0)
}

func TestAttachNodeOnFreeEdgePort(t *testing.T) {
	net, _ := buildMesh(t, 2, 2, 1)
	n := net.AttachNode(0, 0, PortNorth, DstCache, "edge") // free edge port
	if n.Router != net.RouterAt(0, 0) || n.Port != PortNorth {
		t.Fatalf("node attached at wrong place: %v", n)
	}
	if net.RouterAt(0, 0).AttachedNode(PortNorth) != n {
		t.Fatal("router does not know about the attached node")
	}
}

// TestSingleMessageLatency checks the exact timing model: a message of L
// flits crossing h router-to-router hops is delivered (h+1)*L cycles after
// entering its source router (each hop plus the final ejection serializes L
// flits).
func TestSingleMessageLatency(t *testing.T) {
	for _, tc := range []struct {
		fromX, fromY, toX, toY int
		flits                  int
	}{
		{0, 0, 3, 0, 1},
		{0, 0, 3, 0, 5},
		{0, 0, 0, 3, 1},
		{0, 0, 3, 3, 5},
		{2, 2, 2, 2, 1}, // self-send: ejection only
	} {
		net, cores := buildMesh(t, 4, 4, 1)
		net.SetPolicy(firstPolicy{})
		src := cores[tc.fromY*4+tc.fromX]
		dst := cores[tc.toY*4+tc.toX]

		var deliveredAt int64 = -1
		var got *Message
		dst.Sink = func(now int64, m *Message) { deliveredAt, got = now, m }

		src.Inject(&Message{ID: 1, Dst: dst.ID, SizeFlits: tc.flits})
		if !net.Drain(1000) {
			t.Fatalf("%+v: network did not drain", tc)
		}
		if got == nil {
			t.Fatalf("%+v: message not delivered", tc)
		}
		hops := abs(tc.fromX-tc.toX) + abs(tc.fromY-tc.toY)
		wantLatency := int64((hops + 1) * tc.flits)
		if lat := deliveredAt - got.InjectCycle; lat != wantLatency {
			t.Errorf("%+v: net latency %d, want %d", tc, lat, wantLatency)
		}
		if got.HopCount != hops {
			t.Errorf("%+v: hop count %d, want %d", tc, got.HopCount, hops)
		}
		if got.Distance != hops {
			t.Errorf("%+v: distance %d, want %d", tc, got.Distance, hops)
		}
	}
}

// TestXYRouting verifies dimension order: a message's path corrects X before
// Y. We observe the path via per-router hop recording using a wrapper policy.
func TestXYRouting(t *testing.T) {
	net, cores := buildMesh(t, 5, 5, 1)
	net.SetPolicy(firstPolicy{})
	src, dst := cores[0], cores[4*5+3] // (0,0) -> (3,4)
	src.Inject(&Message{ID: 9, Dst: dst.ID, SizeFlits: 1})
	delivered := false
	dst.Sink = func(_ int64, m *Message) { delivered = true }
	if !net.Drain(200) || !delivered {
		t.Fatal("message not delivered")
	}
	// With X-first routing the message never occupies a N/S input buffer
	// before reaching column 3. Indirect check: route() from source picks
	// east, and from (3,0) picks south.
	m := &Message{Dst: dst.ID, SizeFlits: 1}
	if out := net.RouterAt(0, 0).Route(m); out != PortEast {
		t.Fatalf("route from (0,0) = %v, want east", out)
	}
	if out := net.RouterAt(3, 0).Route(m); out != PortSouth {
		t.Fatalf("route from (3,0) = %v, want south", out)
	}
	if out := net.RouterAt(3, 4).Route(m); out != PortCore {
		t.Fatalf("route at destination = %v, want core ejection", out)
	}
}

// TestConservation floods the network with random traffic and verifies every
// injected message is delivered exactly once to its addressee.
func TestConservation(t *testing.T) {
	net, cores := buildMesh(t, 4, 4, 3)
	net.SetPolicy(firstPolicy{})
	rng := rand.New(rand.NewSource(42))

	want := make(map[uint64]NodeID)
	gotCount := make(map[uint64]int)
	for _, c := range cores {
		c := c
		c.Sink = func(_ int64, m *Message) {
			if m.Dst != c.ID {
				t.Errorf("message %d for node %d delivered to node %d", m.ID, m.Dst, c.ID)
			}
			gotCount[m.ID]++
		}
	}
	var id uint64
	for i := 0; i < 500; i++ {
		src := cores[rng.Intn(len(cores))]
		dst := cores[rng.Intn(len(cores))]
		id++
		size := 1
		if rng.Intn(3) == 0 {
			size = 5
		}
		src.Inject(&Message{
			ID: id, Dst: dst.ID, Class: Class(rng.Intn(3)), SizeFlits: size,
		})
		net.Step()
	}
	if !net.Drain(100000) {
		t.Fatal("network did not drain")
	}
	if int(net.Stats().Delivered) != int(id) {
		t.Fatalf("delivered %d of %d", net.Stats().Delivered, id)
	}
	for mid := uint64(1); mid <= id; mid++ {
		if gotCount[mid] != 1 {
			t.Fatalf("message %d delivered %d times", mid, gotCount[mid])
		}
	}
	_ = want
}

// TestBufferCapacityInvariant checks that no input buffer ever exceeds its
// capacity including in-flight reservations.
func TestBufferCapacityInvariant(t *testing.T) {
	net, cores := buildMesh(t, 4, 4, 2)
	net.SetPolicy(firstPolicy{})
	rng := rand.New(rand.NewSource(7))
	cap := net.Config().BufferCap
	net.OnCycle = func(n *Network) {
		for _, r := range n.Routers() {
			for p := PortID(0); p < MaxPorts; p++ {
				for vc := 0; vc < n.Config().VCs; vc++ {
					b := r.Buffer(p, vc)
					if b == nil {
						continue
					}
					if b.Len()+b.reserved > cap {
						t.Fatalf("buffer %v.%v.%d over capacity: %d queued + %d reserved > %d",
							r, p, vc, b.Len(), b.reserved, cap)
					}
					if b.reserved < 0 {
						t.Fatalf("negative reservation at %v.%v.%d", r, p, vc)
					}
				}
			}
		}
	}
	var id uint64
	for i := 0; i < 2000; i++ {
		if rng.Float64() < 0.8 {
			src := cores[rng.Intn(len(cores))]
			dst := cores[rng.Intn(len(cores))]
			id++
			src.Inject(&Message{ID: id, Dst: dst.ID, Class: Class(rng.Intn(2)), SizeFlits: 5})
		}
		net.Step()
	}
	net.Drain(50000)
}

// TestOutputSerialization: two 5-flit messages from different sources to the
// same destination must serialize on the shared final link.
func TestOutputSerialization(t *testing.T) {
	net, cores := buildMesh(t, 3, 1, 1)
	net.SetPolicy(firstPolicy{})
	dst := cores[1] // center
	var arrivals []int64
	dst.Sink = func(now int64, _ *Message) { arrivals = append(arrivals, now) }
	cores[0].Inject(&Message{ID: 1, Dst: dst.ID, SizeFlits: 5})
	cores[2].Inject(&Message{ID: 2, Dst: dst.ID, SizeFlits: 5})
	if !net.Drain(100) {
		t.Fatal("did not drain")
	}
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals", len(arrivals))
	}
	if gap := arrivals[1] - arrivals[0]; gap < 5 {
		t.Fatalf("ejection link did not serialize: gap %d < 5 flits", gap)
	}
}

// TestSingleRequesterBypassesPolicy drives a lone traffic flow and installs a
// policy that fails the test when consulted.
func TestSingleRequesterBypassesPolicy(t *testing.T) {
	net, cores := buildMesh(t, 3, 1, 1)
	net.SetPolicy(panicPolicy{t})
	for i := 0; i < 5; i++ {
		cores[0].Inject(&Message{ID: uint64(i + 1), Dst: cores[2].ID, SizeFlits: 1})
	}
	if !net.Drain(100) {
		t.Fatal("did not drain")
	}
	if net.Stats().Delivered != 5 {
		t.Fatalf("delivered %d of 5", net.Stats().Delivered)
	}
}

// TestInputPortSingleGrant: one input port may forward at most one message
// per cycle even when its buffers request distinct free outputs.
func TestInputPortSingleGrant(t *testing.T) {
	// Line of 3 routers; center has West input carrying two VCs with traffic
	// to different outputs (east-through and local ejection).
	net, cores := buildMesh(t, 3, 1, 2)
	net.SetPolicy(firstPolicy{})
	// Two messages from west core: one to center core (ejects), one to east.
	cores[0].Inject(&Message{ID: 1, Dst: cores[1].ID, Class: 0, SizeFlits: 1})
	cores[0].Inject(&Message{ID: 2, Dst: cores[2].ID, Class: 1, SizeFlits: 1})
	// Let them advance into the center router's west input buffers.
	deliveries := map[uint64]int64{}
	for _, c := range cores {
		c := c
		c.Sink = func(now int64, m *Message) { deliveries[m.ID] = now }
	}
	if !net.Drain(100) {
		t.Fatal("did not drain")
	}
	if len(deliveries) != 2 {
		t.Fatalf("delivered %d of 2", len(deliveries))
	}
	// Both went through the center router's west input port; their final-hop
	// grants cannot have happened in the same cycle. Ejection at center is
	// 1 cycle after its grant; arrival at east router likewise. The two
	// messages left the source in consecutive cycles already (source node
	// injects one per cycle), so just assert distinct delivery cycles.
	if deliveries[1] == deliveries[2] {
		t.Fatalf("messages delivered at the same cycle %d; input port double-granted?", deliveries[1])
	}
}

// TestQuickRoutingDelivers is a property test: on random mesh sizes, any
// (src, dst, flits) message is delivered with hop count equal to Manhattan
// distance in an otherwise empty network.
func TestQuickRoutingDelivers(t *testing.T) {
	f := func(w8, h8, sx8, sy8, dx8, dy8 uint8, long bool) bool {
		w := int(w8%6) + 2 // 2..7
		h := int(h8%6) + 2
		sx, sy := int(sx8)%w, int(sy8)%h
		dx, dy := int(dx8)%w, int(dy8)%h
		net, cores := BuildMeshCores(Config{Width: w, Height: h, VCs: 1})
		net.SetPolicy(firstPolicy{})
		src := cores[sy*w+sx]
		dst := cores[dy*w+dx]
		flits := 1
		if long {
			flits = 5
		}
		ok := false
		dst.Sink = func(_ int64, m *Message) {
			ok = m.HopCount == abs(sx-dx)+abs(sy-dy)
		}
		src.Inject(&Message{ID: 1, Dst: dst.ID, SizeFlits: flits})
		return net.Drain(int64(10*(w+h)*flits+50)) && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConservationUnderLoad is a property test: any random batch of
// messages is fully delivered once the network drains.
func TestQuickConservationUnderLoad(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8)%200 + 1
		net, cores := BuildMeshCores(Config{Width: 4, Height: 4, VCs: 2, BufferCap: 2})
		net.SetPolicy(firstPolicy{})
		for i := 0; i < n; i++ {
			src := cores[rng.Intn(len(cores))]
			dst := cores[rng.Intn(len(cores))]
			src.Inject(&Message{
				ID: uint64(i + 1), Dst: dst.ID,
				Class: Class(rng.Intn(2)), SizeFlits: 1 + rng.Intn(5),
			})
		}
		return net.Drain(100000) && net.Stats().Delivered == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuiescentAndInFlight(t *testing.T) {
	net, cores := buildMesh(t, 2, 2, 1)
	net.SetPolicy(firstPolicy{})
	if !net.Quiescent() {
		t.Fatal("empty network not quiescent")
	}
	cores[0].Inject(&Message{ID: 1, Dst: cores[3].ID, SizeFlits: 1})
	if net.Quiescent() {
		t.Fatal("network with pending injection reported quiescent")
	}
	net.Step()
	if net.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", net.InFlight())
	}
	if net.OutstandingFrom(cores[0].ID) != 1 {
		t.Fatalf("OutstandingFrom = %d, want 1", net.OutstandingFrom(cores[0].ID))
	}
	net.Drain(100)
	if !net.Quiescent() || net.InFlight() != 0 || net.OutstandingFrom(cores[0].ID) != 0 {
		t.Fatal("network did not return to quiescent state")
	}
}

func TestArrivalGap(t *testing.T) {
	net, cores := buildMesh(t, 2, 1, 1)
	net.SetPolicy(firstPolicy{})
	var gaps []int64
	cores[1].Sink = func(_ int64, m *Message) { gaps = append(gaps, m.ArrivalGap) }
	// Two messages injected 3 cycles apart.
	cores[0].Inject(&Message{ID: 1, Dst: cores[1].ID, SizeFlits: 1})
	net.Step()
	net.Step()
	net.Step()
	cores[0].Inject(&Message{ID: 2, Dst: cores[1].ID, SizeFlits: 1})
	net.Drain(100)
	if len(gaps) != 2 {
		t.Fatalf("got %d deliveries", len(gaps))
	}
	if gaps[0] != 0 {
		t.Errorf("first arrival gap = %d, want 0", gaps[0])
	}
	if gaps[1] != 3 {
		t.Errorf("second arrival gap = %d, want 3", gaps[1])
	}
}

func TestLinkUtilization(t *testing.T) {
	net, cores := buildMesh(t, 2, 1, 1)
	net.SetPolicy(firstPolicy{})
	if u := net.LinkUtilization(); u != 0 {
		t.Fatalf("idle utilization = %v, want 0", u)
	}
	cores[0].Inject(&Message{ID: 1, Dst: cores[1].ID, SizeFlits: 5})
	net.Step() // inject + grant: west router's east output busy
	if u := net.LinkUtilization(); u <= 0 {
		t.Fatalf("utilization after grant = %v, want > 0", u)
	}
}

func TestStepWithoutPolicyPanics(t *testing.T) {
	net, _ := buildMesh(t, 2, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Step without a policy did not panic")
		}
	}()
	net.Step()
}

func TestInjectRejectsZeroFlits(t *testing.T) {
	_, cores := buildMesh(t, 2, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Inject with zero flits did not panic")
		}
	}()
	cores[0].Inject(&Message{ID: 1, Dst: cores[1].ID})
}

func TestGlobalAndLocalAge(t *testing.T) {
	m := &Message{InjectCycle: 10, ArrivalCycle: 30}
	if m.GlobalAge(50) != 40 || m.LocalAge(50) != 20 {
		t.Fatalf("ages = %d/%d, want 40/20", m.GlobalAge(50), m.LocalAge(50))
	}
}

func TestStringFormats(t *testing.T) {
	// Smoke-test Stringers so they do not regress into recursion or garbage.
	for _, s := range []fmt.Stringer{
		TypeRequest, TypeResponse, TypeCoherence, MsgType(99),
		DstCore, DstCache, DstMemory, DstType(99),
		PortCore, PortMem, PortNorth, PortSouth, PortWest, PortEast,
		Coord{1, 2},
	} {
		if s.String() == "" {
			t.Errorf("%T has empty String()", s)
		}
	}
}

// matcherPolicy drives the engine's matched-arbitration path with a trivial
// maximal matching (first candidate per output, skipping used inputs).
type matcherPolicy struct{}

func (matcherPolicy) Name() string                            { return "test-matcher" }
func (matcherPolicy) Select(_ *ArbContext, _ []Candidate) int { return 0 }
func (matcherPolicy) Match(_ *MatchContext, reqs []Request) []int {
	grants := make([]int, len(reqs))
	var used [MaxPorts]bool
	for i, req := range reqs {
		grants[i] = -1
		for ci, c := range req.Cands {
			if !used[c.Port] {
				grants[i] = ci
				used[c.Port] = true
				break
			}
		}
	}
	return grants
}

// TestMatchedEngineConservation exercises the Matcher-based arbitration path
// end to end (the path iSLIP and wavefront use).
func TestMatchedEngineConservation(t *testing.T) {
	net, cores := buildMesh(t, 4, 4, 2)
	net.SetPolicy(matcherPolicy{})
	rng := rand.New(rand.NewSource(12))
	var id uint64
	for i := 0; i < 1200; i++ {
		if rng.Float64() < 0.5 {
			id++
			src := cores[rng.Intn(len(cores))]
			dst := cores[rng.Intn(len(cores))]
			src.Inject(&Message{ID: id, Dst: dst.ID, Class: Class(rng.Intn(2)), SizeFlits: 1 + 4*rng.Intn(2)})
		}
		net.Step()
	}
	if !net.Drain(100000) {
		t.Fatal("matched engine did not drain")
	}
	if net.Stats().Delivered != int64(id) {
		t.Fatalf("delivered %d of %d", net.Stats().Delivered, id)
	}
}

// badMatcher grants the same input port twice; the engine must reject it.
type badMatcher struct{ matcherPolicy }

func (badMatcher) Match(_ *MatchContext, reqs []Request) []int {
	grants := make([]int, len(reqs))
	for i := range grants {
		grants[i] = 0 // always the first candidate, ignoring input reuse
	}
	return grants
}

func TestMatcherDoubleGrantPanics(t *testing.T) {
	net, cores := buildMesh(t, 4, 4, 3)
	net.SetPolicy(badMatcher{})
	rng := rand.New(rand.NewSource(4))
	defer func() {
		if recover() == nil {
			t.Fatal("double input grant not rejected")
		}
	}()
	// Under sustained multi-VC load, some router soon sees one input port
	// requesting two free outputs in the same cycle; the engine must reject
	// the matcher that grants both.
	var id uint64
	for i := 0; i < 1000; i++ {
		for _, src := range cores {
			id++
			dst := cores[rng.Intn(len(cores))]
			src.Inject(&Message{ID: id, Dst: dst.ID, Class: Class(rng.Intn(3)), SizeFlits: 1 + 4*rng.Intn(2)})
		}
		net.Step()
	}
}

func TestPerSourceFairnessStats(t *testing.T) {
	net, cores := buildMesh(t, 2, 2, 1)
	net.SetPolicy(firstPolicy{})
	cores[0].Inject(&Message{ID: 1, Dst: cores[3].ID, SizeFlits: 1})
	cores[1].Inject(&Message{ID: 2, Dst: cores[2].ID, SizeFlits: 1})
	net.Drain(100)
	st := net.Stats()
	if got := len(st.SourceMeanLatencies()); got != 2 {
		t.Fatalf("per-source latencies = %d, want 2", got)
	}
	if j := st.FairnessIndex(); j <= 0 || j > 1 {
		t.Fatalf("fairness index %v", j)
	}
}
