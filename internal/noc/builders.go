package noc

// BuildMeshCores creates a mesh per cfg and attaches one core endpoint to
// every router's core port — the topology of the paper's Section 3.2
// synthetic-traffic study. It returns the network and the cores in row-major
// router order.
func BuildMeshCores(cfg Config) (*Network, []*Node) {
	n := New(cfg)
	nodes := make([]*Node, 0, cfg.Width*cfg.Height)
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			nodes = append(nodes, n.AttachNode(x, y, PortCore, DstCore, "core"))
		}
	}
	return n, nodes
}
