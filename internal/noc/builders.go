package noc

// BuildMeshCores creates a mesh per cfg and attaches one core endpoint to
// every router's core port — the topology of the paper's Section 3.2
// synthetic-traffic study. It returns the network and the cores in row-major
// router order.
func BuildMeshCores(cfg Config) (*Network, []*Node) {
	n := New(cfg)
	nodes := make([]*Node, 0, cfg.Width*cfg.Height)
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			nodes = append(nodes, n.AttachNode(x, y, PortCore, DstCore, "core"))
		}
	}
	return n, nodes
}

// BuildTorusCores is BuildMeshCores with both dimensions closed into rings
// (cfg.Torus is forced on): every router gains wraparound links, routing takes
// the shorter way around each ring, and Distance becomes per-dimension ring
// distance.
func BuildTorusCores(cfg Config) (*Network, []*Node) {
	cfg.Torus = true
	return BuildMeshCores(cfg)
}

// BuildMesh16x16 creates the 16x16 large-mesh scenario: one core per router,
// three message classes, and the deeper buffers the bigger diameter needs to
// sustain Section 3.2-style loads.
func BuildMesh16x16() (*Network, []*Node) {
	return BuildMeshCores(Config{Width: 16, Height: 16, VCs: 3, BufferCap: 8})
}

// BuildMesh32x32 creates the 32x32 large-mesh scenario used for the sharded
// stepping throughput benchmark (1024 routers, 1024 cores).
func BuildMesh32x32() (*Network, []*Node) {
	return BuildMeshCores(Config{Width: 32, Height: 32, VCs: 3, BufferCap: 8})
}

// BuildMesh64x64 creates the 64x64 large-mesh scenario (4096 routers, 4096
// cores) — the sparse-activity regime the active-set stepping engine targets:
// at low injection rates the per-cycle cost tracks the in-flight population,
// not the topology size.
func BuildMesh64x64() (*Network, []*Node) {
	return BuildMeshCores(Config{Width: 64, Height: 64, VCs: 3, BufferCap: 8})
}
