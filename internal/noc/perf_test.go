package noc_test

import (
	"math/rand"
	"testing"
	"time"

	"mlnoc/internal/arb"
	"mlnoc/internal/noc"
	"mlnoc/internal/traffic"
)

// benchMesh builds a loaded 8x8 mesh under uniform-random traffic with the
// global-age arbiter — the steady-state Step workload of the Fig. 5 sweeps.
func benchMesh() (*noc.Network, *traffic.Injector) {
	net, cores := noc.BuildMeshCores(noc.Config{Width: 8, Height: 8, VCs: 3, BufferCap: 4})
	net.SetPolicy(arb.NewGlobalAge())
	in := traffic.NewInjector(cores, traffic.UniformRandom{}, 0.3, rand.New(rand.NewSource(17)))
	in.Classes = 3
	return net, in
}

// TestNetworkStepZeroAllocs pins the tentpole contract: once warm (scratch
// grown, message freelist populated, delivery wheel sized), a simulation cycle
// performs no heap allocations. The rate is kept below saturation so injection
// queues and the in-flight population are stable.
func TestNetworkStepZeroAllocs(t *testing.T) {
	net, cores := noc.BuildMeshCores(noc.Config{Width: 8, Height: 8, VCs: 3, BufferCap: 4})
	net.SetPolicy(arb.NewGlobalAge())
	in := traffic.NewInjector(cores, traffic.UniformRandom{}, 0.1, rand.New(rand.NewSource(17)))
	in.Classes = 3
	for i := 0; i < 4000; i++ {
		in.Tick()
		net.Step()
	}
	allocs := testing.AllocsPerRun(500, func() {
		in.Tick()
		net.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Tick+Step allocates %v objects per cycle, want 0", allocs)
	}
}

func BenchmarkHotNetworkStep(b *testing.B) {
	net, in := benchMesh()
	for i := 0; i < 3000; i++ {
		in.Tick()
		net.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Tick()
		net.Step()
	}
}

// benchLargeMesh measures steady-state stepping of one large mesh with the
// given router-shard count, reporting delivered messages/sec/core — the
// headline scaling metric. K>1 only pays off with spare cores; on a
// single-CPU runner the two-phase barrier is pure overhead and the custom
// metric records that honestly.
// The rate must stay below the topology's saturation point (the mesh
// bisection bound shrinks as 2/size for uniform traffic) or the injection
// queues and message freelist grow — and allocate — without bound.
func benchLargeMesh(b *testing.B, size, shards int, rate float64) {
	net, cores := noc.BuildMeshCores(noc.Config{Width: size, Height: size, VCs: 3, BufferCap: 8})
	net.SetPolicy(arb.NewGlobalAge())
	net.SetShards(shards)
	defer net.SetShards(1)
	in := traffic.NewInjector(cores, traffic.UniformRandom{}, rate, rand.New(rand.NewSource(17)))
	in.Classes = 3
	// Long warmup: the in-flight population on a near-saturation 32x32 mesh
	// takes on the order of a thousand cycles to stabilize, and the message
	// freelist keeps growing (allocating) until it does.
	for i := 0; i < 1500; i++ {
		in.Tick()
		net.Step()
	}
	before := net.Stats().Delivered
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		in.Tick()
		net.Step()
	}
	elapsed := time.Since(start).Seconds()
	b.StopTimer()
	if delivered := net.Stats().Delivered - before; elapsed > 0 {
		b.ReportMetric(float64(delivered)/elapsed/float64(len(cores)), "msgs/s/core")
	}
}

func BenchmarkHotLargeMeshStep16x16K1(b *testing.B) { benchLargeMesh(b, 16, 1, 0.1) }
func BenchmarkHotLargeMeshStep16x16K4(b *testing.B) { benchLargeMesh(b, 16, 4, 0.1) }
func BenchmarkHotLargeMeshStep32x32K1(b *testing.B) { benchLargeMesh(b, 32, 1, 0.05) }
func BenchmarkHotLargeMeshStep32x32K4(b *testing.B) { benchLargeMesh(b, 32, 4, 0.05) }
