package noc_test

import (
	"math/rand"
	"testing"
	"time"

	"mlnoc/internal/arb"
	"mlnoc/internal/fault"
	"mlnoc/internal/noc"
	"mlnoc/internal/traffic"
)

// benchMesh builds a loaded 8x8 mesh under uniform-random traffic with the
// global-age arbiter — the steady-state Step workload of the Fig. 5 sweeps.
func benchMesh() (*noc.Network, *traffic.Injector) {
	net, cores := noc.BuildMeshCores(noc.Config{Width: 8, Height: 8, VCs: 3, BufferCap: 4})
	net.SetPolicy(arb.NewGlobalAge())
	in := traffic.NewInjector(cores, traffic.UniformRandom{}, 0.3, rand.New(rand.NewSource(17)))
	in.Classes = 3
	return net, in
}

// TestNetworkStepZeroAllocs pins the tentpole contract: once warm (scratch
// grown, message freelist populated, delivery wheel sized), a simulation cycle
// performs no heap allocations. The rate is kept below saturation so injection
// queues and the in-flight population are stable.
func TestNetworkStepZeroAllocs(t *testing.T) {
	net, cores := noc.BuildMeshCores(noc.Config{Width: 8, Height: 8, VCs: 3, BufferCap: 4})
	net.SetPolicy(arb.NewGlobalAge())
	in := traffic.NewInjector(cores, traffic.UniformRandom{}, 0.1, rand.New(rand.NewSource(17)))
	in.Classes = 3
	for i := 0; i < 4000; i++ {
		in.Tick()
		net.Step()
	}
	allocs := testing.AllocsPerRun(500, func() {
		in.Tick()
		net.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Tick+Step allocates %v objects per cycle, want 0", allocs)
	}
}

func BenchmarkHotNetworkStep(b *testing.B) {
	net, in := benchMesh()
	for i := 0; i < 3000; i++ {
		in.Tick()
		net.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Tick()
		net.Step()
	}
}

// benchLargeMesh measures steady-state stepping of one large mesh with the
// given router-shard count, reporting delivered messages/sec/core — the
// headline scaling metric. K>1 only pays off with spare cores; on a
// single-CPU runner the two-phase barrier is pure overhead and the custom
// metric records that honestly.
// The rate must stay below the topology's saturation point (the mesh
// bisection bound shrinks as 2/size for uniform traffic) or the injection
// queues and message freelist grow — and allocate — without bound.
func benchLargeMesh(b *testing.B, size, shards int, rate float64) {
	net, cores := noc.BuildMeshCores(noc.Config{Width: size, Height: size, VCs: 3, BufferCap: 8})
	net.SetPolicy(arb.NewGlobalAge())
	net.SetShards(shards)
	defer net.SetShards(1)
	in := traffic.NewInjector(cores, traffic.UniformRandom{}, rate, rand.New(rand.NewSource(17)))
	in.Classes = 3
	// Long warmup: the in-flight population on a near-saturation 32x32 mesh
	// takes on the order of a thousand cycles to stabilize, and the message
	// freelist keeps growing (allocating) until it does.
	for i := 0; i < 1500; i++ {
		in.Tick()
		net.Step()
	}
	before := net.Stats().Delivered
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		in.Tick()
		net.Step()
	}
	elapsed := time.Since(start).Seconds()
	b.StopTimer()
	if delivered := net.Stats().Delivered - before; elapsed > 0 {
		b.ReportMetric(float64(delivered)/elapsed/float64(len(cores)), "msgs/s/core")
	}
}

func BenchmarkHotLargeMeshStep16x16K1(b *testing.B) { benchLargeMesh(b, 16, 1, 0.1) }
func BenchmarkHotLargeMeshStep16x16K4(b *testing.B) { benchLargeMesh(b, 16, 4, 0.1) }
func BenchmarkHotLargeMeshStep32x32K1(b *testing.B) { benchLargeMesh(b, 32, 1, 0.05) }
func BenchmarkHotLargeMeshStep32x32K4(b *testing.B) { benchLargeMesh(b, 32, 4, 0.05) }

// TestSparseStepZeroAllocs pins the zero-alloc contract in the active-set
// engine's target regime: a big mesh at a sparse injection rate, where almost
// every router and node is skipped each cycle.
func TestSparseStepZeroAllocs(t *testing.T) {
	net, cores := noc.BuildMesh32x32()
	net.SetPolicy(arb.NewGlobalAge())
	in := traffic.NewInjector(cores, traffic.UniformRandom{}, 0.005, rand.New(rand.NewSource(17)))
	in.Classes = 3
	for i := 0; i < 3000; i++ {
		in.Tick()
		net.Step()
	}
	allocs := testing.AllocsPerRun(500, func() {
		in.Tick()
		net.Step()
	})
	if allocs != 0 {
		t.Fatalf("sparse steady-state Tick+Step allocates %v objects per cycle, want 0", allocs)
	}
}

// benchLargeMeshSparse measures stepping at a sparse injection rate — the
// active-set engine's target regime, where per-cycle cost should track the
// in-flight population rather than the topology size. active=false forces the
// full-scan baseline so the committed snapshot carries both sides of the
// comparison. The mean active-router count is reported so the sparseness of
// the regime is visible next to the ns/op.
func benchLargeMeshSparse(b *testing.B, size, shards int, rate float64, active bool) {
	net, cores := noc.BuildMeshCores(noc.Config{Width: size, Height: size, VCs: 3, BufferCap: 8})
	net.SetPolicy(arb.NewGlobalAge())
	net.SetActiveStepping(active)
	net.SetShards(shards)
	defer net.SetShards(1)
	in := traffic.NewInjector(cores, traffic.UniformRandom{}, rate, rand.New(rand.NewSource(17)))
	in.Classes = 3
	// The sparse regime converges slowly: at rate*N^2 injections per cycle
	// the freelist and per-node queues take thousands of cycles to reach
	// steady state on the biggest meshes, and until they do Step allocates.
	warmup := 1500
	if size >= 64 {
		warmup = 15000
	}
	for i := 0; i < warmup; i++ {
		in.Tick()
		net.Step()
	}
	before := net.Stats().Delivered
	var activeSum int64
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		in.Tick()
		net.Step()
		activeSum += int64(net.ActiveRouters())
	}
	elapsed := time.Since(start).Seconds()
	b.StopTimer()
	if delivered := net.Stats().Delivered - before; elapsed > 0 {
		b.ReportMetric(float64(delivered)/elapsed/float64(len(cores)), "msgs/s/core")
	}
	b.ReportMetric(float64(activeSum)/float64(b.N), "active-routers")
}

func BenchmarkHotLargeMeshStepSparse16x16(b *testing.B) { benchLargeMeshSparse(b, 16, 1, 0.02, true) }
func BenchmarkHotLargeMeshStepSparse16x16FullScan(b *testing.B) {
	benchLargeMeshSparse(b, 16, 1, 0.02, false)
}
func BenchmarkHotLargeMeshStepSparse32x32(b *testing.B) { benchLargeMeshSparse(b, 32, 1, 0.005, true) }
func BenchmarkHotLargeMeshStepSparse32x32K4(b *testing.B) {
	benchLargeMeshSparse(b, 32, 4, 0.005, true)
}
func BenchmarkHotLargeMeshStepSparse32x32FullScan(b *testing.B) {
	benchLargeMeshSparse(b, 32, 1, 0.005, false)
}
func BenchmarkHotLargeMeshStepSparse64x64(b *testing.B) {
	benchLargeMeshSparse(b, 64, 1, 0.002, true)
}

// benchLargeMeshSparseFaulted is the degraded-mesh counterpart: two interior
// links are dead for the whole run and the fault-aware table routing steers
// around them. This is where the full-scan engine pays its worst O(topology)
// tax — the per-cycle evictUnreachable sweep probes every router's buffers,
// and the legacy gather re-routes every head once per candidate output —
// while the active-set engine visits only occupied routers and its route-once
// path spends exactly one Route call per buffered head per cycle.
func benchLargeMeshSparseFaulted(b *testing.B, size, shards int, rate float64, active bool) {
	net, cores := noc.BuildMeshCores(noc.Config{Width: size, Height: size, VCs: 3, BufferCap: 8})
	net.SetPolicy(arb.NewGlobalAge())
	mid := size / 2
	net.SetLinkDown(net.RouterAt(mid, mid).ID(), noc.PortEast, true)
	net.SetLinkDown(net.RouterAt(mid, mid+1).ID(), noc.PortSouth, true)
	net.SetRouting(fault.NewTableRouting(net))
	net.SetActiveStepping(active)
	net.SetShards(shards)
	defer net.SetShards(1)
	in := traffic.NewInjector(cores, traffic.UniformRandom{}, rate, rand.New(rand.NewSource(17)))
	in.Classes = 3
	for i := 0; i < 1500; i++ {
		in.Tick()
		net.Step()
	}
	before := net.Stats().Delivered
	var activeSum int64
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		in.Tick()
		net.Step()
		activeSum += int64(net.ActiveRouters())
	}
	elapsed := time.Since(start).Seconds()
	b.StopTimer()
	if delivered := net.Stats().Delivered - before; elapsed > 0 {
		b.ReportMetric(float64(delivered)/elapsed/float64(len(cores)), "msgs/s/core")
	}
	b.ReportMetric(float64(activeSum)/float64(b.N), "active-routers")
}

func BenchmarkHotLargeMeshStepSparse32x32Faulted(b *testing.B) {
	benchLargeMeshSparseFaulted(b, 32, 1, 0.005, true)
}
func BenchmarkHotLargeMeshStepSparse32x32FaultedFullScan(b *testing.B) {
	benchLargeMeshSparseFaulted(b, 32, 1, 0.005, false)
}
