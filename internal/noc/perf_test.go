package noc_test

import (
	"math/rand"
	"testing"

	"mlnoc/internal/arb"
	"mlnoc/internal/noc"
	"mlnoc/internal/traffic"
)

// benchMesh builds a loaded 8x8 mesh under uniform-random traffic with the
// global-age arbiter — the steady-state Step workload of the Fig. 5 sweeps.
func benchMesh() (*noc.Network, *traffic.Injector) {
	net, cores := noc.BuildMeshCores(noc.Config{Width: 8, Height: 8, VCs: 3, BufferCap: 4})
	net.SetPolicy(arb.NewGlobalAge())
	in := traffic.NewInjector(cores, traffic.UniformRandom{}, 0.3, rand.New(rand.NewSource(17)))
	in.Classes = 3
	return net, in
}

// TestNetworkStepZeroAllocs pins the tentpole contract: once warm (scratch
// grown, message freelist populated, delivery wheel sized), a simulation cycle
// performs no heap allocations. The rate is kept below saturation so injection
// queues and the in-flight population are stable.
func TestNetworkStepZeroAllocs(t *testing.T) {
	net, cores := noc.BuildMeshCores(noc.Config{Width: 8, Height: 8, VCs: 3, BufferCap: 4})
	net.SetPolicy(arb.NewGlobalAge())
	in := traffic.NewInjector(cores, traffic.UniformRandom{}, 0.1, rand.New(rand.NewSource(17)))
	in.Classes = 3
	for i := 0; i < 4000; i++ {
		in.Tick()
		net.Step()
	}
	allocs := testing.AllocsPerRun(500, func() {
		in.Tick()
		net.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Tick+Step allocates %v objects per cycle, want 0", allocs)
	}
}

func BenchmarkHotNetworkStep(b *testing.B) {
	net, in := benchMesh()
	for i := 0; i < 3000; i++ {
		in.Tick()
		net.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Tick()
		net.Step()
	}
}
