package noc

import "math/bits"

// Active-set stepping.
//
// A large, lightly loaded topology spends almost all of its per-cycle budget
// visiting routers and nodes that have nothing to do: inject() walks every
// node, arbitrate() walks every router, and on faulty networks
// evictUnreachable probes every router's buffer heads — all O(topology) per
// cycle even when the in-flight population touches a handful of routers. The
// active-set engine makes those walks O(active):
//
//   - actR is a router-activity bitmap: bit r is set iff router r has at
//     least one buffered message (occ != 0). It is maintained on the exact
//     0<->nonzero transitions of Router.occ inside Buffer.push/pop/syncOcc,
//     so it is never stale and costs one word-OR only when a router wakes or
//     drains. A router with occ == 0 produces no candidates on any output and
//     no eviction probes, so skipping it is exactly behaviour-preserving.
//   - actN is a node-activity bitmap: bit n is set iff node n has a pending
//     injection (maintained in Node.Inject and Node.dequeue). A node with an
//     empty injection queue is a no-op in inject().
//   - evictDirty marks routers whose buffer heads must be re-probed for
//     unreachable verdicts: a fault or routing transition sets every bit, and
//     any head change (push into an empty buffer, pop exposing a successor,
//     wholesale queue rewrites through syncOcc) sets the owning router's bit.
//     For routings whose verdicts are a pure function of (router, message,
//     fault state) — the ShardSafeRouting contract — a clear bit proves no
//     head of that router can carry an unreachable verdict, so the per-cycle
//     evictUnreachable sweep shrinks to the routers actually touched by a
//     transition.
//
// All three bitmaps are scanned with bits.TrailingZeros64, so visit order is
// ascending router/node ID — identical to the full scans they replace — and
// every engine (sequential, fused, matched, sharded two-phase) stays
// bit-identical for every policy, matcher, topology, fault schedule and shard
// count. SetActiveStepping(false) forces the original full scans for A/B
// benchmarking and for the equivalence suites that pin that contract.
//
// During arbitration no activity bit is ever set (deliveries land on future
// cycles; grants and evictions pop only from the arbitrated router's own
// buffers), so the per-word snapshot taken by the scan loops cannot miss a
// router. The one behavioural contract this adds: engine observers must not
// inject messages from inside ObserveInject (Sink and OnCycle remain the
// supported injection points) — see Observer.

// DefaultShardMinActive is the default per-shard activity threshold of the
// sharded stepping engine: the phase-1 fork/join only engages when at least
// this many routers per shard are active. Below it the two-phase barrier
// costs more than it parallelizes and the cycle falls through to the
// sequential active-set path (bit-identical either way).
const DefaultShardMinActive = 64

// SetActiveStepping enables (the default) or disables active-set stepping.
// With it disabled the engine runs the original full scans — every node in
// inject, every router in arbitrate, every non-frozen router in the faulty
// eviction sweep. Both modes are bit-identical for every seeded run; the
// switch exists so benchmarks and equivalence tests can measure one against
// the other. It may be flipped between cycles at any time: the activity
// bitmaps are maintained unconditionally, so no rebuild is needed.
func (n *Network) SetActiveStepping(on bool) { n.fullScan = !on }

// ActiveStepping reports whether arbitration runs on the active-set path:
// enabled (see SetActiveStepping) and occupancy tracking available
// (MaxPorts*VCs <= 64). The inject stage needs only the node bitmap and
// follows the enable flag alone.
func (n *Network) ActiveStepping() bool { return n.activeOK() }

// ActiveRouters returns the number of routers currently holding at least one
// buffered message — the size of the set arbitration visits. Meaningful only
// while occupancy tracking is on (it reads the incrementally maintained
// activity count).
func (n *Network) ActiveRouters() int { return n.actRCount }

// SetShardMinActive sets the per-shard activity threshold for the sharded
// stepping engine (see DefaultShardMinActive): a cycle forks its phase-1
// workers only when ActiveRouters() >= perShard * Shards(). Zero makes every
// sharded cycle fork, as the pre-threshold engine did; the choice is
// invisible to results, only to wall-clock.
func (n *Network) SetShardMinActive(perShard int) {
	if perShard < 0 {
		perShard = 0
	}
	n.shardMinActive = perShard
}

// activeOK reports whether arbitrate may iterate the router-activity bitmap
// instead of the full router slice.
func (n *Network) activeOK() bool { return n.occTrack && !n.fullScan }

// activateRouter and deactivateRouter maintain the router-activity bitmap and
// its population count. They are called exactly on the 0<->nonzero
// transitions of r.occ (Buffer push/pop/syncOcc), so the count never drifts.
func (n *Network) activateRouter(r *Router) {
	n.actR[r.actWord] |= r.actMask
	n.actRCount++
}

func (n *Network) deactivateRouter(r *Router) {
	n.actR[r.actWord] &^= r.actMask
	n.actRCount--
}

// markEvictDirty flags r for the next unreachable-eviction probe.
func (n *Network) markEvictDirty(r *Router) {
	n.evictDirty[r.actWord] |= r.actMask
}

// markAllEvictDirty flags every router, invalidating all cached probe
// verdicts. Called on fault and routing transitions (link state, freezes,
// SetRouting); queue rewrites mark per-router through syncOcc.
func (n *Network) markAllEvictDirty() {
	for i := range n.evictDirty {
		n.evictDirty[i] = ^uint64(0)
	}
}

// Eviction modes of the active-set path, derived from the installed routing
// by refreshEvictMode. The full-scan reference path ignores them and probes
// every non-frozen router every faulty cycle, which is behaviourally
// identical (see maybeEvict).
const (
	// evictSkip: no Routing installed. Built-in X-Y routing never returns
	// RouteUnreachable, so the eviction sweep cannot pop anything and its
	// probes (pure XYPort calls) have no side effects: skip it wholesale.
	evictSkip uint8 = iota
	// evictLazy: a ShardSafeRouting is installed. Its verdicts depend only on
	// (router, message, fault state) and its message writes are idempotent,
	// so heads need re-probing only after a transition or head change —
	// exactly what evictDirty tracks.
	evictLazy
	// evictFull: an opaque Routing is installed. No contract to lean on;
	// probe every active router every faulty cycle, as the sequential engine
	// always did. (Routers with no buffered message are still skipped: with
	// no heads there is nothing to probe, side effects included.)
	evictFull
)

// refreshEvictMode recomputes the eviction mode after SetRouting.
func (n *Network) refreshEvictMode() {
	switch rt := n.routing.(type) {
	case nil:
		n.evictMode = evictSkip
	case ShardSafeRouting:
		if rt.ShardSafe() {
			n.evictMode = evictLazy
		} else {
			n.evictMode = evictFull
		}
	default:
		n.evictMode = evictFull
	}
}

// maybeEvict is the active-set counterpart of the unconditional
// evictUnreachable call in the full-scan arbitration loop. The caller has
// already established n.faulty and !r.frozen.
func (n *Network) maybeEvict(r *Router) {
	switch n.evictMode {
	case evictSkip:
	case evictLazy:
		if n.evictDirty[r.actWord]&r.actMask != 0 {
			n.evictUnreachable(r)
			n.evictDirty[r.actWord] &^= r.actMask
		}
	default:
		n.evictUnreachable(r)
	}
}

// arbitrateRouterRouted arbitrates one active router under a ShardSafeRouting
// with exactly one Route call per buffered head per cycle. The legacy path
// probes each head once per candidate output (up to five Route calls) plus
// once more in the eviction sweep; for table-driven fault routings that probe
// traffic dominates the whole cycle. The ShardSafe contract makes collapsing
// it sound: verdicts are a pure function of (router, message, fault state) and
// message writes are idempotent, so one call yields the same verdict and the
// same RouteBits state as six. The sharded phase-1 scan already leans on
// exactly this property.
//
// On faulty networks the unreachable eviction is folded into the same probe
// loop: heads are visited in ascending (port, VC) order — the order
// evictUnreachable walks — popping until each buffer's head is reachable, with
// the same counting and reporting sequence. Every head gets probed, which is a
// superset of what the evictDirty check demands, so the dirty bit is retired
// before granting (grant pops below re-arm it for exposed successors).
func (n *Network) arbitrateRouterRouted(ctx *ArbContext, r *Router) {
	vcs := n.cfg.VCs
	evict := n.faulty
	var routes [64]PortID
	for mask := r.occ; mask != 0; mask &= mask - 1 {
		bit := bits.TrailingZeros64(mask)
		buf := r.in[PortID(bit/vcs)][bit%vcs]
		for {
			m := buf.Head()
			if m == nil {
				break
			}
			out := r.Route(m)
			if out != RouteUnreachable {
				routes[bit] = out
				break
			}
			if !evict {
				// The full-scan reference only evicts on faulty networks; an
				// unreachable verdict without a fault just never matches an
				// output below, exactly as the legacy gather treats it.
				routes[bit] = RouteUnreachable
				break
			}
			buf.pop()
			n.fstats.Unreachable++
			n.inflightCount--
			n.inflightBase -= m.InjectCycle
			n.inflightBySrc[m.Src]--
			if n.onUnreachable != nil {
				n.onUnreachable(n.cycle, r, m)
			}
			if len(n.faultObs) > 0 {
				n.observeUnreachable(r, m)
			}
			n.recycleMessage(m)
		}
	}
	if evict {
		n.evictDirty[r.actWord] &^= r.actMask
	}
	for out := PortID(0); out < MaxPorts; out++ {
		if !r.HasPort(out) || r.linkDown[out] || r.OutputBusy(out, n.cycle) {
			continue
		}
		cands := n.candScratch[:0]
		for mask := r.occ; mask != 0; mask &= mask - 1 {
			bit := bits.TrailingZeros64(mask)
			p := PortID(bit / vcs)
			if r.inGrantedAt[p] == n.cycle || routes[bit] != out {
				continue
			}
			vc := bit - int(p)*vcs
			m := r.in[p][vc].q[0]
			if next := r.peerRouter[out]; next != nil {
				if !next.in[out.Opposite()][vc].Free() {
					continue
				}
			}
			cands = append(cands, Candidate{Port: p, VC: vc, Msg: m})
		}
		n.candScratch = cands
		if len(cands) == 0 {
			continue
		}
		ctx.Out = out
		n.selectAndGrant(ctx, r, out, cands)
	}
}

// activateNode and deactivateNode maintain the node-activity bitmap on the
// empty<->non-empty transitions of a node's injection queue.
func (n *Network) activateNode(id NodeID) {
	n.actN[id>>6] |= 1 << (uint(id) & 63)
}

func (n *Network) deactivateNode(id NodeID) {
	n.actN[id>>6] &^= 1 << (uint(id) & 63)
}
