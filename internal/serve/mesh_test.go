package serve

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestMeshJobShardInvariantPayload runs the same mesh job through Execute at
// two shard counts and requires byte-identical payloads. This is the property
// that licenses excluding Shards from the job hash: a cache entry minted by a
// sequential run answers a sharded request exactly, and vice versa.
func TestMeshJobShardInvariantPayload(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real (tiny) scaling simulations")
	}
	const scale = `"scale":{"warmup_cycles":100,"measure_cycles":300}`
	seq := mustParse(t, `{"type":"mesh","mesh":{"sizes":[4,6],"shards":1},`+scale+`}`)
	par := mustParse(t, `{"type":"mesh","mesh":{"sizes":[4,6],"shards":4},`+scale+`}`)
	if seq.Hash() != par.Hash() {
		t.Fatal("shard count changed the hash; payload comparison is moot")
	}
	a, err := Execute(context.Background(), seq, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(context.Background(), par, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("mesh payload varies with shard count:\n%s\n%s", a, b)
	}
	s := string(a)
	for _, want := range []string{"scaling_invariant.csv", "delivered", "mesh4x4", "mesh6x6"} {
		if !strings.Contains(s, want) {
			t.Fatalf("payload missing %q:\n%s", want, s)
		}
	}
	// Wall-clock fields must not leak into the cached payload.
	for _, forbid := range []string{"msgs_per_sec", "wall_seconds", "Speedup"} {
		if strings.Contains(s, forbid) {
			t.Fatalf("payload leaks machine-dependent field %q", forbid)
		}
	}
}

// TestMeshJobTorus pins that the torus variant runs end to end and labels its
// rows as a torus.
func TestMeshJobTorus(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (tiny) torus simulation")
	}
	spec := mustParse(t, `{"type":"mesh","mesh":{"sizes":[4],"torus":true,"shards":2},"scale":{"warmup_cycles":100,"measure_cycles":300}}`)
	out, err := Execute(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "torus4x4") {
		t.Fatalf("torus payload missing torus label:\n%s", out)
	}
}
