// Package serve turns the deterministic simulation engine into a long-running
// simulation-as-a-service daemon: JSON job specs that map 1:1 onto the
// internal/experiments entry points, a bounded priority worker pool with
// per-job cancellation and graceful drain, a content-hash result cache that
// answers repeated deterministic jobs without re-simulating, and an HTTP+JSON
// API with SSE streaming of per-cell obs snapshots.
//
// The whole design leans on one property pinned by the engine's tests: a job
// spec plus a seed fully determines the simulation output, bit for bit. That
// makes (spec, seed, engine version) a safe cache key — the canonical job
// hash — and makes a cache hit indistinguishable from a re-run except for
// latency.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"mlnoc/internal/cliutil"
	"mlnoc/internal/experiments"
)

// Versions folded into every job hash. EngineVersion must be bumped whenever
// a change makes the simulator produce different output for the same spec
// (otherwise a stale cache would keep serving the old results); SchemaVersion
// guards the canonicalization itself, so a change to how specs are resolved
// into hashes can never collide with hashes minted before it.
const (
	EngineVersion = "mlnoc-engine/7"
	SchemaVersion = 1
)

// Job spec vocabulary.
const (
	TypeSweep = "sweep"
	TypeTrain = "train"
	TypeFault = "fault"
	TypeQuant = "quant"
	TypeMesh  = "mesh"
)

// Spec is the JSON job specification submitted to POST /jobs. Each type maps
// onto one internal/experiments entry point:
//
//	sweep/exec     -> experiments.ExecSweepCtx        (Figs. 9+10)
//	sweep/mix      -> experiments.MixedWorkloadsCtx   (Fig. 11)
//	sweep/ablation -> experiments.AblationCtx         (Section 5.1)
//	train          -> experiments.TrainAPUCtx         (Fig. 7 heatmap)
//	fault          -> experiments.FaultSweepRatesCtx  (robustness sweep)
//	quant          -> experiments.QuantStudy          (INT8 fidelity)
//	mesh           -> experiments.ScalingStudyCtx     (large mesh/torus scaling)
//
// Priority orders the queue (higher first, FIFO within a priority) and is
// deliberately excluded from the job hash: it affects when a job runs, never
// what it computes.
type Spec struct {
	Type     string     `json:"type"`
	Seed     int64      `json:"seed,omitempty"` // 0 means the default seed 1
	Priority int        `json:"priority,omitempty"`
	Scale    *ScaleSpec `json:"scale,omitempty"`
	Sweep    *SweepSpec `json:"sweep,omitempty"`
	Fault    *FaultSpec `json:"fault,omitempty"`
	Quant    *QuantSpec `json:"quant,omitempty"`
	Mesh     *MeshSpec  `json:"mesh,omitempty"`
}

// ScaleSpec selects a Scale preset and optionally overrides individual
// knobs; a zero field means "use the preset's value", which is exactly how
// the canonicalizer treats it (an explicit value equal to the preset's
// hashes identically to leaving the field out).
type ScaleSpec struct {
	Preset        string  `json:"preset,omitempty"` // "quick" (default) or "full"
	TrainCycles   int64   `json:"train_cycles,omitempty"`
	WarmupCycles  int64   `json:"warmup_cycles,omitempty"`
	MeasureCycles int64   `json:"measure_cycles,omitempty"`
	OpScale       float64 `json:"op_scale,omitempty"`
	Epochs        int     `json:"epochs,omitempty"`
	EpochCycles   int64   `json:"epoch_cycles,omitempty"`
}

// SweepSpec parameterizes a sweep job.
type SweepSpec struct {
	// Experiment is "exec", "mix" or "ablation".
	Experiment string `json:"experiment"`
	// TrainNN trains the APU agent first and includes it as the NN policy
	// (exec and mix only; ablation compares hand-derived variants).
	TrainNN bool `json:"train_nn,omitempty"`
}

// FaultSpec parameterizes a fault-robustness sweep; an empty rate list means
// experiments.DefaultFaultRates.
type FaultSpec struct {
	Rates []float64 `json:"rates,omitempty"`
}

// QuantSpec parameterizes an INT8 quantization-fidelity study.
type QuantSpec struct {
	// Size is the mesh edge size (default 4).
	Size int `json:"size,omitempty"`
}

// MeshSpec parameterizes a large-topology scaling job. Sizes are mesh/torus
// edge lengths (default experiments.DefaultScalingSizes). Shards is the
// maximum router-shard count the engine steps with; like Priority it is an
// execution knob — the sharded engine is bit-identical to the sequential one,
// the run asserts that, and the cached result contains only shard-invariant
// fields — so Shards is deliberately excluded from the job hash.
type MeshSpec struct {
	Sizes  []int `json:"sizes,omitempty"`
	Torus  bool  `json:"torus,omitempty"`
	Shards int   `json:"shards,omitempty"`
}

// ParseSpec decodes and validates a JSON job spec. Unknown fields are
// rejected: a typo that silently dropped a knob would hash — and cache — as
// a different job than the user meant.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	spec := &Spec{}
	if err := dec.Decode(spec); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// Validate checks every field against the same constraint vocabulary the
// CLIs use (internal/cliutil), so rejection messages read identically on
// both surfaces.
func (s *Spec) Validate() error {
	var c cliutil.Check
	c.OneOf("type", s.Type, TypeSweep, TypeTrain, TypeFault, TypeQuant, TypeMesh)
	c.NonNegative("seed", s.Seed)
	if sc := s.Scale; sc != nil {
		if sc.Preset != "" {
			c.OneOf("scale.preset", sc.Preset, "quick", "full")
		}
		c.NonNegative("scale.train_cycles", sc.TrainCycles)
		c.NonNegative("scale.warmup_cycles", sc.WarmupCycles)
		c.NonNegative("scale.measure_cycles", sc.MeasureCycles)
		if sc.OpScale != 0 {
			c.PositiveF("scale.op_scale", sc.OpScale)
		}
		c.NonNegative("scale.epochs", int64(sc.Epochs))
		c.NonNegative("scale.epoch_cycles", sc.EpochCycles)
	}
	switch s.Type {
	case TypeSweep:
		if s.Sweep == nil {
			return fmt.Errorf(`sweep jobs need a "sweep" section`)
		}
		c.OneOf("sweep.experiment", s.Sweep.Experiment, "exec", "mix", "ablation")
	case TypeFault:
		if s.Fault != nil {
			for i, r := range s.Fault.Rates {
				c.Unit(fmt.Sprintf("fault.rates[%d]", i), r)
			}
		}
	case TypeQuant:
		if s.Quant != nil && s.Quant.Size != 0 {
			c.AtLeast("quant.size", int64(s.Quant.Size), 2)
		}
	case TypeMesh:
		if s.Mesh != nil {
			// Torus rings need length >= 3 so a router's two ring directions
			// stay distinct; an open mesh only needs >= 2.
			min := int64(2)
			if s.Mesh.Torus {
				min = 3
			}
			for i, sz := range s.Mesh.Sizes {
				c.AtLeast(fmt.Sprintf("mesh.sizes[%d]", i), int64(sz), min)
			}
			c.NonNegative("mesh.shards", int64(s.Mesh.Shards))
		}
	}
	return c.Err()
}

// EffectiveSeed resolves the spec's seed (0 means the CLI-wide default, 1).
func (s *Spec) EffectiveSeed() int64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

// ResolveScale materializes the spec's Scale: preset first (quick unless
// "full"), then any non-zero overrides, then the effective seed. The result
// is the fully explicit value that both execution and hashing use, so the
// hash can never disagree with what actually runs.
func (s *Spec) ResolveScale() experiments.Scale {
	sc := experiments.Quick()
	if s.Scale != nil && s.Scale.Preset == "full" {
		sc = experiments.Full()
	}
	if o := s.Scale; o != nil {
		if o.TrainCycles > 0 {
			sc.TrainCycles = o.TrainCycles
		}
		if o.WarmupCycles > 0 {
			sc.WarmupCycles = o.WarmupCycles
		}
		if o.MeasureCycles > 0 {
			sc.MeasureCycles = o.MeasureCycles
		}
		if o.OpScale > 0 {
			sc.OpScale = o.OpScale
		}
		if o.Epochs > 0 {
			sc.Epochs = o.Epochs
		}
		if o.EpochCycles > 0 {
			sc.EpochCycles = o.EpochCycles
		}
	}
	sc.Seed = s.EffectiveSeed()
	return sc
}

// effectiveRates resolves a fault job's rate list.
func (s *Spec) effectiveRates() []float64 {
	if s.Fault != nil && len(s.Fault.Rates) > 0 {
		return s.Fault.Rates
	}
	return experiments.DefaultFaultRates
}

// effectiveQuantSize resolves a quant job's mesh size.
func (s *Spec) effectiveQuantSize() int {
	if s.Quant != nil && s.Quant.Size > 0 {
		return s.Quant.Size
	}
	return 4
}

// effectiveMeshSizes resolves a mesh job's size list.
func (s *Spec) effectiveMeshSizes() []int {
	if s.Mesh != nil && len(s.Mesh.Sizes) > 0 {
		return s.Mesh.Sizes
	}
	return experiments.DefaultScalingSizes
}

// effectiveMeshShards resolves a mesh job's shard-count sweep: always the
// sequential baseline, plus the requested count when it differs — pairing
// them makes every mesh job double as a production bit-identity check.
func (s *Spec) effectiveMeshShards() []int {
	if s.Mesh != nil && s.Mesh.Shards > 1 {
		return []int{1, s.Mesh.Shards}
	}
	return []int{1}
}

func (s *Spec) meshTorus() bool { return s.Mesh != nil && s.Mesh.Torus }

// canonicalJob is the exact byte layout hashed into the job's cache key:
// engine and schema versions, the job type, and every resolved
// result-affecting parameter with defaults applied. JSON key order follows
// struct field order, so marshalling is deterministic; request-level JSON
// key order and default-vs-explicit spelling cannot reach this struct.
type canonicalJob struct {
	Engine string            `json:"engine"`
	Schema int               `json:"schema"`
	Type   string            `json:"type"`
	Seed   int64             `json:"seed"`
	Scale  experiments.Scale `json:"scale"`
	Sweep  *SweepSpec        `json:"sweep,omitempty"`
	Rates  []float64         `json:"rates,omitempty"`
	Size   int               `json:"size,omitempty"`
	Mesh   *canonicalMesh    `json:"mesh,omitempty"`
}

// canonicalMesh is the hashed form of a mesh job. Shards is absent on
// purpose: the sharded engine is bit-identical to the sequential one and the
// result doc carries only shard-invariant fields, so two specs differing only
// in shard count are the same job and share a cache entry.
type canonicalMesh struct {
	Sizes []int `json:"sizes"`
	Torus bool  `json:"torus"`
}

// Hash returns the canonical content hash of the job: a hex SHA-256 over the
// canonical form. Two specs hash identically iff they resolve to the same
// simulation under the same engine — reordered JSON keys, omitted defaults
// and scheduling metadata (priority) do not change the hash; seed, any scale
// knob, job parameters, or an engine/schema version bump do.
func (s *Spec) Hash() string {
	return s.hashWith(EngineVersion, SchemaVersion)
}

// hashWith is Hash with explicit versions, split out so tests can prove a
// version bump invalidates the cache key.
func (s *Spec) hashWith(engine string, schema int) string {
	c := canonicalJob{
		Engine: engine,
		Schema: schema,
		Type:   s.Type,
		Seed:   s.EffectiveSeed(),
		Scale:  s.ResolveScale(),
	}
	switch s.Type {
	case TypeSweep:
		sw := *s.Sweep
		c.Sweep = &sw
	case TypeFault:
		c.Rates = s.effectiveRates()
	case TypeQuant:
		c.Size = s.effectiveQuantSize()
	case TypeMesh:
		c.Mesh = &canonicalMesh{Sizes: s.effectiveMeshSizes(), Torus: s.meshTorus()}
	}
	buf, err := json.Marshal(c)
	if err != nil {
		// canonicalJob contains only plain data; Marshal cannot fail.
		panic(fmt.Sprintf("serve: canonical marshal: %v", err))
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}
