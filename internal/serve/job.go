package serve

import (
	"context"
	"sync"
	"time"
)

// State is a job lifecycle state. The machine is strictly forward:
//
//	queued -> running -> done | failed | cancelled
//	queued -> cancelled            (cancel or drain before a worker claims it)
//	queued -> done (cached)        (cache hit: the job never enters the queue)
type State string

// Job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// terminal reports whether st is an end state.
func (st State) terminal() bool {
	return st == StateDone || st == StateFailed || st == StateCancelled
}

// Progress is a job's sweep position: cells finished out of the total, and
// the label of the last finished cell ("workload/policy").
type Progress struct {
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Label string `json:"label,omitempty"`
}

// Event is one item on a job's stream: lifecycle transitions, per-cell
// progress, per-cell obs snapshot summaries, and watchdog alerts. Kind is
// the SSE event name; Data is its JSON payload.
type Event struct {
	Kind string
	Data any
}

// Job is one submitted unit of work. All exported access goes through
// methods; the zero value is not usable — Server mints jobs.
type Job struct {
	// ID is the per-daemon submission ID ("j000001"); Hash is the canonical
	// content hash shared by every submission of the same work. CorrID is the
	// correlation ID threaded from HTTP submission through pool execution,
	// watchdog alerts and SSE events — client-supplied (X-Correlation-ID) or
	// minted as "<id>-<hash prefix>". It identifies the submission, not the
	// work, so it never enters the spec hash or the cached result payload.
	ID     string
	Hash   string
	CorrID string
	Spec   *Spec

	mu        sync.Mutex
	state     State
	cached    bool
	errMsg    string
	result    []byte
	progress  Progress
	alerts    []string
	created   time.Time
	started   time.Time
	finished  time.Time
	cancelFn  context.CancelFunc
	cancelled bool // cancel requested (maybe before the worker built the context)
	subs      map[chan Event]struct{}
}

// newJob creates a queued job.
func newJob(id string, spec *Spec, now time.Time) *Job {
	return &Job{
		ID:      id,
		Hash:    spec.Hash(),
		Spec:    spec,
		state:   StateQueued,
		created: now,
		subs:    make(map[chan Event]struct{}),
	}
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Cached reports whether the job was answered from the result cache.
func (j *Job) Cached() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cached
}

// Result returns the result payload and true once the job is done.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == StateDone
}

// Alerts returns the watchdog alerts raised by the job's cells so far.
func (j *Job) Alerts() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.alerts...)
}

// StatusDoc is the JSON body of GET /jobs/{id}.
type StatusDoc struct {
	ID       string    `json:"id"`
	CorrID   string    `json:"corr_id,omitempty"`
	Hash     string    `json:"hash"`
	Type     string    `json:"type"`
	State    State     `json:"state"`
	Cached   bool      `json:"cached"`
	Error    string    `json:"error,omitempty"`
	Progress *Progress `json:"progress,omitempty"`
	Alerts   []string  `json:"alerts,omitempty"`
	Created  string    `json:"created"`
	Started  string    `json:"started,omitempty"`
	Finished string    `json:"finished,omitempty"`
}

// Status exports the job's current state for the API.
func (j *Job) Status() StatusDoc {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *Job) statusLocked() StatusDoc {
	doc := StatusDoc{
		ID:      j.ID,
		CorrID:  j.CorrID,
		Hash:    j.Hash,
		Type:    j.Spec.Type,
		State:   j.state,
		Cached:  j.cached,
		Error:   j.errMsg,
		Created: j.created.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		doc.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		doc.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.progress.Total > 0 {
		p := j.progress
		doc.Progress = &p
	}
	if len(j.alerts) > 0 {
		doc.Alerts = append([]string(nil), j.alerts...)
	}
	return doc
}

// publishLocked fans ev out to every subscriber; slow subscribers drop
// events rather than block a simulation worker (the stream is a live view,
// the status endpoint is the source of truth).
func (j *Job) publishLocked(ev Event) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// closeSubsLocked ends every stream after a terminal transition.
func (j *Job) closeSubsLocked() {
	for ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}

// Subscribe attaches a live event stream. The first event replays the
// current status so late subscribers see the state they joined at; a
// terminal job closes the channel right after that replay. The returned
// cancel function detaches (idempotent, safe after close).
func (j *Job) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 64)
	j.mu.Lock()
	ch <- Event{Kind: "status", Data: j.statusLocked()}
	if j.state.terminal() || j.subs == nil {
		close(ch)
		j.mu.Unlock()
		return ch, func() {}
	}
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
	}
}

// start transitions queued -> running and installs the worker's cancel
// handle. It returns false when the job was cancelled before a worker
// claimed it (the worker then skips it).
func (j *Job) start(cancel context.CancelFunc, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued || j.cancelled {
		return false
	}
	j.state = StateRunning
	j.started = now
	j.cancelFn = cancel
	j.publishLocked(Event{Kind: "status", Data: j.statusLocked()})
	return true
}

// Cancel requests cancellation: a queued job is finalized immediately, a
// running job has its context cancelled and finalizes when the sweep's
// cancellation check fires. Terminal jobs are unaffected.
func (j *Job) Cancel(now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() || j.cancelled {
		return
	}
	j.cancelled = true
	if j.state == StateQueued {
		j.finishLocked(StateCancelled, nil, "cancelled before start", now)
		return
	}
	if j.cancelFn != nil {
		j.cancelFn()
	}
}

// setProgress records a finished sweep cell and streams it.
func (j *Job) setProgress(done, total int, label string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.progress = Progress{Done: done, Total: total, Label: label}
	j.publishLocked(Event{Kind: "progress", Data: j.progress})
}

// addAlert records a watchdog alert and streams it. The alert list is the
// readiness signal: a running job with alerts marks the daemon unready.
func (j *Job) addAlert(s string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.alerts = append(j.alerts, s)
	j.publishLocked(Event{Kind: "alert", Data: s})
}

// publish streams a free-form event (obs snapshot summaries).
func (j *Job) publish(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.publishLocked(ev)
}

// finish finalizes the job into a terminal state, streams the final status,
// and closes every subscriber.
func (j *Job) finish(st State, result []byte, errMsg string, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.finishLocked(st, result, errMsg, now)
}

func (j *Job) finishLocked(st State, result []byte, errMsg string, now time.Time) {
	j.state = st
	j.result = result
	j.errMsg = errMsg
	j.finished = now
	j.publishLocked(Event{Kind: "status", Data: j.statusLocked()})
	j.closeSubsLocked()
}

// completeCached finalizes a freshly minted job as a cache hit.
func (j *Job) completeCached(payload []byte, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cached = true
	j.finishLocked(StateDone, payload, "", now)
}
