package serve

import (
	"container/heap"
	"sync"
)

// queue is a bounded, closeable priority queue of jobs: higher Spec.Priority
// first, FIFO (submission order) within a priority. Push fails fast when the
// queue is full — the server turns that into a 503 so callers get backpressure
// instead of unbounded memory growth. Pop blocks until a job or close.
type queue struct {
	mu     sync.Mutex
	nonEmp *sync.Cond
	items  jobHeap
	seq    int64
	max    int
	closed bool
}

func newQueue(max int) *queue {
	q := &queue{max: max}
	q.nonEmp = sync.NewCond(&q.mu)
	return q
}

// Push enqueues j. It reports false when the queue is full or closed.
func (q *queue) Push(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.items) >= q.max {
		return false
	}
	q.seq++
	heap.Push(&q.items, queued{job: j, seq: q.seq})
	q.nonEmp.Signal()
	return true
}

// Pop blocks until a job is available and returns it, or returns nil once
// the queue is closed and empty.
func (q *queue) Pop() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.nonEmp.Wait()
	}
	if len(q.items) == 0 {
		return nil
	}
	return heap.Pop(&q.items).(queued).job
}

// Close stops the queue: pending jobs are returned (so the server can mark
// them cancelled during a drain) and every blocked Pop wakes up with nil.
func (q *queue) Close() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	var rest []*Job
	for len(q.items) > 0 {
		rest = append(rest, heap.Pop(&q.items).(queued).job)
	}
	q.nonEmp.Broadcast()
	return rest
}

// Len returns the current queue depth.
func (q *queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// queued is one heap entry; seq breaks priority ties FIFO.
type queued struct {
	job *Job
	seq int64
}

// jobHeap implements heap.Interface: max-priority, then min-seq.
type jobHeap []queued

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(a, b int) bool {
	pa, pb := h[a].job.Spec.Priority, h[b].job.Spec.Priority
	if pa != pb {
		return pa > pb
	}
	return h[a].seq < h[b].seq
}
func (h jobHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }

func (h *jobHeap) Push(x any) { *h = append(*h, x.(queued)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = queued{}
	*h = old[:n-1]
	return it
}
