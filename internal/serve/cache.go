package serve

import (
	"container/list"
	"os"
	"path/filepath"
	"sync"
)

// cache is the result cache: an in-memory LRU over job-hash keys with
// optional write-through disk spill. Because the engine is deterministic,
// a hash hit can return the stored payload verbatim — byte-identical to
// re-running the job — so the cache is an exact substitute for simulation,
// not an approximation.
//
// With a spill directory configured every payload is also written to
// <dir>/<hash>.json (hashes are hex, so the name is filesystem-safe); an
// entry evicted from memory is then still served from disk, and a restarted
// daemon warms up from the artifacts of its previous life.
type cache struct {
	mu        sync.Mutex
	max       int
	dir       string
	entries   map[string]*list.Element
	order     *list.List // front = most recently used
	hits      int64
	misses    int64
	evictions int64
	spills    int64
}

type cacheEntry struct {
	hash    string
	payload []byte
}

func newCache(maxEntries int, dir string) *cache {
	return &cache{
		max:     maxEntries,
		dir:     dir,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// Get returns the payload cached under hash. Memory first, then the spill
// directory (promoting the entry back into memory).
func (c *cache) Get(hash string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.entries[hash]; ok {
		c.order.MoveToFront(el)
		c.hits++
		payload := el.Value.(*cacheEntry).payload
		c.mu.Unlock()
		return payload, true
	}
	c.mu.Unlock()

	if c.dir != "" {
		if payload, err := os.ReadFile(c.spillPath(hash)); err == nil {
			c.mu.Lock()
			c.hits++
			c.putLocked(hash, payload)
			c.mu.Unlock()
			return payload, true
		}
	}

	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores payload under hash and spills it to disk when configured.
// Spill failures are ignored: the disk copy is an optimization, the
// in-memory entry is already live.
func (c *cache) Put(hash string, payload []byte) {
	c.mu.Lock()
	c.putLocked(hash, payload)
	c.mu.Unlock()
	if c.dir != "" {
		if os.WriteFile(c.spillPath(hash), payload, 0o644) == nil {
			c.mu.Lock()
			c.spills++
			c.mu.Unlock()
		}
	}
}

func (c *cache) putLocked(hash string, payload []byte) {
	if el, ok := c.entries[hash]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).payload = payload
		return
	}
	el := c.order.PushFront(&cacheEntry{hash: hash, payload: payload})
	c.entries[hash] = el
	for len(c.entries) > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).hash)
		c.evictions++
	}
}

// Stats returns cumulative hit/miss counters and the live entry count.
func (c *cache) Stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}

// Counters returns every cumulative counter — the /metrics bridge. Evictions
// count in-memory LRU removals (a disk spill of the same entry may still
// serve it later); spills count successful write-throughs to the spill dir.
func (c *cache) Counters() (hits, misses, evictions, spills int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.spills
}

func (c *cache) spillPath(hash string) string {
	return filepath.Join(c.dir, hash+".json")
}
