package serve

import (
	"context"
	"encoding/json"
	"fmt"

	"mlnoc/internal/experiments"
	"mlnoc/internal/viz"
)

// resultDoc is the JSON result payload served by GET /jobs/{id}/result. It
// is built from deterministic renderings of the experiment results, then
// marshalled with sorted map keys (encoding/json sorts map keys), so the
// same job always produces byte-identical payloads — the property the cache
// test pins.
type resultDoc struct {
	Hash     string            `json:"hash"`
	Type     string            `json:"type"`
	Seed     int64             `json:"seed"`
	Engine   string            `json:"engine"`
	Rendered string            `json:"rendered"`
	CSV      map[string]string `json:"csv,omitempty"`
}

// Execute runs one validated job spec against the experiments engine,
// forwarding per-cell telemetry through tel (which may be nil). It is the
// production runFunc; tests substitute stubs through Config.Runner.
func Execute(ctx context.Context, spec *Spec, tel *experiments.Telemetry) ([]byte, error) {
	sc := spec.ResolveScale()
	doc := resultDoc{
		Hash:   spec.Hash(),
		Type:   spec.Type,
		Seed:   sc.Seed,
		Engine: EngineVersion,
		CSV:    map[string]string{},
	}
	switch spec.Type {
	case TypeSweep:
		switch spec.Sweep.Experiment {
		case "exec":
			r, err := experiments.ExecSweepCtx(ctx, sc, spec.Sweep.TrainNN, tel)
			if err != nil {
				return nil, err
			}
			doc.Rendered = r.RenderAvg() + "\n" + r.RenderTail()
			doc.CSV["fig9_avg.csv"] = r.CSVAvg()
			doc.CSV["fig10_tail.csv"] = r.CSVTail()
		case "mix":
			r, err := experiments.MixedWorkloadsCtx(ctx, sc, spec.Sweep.TrainNN, tel)
			if err != nil {
				return nil, err
			}
			doc.Rendered = r.Render()
			doc.CSV["fig11_mixes.csv"] = r.CSV()
		case "ablation":
			r, err := experiments.AblationCtx(ctx, sc, tel)
			if err != nil {
				return nil, err
			}
			doc.Rendered = r.Render()
			doc.CSV["ablation.csv"] = r.CSV()
		default:
			return nil, fmt.Errorf("unknown sweep experiment %q", spec.Sweep.Experiment)
		}
	case TypeTrain:
		agent, err := experiments.TrainAPUCtx(ctx, sc)
		if err != nil {
			return nil, err
		}
		agent.Freeze()
		h := experiments.APUHeatmapFromAgent(agent)
		doc.Rendered = experiments.RenderAPUHeatmap(h)
		doc.CSV["fig7_heatmap.csv"] = viz.HeatmapCSV(h.RowLabels, h.ColLabels, h.Abs)
	case TypeFault:
		r, err := experiments.FaultSweepRatesCtx(ctx, sc, tel, spec.effectiveRates())
		if err != nil {
			return nil, err
		}
		doc.Rendered = r.Render()
		doc.CSV["faults_mesh.csv"] = r.CSVMesh()
		doc.CSV["faults_apu.csv"] = r.CSVAPU()
	case TypeQuant:
		// QuantStudy has no per-cell structure to cancel between; honor a
		// cancellation that lands before it starts.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r := experiments.QuantStudy(spec.effectiveQuantSize(), sc)
		doc.Rendered = r.Render()
		doc.CSV["quant_fidelity.csv"] = r.CSV()
	case TypeMesh:
		// The shard sweep always pairs the sequential baseline with the
		// requested count, and ScalingStudyCtx errors if they diverge — every
		// mesh job is also a production bit-identity check. Only the
		// shard-invariant outcome is rendered: wall-clock throughput depends
		// on the machine and the shard count, neither of which is in the job
		// hash, and the cache contract is byte-identical payloads per hash.
		r, err := experiments.ScalingStudyCtx(ctx, spec.effectiveMeshSizes(), spec.effectiveMeshShards(), spec.meshTorus(), sc)
		if err != nil {
			return nil, err
		}
		doc.Rendered = r.RenderInvariant()
		doc.CSV["scaling_invariant.csv"] = r.InvariantCSV()
	default:
		return nil, fmt.Errorf("unknown job type %q", spec.Type)
	}
	if len(doc.CSV) == 0 {
		doc.CSV = nil
	}
	return json.Marshal(doc)
}
