package serve

import (
	"io"
	"net/http"
)

// handleDashboard serves the self-contained live dashboard. Everything is
// inline — one HTML document, no external assets — so the page works from a
// bare daemon with no static-file serving and survives being saved to disk.
func (s *Server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, dashboardHTML)
}

// dashboardHTML polls /metrics (parsed client-side with the same line
// grammar the Go parser enforces) and /jobs every 2s, draws a queue-depth
// sparkline, derives latency quantiles from histogram buckets, and attaches
// an EventSource to the newest non-terminal job for the live event pane.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>mlnoc simd dashboard</title>
<style>
  body { font-family: ui-monospace, SFMono-Regular, Menlo, Consolas, monospace;
         background: #11151a; color: #d8dee9; margin: 1.5rem; }
  h1 { font-size: 1.1rem; font-weight: 600; }
  h1 .drain { color: #bf616a; display: none; }
  .tiles { display: flex; flex-wrap: wrap; gap: .8rem; margin-bottom: 1rem; }
  .tile { background: #1b222c; border: 1px solid #2e3946; border-radius: 6px;
          padding: .6rem .9rem; min-width: 8.5rem; }
  .tile .v { font-size: 1.5rem; font-weight: 700; color: #88c0d0; }
  .tile .k { font-size: .7rem; color: #7b8794; text-transform: uppercase; }
  table { border-collapse: collapse; width: 100%; margin-bottom: 1rem; }
  th, td { text-align: left; padding: .25rem .6rem; border-bottom: 1px solid #2e3946;
           font-size: .8rem; }
  th { color: #7b8794; text-transform: uppercase; font-size: .7rem; }
  .done { color: #a3be8c; } .failed { color: #bf616a; }
  .running { color: #ebcb8b; } .queued { color: #81a1c1; } .cancelled { color: #7b8794; }
  #spark { background: #1b222c; border: 1px solid #2e3946; border-radius: 6px; }
  #events { background: #1b222c; border: 1px solid #2e3946; border-radius: 6px;
            padding: .6rem; height: 10rem; overflow-y: auto; font-size: .75rem;
            white-space: pre-wrap; }
  .section { margin-bottom: .4rem; color: #7b8794; font-size: .75rem;
             text-transform: uppercase; }
</style>
</head>
<body>
<h1>mlnoc simd <span class="drain" id="drain">DRAINING</span></h1>
<div class="tiles">
  <div class="tile"><div class="v" id="t-depth">–</div><div class="k">queue depth</div></div>
  <div class="tile"><div class="v" id="t-busy">–</div><div class="k">busy / workers</div></div>
  <div class="tile"><div class="v" id="t-done">–</div><div class="k">jobs done</div></div>
  <div class="tile"><div class="v" id="t-failed">–</div><div class="k">jobs failed</div></div>
  <div class="tile"><div class="v" id="t-cache">–</div><div class="k">cache hit ratio</div></div>
  <div class="tile"><div class="v" id="t-evict">–</div><div class="k">evict / spill</div></div>
  <div class="tile"><div class="v" id="t-alerts">–</div><div class="k">watchdog alerts</div></div>
</div>
<div class="section">queue depth (last 60 samples)</div>
<canvas id="spark" width="600" height="60"></canvas>
<div class="section" style="margin-top:1rem">job latency quantiles (seconds)</div>
<table id="lat"><thead><tr><th>type</th><th>count</th><th>p50</th><th>p90</th><th>p99</th></tr></thead><tbody></tbody></table>
<div class="section">jobs</div>
<table id="jobs"><thead><tr><th>id</th><th>corr</th><th>type</th><th>state</th><th>progress</th></tr></thead><tbody></tbody></table>
<div class="section">live events <span id="ev-job"></span></div>
<div id="events"></div>
<script>
"use strict";
const depths = [];
let es = null, esJob = null;

// parseMetrics reads the exposition text into {name -> [{labels, value}]}.
function parseMetrics(text) {
  const fams = {};
  for (const line of text.split("\n")) {
    if (!line || line.startsWith("#")) continue;
    const m = line.match(/^([A-Za-z_:][A-Za-z0-9_:]*)(\{.*\})? (\S+)$/);
    if (!m) continue;
    const labels = {};
    if (m[2]) for (const kv of m[2].slice(1, -1).match(/[A-Za-z_][A-Za-z0-9_]*="(?:[^"\\]|\\.)*"/g) || []) {
      const eq = kv.indexOf("=");
      labels[kv.slice(0, eq)] = kv.slice(eq + 2, -1)
        .replace(/\\n/g, "\n").replace(/\\"/g, '"').replace(/\\\\/g, "\\");
    }
    (fams[m[1]] = fams[m[1]] || []).push({ labels, value: parseFloat(m[3]) });
  }
  return fams;
}

function sum(fams, name, want) {
  let t = 0;
  for (const s of fams[name] || []) {
    if (want && Object.entries(want).some(([k, v]) => s.labels[k] !== v)) continue;
    t += s.value;
  }
  return t;
}

// quantile interpolates inside cumulative _bucket samples, mirroring
// telemetry.Histogram.Quantile.
function quantile(buckets, q) {
  const total = buckets.length ? buckets[buckets.length - 1].value : 0;
  if (!total) return 0;
  const target = q * total;
  let prevCum = 0, lower = 0;
  for (const b of buckets) {
    if (b.value >= target && b.value > prevCum) {
      if (b.le === Infinity) return lower;
      const frac = (target - prevCum) / (b.value - prevCum);
      return lower + frac * (b.le - lower);
    }
    prevCum = b.value;
    if (b.le !== Infinity) lower = b.le;
  }
  return lower;
}

function fmt(v) { return v >= 100 ? v.toFixed(0) : v >= 1 ? v.toFixed(2) : v.toPrecision(2); }

function drawSpark() {
  const c = document.getElementById("spark"), ctx = c.getContext("2d");
  ctx.clearRect(0, 0, c.width, c.height);
  const max = Math.max(1, ...depths);
  ctx.strokeStyle = "#88c0d0"; ctx.beginPath();
  depths.forEach((d, i) => {
    const x = i * (c.width / 60), y = c.height - 4 - (d / max) * (c.height - 8);
    i ? ctx.lineTo(x, y) : ctx.moveTo(x, y);
  });
  ctx.stroke();
}

async function tickMetrics() {
  const text = await (await fetch("metrics")).text();
  const fams = parseMetrics(text);
  const depth = sum(fams, "mlnoc_queue_depth");
  depths.push(depth); if (depths.length > 60) depths.shift();
  drawSpark();
  document.getElementById("t-depth").textContent = depth;
  document.getElementById("t-busy").textContent =
    sum(fams, "mlnoc_pool_busy") + " / " + sum(fams, "mlnoc_pool_workers");
  document.getElementById("t-done").textContent = sum(fams, "mlnoc_jobs_finished_total", { state: "done" });
  document.getElementById("t-failed").textContent = sum(fams, "mlnoc_jobs_finished_total", { state: "failed" });
  const hits = sum(fams, "mlnoc_cache_hits_total"), misses = sum(fams, "mlnoc_cache_misses_total");
  document.getElementById("t-cache").textContent =
    hits + misses ? (100 * hits / (hits + misses)).toFixed(0) + "%" : "–";
  document.getElementById("t-evict").textContent =
    sum(fams, "mlnoc_cache_evictions_total") + " / " + sum(fams, "mlnoc_cache_spills_total");
  document.getElementById("t-alerts").textContent = sum(fams, "mlnoc_watchdog_alerts_total");
  document.getElementById("drain").style.display = sum(fams, "mlnoc_draining") ? "inline" : "none";

  const byType = {};
  for (const s of fams["mlnoc_job_latency_seconds_bucket"] || []) {
    const t = s.labels.type || "";
    (byType[t] = byType[t] || []).push({ le: s.labels.le === "+Inf" ? Infinity : parseFloat(s.labels.le), value: s.value });
  }
  const tbody = document.querySelector("#lat tbody");
  tbody.innerHTML = "";
  for (const t of Object.keys(byType).sort()) {
    const b = byType[t].sort((x, y) => x.le - y.le);
    const row = tbody.insertRow();
    [t, b[b.length - 1].value, fmt(quantile(b, .5)), fmt(quantile(b, .9)), fmt(quantile(b, .99))]
      .forEach(v => row.insertCell().textContent = v);
  }
}

async function tickJobs() {
  const jobs = await (await fetch("jobs")).json();
  const tbody = document.querySelector("#jobs tbody");
  tbody.innerHTML = "";
  for (const j of jobs.slice(-20).reverse()) {
    const row = tbody.insertRow();
    const prog = j.progress ? j.progress.done + "/" + j.progress.total : (j.cached ? "cached" : "");
    [j.id, j.corr_id || "", j.type, j.state, prog].forEach((v, i) => {
      const cell = row.insertCell();
      cell.textContent = v;
      if (i === 3) cell.className = j.state;
    });
  }
  // Follow the newest job that can still emit events.
  const live = jobs.filter(j => j.state === "queued" || j.state === "running").pop();
  if (live && live.id !== esJob) {
    if (es) es.close();
    esJob = live.id;
    document.getElementById("ev-job").textContent = "(" + live.id + ")";
    es = new EventSource("jobs/" + live.id + "/stream");
    for (const kind of ["status", "progress", "snapshot", "alert"]) {
      es.addEventListener(kind, ev => {
        const pane = document.getElementById("events");
        pane.textContent += kind + " " + ev.data + "\n";
        pane.scrollTop = pane.scrollHeight;
      });
    }
  }
}

function tick() { tickMetrics().catch(() => {}); tickJobs().catch(() => {}); }
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`
