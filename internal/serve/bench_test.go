package serve

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// BenchmarkJobHash measures the canonical content hash: parse-free, it is the
// per-submission fixed cost every request pays before the cache lookup.
func BenchmarkJobHash(b *testing.B) {
	spec := &Spec{
		Type:  TypeSweep,
		Seed:  7,
		Scale: &ScaleSpec{Preset: "quick", OpScale: 0.5},
		Sweep: &SweepSpec{Experiment: "exec", TrainNN: true},
	}
	b.ReportAllocs()
	for b.Loop() {
		_ = spec.Hash()
	}
}

// BenchmarkSubmitCachedJob measures the full submission path for a job the
// cache already holds — the latency a repeated deterministic job observes
// instead of a simulation.
func BenchmarkSubmitCachedJob(b *testing.B) {
	s := New(Config{Workers: 1, Runner: func(_ context.Context, job *Job) ([]byte, error) {
		return json.Marshal(map[string]string{"hash": job.Hash})
	}})
	defer s.Drain()
	spec := &Spec{Type: TypeQuant}
	job, err := s.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	for job.State() != StateDone {
		time.Sleep(time.Millisecond)
	}
	b.ReportAllocs()
	for b.Loop() {
		job, err := s.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		if !job.Cached() {
			b.Fatal("submission missed the cache")
		}
	}
}
