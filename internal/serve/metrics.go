package serve

import (
	"time"

	"mlnoc/internal/obs"
	"mlnoc/internal/telemetry"
)

// metrics is the daemon's bridge onto the process telemetry registry. Every
// handle is resolved once at construction, so the hot paths (job finish,
// HTTP latency) are single atomic operations; point-in-time values (queue
// depth, busy workers, cache counters) are registered as callback families
// in Server.New, so a scrape always reads live state without the server
// pushing gauge updates.
//
// Job latency is histogrammed per job type from 20ms to ~20s and HTTP
// latency per route from 1ms to ~1s, both in seconds per Prometheus
// convention.
type metrics struct {
	reg       *telemetry.Registry
	submitted *telemetry.Counter
	finished  *telemetry.CounterVec   // labels: state, type
	jobLat    *telemetry.HistogramVec // label: type
	httpLat   *telemetry.HistogramVec // label: route
	alerts    *telemetry.CounterVec   // label: kind
}

func newMetrics(reg *telemetry.Registry) *metrics {
	m := &metrics{
		reg:       reg,
		submitted: reg.Counter("mlnoc_jobs_submitted", "job submissions accepted for processing").With(),
		finished:  reg.Counter("mlnoc_jobs_finished", "terminal job transitions by state and job type", "state", "type"),
		jobLat: reg.Histogram("mlnoc_job_latency_seconds", "job execution latency by job type",
			telemetry.ExponentialBuckets(0.02, 2, 11), "type"),
		httpLat: reg.Histogram("mlnoc_http_request_duration_seconds", "HTTP handler latency by route",
			telemetry.ExponentialBuckets(0.001, 2, 11), "route"),
		alerts: reg.Counter("mlnoc_watchdog_alerts", "watchdog alerts raised by running jobs, by classification", "kind"),
	}
	// Pre-touch every alert class so the family renders all series at zero
	// from the first scrape — dashboards and alert rules can rely on the
	// series existing before the first starvation happens.
	for _, kind := range []obs.AlertKind{obs.AlertStarvation, obs.AlertLivelock, obs.AlertFaultBlackhole} {
		m.alerts.With(string(kind)).Add(0)
	}
	return m
}

func (m *metrics) jobSubmitted() { m.submitted.Inc() }

// jobFinished records a terminal transition and, for done jobs, the
// execution latency under the job's type.
func (m *metrics) jobFinished(jobType string, st State, elapsed time.Duration) {
	m.finished.With(string(st), jobType).Inc()
	// Cache hits finish with zero elapsed time; recording them would fold
	// instant answers into the simulation-latency histogram.
	if st == StateDone && elapsed > 0 {
		m.jobLat.With(jobType).Observe(elapsed.Seconds())
	}
}

// httpObserved records one handler invocation's latency under its route.
func (m *metrics) httpObserved(route string, elapsed time.Duration) {
	m.httpLat.With(route).Observe(elapsed.Seconds())
}

// watchdogAlert counts one alert under its classification.
func (m *metrics) watchdogAlert(kind obs.AlertKind) {
	m.alerts.With(string(kind)).Inc()
}
