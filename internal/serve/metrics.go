package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mlnoc/internal/stats"
)

// metrics aggregates the daemon's counters and latency histograms for the
// text /metrics endpoint. Job latency is histogrammed per job type and HTTP
// latency per route, both in milliseconds via internal/stats (20ms bins up
// to ~20s for jobs, 1ms bins up to 1s for handlers; quantiles interpolate
// into the overflow region toward the exact max, so slow outliers are still
// reported faithfully).
type metrics struct {
	mu        sync.Mutex
	submitted int64
	done      int64
	failed    int64
	cancelled int64
	jobLat    map[string]*stats.Histogram
	httpLat   map[string]*stats.Histogram
}

func newMetrics() *metrics {
	return &metrics{
		jobLat:  make(map[string]*stats.Histogram),
		httpLat: make(map[string]*stats.Histogram),
	}
}

func (m *metrics) jobSubmitted() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

// jobFinished records a terminal transition and, for done jobs, the
// execution latency under the job's type.
func (m *metrics) jobFinished(jobType string, st State, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch st {
	case StateDone:
		m.done++
		// Cache hits finish with zero elapsed time; recording them would
		// fold instant answers into the simulation-latency histogram.
		if elapsed > 0 {
			h := m.jobLat[jobType]
			if h == nil {
				h = stats.NewHistogram(20, 1024) // 20ms bins
				m.jobLat[jobType] = h
			}
			h.Add(float64(elapsed.Milliseconds()))
		}
	case StateFailed:
		m.failed++
	case StateCancelled:
		m.cancelled++
	}
}

// httpObserved records one handler invocation's latency under its route.
func (m *metrics) httpObserved(route string, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.httpLat[route]
	if h == nil {
		h = stats.NewHistogram(1, 1024) // 1ms bins
		m.httpLat[route] = h
	}
	h.Add(float64(elapsed.Milliseconds()))
}

// gauges are the point-in-time values the server folds into a render.
type gauges struct {
	queued      int
	running     int
	workers     int
	cacheHits   int64
	cacheMisses int64
	cacheSize   int
	draining    bool
}

// render emits the metrics document: one "key value" per line, histograms as
// "key summary...", keys sorted within each block so scrapes are diffable.
func (m *metrics) render(g gauges) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	draining := 0
	if g.draining {
		draining = 1
	}
	fmt.Fprintf(&b, "jobs_submitted %d\n", m.submitted)
	fmt.Fprintf(&b, "jobs_queued %d\n", g.queued)
	fmt.Fprintf(&b, "jobs_running %d\n", g.running)
	fmt.Fprintf(&b, "jobs_done %d\n", m.done)
	fmt.Fprintf(&b, "jobs_failed %d\n", m.failed)
	fmt.Fprintf(&b, "jobs_cancelled %d\n", m.cancelled)
	fmt.Fprintf(&b, "cache_hits %d\n", g.cacheHits)
	fmt.Fprintf(&b, "cache_misses %d\n", g.cacheMisses)
	fmt.Fprintf(&b, "cache_entries %d\n", g.cacheSize)
	fmt.Fprintf(&b, "workers %d\n", g.workers)
	fmt.Fprintf(&b, "workers_busy %d\n", g.running)
	fmt.Fprintf(&b, "draining %d\n", draining)
	for _, key := range sortedKeys(m.jobLat) {
		fmt.Fprintf(&b, "job_latency_ms{type=%s} %s\n", key, m.jobLat[key].Summary())
	}
	for _, key := range sortedKeys(m.httpLat) {
		fmt.Fprintf(&b, "http_latency_ms{route=%s} %s\n", key, m.httpLat[key].Summary())
	}
	return b.String()
}

func sortedKeys(m map[string]*stats.Histogram) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
