package serve

import (
	"encoding/json"
	"strings"
	"testing"
)

func mustParse(t *testing.T, js string) *Spec {
	t.Helper()
	spec, err := ParseSpec([]byte(js))
	if err != nil {
		t.Fatalf("ParseSpec(%s): %v", js, err)
	}
	return spec
}

// Reordering JSON keys spells the same job, so it must produce the same hash.
func TestHashIgnoresKeyOrder(t *testing.T) {
	a := mustParse(t, `{"type":"sweep","seed":7,"sweep":{"experiment":"exec","train_nn":true},"scale":{"preset":"quick","op_scale":0.5}}`)
	b := mustParse(t, `{"scale":{"op_scale":0.5,"preset":"quick"},"sweep":{"train_nn":true,"experiment":"exec"},"seed":7,"type":"sweep"}`)
	if a.Hash() != b.Hash() {
		t.Fatalf("reordered keys changed hash:\n%s\n%s", a.Hash(), b.Hash())
	}
}

// Spelling a default explicitly is the same job as omitting it.
func TestHashDefaultVsExplicit(t *testing.T) {
	cases := []struct{ name, implicit, explicit string }{
		{"quant defaults", `{"type":"quant"}`,
			`{"type":"quant","seed":1,"quant":{"size":4},"scale":{"preset":"quick"}}`},
		{"fault default rates", `{"type":"fault"}`,
			`{"type":"fault","fault":{}}`},
		{"sweep default seed", `{"type":"sweep","sweep":{"experiment":"mix"}}`,
			`{"type":"sweep","seed":1,"sweep":{"experiment":"mix","train_nn":false}}`},
		{"scale knob equal to preset", `{"type":"train"}`,
			`{"type":"train","scale":{"preset":"quick","op_scale":0.25}}`},
	}
	for _, tc := range cases {
		a, b := mustParse(t, tc.implicit), mustParse(t, tc.explicit)
		if a.Hash() != b.Hash() {
			t.Errorf("%s: explicit defaults changed hash:\n%s\n%s", tc.name, a.Hash(), b.Hash())
		}
	}
}

// Priority is scheduling metadata, not part of what the job computes.
func TestHashIgnoresPriority(t *testing.T) {
	a := mustParse(t, `{"type":"quant","priority":0}`)
	b := mustParse(t, `{"type":"quant","priority":9}`)
	if a.Hash() != b.Hash() {
		t.Fatal("priority changed the job hash")
	}
}

// A mesh job's shard count is an execution knob like priority: the sharded
// engine is bit-identical to the sequential one and the result payload holds
// only shard-invariant fields, so shard count must not change the hash —
// while sizes and topology, which do change the outcome, must.
func TestMeshHashSemantics(t *testing.T) {
	a := mustParse(t, `{"type":"mesh","mesh":{"sizes":[8,16],"shards":1}}`)
	b := mustParse(t, `{"type":"mesh","mesh":{"sizes":[8,16],"shards":8}}`)
	if a.Hash() != b.Hash() {
		t.Fatal("shard count changed the mesh job hash")
	}
	implicit := mustParse(t, `{"type":"mesh"}`)
	explicit := mustParse(t, `{"type":"mesh","mesh":{"sizes":[8,16,32],"shards":4}}`)
	if implicit.Hash() != explicit.Hash() {
		t.Fatal("explicit default sizes changed the mesh job hash")
	}
	for _, js := range []string{
		`{"type":"mesh","mesh":{"sizes":[8,16],"torus":true}}`,
		`{"type":"mesh","mesh":{"sizes":[8]}}`,
		`{"type":"mesh","seed":2,"mesh":{"sizes":[8,16]}}`,
	} {
		if mustParse(t, js).Hash() == a.Hash() {
			t.Errorf("%s hashes identically to the base mesh job", js)
		}
	}
}

// Adding the mesh job type must not perturb the canonical bytes of
// pre-existing job types — the canonical form only gains an omitempty field —
// so every cache entry minted before it stays addressable.
func TestMeshFieldAbsentFromOtherCanonicalForms(t *testing.T) {
	for _, js := range []string{`{"type":"quant"}`, `{"type":"fault"}`, `{"type":"train"}`} {
		spec := mustParse(t, js)
		c := canonicalJob{
			Engine: EngineVersion,
			Schema: SchemaVersion,
			Type:   spec.Type,
			Seed:   spec.EffectiveSeed(),
			Scale:  spec.ResolveScale(),
		}
		buf, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(buf), "mesh") {
			t.Fatalf("canonical form of %s grew a mesh key: %s", js, buf)
		}
	}
}

// Anything that changes what the simulation computes must change the hash.
func TestHashDiffersOnParameters(t *testing.T) {
	base := mustParse(t, `{"type":"sweep","seed":1,"sweep":{"experiment":"exec"}}`)
	variants := []string{
		`{"type":"sweep","seed":2,"sweep":{"experiment":"exec"}}`,
		`{"type":"sweep","seed":1,"sweep":{"experiment":"mix"}}`,
		`{"type":"sweep","seed":1,"sweep":{"experiment":"exec","train_nn":true}}`,
		`{"type":"sweep","seed":1,"sweep":{"experiment":"exec"},"scale":{"preset":"full"}}`,
		`{"type":"sweep","seed":1,"sweep":{"experiment":"exec"},"scale":{"op_scale":0.5}}`,
	}
	seen := map[string]string{base.Hash(): "base"}
	for _, js := range variants {
		h := mustParse(t, js).Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("%s hashes identically to %s", js, prev)
		}
		seen[h] = js
	}
}

// A version bump invalidates every existing cache key.
func TestHashDiffersOnVersions(t *testing.T) {
	spec := mustParse(t, `{"type":"quant"}`)
	if spec.hashWith("mlnoc-engine/next", SchemaVersion) == spec.Hash() {
		t.Error("engine version bump did not change hash")
	}
	if spec.hashWith(EngineVersion, SchemaVersion+1) == spec.Hash() {
		t.Error("schema version bump did not change hash")
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct{ js, want string }{
		{`{"type":"bake"}`, `type must be one of`},
		{`{"type":"sweep"}`, `need a "sweep" section`},
		{`{"type":"sweep","sweep":{"experiment":"exec"},"sed":3}`, `unknown field`},
		{`{"type":"sweep","sweep":{"experiment":"exec"},"seed":-1}`, `seed must be >= 0, got -1`},
		{`{"type":"sweep","sweep":{"experiment":"warp"}}`, `sweep.experiment must be one of`},
		{`{"type":"fault","fault":{"rates":[0.5,1.5]}}`, `fault.rates[1] must be in [0,1], got 1.5`},
		{`{"type":"quant","quant":{"size":1}}`, `quant.size must be >= 2, got 1`},
		{`{"type":"train","scale":{"preset":"huge"}}`, `scale.preset must be one of`},
		{`{"type":"mesh","mesh":{"sizes":[1]}}`, `mesh.sizes[0] must be >= 2, got 1`},
		{`{"type":"mesh","mesh":{"sizes":[2],"torus":true}}`, `mesh.sizes[0] must be >= 3, got 2`},
		{`{"type":"mesh","mesh":{"shards":-1}}`, `mesh.shards must be >= 0, got -1`},
		{`{"type":"train","scale":{"op_scale":-0.5}}`, `scale.op_scale must be positive`},
	}
	for _, tc := range cases {
		_, err := ParseSpec([]byte(tc.js))
		if err == nil {
			t.Errorf("ParseSpec(%s) accepted an invalid spec", tc.js)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseSpec(%s) error %q does not contain %q", tc.js, err, tc.want)
		}
	}
}

// The resolved scale is what both the hash and the runner see, so overrides
// must land and the seed must come along.
func TestResolveScale(t *testing.T) {
	spec := mustParse(t, `{"type":"train","seed":9,"scale":{"preset":"full","train_cycles":123}}`)
	sc := spec.ResolveScale()
	if sc.TrainCycles != 123 {
		t.Errorf("TrainCycles = %d, want override 123", sc.TrainCycles)
	}
	if sc.Seed != 9 {
		t.Errorf("Seed = %d, want 9", sc.Seed)
	}
}
