package serve

import (
	"bytes"
	"context"
	"testing"
	"time"

	"mlnoc/internal/experiments"
	"mlnoc/internal/obs"
	"mlnoc/internal/telemetry"
)

// TestInstrumentedRunBitIdentity pins the observability contract: telemetry
// is passive. A run under full instrumentation — progress callbacks, an obs
// registry with snapshot hooks, a watchdog, and metrics counters firing —
// must produce a payload byte-identical to a bare run of the same spec.
// This is also what makes the result cache sound: a cached payload produced
// by an instrumented daemon is exactly what an uninstrumented rerun would
// compute.
func TestInstrumentedRunBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (tiny) simulation sweep twice")
	}
	spec, err := ParseSpec([]byte(`{"type":"sweep","sweep":{"experiment":"ablation"},` +
		`"scale":{"op_scale":0.1,"warmup_cycles":200,"measure_cycles":400}}`))
	if err != nil {
		t.Fatal(err)
	}

	bare, err := Execute(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	met := newMetrics(reg)
	progress := reg.Counter("test_progress_calls", "").With()
	snapshots := reg.Counter("test_snapshots", "").With()
	obsReg := obs.NewRegistry()
	obsReg.SetOnRecord(func(string, *obs.Snapshot) { snapshots.Inc() })
	tel := &experiments.Telemetry{
		Progress: func(done, total int, label string) { progress.Inc() },
		Registry: obsReg,
		Watchdog: &obs.WatchdogConfig{
			MaxHeadAge:     10_000,
			LivelockWindow: 10_000,
			CheckEvery:     64,
			OnAlert:        func(a obs.Alert) { met.watchdogAlert(a.Kind) },
		},
	}
	start := time.Now()
	instrumented, err := Execute(context.Background(), spec, tel)
	if err != nil {
		t.Fatal(err)
	}
	met.jobFinished(spec.Type, StateDone, time.Since(start))

	if !bytes.Equal(bare, instrumented) {
		t.Fatalf("instrumented payload differs from bare payload:\nbare: %d bytes\ninstrumented: %d bytes",
			len(bare), len(instrumented))
	}
	if progress.Value() == 0 || snapshots.Value() == 0 {
		t.Fatalf("instrumentation did not fire (progress=%d snapshots=%d) — identity check is vacuous",
			progress.Value(), snapshots.Value())
	}
}
