package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mlnoc/internal/telemetry"
)

const specQuant = `{"type":"quant"}`

// postJob submits a spec and returns the response status code and decoded
// status document.
func postJob(t *testing.T, h http.Handler, spec string) (int, StatusDoc) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/jobs", strings.NewReader(spec)))
	var doc StatusDoc
	if rec.Code == http.StatusOK || rec.Code == http.StatusAccepted {
		if err := json.NewDecoder(rec.Body).Decode(&doc); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return rec.Code, doc
}

func get(h http.Handler, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, job *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if job.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", job.ID, job.State(), want)
}

// countingRunner returns a deterministic payload derived from the spec and
// counts invocations.
func countingRunner(runs *atomic.Int64) runFunc {
	return func(_ context.Context, job *Job) ([]byte, error) {
		runs.Add(1)
		return json.Marshal(map[string]any{"hash": job.Hash, "seed": job.Spec.EffectiveSeed()})
	}
}

// blockingRunner blocks each job until release is closed (or its context is
// cancelled), recording execution order.
type blockingRunner struct {
	mu      sync.Mutex
	order   []string
	started chan string
	release chan struct{}
}

func newBlockingRunner() *blockingRunner {
	return &blockingRunner{started: make(chan string, 64), release: make(chan struct{})}
}

func (b *blockingRunner) run(ctx context.Context, job *Job) ([]byte, error) {
	b.mu.Lock()
	b.order = append(b.order, job.ID)
	b.mu.Unlock()
	b.started <- job.ID
	select {
	case <-b.release:
		return []byte(`{"ok":true}`), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (b *blockingRunner) ran() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.order...)
}

// The tentpole cache property: submitting the same deterministic job twice
// returns the second instantly from cache, with a byte-identical payload.
func TestCacheHitByteIdentical(t *testing.T) {
	var runs atomic.Int64
	s := New(Config{Workers: 1, Runner: countingRunner(&runs)})
	defer s.Drain()
	h := s.Handler()

	code, doc := postJob(t, h, specQuant)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: code %d, want 202", code)
	}
	if doc.Cached {
		t.Fatal("first submit claims cached")
	}
	waitState(t, s.lookup(doc.ID), StateDone)
	first := get(h, "/jobs/"+doc.ID+"/result")

	code2, doc2 := postJob(t, h, specQuant)
	if code2 != http.StatusOK {
		t.Fatalf("second submit: code %d, want 200 (cached)", code2)
	}
	if !doc2.Cached {
		t.Fatal("second submit of identical job was not served from cache")
	}
	if doc2.Hash != doc.Hash {
		t.Fatalf("hash mismatch: %s vs %s", doc2.Hash, doc.Hash)
	}
	second := get(h, "/jobs/"+doc2.ID+"/result")
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatalf("cached payload not byte-identical:\n%s\n%s", first.Body, second.Body)
	}
	if runs.Load() != 1 {
		t.Fatalf("runner invoked %d times, want 1", runs.Load())
	}
}

// A different seed is a different job: it must re-execute, not hit the cache.
func TestDifferentSeedReexecutes(t *testing.T) {
	var runs atomic.Int64
	s := New(Config{Workers: 1, Runner: countingRunner(&runs)})
	defer s.Drain()
	h := s.Handler()

	_, doc1 := postJob(t, h, `{"type":"quant","seed":1}`)
	waitState(t, s.lookup(doc1.ID), StateDone)
	code, doc2 := postJob(t, h, `{"type":"quant","seed":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("different-seed submit: code %d, want 202 (fresh run)", code)
	}
	if doc2.Cached {
		t.Fatal("different seed was served from cache")
	}
	waitState(t, s.lookup(doc2.ID), StateDone)
	if runs.Load() != 2 {
		t.Fatalf("runner invoked %d times, want 2", runs.Load())
	}
	if doc1.Hash == doc2.Hash {
		t.Fatal("different seeds produced the same hash")
	}
}

// With N workers, at most N jobs run simultaneously regardless of the number
// submitted.
func TestConcurrencyBoundedByWorkers(t *testing.T) {
	const workers = 2
	br := newBlockingRunner()
	s := New(Config{Workers: workers, QueueDepth: 16, Runner: br.run})
	h := s.Handler()

	var docs []StatusDoc
	for seed := 1; seed <= 5; seed++ {
		code, doc := postJob(t, h, fmt.Sprintf(`{"type":"quant","seed":%d}`, seed))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: code %d", seed, code)
		}
		docs = append(docs, doc)
	}
	// Exactly `workers` jobs start; the rest stay queued.
	for i := 0; i < workers; i++ {
		<-br.started
	}
	// Give a third job every chance to (incorrectly) start.
	time.Sleep(50 * time.Millisecond)
	if busy := s.pool.Busy(); busy != workers {
		t.Fatalf("%d jobs running, want exactly %d", busy, workers)
	}
	select {
	case id := <-br.started:
		t.Fatalf("job %s started beyond the worker bound", id)
	default:
	}
	close(br.release)
	for _, d := range docs {
		waitState(t, s.lookup(d.ID), StateDone)
	}
	s.Drain()
}

// Higher-priority jobs jump the queue; equal priorities stay FIFO.
func TestPriorityOrdering(t *testing.T) {
	br := newBlockingRunner()
	s := New(Config{Workers: 1, QueueDepth: 16, Runner: br.run})
	h := s.Handler()

	_, gate := postJob(t, h, `{"type":"quant","seed":10}`) // occupies the worker
	<-br.started
	_, low1 := postJob(t, h, `{"type":"quant","seed":11}`)
	_, low2 := postJob(t, h, `{"type":"quant","seed":12}`)
	_, high := postJob(t, h, `{"type":"quant","seed":13,"priority":5}`)
	close(br.release)
	for _, d := range []StatusDoc{gate, low1, low2, high} {
		waitState(t, s.lookup(d.ID), StateDone)
	}
	want := []string{gate.ID, high.ID, low1.ID, low2.ID}
	got := br.ran()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("execution order %v, want %v", got, want)
	}
	s.Drain()
}

// Drain finishes running jobs, cancels queued ones, and rejects new
// submissions with 503.
func TestDrainGraceful(t *testing.T) {
	br := newBlockingRunner()
	s := New(Config{Workers: 1, QueueDepth: 16, Runner: br.run})
	h := s.Handler()

	_, running := postJob(t, h, `{"type":"quant","seed":1}`)
	<-br.started
	_, queued := postJob(t, h, `{"type":"quant","seed":2}`)

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	// Draining flips immediately; new submissions bounce even while the
	// running job is still going.
	deadline := time.Now().Add(2 * time.Second)
	for !s.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if code, _ := postJob(t, h, `{"type":"quant","seed":3}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: code %d, want 503", code)
	}
	if rec := get(h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: code %d, want 503", rec.Code)
	}
	close(br.release)
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after the running job finished")
	}
	if st := s.lookup(running.ID).State(); st != StateDone {
		t.Errorf("running job ended %s, want done (drain must not kill it)", st)
	}
	if st := s.lookup(queued.ID).State(); st != StateCancelled {
		t.Errorf("queued job ended %s, want cancelled", st)
	}
}

// A full queue rejects submissions instead of growing without bound.
func TestQueueFullRejects(t *testing.T) {
	br := newBlockingRunner()
	s := New(Config{Workers: 1, QueueDepth: 1, Runner: br.run})
	h := s.Handler()

	postJob(t, h, `{"type":"quant","seed":1}`) // running
	<-br.started
	postJob(t, h, `{"type":"quant","seed":2}`) // queued (fills the queue)
	code, _ := postJob(t, h, `{"type":"quant","seed":3}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit to full queue: code %d, want 503", code)
	}
	close(br.release)
	s.Drain()
}

// Cancelling a queued job finalizes it without ever running it.
func TestCancelQueuedJob(t *testing.T) {
	br := newBlockingRunner()
	s := New(Config{Workers: 1, QueueDepth: 16, Runner: br.run})
	h := s.Handler()

	_, running := postJob(t, h, `{"type":"quant","seed":1}`)
	<-br.started
	_, queued := postJob(t, h, `{"type":"quant","seed":2}`)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/jobs/"+queued.ID+"/cancel", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel: code %d", rec.Code)
	}
	if st := s.lookup(queued.ID).State(); st != StateCancelled {
		t.Fatalf("cancelled queued job is %s", st)
	}
	close(br.release)
	waitState(t, s.lookup(running.ID), StateDone)
	for _, id := range br.ran() {
		if id == queued.ID {
			t.Fatal("cancelled job was executed anyway")
		}
	}
	s.Drain()
}

// Cancelling a running job cancels its context; the pool finalizes it as
// cancelled, not failed.
func TestCancelRunningJob(t *testing.T) {
	br := newBlockingRunner()
	s := New(Config{Workers: 1, Runner: br.run})
	h := s.Handler()

	_, doc := postJob(t, h, specQuant)
	<-br.started
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/jobs/"+doc.ID+"/cancel", nil))
	waitState(t, s.lookup(doc.ID), StateCancelled)
	s.Drain()
}

// A panicking job becomes a failed job with the panic in its error; the
// daemon survives.
func TestJobPanicCaptured(t *testing.T) {
	s := New(Config{Workers: 1, Runner: func(context.Context, *Job) ([]byte, error) {
		panic("router exploded")
	}})
	defer s.Drain()
	h := s.Handler()

	_, doc := postJob(t, h, specQuant)
	waitState(t, s.lookup(doc.ID), StateFailed)
	st := s.lookup(doc.ID).Status()
	if !strings.Contains(st.Error, "router exploded") {
		t.Fatalf("panic not captured in job error: %q", st.Error)
	}
	rec := get(h, "/jobs/"+doc.ID+"/result")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("result of failed job: code %d, want 500", rec.Code)
	}
	// The daemon still serves.
	if rec := get(h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz after panic: code %d", rec.Code)
	}
}

// /readyz flips unhealthy while a running job has watchdog alerts and
// recovers once the job finishes.
func TestReadyzFlipsOnWatchdogAlert(t *testing.T) {
	br := newBlockingRunner()
	s := New(Config{Workers: 1, Runner: func(ctx context.Context, job *Job) ([]byte, error) {
		job.addAlert("cycle 512: livelock: no deliveries for 512 cycles with 9 messages in flight")
		return br.run(ctx, job)
	}})
	h := s.Handler()

	if rec := get(h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("/readyz idle: code %d, want 200", rec.Code)
	}
	_, doc := postJob(t, h, specQuant)
	<-br.started
	rec := get(h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with alerting job: code %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "livelock") {
		t.Fatalf("/readyz body does not name the alert: %s", rec.Body)
	}
	close(br.release)
	waitState(t, s.lookup(doc.ID), StateDone)
	if rec := get(h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("/readyz after job finished: code %d, want 200", rec.Code)
	}
	s.Drain()
}

// The SSE stream carries the status replay, progress events, and the
// terminal status, then ends.
func TestStreamEvents(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1, Runner: func(_ context.Context, job *Job) ([]byte, error) {
		<-release
		job.setProgress(1, 2, "cell-a")
		job.setProgress(2, 2, "cell-b")
		return []byte(`{}`), nil
	}})
	defer s.Drain()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	_, doc := postJob(t, s.Handler(), specQuant)
	resp, err := http.Get(srv.URL + "/jobs/" + doc.ID + "/stream")
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer resp.Body.Close()
	close(release)

	kinds := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			kinds[name]++
		}
	}
	if kinds["status"] < 2 { // replay on connect + terminal transition
		t.Errorf("saw %d status events, want >= 2", kinds["status"])
	}
	if kinds["progress"] != 2 {
		t.Errorf("saw %d progress events, want 2", kinds["progress"])
	}
}

// /metrics exposes the counters the smoke test greps for.
func TestMetricsRender(t *testing.T) {
	var runs atomic.Int64
	s := New(Config{Workers: 1, Runner: countingRunner(&runs)})
	defer s.Drain()
	h := s.Handler()

	_, doc := postJob(t, h, specQuant)
	waitState(t, s.lookup(doc.ID), StateDone)
	postJob(t, h, specQuant) // cache hit

	body := get(h, "/metrics").Body.String()
	for _, want := range []string{
		"mlnoc_jobs_submitted_total 2",
		`mlnoc_jobs_finished_total{state="done",type="quant"} 2`,
		"mlnoc_cache_hits_total 1", "mlnoc_cache_misses_total 1",
		"mlnoc_cache_evictions_total 0", "mlnoc_cache_spills_total 0",
		"mlnoc_pool_workers 1", "mlnoc_draining 0",
		`mlnoc_job_latency_seconds_count{type="quant"} 1`,
		`mlnoc_http_request_duration_seconds_count{route="submit"} 2`,
		`mlnoc_watchdog_alerts_total{kind="starvation"} 0`,
		`mlnoc_watchdog_alerts_total{kind="livelock"} 0`,
		`mlnoc_watchdog_alerts_total{kind="fault-blackhole"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	// The document must be valid exposition text per the strict parser.
	if err := telemetry.Lint(body); err != nil {
		t.Errorf("/metrics does not lint: %v", err)
	}
}

// TestDashboardServed pins that the dashboard is a self-contained HTML
// document referencing the live endpoints it polls.
func TestDashboardServed(t *testing.T) {
	var runs atomic.Int64
	s := New(Config{Workers: 1, Runner: countingRunner(&runs)})
	defer s.Drain()
	rec := get(s.Handler(), "/dashboard")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /dashboard = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("dashboard Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{"<!DOCTYPE html>", "mlnoc_queue_depth", "EventSource"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}

// TestCorrelationID pins the corr-id thread: header in, status doc out, and
// a minted default when the client sends none.
func TestCorrelationID(t *testing.T) {
	var runs atomic.Int64
	s := New(Config{Workers: 1, Runner: countingRunner(&runs)})
	defer s.Drain()
	h := s.Handler()

	req := httptest.NewRequest("POST", "/jobs", strings.NewReader(specQuant))
	req.Header.Set("X-Correlation-ID", "trace-abc123")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var doc StatusDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.CorrID != "trace-abc123" {
		t.Fatalf("corr_id = %q, want header value", doc.CorrID)
	}
	waitState(t, s.lookup(doc.ID), StateDone)

	// No header: one is minted from the job ID and hash prefix.
	_, doc2 := postJob(t, h, specQuant)
	if doc2.CorrID == "" || !strings.HasPrefix(doc2.CorrID, doc2.ID+"-") {
		t.Fatalf("minted corr_id = %q, want %s-<hash>", doc2.CorrID, doc2.ID)
	}
}

// A disk spill directory survives a daemon restart: the second daemon serves
// the first daemon's results from disk.
func TestCacheDiskSpillAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64

	s1 := New(Config{Workers: 1, CacheDir: dir, Runner: countingRunner(&runs)})
	_, doc := postJob(t, s1.Handler(), specQuant)
	waitState(t, s1.lookup(doc.ID), StateDone)
	first := get(s1.Handler(), "/jobs/"+doc.ID+"/result").Body.Bytes()
	s1.Drain()

	s2 := New(Config{Workers: 1, CacheDir: dir, Runner: countingRunner(&runs)})
	defer s2.Drain()
	code, doc2 := postJob(t, s2.Handler(), specQuant)
	if code != http.StatusOK || !doc2.Cached {
		t.Fatalf("restarted daemon missed the disk cache (code %d, cached %v)", code, doc2.Cached)
	}
	second := get(s2.Handler(), "/jobs/"+doc2.ID+"/result").Body.Bytes()
	if !bytes.Equal(first, second) {
		t.Fatal("disk-spilled payload not byte-identical")
	}
	if runs.Load() != 1 {
		t.Fatalf("runner invoked %d times across restart, want 1", runs.Load())
	}
}

// End-to-end over the real engine: a tiny ablation sweep through Execute,
// twice, must cache-hit with byte-identical output. This is the in-process
// version of the CI smoke test.
func TestEndToEndTinySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (tiny) simulation sweep")
	}
	s := New(Config{Workers: 1})
	defer s.Drain()
	h := s.Handler()

	spec := `{"type":"sweep","sweep":{"experiment":"ablation"},"scale":{"op_scale":0.1,"warmup_cycles":200,"measure_cycles":400}}`
	code, doc := postJob(t, h, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	waitState(t, s.lookup(doc.ID), StateDone)
	first := get(h, "/jobs/"+doc.ID+"/result")

	var res resultDoc
	if err := json.Unmarshal(first.Body.Bytes(), &res); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if res.Rendered == "" || res.CSV["ablation.csv"] == "" {
		t.Fatal("result payload missing rendered table or CSV")
	}

	code2, doc2 := postJob(t, h, spec)
	if code2 != http.StatusOK || !doc2.Cached {
		t.Fatalf("second identical sweep not cached (code %d)", code2)
	}
	second := get(h, "/jobs/"+doc2.ID+"/result")
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("real sweep results not byte-identical across cache hit")
	}
}
