package serve

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// runFunc executes one claimed job and returns its result payload. The
// context is cancelled when the job or the whole pool is cancelled.
type runFunc func(ctx context.Context, job *Job) ([]byte, error)

// pool is the bounded worker pool: exactly `workers` goroutines pull jobs off
// the queue, so at most that many simulations run simultaneously no matter
// how many jobs are submitted. Each job runs under its own child context
// (per-job cancellation), with panic capture in the spirit of the sweep
// runner's CellPanic — a crashing job becomes a failed job with a stack
// trace, never a crashed daemon.
type pool struct {
	q       *queue
	run     runFunc
	done    func(*Job) // invoked after each job the pool finalizes (may be nil)
	workers int
	busy    atomic.Int64
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// startPool launches the workers.
func startPool(q *queue, workers int, run runFunc, done func(*Job)) *pool {
	p := &pool{q: q, run: run, done: done, workers: workers}
	p.ctx, p.cancel = context.WithCancel(context.Background())
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.work()
		}()
	}
	return p
}

// Busy returns how many workers are executing a job right now.
func (p *pool) Busy() int { return int(p.busy.Load()) }

// Drain performs the graceful half of shutdown: close the queue (returning
// the jobs that never started, which the caller marks cancelled) and wait
// for running jobs to finish. It does not cancel running work.
func (p *pool) Drain() []*Job {
	rest := p.q.Close()
	p.wg.Wait()
	return rest
}

// Kill cancels running jobs' contexts and then drains. Used for hard
// shutdown (second signal).
func (p *pool) Kill() []*Job {
	p.cancel()
	return p.Drain()
}

func (p *pool) work() {
	for {
		job := p.q.Pop()
		if job == nil {
			return
		}
		p.execute(job)
	}
}

// execute runs one job start-to-finish.
func (p *pool) execute(job *Job) {
	ctx, cancel := context.WithCancel(p.ctx)
	defer cancel()
	if !job.start(cancel, time.Now()) {
		return // cancelled while queued
	}
	p.busy.Add(1)
	defer p.busy.Add(-1)

	payload, err := p.runSafely(ctx, job)
	now := time.Now()
	switch {
	case err == nil:
		job.finish(StateDone, payload, "", now)
	case ctx.Err() != nil:
		job.finish(StateCancelled, nil, err.Error(), now)
	default:
		job.finish(StateFailed, nil, err.Error(), now)
	}
	if p.done != nil {
		p.done(job)
	}
}

// runSafely invokes the runner with panic capture: the panic value and stack
// become the job's error, mirroring experiments.CellPanic.
func (p *pool) runSafely(ctx context.Context, job *Job) (payload []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job %s panicked: %v\n%s", job.ID, r, debug.Stack())
		}
	}()
	return p.run(ctx, job)
}
