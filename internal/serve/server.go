package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mlnoc/internal/experiments"
	"mlnoc/internal/obs"
)

// Config parameterizes a Server. The zero value is usable: every field has a
// sensible default.
type Config struct {
	// Workers bounds how many jobs run simultaneously (default NumCPU).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs; a full
	// queue rejects submissions with 503 (default 64).
	QueueDepth int
	// CacheEntries bounds the in-memory result cache (default 128).
	CacheEntries int
	// CacheDir, when non-empty, spills every result to <dir>/<hash>.json and
	// serves cache misses from it.
	CacheDir string
	// Watchdog, when non-nil, attaches a starvation/livelock watchdog to
	// every job's cells; its alerts flip /readyz unready while the job runs.
	Watchdog *obs.WatchdogConfig
	// Runner overrides the job executor (tests). Nil means Execute.
	Runner runFunc
}

// Server is the simulation-as-a-service daemon core: the job registry, the
// worker pool, the result cache and the HTTP handlers. Create with New, serve
// Handler(), shut down with Drain (graceful) or Kill (hard).
type Server struct {
	cfg      Config
	q        *queue
	pool     *pool
	cache    *cache
	met      *metrics
	draining atomic.Bool

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int
}

// New builds a Server and starts its workers.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 128
	}
	s := &Server{
		cfg:   cfg,
		q:     newQueue(cfg.QueueDepth),
		cache: newCache(cfg.CacheEntries, cfg.CacheDir),
		met:   newMetrics(),
		jobs:  make(map[string]*Job),
	}
	run := cfg.Runner
	if run == nil {
		run = s.runJob
	}
	// Cache successful payloads before the pool finalizes the job: a client
	// that polls a job to done and instantly resubmits must hit the cache.
	cached := func(ctx context.Context, job *Job) ([]byte, error) {
		payload, err := run(ctx, job)
		if err == nil && ctx.Err() == nil {
			s.cache.Put(job.Hash, payload)
		}
		return payload, err
	}
	s.pool = startPool(s.q, cfg.Workers, cached, s.jobDone)
	return s
}

// runJob is the production runFunc: it wires the job's live telemetry
// (progress, obs snapshots, watchdog alerts) and executes the spec.
func (s *Server) runJob(ctx context.Context, job *Job) ([]byte, error) {
	tel := &experiments.Telemetry{
		Progress: func(done, total int, label string) {
			job.setProgress(done, total, label)
		},
	}
	reg := obs.NewRegistry()
	reg.SetOnRecord(func(name string, snap *obs.Snapshot) {
		job.publish(Event{Kind: "snapshot", Data: snapshotSummary{
			Cell:       name,
			Cycle:      snap.Cycle,
			Injected:   snap.Injected,
			Delivered:  snap.Delivered,
			InFlight:   snap.InFlight,
			LatencyP50: snap.LatencyP50,
			LatencyP99: snap.LatencyP99,
			Alerts:     len(snap.Alerts),
		}})
	})
	tel.Registry = reg
	if s.cfg.Watchdog != nil {
		wd := *s.cfg.Watchdog
		prev := wd.OnAlert
		wd.OnAlert = func(a obs.Alert) {
			if prev != nil {
				prev(a)
			}
			job.addAlert(a.String())
		}
		tel.Watchdog = &wd
	}
	return Execute(ctx, job.Spec, tel)
}

// snapshotSummary is the compact per-cell obs view sent on job streams; the
// full snapshot stays in the per-job registry, the stream is a progress feed.
type snapshotSummary struct {
	Cell       string  `json:"cell"`
	Cycle      int64   `json:"cycle"`
	Injected   int64   `json:"injected"`
	Delivered  int64   `json:"delivered"`
	InFlight   int64   `json:"in_flight"`
	LatencyP50 float64 `json:"latency_p50,omitempty"`
	LatencyP99 float64 `json:"latency_p99,omitempty"`
	Alerts     int     `json:"alerts,omitempty"`
}

// jobDone is the pool's completion hook: it records terminal metrics.
func (s *Server) jobDone(job *Job) {
	s.met.jobFinished(job.Spec.Type, job.State(), job.elapsed())
}

// elapsed is the job's execution time (zero until it finished).
func (j *Job) elapsed() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started.IsZero() || j.finished.IsZero() {
		return 0
	}
	return j.finished.Sub(j.started)
}

// Drain is graceful shutdown: stop accepting jobs, cancel everything still
// queued, and wait for running jobs to finish.
func (s *Server) Drain() {
	if !s.draining.CompareAndSwap(false, true) {
		return
	}
	s.finalizeQueued(s.pool.Drain())
}

// Kill is hard shutdown: like Drain but running jobs' contexts are cancelled
// instead of waited out.
func (s *Server) Kill() {
	if !s.draining.CompareAndSwap(false, true) {
		s.pool.cancel()
		return
	}
	s.finalizeQueued(s.pool.Kill())
}

func (s *Server) finalizeQueued(jobs []*Job) {
	now := time.Now()
	for _, j := range jobs {
		j.finish(StateCancelled, nil, "daemon draining", now)
		s.met.jobFinished(j.Spec.Type, StateCancelled, 0)
	}
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// register mints an ID and adds the job to the registry.
func (s *Server) register(spec *Spec, now time.Time) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	job := newJob(fmt.Sprintf("j%06d", s.nextID), spec, now)
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	return job
}

// lookup returns the job with the given ID.
func (s *Server) lookup(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// snapshotJobs returns all jobs in submission order.
func (s *Server) snapshotJobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Submit runs the full submission flow (validation already done by the
// caller): cache lookup, then enqueue. The error is non-nil only when the
// daemon cannot accept the job (draining or queue full).
func (s *Server) Submit(spec *Spec) (*Job, error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	now := time.Now()
	s.met.jobSubmitted()
	hash := spec.Hash()
	if payload, ok := s.cache.Get(hash); ok {
		job := s.register(spec, now)
		job.completeCached(payload, now)
		s.met.jobFinished(spec.Type, StateDone, 0)
		return job, nil
	}
	job := s.register(spec, now)
	if !s.q.Push(job) {
		job.finish(StateFailed, nil, "queue full", now)
		s.met.jobFinished(spec.Type, StateFailed, 0)
		return nil, errQueueFull
	}
	return job, nil
}

var (
	errDraining  = fmt.Errorf("daemon is draining, not accepting jobs")
	errQueueFull = fmt.Errorf("job queue is full")
)

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.route("submit", s.handleSubmit))
	mux.HandleFunc("GET /jobs", s.route("list", s.handleList))
	mux.HandleFunc("GET /jobs/{id}", s.route("status", s.handleStatus))
	mux.HandleFunc("GET /jobs/{id}/result", s.route("result", s.handleResult))
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream) // long-lived; not latency-tracked
	mux.HandleFunc("POST /jobs/{id}/cancel", s.route("cancel", s.handleCancel))
	mux.HandleFunc("GET /healthz", s.route("healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.route("readyz", s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.route("metrics", s.handleMetrics))
	return mux
}

// route wraps a handler with per-route latency tracking.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		s.met.httpObserved(name, time.Since(start))
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	spec, err := ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	job, err := s.Submit(spec)
	switch {
	case err != nil:
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case job.Cached():
		writeJSON(w, http.StatusOK, job.Status())
	default:
		writeJSON(w, http.StatusAccepted, job.Status())
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.snapshotJobs()
	docs := make([]StatusDoc, len(jobs))
	for i, j := range jobs {
		docs[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, docs)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	st := job.Status()
	switch st.State {
	case StateDone:
		payload, _ := job.Result()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(payload)
	case StateFailed:
		writeError(w, http.StatusInternalServerError, st.Error)
	default:
		writeError(w, http.StatusConflict, fmt.Sprintf("job is %s, not done", st.State))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	was := job.State()
	job.Cancel(time.Now())
	if was == StateQueued && job.State() == StateCancelled {
		s.met.jobFinished(job.Spec.Type, StateCancelled, 0)
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleStream serves the job's live event feed as server-sent events: one
// "status" replay on connect, then progress / snapshot / alert / status
// events until the job reaches a terminal state or the client disconnects.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	// Subscribe before flushing headers: once the client sees a 200 it must
	// not be able to miss events published from that point on.
	events, unsubscribe := job.Subscribe()
	defer unsubscribe()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		select {
		case ev, open := <-events:
			if !open {
				return
			}
			data, err := json.Marshal(ev.Data)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz maps daemon state onto readiness: draining, a saturated
// queue, or a running job whose watchdog has raised alerts (starvation or
// livelock in flight) all report unready.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if s.q.Len() >= s.cfg.QueueDepth {
		writeError(w, http.StatusServiceUnavailable, "queue full")
		return
	}
	for _, j := range s.snapshotJobs() {
		if j.State() != StateRunning {
			continue
		}
		if alerts := j.Alerts(); len(alerts) > 0 {
			writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("job %s watchdog: %s", j.ID, alerts[len(alerts)-1]))
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	hits, misses, entries := s.cache.Stats()
	g := gauges{
		queued:      s.q.Len(),
		running:     s.pool.Busy(),
		workers:     s.cfg.Workers,
		cacheHits:   hits,
		cacheMisses: misses,
		cacheSize:   entries,
		draining:    s.draining.Load(),
	}
	w.Header().Set("Content-Type", "text/plain")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, s.met.render(g))
}
