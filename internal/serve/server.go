package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mlnoc/internal/cliutil"
	"mlnoc/internal/experiments"
	"mlnoc/internal/obs"
	"mlnoc/internal/telemetry"
)

// Config parameterizes a Server. The zero value is usable: every field has a
// sensible default.
type Config struct {
	// Workers bounds how many jobs run simultaneously (default NumCPU).
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs; a full
	// queue rejects submissions with 503 (default 64).
	QueueDepth int
	// CacheEntries bounds the in-memory result cache (default 128).
	CacheEntries int
	// CacheDir, when non-empty, spills every result to <dir>/<hash>.json and
	// serves cache misses from it.
	CacheDir string
	// Watchdog, when non-nil, attaches a starvation/livelock watchdog to
	// every job's cells; its alerts flip /readyz unready while the job runs.
	Watchdog *obs.WatchdogConfig
	// Runner overrides the job executor (tests). Nil means Execute.
	Runner runFunc
	// Logger receives the daemon's structured log stream (submissions, job
	// transitions, watchdog alerts), each record carrying the job's
	// correlation ID. Nil discards.
	Logger *slog.Logger
	// Registry receives the daemon's metrics. Nil means a private registry
	// (tests); simd passes telemetry.Default so sidecar registrations share
	// the exposition.
	Registry *telemetry.Registry
}

// Server is the simulation-as-a-service daemon core: the job registry, the
// worker pool, the result cache and the HTTP handlers. Create with New, serve
// Handler(), shut down with Drain (graceful) or Kill (hard).
type Server struct {
	cfg      Config
	q        *queue
	pool     *pool
	cache    *cache
	met      *metrics
	log      *slog.Logger
	draining atomic.Bool

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int
}

// New builds a Server and starts its workers.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 128
	}
	if cfg.Logger == nil {
		cfg.Logger = cliutil.Discard()
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	s := &Server{
		cfg:   cfg,
		q:     newQueue(cfg.QueueDepth),
		cache: newCache(cfg.CacheEntries, cfg.CacheDir),
		met:   newMetrics(cfg.Registry),
		log:   cfg.Logger,
		jobs:  make(map[string]*Job),
	}
	s.registerLiveMetrics(cfg.Registry)
	run := cfg.Runner
	if run == nil {
		run = s.runJob
	}
	// Cache successful payloads before the pool finalizes the job: a client
	// that polls a job to done and instantly resubmits must hit the cache.
	cached := func(ctx context.Context, job *Job) ([]byte, error) {
		payload, err := run(ctx, job)
		if err == nil && ctx.Err() == nil {
			s.cache.Put(job.Hash, payload)
		}
		return payload, err
	}
	s.pool = startPool(s.q, cfg.Workers, cached, s.jobDone)
	return s
}

// registerLiveMetrics binds the daemon's point-in-time signals as callback
// families: a scrape reads the queue, pool and cache directly instead of
// relying on pushed gauge updates that could go stale.
func (s *Server) registerLiveMetrics(reg *telemetry.Registry) {
	reg.GaugeFunc("mlnoc_queue_depth", "jobs queued but not yet claimed by a worker",
		func() float64 { return float64(s.q.Len()) })
	reg.GaugeFunc("mlnoc_pool_busy", "workers executing a job right now",
		func() float64 { return float64(s.pool.Busy()) })
	reg.GaugeFunc("mlnoc_pool_workers", "configured worker-pool size",
		func() float64 { return float64(s.cfg.Workers) })
	reg.GaugeFunc("mlnoc_draining", "1 while graceful shutdown is in progress",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("mlnoc_cache_entries", "result-cache entries resident in memory",
		func() float64 { _, _, n := s.cache.Stats(); return float64(n) })
	reg.CounterFunc("mlnoc_cache_hits", "result-cache hits (memory or spill dir)",
		func() uint64 { h, _, _, _ := s.cache.Counters(); return uint64(h) })
	reg.CounterFunc("mlnoc_cache_misses", "result-cache misses",
		func() uint64 { _, m, _, _ := s.cache.Counters(); return uint64(m) })
	reg.CounterFunc("mlnoc_cache_evictions", "result-cache in-memory LRU evictions",
		func() uint64 { _, _, e, _ := s.cache.Counters(); return uint64(e) })
	reg.CounterFunc("mlnoc_cache_spills", "result payloads written through to the spill directory",
		func() uint64 { _, _, _, sp := s.cache.Counters(); return uint64(sp) })
}

// Registry returns the registry the daemon reports into (the /metrics
// document source).
func (s *Server) Registry() *telemetry.Registry { return s.cfg.Registry }

// runJob is the production runFunc: it wires the job's live telemetry
// (progress, obs snapshots, watchdog alerts) and executes the spec.
func (s *Server) runJob(ctx context.Context, job *Job) ([]byte, error) {
	s.log.Info("job started", "corr_id", job.CorrID, "id", job.ID, "type", job.Spec.Type)
	tel := &experiments.Telemetry{
		Progress: func(done, total int, label string) {
			job.setProgress(done, total, label)
		},
	}
	reg := obs.NewRegistry()
	reg.SetOnRecord(func(name string, snap *obs.Snapshot) {
		job.publish(Event{Kind: "snapshot", Data: snapshotSummary{
			Cell:       name,
			Cycle:      snap.Cycle,
			Injected:   snap.Injected,
			Delivered:  snap.Delivered,
			InFlight:   snap.InFlight,
			LatencyP50: snap.LatencyP50,
			LatencyP99: snap.LatencyP99,
			Alerts:     len(snap.Alerts),
		}})
	})
	tel.Registry = reg
	if s.cfg.Watchdog != nil {
		wd := *s.cfg.Watchdog
		prev := wd.OnAlert
		wd.OnAlert = func(a obs.Alert) {
			if prev != nil {
				prev(a)
			}
			s.met.watchdogAlert(a.Kind)
			s.log.Warn("watchdog alert", "corr_id", job.CorrID, "id", job.ID,
				"kind", string(a.Kind), "alert", a.String())
			job.addAlert(a.String())
		}
		tel.Watchdog = &wd
	}
	return Execute(ctx, job.Spec, tel)
}

// snapshotSummary is the compact per-cell obs view sent on job streams; the
// full snapshot stays in the per-job registry, the stream is a progress feed.
type snapshotSummary struct {
	Cell       string  `json:"cell"`
	Cycle      int64   `json:"cycle"`
	Injected   int64   `json:"injected"`
	Delivered  int64   `json:"delivered"`
	InFlight   int64   `json:"in_flight"`
	LatencyP50 float64 `json:"latency_p50,omitempty"`
	LatencyP99 float64 `json:"latency_p99,omitempty"`
	Alerts     int     `json:"alerts,omitempty"`
}

// jobDone is the pool's completion hook: it records terminal metrics and the
// correlated completion log line.
func (s *Server) jobDone(job *Job) {
	st := job.State()
	elapsed := job.elapsed()
	s.met.jobFinished(job.Spec.Type, st, elapsed)
	rec := s.log.Info
	if st == StateFailed {
		rec = s.log.Error
	}
	rec("job finished", "corr_id", job.CorrID, "id", job.ID, "type", job.Spec.Type,
		"state", string(st), "elapsed", elapsed.Round(time.Millisecond).String())
}

// elapsed is the job's execution time (zero until it finished).
func (j *Job) elapsed() time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started.IsZero() || j.finished.IsZero() {
		return 0
	}
	return j.finished.Sub(j.started)
}

// Drain is graceful shutdown: stop accepting jobs, cancel everything still
// queued, and wait for running jobs to finish.
func (s *Server) Drain() {
	if !s.draining.CompareAndSwap(false, true) {
		return
	}
	s.finalizeQueued(s.pool.Drain())
}

// Kill is hard shutdown: like Drain but running jobs' contexts are cancelled
// instead of waited out.
func (s *Server) Kill() {
	if !s.draining.CompareAndSwap(false, true) {
		s.pool.cancel()
		return
	}
	s.finalizeQueued(s.pool.Kill())
}

func (s *Server) finalizeQueued(jobs []*Job) {
	now := time.Now()
	for _, j := range jobs {
		j.finish(StateCancelled, nil, "daemon draining", now)
		s.met.jobFinished(j.Spec.Type, StateCancelled, 0)
	}
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// register mints an ID and adds the job to the registry. An empty corrID is
// defaulted to "<id>-<hash prefix>", so every job is correlatable even when
// the client sent no X-Correlation-ID.
func (s *Server) register(spec *Spec, corrID string, now time.Time) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	job := newJob(fmt.Sprintf("j%06d", s.nextID), spec, now)
	if corrID == "" {
		corrID = job.ID + "-" + job.Hash[:8]
	}
	job.CorrID = corrID
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	return job
}

// lookup returns the job with the given ID.
func (s *Server) lookup(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// snapshotJobs returns all jobs in submission order.
func (s *Server) snapshotJobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Submit runs the full submission flow (validation already done by the
// caller): cache lookup, then enqueue. The error is non-nil only when the
// daemon cannot accept the job (draining or queue full).
func (s *Server) Submit(spec *Spec) (*Job, error) {
	return s.SubmitCorr(spec, "")
}

// SubmitCorr is Submit with a caller-supplied correlation ID ("" mints one).
func (s *Server) SubmitCorr(spec *Spec, corrID string) (*Job, error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	now := time.Now()
	s.met.jobSubmitted()
	hash := spec.Hash()
	if payload, ok := s.cache.Get(hash); ok {
		job := s.register(spec, corrID, now)
		job.completeCached(payload, now)
		s.met.jobFinished(spec.Type, StateDone, 0)
		s.log.Info("job served from cache", "corr_id", job.CorrID, "id", job.ID,
			"type", spec.Type, "hash", hash)
		return job, nil
	}
	job := s.register(spec, corrID, now)
	if !s.q.Push(job) {
		job.finish(StateFailed, nil, "queue full", now)
		s.met.jobFinished(spec.Type, StateFailed, 0)
		s.log.Warn("job rejected, queue full", "corr_id", job.CorrID, "id", job.ID, "type", spec.Type)
		return nil, errQueueFull
	}
	s.log.Info("job queued", "corr_id", job.CorrID, "id", job.ID, "type", spec.Type, "hash", hash)
	return job, nil
}

var (
	errDraining  = fmt.Errorf("daemon is draining, not accepting jobs")
	errQueueFull = fmt.Errorf("job queue is full")
)

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.route("submit", s.handleSubmit))
	mux.HandleFunc("GET /jobs", s.route("list", s.handleList))
	mux.HandleFunc("GET /jobs/{id}", s.route("status", s.handleStatus))
	mux.HandleFunc("GET /jobs/{id}/result", s.route("result", s.handleResult))
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream) // long-lived; not latency-tracked
	mux.HandleFunc("POST /jobs/{id}/cancel", s.route("cancel", s.handleCancel))
	mux.HandleFunc("GET /healthz", s.route("healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.route("readyz", s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.route("metrics", s.handleMetrics))
	mux.HandleFunc("GET /dashboard", s.route("dashboard", s.handleDashboard))
	return mux
}

// route wraps a handler with per-route latency tracking.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		s.met.httpObserved(name, time.Since(start))
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	spec, err := ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	job, err := s.SubmitCorr(spec, r.Header.Get("X-Correlation-ID"))
	switch {
	case err != nil:
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case job.Cached():
		writeJSON(w, http.StatusOK, job.Status())
	default:
		writeJSON(w, http.StatusAccepted, job.Status())
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.snapshotJobs()
	docs := make([]StatusDoc, len(jobs))
	for i, j := range jobs {
		docs[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, docs)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	st := job.Status()
	switch st.State {
	case StateDone:
		payload, _ := job.Result()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(payload)
	case StateFailed:
		writeError(w, http.StatusInternalServerError, st.Error)
	default:
		writeError(w, http.StatusConflict, fmt.Sprintf("job is %s, not done", st.State))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	was := job.State()
	job.Cancel(time.Now())
	if was == StateQueued && job.State() == StateCancelled {
		s.met.jobFinished(job.Spec.Type, StateCancelled, 0)
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleStream serves the job's live event feed as server-sent events: one
// "status" replay on connect, then progress / snapshot / alert / status
// events until the job reaches a terminal state or the client disconnects.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	// Subscribe before flushing headers: once the client sees a 200 it must
	// not be able to miss events published from that point on.
	events, unsubscribe := job.Subscribe()
	defer unsubscribe()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		select {
		case ev, open := <-events:
			if !open {
				return
			}
			data, err := json.Marshal(ev.Data)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz maps daemon state onto readiness: draining, a saturated
// queue, or a running job whose watchdog has raised alerts (starvation or
// livelock in flight) all report unready.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if s.q.Len() >= s.cfg.QueueDepth {
		writeError(w, http.StatusServiceUnavailable, "queue full")
		return
	}
	for _, j := range s.snapshotJobs() {
		if j.State() != StateRunning {
			continue
		}
		if alerts := j.Alerts(); len(alerts) > 0 {
			writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("job %s watchdog: %s", j.ID, alerts[len(alerts)-1]))
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves the telemetry registry's exposition document. The
// callback families registered in New read queue/pool/cache state at render
// time, so no gauge refresh happens here.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", telemetry.ContentType)
	w.WriteHeader(http.StatusOK)
	_ = s.cfg.Registry.Render(w)
}
