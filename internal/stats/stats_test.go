package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.Count() != 0 || a.Mean() != 0 || a.Variance() != 0 {
		t.Fatal("zero accumulator not zeroed")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.Count() != 8 {
		t.Fatalf("Count = %d", a.Count())
	}
	if !almostEqual(a.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", a.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if !almostEqual(a.Variance(), 32.0/7, 1e-12) {
		t.Fatalf("Variance = %v, want %v", a.Variance(), 32.0/7)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	if !almostEqual(a.Sum(), 40, 1e-9) {
		t.Fatalf("Sum = %v, want 40", a.Sum())
	}
	a.Reset()
	if a.Count() != 0 || a.Mean() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestAccumulatorMergeMatchesSequential(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		if len(xs) == 0 {
			return true
		}
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = float64(i)
			}
			// Bound magnitudes to keep float comparisons meaningful.
			xs[i] = math.Mod(xs[i], 1e6)
		}
		k := int(split) % len(xs)
		var whole, left, right Accumulator
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:k] {
			left.Add(x)
		}
		for _, x := range xs[k:] {
			right.Add(x)
		}
		left.Merge(&right)
		return left.Count() == whole.Count() &&
			almostEqual(left.Mean(), whole.Mean(), 1e-6*(1+math.Abs(whole.Mean()))) &&
			almostEqual(left.Variance(), whole.Variance(), 1e-4*(1+whole.Variance())) &&
			left.Min() == whole.Min() && left.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorAddN(t *testing.T) {
	var a, b Accumulator
	a.AddN(3, 5)
	for i := 0; i < 5; i++ {
		b.Add(3)
	}
	if a.Count() != b.Count() || a.Mean() != b.Mean() {
		t.Fatal("AddN differs from repeated Add")
	}
}

// TestAccumulatorAddNBitCompatible pins the O(1) AddN against the Add loop:
// from an empty accumulator the results must be bit-identical (a constant
// sample leaves Welford's m2 at exactly zero), and folding into a non-empty
// accumulator must agree up to floating-point reassociation.
func TestAccumulatorAddNBitCompatible(t *testing.T) {
	for _, x := range []float64{-2.5, 0, 0.1, 3, 1e9, -7.25e-8} {
		for n := int64(1); n <= 17; n++ {
			var fast, loop Accumulator
			fast.AddN(x, n)
			for i := int64(0); i < n; i++ {
				loop.Add(x)
			}
			if fast != loop {
				t.Fatalf("AddN(%v, %d) = %+v, loop = %+v", x, n, fast, loop)
			}
		}
	}

	// Non-empty accumulator: Welford merge vs iterated Add.
	for _, x := range []float64{-1, 0.5, 12} {
		for n := int64(1); n <= 9; n++ {
			var fast, loop Accumulator
			for _, seedSample := range []float64{4, -3, 8.5} {
				fast.Add(seedSample)
				loop.Add(seedSample)
			}
			fast.AddN(x, n)
			for i := int64(0); i < n; i++ {
				loop.Add(x)
			}
			if fast.Count() != loop.Count() || fast.Min() != loop.Min() || fast.Max() != loop.Max() {
				t.Fatalf("AddN(%v, %d) count/min/max mismatch: %+v vs %+v", x, n, fast, loop)
			}
			if !almostEqual(fast.Mean(), loop.Mean(), 1e-9*(1+math.Abs(loop.Mean()))) {
				t.Fatalf("AddN(%v, %d) mean %v, loop %v", x, n, fast.Mean(), loop.Mean())
			}
			if !almostEqual(fast.Variance(), loop.Variance(), 1e-9*(1+loop.Variance())) {
				t.Fatalf("AddN(%v, %d) variance %v, loop %v", x, n, fast.Variance(), loop.Variance())
			}
		}
	}
}

// TestAccumulatorAddNZero checks the degenerate counts.
func TestAccumulatorAddNZero(t *testing.T) {
	var a Accumulator
	a.AddN(42, 0)
	a.AddN(42, -3)
	if a.Count() != 0 || a.Mean() != 0 {
		t.Fatalf("AddN with n<=0 mutated the accumulator: %+v", a)
	}
	a.Add(1)
	a.AddN(9, 0)
	if a.Count() != 1 || a.Mean() != 1 {
		t.Fatalf("AddN(x, 0) mutated a non-empty accumulator: %+v", a)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5) // bins [0,10) .. [40,50)
	for _, x := range []float64{1, 5, 15, 25, 45, 99, -3} {
		h.Add(x)
	}
	if h.Count() != 7 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Bin(0) != 3 { // 1, 5, clamped -3
		t.Fatalf("bin 0 = %d, want 3", h.Bin(0))
	}
	if h.Bin(1) != 1 || h.Bin(2) != 1 || h.Bin(4) != 1 {
		t.Fatalf("bins = %d %d %d", h.Bin(1), h.Bin(2), h.Bin(4))
	}
	if h.Overflow() != 1 {
		t.Fatalf("Overflow = %d", h.Overflow())
	}
	if h.Max() != 99 {
		t.Fatalf("Max = %v", h.Max())
	}
	// 50th percentile: the 4th of 7 samples falls in bin [10,20).
	if p := h.Percentile(50); p != 20 {
		t.Fatalf("P50 = %v, want 20", p)
	}
	if p := h.Percentile(100); p != 99 {
		t.Fatalf("P100 = %v, want 99 (exact max)", p)
	}
}

// TestHistogramSummary pins the /metrics text shape: key=value pairs with
// count, mean, interpolated quantiles and the exact max.
func TestHistogramSummary(t *testing.T) {
	h := NewHistogram(10, 5)
	if got := h.Summary(); got != "count=0" {
		t.Fatalf("empty Summary = %q", got)
	}
	for i := 0; i < 100; i++ {
		h.Add(float64(i % 50))
	}
	s := h.Summary()
	for _, key := range []string{"count=100", "mean=", "p50=", "p95=", "p99=", "max=49"} {
		if !strings.Contains(s, key) {
			t.Fatalf("Summary %q missing %q", s, key)
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	nan := math.NaN()
	for _, f := range []func(){
		func() { NewHistogram(0, 5) },
		func() { NewHistogram(1, 0) },
		func() { NewHistogram(1, 1).Percentile(0) },
		func() { NewHistogram(1, 1).Percentile(101) },
		// NaN fails both range comparisons; the guards must reject it
		// explicitly rather than let it walk the bins.
		func() { NewHistogram(1, 1).Percentile(nan) },
		func() { NewHistogram(1, 1).Quantile(nan) },
		func() { NewHistogram(1, 1).Quantile(-0.1) },
		func() { NewHistogram(1, 1).Quantile(1.1) },
		func() { Percentile([]float64{1, 2}, nan) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if p := Percentile(xs, 50); p != 3 {
		t.Fatalf("P50 = %v, want 3", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("P100 = %v, want 5", p)
	}
	if p := Percentile(xs, 20); p != 1 {
		t.Fatalf("P20 = %v, want 1", p)
	}
	// Input must be unmodified.
	if xs[0] != 5 || xs[4] != 3 {
		t.Fatal("Percentile mutated its input")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile != 0")
	}
}

func TestMeanGeoMeanMinMax(t *testing.T) {
	xs := []float64{1, 2, 4}
	if Mean(xs) != 7.0/3 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if !almostEqual(GeoMean(xs), 2, 1e-12) {
		t.Fatalf("GeoMean = %v, want 2", GeoMean(xs))
	}
	if Max(xs) != 4 || Min(xs) != 1 {
		t.Fatalf("Max/Min = %v/%v", Max(xs), Min(xs))
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 || GeoMean(nil) != 0 {
		t.Fatal("empty-slice helpers not zero")
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean accepted zero")
		}
	}()
	GeoMean([]float64{1, 0, 2})
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 8}, 1)
	want := []float64{0.5, 1, 2}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Normalize = %v, want %v", out, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Normalize accepted zero baseline")
		}
	}()
	Normalize([]float64{0, 1}, 0)
}

func TestClamp01(t *testing.T) {
	cases := map[float64]float64{-1: 0, 0: 0, 0.5: 0.5, 1: 1, 2: 1}
	for in, want := range cases {
		if got := Clamp01(in); got != want {
			t.Errorf("Clamp01(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Fatal("unset EWMA not zero")
	}
	e.Add(10) // seeds
	if e.Value() != 10 {
		t.Fatalf("seed = %v", e.Value())
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Fatalf("after 20: %v, want 15", e.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewEWMA accepted alpha 0")
		}
	}()
	NewEWMA(0)
}

func TestQuickAccumulatorMeanBounds(t *testing.T) {
	// Property: min <= mean <= max, variance >= 0.
	rng := rand.New(rand.NewSource(5))
	f := func(n8 uint8) bool {
		n := int(n8)%100 + 1
		var a Accumulator
		for i := 0; i < n; i++ {
			a.Add(rng.NormFloat64() * 100)
		}
		return a.Min() <= a.Mean()+1e-9 && a.Mean() <= a.Max()+1e-9 && a.Variance() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	// 10 bins of width 10 holding 0..99: every decile boundary lands exactly.
	h := NewHistogram(10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("Quantile(0) = %v, want observed min 0", got)
	}
	if got := h.Quantile(1); got != 99 {
		t.Fatalf("Quantile(1) = %v, want observed max 99", got)
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Fatalf("Quantile(0.5) = %v, want 50", got)
	}
	// Within-bin interpolation: quantile 0.25 is halfway through bin 2.
	if got := h.Quantile(0.25); got != 25 {
		t.Fatalf("Quantile(0.25) = %v, want 25", got)
	}
	// Monotonicity across the whole range.
	prev := h.Quantile(0)
	for q := 0.05; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: q=%v gives %v after %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramQuantileOverflow(t *testing.T) {
	// Bins cover [0,4); two samples overflow with observed max 10. Quantiles
	// in the overflow bucket interpolate between the last bin edge and the
	// exact max.
	h := NewHistogram(1, 4)
	for _, x := range []float64{0.5, 1.5, 2.5, 3.5, 6, 10} {
		h.Add(x)
	}
	if h.Overflow() != 2 {
		t.Fatalf("Overflow = %d, want 2", h.Overflow())
	}
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("Quantile(1) = %v, want observed max 10", got)
	}
	// target = 5 of 6 samples: halfway into the overflow mass, so halfway
	// between the last bin edge (4) and the max (10).
	if got, want := h.Quantile(5.0/6), 7.0; !almostEqual(got, want, 1e-9) {
		t.Fatalf("overflow Quantile = %v, want %v", got, want)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram(1, 4)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram Quantile = %v, want 0", got)
	}
	// A single sample answers every quantile with itself (clamped to [min,max]).
	h.Add(2.5)
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 2.5 {
			t.Fatalf("single-sample Quantile(%v) = %v, want 2.5", q, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile accepted q > 1")
		}
	}()
	h.Quantile(1.5)
}

func TestQuickHistogramQuantileBounded(t *testing.T) {
	// Property: quantiles stay within the exact observed [min, max] and are
	// monotone in q, overflow or not.
	rng := rand.New(rand.NewSource(9))
	f := func(n8 uint8) bool {
		n := int(n8)%60 + 1
		h := NewHistogram(2, 8) // covers [0,16); larger samples overflow
		for i := 0; i < n; i++ {
			h.Add(rng.Float64() * 40)
		}
		prev := h.Quantile(0)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < h.acc.Min()-1e-9 || v > h.acc.Max()+1e-9 || v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
