// Package stats provides small statistical accumulators used throughout the
// simulator: streaming mean/variance, histograms, percentiles and
// normalization helpers.
//
// All types are plain values with no hidden goroutines; they are not safe for
// concurrent use unless stated otherwise.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator tracks count, mean, variance (Welford), min and max of a stream
// of float64 samples. The zero value is ready to use.
type Accumulator struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one sample into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddN folds the same sample n times in O(1): n repeats of x form an
// accumulator with mean x and zero second moment (exactly what n repeated
// Adds produce from an empty accumulator), which is then merged in. Folding
// into an empty accumulator is bit-identical to the Add loop; folding into a
// non-empty one uses the Welford merge, which agrees up to floating-point
// reassociation.
func (a *Accumulator) AddN(x float64, n int64) {
	if n <= 0 {
		return
	}
	b := Accumulator{n: n, mean: x, min: x, max: x}
	if a.n == 0 {
		*a = b
		return
	}
	a.Merge(&b)
}

// Merge folds another accumulator into a (parallel Welford merge).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	delta := b.mean - a.mean
	total := a.n + b.n
	a.mean += delta * float64(b.n) / float64(total)
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(total)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = total
}

// Count returns the number of samples seen.
func (a *Accumulator) Count() int64 { return a.n }

// Mean returns the sample mean, or 0 for an empty accumulator.
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.mean
}

// Variance returns the unbiased sample variance, or 0 with fewer than two
// samples.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest sample, or 0 for an empty accumulator.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample, or 0 for an empty accumulator.
func (a *Accumulator) Max() float64 { return a.max }

// Sum returns mean*count.
func (a *Accumulator) Sum() float64 { return a.mean * float64(a.n) }

// String implements fmt.Stringer.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f",
		a.n, a.Mean(), a.StdDev(), a.min, a.max)
}

// Reset restores the accumulator to its zero state.
func (a *Accumulator) Reset() { *a = Accumulator{} }

// Histogram is a fixed-bin-width histogram over [0, BinWidth*len(bins)), with
// an overflow bucket. Use NewHistogram to create one.
type Histogram struct {
	binWidth float64
	bins     []int64
	overflow int64
	acc      Accumulator
}

// NewHistogram creates a histogram with nbins bins of the given width.
func NewHistogram(binWidth float64, nbins int) *Histogram {
	if binWidth <= 0 {
		panic("stats: histogram bin width must be positive")
	}
	if nbins <= 0 {
		panic("stats: histogram must have at least one bin")
	}
	return &Histogram{binWidth: binWidth, bins: make([]int64, nbins)}
}

// Add records one sample. Negative samples are clamped into the first bin.
func (h *Histogram) Add(x float64) {
	h.acc.Add(x)
	if x < 0 {
		x = 0
	}
	i := int(x / h.binWidth)
	if i >= len(h.bins) {
		h.overflow++
		return
	}
	h.bins[i]++
}

// Count returns the total number of samples.
func (h *Histogram) Count() int64 { return h.acc.Count() }

// Mean returns the exact (not binned) mean of the samples.
func (h *Histogram) Mean() float64 { return h.acc.Mean() }

// Max returns the exact max of the samples.
func (h *Histogram) Max() float64 { return h.acc.Max() }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int64 { return h.bins[i] }

// Overflow returns the count of samples beyond the last bin.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Summary renders the histogram as one metrics-style line:
// "count=N mean=M p50=A p95=B p99=C max=D" (values in the sample's unit,
// quantiles bin-interpolated). An empty histogram reports "count=0". It is
// the text format the serving daemon's /metrics endpoint exposes per
// job-type latency histogram.
func (h *Histogram) Summary() string {
	if h.Count() == 0 {
		return "count=0"
	}
	return fmt.Sprintf("count=%d mean=%.3g p50=%.3g p95=%.3g p99=%.3g max=%.3g",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

// Percentile returns an upper bound estimate of the p-th percentile
// (0 < p <= 100) using bin upper edges. Overflowed samples report the exact
// observed maximum.
func (h *Histogram) Percentile(p float64) float64 {
	// NaN fails every comparison, so test it explicitly: a range guard alone
	// would let NaN through and silently return the first bin's edge.
	if math.IsNaN(p) || p <= 0 || p > 100 {
		panic("stats: percentile must be in (0,100]")
	}
	total := h.acc.Count()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(p / 100 * float64(total)))
	var cum int64
	for i, c := range h.bins {
		cum += c
		if cum >= target {
			return float64(i+1) * h.binWidth
		}
	}
	return h.acc.Max()
}

// Quantile returns the q-th quantile (0 <= q <= 1) of the samples, linearly
// interpolated within the containing bin: the quantile mass is assumed to be
// spread uniformly across each bin's width. Results are clamped to the exact
// observed [Min, Max], so Quantile(0) is the minimum and Quantile(1) the
// maximum. A quantile falling in the overflow bucket interpolates between the
// last bin edge and the exact observed maximum — a coarse but bounded
// estimate, since the overflow bucket records no interior structure. An empty
// histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	// q < 0 || q > 1 is false for NaN, which would otherwise walk the bins
	// with a NaN target and return the overflow path's clamp of NaN.
	if math.IsNaN(q) || q < 0 || q > 1 {
		panic("stats: quantile must be in [0,1]")
	}
	total := h.acc.Count()
	if total == 0 {
		return 0
	}
	clamp := func(v float64) float64 {
		if v < h.acc.Min() {
			v = h.acc.Min()
		}
		if v > h.acc.Max() {
			v = h.acc.Max()
		}
		return v
	}
	target := q * float64(total)
	var cum int64
	for i, c := range h.bins {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			frac := (target - float64(cum)) / float64(c)
			return clamp((float64(i) + frac) * h.binWidth)
		}
		cum += c
	}
	// The quantile falls in the overflow bucket.
	if h.overflow == 0 {
		return h.acc.Max()
	}
	lo := float64(len(h.bins)) * h.binWidth
	frac := (target - float64(total-h.overflow)) / float64(h.overflow)
	return clamp(lo + frac*(h.acc.Max()-lo))
}

// Percentile returns the p-th percentile (0 < p <= 100) of xs using the
// nearest-rank method. It does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if math.IsNaN(p) || p <= 0 || p > 100 {
		panic("stats: percentile must be in (0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sumLog := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean requires positive values")
		}
		sumLog += math.Log(x)
	}
	return math.Exp(sumLog / float64(len(xs)))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// JainIndex returns Jain's fairness index (sum x)^2 / (n * sum x^2) of xs:
// 1.0 when all values are equal, approaching 1/n under maximal inequality.
// Values must be non-negative; an empty or all-zero slice returns 1.
func JainIndex(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		if x < 0 {
			panic("stats: JainIndex requires non-negative values")
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Normalize returns xs scaled so that the element at baseline index is 1.0.
// It panics if the baseline element is zero.
func Normalize(xs []float64, baseline int) []float64 {
	b := xs[baseline]
	if b == 0 {
		panic("stats: cannot normalize to a zero baseline")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / b
	}
	return out
}

// Clamp01 clamps x into [0,1].
func Clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// EWMA is an exponentially weighted moving average. The zero value is unset;
// the first Add seeds it.
type EWMA struct {
	alpha float64
	value float64
	set   bool
}

// NewEWMA creates an EWMA with smoothing factor alpha in (0,1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0,1]")
	}
	return &EWMA{alpha: alpha}
}

// Add folds a sample into the average.
func (e *EWMA) Add(x float64) {
	if !e.set {
		e.value = x
		e.set = true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current average (0 if no samples yet).
func (e *EWMA) Value() float64 { return e.value }
