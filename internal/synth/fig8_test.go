package synth

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// algorithm2 is the software reference for the P-block: Algorithm 2's
// priority arithmetic (mirrors core.RLInspiredAPU.Priority; duplicated here
// as an independent oracle so a shared bug cannot hide).
func algorithm2(la, hc int, boost, invert bool) int {
	if la > 24 {
		return la
	}
	base := hc
	if invert {
		base = 15 - hc
	}
	if boost {
		return base << 1
	}
	return base
}

// TestPBlockExhaustiveEquivalence proves the exact-threshold P-block netlist
// bit-identical to Algorithm 2 over its entire input space (5-bit age, 4-bit
// hop count, two mode bits: 2048 cases).
func TestPBlockExhaustiveEquivalence(t *testing.T) {
	nl := BuildPBlock(PBlockOptions{})
	for la := 0; la < 32; la++ {
		for hc := 0; hc < 16; hc++ {
			for _, boost := range []bool{false, true} {
				for _, invert := range []bool{false, true} {
					want := algorithm2(la, hc, boost, invert)
					got := PBlockPriority(nl, la, hc, boost, invert)
					if got != want {
						t.Fatalf("P-block(la=%d hc=%d boost=%v invert=%v) = %d, want %d",
							la, hc, boost, invert, got, want)
					}
				}
			}
		}
	}
}

// TestPBlockApproxThreshold: the paper's single-AND-gate simplification
// differs from Algorithm 2 only at LA == 24, where it fires the override
// early.
func TestPBlockApproxThreshold(t *testing.T) {
	nl := BuildPBlock(PBlockOptions{ApproxThreshold: true})
	diffs := 0
	for la := 0; la < 32; la++ {
		for hc := 0; hc < 16; hc++ {
			for _, boost := range []bool{false, true} {
				for _, invert := range []bool{false, true} {
					want := algorithm2(la, hc, boost, invert)
					got := PBlockPriority(nl, la, hc, boost, invert)
					if got != want {
						if la != 24 {
							t.Fatalf("approx P-block differs at la=%d (not 24)", la)
						}
						if got != 24 {
							t.Fatalf("approx override at la=24 returned %d, want 24", got)
						}
						diffs++
					}
				}
			}
		}
	}
	if diffs == 0 {
		t.Fatal("approx threshold never differed; simplification not exercised")
	}
}

// TestPBlockCost: the netlist's own gate count and depth validate the cost
// model's P-block component (35 gates, depth 6 — same magnitude, not exact,
// since the model counts NAND2 equivalents).
func TestPBlockCost(t *testing.T) {
	nl := BuildPBlock(PBlockOptions{ApproxThreshold: true})
	if g := nl.NumGates(); g < 15 || g > 70 {
		t.Fatalf("P-block gate count %d outside the modeled magnitude", g)
	}
	if d := nl.Depth(); d < 3 || d > 12 {
		t.Fatalf("P-block depth %d outside the modeled magnitude", d)
	}
}

func TestSelectMaxExhaustiveSmall(t *testing.T) {
	nl := BuildSelectMax(3, 3) // 3 inputs, 3-bit values: 512 cases
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			for c := 0; c < 8; c++ {
				idx, max := SelectMaxEval(nl, []int{a, b, c})
				vals := []int{a, b, c}
				wantMax, wantIdx := a, 0
				for i, v := range vals {
					if v > wantMax {
						wantMax, wantIdx = v, i
					}
				}
				if max != wantMax {
					t.Fatalf("max(%d,%d,%d) = %d, want %d", a, b, c, max, wantMax)
				}
				if idx != wantIdx {
					t.Fatalf("argmax(%d,%d,%d) = %d, want %d (lowest-index tie-break)",
						a, b, c, idx, wantIdx)
				}
			}
		}
	}
}

func TestQuickSelectMax42(t *testing.T) {
	// The full router-scale tree: 42 inputs of 5 bits.
	nl := BuildSelectMax(42, 5)
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pris := make([]int, 42)
		for i := range pris {
			pris[i] = r.Intn(32)
		}
		idx, max := SelectMaxEval(nl, pris)
		wantMax, wantIdx := pris[0], 0
		for i, v := range pris {
			if v > wantMax {
				wantMax, wantIdx = v, i
			}
		}
		return max == wantMax && idx == wantIdx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestNetlistBuilderBasics(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x")
	y := b.Input("y")
	b.Output("and", b.And(x, y))
	b.Output("or", b.Or(x, y))
	b.Output("xor", b.Xor(x, y))
	b.Output("notx", b.Not(x))
	nl := b.Build()
	for _, tc := range []struct {
		x, y               bool
		and, or, xor, notx bool
	}{
		{false, false, false, false, false, true},
		{true, false, false, true, true, false},
		{false, true, false, true, true, true},
		{true, true, true, true, false, false},
	} {
		out := nl.Eval(map[string]bool{"x": tc.x, "y": tc.y})
		if out["and"] != tc.and || out["or"] != tc.or ||
			out["xor"] != tc.xor || out["notx"] != tc.notx {
			t.Fatalf("x=%v y=%v: got %v", tc.x, tc.y, out)
		}
	}
	if len(nl.InputNames()) != 2 || len(nl.OutputNames()) != 4 {
		t.Fatal("name bookkeeping wrong")
	}
}

func TestGreaterThanExhaustive(t *testing.T) {
	b := NewBuilder()
	x := b.InputBus("x", 4)
	y := b.InputBus("y", 4)
	b.Output("gt", b.GreaterThan(x, y))
	nl := b.Build()
	for a := 0; a < 16; a++ {
		for c := 0; c < 16; c++ {
			out := nl.EvalUint(map[string]uint64{"x": uint64(a), "y": uint64(c)}, "gt")
			want := uint64(0)
			if a > c {
				want = 1
			}
			if out != want {
				t.Fatalf("%d > %d = %d, want %d", a, c, out, want)
			}
		}
	}
}

func TestBuilderPanics(t *testing.T) {
	for _, f := range []func(){
		func() { b := NewBuilder(); b.Input("a"); b.Input("a") },
		func() {
			b := NewBuilder()
			w := b.Input("a")
			b.Output("o", w)
			b.Output("o", w)
		},
		func() { b := NewBuilder(); b.MuxBus(WireTrue, []Wire{WireFalse}, nil) },
		func() { b := NewBuilder(); b.GreaterThan([]Wire{WireTrue}, nil) },
		func() { BuildSelectMax(0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestEvalUnknownNamesPanic(t *testing.T) {
	b := NewBuilder()
	b.Output("o", b.Input("a"))
	nl := b.Build()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown input accepted")
			}
		}()
		nl.Eval(map[string]bool{"zzz": true})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown output bus accepted")
			}
		}()
		nl.EvalUint(map[string]uint64{"a": 1}, "nope")
	}()
}
