// Package synth is a transparent gate-level hardware cost model standing in
// for the paper's Synopsys Design Compiler synthesis at 32nm (Table 3).
//
// Circuits are described as compositions of components with explicit
// NAND2-equivalent gate counts and logic depths; a gate library (area, delay
// and switching power per NAND2 equivalent at a 32nm-class node) converts
// them into latency (ns), area (mm²) and power (mW). The point of Table 3 —
// that a parallelized INT8 inference engine for the paper's 504-42-42 network
// is orders of magnitude larger and slower than the distilled priority
// arbiter, which itself costs only a few times a round-robin arbiter — falls
// out of the structure of the circuits rather than calibration constants.
package synth

import "fmt"

// GateLib characterizes a technology node by its NAND2-equivalent gate.
type GateLib struct {
	Name string
	// AreaUM2 is the area of one NAND2-equivalent gate in µm².
	AreaUM2 float64
	// DelayNS is the propagation delay of one logic level in ns.
	DelayNS float64
	// PowerMW is the average switching power of one gate in mW at the
	// modelled clock and activity factor.
	PowerMW float64
	// SRAMBitUM2 is the area of one SRAM bit in µm² (for weight storage).
	SRAMBitUM2 float64
}

// Lib32nm is a 32nm-class library. The constants are representative standard
// cell values for a 32nm process (NAND2 ≈ 0.74 µm², FO4-loaded level delay
// ≈ 28 ps, ≈ 40 nW switching power per gate at 1 GHz).
var Lib32nm = GateLib{
	Name:       "32nm",
	AreaUM2:    0.74,
	DelayNS:    0.028,
	PowerMW:    0.00004,
	SRAMBitUM2: 0.15,
}

// Component is a replicated sub-circuit.
type Component struct {
	Name string
	// Gates is the NAND2-equivalent gate count of one instance.
	Gates int
	// Depth is the logic depth of one instance in gate levels.
	Depth int
	// Count is the number of parallel instances (depth does not multiply).
	Count int
	// Serial marks the component as on the critical path; serial components'
	// depths add.
	Serial bool
	// SRAMBits is auxiliary memory (weights, pointers) in bits.
	SRAMBits int
	// Passes multiplies the component's delay contribution (a unit reused
	// sequentially, e.g. a MAC array streaming a large layer). Zero means 1.
	Passes int
}

func (c Component) passes() int {
	if c.Passes <= 0 {
		return 1
	}
	return c.Passes
}

// Circuit is a named composition of components.
type Circuit struct {
	Name  string
	Comps []Component
}

// Gates returns the total NAND2-equivalent gate count.
func (c *Circuit) Gates() int {
	total := 0
	for _, comp := range c.Comps {
		total += comp.Gates * comp.Count
	}
	return total
}

// SRAMBits returns the total memory bits.
func (c *Circuit) SRAMBits() int {
	total := 0
	for _, comp := range c.Comps {
		total += comp.SRAMBits
	}
	return total
}

// LatencyNS returns the critical-path delay: the sum over serial components
// of depth x passes x per-level delay.
func (c *Circuit) LatencyNS(lib GateLib) float64 {
	total := 0.0
	for _, comp := range c.Comps {
		if comp.Serial {
			total += float64(comp.Depth*comp.passes()) * lib.DelayNS
		}
	}
	return total
}

// AreaMM2 returns the total area in mm² (logic plus SRAM).
func (c *Circuit) AreaMM2(lib GateLib) float64 {
	um2 := float64(c.Gates())*lib.AreaUM2 + float64(c.SRAMBits())*lib.SRAMBitUM2
	return um2 / 1e6
}

// PowerMW returns the switching power estimate in mW.
func (c *Circuit) PowerMW(lib GateLib) float64 {
	return float64(c.Gates()) * lib.PowerMW
}

// Report is one Table 3 row.
type Report struct {
	Name      string
	LatencyNS float64
	AreaMM2   float64
	PowerMW   float64
	Gates     int
	SRAMBits  int
}

// Evaluate produces a cost report for the circuit under the library.
func Evaluate(c *Circuit, lib GateLib) Report {
	return Report{
		Name:      c.Name,
		LatencyNS: c.LatencyNS(lib),
		AreaMM2:   c.AreaMM2(lib),
		PowerMW:   c.PowerMW(lib),
		Gates:     c.Gates(),
		SRAMBits:  c.SRAMBits(),
	}
}

// String implements fmt.Stringer.
func (r Report) String() string {
	return fmt.Sprintf("%-16s latency=%.2fns area=%.4fmm2 power=%.2fmW (%d gates)",
		r.Name, r.LatencyNS, r.AreaMM2, r.PowerMW, r.Gates)
}

// ceilDiv returns ceil(a/b).
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// RoundRobinArbiter models a conventional matrix round-robin arbiter for a
// router with the given ports and VCs: one programmable-priority encoder over
// ports*vcs requesters per output port.
func RoundRobinArbiter(ports, vcs int) *Circuit {
	reqs := ports * vcs
	return &Circuit{
		Name: "round-robin",
		Comps: []Component{
			{
				// Programmable priority encoder: ~6 gates per requester
				// (thermometer mask, two chained fixed priority encoders,
				// OR-merge), two tree traversals deep.
				Name:   "pp-encoder",
				Gates:  6 * reqs,
				Depth:  4*log2ceil(reqs) + 4,
				Count:  ports,
				Serial: true,
			},
			{
				// Grant pointer register and update logic per output.
				Name:  "pointer",
				Gates: 8 * log2ceil(reqs),
				Depth: 2,
				Count: ports,
			},
		},
	}
}

// ProposedArbiter models the paper's Fig. 8 circuit for a router with the
// given ports and VCs: one P-block per input buffer computing the Algorithm 2
// priority level (AND-gate age threshold, XOR hop inversion, boost shift,
// output mux), shared across outputs, plus a select-max comparator tree per
// output port.
func ProposedArbiter(ports, vcs int) *Circuit {
	bufs := ports * vcs
	return &Circuit{
		Name: "proposed",
		Comps: []Component{
			{
				// P-block (Fig. 8 bottom): threshold AND, 4-bit XOR invert,
				// class-boost shift mux, 5-bit 2:1 output mux.
				Name:   "p-block",
				Gates:  35,
				Depth:  6,
				Count:  bufs,
				Serial: true,
			},
			{
				// Select-max tournament tree over all buffers: one 5-bit
				// comparator plus 5-bit 2:1 mux and index mux per tree node.
				Name:   "select-max",
				Gates:  20,
				Depth:  log2ceil(bufs) * (4 + 1),
				Count:  (bufs - 1) * ports,
				Serial: true,
			},
		},
	}
}

// NNEngine models an INT8 inference engine for a multi-layer perceptron with
// the given layer sizes, "largely parallelized" as in Section 4.8: an array
// of macUnits INT8 multiply-accumulate units streams each layer's
// multiplications in passes, with the weights held in on-chip SRAM.
func NNEngine(layerSizes []int, macUnits int) *Circuit {
	if macUnits <= 0 {
		macUnits = 2048
	}
	totalMACs := 0
	passes := 0
	weights := 0
	for l := 0; l+1 < len(layerSizes); l++ {
		macs := layerSizes[l] * layerSizes[l+1]
		totalMACs += macs
		passes += ceilDiv(macs, macUnits)
		weights += macs + layerSizes[l+1] // weights + biases
	}
	return &Circuit{
		Name: "agent-nn-int8",
		Comps: []Component{
			{
				// INT8 MAC: 8x8 multiplier (~650 gates) + 24-bit accumulator
				// (~150 gates); each pass costs the multiplier depth plus the
				// accumulate/reduce depth.
				Name:   "mac-array",
				Gates:  800,
				Depth:  24,
				Count:  macUnits,
				Serial: true,
				Passes: passes,
			},
			{
				// Activation units (piecewise sigmoid LUT / ReLU clamps).
				Name:  "activation",
				Gates: 120,
				Depth: 6,
				Count: maxInt(layerSizes[1:]...),
			},
			{
				Name:     "weight-sram",
				SRAMBits: weights * 8,
			},
		},
	}
}

func log2ceil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

func maxInt(xs ...int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Table3 evaluates the paper's three Table 3 designs for a 6-port, 7-VC
// router and its 504-42-42 agent network, returning the reports in the
// paper's row order: NN engine, round-robin, proposed.
func Table3() []Report {
	lib := Lib32nm
	return []Report{
		Evaluate(NNEngine([]int{504, 42, 42}, 2048), lib),
		Evaluate(RoundRobinArbiter(6, 7), lib),
		Evaluate(ProposedArbiter(6, 7), lib),
	}
}
