package synth

import "fmt"

// This file constructs the paper's Fig. 8 arbiter datapath as an actual
// netlist: the P-block computing Algorithm 2's 5-bit priority level from the
// local-age counter, hop-count field, message-class boost and port-side
// inversion, plus the select-max tree choosing the winning input buffer.
// The equivalence property tests prove the P-block bit-exact against the
// software Algorithm 2 for every reachable input.

// PBlockOptions selects between the exact Algorithm 2 threshold comparison
// and the paper's single-AND-gate simplification.
type PBlockOptions struct {
	// ApproxThreshold uses the paper's Section 4.8 simplification: the
	// starvation override fires when both local-age MSBs are set (LA >= 24)
	// instead of Algorithm 2's strict LA > 24, trading one comparison case
	// at LA == 24 for a single AND gate.
	ApproxThreshold bool
}

// BuildPBlock constructs the Fig. 8 P-block.
//
// Inputs: la0..la4 (5-bit local age), hc0..hc3 (4-bit hop count),
// boost (message is coherence or response), invert (input port is on the
// hop-descending side). Outputs: p0..p4, the 5-bit priority level.
func BuildPBlock(opt PBlockOptions) *Netlist {
	b := NewBuilder()
	la := b.InputBus("la", 5)
	hc := b.InputBus("hc", 4)
	boost := b.Input("boost")
	invert := b.Input("invert")

	// Starvation override condition.
	starve := b.And(la[4], la[3]) // LA >= 24 (both MSBs set)
	if !opt.ApproxThreshold {
		// Strict LA > 24: additionally require a low bit set.
		low := b.Or(la[0], b.Or(la[1], la[2]))
		starve = b.And(starve, low)
	}

	// Conditional hop-count inversion: XOR with the invert line computes
	// hc or 15-hc (Algorithm 2 lines 6-18).
	base := b.XorBus(invert, hc)

	// Class boost: shift left by one (pure wiring) when boost is set.
	// 5-bit result: plain = {0, base}, shifted = {base, 0}.
	plain := []Wire{base[0], base[1], base[2], base[3], WireFalse}
	shifted := []Wire{WireFalse, base[0], base[1], base[2], base[3]}
	boosted := b.MuxBus(boost, plain, shifted)

	// Final mux: starving messages present their local age directly.
	p := b.MuxBus(starve, boosted, la)
	b.OutputBus("p", p)
	return b.Build()
}

// PBlockPriority evaluates a P-block netlist for concrete field values.
func PBlockPriority(nl *Netlist, la, hc int, boost, invert bool) int {
	in := map[string]uint64{
		"la": uint64(la),
		"hc": uint64(hc),
	}
	if boost {
		in["boost"] = 1
	}
	if invert {
		in["invert"] = 1
	}
	return int(nl.EvalUint(in, "p"))
}

// BuildSelectMax constructs an n-way select-max tournament over 5-bit
// priorities: inputs i<k>_0..i<k>_4 for k in [0,n); outputs max0..max4 (the
// winning priority) and idx0.. (the winner's index, lowest index on ties).
func BuildSelectMax(n, width int) *Netlist {
	if n < 1 {
		panic("synth: select-max needs at least one input")
	}
	b := NewBuilder()
	type entry struct {
		val []Wire
		idx []Wire
	}
	idxBits := 1
	for 1<<idxBits < n {
		idxBits++
	}
	entries := make([]entry, n)
	for k := 0; k < n; k++ {
		e := entry{val: b.InputBus(fmt.Sprintf("i%d_", k), width)}
		e.idx = make([]Wire, idxBits)
		for j := range e.idx {
			if k&(1<<j) != 0 {
				e.idx[j] = WireTrue
			} else {
				e.idx[j] = WireFalse
			}
		}
		entries[k] = e
	}
	// Tournament reduction; ties keep the earlier (lower-index) entry.
	for len(entries) > 1 {
		var next []entry
		for i := 0; i+1 < len(entries); i += 2 {
			a, c := entries[i], entries[i+1]
			sel := b.GreaterThan(c.val, a.val) // strict: ties keep a
			next = append(next, entry{
				val: b.MuxBus(sel, a.val, c.val),
				idx: b.MuxBus(sel, a.idx, c.idx),
			})
		}
		if len(entries)%2 == 1 {
			next = append(next, entries[len(entries)-1])
		}
		entries = next
	}
	b.OutputBus("max", entries[0].val)
	b.OutputBus("idx", entries[0].idx)
	return b.Build()
}

// SelectMaxEval evaluates a select-max netlist over concrete priorities,
// returning the winning index and value.
func SelectMaxEval(nl *Netlist, pris []int) (idx, max int) {
	in := make(map[string]uint64, len(pris))
	for k, p := range pris {
		in[fmt.Sprintf("i%d_", k)] = uint64(p)
	}
	return int(nl.EvalUint(in, "idx")), int(nl.EvalUint(in, "max"))
}
