package synth

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable3Shape(t *testing.T) {
	reports := Table3()
	if len(reports) != 3 {
		t.Fatalf("Table3 rows = %d, want 3", len(reports))
	}
	nn, rr, prop := reports[0], reports[1], reports[2]

	// The paper's Table 3 relationships:
	// NN cannot make a 1 GHz cycle; the arbiters can.
	if nn.LatencyNS < 5 {
		t.Fatalf("NN latency %.2f ns implausibly fast", nn.LatencyNS)
	}
	if rr.LatencyNS > 1.0 || prop.LatencyNS > 1.5 {
		t.Fatalf("arbiter latencies rr=%.2f prop=%.2f exceed a router cycle", rr.LatencyNS, prop.LatencyNS)
	}
	// NN orders of magnitude larger and hungrier than the proposed arbiter.
	if nn.AreaMM2/prop.AreaMM2 < 50 {
		t.Fatalf("NN/proposed area ratio %.1f, want > 50x", nn.AreaMM2/prop.AreaMM2)
	}
	if nn.PowerMW/prop.PowerMW < 50 {
		t.Fatalf("NN/proposed power ratio %.1f, want > 50x", nn.PowerMW/prop.PowerMW)
	}
	// The proposed arbiter costs only a small factor over round-robin.
	if ratio := prop.AreaMM2 / rr.AreaMM2; ratio < 1.5 || ratio > 10 {
		t.Fatalf("proposed/rr area ratio %.1f, want a small factor", ratio)
	}
}

func TestTable3Magnitudes(t *testing.T) {
	// The model should land in the same decade as the paper's numbers
	// (NN 8.17ns / 1.2344mm2 / 63.67mW; RR 0.89/0.0012/0.07;
	// proposed 1.10/0.0044/0.27).
	reports := Table3()
	within := func(got, want, factor float64) bool {
		return got > want/factor && got < want*factor
	}
	paper := []struct {
		lat, area, power float64
	}{
		{8.17, 1.2344, 63.67},
		{0.89, 0.0012, 0.07},
		{1.10, 0.0044, 0.27},
	}
	for i, rep := range reports {
		if !within(rep.LatencyNS, paper[i].lat, 2) {
			t.Errorf("%s latency %.2f vs paper %.2f (>2x off)", rep.Name, rep.LatencyNS, paper[i].lat)
		}
		if !within(rep.AreaMM2, paper[i].area, 2) {
			t.Errorf("%s area %.4f vs paper %.4f (>2x off)", rep.Name, rep.AreaMM2, paper[i].area)
		}
		if !within(rep.PowerMW, paper[i].power, 2) {
			t.Errorf("%s power %.2f vs paper %.2f (>2x off)", rep.Name, rep.PowerMW, paper[i].power)
		}
	}
}

func TestCircuitAccounting(t *testing.T) {
	c := &Circuit{
		Name: "test",
		Comps: []Component{
			{Name: "a", Gates: 10, Depth: 3, Count: 4, Serial: true},
			{Name: "b", Gates: 5, Depth: 7, Count: 2, Serial: true, Passes: 3},
			{Name: "c", Gates: 100, Depth: 9, Count: 1}, // parallel: no delay
			{Name: "m", SRAMBits: 64},
		},
	}
	if got := c.Gates(); got != 10*4+5*2+100 {
		t.Fatalf("Gates = %d", got)
	}
	if got := c.SRAMBits(); got != 64 {
		t.Fatalf("SRAMBits = %d", got)
	}
	lib := GateLib{AreaUM2: 1, DelayNS: 0.1, PowerMW: 0.001, SRAMBitUM2: 0.5}
	wantDelay := (3 + 7*3) * 0.1
	if got := c.LatencyNS(lib); math.Abs(got-wantDelay) > 1e-9 {
		t.Fatalf("LatencyNS = %v, want %v", got, wantDelay)
	}
	wantArea := (float64(c.Gates()) + 0.5*64) / 1e6
	if got := c.AreaMM2(lib); got != wantArea {
		t.Fatalf("AreaMM2 = %v, want %v", got, wantArea)
	}
	if got := c.PowerMW(lib); got != float64(c.Gates())*0.001 {
		t.Fatalf("PowerMW = %v", got)
	}
}

func TestNNEnginePasses(t *testing.T) {
	// 504*42 + 42*42 = 22932 MACs on 2048 units: ceil(21168/2048)=11 plus
	// ceil(1764/2048)=1 -> 12 passes.
	c := NNEngine([]int{504, 42, 42}, 2048)
	for _, comp := range c.Comps {
		if comp.Name == "mac-array" {
			if comp.Passes != 12 {
				t.Fatalf("mac-array passes = %d, want 12", comp.Passes)
			}
			return
		}
	}
	t.Fatal("mac-array component missing")
}

func TestQuickScalingMonotonic(t *testing.T) {
	lib := Lib32nm
	// More requesters => more gates and no less delay, for both arbiters.
	f := func(p8, v8 uint8) bool {
		ports := int(p8)%5 + 2
		vcs := int(v8)%7 + 1
		smallRR := RoundRobinArbiter(ports, vcs)
		bigRR := RoundRobinArbiter(ports+1, vcs+1)
		smallP := ProposedArbiter(ports, vcs)
		bigP := ProposedArbiter(ports+1, vcs+1)
		return bigRR.Gates() > smallRR.Gates() &&
			bigP.Gates() > smallP.Gates() &&
			bigRR.LatencyNS(lib) >= smallRR.LatencyNS(lib) &&
			bigP.LatencyNS(lib) >= smallP.LatencyNS(lib)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateAndString(t *testing.T) {
	rep := Evaluate(ProposedArbiter(6, 7), Lib32nm)
	if rep.Name != "proposed" || rep.Gates == 0 || rep.String() == "" {
		t.Fatalf("bad report: %+v", rep)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 42: 6, 64: 6}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}
