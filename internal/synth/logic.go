package synth

import "fmt"

// This file implements a small functional gate-level simulator: combinational
// netlists built from NOT/AND/OR/XOR gates, evaluated bit by bit. It exists
// so the paper's Fig. 8 arbiter circuit can be constructed gate by gate and
// proven bit-exact against Algorithm 2 (see fig8.go and the equivalence
// property tests) — the step the paper describes as "distilling everything
// down to logic gates".

// Wire identifies a net in a Netlist.
type Wire int

// Constant wires available in every netlist.
const (
	// WireFalse is the constant-0 net.
	WireFalse Wire = 0
	// WireTrue is the constant-1 net.
	WireTrue Wire = 1
)

type gateKind uint8

const (
	gateNot gateKind = iota
	gateAnd
	gateOr
	gateXor
)

type gate struct {
	kind gateKind
	a, b Wire
	out  Wire
}

// Builder assembles a combinational netlist. Create one with NewBuilder, add
// inputs and gates, mark outputs, then Build.
type Builder struct {
	nextWire int
	gates    []gate
	inputs   map[string]Wire
	inOrder  []string
	outputs  map[string]Wire
	outOrder []string
	depth    map[Wire]int
}

// NewBuilder returns an empty builder with the two constant wires allocated.
func NewBuilder() *Builder {
	return &Builder{
		nextWire: 2,
		inputs:   make(map[string]Wire),
		outputs:  make(map[string]Wire),
		depth:    map[Wire]int{WireFalse: 0, WireTrue: 0},
	}
}

func (b *Builder) alloc() Wire {
	w := Wire(b.nextWire)
	b.nextWire++
	return w
}

// Input declares a named primary input.
func (b *Builder) Input(name string) Wire {
	if _, dup := b.inputs[name]; dup {
		panic("synth: duplicate input " + name)
	}
	w := b.alloc()
	b.inputs[name] = w
	b.inOrder = append(b.inOrder, name)
	b.depth[w] = 0
	return w
}

// InputBus declares width named inputs "name0".."name<width-1>", LSB first.
func (b *Builder) InputBus(name string, width int) []Wire {
	ws := make([]Wire, width)
	for i := range ws {
		ws[i] = b.Input(fmt.Sprintf("%s%d", name, i))
	}
	return ws
}

// Output marks a wire as a named primary output.
func (b *Builder) Output(name string, w Wire) {
	if _, dup := b.outputs[name]; dup {
		panic("synth: duplicate output " + name)
	}
	b.outputs[name] = w
	b.outOrder = append(b.outOrder, name)
}

// OutputBus marks a bus as outputs "name0".., LSB first.
func (b *Builder) OutputBus(name string, ws []Wire) {
	for i, w := range ws {
		b.Output(fmt.Sprintf("%s%d", name, i), w)
	}
}

func (b *Builder) gate2(kind gateKind, x, y Wire) Wire {
	out := b.alloc()
	b.gates = append(b.gates, gate{kind: kind, a: x, b: y, out: out})
	d := b.depth[x]
	if dy := b.depth[y]; dy > d {
		d = dy
	}
	b.depth[out] = d + 1
	return out
}

// Not returns !x.
func (b *Builder) Not(x Wire) Wire { return b.gate2(gateNot, x, WireFalse) }

// And returns x && y.
func (b *Builder) And(x, y Wire) Wire { return b.gate2(gateAnd, x, y) }

// Or returns x || y.
func (b *Builder) Or(x, y Wire) Wire { return b.gate2(gateOr, x, y) }

// Xor returns x != y.
func (b *Builder) Xor(x, y Wire) Wire { return b.gate2(gateXor, x, y) }

// Mux returns sel ? hi : lo.
func (b *Builder) Mux(sel, lo, hi Wire) Wire {
	return b.Or(b.And(sel, hi), b.And(b.Not(sel), lo))
}

// MuxBus muxes two equal-width buses.
func (b *Builder) MuxBus(sel Wire, lo, hi []Wire) []Wire {
	if len(lo) != len(hi) {
		panic("synth: MuxBus width mismatch")
	}
	out := make([]Wire, len(lo))
	for i := range lo {
		out[i] = b.Mux(sel, lo[i], hi[i])
	}
	return out
}

// XorBus XORs every bit of a bus with sel (conditional bit inversion — the
// trick Fig. 8 uses for the hop-count "15-HC" path).
func (b *Builder) XorBus(sel Wire, bus []Wire) []Wire {
	out := make([]Wire, len(bus))
	for i := range bus {
		out[i] = b.Xor(sel, bus[i])
	}
	return out
}

// GreaterThan returns a > b for two equal-width unsigned buses (LSB first):
// a classic ripple comparator from the MSB down.
func (b *Builder) GreaterThan(x, y []Wire) Wire {
	if len(x) != len(y) {
		panic("synth: comparator width mismatch")
	}
	gt := WireFalse
	eq := WireTrue
	for i := len(x) - 1; i >= 0; i-- {
		bitGT := b.And(x[i], b.Not(y[i]))
		gt = b.Or(gt, b.And(eq, bitGT))
		eq = b.And(eq, b.Not(b.Xor(x[i], y[i])))
	}
	return gt
}

// Netlist is a built combinational circuit.
type Netlist struct {
	gates    []gate
	nWires   int
	inputs   map[string]Wire
	inOrder  []string
	outputs  map[string]Wire
	outOrder []string
	maxDepth int
}

// Build freezes the builder into an evaluable netlist.
func (b *Builder) Build() *Netlist {
	maxDepth := 0
	for _, name := range b.outOrder {
		if d := b.depth[b.outputs[name]]; d > maxDepth {
			maxDepth = d
		}
	}
	return &Netlist{
		gates:    b.gates,
		nWires:   b.nextWire,
		inputs:   b.inputs,
		inOrder:  b.inOrder,
		outputs:  b.outputs,
		outOrder: b.outOrder,
		maxDepth: maxDepth,
	}
}

// NumGates returns the gate count of the netlist.
func (n *Netlist) NumGates() int { return len(n.gates) }

// Depth returns the logic depth (gate levels) to the deepest output.
func (n *Netlist) Depth() int { return n.maxDepth }

// InputNames returns the primary inputs in declaration order.
func (n *Netlist) InputNames() []string { return n.inOrder }

// OutputNames returns the primary outputs in declaration order.
func (n *Netlist) OutputNames() []string { return n.outOrder }

// Eval evaluates the circuit for the given input assignment. Missing inputs
// default to false; unknown names panic.
func (n *Netlist) Eval(in map[string]bool) map[string]bool {
	vals := make([]bool, n.nWires)
	vals[WireTrue] = true
	for name, v := range in {
		w, ok := n.inputs[name]
		if !ok {
			panic("synth: unknown input " + name)
		}
		vals[w] = v
	}
	for _, g := range n.gates {
		switch g.kind {
		case gateNot:
			vals[g.out] = !vals[g.a]
		case gateAnd:
			vals[g.out] = vals[g.a] && vals[g.b]
		case gateOr:
			vals[g.out] = vals[g.a] || vals[g.b]
		case gateXor:
			vals[g.out] = vals[g.a] != vals[g.b]
		}
	}
	out := make(map[string]bool, len(n.outputs))
	for name, w := range n.outputs {
		out[name] = vals[w]
	}
	return out
}

// EvalUint evaluates the circuit with unsigned-integer convenience: each
// entry of in assigns a bus ("la" -> la0..laN) or a single input, and the
// named output bus is decoded back to an integer (missing bits are treated
// as single-bit outputs).
func (n *Netlist) EvalUint(in map[string]uint64, outBus string) uint64 {
	bits := make(map[string]bool)
	for name, v := range in {
		if w, ok := n.inputs[name]; ok && v <= 1 {
			_ = w
			bits[name] = v == 1
			continue
		}
		// Bus assignment: name0, name1, ...
		for i := 0; ; i++ {
			bit := fmt.Sprintf("%s%d", name, i)
			if _, ok := n.inputs[bit]; !ok {
				if i == 0 {
					panic("synth: unknown input or bus " + name)
				}
				break
			}
			bits[bit] = v&(1<<i) != 0
		}
	}
	out := n.Eval(bits)
	// A single named output decodes as one bit.
	if v, ok := out[outBus]; ok {
		if v {
			return 1
		}
		return 0
	}
	var val uint64
	for i := 0; ; i++ {
		bit := fmt.Sprintf("%s%d", outBus, i)
		v, ok := out[bit]
		if !ok {
			if i == 0 {
				panic("synth: unknown output bus " + outBus)
			}
			break
		}
		if v {
			val |= 1 << i
		}
	}
	return val
}
