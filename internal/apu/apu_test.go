package apu

import (
	"testing"
	"testing/quick"

	"mlnoc/internal/arb"
	"mlnoc/internal/noc"
	"mlnoc/internal/synfull"
)

func testSystem(t *testing.T, quadSide int) *System {
	t.Helper()
	sys := NewSystem(Config{QuadSide: quadSide}, 1)
	sys.Net.SetPolicy(arb.NewGlobalAge())
	return sys
}

func TestTopologyCounts(t *testing.T) {
	sys := testSystem(t, 4) // the paper's 8x8 system
	if len(sys.CUs) != 64 {
		t.Fatalf("CUs = %d, want 64", len(sys.CUs))
	}
	if len(sys.L2s) != 32 {
		t.Fatalf("L2 banks = %d, want 32", len(sys.L2s))
	}
	if len(sys.L1Is) != 16 {
		t.Fatalf("L1I caches = %d, want 16", len(sys.L1Is))
	}
	if len(sys.Dirs) != 16 {
		t.Fatalf("directories = %d, want 16", len(sys.Dirs))
	}
	if len(sys.CPUs) != 4 || len(sys.LLCs) != 4 {
		t.Fatalf("CPU clusters = %d/%d, want 4/4", len(sys.CPUs), len(sys.LLCs))
	}
	if sys.Net.Config().VCs != NumClasses {
		t.Fatalf("VCs = %d, want %d", sys.Net.Config().VCs, NumClasses)
	}
}

func TestTopologyPlacement(t *testing.T) {
	sys := testSystem(t, 4)
	// Directories on the chip-edge columns (0 and 7), L1Is in the center
	// (3 and 4) — Fig. 6b.
	for _, d := range sys.Dirs {
		x := d.Node.Router.Coord.X
		if x != 0 && x != 7 {
			t.Fatalf("directory at column %d", x)
		}
	}
	for _, l := range sys.L1Is {
		x := l.Node.Router.Coord.X
		if x != 3 && x != 4 {
			t.Fatalf("L1I at column %d", x)
		}
	}
	// No router exceeds the paper's six ports (core, memory, N, S, W, E),
	// and the CPU/LLC attach routers on the chip edge reach exactly six by
	// using their free edge port.
	for _, r := range sys.Net.Routers() {
		if r.NumPorts() > 6 {
			t.Fatalf("router %v has %d ports", r, r.NumPorts())
		}
	}
	for _, cpu := range sys.CPUs {
		if got := cpu.Node.Router.NumPorts(); got != 6 {
			t.Fatalf("CPU attach router has %d ports, want 6", got)
		}
		if !cpu.Node.Port.IsDirection() {
			t.Fatalf("CPU attached on %v, want a free direction port", cpu.Node.Port)
		}
	}
}

func TestQuadrantPrivateL2(t *testing.T) {
	sys := testSystem(t, 4)
	for q, quad := range sys.Quadrants {
		if len(quad.CUs) != 16 || len(quad.L2s) != 8 || len(quad.L1Is) != 4 || len(quad.Dirs) != 4 {
			t.Fatalf("quadrant %d composition: %d CUs %d L2 %d L1I %d Dir",
				q, len(quad.CUs), len(quad.L2s), len(quad.L1Is), len(quad.Dirs))
		}
		if quad.CPU == nil || quad.LLC == nil {
			t.Fatalf("quadrant %d missing CPU cluster", q)
		}
		// Quadrant endpoints live inside the quadrant's tile range.
		for _, cu := range quad.CUs {
			if quadrantOf(cu.Node.Router.Coord.X, cu.Node.Router.Coord.Y, 4) != q {
				t.Fatalf("CU of quadrant %d at %v", q, cu.Node.Router.Coord)
			}
		}
	}
}

func TestL1ISharing(t *testing.T) {
	sys := testSystem(t, 4)
	for _, quad := range sys.Quadrants {
		perL1I := map[*Bank]int{}
		for _, cu := range quad.CUs {
			if cu.l1i == nil {
				t.Fatal("CU without L1I")
			}
			perL1I[cu.l1i]++
		}
		// 16 CUs share 4 L1Is: exactly 4 each (Section 4.1: "shared by
		// every four CUs").
		for b, n := range perL1I {
			if n != 4 {
				t.Fatalf("L1I %v shared by %d CUs, want 4", b.Node, n)
			}
		}
	}
}

func TestMinQuadSide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("QuadSide 2 accepted (quadrants would have no L2)")
		}
	}()
	NewSystem(Config{QuadSide: 2}, 1)
}

func TestWorkloadCompletes(t *testing.T) {
	sys := testSystem(t, 3)
	model, err := synfull.ByName("dct")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(sys, Homogeneous(model), RunnerConfig{
		OpScale: 0.05, Seed: 2, MaxCycles: 300000,
	})
	if !r.Run() {
		t.Fatalf("workload did not complete; completions %v", r.Completion)
	}
	if avg, tail := r.AvgExecTime(), r.TailExecTime(); avg <= 0 || tail < avg {
		t.Fatalf("exec times avg=%v tail=%v", avg, tail)
	}
	for _, cu := range sys.CUs {
		if cu.OpsRemaining != 0 || cu.Outstanding != 0 {
			t.Fatalf("completed CU has remaining work: %d ops, %d outstanding",
				cu.OpsRemaining, cu.Outstanding)
		}
		if cu.Issued == 0 {
			t.Fatal("CU retired no operations")
		}
	}
	for _, cpu := range sys.CPUs {
		if !cpu.Done() {
			t.Fatal("CPU not done after Run")
		}
	}
}

// TestWorkloadPolicyInvariantOps: the number of operations each CU retires is
// identical under different arbitration policies — the property that makes
// policy comparisons paired.
func TestWorkloadPolicyInvariantOps(t *testing.T) {
	run := func(policy noc.Policy) []int64 {
		sys := NewSystem(Config{QuadSide: 3}, 1)
		sys.Net.SetPolicy(policy)
		model, _ := synfull.ByName("bfs")
		r := NewRunner(sys, Homogeneous(model), RunnerConfig{
			OpScale: 0.05, Seed: 7, MaxCycles: 300000,
		})
		if !r.Run() {
			t.Fatal("did not finish")
		}
		var out []int64
		for _, cu := range sys.CUs {
			out = append(out, cu.Issued)
		}
		return out
	}
	a := run(arb.NewGlobalAge())
	b := run(arb.NewRoundRobin())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("CU %d issued %d ops under GA but %d under RR", i, a[i], b[i])
		}
	}
}

func TestRunWorkloadDeterministic(t *testing.T) {
	model, _ := synfull.ByName("hotspot")
	cfg := Config{QuadSide: 3}
	rc := RunnerConfig{OpScale: 0.05, Seed: 3, MaxCycles: 300000}
	a := RunWorkload(cfg, arb.NewFIFO(), Homogeneous(model), rc)
	b := RunWorkload(cfg, arb.NewFIFO(), Homogeneous(model), rc)
	if !a.Finished || !b.Finished {
		t.Fatal("runs did not finish")
	}
	if a.Avg != b.Avg || a.Tail != b.Tail || a.Completion != b.Completion {
		t.Fatalf("same-seed runs differ: %+v vs %+v", a, b)
	}
}

func TestIdleQuadrantStops(t *testing.T) {
	sys := testSystem(t, 3)
	model, _ := synfull.ByName("matrixmul")
	r := NewRunner(sys, Homogeneous(model), RunnerConfig{
		OpScale: 0.03, Seed: 4, MaxCycles: 300000,
	})
	if !r.Run() {
		t.Fatal("did not finish")
	}
	// After completion plus drain, the whole system must be quiescent: an
	// idle quadrant generates no further traffic (Section 4.2).
	if !sys.Net.Quiescent() {
		t.Fatal("network still active after all quadrants completed")
	}
	for _, b := range sys.AllBanks() {
		if b.QueueLen() != 0 {
			t.Fatalf("%s bank still has %d queued replies", b.Label, b.QueueLen())
		}
	}
}

func TestBankBandwidthBound(t *testing.T) {
	sys := NewSystem(Config{QuadSide: 3, DirPerCycle: 1, L2PerCycle: 2}, 1)
	sys.Net.SetPolicy(arb.NewGlobalAge())
	dir := sys.Dirs[0]
	// Enqueue 5 replies all ready now.
	for i := 0; i < 5; i++ {
		dir.reply(0, sys.CUs[0].Node.ID, ClassMemResp, noc.TypeResponse, 1,
			pkt{kind: opMemData, requester: sys.CUs[0].Node.ID, via: sys.L2s[0].Node.ID})
	}
	dir.Tick(1000) // well past the service latency: all five are ready
	if got := dir.QueueLen(); got != 4 {
		t.Fatalf("dir served %d replies in one cycle, want 1 (DirPerCycle)", 5-got)
	}
}

func TestProtocolFlows(t *testing.T) {
	sys := testSystem(t, 3)
	// Force deterministic protocol paths via pre-drawn packet fields.
	cu := sys.CUs[0]
	l2 := cu.quad.L2s[0]
	dir := sys.Dirs[0]

	// L2 hit: CU -> L2 -> CU data.
	sys.send(cu.Node, l2.Node.ID, ClassGPUReq, noc.TypeRequest, ReqFlits,
		pkt{kind: opGPURead, requester: cu.Node.ID, hit: true})
	cu.Outstanding = 1
	for i := 0; i < 200 && cu.Outstanding > 0; i++ {
		for _, b := range sys.AllBanks() {
			b.Tick(sys.Net.Cycle())
		}
		sys.Net.Step()
	}
	if cu.Outstanding != 0 {
		t.Fatal("L2 hit flow did not return data to the CU")
	}

	// L2 miss: CU -> L2 -> Dir -> L2 -> CU data.
	sys.send(cu.Node, l2.Node.ID, ClassGPUReq, noc.TypeRequest, ReqFlits,
		pkt{kind: opGPURead, requester: cu.Node.ID, hit: false, dir: dir.Node.ID})
	cu.Outstanding = 1
	for i := 0; i < 500 && cu.Outstanding > 0; i++ {
		for _, b := range sys.AllBanks() {
			b.Tick(sys.Net.Cycle())
		}
		sys.Net.Step()
	}
	if cu.Outstanding != 0 {
		t.Fatal("L2 miss flow did not return data to the CU")
	}

	// Write: CU -> L2 (ack to CU) and write-through L2 -> Dir.
	before := dir.Handled
	sys.send(cu.Node, l2.Node.ID, ClassGPUReq, noc.TypeRequest, DataFlits,
		pkt{kind: opGPUWrite, requester: cu.Node.ID, dir: dir.Node.ID})
	cu.Outstanding = 1
	for i := 0; i < 500 && (cu.Outstanding > 0 || dir.Handled == before); i++ {
		for _, b := range sys.AllBanks() {
			b.Tick(sys.Net.Cycle())
		}
		sys.Net.Step()
	}
	if cu.Outstanding != 0 {
		t.Fatal("write ack did not release the window slot")
	}
	if dir.Handled == before {
		t.Fatal("write-through never reached the directory")
	}

	// Coherence: Dir probe -> CU ack -> Dir.
	before = dir.Handled
	sys.send(dir.Node, cu.Node.ID, ClassCoh, noc.TypeCoherence, ReqFlits,
		pkt{kind: opCohProbe, requester: dir.Node.ID})
	for i := 0; i < 500 && dir.Handled == before; i++ {
		for _, b := range sys.AllBanks() {
			b.Tick(sys.Net.Cycle())
		}
		sys.Net.Step()
	}
	if dir.Handled == before {
		t.Fatal("coherence ack never reached the directory")
	}

	// CPU read, LLC miss: CPU -> LLC -> Dir -> LLC -> CPU.
	cpu := sys.Quadrants[0].CPU
	sys.send(cpu.Node, cpu.quad.LLC.Node.ID, ClassCPUReq, noc.TypeRequest, ReqFlits,
		pkt{kind: opCPURead, requester: cpu.Node.ID, hit: false, dir: dir.Node.ID})
	cpu.Outstanding = 1
	for i := 0; i < 500 && cpu.Outstanding > 0; i++ {
		for _, b := range sys.AllBanks() {
			b.Tick(sys.Net.Cycle())
		}
		sys.Net.Step()
	}
	if cpu.Outstanding != 0 {
		t.Fatal("CPU LLC-miss flow did not return data")
	}
}

func TestMessageClassesDisjoint(t *testing.T) {
	// Run a short workload and assert every message's class matches its
	// protocol role.
	sys := NewSystem(Config{QuadSide: 3}, 5)
	sys.Net.SetPolicy(classCheckPolicy{t: t, inner: arb.NewGlobalAge()})
	model, _ := synfull.ByName("bfs")
	r := NewRunner(sys, Homogeneous(model), RunnerConfig{
		OpScale: 0.02, Seed: 5, MaxCycles: 200000,
	})
	r.Run()
}

// classCheckPolicy validates message class/type pairing on every contended
// arbitration.
type classCheckPolicy struct {
	t     *testing.T
	inner noc.Policy
}

func (p classCheckPolicy) Name() string { return "class-check" }

func (p classCheckPolicy) Select(ctx *noc.ArbContext, cands []noc.Candidate) int {
	for _, c := range cands {
		m := c.Msg
		ok := true
		switch m.Class {
		case ClassGPUReq, ClassMemReq, ClassCPUReq:
			ok = m.Type == noc.TypeRequest
		case ClassGPUResp, ClassMemResp, ClassCPUResp:
			ok = m.Type == noc.TypeResponse
		case ClassCoh:
			ok = m.Type == noc.TypeCoherence
		}
		if !ok {
			p.t.Errorf("class %d carries %v message", m.Class, m.Type)
		}
	}
	return p.inner.Select(ctx, cands)
}

func TestQuickQuadrantOf(t *testing.T) {
	f := func(x8, y8, s8 uint8) bool {
		s := int(s8)%6 + 3
		x, y := int(x8)%(2*s), int(y8)%(2*s)
		q := quadrantOf(x, y, s)
		wantRight := x >= s
		wantBottom := y >= s
		return (q%2 == 1) == wantRight && (q >= 2) == wantBottom
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEndpointLookup(t *testing.T) {
	sys := testSystem(t, 3)
	if _, ok := sys.Endpoint(sys.CUs[0].Node.ID).(*CU); !ok {
		t.Fatal("CU endpoint lookup failed")
	}
	if _, ok := sys.Endpoint(sys.Dirs[0].Node.ID).(*Bank); !ok {
		t.Fatal("bank endpoint lookup failed")
	}
	if _, ok := sys.Endpoint(sys.CPUs[0].Node.ID).(*CPU); !ok {
		t.Fatal("CPU endpoint lookup failed")
	}
}

func TestSystemString(t *testing.T) {
	sys := testSystem(t, 4)
	if sys.String() == "" {
		t.Fatal("empty system string")
	}
}

// TestProtocolConservation: every windowed request eventually releases its
// window slot, and read/ack response counts match the requests issued — the
// protocol-level conservation law behind completion detection.
func TestProtocolConservation(t *testing.T) {
	sys := NewSystem(Config{QuadSide: 3}, 6)
	sys.Net.SetPolicy(arb.NewRoundRobin())
	model, _ := synfull.ByName("spmv")
	r := NewRunner(sys, Homogeneous(model), RunnerConfig{
		OpScale: 0.05, Seed: 8, MaxCycles: 300000,
	})
	if !r.Run() {
		t.Fatal("did not finish")
	}
	// Every bank queue drained and every window empty (checked per CU).
	for _, cu := range sys.CUs {
		if cu.Outstanding != 0 {
			t.Fatalf("CU %v finished with %d outstanding requests", cu.Node, cu.Outstanding)
		}
	}
	for _, cpu := range sys.CPUs {
		if cpu.Outstanding != 0 {
			t.Fatalf("CPU %v finished with %d outstanding requests", cpu.Node, cpu.Outstanding)
		}
	}
	// All protocol traffic was consumed by a bank or endpoint: the NoC
	// delivered exactly what was injected.
	st := sys.Net.Stats()
	if st.Injected != st.Delivered {
		t.Fatalf("injected %d != delivered %d", st.Injected, st.Delivered)
	}
}

// TestZeroCoherenceRate: a model phase with zero coherence rate must produce
// no coherence-class traffic.
func TestZeroCoherenceRate(t *testing.T) {
	m := &synfull.Model{
		Name: "silent", Suite: "test",
		Phases: []synfull.Phase{{
			MemRatio: 0.4, WriteRatio: 0.2, L1Hit: 0.5, L2Hit: 0.5,
			CoherenceRate: 0, CPUMemRate: 0.02, LLCHit: 0.7,
			Next: []float64{1},
		}},
		PhaseLen: 100, OpsPerCU: 50, OpsPerCPU: 10, IssueWidth: 1, Window: 8,
	}
	sys := NewSystem(Config{QuadSide: 3}, 7)
	counter := &classCounter{inner: arb.NewGlobalAge()}
	sys.Net.SetPolicy(counter)
	r := NewRunner(sys, Homogeneous(m), RunnerConfig{Seed: 9, MaxCycles: 300000})
	if !r.Run() {
		t.Fatal("did not finish")
	}
	if counter.coh > 0 {
		t.Fatalf("saw %d coherence messages with zero coherence rate", counter.coh)
	}
}

type classCounter struct {
	inner noc.Policy
	coh   int
}

func (c *classCounter) Name() string { return "class-counter" }
func (c *classCounter) Select(ctx *noc.ArbContext, cands []noc.Candidate) int {
	for _, cd := range cands {
		if cd.Msg.Class == ClassCoh {
			c.coh++
		}
	}
	return c.inner.Select(ctx, cands)
}
