// Package apu models the paper's baseline APU system (Section 4.1, Fig. 6):
// a CPU+GPU chip whose GPU cluster is a 2D mesh of compute-unit tiles, each
// tile also hosting a GPU L2 bank, a shared GPU L1I cache or a coherence
// directory with its memory controller, with one CPU core and one CPU LLC
// hanging off free edge ports in every quadrant.
//
// The package implements the coherence-style message flows between those
// endpoints over seven network classes (one virtual channel each), the
// bounded outstanding-request windows that couple NoC latency to execution
// time, and a Runner that executes synfull workload instances — one per
// quadrant, as in the paper's multi-program scenario — and reports average
// and tail program execution time (Sections 4.2 and 5).
package apu

import (
	"fmt"
	"math/rand"

	"mlnoc/internal/noc"
)

// Message classes of the APU protocol. Each class travels in its own virtual
// channel; the paper's system needs seven classes for coherence (Section
// 4.1). Requests and coherence messages are 1 flit, data responses 5 flits.
const (
	// ClassGPUReq carries CU -> GPU L2 / L1I requests.
	ClassGPUReq noc.Class = iota
	// ClassGPUResp carries GPU L2 / L1I -> CU data responses.
	ClassGPUResp
	// ClassMemReq carries cache -> directory requests (L2 and LLC misses,
	// write-through traffic).
	ClassMemReq
	// ClassMemResp carries directory -> cache data responses.
	ClassMemResp
	// ClassCoh carries directory <-> CU coherence probes and acks.
	ClassCoh
	// ClassCPUReq carries CPU -> LLC requests.
	ClassCPUReq
	// ClassCPUResp carries LLC -> CPU data responses.
	ClassCPUResp

	// NumClasses is the number of message classes / virtual channels.
	NumClasses = 7
)

// Message flit sizes (Section 4.1: requests and coherence 1 flit, data 5).
const (
	ReqFlits  = 1
	DataFlits = 5
)

// Config describes an APU system.
type Config struct {
	// QuadSide is the quadrant edge length in tiles; the chip is a
	// (2*QuadSide) x (2*QuadSide) mesh. The paper's system has QuadSide 4
	// (64 CUs); the minimum is 3, which keeps at least one L2 column per
	// quadrant.
	QuadSide int
	// BufferCap is the per-VC input buffer capacity in messages.
	BufferCap int
	// L2Latency, L1ILatency, DirLatency and LLCLatency are bank service
	// latencies in cycles.
	L2Latency, L1ILatency, DirLatency, LLCLatency int64
	// L2PerCycle and DirPerCycle bound how many replies a bank may issue per
	// cycle (bank bandwidth).
	L2PerCycle, DirPerCycle int
}

func (c *Config) applyDefaults() {
	if c.QuadSide == 0 {
		c.QuadSide = 4
	}
	if c.QuadSide < 3 {
		panic("apu: QuadSide must be at least 3 (one L2 column per quadrant)")
	}
	if c.BufferCap == 0 {
		// Two-message VC buffers model flit-level input buffers that hold at
		// most a couple of data messages — the regime where arbitration
		// separates policies through HOL blocking and congestion trees.
		c.BufferCap = 2
	}
	if c.L2Latency == 0 {
		c.L2Latency = 4
	}
	if c.L1ILatency == 0 {
		c.L1ILatency = 2
	}
	if c.DirLatency == 0 {
		c.DirLatency = 30
	}
	if c.LLCLatency == 0 {
		c.LLCLatency = 8
	}
	if c.L2PerCycle == 0 {
		c.L2PerCycle = 2
	}
	if c.DirPerCycle == 0 {
		c.DirPerCycle = 2
	}
}

// Quadrant groups the endpoints of one chip quadrant. GPU L2 banks are
// private to their quadrant (Section 4.2: "cache coherence traffic does not
// cross the quadrant boundaries"), while directories are shared chip-wide.
type Quadrant struct {
	Index int
	CUs   []*CU
	L2s   []*Bank
	L1Is  []*Bank
	Dirs  []*Bank
	CPU   *CPU
	LLC   *Bank
}

// System is the assembled APU chip.
type System struct {
	Cfg Config
	Net *noc.Network

	CUs  []*CU
	L2s  []*Bank
	L1Is []*Bank
	Dirs []*Bank
	LLCs []*Bank
	CPUs []*CPU

	Quadrants [4]*Quadrant

	byNode map[noc.NodeID]any // NodeID -> *CU, *Bank or *CPU

	// params holds the active phase parameters per quadrant; the Runner
	// refreshes them every cycle.
	params [4]PhaseParams

	rng    *rand.Rand
	nextID uint64
}

// NewSystem builds the chip topology and wires every endpoint's protocol
// handler. Protocol randomness (hit draws, bank interleaving) is driven by
// the given seed. Install an arbitration policy on sys.Net before running.
func NewSystem(cfg Config, seed int64) *System {
	cfg.applyDefaults()
	s := cfg.QuadSide
	w := 2 * s
	sys := &System{
		Cfg: cfg,
		Net: noc.New(noc.Config{
			Width: w, Height: w, VCs: NumClasses, BufferCap: cfg.BufferCap,
		}),
		byNode: make(map[noc.NodeID]any),
		rng:    rand.New(rand.NewSource(seed)),
	}
	for q := 0; q < 4; q++ {
		sys.Quadrants[q] = &Quadrant{Index: q}
	}

	// Tiles: every router hosts a CU on its core port and a memory-side node
	// on its mem port. Within each quadrant, the chip-edge column hosts the
	// directories (with their memory controllers), the chip-center column
	// hosts the shared L1I caches, and the middle columns host GPU L2 banks
	// (Fig. 6b).
	for y := 0; y < w; y++ {
		for x := 0; x < w; x++ {
			q := quadrantOf(x, y, s)
			quad := sys.Quadrants[q]

			cuNode := sys.Net.AttachNode(x, y, noc.PortCore, noc.DstCore, "CU/L1D")
			cu := &CU{Node: cuNode, sys: sys, quad: quad}
			cuNode.Sink = cu.sink
			sys.CUs = append(sys.CUs, cu)
			quad.CUs = append(quad.CUs, cu)
			sys.byNode[cuNode.ID] = cu

			var kind noc.DstType
			var label string
			left := x < s
			edgeCol := (left && x == 0) || (!left && x == w-1)
			centerCol := (left && x == s-1) || (!left && x == s)
			switch {
			case edgeCol:
				kind, label = noc.DstMemory, "Dir"
			case centerCol:
				kind, label = noc.DstCache, "L1I"
			default:
				kind, label = noc.DstCache, "L2"
			}
			node := sys.Net.AttachNode(x, y, noc.PortMem, kind, label)
			bank := newBank(sys, node, label, quad)
			sys.byNode[node.ID] = bank
			switch label {
			case "Dir":
				sys.Dirs = append(sys.Dirs, bank)
				quad.Dirs = append(quad.Dirs, bank)
			case "L1I":
				sys.L1Is = append(sys.L1Is, bank)
				quad.L1Is = append(quad.L1Is, bank)
			case "L2":
				sys.L2s = append(sys.L2s, bank)
				quad.L2s = append(quad.L2s, bank)
			}
		}
	}

	// CPU clusters: each quadrant gets a CPU core node and a CPU LLC node on
	// free edge ports (north edge for the top quadrants, south edge for the
	// bottom ones), making those routers the paper's six-port routers.
	for q := 0; q < 4; q++ {
		quad := sys.Quadrants[q]
		top := q < 2
		baseX := (q % 2) * s
		y, port := 0, noc.PortNorth
		if !top {
			y, port = w-1, noc.PortSouth
		}
		cpuNode := sys.Net.AttachNode(baseX+1, y, port, noc.DstCore, "CPU")
		llcNode := sys.Net.AttachNode(baseX+2, y, port, noc.DstCache, "LLC")
		cpu := &CPU{Node: cpuNode, sys: sys, quad: quad}
		cpuNode.Sink = cpu.sink
		llc := newBank(sys, llcNode, "LLC", quad)
		sys.byNode[cpuNode.ID] = cpu
		sys.byNode[llcNode.ID] = llc
		quad.CPU, quad.LLC = cpu, llc
		sys.CPUs = append(sys.CPUs, cpu)
		sys.LLCs = append(sys.LLCs, llc)
	}

	// Each group of CUs shares one L1I within its quadrant (Section 4.1:
	// "GPU L1 instruction caches are shared by every four CUs").
	for _, quad := range sys.Quadrants {
		for i, cu := range quad.CUs {
			cu.l1i = quad.L1Is[i*len(quad.L1Is)/len(quad.CUs)]
		}
	}
	return sys
}

// AllBanks returns every cache/directory bank in the system (L2, L1I,
// directories and LLCs).
func (s *System) AllBanks() []*Bank {
	out := make([]*Bank, 0, len(s.L2s)+len(s.L1Is)+len(s.Dirs)+len(s.LLCs))
	out = append(out, s.L2s...)
	out = append(out, s.L1Is...)
	out = append(out, s.Dirs...)
	out = append(out, s.LLCs...)
	return out
}

// Endpoint returns the protocol endpoint (*CU, *Bank or *CPU) attached as the
// given node, or nil.
func (s *System) Endpoint(id noc.NodeID) any { return s.byNode[id] }

// quadrantOf maps a tile coordinate to its quadrant index:
// 0 = top-left, 1 = top-right, 2 = bottom-left, 3 = bottom-right.
func quadrantOf(x, y, quadSide int) int {
	q := 0
	if x >= quadSide {
		q++
	}
	if y >= quadSide {
		q += 2
	}
	return q
}

// String implements fmt.Stringer.
func (s *System) String() string {
	return fmt.Sprintf("apu: %dx%d mesh, %d CUs, %d L2, %d L1I, %d Dir, %d CPU clusters",
		2*s.Cfg.QuadSide, 2*s.Cfg.QuadSide,
		len(s.CUs), len(s.L2s), len(s.L1Is), len(s.Dirs), len(s.CPUs))
}
