package apu

import (
	"fmt"
	"math/rand"

	"mlnoc/internal/noc"
)

// opKind tags the protocol operation a message carries.
type opKind uint8

const (
	opGPURead  opKind = iota // CU -> L2 read request
	opGPUWrite               // CU -> L2 write-through (data)
	opIFetch                 // CU -> L1I instruction fetch
	opReadData               // L2/L1I -> CU data response
	opMemRead                // L2/LLC -> Dir read request
	opMemWrite               // L2 -> Dir write-through (data)
	opMemData                // Dir -> L2/LLC data response
	opCohProbe               // Dir -> CU coherence probe
	opCohAck                 // CU -> Dir coherence ack
	opCPURead                // CPU -> LLC read request
	opCPUData                // LLC -> CPU data response
	opWriteAck               // L2 -> CU write acknowledgement
)

// pkt is the protocol payload carried in noc.Message.Payload.
//
// Hit/miss outcomes and directory targets are pre-drawn at issue time from
// per-requester random streams and carried in the packet. This keeps the
// workload realization identical across arbitration policies (the op stream
// of each CU depends only on its op index), so policy comparisons are paired
// and differences reflect scheduling, not divergent random streams.
type pkt struct {
	kind opKind
	// requester is the node that originated the transaction (CU or CPU);
	// final data responses are routed to it.
	requester noc.NodeID
	// via is the intermediate cache (L2 or LLC) on two-level flows.
	via noc.NodeID
	// hit is the pre-drawn cache outcome at the target (L2 or LLC).
	hit bool
	// dir is the pre-chosen directory for the miss/write path.
	dir noc.NodeID
}

// PhaseParams is the per-quadrant behavioural parameter set active during the
// current workload phase; the Runner refreshes it every cycle from the
// quadrant's synfull instance.
type PhaseParams struct {
	MemRatio      float64
	WriteRatio    float64
	L1Hit         float64
	L2Hit         float64
	CoherenceRate float64
	CPUMemRate    float64
	LLCHit        float64
}

// send constructs and injects a protocol message at the from node. Messages
// come from the network's freelist: sinks extract the pkt payload by value
// and never retain the *Message, so recycling at delivery is safe.
func (s *System) send(from *noc.Node, to noc.NodeID, class noc.Class, typ noc.MsgType, flits int, p pkt) {
	s.nextID++
	m := s.Net.AllocMessage()
	m.ID = s.nextID
	m.Dst = to
	m.Class = class
	m.Type = typ
	m.SizeFlits = flits
	m.Payload = p
	from.Inject(m)
}

// timedMsg is a bank reply awaiting its service latency.
type timedMsg struct {
	ready int64
	to    noc.NodeID
	class noc.Class
	typ   noc.MsgType
	flits int
	p     pkt
}

// Bank is a cache or directory endpoint: it services incoming protocol
// messages after a fixed latency, bounded by a per-cycle reply bandwidth.
type Bank struct {
	Node  *noc.Node
	Label string

	sys  *System
	quad *Quadrant

	latency  int64
	perCycle int
	queue    []timedMsg

	// Handled counts protocol messages received by the bank.
	Handled int64
}

func newBank(sys *System, node *noc.Node, label string, quad *Quadrant) *Bank {
	b := &Bank{Node: node, Label: label, sys: sys, quad: quad}
	switch label {
	case "L2":
		b.latency, b.perCycle = sys.Cfg.L2Latency, sys.Cfg.L2PerCycle
	case "L1I":
		b.latency, b.perCycle = sys.Cfg.L1ILatency, sys.Cfg.L2PerCycle
	case "Dir":
		b.latency, b.perCycle = sys.Cfg.DirLatency, sys.Cfg.DirPerCycle
	case "LLC":
		b.latency, b.perCycle = sys.Cfg.LLCLatency, sys.Cfg.L2PerCycle
	default:
		panic("apu: unknown bank label " + label)
	}
	node.Sink = b.sink
	return b
}

func (b *Bank) reply(now int64, to noc.NodeID, class noc.Class, typ noc.MsgType, flits int, p pkt) {
	b.queue = append(b.queue, timedMsg{
		ready: now + b.latency, to: to, class: class, typ: typ, flits: flits, p: p,
	})
}

// sink handles a protocol message arriving at the bank.
func (b *Bank) sink(now int64, m *noc.Message) {
	b.Handled++
	p, ok := m.Payload.(pkt)
	if !ok {
		panic(fmt.Sprintf("apu: %s bank received non-protocol %s", b.Label, m))
	}
	switch p.kind {
	case opGPURead: // at L2
		if p.hit {
			b.reply(now, p.requester, ClassGPUResp, noc.TypeResponse, DataFlits,
				pkt{kind: opReadData, requester: p.requester})
			return
		}
		b.reply(now, p.dir, ClassMemReq, noc.TypeRequest, ReqFlits,
			pkt{kind: opMemRead, requester: p.requester, via: b.Node.ID})
	case opGPUWrite: // at L2: write-through to memory, ack the CU
		b.reply(now, p.dir, ClassMemReq, noc.TypeRequest, DataFlits,
			pkt{kind: opMemWrite, requester: p.requester, via: b.Node.ID})
		b.reply(now, p.requester, ClassGPUResp, noc.TypeResponse, ReqFlits,
			pkt{kind: opWriteAck, requester: p.requester})
	case opIFetch: // at L1I
		b.reply(now, p.requester, ClassGPUResp, noc.TypeResponse, DataFlits,
			pkt{kind: opReadData, requester: p.requester})
	case opMemRead: // at Dir
		b.reply(now, p.via, ClassMemResp, noc.TypeResponse, DataFlits,
			pkt{kind: opMemData, requester: p.requester, via: p.via})
	case opMemWrite, opCohAck: // absorbed at Dir
	case opMemData:
		switch b.Label {
		case "L2": // fill, then forward data to the requesting CU
			b.reply(now, p.requester, ClassGPUResp, noc.TypeResponse, DataFlits,
				pkt{kind: opReadData, requester: p.requester})
		case "LLC": // fill, then forward data to the CPU
			b.reply(now, p.requester, ClassCPUResp, noc.TypeResponse, DataFlits,
				pkt{kind: opCPUData, requester: p.requester})
		default:
			panic(fmt.Sprintf("apu: %s bank received memory data", b.Label))
		}
	case opCPURead: // at LLC
		if p.hit {
			b.reply(now, p.requester, ClassCPUResp, noc.TypeResponse, DataFlits,
				pkt{kind: opCPUData, requester: p.requester})
			return
		}
		b.reply(now, p.dir, ClassMemReq, noc.TypeRequest, ReqFlits,
			pkt{kind: opMemRead, requester: p.requester, via: b.Node.ID})
	default:
		panic(fmt.Sprintf("apu: %s bank cannot handle op %d", b.Label, p.kind))
	}
}

// Tick injects replies whose service latency has elapsed, up to the bank's
// per-cycle bandwidth. Call once per cycle before Network.Step.
func (b *Bank) Tick(now int64) {
	sent := 0
	for len(b.queue) > 0 && b.queue[0].ready <= now && sent < b.perCycle {
		t := b.queue[0]
		copy(b.queue, b.queue[1:])
		b.queue = b.queue[:len(b.queue)-1]
		b.sys.send(b.Node, t.to, t.class, t.typ, t.flits, t.p)
		sent++
	}
}

// QueueLen returns the number of replies awaiting service.
func (b *Bank) QueueLen() int { return len(b.queue) }

// CU is one GPU compute unit with its private L1D. It retires OpsRemaining
// operations; memory reads and writes occupy its outstanding-request window,
// so slow responses stall issue — the mechanism that turns NoC latency into
// execution time.
type CU struct {
	Node *noc.Node

	sys  *System
	quad *Quadrant
	l1i  *Bank

	OpsRemaining int64
	Outstanding  int
	Window       int
	IssueWidth   int
	// IFetchRate is the per-cycle probability of an instruction fetch to the
	// CU's shared L1I.
	IFetchRate float64

	// DoneAt is the completion cycle, or -1 while running.
	DoneAt int64
	// Stalls counts cycles in which issue stopped on a full window.
	Stalls int64
	// Issued counts operations retired.
	Issued int64

	// opRNG drives per-op draws (a fixed number per op, indexed by op order)
	// and cycRNG drives per-cycle draws (ifetch, coherence); splitting the
	// streams keeps the workload identical across arbitration policies.
	opRNG  *rand.Rand
	cycRNG *rand.Rand

	pending *cuOp
}

// cuOp is one drawn-but-not-yet-issued operation.
type cuOp struct {
	kind opKind // opGPURead, opGPUWrite, or opIFetch sentinel for compute
	l2   *Bank
	dir  *Bank
	hit  bool
	mem  bool // false = compute op
}

// drawOp consumes a fixed number of random draws and materializes the CU's
// next operation under the active phase parameters.
func (c *CU) drawOp(params *PhaseParams) *cuOp {
	fMem := c.opRNG.Float64()
	fWrite := c.opRNG.Float64()
	fL1 := c.opRNG.Float64()
	fL2 := c.opRNG.Float64()
	l2 := c.quad.L2s[c.opRNG.Intn(len(c.quad.L2s))]
	dir := c.sys.Dirs[c.opRNG.Intn(len(c.sys.Dirs))]

	op := &cuOp{l2: l2, dir: dir, hit: fL2 < params.L2Hit}
	if fMem >= params.MemRatio {
		return op // compute op
	}
	op.mem = true
	if fWrite < params.WriteRatio {
		op.kind = opGPUWrite
		return op
	}
	if fL1 < params.L1Hit {
		op.mem = false // L1D hit: no traffic, retires like a compute op
		return op
	}
	op.kind = opGPURead
	return op
}

// Done reports whether the CU has retired all its work and drained its
// window.
func (c *CU) Done() bool { return c.DoneAt >= 0 }

// Tick issues up to IssueWidth operations and the cycle's background traffic
// (instruction fetches, coherence). Call once per cycle until done.
func (c *CU) Tick(now int64, params *PhaseParams) {
	if c.OpsRemaining <= 0 {
		if c.Outstanding == 0 && c.DoneAt < 0 {
			c.DoneAt = now
		}
		return
	}
	for i := 0; i < c.IssueWidth && c.OpsRemaining > 0; i++ {
		if c.pending == nil {
			c.pending = c.drawOp(params)
		}
		op := c.pending
		if op.mem {
			// Reads and write-through writes both occupy a window slot: the
			// write models a bounded write/coalescing buffer released by the
			// L2's ack; without the bound, fire-and-forget writes flood the
			// NoC unrealistically.
			if c.Outstanding >= c.Window {
				c.Stalls++
				break // in-order issue: the stalled op blocks the rest
			}
			flits := ReqFlits
			if op.kind == opGPUWrite {
				flits = DataFlits
			}
			c.sys.send(c.Node, op.l2.Node.ID, ClassGPUReq, noc.TypeRequest, flits,
				pkt{kind: op.kind, requester: c.Node.ID, hit: op.hit, dir: op.dir.Node.ID})
			c.Outstanding++
		}
		c.pending = nil
		c.OpsRemaining--
		c.Issued++
	}
	// Per-cycle background draws: always the same three draws per active
	// cycle so the stream stays aligned across policies.
	fIF := c.cycRNG.Float64()
	fCoh := c.cycRNG.Float64()
	dir := c.sys.Dirs[c.cycRNG.Intn(len(c.sys.Dirs))]
	if fIF < c.IFetchRate {
		c.sys.send(c.Node, c.l1i.Node.ID, ClassGPUReq, noc.TypeRequest, ReqFlits,
			pkt{kind: opIFetch, requester: c.Node.ID})
	}
	if fCoh < params.CoherenceRate {
		// A directory probes this CU; the CU acks on receipt.
		c.sys.send(dir.Node, c.Node.ID, ClassCoh, noc.TypeCoherence, ReqFlits,
			pkt{kind: opCohProbe, requester: dir.Node.ID})
	}
}

// sink handles responses and coherence probes arriving at the CU.
func (c *CU) sink(now int64, m *noc.Message) {
	p, ok := m.Payload.(pkt)
	if !ok {
		return // foreign message (e.g. raw synthetic traffic in tests)
	}
	switch p.kind {
	case opReadData:
		if m.Class == ClassGPUResp && m.Type == noc.TypeResponse {
			// Instruction-fetch data does not occupy the window; only read
			// responses for windowed requests decrement it. IFetch replies
			// come from L1I banks, window reads from L2 banks; both use
			// opReadData, so distinguish by source kind.
			if src, isBank := c.sys.byNode[m.Src].(*Bank); isBank && src.Label == "L2" {
				if c.Outstanding > 0 {
					c.Outstanding--
				}
			}
		}
	case opWriteAck:
		if c.Outstanding > 0 {
			c.Outstanding--
		}
	case opCohProbe:
		c.sys.send(c.Node, m.Src, ClassCoh, noc.TypeCoherence, ReqFlits,
			pkt{kind: opCohAck, requester: c.Node.ID})
	}
}

// CPU is one quadrant's CPU cluster: it issues OpsRemaining memory operations
// to its LLC through a bounded window.
type CPU struct {
	Node *noc.Node

	sys  *System
	quad *Quadrant

	OpsRemaining int64
	Outstanding  int
	Window       int

	// DoneAt is the completion cycle, or -1 while running.
	DoneAt int64
	Stalls int64

	// rateRNG is drawn once per active cycle; opRNG twice per issued op.
	rateRNG *rand.Rand
	opRNG   *rand.Rand

	wantIssue bool
}

// Done reports whether the CPU finished its operations.
func (c *CPU) Done() bool { return c.DoneAt >= 0 }

// Tick issues at most one memory operation per cycle with probability
// params.CPUMemRate. The Bernoulli draw happens every active cycle and the
// op's cache outcome is drawn per issued op, keeping both streams aligned
// across policies.
func (c *CPU) Tick(now int64, params *PhaseParams) {
	if c.OpsRemaining <= 0 {
		if c.Outstanding == 0 && c.DoneAt < 0 {
			c.DoneAt = now
		}
		return
	}
	if c.rateRNG.Float64() < params.CPUMemRate {
		c.wantIssue = true
	}
	if !c.wantIssue {
		return
	}
	if c.Outstanding >= c.Window {
		c.Stalls++
		return
	}
	hit := c.opRNG.Float64() < params.LLCHit
	dir := c.sys.Dirs[c.opRNG.Intn(len(c.sys.Dirs))]
	c.sys.send(c.Node, c.quad.LLC.Node.ID, ClassCPUReq, noc.TypeRequest, ReqFlits,
		pkt{kind: opCPURead, requester: c.Node.ID, hit: hit, dir: dir.Node.ID})
	c.Outstanding++
	c.OpsRemaining--
	c.wantIssue = false
}

// sink handles LLC responses arriving at the CPU.
func (c *CPU) sink(now int64, m *noc.Message) {
	if p, ok := m.Payload.(pkt); ok && p.kind == opCPUData {
		if c.Outstanding > 0 {
			c.Outstanding--
		}
	}
}
