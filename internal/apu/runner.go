package apu

import (
	"fmt"
	"math/rand"

	"mlnoc/internal/fault"
	"mlnoc/internal/noc"
	"mlnoc/internal/obs"
	"mlnoc/internal/stats"
	"mlnoc/internal/synfull"
	"mlnoc/internal/trace"
)

// RunnerConfig parameterizes a workload execution.
type RunnerConfig struct {
	// OpScale multiplies every model's operation counts, shrinking or
	// growing program length (default 1.0). Benchmarks use < 1 to keep the
	// full policy sweep fast; the shape of the results is insensitive to it.
	OpScale float64
	// CPUWindow is the CPU outstanding-request bound (default 8).
	CPUWindow int
	// IFetchRate is the per-CU per-cycle instruction fetch probability
	// (default 0.01).
	IFetchRate float64
	// MaxCycles bounds Run (default 2,000,000).
	MaxCycles int64
	// Seed drives all workload randomness.
	Seed int64
	// Obs, if non-nil, attaches an observability suite (metrics collector
	// and optional watchdog) to the run's network; RunWorkload returns it in
	// ExecResult.Obs.
	Obs *obs.SuiteConfig
	// Faults, if non-nil, equips the run's network with the fault scenario
	// (fault-aware table routing plus injector) before the workload starts.
	// Scenarios built from Spec.KillFraction preserve mesh connectivity, so
	// the coherence protocol keeps its liveness under link kills.
	Faults *fault.Spec
	// Trace, if non-nil, attaches a per-message lifecycle tracer to the
	// run's network; RunWorkload returns it in ExecResult.Trace.
	Trace *trace.Config
}

func (c *RunnerConfig) applyDefaults() {
	if c.OpScale == 0 {
		c.OpScale = 1
	}
	if c.CPUWindow == 0 {
		c.CPUWindow = 8
	}
	if c.IFetchRate == 0 {
		c.IFetchRate = 0.01
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 2_000_000
	}
}

// Runner executes one synfull workload instance per quadrant — the paper's
// multi-program scenario (Section 4.2) — and records each instance's
// completion time.
type Runner struct {
	Sys       *System
	Cfg       RunnerConfig
	Instances [4]*synfull.Instance

	// Completion[q] is the cycle at which quadrant q's application finished,
	// or -1 while running.
	Completion [4]int64

	banks []*Bank
}

// NewRunner prepares a runner executing models[q] in quadrant q. Pass four
// copies of the same model for the paper's homogeneous scenario (Figs. 9-10)
// or a Fig. 11 mix.
func NewRunner(sys *System, models [4]*synfull.Model, cfg RunnerConfig) *Runner {
	cfg.applyDefaults()
	r := &Runner{
		Sys:   sys,
		Cfg:   cfg,
		banks: sys.AllBanks(),
	}
	for q := 0; q < 4; q++ {
		m := models[q]
		r.Instances[q] = synfull.NewInstance(m, cfg.Seed+int64(q)*7919)
		r.Completion[q] = -1
		quad := sys.Quadrants[q]
		for ci, cu := range quad.CUs {
			cu.OpsRemaining = scaleOps(m.OpsPerCU, cfg.OpScale)
			cu.Window = m.Window
			cu.IssueWidth = m.IssueWidth
			cu.IFetchRate = cfg.IFetchRate
			cu.DoneAt = -1
			cu.pending = nil
			base := cfg.Seed*1_000_003 + int64(q)*4096 + int64(ci)
			cu.opRNG = rand.New(rand.NewSource(base*2 + 1))
			cu.cycRNG = rand.New(rand.NewSource(base*2 + 2))
		}
		quad.CPU.OpsRemaining = scaleOps(m.OpsPerCPU, cfg.OpScale)
		quad.CPU.Window = cfg.CPUWindow
		quad.CPU.DoneAt = -1
		quad.CPU.wantIssue = false
		quad.CPU.rateRNG = rand.New(rand.NewSource(cfg.Seed*1_000_003 + 9001 + int64(q)))
		quad.CPU.opRNG = rand.New(rand.NewSource(cfg.Seed*1_000_003 + 9101 + int64(q)))
	}
	return r
}

func scaleOps(ops int64, scale float64) int64 {
	v := int64(float64(ops) * scale)
	if v < 1 {
		v = 1
	}
	return v
}

// Done reports whether all four instances have completed.
func (r *Runner) Done() bool {
	for _, c := range r.Completion {
		if c < 0 {
			return false
		}
	}
	return true
}

// Step advances the whole system by one cycle: workload phase machines, CU
// and CPU issue, coherence generation, bank service, then the NoC.
func (r *Runner) Step() {
	now := r.Sys.Net.Cycle()
	for q := 0; q < 4; q++ {
		if r.Completion[q] >= 0 {
			continue // idle quadrant (Section 4.2)
		}
		inst := r.Instances[q]
		inst.Tick(now)
		ph := inst.Cur()
		params := PhaseParams{
			MemRatio:      ph.MemRatio,
			WriteRatio:    ph.WriteRatio,
			L1Hit:         ph.L1Hit,
			L2Hit:         ph.L2Hit,
			CoherenceRate: ph.CoherenceRate,
			CPUMemRate:    ph.CPUMemRate,
			LLCHit:        ph.LLCHit,
		}
		r.Sys.params[q] = params
		quad := r.Sys.Quadrants[q]

		done := true
		for _, cu := range quad.CUs {
			cu.Tick(now, &params)
			if !cu.Done() {
				done = false
			}
		}
		quad.CPU.Tick(now, &params)
		if !quad.CPU.Done() {
			done = false
		}
		if done {
			r.Completion[q] = now
		}
	}
	for _, b := range r.banks {
		b.Tick(now)
	}
	r.Sys.Net.Step()
}

// Run steps until every instance completes or Cfg.MaxCycles cycles elapse,
// then lets residual traffic drain. It reports whether all completed.
func (r *Runner) Run() bool {
	for i := int64(0); i < r.Cfg.MaxCycles && !r.Done(); i++ {
		r.Step()
	}
	done := r.Done()
	r.Sys.Net.Drain(10_000)
	return done
}

// AvgExecTime is the mean completion time across the four instances (the
// Fig. 9 metric). It panics if an instance has not finished.
func (r *Runner) AvgExecTime() float64 {
	var xs [4]float64
	for q, c := range r.Completion {
		if c < 0 {
			panic(fmt.Sprintf("apu: quadrant %d did not complete", q))
		}
		xs[q] = float64(c)
	}
	return stats.Mean(xs[:])
}

// TailExecTime is the completion time of the slowest instance (the Fig. 10
// metric).
func (r *Runner) TailExecTime() float64 {
	var xs [4]float64
	for q, c := range r.Completion {
		if c < 0 {
			panic(fmt.Sprintf("apu: quadrant %d did not complete", q))
		}
		xs[q] = float64(c)
	}
	return stats.Max(xs[:])
}

// ExecResult bundles the execution-time metrics of one run.
type ExecResult struct {
	Avg, Tail  float64
	Completion [4]int64
	AvgLatency float64 // mean NoC message latency during the run
	Cycles     int64
	Finished   bool
	// Obs is the observability suite attached to the run, non-nil when
	// RunnerConfig.Obs was set.
	Obs *obs.Suite
	// Faults holds the run's fault counters, non-nil when RunnerConfig.Faults
	// was set.
	Faults *fault.Stats
	// Trace is the message tracer attached to the run, non-nil when
	// RunnerConfig.Trace was set.
	Trace *trace.Tracer
}

// RunWorkload is the one-call experiment helper: build a system with the
// given config and policy, execute models (all four quadrants), and report
// execution times. Homogeneous runs pass the same model four times.
func RunWorkload(sysCfg Config, policy noc.Policy, models [4]*synfull.Model, runCfg RunnerConfig) ExecResult {
	sys := NewSystem(sysCfg, runCfg.Seed+1)
	sys.Net.SetPolicy(policy)
	if oc, ok := policy.(interface{ OnCycle(*noc.Network) }); ok {
		sys.Net.OnCycle = oc.OnCycle
	}
	var inj *fault.Injector
	if runCfg.Faults != nil {
		var err error
		inj, err = runCfg.Faults.Equip(sys.Net)
		if err != nil {
			panic(fmt.Sprintf("apu: invalid fault spec: %v", err))
		}
	}
	var suite *obs.Suite
	if runCfg.Obs != nil {
		// Attach after the policy's OnCycle hook so samples and watchdog
		// scans observe the fully arbitrated cycle.
		suite = obs.Attach(sys.Net, *runCfg.Obs)
	}
	var tr *trace.Tracer
	if runCfg.Trace != nil {
		tr = trace.Attach(sys.Net, *runCfg.Trace)
	}
	r := NewRunner(sys, models, runCfg)
	finished := r.Run()
	res := ExecResult{
		Completion: r.Completion,
		AvgLatency: sys.Net.Stats().Latency.Mean(),
		Cycles:     sys.Net.Cycle(),
		Finished:   finished,
		Obs:        suite,
		Trace:      tr,
	}
	if inj != nil {
		fs := inj.Stats()
		res.Faults = &fs
	}
	if finished {
		res.Avg = r.AvgExecTime()
		res.Tail = r.TailExecTime()
	}
	return res
}

// Homogeneous returns a [4]*Model with the same model in every quadrant.
func Homogeneous(m *synfull.Model) [4]*synfull.Model {
	return [4]*synfull.Model{m, m, m, m}
}
