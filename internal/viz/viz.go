// Package viz renders experiment results as plain text: shaded ASCII
// heatmaps (for the paper's Figs. 4 and 7 weight visualizations), aligned
// result tables, series tables for training curves, and CSV export.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// shades orders cells from lightest to darkest, mirroring the paper's
// "darker pixel = higher magnitude" convention.
var shades = []byte(" .:-=+*#%@")

// shade maps v in [0, max] to a shade character.
func shade(v, max float64) byte {
	if max <= 0 || math.IsNaN(v) {
		return shades[0]
	}
	i := int(v / max * float64(len(shades)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(shades) {
		i = len(shades) - 1
	}
	return shades[i]
}

// Heatmap renders a shaded grid with row and column labels. Cell magnitudes
// are normalized over the observed [min |v|, max |v|] range — not against the
// maximum alone — so matrices whose magnitudes cluster in a narrow band (e.g.
// trained weight rows hovering around one value) still show contrast.
// Degenerate matrices never divide by zero: an all-zero matrix renders blank
// and an all-equal non-zero matrix (including all-negative ones) renders
// uniformly darkest. Column labels are grouped: consecutive labels sharing
// the prefix before the last '.' are printed once.
func Heatmap(rowLabels, colLabels []string, values [][]float64) string {
	if len(values) == 0 {
		return "(empty heatmap)\n"
	}
	minAbs, maxAbs := math.Inf(1), 0.0
	for _, row := range values {
		for _, v := range row {
			a := math.Abs(v)
			if math.IsNaN(a) {
				continue
			}
			if a > maxAbs {
				maxAbs = a
			}
			if a < minAbs {
				minAbs = a
			}
		}
	}
	if math.IsInf(minAbs, 1) {
		minAbs = 0
	}
	labelW := 0
	for _, l := range rowLabels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}

	var b strings.Builder
	// Column group header: one segment per port prefix.
	b.WriteString(strings.Repeat(" ", labelW+2))
	i := 0
	for i < len(colLabels) {
		prefix := groupPrefix(colLabels[i])
		j := i
		for j < len(colLabels) && groupPrefix(colLabels[j]) == prefix {
			j++
		}
		seg := prefix
		width := j - i
		if len(seg) > width {
			seg = seg[:width]
		}
		b.WriteString(seg)
		b.WriteString(strings.Repeat(" ", width-len(seg)))
		i = j
	}
	b.WriteByte('\n')

	for r, row := range values {
		label := ""
		if r < len(rowLabels) {
			label = rowLabels[r]
		}
		fmt.Fprintf(&b, "%-*s |", labelW, label)
		for _, v := range row {
			b.WriteByte(shadeNorm(math.Abs(v), minAbs, maxAbs))
		}
		b.WriteString("|\n")
	}
	if maxAbs > 0 && maxAbs-minAbs <= 0 {
		fmt.Fprintf(&b, "%-*s  scale: uniform magnitude %.4f\n", labelW, "", maxAbs)
	} else {
		fmt.Fprintf(&b, "%-*s  scale: ' '=%.4f .. '@'=%.4f\n", labelW, "", minAbs, maxAbs)
	}
	return b.String()
}

// shadeNorm maps magnitude a onto the shade ramp normalized over the observed
// magnitude range [minAbs, maxAbs]. Degenerate ranges are explicit rather
// than divisions by zero: no observed magnitude (maxAbs <= 0) renders blank,
// a zero-width range of non-zero magnitudes renders darkest.
func shadeNorm(a, minAbs, maxAbs float64) byte {
	if math.IsNaN(a) || maxAbs <= 0 {
		return shades[0]
	}
	span := maxAbs - minAbs
	if span <= 0 {
		return shades[len(shades)-1]
	}
	return shade(a-minAbs, span)
}

func groupPrefix(label string) string {
	if i := strings.LastIndexByte(label, '.'); i >= 0 {
		return label[:i]
	}
	return label
}

// HeatmapCSV renders the grid as CSV with labels.
func HeatmapCSV(rowLabels, colLabels []string, values [][]float64) string {
	var b strings.Builder
	b.WriteString("feature")
	for _, c := range colLabels {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for r, row := range values {
		label := ""
		if r < len(rowLabels) {
			label = rowLabels[r]
		}
		b.WriteString(label)
		for _, v := range row {
			fmt.Fprintf(&b, ",%.6f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table renders rows under headers with aligned columns.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Series renders named series over a shared x-axis as an aligned table —
// the textual form of the paper's line plots (Figs. 12 and 13).
func Series(xName string, xs []string, names []string, series [][]float64) string {
	headers := append([]string{xName}, names...)
	rows := make([][]string, len(xs))
	for i, x := range xs {
		row := []string{x}
		for _, s := range series {
			if i < len(s) {
				row = append(row, fmt.Sprintf("%.2f", s[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows[i] = row
	}
	return Table(headers, rows)
}

// Bar renders a labelled horizontal bar chart of values (one row per label),
// scaled so the largest value spans width characters.
func Bar(labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	maxV, labelW := 0.0, 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(width))
		}
		fmt.Fprintf(&b, "%-*s |%s %.3f\n", labelW, labels[i], strings.Repeat("#", n), v)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CSV renders headers and rows as comma-separated values. Cells containing
// commas or quotes are quoted.
func CSV(headers []string, rows [][]string) string {
	var b strings.Builder
	writeCSVRow(&b, headers)
	for _, r := range rows {
		writeCSVRow(&b, r)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// MatrixCSV renders a labelled numeric matrix as CSV.
func MatrixCSV(rowName string, rowLabels, colLabels []string, m [][]float64) string {
	headers := append([]string{rowName}, colLabels...)
	rows := make([][]string, len(rowLabels))
	for i, rl := range rowLabels {
		cells := []string{rl}
		for _, v := range m[i] {
			cells = append(cells, fmt.Sprintf("%g", v))
		}
		rows[i] = cells
	}
	return CSV(headers, rows)
}
