package viz

import (
	"strings"
	"testing"
)

func TestHeatmapRendering(t *testing.T) {
	rows := []string{"local age", "hop count"}
	cols := []string{"core.0", "core.1", "core.2", "core.3", "west.0", "west.1", "west.2", "west.3"}
	vals := [][]float64{
		{0.9, 0.1, 0.5, 0.3, 0.2, 0.6, 0.4, 0.8},
		{0, -0.9, 0.2, 0.1, 0.7, 0.3, 0.5, 0.2},
	}
	out := Heatmap(rows, cols, vals)
	if !strings.Contains(out, "local age") || !strings.Contains(out, "hop count") {
		t.Fatalf("missing row labels:\n%s", out)
	}
	if !strings.Contains(out, "core") || !strings.Contains(out, "west") {
		t.Fatalf("missing column groups:\n%s", out)
	}
	// Magnitude 0.9 maps to the darkest shade; magnitude 0 to blank.
	if !strings.Contains(out, "@") {
		t.Fatalf("max value not darkest:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Each data line has exactly len(cols) cells between the pipes.
	for _, l := range lines {
		if i := strings.IndexByte(l, '|'); i >= 0 {
			j := strings.LastIndexByte(l, '|')
			if j-i-1 != len(cols) {
				t.Fatalf("row width %d, want %d: %q", j-i-1, len(cols), l)
			}
		}
	}
}

func TestHeatmapEmpty(t *testing.T) {
	if out := Heatmap(nil, nil, nil); !strings.Contains(out, "empty") {
		t.Fatalf("empty heatmap rendering: %q", out)
	}
}

func TestHeatmapCSV(t *testing.T) {
	out := HeatmapCSV([]string{"r1"}, []string{"a", "b"}, [][]float64{{1, 2}})
	want := "feature,a,b\nr1,1.000000,2.000000\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"a", "1"},
		{"long-name", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	// All "value" entries start in the same column.
	col := strings.Index(lines[0], "value")
	if col < 0 {
		t.Fatal("header missing")
	}
	if lines[2][col] != '1' || lines[3][col] != '2' {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestSeries(t *testing.T) {
	out := Series("epoch", []string{"1", "2"}, []string{"a", "b"},
		[][]float64{{1.5, 2.5}, {3.5}})
	if !strings.Contains(out, "epoch") || !strings.Contains(out, "1.50") {
		t.Fatalf("series rendering:\n%s", out)
	}
	// Short series pad with "-".
	if !strings.Contains(out, "-") {
		t.Fatalf("missing padding for short series:\n%s", out)
	}
}

func TestBar(t *testing.T) {
	out := Bar([]string{"x", "yy"}, []float64{2, 4}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("bar lines = %d", len(lines))
	}
	if c1, c2 := strings.Count(lines[0], "#"), strings.Count(lines[1], "#"); c2 != 10 || c1 != 5 {
		t.Fatalf("bar lengths %d/%d, want 5/10:\n%s", c1, c2, out)
	}
}

func TestShadeBounds(t *testing.T) {
	if shade(0, 1) != ' ' {
		t.Fatal("zero not blank")
	}
	if shade(1, 1) != '@' {
		t.Fatal("max not darkest")
	}
	if shade(5, 0) != ' ' { // degenerate max
		t.Fatal("degenerate max not blank")
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]string{"a", "b"}, [][]string{{"1", "x,y"}, {"2", `q"z`}})
	want := "a,b\n1,\"x,y\"\n2,\"q\"\"z\"\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

func TestMatrixCSV(t *testing.T) {
	out := MatrixCSV("w", []string{"r1"}, []string{"c1", "c2"}, [][]float64{{1.5, 2}})
	want := "w,c1,c2\nr1,1.5,2\n"
	if out != want {
		t.Fatalf("MatrixCSV = %q, want %q", out, want)
	}
}
