package viz

import (
	"math"
	"strings"
	"testing"
)

func TestHeatmapRendering(t *testing.T) {
	rows := []string{"local age", "hop count"}
	cols := []string{"core.0", "core.1", "core.2", "core.3", "west.0", "west.1", "west.2", "west.3"}
	vals := [][]float64{
		{0.9, 0.1, 0.5, 0.3, 0.2, 0.6, 0.4, 0.8},
		{0, -0.9, 0.2, 0.1, 0.7, 0.3, 0.5, 0.2},
	}
	out := Heatmap(rows, cols, vals)
	if !strings.Contains(out, "local age") || !strings.Contains(out, "hop count") {
		t.Fatalf("missing row labels:\n%s", out)
	}
	if !strings.Contains(out, "core") || !strings.Contains(out, "west") {
		t.Fatalf("missing column groups:\n%s", out)
	}
	// Magnitude 0.9 maps to the darkest shade; magnitude 0 to blank.
	if !strings.Contains(out, "@") {
		t.Fatalf("max value not darkest:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Each data line has exactly len(cols) cells between the pipes.
	for _, l := range lines {
		if i := strings.IndexByte(l, '|'); i >= 0 {
			j := strings.LastIndexByte(l, '|')
			if j-i-1 != len(cols) {
				t.Fatalf("row width %d, want %d: %q", j-i-1, len(cols), l)
			}
		}
	}
}

func TestHeatmapEmpty(t *testing.T) {
	if out := Heatmap(nil, nil, nil); !strings.Contains(out, "empty") {
		t.Fatalf("empty heatmap rendering: %q", out)
	}
}

func TestHeatmapCSV(t *testing.T) {
	out := HeatmapCSV([]string{"r1"}, []string{"a", "b"}, [][]float64{{1, 2}})
	want := "feature,a,b\nr1,1.000000,2.000000\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"a", "1"},
		{"long-name", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	// All "value" entries start in the same column.
	col := strings.Index(lines[0], "value")
	if col < 0 {
		t.Fatal("header missing")
	}
	if lines[2][col] != '1' || lines[3][col] != '2' {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestSeries(t *testing.T) {
	out := Series("epoch", []string{"1", "2"}, []string{"a", "b"},
		[][]float64{{1.5, 2.5}, {3.5}})
	if !strings.Contains(out, "epoch") || !strings.Contains(out, "1.50") {
		t.Fatalf("series rendering:\n%s", out)
	}
	// Short series pad with "-".
	if !strings.Contains(out, "-") {
		t.Fatalf("missing padding for short series:\n%s", out)
	}
}

func TestBar(t *testing.T) {
	out := Bar([]string{"x", "yy"}, []float64{2, 4}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("bar lines = %d", len(lines))
	}
	if c1, c2 := strings.Count(lines[0], "#"), strings.Count(lines[1], "#"); c2 != 10 || c1 != 5 {
		t.Fatalf("bar lengths %d/%d, want 5/10:\n%s", c1, c2, out)
	}
}

func TestShadeBounds(t *testing.T) {
	if shade(0, 1) != ' ' {
		t.Fatal("zero not blank")
	}
	if shade(1, 1) != '@' {
		t.Fatal("max not darkest")
	}
	if shade(5, 0) != ' ' { // degenerate max
		t.Fatal("degenerate max not blank")
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]string{"a", "b"}, [][]string{{"1", "x,y"}, {"2", `q"z`}})
	want := "a,b\n1,\"x,y\"\n2,\"q\"\"z\"\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

func TestMatrixCSV(t *testing.T) {
	out := MatrixCSV("w", []string{"r1"}, []string{"c1", "c2"}, [][]float64{{1.5, 2}})
	want := "w,c1,c2\nr1,1.5,2\n"
	if out != want {
		t.Fatalf("MatrixCSV = %q, want %q", out, want)
	}
}

// TestHeatmapDegenerate pins the explicit handling of matrices the range
// normalization cannot spread: all-zero renders blank, all-equal non-zero
// (including all-negative) renders uniformly darkest with the dedicated
// legend, and neither divides by zero or emits NaN.
func TestHeatmapDegenerate(t *testing.T) {
	cells := func(out string) string {
		var b strings.Builder
		for _, l := range strings.Split(out, "\n") {
			if i := strings.IndexByte(l, '|'); i >= 0 {
				b.WriteString(l[i+1 : strings.LastIndexByte(l, '|')])
			}
		}
		return b.String()
	}

	zero := Heatmap([]string{"r"}, []string{"a", "b"}, [][]float64{{0, 0}})
	if got := cells(zero); strings.Trim(got, " ") != "" {
		t.Fatalf("all-zero matrix not blank: %q\n%s", got, zero)
	}
	if strings.Contains(zero, "NaN") {
		t.Fatalf("all-zero legend contains NaN:\n%s", zero)
	}

	neg := Heatmap([]string{"r"}, []string{"a", "b"}, [][]float64{{-0.7, -0.7}})
	if got := cells(neg); got != "@@" {
		t.Fatalf("all-equal negative matrix cells %q, want \"@@\"\n%s", got, neg)
	}
	if !strings.Contains(neg, "uniform magnitude 0.7000") {
		t.Fatalf("uniform matrix legend missing:\n%s", neg)
	}
}

// TestHeatmapNarrowBand pins the range normalization itself: magnitudes
// clustered in a narrow band still span the full shade ramp.
func TestHeatmapNarrowBand(t *testing.T) {
	out := Heatmap([]string{"r"}, []string{"a", "b"}, [][]float64{{0.90, 1.0}})
	if !strings.Contains(out, "@") {
		t.Fatalf("band max not darkest:\n%s", out)
	}
	row := out[strings.IndexByte(out, '|')+1:]
	if row[0] != ' ' {
		t.Fatalf("band min cell %q, want blank (range-normalized)\n%s", row[0], out)
	}
	if !strings.Contains(out, "' '=0.9000 .. '@'=1.0000") {
		t.Fatalf("range legend missing:\n%s", out)
	}
}

func TestShadeNormDegenerate(t *testing.T) {
	if got := shadeNorm(0.5, 0.5, 0.5); got != '@' {
		t.Fatalf("zero-width non-zero range shade %q, want '@'", got)
	}
	if got := shadeNorm(0, 0, 0); got != ' ' {
		t.Fatalf("no-magnitude shade %q, want blank", got)
	}
	if got := shadeNorm(math.NaN(), 0, 1); got != ' ' {
		t.Fatalf("NaN shade %q, want blank", got)
	}
}
