package core

import (
	"fmt"

	"mlnoc/internal/noc"
)

// StateSpec describes the layout of the router state vector (Section 4.4):
// for each of the spec's ports and each virtual channel, one block of
// feature elements. Buffers with no competing message — and ports a given
// router does not have — are zeroed, which is the paper's padding rule for
// sharing one agent across routers of different radix.
type StateSpec struct {
	// Ports lists the ports contributing state, in heatmap column order.
	Ports []noc.PortID
	// VCs is the number of virtual channels per port.
	VCs int
	// Features is the per-message feature set.
	Features FeatureSet
	// Norm holds the feature normalization caps.
	Norm NormConfig

	portIndex [noc.MaxPorts]int // PortID -> dense column, -1 if absent
}

// NewStateSpec builds a state spec over the given ports.
func NewStateSpec(ports []noc.PortID, vcs int, feats FeatureSet, norm NormConfig) *StateSpec {
	if len(ports) == 0 || vcs <= 0 || len(feats) == 0 {
		panic("core: state spec needs ports, VCs and features")
	}
	s := &StateSpec{Ports: ports, VCs: vcs, Features: feats, Norm: norm}
	for i := range s.portIndex {
		s.portIndex[i] = -1
	}
	for i, p := range ports {
		s.portIndex[p] = i
	}
	return s
}

// MeshSpec returns the Section 3.2 synthetic-traffic spec: five ports (core
// plus the four directions), the four mesh features, and the given VC count.
// With 3 VCs this yields the paper's 60-input agent.
func MeshSpec(vcs int) *StateSpec {
	return NewStateSpec(
		[]noc.PortID{noc.PortCore, noc.PortNorth, noc.PortSouth, noc.PortWest, noc.PortEast},
		vcs, MeshFeatures, DefaultNorm())
}

// APUSpec returns the Section 4 APU spec: six ports (core, memory and the
// four directions), seven VC classes and the full 12-element feature set,
// yielding the paper's 504-input agent.
func APUSpec() *StateSpec {
	return NewStateSpec(
		[]noc.PortID{noc.PortCore, noc.PortMem, noc.PortNorth, noc.PortSouth, noc.PortWest, noc.PortEast},
		7, AllFeatures, DefaultNorm())
}

// InputSize returns the state vector width: ports x VCs x feature elements.
func (s *StateSpec) InputSize() int { return len(s.Ports) * s.VCs * s.Features.Width() }

// ActionSize returns the number of actions: one Q-value per (port, VC)
// input-buffer slot.
func (s *StateSpec) ActionSize() int { return len(s.Ports) * s.VCs }

// Slot returns the action index of input buffer (port, vc). It panics if the
// port is not part of the spec.
func (s *StateSpec) Slot(port noc.PortID, vc int) int {
	col := s.portIndex[port]
	if col < 0 {
		panic(fmt.Sprintf("core: port %s not in state spec", port))
	}
	return col*s.VCs + vc
}

// SlotPort returns the (port, vc) of an action index.
func (s *StateSpec) SlotPort(slot int) (noc.PortID, int) {
	return s.Ports[slot/s.VCs], slot % s.VCs
}

// BuildState assembles the state vector for one arbitration: the features of
// every candidate message, placed at its buffer's block, all other elements
// zero. The result is freshly allocated (experiences retain state slices).
func (s *StateSpec) BuildState(net *noc.Network, now int64, cands []noc.Candidate) []float64 {
	return s.BuildStateInto(make([]float64, s.InputSize()), net, now, cands)
}

// BuildStateInto assembles the state vector into dst, which must have length
// InputSize, and returns it. dst is zeroed first, so a recycled state vector
// carries nothing over from its previous life. The hot-path variant of
// BuildState: no allocation.
func (s *StateSpec) BuildStateInto(dst []float64, net *noc.Network, now int64, cands []noc.Candidate) []float64 {
	for i := range dst {
		dst[i] = 0
	}
	fw := s.Features.Width()
	for _, c := range cands {
		slot := s.Slot(c.Port, c.VC)
		s.Features.Extract(dst[slot*fw:(slot+1)*fw], &s.Norm, net, now, c.Msg)
	}
	return dst
}
