package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlnoc/internal/noc"
	"mlnoc/internal/rl"
)

func TestFeatureWidths(t *testing.T) {
	if w := AllFeatures.Width(); w != 12 {
		t.Fatalf("AllFeatures.Width() = %d, want 12 (Section 4.3)", w)
	}
	if w := MeshFeatures.Width(); w != 4 {
		t.Fatalf("MeshFeatures.Width() = %d, want 4", w)
	}
	if len(AllFeatures.Labels()) != 12 {
		t.Fatalf("labels = %d, want 12", len(AllFeatures.Labels()))
	}
}

func TestSpecSizes(t *testing.T) {
	apu := APUSpec()
	if apu.InputSize() != 504 {
		t.Fatalf("APU input size = %d, want 504 (Section 4.6)", apu.InputSize())
	}
	if apu.ActionSize() != 42 {
		t.Fatalf("APU action size = %d, want 42", apu.ActionSize())
	}
	mesh := MeshSpec(3)
	if mesh.InputSize() != 60 {
		t.Fatalf("mesh input size = %d, want 60 (Section 3.2)", mesh.InputSize())
	}
	if mesh.ActionSize() != 15 {
		t.Fatalf("mesh action size = %d, want 15", mesh.ActionSize())
	}
}

func TestSlotRoundTrip(t *testing.T) {
	spec := APUSpec()
	seen := map[int]bool{}
	for _, p := range spec.Ports {
		for vc := 0; vc < spec.VCs; vc++ {
			s := spec.Slot(p, vc)
			if s < 0 || s >= spec.ActionSize() {
				t.Fatalf("slot(%v,%d) = %d out of range", p, vc, s)
			}
			if seen[s] {
				t.Fatalf("slot %d assigned twice", s)
			}
			seen[s] = true
			gp, gvc := spec.SlotPort(s)
			if gp != p || gvc != vc {
				t.Fatalf("SlotPort(%d) = (%v,%d), want (%v,%d)", s, gp, gvc, p, vc)
			}
		}
	}
}

func TestSlotPanicsOnForeignPort(t *testing.T) {
	spec := MeshSpec(3) // no PortMem
	defer func() {
		if recover() == nil {
			t.Fatal("Slot on foreign port did not panic")
		}
	}()
	spec.Slot(noc.PortMem, 0)
}

func testNetwork(t *testing.T) (*noc.Network, []*noc.Node) {
	t.Helper()
	return noc.BuildMeshCores(noc.Config{Width: 4, Height: 4, VCs: 3})
}

func TestFeatureExtraction(t *testing.T) {
	net, _ := testNetwork(t)
	norm := DefaultNorm()
	m := &noc.Message{
		SizeFlits:    5,
		InjectCycle:  10,
		ArrivalCycle: 80,
		Distance:     6,
		HopCount:     3,
		ArrivalGap:   7,
		Type:         noc.TypeCoherence,
		DstKind:      noc.DstMemory,
	}
	dst := make([]float64, AllFeatures.Width())
	AllFeatures.Extract(dst, &norm, net, 100, m)

	if dst[0] != 5.0/8 {
		t.Errorf("payload = %v, want %v", dst[0], 5.0/8)
	}
	// Soft local-age normalization: la/(la+cap/2) with la=20.
	wantLA := 20.0 / (20.0 + norm.LocalAgeCap/2)
	if dst[1] != wantLA {
		t.Errorf("local age = %v, want %v", dst[1], wantLA)
	}
	if dst[2] != 6.0/15 {
		t.Errorf("distance = %v, want %v", dst[2], 6.0/15)
	}
	if dst[3] != 3.0/15 {
		t.Errorf("hop count = %v, want %v", dst[3], 3.0/15)
	}
	if dst[4] != 0 {
		t.Errorf("in-flight = %v, want 0", dst[4])
	}
	if dst[5] != 7.0/63 {
		t.Errorf("inter-arrival = %v, want %v", dst[5], 7.0/63)
	}
	// One-hot message type: coherence.
	if dst[6] != 0 || dst[7] != 0 || dst[8] != 1 {
		t.Errorf("msg type one-hot = %v", dst[6:9])
	}
	// One-hot destination type: memory.
	if dst[9] != 0 || dst[10] != 0 || dst[11] != 1 {
		t.Errorf("dst type one-hot = %v", dst[9:12])
	}
}

func TestQuickFeatureRange(t *testing.T) {
	net, _ := testNetwork(t)
	norm := DefaultNorm()
	f := func(flits8, hops8, dist8 uint8, arrival, gap int16, typ8, dk8 uint8) bool {
		m := &noc.Message{
			SizeFlits:    int(flits8%12) + 1,
			ArrivalCycle: 1000 - int64(arrival%1000),
			Distance:     int(dist8 % 20),
			HopCount:     int(hops8 % 20),
			ArrivalGap:   int64(gap%2000) + 2000,
			Type:         noc.MsgType(typ8 % 3),
			DstKind:      noc.DstType(dk8 % 3),
		}
		dst := make([]float64, AllFeatures.Width())
		AllFeatures.Extract(dst, &norm, net, 2000, m)
		for _, v := range dst {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestBuildStateZeroPadding: slots without candidates stay zero.
func TestBuildStateZeroPadding(t *testing.T) {
	net, _ := testNetwork(t)
	spec := MeshSpec(3)
	cands := []noc.Candidate{
		{Port: noc.PortNorth, VC: 1, Msg: &noc.Message{
			SizeFlits: 1, ArrivalCycle: 5, HopCount: 2, Distance: 3,
		}},
	}
	state := spec.BuildState(net, 10, cands)
	if len(state) != 60 {
		t.Fatalf("state size %d", len(state))
	}
	slot := spec.Slot(noc.PortNorth, 1)
	fw := spec.Features.Width()
	nonzero := 0
	for i, v := range state {
		if v != 0 {
			if i < slot*fw || i >= (slot+1)*fw {
				t.Fatalf("state element %d nonzero outside candidate block [%d,%d)", i, slot*fw, (slot+1)*fw)
			}
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("candidate block entirely zero")
	}
}

func TestRLInspiredMeshPriority(t *testing.T) {
	p4 := NewRLInspiredMesh4x4()
	m := &noc.Message{ArrivalCycle: 0, HopCount: 3}
	// la=10 (<<1 = 20) + hc=3 (<<1 = 6) = 26.
	if got := p4.Priority(10, m); got != 26 {
		t.Fatalf("4x4 priority = %d, want 26", got)
	}
	p8 := NewRLInspiredMesh8x8()
	// la=10 + hc=3<<2=12 -> 22.
	if got := p8.Priority(10, m); got != 22 {
		t.Fatalf("8x8 priority = %d, want 22", got)
	}
	// Local age saturates at 31; 3-bit hop counter saturates at 7 on 4x4.
	old := &noc.Message{ArrivalCycle: 0, HopCount: 100}
	if got := p4.Priority(1000, old); got != 31<<1+7<<1 {
		t.Fatalf("saturated 4x4 priority = %d, want %d", got, 31<<1+7<<1)
	}
}

func TestRLInspiredMeshSelectsMaxPriority(t *testing.T) {
	p := NewRLInspiredMesh4x4()
	ctx := &noc.ArbContext{Cycle: 100}
	cands := []noc.Candidate{
		{Port: noc.PortCore, Msg: &noc.Message{ArrivalCycle: 95, HopCount: 0}},  // pri 10
		{Port: noc.PortWest, Msg: &noc.Message{ArrivalCycle: 80, HopCount: 2}},  // pri 44
		{Port: noc.PortNorth, Msg: &noc.Message{ArrivalCycle: 90, HopCount: 1}}, // pri 22
	}
	if got := p.Select(ctx, cands); got != 1 {
		t.Fatalf("Select = %d, want 1", got)
	}
}

func TestAlgorithm2StarvationOverride(t *testing.T) {
	p := NewRLInspiredAPU()
	// Local age 25 (> 24): priority equals the local age, regardless of hops
	// or class.
	m := &noc.Message{ArrivalCycle: 0, HopCount: 15, Type: noc.TypeCoherence}
	if got := p.Priority(25, noc.PortWest, m); got != 25 {
		t.Fatalf("override priority = %d, want 25", got)
	}
	// Saturates at 31.
	if got := p.Priority(500, noc.PortWest, m); got != 31 {
		t.Fatalf("saturated override = %d, want 31", got)
	}
	// At exactly the threshold the normal path applies.
	m2 := &noc.Message{ArrivalCycle: 0, HopCount: 2, Type: noc.TypeRequest}
	if got := p.Priority(StarvationThreshold, noc.PortCore, m2); got != 2 {
		t.Fatalf("threshold-edge priority = %d, want 2", got)
	}
}

func TestAlgorithm2PortAsymmetry(t *testing.T) {
	m := &noc.Message{ArrivalCycle: 95, HopCount: 3, Type: noc.TypeRequest}
	now := int64(100)

	paper := NewRLInspiredAPUPaper() // inverts W/E
	if got := paper.Priority(now, noc.PortCore, m); got != 3 {
		t.Fatalf("paper core priority = %d, want 3", got)
	}
	if got := paper.Priority(now, noc.PortWest, m); got != 12 { // 15-3
		t.Fatalf("paper west priority = %d, want 12", got)
	}
	if got := paper.Priority(now, noc.PortNorth, m); got != 3 {
		t.Fatalf("paper north priority = %d, want 3", got)
	}

	ours := NewRLInspiredAPU() // inverts N/S
	if got := ours.Priority(now, noc.PortWest, m); got != 3 {
		t.Fatalf("ours west priority = %d, want 3", got)
	}
	if got := ours.Priority(now, noc.PortNorth, m); got != 12 {
		t.Fatalf("ours north priority = %d, want 12", got)
	}
}

func TestAlgorithm2ClassBoost(t *testing.T) {
	p := NewRLInspiredAPUPaper()
	now := int64(100)
	req := &noc.Message{ArrivalCycle: 95, HopCount: 3, Type: noc.TypeRequest}
	resp := &noc.Message{ArrivalCycle: 95, HopCount: 3, Type: noc.TypeResponse}
	coh := &noc.Message{ArrivalCycle: 95, HopCount: 3, Type: noc.TypeCoherence}
	if p.Priority(now, noc.PortCore, resp) != 6 || p.Priority(now, noc.PortCore, coh) != 6 {
		t.Fatal("response/coherence boost missing")
	}
	if p.Priority(now, noc.PortCore, req) != 3 {
		t.Fatal("request should not be boosted")
	}
	deboost := &RLInspiredAPU{DefeatureMsgType: true}
	if deboost.Priority(now, noc.PortCore, resp) != 3 {
		t.Fatal("de-featured msgtype still boosts")
	}
}

// TestAlgorithm2PriorityFits5Bits: the paper's Fig. 8 datapath is 5 bits
// wide; every reachable priority must fit.
func TestAlgorithm2PriorityFits5Bits(t *testing.T) {
	variants := []*RLInspiredAPU{
		NewRLInspiredAPU(),
		NewRLInspiredAPUPaper(),
		{DefeaturePort: true},
		{DefeatureMsgType: true},
	}
	f := func(la8, hc8, typ8, port8 uint8) bool {
		la := int64(la8) % 200
		m := &noc.Message{
			ArrivalCycle: 1000 - la,
			HopCount:     int(hc8 % 30),
			Type:         noc.MsgType(typ8 % 3),
		}
		port := noc.PortID(port8 % noc.MaxPorts)
		for _, v := range variants {
			pri := v.Priority(1000, port, m)
			if pri < 0 || pri > 31 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestAlgorithm2StarvationWins: once a message crosses the starvation
// threshold with a saturated counter it beats any non-starved candidate.
func TestAlgorithm2StarvationWins(t *testing.T) {
	p := NewRLInspiredAPU()
	ctx := &noc.ArbContext{Cycle: 1000}
	starved := noc.Candidate{Port: noc.PortCore, Msg: &noc.Message{
		ArrivalCycle: 0, HopCount: 0, Type: noc.TypeRequest, // la saturates at 31
	}}
	fresh := noc.Candidate{Port: noc.PortWest, Msg: &noc.Message{
		ArrivalCycle: 999, HopCount: 15, Type: noc.TypeCoherence, // max boosted: 30
	}}
	if got := p.Select(ctx, []noc.Candidate{fresh, starved}); got != 1 {
		t.Fatalf("saturated starved message lost arbitration (got %d)", got)
	}
}

func TestNaiveLatencyArbiterPicksNewest(t *testing.T) {
	p := NaiveLatencyArbiter{}
	ctx := &noc.ArbContext{Cycle: 100}
	cands := []noc.Candidate{
		{Msg: &noc.Message{ArrivalCycle: 10}},
		{Msg: &noc.Message{ArrivalCycle: 90}},
		{Msg: &noc.Message{ArrivalCycle: 50}},
	}
	if got := p.Select(ctx, cands); got != 1 {
		t.Fatalf("naive arbiter picked %d, want newest (1)", got)
	}
}

func TestHeatmapShape(t *testing.T) {
	spec := MeshSpec(3)
	agent := NewAgent(spec, AgentConfig{Hidden: 15, Seed: 1})
	h := NewHeatmap(spec, agent.Net())
	if len(h.Abs) != 4 || len(h.Abs[0]) != 15 {
		t.Fatalf("heatmap shape %dx%d, want 4x15", len(h.Abs), len(h.Abs[0]))
	}
	if len(h.RowLabels) != 4 || len(h.ColLabels) != 15 {
		t.Fatalf("labels %d/%d", len(h.RowLabels), len(h.ColLabels))
	}
	ranked := h.RankedRows()
	if len(ranked) != 4 {
		t.Fatalf("ranked rows = %v", ranked)
	}
	for i := 1; i < len(ranked); i++ {
		if h.RowMean(ranked[i-1]) < h.RowMean(ranked[i]) {
			t.Fatal("RankedRows not sorted descending")
		}
	}
}

func TestHeatmapPortSignedMean(t *testing.T) {
	spec := MeshSpec(1)
	agent := NewAgent(spec, AgentConfig{Hidden: 4, Seed: 2})
	// Force the first-layer weights of the west column's hop-count input.
	l := agent.Net().Layers[0]
	fw := spec.Features.Width()
	westSlot := spec.Slot(noc.PortWest, 0)
	hopIdx := westSlot*fw + 3 // hop count is feature 3 of MeshFeatures
	for j := 0; j < l.Out; j++ {
		l.W[j*l.In+hopIdx] = -2
	}
	h := NewHeatmap(spec, agent.Net())
	if got := h.PortSignedMean(3, "west"); got != -2 {
		t.Fatalf("west hop signed mean = %v, want -2", got)
	}
}

// TestAgentLearnsOldestPreference runs a short training and checks the agent
// beats random chance at selecting the oldest message — the sanity property
// behind the Fig. 4/5 results.
func TestAgentLearnsOldestPreference(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	cfg := MeshTrainConfig{
		Width: 4, Height: 4, Epochs: 20, EpochCycles: 1000, Seed: 3,
	}
	tr := TrainMesh(cfg)
	tr.Agent.Freeze()

	// Shadow-evaluate: fraction of decisions picking the oldest candidate.
	hits, total := 0, 0
	probe := policyFunc(func(ctx *noc.ArbContext, cands []noc.Candidate) int {
		choice := tr.Agent.Select(ctx, cands)
		oldest := 0
		for i, c := range cands {
			if c.Msg.InjectCycle < cands[oldest].Msg.InjectCycle {
				oldest = i
			}
		}
		total++
		if cands[choice].Msg.InjectCycle == cands[oldest].Msg.InjectCycle {
			hits++
		}
		return choice
	})
	EvaluateMeshPolicy(cfg, probe, 500, 3000)
	if total == 0 {
		t.Fatal("no contended arbitrations during evaluation")
	}
	acc := float64(hits) / float64(total)
	if acc < 0.55 {
		t.Fatalf("trained agent oldest-pick accuracy %.2f; want > 0.55 (random is ~0.5)", acc)
	}
}

// policyFunc adapts a function to noc.Policy.
type policyFunc func(*noc.ArbContext, []noc.Candidate) int

func (policyFunc) Name() string { return "func" }
func (f policyFunc) Select(ctx *noc.ArbContext, cands []noc.Candidate) int {
	return f(ctx, cands)
}

func TestAgentEpsilonSchedule(t *testing.T) {
	spec := MeshSpec(3)
	a := NewAgent(spec, AgentConfig{
		Hidden: 8, Seed: 1,
		EpsStart: 0.5, EpsDecayCycles: 100,
		DQL: rl.DQLConfig{Epsilon: 0.01},
	})
	if got := a.Epsilon(); got != 0.5 {
		t.Fatalf("initial epsilon = %v, want 0.5", got)
	}
	a.cyclesSeen = 50
	mid := a.Epsilon()
	if mid <= 0.01 || mid >= 0.5 {
		t.Fatalf("mid epsilon = %v, want in (0.01, 0.5)", mid)
	}
	a.cyclesSeen = 1000
	if got := a.Epsilon(); got != 0.01 {
		t.Fatalf("floor epsilon = %v, want 0.01", got)
	}
}

func TestAgentExperienceWiring(t *testing.T) {
	net, _ := testNetwork(t)
	spec := MeshSpec(3)
	a := NewAgent(spec, AgentConfig{Hidden: 8, Seed: 1})
	ctx := &noc.ArbContext{Net: net, Router: net.RouterAt(1, 1), Out: noc.PortEast, Cycle: 50}
	cands := []noc.Candidate{
		{Port: noc.PortCore, VC: 0, Msg: &noc.Message{SizeFlits: 1, InjectCycle: 1, ArrivalCycle: 40}},
		{Port: noc.PortWest, VC: 1, Msg: &noc.Message{SizeFlits: 1, InjectCycle: 5, ArrivalCycle: 45}},
	}
	if n := a.DQL.Replay.Len(); n != 0 {
		t.Fatalf("replay pre-populated: %d", n)
	}
	a.Select(ctx, cands)
	// First decision at a site leaves a pending experience, nothing observed.
	if n := a.DQL.Replay.Len(); n != 0 {
		t.Fatalf("replay after first decision = %d, want 0", n)
	}
	ctx.Cycle = 51
	a.Select(ctx, cands)
	if n := a.DQL.Replay.Len(); n != 1 {
		t.Fatalf("replay after second decision = %d, want 1", n)
	}
	a.FlushPending()
	if n := a.DQL.Replay.Len(); n != 2 {
		t.Fatalf("replay after flush = %d, want 2", n)
	}
}

func TestFreezeStopsLearning(t *testing.T) {
	net, _ := testNetwork(t)
	spec := MeshSpec(3)
	a := NewAgent(spec, AgentConfig{Hidden: 8, Seed: 1})
	a.Freeze()
	if a.Training {
		t.Fatal("Freeze left Training true")
	}
	ctx := &noc.ArbContext{Net: net, Router: net.RouterAt(0, 0), Out: noc.PortEast, Cycle: 9}
	cands := []noc.Candidate{
		{Port: noc.PortCore, VC: 0, Msg: &noc.Message{SizeFlits: 1}},
		{Port: noc.PortSouth, VC: 0, Msg: &noc.Message{SizeFlits: 1}},
	}
	a.Select(ctx, cands)
	a.Select(ctx, cands)
	if a.DQL.Replay.Len() != 0 {
		t.Fatal("frozen agent recorded experiences")
	}
	if a.DQL.Steps() != 0 {
		t.Fatal("frozen agent trained")
	}
}

func TestHillClimbFindsLocalAge(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	cfg := MeshTrainConfig{
		Width: 4, Height: 4, Epochs: 4, EpochCycles: 600, Seed: 5,
	}
	hc := HillClimb(cfg, nil, 2)
	if len(hc.Steps) == 0 {
		t.Fatal("hill climbing made no steps")
	}
	// Round one must have tried all four mesh features.
	if len(hc.Steps[0].Tried) != 4 {
		t.Fatalf("round one tried %d features, want 4", len(hc.Steps[0].Tried))
	}
	if len(hc.Best) == 0 || hc.BestLatency <= 0 {
		t.Fatalf("bad result: %+v", hc)
	}
}

func TestTrainResultFinalLatency(t *testing.T) {
	r := &TrainResult{Curve: []float64{100, 80, 60, 40, 20, 10, 10, 10}}
	if got := r.FinalLatency(); got != 10 {
		t.Fatalf("FinalLatency = %v, want 10 (mean of last quarter)", got)
	}
	empty := &TrainResult{}
	if empty.FinalLatency() != 0 {
		t.Fatal("empty curve FinalLatency != 0")
	}
}

func TestBoostClass(t *testing.T) {
	if !BoostClass(&noc.Message{Type: noc.TypeResponse}) ||
		!BoostClass(&noc.Message{Type: noc.TypeCoherence}) {
		t.Fatal("responses and coherence must be boosted")
	}
	if BoostClass(&noc.Message{Type: noc.TypeRequest}) {
		t.Fatal("requests must not be boosted")
	}
}

func TestSelectMaxRotatingTieBreak(t *testing.T) {
	cands := []noc.Candidate{
		{Msg: &noc.Message{HopCount: 5}},
		{Msg: &noc.Message{HopCount: 5}},
		{Msg: &noc.Message{HopCount: 4}},
	}
	pri := func(c noc.Candidate) int { return c.Msg.HopCount }
	// At cycle 0 the scan starts at 0: the first tied max wins.
	if got := selectMax(0, cands, pri); got != 0 {
		t.Fatalf("cycle 0 tie-break = %d, want 0", got)
	}
	// At cycle 1 the scan starts at 1: the other tied max wins.
	if got := selectMax(1, cands, pri); got != 1 {
		t.Fatalf("cycle 1 tie-break = %d, want 1", got)
	}
	// The lower-priority candidate never wins.
	for now := int64(0); now < 9; now++ {
		if got := selectMax(now, cands, pri); got == 2 {
			t.Fatal("lower-priority candidate won a tie-break")
		}
	}
}

var _ = rand.Int // keep math/rand imported for future tests

func TestFootnote1CoreBonus(t *testing.T) {
	p := NewRLInspiredMesh4x4()
	p.CoreBonus = 8
	now := int64(100)
	m := &noc.Message{ArrivalCycle: 95, HopCount: 1} // base priority 10+2 = 12
	if got := p.PriorityAt(now, noc.PortCore, m); got != 20 {
		t.Fatalf("core priority = %d, want 20", got)
	}
	if got := p.PriorityAt(now, noc.PortWest, m); got != 12 {
		t.Fatalf("west priority = %d, want 12", got)
	}
	// Without the bonus, ports are symmetric.
	plain := NewRLInspiredMesh4x4()
	if plain.PriorityAt(now, noc.PortCore, m) != plain.PriorityAt(now, noc.PortEast, m) {
		t.Fatal("default policy must be port-symmetric")
	}
}
