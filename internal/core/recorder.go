package core

import (
	"mlnoc/internal/noc"
	"mlnoc/internal/rl"
)

// Recorder implements the data-collection half of the paper's offline
// workflow (Fig. 2): it wraps an arbitrary behaviour policy, lets it make
// every arbitration decision, and records <state, action, reward, next
// state> tuples into an rl.Dataset — the "NoC router states over a large
// number of simulated cycles" the paper's agent was trained on. The recorded
// dataset feeds rl.DQL.TrainOffline.
//
// Because recording is off-policy, any behaviour policy works: round-robin
// gives broad uniform coverage of the decision space; an ε-greedy agent
// gives on-policy data.
type Recorder struct {
	// Behavior makes the actual decisions.
	Behavior noc.Policy
	// Spec lays out states and actions.
	Spec *StateSpec
	// Reward scores decisions (default: global age).
	Reward *rl.RewardTracker
	// Data accumulates the recorded experiences.
	Data *rl.Dataset

	pending map[int64]*pendingDecision
}

// NewRecorder wraps behaviour with recording into a fresh dataset.
func NewRecorder(spec *StateSpec, behavior noc.Policy) *Recorder {
	return &Recorder{
		Behavior: behavior,
		Spec:     spec,
		Reward:   rl.NewRewardTracker(rl.RewardGlobalAge),
		Data:     rl.NewDataset(spec.InputSize(), spec.ActionSize()),
		pending:  make(map[int64]*pendingDecision),
	}
}

// Name implements noc.Policy.
func (r *Recorder) Name() string { return r.Behavior.Name() + "+record" }

// Select implements noc.Policy: the behaviour policy decides, the recorder
// logs.
func (r *Recorder) Select(ctx *noc.ArbContext, cands []noc.Candidate) int {
	state := r.Spec.BuildState(ctx.Net, ctx.Cycle, cands)
	choice := r.Behavior.Select(ctx, cands)

	key := siteKey(ctx)
	if prev := r.pending[key]; prev != nil {
		valid := make([]int, len(cands))
		for i, c := range cands {
			valid[i] = r.Spec.Slot(c.Port, c.VC)
		}
		r.Data.Add(rl.Experience{
			State:     prev.state,
			Action:    prev.action,
			Reward:    prev.reward,
			Next:      state,
			NextValid: valid,
		})
	}
	r.pending[key] = &pendingDecision{
		state:  state,
		action: r.Spec.Slot(cands[choice].Port, cands[choice].VC),
		reward: r.Reward.DecisionReward(ctx, cands, choice),
	}
	return choice
}

// OnCycle forwards the reward tracker's per-cycle refresh; install as the
// network hook when using period-based rewards.
func (r *Recorder) OnCycle(n *noc.Network) { r.Reward.OnCycle(n) }

// Flush records all incomplete decisions as terminal experiences.
func (r *Recorder) Flush() {
	for key, p := range r.pending {
		r.Data.Add(rl.Experience{State: p.state, Action: p.action, Reward: p.reward})
		delete(r.pending, key)
	}
}
