package core

import (
	"fmt"
	"sort"

	"mlnoc/internal/nn"
)

// Heatmap is the Figs. 4/7 visualization data: for every feature element
// (row) and every input-buffer slot (column), the mean first-layer weight
// magnitude across all hidden neurons. Darker pixels in the paper are larger
// values here.
type Heatmap struct {
	// RowLabels names the feature elements (one-hot features expand to three
	// rows, as in Fig. 7).
	RowLabels []string
	// ColLabels names the input-buffer slots, grouped by port ("core.0" ...).
	ColLabels []string
	// Abs[r][c] is the mean absolute weight of (feature element r, slot c).
	Abs [][]float64
	// Signed[r][c] is the signed mean weight, used for the Section 4.6
	// sign analysis (hop count negative on W/E ports).
	Signed [][]float64
	// OutputWeightMean is the mean final-layer weight; when positive, larger
	// hidden pre-activations mean larger Q-values, so signed first-layer
	// weights can be read directly.
	OutputWeightMean float64
}

// NewHeatmap extracts the heatmap of a trained agent network laid out by
// spec. The network's input layer must match spec.InputSize().
func NewHeatmap(spec *StateSpec, net *nn.MLP) *Heatmap {
	if net.InputSize() != spec.InputSize() {
		panic(fmt.Sprintf("core: network input %d does not match spec %d",
			net.InputSize(), spec.InputSize()))
	}
	fw := spec.Features.Width()
	cols := spec.ActionSize()
	h := &Heatmap{
		RowLabels:        spec.Features.Labels(),
		OutputWeightMean: net.OutputWeightMean(),
	}
	for _, p := range spec.Ports {
		for vc := 0; vc < spec.VCs; vc++ {
			h.ColLabels = append(h.ColLabels, fmt.Sprintf("%s.%d", p, vc))
		}
	}
	abs := net.InputWeightAbsMean()
	signed := net.InputWeightSignedMean()
	h.Abs = make([][]float64, fw)
	h.Signed = make([][]float64, fw)
	for r := 0; r < fw; r++ {
		h.Abs[r] = make([]float64, cols)
		h.Signed[r] = make([]float64, cols)
		for c := 0; c < cols; c++ {
			h.Abs[r][c] = abs[c*fw+r]
			h.Signed[r][c] = signed[c*fw+r]
		}
	}
	return h
}

// RowMean returns the mean absolute weight of row r across all slots — the
// overall importance of that feature element.
func (h *Heatmap) RowMean(r int) float64 {
	sum := 0.0
	for _, v := range h.Abs[r] {
		sum += v
	}
	return sum / float64(len(h.Abs[r]))
}

// RankedRows returns row indices sorted by descending RowMean: the features
// the trained network uses most, which is the reading the paper's architects
// performed on Figs. 4 and 7.
func (h *Heatmap) RankedRows() []int {
	rows := make([]int, len(h.Abs))
	for i := range rows {
		rows[i] = i
	}
	sort.SliceStable(rows, func(a, b int) bool {
		return h.RowMean(rows[a]) > h.RowMean(rows[b])
	})
	return rows
}

// PortSignedMean returns the mean signed weight of row r restricted to the
// columns of the given port label prefix (e.g. "west"). Used to verify the
// Section 4.6 observation that hop-count weights are negative on W/E ports.
func (h *Heatmap) PortSignedMean(r int, portPrefix string) float64 {
	sum, n := 0.0, 0
	for c, lbl := range h.ColLabels {
		if len(lbl) > len(portPrefix) && lbl[:len(portPrefix)] == portPrefix && lbl[len(portPrefix)] == '.' {
			sum += h.Signed[r][c]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
