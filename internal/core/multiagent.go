package core

import (
	"fmt"

	"mlnoc/internal/noc"
)

// MultiAgent implements the variant the paper sketches in Section 3.1.1:
// "designers can use multiple agents for training, where each agent is
// trained with only a fixed subset of routers". It partitions the routers
// among several independent Agents (each with its own network weights,
// replay memory and exploration state) and dispatches every arbitration to
// the agent owning the router.
//
// Partitioning trades generality for specialization: each agent sees a
// narrower state distribution (e.g. only edge routers, or only one
// quadrant's traffic) at the cost of fewer training samples per agent.
type MultiAgent struct {
	Agents []*Agent
	// Assign maps a router to the index of the agent that owns it. It must
	// be a pure function of the router.
	Assign func(r *noc.Router) int
}

// NewMultiAgent builds n agents from the shared spec and config (seeds are
// offset per agent) with the given router assignment.
func NewMultiAgent(spec *StateSpec, cfg AgentConfig, n int, assign func(r *noc.Router) int) *MultiAgent {
	if n <= 0 {
		panic("core: MultiAgent needs at least one agent")
	}
	if assign == nil {
		panic("core: MultiAgent needs an assignment function")
	}
	m := &MultiAgent{Assign: assign}
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*7919
		m.Agents = append(m.Agents, NewAgent(spec, c))
	}
	return m
}

// QuadrantAssign partitions a width x height mesh into 2x2 quadrants,
// returning an assignment function mapping routers to agents 0..3.
func QuadrantAssign(width, height int) func(r *noc.Router) int {
	return func(r *noc.Router) int {
		q := 0
		if r.Coord.X >= width/2 {
			q++
		}
		if r.Coord.Y >= height/2 {
			q += 2
		}
		return q
	}
}

// Name implements noc.Policy.
func (m *MultiAgent) Name() string {
	return fmt.Sprintf("rl-multi-agent(%d)", len(m.Agents))
}

func (m *MultiAgent) owner(r *noc.Router) *Agent {
	i := m.Assign(r)
	if i < 0 || i >= len(m.Agents) {
		panic(fmt.Sprintf("core: router %v assigned to agent %d of %d", r, i, len(m.Agents)))
	}
	return m.Agents[i]
}

// Select implements noc.Policy by dispatching to the owning agent.
func (m *MultiAgent) Select(ctx *noc.ArbContext, cands []noc.Candidate) int {
	return m.owner(ctx.Router).Select(ctx, cands)
}

// OnCycle advances every agent's reward tracker and training; install as the
// network OnCycle hook.
func (m *MultiAgent) OnCycle(n *noc.Network) {
	for _, a := range m.Agents {
		a.OnCycle(n)
	}
}

// Freeze switches every agent to pure inference.
func (m *MultiAgent) Freeze() {
	for _, a := range m.Agents {
		a.Freeze()
	}
}

// Decisions sums the contended arbitrations across agents.
func (m *MultiAgent) Decisions() int64 {
	var total int64
	for _, a := range m.Agents {
		total += a.Decisions()
	}
	return total
}
