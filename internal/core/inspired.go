package core

import (
	"fmt"

	"mlnoc/internal/noc"
)

// Hardware counter widths used by the RL-inspired arbiters (Section 4.8):
// a 5-bit saturating local-age counter per input buffer and a 4-bit hop-count
// field carried in the header flit.
const (
	// LocalAgeBits is the width of the per-buffer local age counter.
	LocalAgeBits = 5
	// LocalAgeMax is the saturation value of the local age counter (31).
	LocalAgeMax = 1<<LocalAgeBits - 1
	// HopBits is the width of the hop-count header field.
	HopBits = 4
	// HopMax is the saturation value of the hop counter (15).
	HopMax = 1<<HopBits - 1
	// StarvationThreshold is Algorithm 2's local-age override threshold
	// (binary 11000 = 24): any 5-bit value above it has both MSBs set, so
	// the comparison is a single AND gate in hardware.
	StarvationThreshold = 24
)

// hwLocalAge returns the saturating 5-bit local age of m.
func hwLocalAge(now int64, m *noc.Message) int {
	la := m.LocalAge(now)
	if la > LocalAgeMax {
		return LocalAgeMax
	}
	return int(la)
}

// hwHopCount returns the saturating hop count of m at the given bit width.
func hwHopCount(m *noc.Message, maxVal int) int {
	if m.HopCount > maxVal {
		return maxVal
	}
	return m.HopCount
}

// selectMax returns the index of the candidate with the highest priority as
// computed by pri — the select-max circuit of Fig. 8. Ties are broken by a
// scan start that rotates with the cycle count: with narrow (5-bit) priority
// fields, saturated ages tie frequently under heavy congestion, and a fixed
// tie-break would starve the losing buffer; rotating the start is the
// standard one-mux hardware remedy and restores round-robin fairness among
// equal-priority requesters.
func selectMax(now int64, cands []noc.Candidate, pri func(noc.Candidate) int) int {
	n := len(cands)
	start := int(now % int64(n))
	best := start
	bestP := pri(cands[start])
	for k := 1; k < n; k++ {
		i := (start + k) % n
		if p := pri(cands[i]); p > bestP {
			best, bestP = i, p
		}
	}
	return best
}

// RLInspiredMesh is the Section 3.2 RL-inspired arbiter for simple meshes
// under synthetic traffic: priority = (local_age << LAShift) +
// (hop_count << HCShift), computable with constant shifts and one narrow add.
//
// The paper derives (LAShift=1, HCShift=1) for the 4x4 mesh, where local age
// and hop count carry similar weight in the trained network, and
// (LAShift=0, HCShift=2) for the 8x8 mesh, where the longer routes make hop
// count the better proxy for global age.
type RLInspiredMesh struct {
	LAShift, HCShift uint
	// HopBits is the hop counter width (paper: 3 bits for the 4x4 mesh).
	HopBits uint
	// CoreBonus implements the paper's footnote 1: Fig. 4's heatmap weights
	// the core (injection) port heavily, suggesting extra priority for new
	// requests entering from the local core. A non-zero value is added to
	// the priority of candidates on the core port.
	CoreBonus int
	label     string
}

// NewRLInspiredMesh4x4 returns the paper's 4x4-mesh policy:
// priority = (local_age << 1) + (hop_count << 1), 5-bit LA, 3-bit HC.
func NewRLInspiredMesh4x4() *RLInspiredMesh {
	return &RLInspiredMesh{LAShift: 1, HCShift: 1, HopBits: 3, label: "rl-inspired-4x4"}
}

// NewRLInspiredMesh8x8 returns the paper's 8x8-mesh policy:
// priority = local_age + (hop_count << 2), 5-bit LA, 4-bit HC.
func NewRLInspiredMesh8x8() *RLInspiredMesh {
	return &RLInspiredMesh{LAShift: 0, HCShift: 2, HopBits: 4, label: "rl-inspired-8x8"}
}

// Name implements noc.Policy.
func (p *RLInspiredMesh) Name() string {
	if p.label == "" {
		return fmt.Sprintf("rl-inspired-mesh(la<<%d,hc<<%d)", p.LAShift, p.HCShift)
	}
	return p.label
}

// Priority returns the hardware priority level of message m.
func (p *RLInspiredMesh) Priority(now int64, m *noc.Message) int {
	hopMax := 1<<p.HopBits - 1
	return hwLocalAge(now, m)<<p.LAShift + hwHopCount(m, hopMax)<<p.HCShift
}

// PriorityAt returns the priority of message m entering on port in,
// including the footnote-1 core bonus when configured.
func (p *RLInspiredMesh) PriorityAt(now int64, in noc.PortID, m *noc.Message) int {
	pri := p.Priority(now, m)
	if in == noc.PortCore {
		pri += p.CoreBonus
	}
	return pri
}

// Select implements noc.Policy.
func (p *RLInspiredMesh) Select(ctx *noc.ArbContext, cands []noc.Candidate) int {
	return selectMax(ctx.Cycle, cands, func(c noc.Candidate) int {
		return p.PriorityAt(ctx.Cycle, c.Port, c.Msg)
	})
}

// BoostClass reports whether a message belongs to the classes Algorithm 2
// boosts: coherence messages and response messages (the paper's GPU
// coherence, memory response and GPU L2 response classes — "draining these
// out of the NoC as quickly as possible tends to unblock stalled
// computation").
func BoostClass(m *noc.Message) bool {
	return m.Type == noc.TypeCoherence || m.Type == noc.TypeResponse
}

// RLInspiredAPU is Algorithm 2, the paper's final arbiter for the APU system,
// distilled from the Fig. 7 heatmap analysis:
//
//  1. Starvation override: any message whose 5-bit local age exceeds 24
//     (both MSBs set) is prioritized by its local age alone, guaranteeing
//     forward progress (Section 6.4).
//  2. Coherence and response messages get their priority doubled (one shift).
//  3. Hop count sets the base priority — ascending for messages entering on
//     core/memory/north/south ports, but *descending* (bit-inverted) for
//     west/east ports, reflecting the trained network's negative hop-count
//     weights on W/E ports under X-Y routing.
//
// The Defeature* fields remove individual ingredients to reproduce the
// Section 5.1 ablation.
type RLInspiredAPU struct {
	// DefeaturePort disables the port-asymmetric hop-count inversion (Line 6
	// of Algorithm 2 removed).
	DefeaturePort bool
	// DefeatureMsgType disables the coherence/response boost (Lines 7 and 14
	// removed).
	DefeatureMsgType bool
	// InvertNorthSouth mirrors the port rule: the hop-count inversion is
	// applied on the north/south ports instead of west/east. The paper's
	// Algorithm 2 inverts W/E, a rule its authors traced to the interaction
	// of their traffic with X-Y routing; re-deriving the rule with the
	// paper's methodology on this repository's substrate (different tile map
	// and protocol flows) can yield the mirrored asymmetry.
	InvertNorthSouth bool
}

// NewRLInspiredAPU returns the repository's production Algorithm 2 variant:
// the port-asymmetric hop rule re-derived, with the paper's methodology, for
// this repository's substrate. Our tile map routes the long-haul directory
// and write-through traffic along the X dimension, the mirror image of the
// paper's system, so the re-derived rule inverts hop count on the north/south
// ports instead of west/east. Use NewRLInspiredAPUPaper for the verbatim
// Algorithm 2.
func NewRLInspiredAPU() *RLInspiredAPU {
	return &RLInspiredAPU{InvertNorthSouth: true}
}

// NewRLInspiredAPUPaper returns Algorithm 2 exactly as printed in the paper
// (hop-count inversion on the west/east ports).
func NewRLInspiredAPUPaper() *RLInspiredAPU { return &RLInspiredAPU{} }

// Name implements noc.Policy.
func (p *RLInspiredAPU) Name() string {
	base := "rl-inspired"
	if !p.InvertNorthSouth && !p.DefeaturePort {
		base = "rl-inspired-paper-we"
	}
	switch {
	case p.DefeaturePort && p.DefeatureMsgType:
		return base + "(-port,-msgtype)"
	case p.DefeaturePort:
		return base + "(-port)"
	case p.DefeatureMsgType:
		return base + "(-msgtype)"
	}
	return base
}

// Priority computes Algorithm 2's priority level for a message arriving on
// the given input port. The result fits in 5 bits: hop counts are 4-bit and
// the boost shift produces at most 30, while the starvation override yields
// 25..31.
func (p *RLInspiredAPU) Priority(now int64, in noc.PortID, m *noc.Message) int {
	la := hwLocalAge(now, m)
	if la > StarvationThreshold {
		return la
	}
	hc := hwHopCount(m, HopMax)
	base := hc
	invert := in == noc.PortWest || in == noc.PortEast
	if p.InvertNorthSouth {
		invert = in == noc.PortNorth || in == noc.PortSouth
	}
	if !p.DefeaturePort && invert {
		base = HopMax - hc // bit inversion of the 4-bit hop counter
	}
	if !p.DefeatureMsgType && BoostClass(m) {
		return base << 1
	}
	return base
}

// Select implements noc.Policy.
func (p *RLInspiredAPU) Select(ctx *noc.ArbContext, cands []noc.Candidate) int {
	return selectMax(ctx.Cycle, cands, func(c noc.Candidate) int {
		return p.Priority(ctx.Cycle, c.Port, c.Msg)
	})
}

// NaiveLatencyArbiter is the cautionary counter-example of Section 6.4: it
// always prioritizes the *newest* message (smallest local age), the behaviour
// an agent trained on a completed-messages-only latency reward learns. It
// starves old messages and is used by the starvation tests and the
// BenchmarkStarvation_Guard experiment; never use it for real arbitration.
type NaiveLatencyArbiter struct{}

// Name implements noc.Policy.
func (NaiveLatencyArbiter) Name() string { return "naive-newest-first" }

// Select implements noc.Policy.
func (NaiveLatencyArbiter) Select(ctx *noc.ArbContext, cands []noc.Candidate) int {
	best := 0
	for i, c := range cands[1:] {
		if c.Msg.ArrivalCycle > cands[best].Msg.ArrivalCycle {
			best = i + 1
		}
	}
	return best
}
