package core

import (
	"strings"
	"testing"

	"mlnoc/internal/noc"
)

// syntheticMeshHeatmap builds a heatmap with prescribed row means by setting
// first-layer weights directly.
func syntheticMeshHeatmap(t *testing.T, la, hc float64) *Heatmap {
	t.Helper()
	spec := MeshSpec(3)
	agent := NewAgent(spec, AgentConfig{Hidden: 4, Seed: 1})
	l := agent.Net().Layers[0]
	fw := spec.Features.Width()
	for i := range l.W {
		l.W[i] = 0
	}
	for j := 0; j < l.Out; j++ {
		for slot := 0; slot < spec.ActionSize(); slot++ {
			l.W[j*l.In+slot*fw+1] = la // local age element
			l.W[j*l.In+slot*fw+3] = hc // hop count element
		}
	}
	return NewHeatmap(spec, agent.Net())
}

func TestDeriveMeshPolicyShiftSelection(t *testing.T) {
	cases := []struct {
		la, hc         float64
		wantLA, wantHC uint
	}{
		{1.0, 1.0, 1, 1}, // comparable -> the paper's 4x4 function
		{1.0, 2.5, 0, 2}, // hop dominant -> the paper's 8x8 function
		{2.5, 1.0, 2, 0}, // age dominant
		{1.0, 1.8, 1, 1}, // within 2x -> still balanced
	}
	for _, c := range cases {
		h := syntheticMeshHeatmap(t, c.la, c.hc)
		p, d, err := DeriveMeshPolicy(h)
		if err != nil {
			t.Fatalf("derive(la=%v hc=%v): %v", c.la, c.hc, err)
		}
		if p.LAShift != c.wantLA || p.HCShift != c.wantHC {
			t.Fatalf("derive(la=%v hc=%v) = (la<<%d, hc<<%d), want (la<<%d, hc<<%d)",
				c.la, c.hc, p.LAShift, p.HCShift, c.wantLA, c.wantHC)
		}
		if d.Notes == "" || p.Name() == "" {
			t.Fatal("missing derivation notes or name")
		}
	}
}

func TestDeriveMeshPolicyRejectsDegenerate(t *testing.T) {
	h := syntheticMeshHeatmap(t, 0, 0)
	if _, _, err := DeriveMeshPolicy(h); err == nil {
		t.Fatal("degenerate heatmap accepted")
	}
}

// syntheticAPUHeatmap sets the hop-count signs per port pair.
func syntheticAPUHeatmap(t *testing.T, weSign, nsSign, outSign float64) *Heatmap {
	t.Helper()
	spec := APUSpec()
	agent := NewAgent(spec, AgentConfig{Hidden: 4, Seed: 2})
	l := agent.Net().Layers[0]
	fw := spec.Features.Width()
	for i := range l.W {
		l.W[i] = 0
	}
	setHop := func(port noc.PortID, v float64) {
		for vc := 0; vc < spec.VCs; vc++ {
			slot := spec.Slot(port, vc)
			for j := 0; j < l.Out; j++ {
				l.W[j*l.In+slot*fw+3] = v
			}
		}
	}
	setHop(noc.PortWest, weSign)
	setHop(noc.PortEast, weSign)
	setHop(noc.PortNorth, nsSign)
	setHop(noc.PortSouth, nsSign)
	out := agent.Net().Layers[1]
	for i := range out.W {
		out.W[i] = outSign
	}
	return NewHeatmap(spec, agent.Net())
}

func TestDeriveAPUPortRule(t *testing.T) {
	// Negative W/E, positive N/S -> the paper's rule (invert W/E).
	h := syntheticAPUHeatmap(t, -0.5, 0.5, 1)
	p, d, err := DeriveAPUPortRule(h)
	if err != nil {
		t.Fatal(err)
	}
	if p.InvertNorthSouth {
		t.Fatalf("expected the paper's W/E rule, got N/S (%s)", d.Notes)
	}
	// Negative N/S, positive W/E -> the mirrored rule.
	h = syntheticAPUHeatmap(t, 0.5, -0.5, 1)
	p, d, err = DeriveAPUPortRule(h)
	if err != nil {
		t.Fatal(err)
	}
	if !p.InvertNorthSouth {
		t.Fatalf("expected the mirrored N/S rule (%s)", d.Notes)
	}
	// A negative output layer flips the reading (Section 4.6's check).
	h = syntheticAPUHeatmap(t, 0.5, -0.5, -1)
	p, _, err = DeriveAPUPortRule(h)
	if err != nil {
		t.Fatal(err)
	}
	if p.InvertNorthSouth {
		t.Fatal("negative output layer must flip the sign reading")
	}
}

// TestDeriveFromTrainedAgent closes the loop end to end: train, auto-derive,
// and check the derived policy evaluates competitively with the hand-derived
// one — the automation of the paper's Section 3.2 human step.
func TestDeriveFromTrainedAgent(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	cfg := MeshTrainConfig{Width: 4, Height: 4, Epochs: 20, EpochCycles: 1000, Seed: 6}
	tr := TrainMesh(cfg)
	tr.Agent.Freeze()
	h := NewHeatmap(tr.Spec, tr.Agent.Net())
	derived, d, err := DeriveMeshPolicy(h)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("derived (la<<%d, hc<<%d): %s", derived.LAShift, derived.HCShift, d.Notes)

	auto := EvaluateMeshPolicy(cfg, derived, 500, 4000).AvgLatency
	hand := EvaluateMeshPolicy(cfg, NewRLInspiredMesh4x4(), 500, 4000).AvgLatency
	nn := EvaluateMeshPolicy(cfg, tr.Agent, 500, 4000).AvgLatency
	t.Logf("latency: derived=%.2f hand=%.2f nn=%.2f", auto, hand, nn)
	if auto > hand*1.25 {
		t.Fatalf("auto-derived policy (%.2f) much worse than hand-derived (%.2f)", auto, hand)
	}
	if auto > nn {
		t.Fatalf("auto-derived policy (%.2f) worse than the network it came from (%.2f)", auto, nn)
	}
	if !strings.Contains(derived.Name(), "derived") {
		t.Fatal("derived policy not labelled")
	}
}
