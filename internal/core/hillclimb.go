package core

import "math/rand"

func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// HillClimbStep records one round of the Section 6.5 feature-selection
// procedure: the feature added this round, the resulting converged latency,
// and the full feature set after the addition.
type HillClimbStep struct {
	Added   Feature
	Latency float64
	Set     FeatureSet
	// Tried maps every candidate feature evaluated this round to its
	// converged latency, so callers can reproduce Fig. 13's per-feature
	// comparison from round one.
	Tried map[Feature]float64
}

// HillClimbResult is the outcome of hill-climbing feature selection.
type HillClimbResult struct {
	Steps []HillClimbStep
	// Best is the final feature set (the set after the last improving round).
	Best FeatureSet
	// BestLatency is the converged latency of Best.
	BestLatency float64
}

// HillClimb reproduces the Section 6.5 alternative analysis: train the agent
// with one feature at a time, keep the best, then retry all pairs containing
// it, and so on, stopping when adding any remaining feature no longer
// improves converged latency (or maxFeatures is reached).
//
// The paper reports this procedure converging on {local age, hop count} —
// the same features the heatmap analysis identified.
func HillClimb(cfg MeshTrainConfig, pool []Feature, maxFeatures int) *HillClimbResult {
	if len(pool) == 0 {
		pool = []Feature{FeatPayload, FeatLocalAge, FeatDistance, FeatHopCount}
	}
	if maxFeatures <= 0 || maxFeatures > len(pool) {
		maxFeatures = len(pool)
	}
	res := &HillClimbResult{BestLatency: -1}
	var current FeatureSet
	remaining := append([]Feature(nil), pool...)

	for len(current) < maxFeatures && len(remaining) > 0 {
		step := HillClimbStep{Tried: make(map[Feature]float64, len(remaining))}
		bestIdx, bestLat := -1, -1.0
		for i, f := range remaining {
			trial := append(append(FeatureSet(nil), current...), f)
			c := cfg
			c.Features = trial
			lat := TrainMesh(c).FinalLatency()
			step.Tried[f] = lat
			if bestIdx == -1 || lat < bestLat {
				bestIdx, bestLat = i, lat
			}
		}
		if res.BestLatency >= 0 && bestLat >= res.BestLatency {
			break // no remaining feature improves the converged latency
		}
		f := remaining[bestIdx]
		current = append(current, f)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		step.Added = f
		step.Latency = bestLat
		step.Set = append(FeatureSet(nil), current...)
		res.Steps = append(res.Steps, step)
		res.Best = step.Set
		res.BestLatency = bestLat
	}
	return res
}
