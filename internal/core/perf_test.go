package core

import (
	"math/rand"
	"testing"

	"mlnoc/internal/noc"
	"mlnoc/internal/rl"
	"mlnoc/internal/traffic"
)

// benchTrainLoop replicates the TrainMesh inner loop at quick scale (4x4
// mesh, 3 VCs, batch 32, one training batch per cycle) without the epoch
// reporting wrapper, so a benchmark iteration is exactly one training cycle.
func benchTrainLoop(seed int64) (*noc.Network, *traffic.Injector) {
	cfg := MeshTrainConfig{Seed: seed}
	cfg.applyDefaults()
	spec := NewStateSpec(
		[]noc.PortID{noc.PortCore, noc.PortNorth, noc.PortSouth, noc.PortWest, noc.PortEast},
		cfg.VCs, cfg.Features, DefaultNorm())
	agent := NewAgent(spec, AgentConfig{
		DQL:            rl.DQLConfig{BatchSize: 32, LR: 0.05, Gamma: 0.5, ReplayCap: 16000, SyncEvery: 2000},
		EpsStart:       0.5,
		EpsDecayCycles: 10000,
		Seed:           seed,
	})
	net, in := newMeshRun(cfg, agent)
	net.OnCycle = agent.OnCycle
	return net, in
}

func BenchmarkHotTrainingLoop(b *testing.B) {
	net, in := benchTrainLoop(3)
	for i := 0; i < 3000; i++ {
		in.Tick()
		net.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Tick()
		net.Step()
	}
}

// benchSelectSite builds a training agent plus a standing three-way
// arbitration at one (router, output) site, exercising the full Select path:
// state build, Q-inference, pending-decision bookkeeping and replay writes.
func benchSelectSite() (*Agent, *noc.ArbContext, []noc.Candidate) {
	spec := MeshSpec(3)
	agent := NewAgent(spec, AgentConfig{
		DQL:  rl.DQLConfig{ReplayCap: 256, BatchSize: 2},
		Seed: 5,
	})
	net, cores := noc.BuildMeshCores(noc.Config{Width: 4, Height: 4, VCs: 3, BufferCap: 2})
	mk := func(id uint64, src, dst int) *noc.Message {
		return &noc.Message{
			ID: id, Src: cores[src].ID, Dst: cores[dst].ID,
			SizeFlits: 1, GenCycle: 1, InjectCycle: 2,
			Distance: 3, HopCount: 1, ArrivalCycle: 50, ArrivalGap: 4,
		}
	}
	cands := []noc.Candidate{
		{Port: noc.PortWest, VC: 0, Msg: mk(1, 4, 3)},
		{Port: noc.PortEast, VC: 1, Msg: mk(2, 6, 0)},
		{Port: noc.PortCore, VC: 2, Msg: mk(3, 5, 12)},
	}
	ctx := &noc.ArbContext{Net: net, Router: net.RouterAt(1, 1), Out: noc.PortNorth, Cycle: 100}
	return agent, ctx, cands
}

func BenchmarkHotAgentSelect(b *testing.B) {
	agent, ctx, cands := benchSelectSite()
	for i := 0; i < 1024; i++ {
		agent.Select(ctx, cands)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.Select(ctx, cands)
	}
}

// TestAgentSelectZeroAllocs pins the tentpole contract: once the replay ring
// is full and evictions feed the freelists, a training-mode Select performs no
// heap allocations.
func TestAgentSelectZeroAllocs(t *testing.T) {
	agent, ctx, cands := benchSelectSite()
	// ReplayCap is 256; 1024 decisions guarantee the ring wrapped and the
	// state/valid freelists are warm.
	for i := 0; i < 1024; i++ {
		agent.Select(ctx, cands)
	}
	allocs := testing.AllocsPerRun(200, func() {
		agent.Select(ctx, cands)
	})
	if allocs != 0 {
		t.Fatalf("Select allocates %v objects per decision, want 0", allocs)
	}
}

// TestStateRecyclingNoAliasing drives a small-ring training agent long enough
// for heavy slice recycling, then checks the freelist safety invariant: no two
// live experiences share a State buffer, and nothing on the freelists aliases
// a live State, Next or pending-decision state. A violation here would mean a
// recycled vector is being overwritten while a replay tuple still reads it.
func TestStateRecyclingNoAliasing(t *testing.T) {
	spec := MeshSpec(3)
	agent := NewAgent(spec, AgentConfig{
		DQL:  rl.DQLConfig{ReplayCap: 64, BatchSize: 4, SyncEvery: 50, LR: 0.05, Gamma: 0.5},
		Seed: 8,
	})
	net, cores := noc.BuildMeshCores(noc.Config{Width: 4, Height: 4, VCs: 3, BufferCap: 2})
	net.SetPolicy(agent)
	in := traffic.NewInjector(cores, traffic.UniformRandom{}, 0.35, rand.New(rand.NewSource(12)))
	in.Classes = 3
	net.OnCycle = agent.OnCycle
	evictions := 0
	recycle := agent.DQL.Replay.OnEvict
	agent.DQL.Replay.OnEvict = func(e *rl.Experience) {
		evictions++
		recycle(e)
	}
	for i := 0; i < 3000; i++ {
		in.Tick()
		net.Step()
	}

	// An experience's Next legitimately aliases a younger experience's State
	// (that is the s' = next s chaining), so only State-vs-State duplication
	// is a bug; the freelist must alias none of them.
	states := map[*float64]int{}
	live := map[*float64]bool{}
	r := agent.DQL.Replay
	for i := 0; i < r.Len(); i++ {
		e := r.At(i)
		if j, dup := states[&e.State[0]]; dup {
			t.Fatalf("experiences %d and %d share one State buffer", j, i)
		}
		states[&e.State[0]] = i
		live[&e.State[0]] = true
		if len(e.Next) > 0 {
			live[&e.Next[0]] = true
		}
	}
	for _, p := range agent.pending {
		live[&p.state[0]] = true
	}
	for i, s := range agent.stateFree {
		if live[&s[0]] {
			t.Fatalf("freelist entry %d aliases a live state buffer", i)
		}
	}
	if evictions == 0 {
		t.Fatal("run too short: replay ring never evicted, invariant untested")
	}
}
