package core

import (
	"fmt"
	"math"

	"mlnoc/internal/noc"
)

// This file implements a first cut at the gap the paper's conclusion calls
// out as future work: going from the trained network to an implementable
// algorithm automatically. "The current state of the art in ML does not
// provide an automatic method or process to go from a trained NN to an
// implementable algorithm" (Section 3.2) — the heuristics here mechanize the
// two specific readings the paper's architects performed by hand:
//
//  1. Fig. 4: compare the local-age and hop-count row magnitudes and turn
//     their ratio into the shift amounts of the mesh priority function.
//  2. Fig. 7 / Section 4.6: read the per-port signs of the hop-count row
//     (against the output-layer sign) and pick the port pair whose hop
//     priority should descend.
//
// They are deliberately simple — the point is to reproduce the paper's two
// derivations from their stated evidence, not to claim general NN
// distillation.

// Derivation reports how a policy was derived from a heatmap.
type Derivation struct {
	// LARow and HCRow are the heatmap rows used.
	LARow, HCRow int
	// LAWeight and HCWeight are the mean |w| of those rows.
	LAWeight, HCWeight float64
	// LAShift and HCShift are the derived shifts.
	LAShift, HCShift uint
	// InvertNorthSouth is the derived APU port rule (APU derivations only).
	InvertNorthSouth bool
	// Notes explains the decision in the paper's vocabulary.
	Notes string
}

// featureRow locates a feature's row in the heatmap by label; one-hot
// features match their first element.
func featureRow(h *Heatmap, label string) (int, error) {
	for i, l := range h.RowLabels {
		if l == label {
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: heatmap has no %q row", label)
}

// DeriveMeshPolicy converts a trained mesh agent's heatmap into the paper's
// Section 3.2 priority function: the relative magnitude of the local-age and
// hop-count rows sets the shift amounts, exactly the reading that produced
// (la<<1)+(hc<<1) on the 4x4 mesh and la+(hc<<2) on the 8x8 mesh.
func DeriveMeshPolicy(h *Heatmap) (*RLInspiredMesh, *Derivation, error) {
	laRow, err := featureRow(h, FeatLocalAge.String())
	if err != nil {
		return nil, nil, err
	}
	hcRow, err := featureRow(h, FeatHopCount.String())
	if err != nil {
		return nil, nil, err
	}
	d := &Derivation{
		LARow: laRow, HCRow: hcRow,
		LAWeight: h.RowMean(laRow), HCWeight: h.RowMean(hcRow),
	}
	if d.LAWeight <= 0 || d.HCWeight <= 0 {
		return nil, nil, fmt.Errorf("core: degenerate heatmap (zero feature rows)")
	}
	// Shift split from the magnitude ratio: comparable weights share the
	// shift budget; a 2x dominant feature takes all of it.
	ratio := math.Log2(d.HCWeight / d.LAWeight)
	switch {
	case ratio >= 1: // hop count clearly dominant (the paper's 8x8 case)
		d.LAShift, d.HCShift = 0, 2
		d.Notes = "hop count dominant: global age is better approximated through hop count"
	case ratio <= -1: // local age clearly dominant
		d.LAShift, d.HCShift = 2, 0
		d.Notes = "local age dominant: waiting time drives priority"
	default: // comparable (the paper's 4x4 case)
		d.LAShift, d.HCShift = 1, 1
		d.Notes = "local age and hop count carry similar weight"
	}
	p := &RLInspiredMesh{
		LAShift: d.LAShift, HCShift: d.HCShift, HopBits: 4,
		label: fmt.Sprintf("rl-derived(la<<%d,hc<<%d)", d.LAShift, d.HCShift),
	}
	return p, d, nil
}

// DeriveAPUPortRule reads the per-port hop-count signs of a trained APU
// agent's heatmap — the Section 4.6 analysis — and returns the Algorithm 2
// variant with the hop inversion on the port pair whose signed weights are
// more negative (after orienting by the output-layer sign).
func DeriveAPUPortRule(h *Heatmap) (*RLInspiredAPU, *Derivation, error) {
	hcRow, err := featureRow(h, FeatHopCount.String())
	if err != nil {
		return nil, nil, err
	}
	d := &Derivation{HCRow: hcRow, HCWeight: h.RowMean(hcRow)}
	we := h.PortSignedMean(hcRow, noc.PortWest.String()) +
		h.PortSignedMean(hcRow, noc.PortEast.String())
	ns := h.PortSignedMean(hcRow, noc.PortNorth.String()) +
		h.PortSignedMean(hcRow, noc.PortSouth.String())
	// With a negative output layer the hidden-weight signs read inverted
	// (Section 4.6 checks this before interpreting).
	if h.OutputWeightMean < 0 {
		we, ns = -we, -ns
	}
	p := &RLInspiredAPU{}
	if ns < we {
		p.InvertNorthSouth = true
		d.InvertNorthSouth = true
		d.Notes = "hop-count weights more negative on N/S: prioritize smaller hop counts there"
	} else {
		d.Notes = "hop-count weights more negative on W/E: prioritize smaller hop counts there (the paper's rule)"
	}
	return p, d, nil
}
