package core

import (
	"bytes"
	"testing"

	"mlnoc/internal/arb"
	"mlnoc/internal/noc"
	"mlnoc/internal/rl"
	"mlnoc/internal/traffic"
)

// recordDataset drives a mesh under a behaviour policy and returns the
// recorded dataset.
func recordDataset(t *testing.T, cycles int, seed int64) (*Recorder, *StateSpec) {
	t.Helper()
	spec := MeshSpec(3)
	rec := NewRecorder(spec, arb.NewRoundRobin())
	net, cores := noc.BuildMeshCores(noc.Config{Width: 4, Height: 4, VCs: 3, BufferCap: 1})
	net.SetPolicy(rec)
	net.OnCycle = rec.OnCycle
	in := traffic.NewInjector(cores, traffic.UniformRandom{}, 0.22, newRNG(seed))
	in.Classes = 3
	for i := 0; i < cycles; i++ {
		in.Tick()
		net.Step()
	}
	rec.Flush()
	net.Drain(100000)
	return rec, spec
}

func TestRecorderCollects(t *testing.T) {
	rec, spec := recordDataset(t, 2000, 7)
	if rec.Data.Len() < 500 {
		t.Fatalf("recorded only %d experiences", rec.Data.Len())
	}
	// Shapes validated by Dataset.Add; sanity-check rewards are the binary
	// global-age signal.
	zeros, ones := 0, 0
	for _, e := range rec.Data.Records {
		switch e.Reward {
		case 0:
			zeros++
		case 1:
			ones++
		default:
			t.Fatalf("unexpected reward %v", e.Reward)
		}
		if len(e.State) != spec.InputSize() {
			t.Fatal("state size mismatch")
		}
	}
	if zeros == 0 || ones == 0 {
		t.Fatalf("degenerate reward distribution: %d zeros, %d ones", zeros, ones)
	}
}

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	rec, _ := recordDataset(t, 500, 8)
	var buf bytes.Buffer
	if err := rec.Data.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := rl.LoadDataset(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Len() != rec.Data.Len() || got.StateSize != rec.Data.StateSize ||
		got.Actions != rec.Data.Actions {
		t.Fatal("round trip changed shapes")
	}
	a, b := rec.Data.Records[0], got.Records[0]
	if a.Action != b.Action || a.Reward != b.Reward || len(a.State) != len(b.State) {
		t.Fatal("round trip changed records")
	}
}

func TestLoadDatasetRejectsGarbage(t *testing.T) {
	if _, err := rl.LoadDataset(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestOfflineTrainingImprovesPolicy is the end-to-end offline workflow of
// Fig. 2: record a dataset under round-robin behaviour, train a network
// offline from it, and verify the frozen network picks the globally oldest
// candidate far more often than the behaviour policy did.
func TestOfflineTrainingImprovesPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy")
	}
	rec, spec := recordDataset(t, 6000, 9)

	agent := NewAgent(spec, AgentConfig{Hidden: 15, Seed: 1, DQL: rl.DQLConfig{
		LR: 0.05, Gamma: 0.1, SyncEvery: 2000, BatchSize: 1,
	}})
	last := agent.DQL.TrainOffline(newRNG(2), rec.Data, 20)
	if last <= 0 {
		t.Fatalf("offline training reported TD error %v", last)
	}
	agent.Freeze()

	// Shadow-evaluate the frozen network on live traffic: fraction of
	// contended arbitrations where it grants the globally oldest candidate.
	hits, total := 0, 0
	probe := policyFunc(func(ctx *noc.ArbContext, cands []noc.Candidate) int {
		choice := agent.Select(ctx, cands)
		oldest := 0
		for i, c := range cands {
			if c.Msg.InjectCycle < cands[oldest].Msg.InjectCycle {
				oldest = i
			}
		}
		total++
		if cands[choice].Msg.InjectCycle == cands[oldest].Msg.InjectCycle {
			hits++
		}
		return choice
	})
	cfg := MeshTrainConfig{Width: 4, Height: 4, Seed: 31}
	EvaluateMeshPolicy(cfg, probe, 500, 3000)
	if total == 0 {
		t.Fatal("no contended arbitrations")
	}
	acc := float64(hits) / float64(total)
	if acc < 0.55 {
		t.Fatalf("offline-trained agent oldest-pick accuracy %.2f, want > 0.55", acc)
	}
}

func TestTrainOfflineValidation(t *testing.T) {
	spec := MeshSpec(3)
	agent := NewAgent(spec, AgentConfig{Hidden: 8, Seed: 1})
	empty := rl.NewDataset(spec.InputSize(), spec.ActionSize())
	if got := agent.DQL.TrainOffline(newRNG(1), empty, 3); got != 0 {
		t.Fatalf("empty dataset trained: %v", got)
	}
	wrong := rl.NewDataset(10, 3)
	wrong.Add(rl.Experience{State: make([]float64, 10), Action: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch accepted")
		}
	}()
	agent.DQL.TrainOffline(newRNG(1), wrong, 1)
}
