package core

import (
	"math/rand"

	"mlnoc/internal/nn"
	"mlnoc/internal/noc"
	"mlnoc/internal/rl"
)

// Agent is the shared RL arbitration agent (Section 3.1.1 / Algorithm 1).
// One Agent — one set of neural-network weights — serves every output port of
// every router: each arbitration builds the router's state vector, the
// network produces a Q-value per input-buffer slot, and the output port is
// granted to the competing buffer with the highest Q-value (with ε-greedy
// exploration while training).
//
// In training mode the agent records <s, a, r, s'> experiences — the next
// state of a decision is the state observed at the same (router, output)
// site's following arbitration — and runs one replay batch per cycle through
// its OnCycle hook.
type Agent struct {
	Spec   *StateSpec
	DQL    *rl.DQL
	Reward *rl.RewardTracker

	// Training enables exploration and experience collection. With Training
	// false the agent is the paper's "NN" evaluation policy: pure greedy
	// inference on the trained weights.
	Training bool

	// Infer, when non-nil, replaces the online float network for the greedy
	// Q-value lookup in Select — the seam the quantization-fidelity study
	// uses to deploy an nn.Quantized INT8 engine (the software twin of the
	// paper's Table 3 MAC array) behind an otherwise unchanged policy.
	// Training updates always flow through the float network regardless.
	Infer nn.Inference

	// EpsStart and EpsDecayCycles define an exploration schedule: epsilon
	// decays linearly from EpsStart to the configured floor over
	// EpsDecayCycles training cycles. With EpsDecayCycles zero the floor is
	// used throughout (the paper's fixed epsilon).
	EpsStart       float64
	EpsDecayCycles int64

	cyclesSeen int64

	rng *rand.Rand

	// pending holds, per (router, output) arbitration site, the last
	// decision awaiting its next state.
	pending map[int64]pendingDecision

	// stateFree and validFree recycle the State/NextValid slices handed
	// back by the replay ring on eviction, making steady-state Select
	// allocation-free. evalState is the single state buffer reused by
	// inference-only (non-training) agents, which never retain states.
	stateFree [][]float64
	validFree [][]int
	evalState []float64

	decisions int64
	explored  int64
}

type pendingDecision struct {
	state  []float64
	action int
	reward float64
}

// AgentConfig configures NewAgent.
type AgentConfig struct {
	// Hidden is the hidden-layer width (paper: 15 for the mesh agent, 42 for
	// the APU agent).
	Hidden int
	// DQL holds the Q-learning hyperparameters (zero fields take the paper's
	// Section 4.6 defaults).
	DQL rl.DQLConfig
	// Reward selects the reward function (default: global age).
	Reward rl.RewardKind
	// EpsStart and EpsDecayCycles configure linear exploration decay from
	// EpsStart down to DQL.Epsilon over EpsDecayCycles cycles. Zero values
	// disable the schedule (fixed epsilon, as in the paper).
	EpsStart       float64
	EpsDecayCycles int64
	// Seed seeds the agent's private RNG.
	Seed int64
}

// NewAgent builds an agent for the given state spec: a one-hidden-layer MLP
// (sigmoid hidden activation, ReLU output — Section 4.6) wrapped in a deep
// Q-learner with replay memory and target network.
func NewAgent(spec *StateSpec, cfg AgentConfig) *Agent {
	if cfg.Hidden <= 0 {
		cfg.Hidden = spec.ActionSize()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// The paper's architecture is sigmoid hidden / ReLU output (Section
	// 4.6); the output layer here is leaky ReLU, which keeps the same
	// non-negative Q shape while avoiding dying-ReLU outputs that can never
	// recover under bootstrapped targets.
	net := nn.New(
		[]int{spec.InputSize(), cfg.Hidden, spec.ActionSize()},
		[]nn.Activation{nn.Sigmoid, nn.LeakyReLU},
		rng,
	)
	if cfg.DQL.Epsilon == 0 {
		cfg.DQL.Epsilon = 0.001
	}
	a := &Agent{
		Spec:           spec,
		DQL:            rl.NewDQL(net, cfg.DQL),
		Reward:         rl.NewRewardTracker(cfg.Reward),
		Training:       true,
		EpsStart:       cfg.EpsStart,
		EpsDecayCycles: cfg.EpsDecayCycles,
		rng:            rng,
		pending:        make(map[int64]pendingDecision),
	}
	a.DQL.Replay.OnEvict = a.recycleExperience
	return a
}

// recycleExperience returns an evicted experience's slices to the freelists.
// Only State and NextValid are recycled: an evicted experience's Next slice
// is the State of a younger, still-live experience (or of a pending
// decision); it comes back through its own eviction. The ring's FIFO order
// guarantees the one experience whose Next aliased this State is already
// gone, so recycling State here can never corrupt a live tuple.
func (a *Agent) recycleExperience(e *rl.Experience) {
	if e.State != nil {
		a.stateFree = append(a.stateFree, e.State)
	}
	if e.NextValid != nil {
		a.validFree = append(a.validFree, e.NextValid[:0])
	}
}

// takeState returns a recycled state vector or allocates one while the
// freelist warms up.
func (a *Agent) takeState() []float64 {
	if k := len(a.stateFree); k > 0 {
		s := a.stateFree[k-1]
		a.stateFree = a.stateFree[:k-1]
		return s
	}
	return make([]float64, a.Spec.InputSize())
}

// takeValid returns a recycled NextValid slice of length n. Fresh slices are
// allocated with the full action-size capacity so any later reuse fits.
func (a *Agent) takeValid(n int) []int {
	if k := len(a.validFree); k > 0 {
		v := a.validFree[k-1]
		a.validFree = a.validFree[:k-1]
		if cap(v) >= n {
			return v[:n]
		}
	}
	return make([]int, n, a.Spec.ActionSize())
}

// Epsilon returns the current exploration rate under the decay schedule.
func (a *Agent) Epsilon() float64 {
	floor := a.DQL.Cfg.Epsilon
	if a.EpsDecayCycles <= 0 || a.EpsStart <= floor {
		return floor
	}
	frac := float64(a.cyclesSeen) / float64(a.EpsDecayCycles)
	if frac >= 1 {
		return floor
	}
	return a.EpsStart - (a.EpsStart-floor)*frac
}

// NewAgentWithNet wraps a pre-trained network in an evaluation-only agent
// (the figures' "NN" policy).
func NewAgentWithNet(spec *StateSpec, net *nn.MLP, seed int64) *Agent {
	a := &Agent{
		Spec:    spec,
		DQL:     rl.NewDQL(net, rl.DQLConfig{}),
		Reward:  rl.NewRewardTracker(rl.RewardGlobalAge),
		rng:     rand.New(rand.NewSource(seed)),
		pending: make(map[int64]pendingDecision),
	}
	a.DQL.Replay.OnEvict = a.recycleExperience
	return a
}

// Net returns the online Q-network.
func (a *Agent) Net() *nn.MLP { return a.DQL.Online }

// Name implements noc.Policy.
func (a *Agent) Name() string {
	if a.Training {
		return "rl-agent"
	}
	return "nn"
}

// Decisions returns the number of multi-candidate arbitrations performed.
func (a *Agent) Decisions() int64 { return a.decisions }

// ExplorationFraction returns the fraction of decisions taken randomly.
func (a *Agent) ExplorationFraction() float64 {
	if a.decisions == 0 {
		return 0
	}
	return float64(a.explored) / float64(a.decisions)
}

func siteKey(ctx *noc.ArbContext) int64 {
	return int64(ctx.Router.ID())*noc.MaxPorts + int64(ctx.Out)
}

// Select implements noc.Policy (Algorithm 1). The engine has already removed
// ineligible requesters (granted input ports, full downstream buffers), so
// the Q-value walk of Algorithm 1 lines 9-19 reduces to an argmax over the
// remaining candidates.
func (a *Agent) Select(ctx *noc.ArbContext, cands []noc.Candidate) int {
	a.decisions++
	var state []float64
	if a.Training {
		// Training retains states in experiences; draw from the freelist
		// fed by replay-ring evictions.
		state = a.takeState()
	} else {
		// Inference never retains the state: one reusable buffer suffices.
		if a.evalState == nil {
			a.evalState = make([]float64, a.Spec.InputSize())
		}
		state = a.evalState
	}
	a.Spec.BuildStateInto(state, ctx.Net, ctx.Cycle, cands)

	// Algorithm 1 line 10: with probability epsilon the router selects a
	// random candidate. The paper keeps this in the deployed decision
	// algorithm, not just during training; besides exploration it acts as an
	// escape hatch against persistent-loser patterns of a frozen network.
	choice := 0
	if a.rng.Float64() < a.Epsilon() {
		choice = a.rng.Intn(len(cands))
		a.explored++
	} else {
		var q []float64
		if a.Infer != nil {
			q = a.Infer.Forward(state)
		} else {
			q = a.DQL.Online.Forward(state)
		}
		bestQ := q[a.Spec.Slot(cands[0].Port, cands[0].VC)]
		for i, c := range cands[1:] {
			if v := q[a.Spec.Slot(c.Port, c.VC)]; v > bestQ {
				bestQ, choice = v, i+1
			}
		}
	}

	if a.Training {
		key := siteKey(ctx)
		if prev, ok := a.pending[key]; ok {
			valid := a.takeValid(len(cands))
			for i, c := range cands {
				valid[i] = a.Spec.Slot(c.Port, c.VC)
			}
			a.DQL.Observe(rl.Experience{
				State:     prev.state,
				Action:    prev.action,
				Reward:    prev.reward,
				Next:      state,
				NextValid: valid,
			})
		}
		a.pending[key] = pendingDecision{
			state:  state,
			action: a.Spec.Slot(cands[choice].Port, cands[choice].VC),
			reward: a.Reward.DecisionReward(ctx, cands, choice),
		}
	}
	return choice
}

// OnCycle refreshes the reward tracker and, in training mode, runs one replay
// training batch. Install it as the network's OnCycle hook.
func (a *Agent) OnCycle(n *noc.Network) {
	a.Reward.OnCycle(n)
	if a.Training {
		a.cyclesSeen++
		if a.DQL.Trace != nil {
			a.DQL.Trace.ObserveEpsilon(a.Epsilon())
		}
		a.DQL.TrainBatch(a.rng)
	}
}

// FlushPending converts all incomplete decisions into terminal experiences
// (no successor state). Useful at the end of a training phase so the final
// rewards are not lost.
func (a *Agent) FlushPending() {
	for key, p := range a.pending {
		a.DQL.Observe(rl.Experience{State: p.state, Action: p.action, Reward: p.reward})
		delete(a.pending, key)
	}
}

// Freeze switches the agent to pure-inference mode (the "NN" policy):
// exploration and learning stop, pending experiences are flushed.
func (a *Agent) Freeze() {
	a.FlushPending()
	a.Training = false
}
