// Package core implements the paper's primary contribution: the RL-driven
// NoC arbitration framework and the human-distilled "RL-inspired" arbiters.
//
// It contains the Table 2 message features and their normalization, the
// Section 4.4 router state vector, the Algorithm 1 agent arbitration policy
// (deep Q-learning over state vectors), the Section 3.2 and Algorithm 2
// RL-inspired priority arbiters plus the Section 5.1 de-featured ablations,
// the weight heatmap analysis of Figs. 4 and 7, the training harness behind
// Figs. 12 and 13, and the Section 6.5 hill-climbing feature selection.
package core

import (
	"fmt"

	"mlnoc/internal/noc"
	"mlnoc/internal/stats"
)

// Feature identifies one of the Table 2 message features.
type Feature int

// The Table 2 features, in the paper's order.
const (
	FeatPayload      Feature = iota // size of the message in flits
	FeatLocalAge                    // cycles waited at the current router
	FeatDistance                    // hops from source to destination router
	FeatHopCount                    // hops traversed so far
	FeatInflight                    // outstanding requests from the source node
	FeatInterArrival                // gap between consecutive arrivals at the buffer
	FeatMsgType                     // one-hot: request / response / coherence
	FeatDstType                     // one-hot: core / cache / memory

	NumFeatures = 8
)

// String implements fmt.Stringer.
func (f Feature) String() string {
	switch f {
	case FeatPayload:
		return "payload size"
	case FeatLocalAge:
		return "local age"
	case FeatDistance:
		return "distance"
	case FeatHopCount:
		return "hop count"
	case FeatInflight:
		return "# in-flight msg"
	case FeatInterArrival:
		return "inter-arrival time"
	case FeatMsgType:
		return "message type"
	case FeatDstType:
		return "destination type"
	}
	return fmt.Sprintf("Feature(%d)", int(f))
}

// Width returns the number of state-vector elements the feature occupies:
// 1 for scalar features, 3 for the one-hot categorical features. With all
// eight features a message needs 12 elements (Section 4.3).
func (f Feature) Width() int {
	if f == FeatMsgType || f == FeatDstType {
		return 3
	}
	return 1
}

// FeatureSet is an ordered list of features used to build state vectors.
// Fig. 13's single-feature experiments use one-element sets; the full APU
// agent uses AllFeatures.
type FeatureSet []Feature

// AllFeatures is the complete Table 2 feature set (12 elements per message).
var AllFeatures = FeatureSet{
	FeatPayload, FeatLocalAge, FeatDistance, FeatHopCount,
	FeatInflight, FeatInterArrival, FeatMsgType, FeatDstType,
}

// MeshFeatures is the Section 3.2 synthetic-traffic feature set (4 elements
// per message): payload size, local age, distance, hop count.
var MeshFeatures = FeatureSet{FeatPayload, FeatLocalAge, FeatDistance, FeatHopCount}

// Width returns the total number of state-vector elements per message.
func (fs FeatureSet) Width() int {
	w := 0
	for _, f := range fs {
		w += f.Width()
	}
	return w
}

// Labels returns one label per state-vector element, expanding one-hot
// features ("message type: request", ...). Used for heatmap row labels.
func (fs FeatureSet) Labels() []string {
	var out []string
	for _, f := range fs {
		switch f {
		case FeatMsgType:
			out = append(out, "msg type: request", "msg type: response", "msg type: coherence")
		case FeatDstType:
			out = append(out, "dst type: core", "dst type: cache", "dst type: memory")
		default:
			out = append(out, f.String())
		}
	}
	return out
}

// NormConfig holds the normalization caps that map each scalar feature into
// [0,1]. Section 6.2 explains why normalization is required: unbounded
// features such as local age would otherwise dominate neuron sums and
// destabilize training.
type NormConfig struct {
	PayloadCap  float64
	LocalAgeCap float64
	DistanceCap float64
	HopCap      float64
	InflightCap float64
	GapCap      float64
}

// DefaultNorm returns normalization caps suitable for meshes up to 8x8 with
// messages up to 8 flits.
func DefaultNorm() NormConfig {
	return NormConfig{
		PayloadCap:  8,
		LocalAgeCap: 63,
		DistanceCap: 15,
		HopCap:      15,
		InflightCap: 32,
		GapCap:      63,
	}
}

// Extract writes the normalized feature values of message m into dst (which
// must have length fs.Width()) and returns dst. The message must currently
// reside in an input buffer of a router in net.
func (fs FeatureSet) Extract(dst []float64, norm *NormConfig, net *noc.Network, now int64, m *noc.Message) []float64 {
	i := 0
	for _, f := range fs {
		switch f {
		case FeatPayload:
			dst[i] = stats.Clamp01(float64(m.SizeFlits) / norm.PayloadCap)
			i++
		case FeatLocalAge:
			// Soft normalization la/(la+cap/2): stays in [0,1) like the
			// paper's normalization, but remains strictly increasing so a
			// long-waiting message's Q-value keeps growing instead of
			// saturating — a hard clamp lets the network starve a message it
			// has ranked last once its age passes the cap.
			la := float64(m.LocalAge(now))
			dst[i] = la / (la + norm.LocalAgeCap/2)
			i++
		case FeatDistance:
			dst[i] = stats.Clamp01(float64(m.Distance) / norm.DistanceCap)
			i++
		case FeatHopCount:
			dst[i] = stats.Clamp01(float64(m.HopCount) / norm.HopCap)
			i++
		case FeatInflight:
			dst[i] = stats.Clamp01(float64(net.OutstandingFrom(m.Src)) / norm.InflightCap)
			i++
		case FeatInterArrival:
			dst[i] = stats.Clamp01(float64(m.ArrivalGap) / norm.GapCap)
			i++
		case FeatMsgType:
			dst[i], dst[i+1], dst[i+2] = 0, 0, 0
			dst[i+int(m.Type)] = 1
			i += 3
		case FeatDstType:
			dst[i], dst[i+1], dst[i+2] = 0, 0, 0
			dst[i+int(m.DstKind)] = 1
			i += 3
		default:
			panic(fmt.Sprintf("core: unknown feature %v", f))
		}
	}
	return dst
}
