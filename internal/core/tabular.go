package core

import (
	"math/rand"

	"mlnoc/internal/noc"
	"mlnoc/internal/rl"
)

// TabularAgent is a tabular Q-learning arbitration policy — the approach the
// paper's Section 2.2 rules out for this problem because the state space
// cannot be enumerated. It exists to quantify that argument: even after
// aggressive discretization (a few bits per buffer), the table keeps growing
// with every new traffic situation while the DQL agent's parameter count is
// fixed, and at equal training budget the table generalizes worse (every
// state must be visited to be learned).
//
// States are discretized per buffer slot — occupancy, a coarse local-age
// bucket and a coarse hop bucket — and hashed with FNV-1a into the table key.
type TabularAgent struct {
	Spec  *StateSpec
	Table *rl.QTable
	// AgeBits and HopBits control discretization (default 2 bits each).
	AgeBits, HopBits uint
	// Training enables exploration and learning.
	Training bool
	// Epsilon is the exploration rate while training.
	Epsilon float64

	Reward *rl.RewardTracker

	rng     *rand.Rand
	pending map[int64]*tabPending

	decisions int64
}

type tabPending struct {
	state  uint64
	action int
	reward float64
}

// NewTabularAgent creates a tabular agent over the spec's action space.
func NewTabularAgent(spec *StateSpec, seed int64) *TabularAgent {
	return &TabularAgent{
		Spec:     spec,
		Table:    rl.NewQTable(spec.ActionSize(), 0.2, 0.5),
		AgeBits:  2,
		HopBits:  2,
		Training: true,
		Epsilon:  0.05,
		Reward:   rl.NewRewardTracker(rl.RewardGlobalAge),
		rng:      rand.New(rand.NewSource(seed)),
		pending:  make(map[int64]*tabPending),
	}
}

// Name implements noc.Policy.
func (a *TabularAgent) Name() string { return "q-table" }

// Decisions returns the number of contended arbitrations handled.
func (a *TabularAgent) Decisions() int64 { return a.decisions }

// bucket discretizes v into 2^bits levels with a doubling scale
// (0, 1-2, 3-6, 7+ for 2 bits).
func bucket(v int64, bits uint) uint64 {
	limit := int64(1)
	var b uint64
	for b = 0; b < (1<<bits)-1; b++ {
		if v < limit {
			return b
		}
		limit *= 2 * (int64(b) + 1)
	}
	return b
}

// encode hashes the discretized arbitration state: for every candidate, its
// slot, age bucket and hop bucket (FNV-1a over the tuples).
func (a *TabularAgent) encode(now int64, cands []noc.Candidate) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	for _, c := range cands {
		mix(uint64(a.Spec.Slot(c.Port, c.VC)) + 1)
		mix(bucket(c.Msg.LocalAge(now), a.AgeBits))
		mix(bucket(int64(c.Msg.HopCount), a.HopBits))
	}
	return h
}

func (a *TabularAgent) validSlots(cands []noc.Candidate) []int {
	valid := make([]int, len(cands))
	for i, c := range cands {
		valid[i] = a.Spec.Slot(c.Port, c.VC)
	}
	return valid
}

// Select implements noc.Policy.
func (a *TabularAgent) Select(ctx *noc.ArbContext, cands []noc.Candidate) int {
	a.decisions++
	state := a.encode(ctx.Cycle, cands)
	valid := a.validSlots(cands)

	var slot int
	if a.Training {
		slot = a.Table.EpsilonGreedy(a.rng, state, valid, a.Epsilon)
	} else {
		slot, _ = a.Table.Best(state, valid)
	}
	choice := 0
	for i, s := range valid {
		if s == slot {
			choice = i
			break
		}
	}

	if a.Training {
		key := siteKey(ctx)
		if prev := a.pending[key]; prev != nil {
			a.Table.Update(prev.state, prev.action, prev.reward, state, valid)
		}
		a.pending[key] = &tabPending{
			state:  state,
			action: slot,
			reward: a.Reward.DecisionReward(ctx, cands, choice),
		}
	}
	return choice
}

// OnCycle refreshes the reward tracker; install as the network OnCycle hook.
func (a *TabularAgent) OnCycle(n *noc.Network) { a.Reward.OnCycle(n) }

// Freeze stops exploration and learning.
func (a *TabularAgent) Freeze() { a.Training = false }
