package core

import (
	"testing"

	"mlnoc/internal/noc"
	"mlnoc/internal/traffic"
)

func TestBucketMonotonic(t *testing.T) {
	prev := uint64(0)
	for v := int64(0); v < 1000; v++ {
		b := bucket(v, 2)
		if b < prev {
			t.Fatalf("bucket(%d) = %d < bucket(%d) = %d", v, b, v-1, prev)
		}
		if b > 3 {
			t.Fatalf("bucket(%d) = %d exceeds 2 bits", v, b)
		}
		prev = b
	}
	if bucket(0, 2) != 0 {
		t.Fatal("bucket(0) != 0")
	}
	if bucket(1000, 2) != 3 {
		t.Fatal("large values must saturate the top bucket")
	}
}

func TestTabularEncodeDiscriminates(t *testing.T) {
	spec := MeshSpec(3)
	a := NewTabularAgent(spec, 1)
	c1 := []noc.Candidate{
		{Port: noc.PortCore, VC: 0, Msg: &noc.Message{ArrivalCycle: 100, HopCount: 0}},
	}
	c2 := []noc.Candidate{
		{Port: noc.PortWest, VC: 0, Msg: &noc.Message{ArrivalCycle: 100, HopCount: 0}},
	}
	c3 := []noc.Candidate{
		{Port: noc.PortCore, VC: 0, Msg: &noc.Message{ArrivalCycle: 50, HopCount: 0}},
	}
	now := int64(100)
	if a.encode(now, c1) == a.encode(now, c2) {
		t.Fatal("different slots encode identically")
	}
	if a.encode(now, c1) == a.encode(now, c3) {
		t.Fatal("different age buckets encode identically")
	}
	// Same discretized situation encodes identically (determinism).
	if a.encode(now, c1) != a.encode(now, c1) {
		t.Fatal("encode not deterministic")
	}
}

func TestTabularAgentLearnsAndGrows(t *testing.T) {
	spec := MeshSpec(3)
	agent := NewTabularAgent(spec, 2)
	net, cores := noc.BuildMeshCores(noc.Config{Width: 4, Height: 4, VCs: 3, BufferCap: 1})
	net.SetPolicy(agent)
	net.OnCycle = agent.OnCycle
	in := traffic.NewInjector(cores, traffic.UniformRandom{}, 0.2, newRNG(3))
	in.Classes = 3
	for i := 0; i < 4000; i++ {
		in.Tick()
		net.Step()
	}
	if agent.Decisions() == 0 {
		t.Fatal("no contended arbitrations")
	}
	if agent.Table.States() < 100 {
		t.Fatalf("table has only %d states after 4000 cycles", agent.Table.States())
	}
	if agent.Table.Bytes() <= 0 {
		t.Fatal("non-positive table size")
	}
	grew := agent.Table.States()
	agent.Freeze()
	for i := 0; i < 1000; i++ {
		in.Tick()
		net.Step()
	}
	if agent.Table.States() != grew {
		t.Fatal("frozen tabular agent still growing its table")
	}
	net.Drain(100000)
}

func TestQuadrantAssign(t *testing.T) {
	net, _ := noc.BuildMeshCores(noc.Config{Width: 4, Height: 4, VCs: 1})
	assign := QuadrantAssign(4, 4)
	want := map[noc.Coord]int{
		{X: 0, Y: 0}: 0, {X: 3, Y: 0}: 1, {X: 0, Y: 3}: 2, {X: 3, Y: 3}: 3,
		{X: 1, Y: 1}: 0, {X: 2, Y: 2}: 3,
	}
	for _, r := range net.Routers() {
		if w, ok := want[r.Coord]; ok {
			if got := assign(r); got != w {
				t.Fatalf("router %v assigned to %d, want %d", r.Coord, got, w)
			}
		}
	}
}

func TestMultiAgentDispatchAndIsolation(t *testing.T) {
	spec := MeshSpec(3)
	net, cores := noc.BuildMeshCores(noc.Config{Width: 4, Height: 4, VCs: 3, BufferCap: 1})
	m := NewMultiAgent(spec, AgentConfig{Hidden: 8, Seed: 1}, 4, QuadrantAssign(4, 4))
	net.SetPolicy(m)
	net.OnCycle = m.OnCycle

	in := traffic.NewInjector(cores, traffic.UniformRandom{}, 0.22, newRNG(5))
	in.Classes = 3
	for i := 0; i < 3000; i++ {
		in.Tick()
		net.Step()
	}
	if m.Decisions() == 0 {
		t.Fatal("multi-agent made no decisions")
	}
	// Every quadrant sees contention under uniform traffic, so every agent
	// must have collected experiences of its own.
	for i, a := range m.Agents {
		if a.DQL.Replay.Len() == 0 {
			t.Fatalf("agent %d collected no experiences", i)
		}
	}
	// Weights must have diverged between agents (independent training).
	w0 := m.Agents[0].Net().Layers[0].W
	w1 := m.Agents[1].Net().Layers[0].W
	same := true
	for i := range w0 {
		if w0[i] != w1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("per-quadrant agents share identical weights after training")
	}
	m.Freeze()
	for _, a := range m.Agents {
		if a.Training {
			t.Fatal("Freeze did not propagate")
		}
	}
	net.Drain(100000)
}

func TestMultiAgentValidation(t *testing.T) {
	spec := MeshSpec(3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero agents accepted")
			}
		}()
		NewMultiAgent(spec, AgentConfig{}, 0, QuadrantAssign(4, 4))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil assignment accepted")
			}
		}()
		NewMultiAgent(spec, AgentConfig{}, 2, nil)
	}()
	// Out-of-range assignment panics at dispatch.
	m := NewMultiAgent(spec, AgentConfig{Hidden: 4, Seed: 1}, 2,
		func(*noc.Router) int { return 99 })
	net, _ := noc.BuildMeshCores(noc.Config{Width: 2, Height: 2, VCs: 1})
	ctx := &noc.ArbContext{Net: net, Router: net.RouterAt(0, 0), Out: noc.PortEast, Cycle: 1}
	cands := []noc.Candidate{
		{Port: noc.PortCore, Msg: &noc.Message{SizeFlits: 1}},
		{Port: noc.PortSouth, Msg: &noc.Message{SizeFlits: 1}},
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range assignment accepted")
		}
	}()
	m.Select(ctx, cands)
}
