package core

import (
	"mlnoc/internal/noc"
	"mlnoc/internal/rl"
	"mlnoc/internal/trace"
	"mlnoc/internal/traffic"
)

// TrainTelemetry configures the optional introspection of a TrainMesh run:
// the training-curve telemetry (loss/epsilon/replay-fill/target-sync), an
// attached per-message lifecycle tracer, and periodic weight-heatmap dumps —
// the artifacts behind the paper's Figs. 4, 7, 12 and 13. All of it is
// passive: enabling telemetry never changes the training trajectory.
type TrainTelemetry struct {
	// BatchEvery throttles the training trace to one point per N batches
	// (default 1; TrainMesh runs one batch per cycle).
	BatchEvery int64
	// Trace, when non-nil, attaches a message tracer to the training mesh.
	Trace *trace.Config
	// HeatmapEvery dumps a weight heatmap of the online network every N
	// epochs to HeatmapSink (0 disables). The sink receives the 1-based
	// epoch number.
	HeatmapEvery int
	HeatmapSink  func(epoch int, hm *Heatmap)
	// OnBatch/OnSync, when non-nil, are installed on the training trace
	// (TrainingTrace.OnPoint/OnSync): live per-point and per-target-sync
	// export, called from inside the training loop.
	OnBatch func(step int64, loss, replayFill, epsilon float64)
	OnSync  func(step int64)
	// OnEpoch, when non-nil, is called after each epoch with its 1-based
	// number and the epoch's average delivered-message latency — the same
	// value appended to TrainResult.Curve.
	OnEpoch func(epoch int, avgLatency float64)
}

// MeshTrainConfig parameterizes a Section 3.2-style training run: a W x H
// mesh of cores under uniform-random synthetic traffic, one shared agent
// trained online.
type MeshTrainConfig struct {
	Width, Height int
	VCs           int
	BufferCap     int
	// Rate is the per-node injection probability per cycle.
	Rate float64
	// Hidden is the agent's hidden-layer width (default: action size).
	Hidden int
	// Epochs and EpochCycles split training into reporting epochs; the
	// latency curve has one point per epoch (the x-axis of Figs. 12/13).
	Epochs      int
	EpochCycles int64
	// Reward selects the Section 6.3 reward function.
	Reward rl.RewardKind
	// Features overrides the state features (default MeshFeatures); Fig. 13
	// passes single-feature sets here.
	Features FeatureSet
	// DQL overrides Q-learning hyperparameters.
	DQL rl.DQLConfig
	// Seed drives all randomness in the run.
	Seed int64
	// Telemetry, when non-nil, enables training introspection (see
	// TrainTelemetry).
	Telemetry *TrainTelemetry
}

func (c *MeshTrainConfig) applyDefaults() {
	if c.Width == 0 {
		c.Width = 4
	}
	if c.Height == 0 {
		c.Height = c.Width
	}
	if c.VCs == 0 {
		c.VCs = 3
	}
	if c.BufferCap == 0 {
		// Single-message buffers model flit-level input buffers that cannot
		// hold more than one data message, the regime in which arbitration
		// quality separates policies (HOL blocking and congestion trees).
		c.BufferCap = 1
	}
	if c.Rate == 0 {
		c.Rate = 0.23
	}
	if c.Epochs == 0 {
		c.Epochs = 20
	}
	if c.EpochCycles == 0 {
		c.EpochCycles = 1000
	}
	if c.Features == nil {
		c.Features = MeshFeatures
	}
}

// TrainResult is the outcome of a training run.
type TrainResult struct {
	// Curve is the average latency of messages delivered in each epoch —
	// one point per epoch, the series plotted in Figs. 12 and 13.
	Curve []float64
	// Agent is the trained agent (still in training mode).
	Agent *Agent
	// Spec is the state spec the agent was trained with.
	Spec *StateSpec
	// TrainTrace holds the training telemetry when cfg.Telemetry was set.
	TrainTrace *rl.TrainingTrace
	// Tracer is the message tracer when cfg.Telemetry.Trace was set.
	Tracer *trace.Tracer
}

// FinalLatency returns the mean of the last quarter of the curve, a stable
// "converged latency" summary used by hill climbing.
func (r *TrainResult) FinalLatency() float64 {
	n := len(r.Curve)
	if n == 0 {
		return 0
	}
	k := n / 4
	if k == 0 {
		k = 1
	}
	sum := 0.0
	for _, v := range r.Curve[n-k:] {
		sum += v
	}
	return sum / float64(k)
}

// TrainMesh runs one online training experiment and returns the latency
// curve and the trained agent.
func TrainMesh(cfg MeshTrainConfig) *TrainResult {
	cfg.applyDefaults()
	spec := NewStateSpec(
		[]noc.PortID{noc.PortCore, noc.PortNorth, noc.PortSouth, noc.PortWest, noc.PortEast},
		cfg.VCs, cfg.Features, DefaultNorm())
	// Training-harness hyperparameters: the paper's batch of 2 at lr 0.001
	// converges over industrial-length simulations; at laptop scale we use a
	// larger batch, a higher learning rate and linear exploration decay to
	// reach the same policies in tens of thousands of cycles.
	dql := cfg.DQL
	if dql.BatchSize == 0 {
		dql.BatchSize = 32
	}
	if dql.LR == 0 {
		dql.LR = 0.05
	}
	if dql.Gamma == 0 {
		dql.Gamma = 0.5
	}
	if dql.ReplayCap == 0 {
		dql.ReplayCap = 16000
	}
	if dql.SyncEvery == 0 {
		dql.SyncEvery = 2000
	}
	totalCycles := int64(cfg.Epochs) * cfg.EpochCycles
	agent := NewAgent(spec, AgentConfig{
		Hidden:         cfg.Hidden,
		DQL:            dql,
		Reward:         cfg.Reward,
		EpsStart:       0.5,
		EpsDecayCycles: totalCycles / 2,
		Seed:           cfg.Seed,
	})

	net, in := newMeshRun(cfg, agent)
	net.OnCycle = agent.OnCycle

	res := &TrainResult{Agent: agent, Spec: spec}
	tel := cfg.Telemetry
	if tel != nil {
		agent.DQL.Trace = &rl.TrainingTrace{Every: tel.BatchEvery,
			OnPoint: tel.OnBatch, OnSync: tel.OnSync}
		res.TrainTrace = agent.DQL.Trace
		if tel.Trace != nil {
			res.Tracer = trace.Attach(net, *tel.Trace)
		}
	}
	for e := 0; e < cfg.Epochs; e++ {
		net.ResetStats()
		for i := int64(0); i < cfg.EpochCycles; i++ {
			in.Tick()
			net.Step()
		}
		avg := net.Stats().Latency.Mean()
		res.Curve = append(res.Curve, avg)
		if tel != nil && tel.OnEpoch != nil {
			tel.OnEpoch(e+1, avg)
		}
		if tel != nil && tel.HeatmapEvery > 0 && tel.HeatmapSink != nil && (e+1)%tel.HeatmapEvery == 0 {
			tel.HeatmapSink(e+1, NewHeatmap(spec, agent.Net()))
		}
	}
	return res
}

// newMeshRun builds the mesh network and injector for cfg with the given
// policy installed.
func newMeshRun(cfg MeshTrainConfig, policy noc.Policy) (*noc.Network, *traffic.Injector) {
	net, cores := noc.BuildMeshCores(noc.Config{
		Width:     cfg.Width,
		Height:    cfg.Height,
		VCs:       cfg.VCs,
		BufferCap: cfg.BufferCap,
	})
	net.SetPolicy(policy)
	in := traffic.NewInjector(cores, traffic.UniformRandom{}, cfg.Rate, newRNG(cfg.Seed+1))
	in.Classes = cfg.VCs
	return net, in
}

// EvaluateMeshPolicy measures the average message latency of a policy on the
// cfg mesh under uniform-random traffic (warmup + measured phase + drain).
// It is the evaluation half of the Fig. 5 experiment.
func EvaluateMeshPolicy(cfg MeshTrainConfig, policy noc.Policy, warmup, measure int64) traffic.RunResult {
	cfg.applyDefaults()
	net, in := newMeshRun(cfg, policy)
	if agent, ok := policy.(*Agent); ok {
		net.OnCycle = agent.OnCycle
	}
	return traffic.Run(net, in, warmup, measure)
}
