// Package prof wires the standard Go profilers into the command-line tools:
// CPU and heap profiles written on exit, and an optional net/http/pprof
// endpoint for live inspection of long simulations. Every binary exposes the
// same three flags (-cpuprofile, -memprofile, -pprof) through AddFlags.
package prof

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
)

// Config selects which profilers to start. Zero values disable everything, so
// commands pay nothing unless a flag is set.
type Config struct {
	// CPUProfile is a file path for a CPU profile covering Start..stop.
	CPUProfile string
	// MemProfile is a file path for a heap profile captured at stop time
	// (after a final GC, so it reflects live memory, not transient garbage).
	MemProfile string
	// HTTPAddr, if non-empty, serves net/http/pprof on this address (e.g.
	// "localhost:6060") for the lifetime of the process.
	HTTPAddr string
}

// AddFlags registers the standard profiling flags on fs and returns the
// Config they populate. Call Start after fs.Parse.
func AddFlags(fs *flag.FlagSet) *Config {
	c := &Config{}
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&c.HTTPAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	return c
}

// Start launches the configured profilers and returns a stop function to be
// deferred by main. The stop function finishes the CPU profile and writes the
// heap profile; it is safe to call when nothing was enabled.
func Start(c Config) (stop func(), err error) {
	var cpuFile *os.File
	if c.CPUProfile != "" {
		cpuFile, err = os.Create(c.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	if c.HTTPAddr != "" {
		go func() {
			if err := http.ListenAndServe(c.HTTPAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "prof: pprof server: %v\n", err)
			}
		}()
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if c.MemProfile != "" {
			f, err := os.Create(c.MemProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // profile live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "prof: write heap profile: %v\n", err)
			}
		}
	}, nil
}
