// Package rl implements the reinforcement-learning machinery of the paper's
// methodology: experience replay, deep Q-learning with a target network
// (Mnih et al. 2015, as cited by the paper), and the three reward functions
// compared in Section 6.3 (global age, reciprocal accumulated latency, link
// utilization).
package rl

import (
	"fmt"
	"math/rand"

	"mlnoc/internal/nn"
	"mlnoc/internal/noc"
)

// Experience is one <state, action, reward, next state> tuple (Fig. 3 of the
// paper). Next may be nil when no successor state was observed before the
// episode ended; such experiences train without a bootstrapped future term.
type Experience struct {
	State  []float64
	Action int
	Reward float64
	Next   []float64
	// NextValid lists the action indices that were actually available in the
	// next state (occupied buffer slots). When non-empty, the Bellman max is
	// restricted to them, so the bootstrap never flows through Q-values of
	// empty buffers that can never be selected.
	NextValid []int
}

// Replay is the circular experience-replay buffer used to decorrelate
// training samples (Section 3.1.2). The zero value is unusable; create one
// with NewReplay.
type Replay struct {
	buf  []Experience
	next int
	size int

	// OnEvict, when non-nil, is called with the experience about to be
	// overwritten each time Add lands on a full ring. The receiver may
	// recycle e.State and e.NextValid: the ring is FIFO, so by the time an
	// experience is evicted the older neighbor whose Next aliased this
	// experience's State is already gone, and no live experience can still
	// reference the recycled slices.
	OnEvict func(e *Experience)
}

// NewReplay creates a replay memory holding up to capacity experiences.
func NewReplay(capacity int) *Replay {
	if capacity <= 0 {
		panic("rl: replay capacity must be positive")
	}
	return &Replay{buf: make([]Experience, capacity)}
}

// Add records one experience, evicting the oldest when full.
func (r *Replay) Add(e Experience) {
	if r.size == len(r.buf) && r.OnEvict != nil {
		r.OnEvict(&r.buf[r.next])
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.size < len(r.buf) {
		r.size++
	}
}

// At returns the i-th stored experience in insertion order (0 = oldest).
// The pointer is into the ring: it is invalidated by the Add that evicts it.
func (r *Replay) At(i int) *Experience {
	if i < 0 || i >= r.size {
		panic("rl: replay index out of range")
	}
	if r.size < len(r.buf) {
		return &r.buf[i]
	}
	return &r.buf[(r.next+i)%len(r.buf)]
}

// Len returns the number of stored experiences.
func (r *Replay) Len() int { return r.size }

// Cap returns the capacity of the replay memory.
func (r *Replay) Cap() int { return len(r.buf) }

// Sample returns n experiences drawn uniformly at random with replacement —
// the same ring slot can appear several times in one batch, and the draw
// probability is uniform over stored experiences regardless of age. It panics
// if the buffer is empty. The batch is freshly allocated; hot paths should
// use SampleInto with a reusable scratch slice instead.
func (r *Replay) Sample(rng *rand.Rand, n int) []*Experience {
	out := make([]*Experience, n)
	r.SampleInto(rng, out)
	return out
}

// SampleInto fills dst with len(dst) experiences drawn uniformly at random
// with replacement, performing no allocations. It draws exactly len(dst)
// values from rng in slot order — the same RNG consumption as Sample — so
// swapping one for the other cannot perturb a seeded trajectory. It panics if
// the buffer is empty. The pointers are into the ring and are invalidated
// once Add overwrites their slots.
func (r *Replay) SampleInto(rng *rand.Rand, dst []*Experience) {
	if r.size == 0 {
		panic("rl: sampling from empty replay memory")
	}
	for i := range dst {
		dst[i] = &r.buf[rng.Intn(r.size)]
	}
}

// DQLConfig configures a deep Q-learner. The defaults (applied by NewDQL for
// zero fields) are the paper's Section 4.6 hyperparameters.
type DQLConfig struct {
	Gamma     float64 // discount factor (paper: 0.9)
	LR        float64 // learning rate (paper: 0.001)
	ReplayCap int     // replay memory entries (paper: 4000)
	BatchSize int     // records sampled per training step (paper: 2)
	SyncEvery int64   // training steps between target-network refreshes
	Epsilon   float64 // exploration rate (paper: 0.001)
}

func (c *DQLConfig) applyDefaults() {
	if c.Gamma == 0 {
		c.Gamma = 0.9
	}
	if c.LR == 0 {
		c.LR = 0.001
	}
	if c.ReplayCap == 0 {
		c.ReplayCap = 4000
	}
	if c.BatchSize == 0 {
		c.BatchSize = 2
	}
	if c.SyncEvery == 0 {
		c.SyncEvery = 500
	}
}

// DQL is a deep Q-learner: an online network trained by SGD against targets
// bootstrapped from a periodically synchronized target network.
type DQL struct {
	Online *nn.MLP
	Target *nn.MLP
	Replay *Replay
	Cfg    DQLConfig

	// Trace, when non-nil, records per-batch training telemetry (loss,
	// replay fill, epsilon, target syncs). Recording is passive: it draws no
	// randomness and never alters the training trajectory.
	Trace *TrainingTrace

	steps int64

	// batch and nextStates are TrainBatch scratch, grown once and reused so
	// steady-state training performs zero heap allocations.
	batch      []*Experience
	nextStates [][]float64
}

// NewDQL wraps an online network with a target copy and replay memory.
func NewDQL(online *nn.MLP, cfg DQLConfig) *DQL {
	cfg.applyDefaults()
	return &DQL{
		Online: online,
		Target: online.Clone(),
		Replay: NewReplay(cfg.ReplayCap),
		Cfg:    cfg,
	}
}

// Observe stores one experience in replay memory.
func (d *DQL) Observe(e Experience) { d.Replay.Add(e) }

// TrainBatch samples Cfg.BatchSize experiences and applies one Bellman update
// each: Q(s,a) <- r + gamma * max_a' Qtarget(s',a'). It returns the mean
// squared TD error of the batch and is a no-op returning 0 when replay is
// empty.
//
// Target-network inference is batched through ForwardBatchFast for speed, in
// chunks that never straddle a target-network sync: every experience sees the
// exact target weights the one-Forward-per-experience loop would have used.
// On amd64 with AVX2 the fast path's FMA contraction may perturb target
// Q-values by a few ULPs relative to sequential Forward — deterministic for a
// given platform and seed, but trajectories are pinned per-platform rather
// than cross-platform. The returned rows alias the target network's batch
// scratch; each chunk is fully consumed (Bellman max extracted) before the
// next chunk's ForwardBatchFast call invalidates them.
func (d *DQL) TrainBatch(rng *rand.Rand) float64 {
	if d.Replay.Len() == 0 {
		return 0
	}
	n := d.Cfg.BatchSize
	if cap(d.batch) < n {
		d.batch = make([]*Experience, n)
		d.nextStates = make([][]float64, n)
	}
	batch := d.batch[:n]
	d.Replay.SampleInto(rng, batch)
	total := 0.0
	for start := 0; start < n; {
		chunk := n - start
		if d.Cfg.SyncEvery > 0 {
			if until := int(d.Cfg.SyncEvery - d.steps%d.Cfg.SyncEvery); until < chunk {
				chunk = until
			}
		}
		// Batched target inference for this chunk's non-terminal successors.
		ns := d.nextStates[:0]
		for _, e := range batch[start : start+chunk] {
			if e.Next != nil {
				ns = append(ns, e.Next)
			}
		}
		var qs [][]float64
		if len(ns) > 0 {
			qs = d.Target.ForwardBatchFast(ns)
		}
		qi := 0
		for _, e := range batch[start : start+chunk] {
			target := e.Reward
			if e.Next != nil {
				q := qs[qi]
				qi++
				var best float64
				if len(e.NextValid) > 0 {
					best = q[e.NextValid[0]]
					for _, a := range e.NextValid[1:] {
						if q[a] > best {
							best = q[a]
						}
					}
				} else {
					best = q[0]
					for _, v := range q[1:] {
						if v > best {
							best = v
						}
					}
				}
				target += d.Cfg.Gamma * best
			}
			total += d.Online.TrainAction(e.State, e.Action, target, d.Cfg.LR)
			d.steps++
			if d.Cfg.SyncEvery > 0 && d.steps%d.Cfg.SyncEvery == 0 {
				d.Target.CopyFrom(d.Online)
				if d.Trace != nil {
					d.Trace.observeSync(d.steps)
				}
			}
		}
		start += chunk
	}
	loss := total / float64(len(batch))
	if d.Trace != nil {
		d.Trace.observeBatch(d, loss)
	}
	return loss
}

// Steps returns the number of single-experience SGD updates performed.
func (d *DQL) Steps() int64 { return d.steps }

// RewardKind selects one of the Section 6.3 reward functions.
type RewardKind int

// Reward functions compared in the paper.
const (
	// RewardGlobalAge gives a fixed positive reward for selecting the
	// competing message with the largest global age, and zero otherwise.
	// This is the paper's default and the only one that converges (Fig. 12).
	RewardGlobalAge RewardKind = iota
	// RewardAccLatency is the reciprocal of the average accumulated latency
	// of messages delivered in the last period plus messages still in
	// transit, sampled periodically and applied to all following actions.
	RewardAccLatency
	// RewardLinkUtil is the fraction of links that transferred a message in
	// the previous cycle, applied to all actions in the next cycle.
	RewardLinkUtil
)

// String implements fmt.Stringer.
func (k RewardKind) String() string {
	switch k {
	case RewardGlobalAge:
		return "global_age"
	case RewardAccLatency:
		return "acc_latency"
	case RewardLinkUtil:
		return "link_util"
	}
	return fmt.Sprintf("RewardKind(%d)", int(k))
}

// RewardTracker computes per-decision rewards. For the global-age reward the
// value depends on the specific decision; for the two global rewards it is a
// network-wide value refreshed by OnCycle and shared by every decision in the
// period — exactly the distinction Section 6.3 identifies as the reason
// global rewards train poorly.
type RewardTracker struct {
	Kind RewardKind
	// Period is the sampling period in cycles for RewardAccLatency
	// (paper: e.g. 10 cycles).
	Period int64

	current float64
}

// NewRewardTracker creates a tracker for the given reward kind.
func NewRewardTracker(kind RewardKind) *RewardTracker {
	return &RewardTracker{Kind: kind, Period: 10}
}

// OnCycle refreshes period-based rewards; call it once per simulated cycle.
func (t *RewardTracker) OnCycle(n *noc.Network) {
	switch t.Kind {
	case RewardLinkUtil:
		t.current = n.LinkUtilization()
	case RewardAccLatency:
		if n.Cycle()%t.Period != 0 {
			return
		}
		sum, count := n.TakeDeliveryWindow()
		// Average over delivered-this-period and in-transit messages;
		// including in-transit messages is the fix the paper describes for
		// the starvation incentive of a completed-only latency reward.
		inflight := n.InFlight()
		total := float64(count) + float64(inflight)
		if total == 0 {
			t.current = 1
			return
		}
		avg := (float64(sum) + n.AvgInFlightAge()*float64(inflight)) / total
		if avg < 1 {
			avg = 1
		}
		t.current = 1 / avg
	}
}

// DecisionReward returns the reward for granting cands[chosen] at the given
// arbitration site.
func (t *RewardTracker) DecisionReward(ctx *noc.ArbContext, cands []noc.Candidate, chosen int) float64 {
	switch t.Kind {
	case RewardGlobalAge:
		oldest := cands[0].Msg.InjectCycle
		for _, c := range cands[1:] {
			if c.Msg.InjectCycle < oldest {
				oldest = c.Msg.InjectCycle
			}
		}
		if cands[chosen].Msg.InjectCycle == oldest {
			return 1
		}
		return 0
	default:
		return t.current
	}
}
