package rl

import (
	"math/rand"
	"testing"
)

// benchDQL builds a mesh-scale learner (60->15->15, batch 32) with a full
// replay ring, the shape TrainMesh drives once per cycle.
func benchDQL() (*DQL, *rand.Rand) {
	d := NewDQL(newNet(5, 60, 15, 15), DQLConfig{
		BatchSize: 32, ReplayCap: 4000, SyncEvery: 2000, LR: 0.05, Gamma: 0.5,
	})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < d.Replay.Cap(); i++ {
		s := make([]float64, 60)
		nx := make([]float64, 60)
		for j := range s {
			s[j] = rng.Float64()
			nx[j] = rng.Float64()
		}
		d.Observe(Experience{
			State:     s,
			Action:    rng.Intn(15),
			Reward:    rng.Float64(),
			Next:      nx,
			NextValid: []int{rng.Intn(5), 5 + rng.Intn(5), 10 + rng.Intn(5)},
		})
	}
	return d, rng
}

func BenchmarkHotDQLTrainBatch(b *testing.B) {
	d, rng := benchDQL()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.TrainBatch(rng)
	}
}

func BenchmarkHotReplaySample(b *testing.B) {
	d, rng := benchDQL()
	dst := make([]*Experience, d.Cfg.BatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Replay.SampleInto(rng, dst)
	}
}

func TestSampleIntoMatchesSample(t *testing.T) {
	d, _ := benchDQL()
	a := d.Replay.Sample(rand.New(rand.NewSource(3)), 16)
	b := make([]*Experience, 16)
	d.Replay.SampleInto(rand.New(rand.NewSource(3)), b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: Sample and SampleInto diverge with the same seed", i)
		}
	}
}

func TestReplayAtOrdersOldestFirst(t *testing.T) {
	r := NewReplay(4)
	for i := 0; i < 6; i++ { // wraps: holds experiences 2..5
		r.Add(Experience{Action: i})
	}
	for i, want := range []int{2, 3, 4, 5} {
		if got := r.At(i).Action; got != want {
			t.Fatalf("At(%d).Action = %d, want %d", i, got, want)
		}
	}
}

func TestReplayOnEvictFiresOnOverwrite(t *testing.T) {
	r := NewReplay(3)
	var evicted []int
	r.OnEvict = func(e *Experience) { evicted = append(evicted, e.Action) }
	for i := 0; i < 5; i++ {
		r.Add(Experience{Action: i})
	}
	// Capacity 3: adds 3 and 4 overwrite experiences 0 and 1, oldest first.
	if len(evicted) != 2 || evicted[0] != 0 || evicted[1] != 1 {
		t.Fatalf("evicted = %v, want [0 1]", evicted)
	}
}

// TestTrainBatchZeroAllocs pins the tentpole contract: steady-state training
// performs no heap allocations.
func TestTrainBatchZeroAllocs(t *testing.T) {
	d, rng := benchDQL()
	d.TrainBatch(rng) // warm the batch scratch
	allocs := testing.AllocsPerRun(50, func() {
		d.TrainBatch(rng)
	})
	if allocs != 0 {
		t.Fatalf("TrainBatch allocates %v objects per batch, want 0", allocs)
	}
}
