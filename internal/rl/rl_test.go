package rl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mlnoc/internal/nn"
	"mlnoc/internal/noc"
)

func newNet(seed int64, in, hidden, out int) *nn.MLP {
	return nn.New([]int{in, hidden, out},
		[]nn.Activation{nn.Sigmoid, nn.LeakyReLU},
		rand.New(rand.NewSource(seed)))
}

func TestReplayRingSemantics(t *testing.T) {
	r := NewReplay(3)
	if r.Len() != 0 || r.Cap() != 3 {
		t.Fatalf("fresh replay len/cap = %d/%d", r.Len(), r.Cap())
	}
	for i := 0; i < 5; i++ {
		r.Add(Experience{Action: i})
	}
	if r.Len() != 3 {
		t.Fatalf("len after overfill = %d, want 3", r.Len())
	}
	// Oldest entries (0, 1) must have been evicted.
	seen := map[int]bool{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		for _, e := range r.Sample(rng, 4) {
			seen[e.Action] = true
		}
	}
	for a := 0; a <= 1; a++ {
		if seen[a] {
			t.Fatalf("evicted experience %d still sampled", a)
		}
	}
	for a := 2; a <= 4; a++ {
		if !seen[a] {
			t.Fatalf("live experience %d never sampled", a)
		}
	}
}

func TestReplayPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewReplay(0) did not panic")
			}
		}()
		NewReplay(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Sample from empty replay did not panic")
			}
		}()
		NewReplay(1).Sample(rand.New(rand.NewSource(1)), 1)
	}()
}

func TestQuickReplayNeverExceedsCap(t *testing.T) {
	f := func(capacity8 uint8, n16 uint16) bool {
		capacity := int(capacity8)%50 + 1
		r := NewReplay(capacity)
		for i := 0; i < int(n16)%500; i++ {
			r.Add(Experience{Action: i})
		}
		return r.Len() <= capacity && r.Cap() == capacity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDQLDefaults(t *testing.T) {
	d := NewDQL(newNet(1, 4, 6, 3), DQLConfig{})
	if d.Cfg.Gamma != 0.9 || d.Cfg.LR != 0.001 || d.Cfg.ReplayCap != 4000 ||
		d.Cfg.BatchSize != 2 {
		t.Fatalf("paper defaults not applied: %+v", d.Cfg)
	}
	if d.Target == d.Online {
		t.Fatal("target network aliases the online network")
	}
}

// TestDQLLearnsBandit: a two-state contextual bandit where action 0 is right
// in state A and action 1 in state B must be solved by the Q-learner.
func TestDQLLearnsBandit(t *testing.T) {
	d := NewDQL(newNet(2, 2, 8, 2), DQLConfig{
		Gamma: 0.1, LR: 0.05, BatchSize: 8, ReplayCap: 512, SyncEvery: 100,
	})
	rng := rand.New(rand.NewSource(3))
	stateA := []float64{1, 0}
	stateB := []float64{0, 1}
	for i := 0; i < 3000; i++ {
		s, best := stateA, 0
		if rng.Intn(2) == 1 {
			s, best = stateB, 1
		}
		a := rng.Intn(2) // uniformly explore
		reward := 0.0
		if a == best {
			reward = 1
		}
		d.Observe(Experience{State: s, Action: a, Reward: reward, Next: s, NextValid: []int{0, 1}})
		d.TrainBatch(rng)
	}
	qa := d.Online.Forward(stateA)
	if !(qa[0] > qa[1]) {
		t.Fatalf("state A Q = %v, want action 0 preferred", qa)
	}
	qb := d.Online.Forward(stateB)
	if !(qb[1] > qb[0]) {
		t.Fatalf("state B Q = %v, want action 1 preferred", qb)
	}
}

// TestDQLBellmanTarget: with a frozen target network, one update moves
// Q(s,a) toward r + gamma*max_valid Q(s').
func TestDQLBellmanTarget(t *testing.T) {
	d := NewDQL(newNet(4, 3, 8, 3), DQLConfig{
		Gamma: 0.9, LR: 0.05, BatchSize: 1, ReplayCap: 8, SyncEvery: 1 << 30,
	})
	s := []float64{0.1, 0.2, 0.3}
	next := []float64{0.4, 0.5, 0.6}

	qNext := d.Target.Forward(next)
	// Restrict the bootstrap to action 2.
	want := 1.0 + 0.9*qNext[2]
	before := d.Online.Forward(s)[1]

	d.Observe(Experience{State: s, Action: 1, Reward: 1, Next: next, NextValid: []int{2}})
	d.TrainBatch(rand.New(rand.NewSource(1)))

	after := d.Online.Forward(s)[1]
	if math.Abs(after-want) >= math.Abs(before-want) {
		t.Fatalf("Q did not move toward target: before %.4f after %.4f want %.4f",
			before, after, want)
	}
}

func TestDQLTerminalExperience(t *testing.T) {
	d := NewDQL(newNet(5, 2, 4, 2), DQLConfig{
		Gamma: 0.9, LR: 0.1, BatchSize: 1, ReplayCap: 4, SyncEvery: 1 << 30,
	})
	s := []float64{1, 0}
	// Terminal: no Next; target is the raw reward.
	d.Observe(Experience{State: s, Action: 0, Reward: 2})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		d.TrainBatch(rng)
	}
	if got := d.Online.Forward(s)[0]; math.Abs(got-2) > 0.2 {
		t.Fatalf("terminal Q = %.3f, want ~2", got)
	}
}

func TestDQLTargetSync(t *testing.T) {
	d := NewDQL(newNet(6, 2, 4, 2), DQLConfig{
		Gamma: 0.5, LR: 0.1, BatchSize: 1, ReplayCap: 4, SyncEvery: 10,
	})
	s := []float64{1, 1}
	d.Observe(Experience{State: s, Action: 0, Reward: 1})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10; i++ {
		d.TrainBatch(rng)
	}
	// After exactly SyncEvery steps the target must equal the online net.
	on := d.Online.Forward(s)
	onCopy := append([]float64(nil), on...)
	tg := d.Target.Forward(s)
	for i := range onCopy {
		if onCopy[i] != tg[i] {
			t.Fatalf("target not synced after SyncEvery steps: %v vs %v", onCopy, tg)
		}
	}
	if d.Steps() != 10 {
		t.Fatalf("steps = %d, want 10", d.Steps())
	}
}

// TestTrainBatchChunkedMatchesSequential is the regression test for the
// ForwardBatchFast scratch-aliasing contract: TrainBatch's chunked target
// inference returns rows that alias the target network's batch scratch, and a
// bug that read a row after the next chunk's batched call (i.e. a stale row)
// would silently train on the wrong Bellman targets. The test forces multiple
// chunks and mid-batch target syncs (BatchSize 8, SyncEvery 3 => chunks of
// 3/3/2 with a CopyFrom between), then replays the identical sample sequence
// through a reference learner that calls Target.Forward once per experience —
// the unbatched loop the chunking must be equivalent to. Final policies must
// agree to within FMA-contraction noise; a stale-row bug perturbs targets at
// full magnitude and blows through the tolerance by many orders.
func TestTrainBatchChunkedMatchesSequential(t *testing.T) {
	const (
		in, hidden, out = 6, 12, 4
		batch           = 8
		syncEvery       = 3
		rounds          = 40
		seed            = 31
	)
	build := func() *DQL {
		return NewDQL(newNet(seed, in, hidden, out), DQLConfig{
			Gamma: 0.9, LR: 0.02, BatchSize: batch, ReplayCap: 64,
			SyncEvery: syncEvery,
		})
	}
	fill := func(d *DQL) {
		rng := rand.New(rand.NewSource(seed + 1))
		for i := 0; i < 48; i++ {
			s := make([]float64, in)
			next := make([]float64, in)
			for j := range s {
				s[j] = rng.Float64()
				next[j] = rng.Float64()
			}
			e := Experience{State: s, Action: rng.Intn(out), Reward: rng.Float64(), Next: next}
			if i%5 == 0 {
				e.Next = nil // terminal
			} else if i%3 == 0 {
				e.NextValid = []int{0, 2}
			}
			d.Observe(e)
		}
	}

	chunked := build()
	fill(chunked)
	rngC := rand.New(rand.NewSource(seed + 2))
	for r := 0; r < rounds; r++ {
		chunked.TrainBatch(rngC)
	}

	// Reference: identical nets, replay, and RNG draws, but one
	// Target.Forward per experience — no batching, no aliased rows.
	ref := build()
	fill(ref)
	rngR := rand.New(rand.NewSource(seed + 2))
	sample := make([]*Experience, batch)
	steps := int64(0)
	for r := 0; r < rounds; r++ {
		ref.Replay.SampleInto(rngR, sample)
		for _, e := range sample {
			target := e.Reward
			if e.Next != nil {
				q := ref.Target.Forward(e.Next)
				var best float64
				if len(e.NextValid) > 0 {
					best = q[e.NextValid[0]]
					for _, a := range e.NextValid[1:] {
						if q[a] > best {
							best = q[a]
						}
					}
				} else {
					best = q[0]
					for _, v := range q[1:] {
						if v > best {
							best = v
						}
					}
				}
				target += ref.Cfg.Gamma * best
			}
			ref.Online.TrainAction(e.State, e.Action, target, ref.Cfg.LR)
			steps++
			if steps%syncEvery == 0 {
				ref.Target.CopyFrom(ref.Online)
			}
		}
	}

	// Compare the learned policies on probe states. ForwardBatchFast may
	// drift from Forward by ULPs per call; over 320 updates that compounds
	// to at most ~1e-9 here. A stale-row bug injects O(1) target errors.
	probes := rand.New(rand.NewSource(seed + 3))
	for p := 0; p < 16; p++ {
		x := make([]float64, in)
		for j := range x {
			x[j] = probes.Float64()
		}
		got := chunked.Online.Forward(x)
		want := append([]float64(nil), ref.Online.Forward(x)...)
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-6 {
				t.Fatalf("probe %d out %d: chunked %v vs sequential reference %v",
					p, j, got[j], want[j])
			}
		}
	}
}

func TestTrainBatchEmptyReplayNoop(t *testing.T) {
	d := NewDQL(newNet(7, 2, 4, 2), DQLConfig{})
	if loss := d.TrainBatch(rand.New(rand.NewSource(1))); loss != 0 {
		t.Fatalf("empty replay training returned %v", loss)
	}
	if d.Steps() != 0 {
		t.Fatal("empty replay training advanced steps")
	}
}

func TestRewardKindString(t *testing.T) {
	if RewardGlobalAge.String() != "global_age" ||
		RewardAccLatency.String() != "acc_latency" ||
		RewardLinkUtil.String() != "link_util" {
		t.Fatal("reward names wrong")
	}
}

func buildLoadedNet(t *testing.T) *noc.Network {
	t.Helper()
	net, cores := noc.BuildMeshCores(noc.Config{Width: 2, Height: 2, VCs: 1})
	net.SetPolicy(firstPolicy{})
	// Generate a bit of traffic so utilization and windows are non-trivial.
	cores[0].Inject(&noc.Message{ID: 1, Dst: cores[3].ID, SizeFlits: 5})
	cores[1].Inject(&noc.Message{ID: 2, Dst: cores[2].ID, SizeFlits: 5})
	net.Step()
	return net
}

type firstPolicy struct{}

func (firstPolicy) Name() string                                    { return "first" }
func (firstPolicy) Select(_ *noc.ArbContext, _ []noc.Candidate) int { return 0 }

func TestRewardGlobalAge(t *testing.T) {
	tr := NewRewardTracker(RewardGlobalAge)
	cands := []noc.Candidate{
		{Msg: &noc.Message{InjectCycle: 50}},
		{Msg: &noc.Message{InjectCycle: 10}}, // oldest
		{Msg: &noc.Message{InjectCycle: 30}},
	}
	if r := tr.DecisionReward(nil, cands, 1); r != 1 {
		t.Fatalf("oldest pick reward = %v, want 1", r)
	}
	if r := tr.DecisionReward(nil, cands, 0); r != 0 {
		t.Fatalf("non-oldest pick reward = %v, want 0", r)
	}
	// Ties: any candidate sharing the oldest inject cycle earns the reward.
	cands[0].Msg.InjectCycle = 10
	if r := tr.DecisionReward(nil, cands, 0); r != 1 {
		t.Fatalf("tied-oldest reward = %v, want 1", r)
	}
}

func TestRewardLinkUtil(t *testing.T) {
	net := buildLoadedNet(t)
	tr := NewRewardTracker(RewardLinkUtil)
	tr.OnCycle(net)
	if tr.current <= 0 || tr.current > 1 {
		t.Fatalf("link-util reward = %v, want in (0,1]", tr.current)
	}
	cands := []noc.Candidate{{Msg: &noc.Message{}}, {Msg: &noc.Message{}}}
	if r := tr.DecisionReward(nil, cands, 0); r != tr.current {
		t.Fatal("link-util reward must not depend on the decision")
	}
}

func TestRewardAccLatencyPeriodic(t *testing.T) {
	net := buildLoadedNet(t)
	tr := NewRewardTracker(RewardAccLatency)
	tr.Period = 1 // refresh every cycle for the test
	for i := 0; i < 12; i++ {
		net.Step()
		tr.OnCycle(net)
	}
	if tr.current <= 0 || tr.current > 1 {
		t.Fatalf("acc-latency reward = %v, want in (0,1]", tr.current)
	}
	// Idle network: reward goes to the no-traffic value of 1.
	net.Drain(100)
	net.TakeDeliveryWindow()
	net.Step()
	tr.OnCycle(net)
	if tr.current != 1 {
		t.Fatalf("idle acc-latency reward = %v, want 1", tr.current)
	}
}
