package rl

import "math/rand"

// QTable is classic tabular Q-learning (Watkins 1992, as introduced in the
// paper's Section 2.2). The paper dismisses it for NoC arbitration because
// the state space — a vector of hundreds of feature values — cannot be
// enumerated; this implementation exists to make that argument measurable:
// its table grows with every distinct (discretized) state encountered, and
// the core.TabularAgent experiment reports that growth next to the fixed
// parameter count of the DQL network.
//
// States are identified by caller-provided 64-bit keys (typically a hash of
// the discretized state); distinct states that collide share an entry, which
// only helps the table look smaller than it is.
type QTable struct {
	// Actions is the number of actions per state.
	Actions int
	// Alpha is the learning rate of the tabular Bellman update.
	Alpha float64
	// Gamma is the discount factor.
	Gamma float64

	table map[uint64][]float64
}

// NewQTable creates an empty table.
func NewQTable(actions int, alpha, gamma float64) *QTable {
	if actions <= 0 {
		panic("rl: QTable needs at least one action")
	}
	if alpha <= 0 || alpha > 1 {
		panic("rl: QTable alpha must be in (0,1]")
	}
	return &QTable{
		Actions: actions,
		Alpha:   alpha,
		Gamma:   gamma,
		table:   make(map[uint64][]float64),
	}
}

// Row returns the Q-value row for the state, creating it zeroed on first use.
func (q *QTable) Row(state uint64) []float64 {
	row, ok := q.table[state]
	if !ok {
		row = make([]float64, q.Actions)
		q.table[state] = row
	}
	return row
}

// Peek returns the row without creating it (nil if the state is unknown).
func (q *QTable) Peek(state uint64) []float64 { return q.table[state] }

// Best returns the valid action with the highest Q-value in the state and
// that value. With an unknown state every action ties at zero and the first
// valid action is returned.
func (q *QTable) Best(state uint64, valid []int) (action int, value float64) {
	if len(valid) == 0 {
		panic("rl: Best needs at least one valid action")
	}
	row := q.Peek(state)
	if row == nil {
		return valid[0], 0
	}
	action, value = valid[0], row[valid[0]]
	for _, a := range valid[1:] {
		if row[a] > value {
			action, value = a, row[a]
		}
	}
	return action, value
}

// Update applies the tabular Bellman update
// Q(s,a) += alpha * (r + gamma*max_valid Q(s',a') - Q(s,a)).
// nextValid may be empty for terminal transitions.
func (q *QTable) Update(state uint64, action int, reward float64, next uint64, nextValid []int) {
	target := reward
	if len(nextValid) > 0 {
		_, best := q.Best(next, nextValid)
		target += q.Gamma * best
	}
	row := q.Row(state)
	row[action] += q.Alpha * (target - row[action])
}

// States returns the number of distinct state keys in the table.
func (q *QTable) States() int { return len(q.table) }

// Bytes estimates the table's memory footprint: 8 bytes per Q-value plus the
// 8-byte key, ignoring map overhead (a generous underestimate).
func (q *QTable) Bytes() int64 {
	return int64(len(q.table)) * int64(8+8*q.Actions)
}

// EpsilonGreedy picks Best with probability 1-eps, otherwise a uniformly
// random valid action.
func (q *QTable) EpsilonGreedy(rng *rand.Rand, state uint64, valid []int, eps float64) int {
	if rng.Float64() < eps {
		return valid[rng.Intn(len(valid))]
	}
	a, _ := q.Best(state, valid)
	return a
}
