package rl

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
)

// Dataset is a sequence of experiences recorded from simulation, the
// substrate of the paper's offline workflow (Fig. 2): "we collected the NoC
// router states over a large number of simulated cycles... it is impractical
// for a human to manually dig through so much data". Datasets are produced by
// core.Recorder while an arbitrary behaviour policy runs, saved with gob, and
// consumed by TrainOffline.
type Dataset struct {
	// StateSize and Actions describe the experiences' shapes; every record
	// must agree.
	StateSize int
	Actions   int
	Records   []Experience
}

// NewDataset creates an empty dataset for the given shapes.
func NewDataset(stateSize, actions int) *Dataset {
	if stateSize <= 0 || actions <= 0 {
		panic("rl: dataset needs positive shapes")
	}
	return &Dataset{StateSize: stateSize, Actions: actions}
}

// Add appends one experience after validating its shape.
func (d *Dataset) Add(e Experience) {
	if len(e.State) != d.StateSize {
		panic(fmt.Sprintf("rl: record state size %d, want %d", len(e.State), d.StateSize))
	}
	if e.Action < 0 || e.Action >= d.Actions {
		panic(fmt.Sprintf("rl: record action %d out of %d", e.Action, d.Actions))
	}
	if e.Next != nil && len(e.Next) != d.StateSize {
		panic("rl: record next-state size mismatch")
	}
	d.Records = append(d.Records, e)
}

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.Records) }

// Save writes the dataset in gob format.
func (d *Dataset) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(d)
}

// LoadDataset reads a dataset previously written with Save.
func LoadDataset(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("rl: load dataset: %w", err)
	}
	if d.StateSize <= 0 || d.Actions <= 0 {
		return nil, fmt.Errorf("rl: load dataset: malformed shapes")
	}
	for i, e := range d.Records {
		if len(e.State) != d.StateSize || e.Action < 0 || e.Action >= d.Actions {
			return nil, fmt.Errorf("rl: load dataset: record %d malformed", i)
		}
	}
	return &d, nil
}

// TrainOffline runs epochs of uniformly sampled Bellman updates from the
// dataset against the learner — the paper's offline alternative to training
// inside the simulator loop. Samples per epoch equals the dataset size.
// It returns the mean TD error of the final epoch.
func (d *DQL) TrainOffline(rng *rand.Rand, data *Dataset, epochs int) float64 {
	if data.Len() == 0 {
		return 0
	}
	if d.Online.InputSize() != data.StateSize || d.Online.OutputSize() != data.Actions {
		panic("rl: dataset shapes do not match the learner's network")
	}
	last := 0.0
	for ep := 0; ep < epochs; ep++ {
		total := 0.0
		for i := 0; i < data.Len(); i++ {
			e := &data.Records[rng.Intn(data.Len())]
			target := e.Reward
			if e.Next != nil {
				q := d.Target.Forward(e.Next)
				var best float64
				if len(e.NextValid) > 0 {
					best = q[e.NextValid[0]]
					for _, a := range e.NextValid[1:] {
						if q[a] > best {
							best = q[a]
						}
					}
				} else {
					best = q[0]
					for _, v := range q[1:] {
						if v > best {
							best = v
						}
					}
				}
				target += d.Cfg.Gamma * best
			}
			total += d.Online.TrainAction(e.State, e.Action, target, d.Cfg.LR)
			d.steps++
			if d.steps%d.Cfg.SyncEvery == 0 {
				d.Target.CopyFrom(d.Online)
			}
		}
		last = total / float64(data.Len())
	}
	return last
}
