package rl

// TrainingTrace records the telemetry of a DQL training run — the curves
// that answer "did this run actually converge": per-batch TD loss, replay
// occupancy, exploration rate and target-network synchronization points.
// Install one on DQL.Trace before training; recording is passive and never
// perturbs the learner (no RNG draws, no weight reads).
//
// One point is appended per Every TrainBatch calls (default 1). All curve
// slices are index-aligned; Steps carries the x-axis.
type TrainingTrace struct {
	// Every throttles recording to one point per Every training batches.
	Every int64

	// Steps is the SGD-step count (DQL.Steps) at each recorded point.
	Steps []int64
	// Loss is the mean squared TD error of the recorded batch.
	Loss []float64
	// ReplayFill is the replay-memory occupancy fraction in [0, 1].
	ReplayFill []float64
	// Epsilon is the exploration rate at each point, fed by the training
	// harness via ObserveEpsilon (zero if never fed).
	Epsilon []float64
	// SyncSteps lists the SGD-step counts at which the target network was
	// refreshed from the online network.
	SyncSteps []int64

	// OnPoint, when non-nil, is called for every recorded point with the
	// values just appended — the live export hook (trainarb feeds its
	// /metrics gauges from it). Like the trace itself it is passive: called
	// after the batch is fully folded, never influencing the learner.
	OnPoint func(step int64, loss, replayFill, epsilon float64)
	// OnSync, when non-nil, is called at every target-network refresh.
	OnSync func(step int64)

	batches int64
	eps     float64
}

// ObserveEpsilon updates the exploration rate that the next recorded point
// will carry. The agent (which owns the decay schedule) calls it once per
// cycle; the trace itself never computes epsilon.
func (t *TrainingTrace) ObserveEpsilon(eps float64) { t.eps = eps }

// observeSync records a target-network refresh at the given step count.
func (t *TrainingTrace) observeSync(step int64) {
	t.SyncSteps = append(t.SyncSteps, step)
	if t.OnSync != nil {
		t.OnSync(step)
	}
}

// observeBatch folds one TrainBatch outcome into the trace.
func (t *TrainingTrace) observeBatch(d *DQL, loss float64) {
	t.batches++
	every := t.Every
	if every < 1 {
		every = 1
	}
	if t.batches%every != 0 {
		return
	}
	t.Steps = append(t.Steps, d.Steps())
	t.Loss = append(t.Loss, loss)
	fill := float64(d.Replay.Len()) / float64(d.Replay.Cap())
	t.ReplayFill = append(t.ReplayFill, fill)
	t.Epsilon = append(t.Epsilon, t.eps)
	if t.OnPoint != nil {
		t.OnPoint(d.Steps(), loss, fill, t.eps)
	}
}

// Points returns the number of recorded curve points.
func (t *TrainingTrace) Points() int { return len(t.Steps) }
