package rl

import (
	"math/rand"
	"testing"
)

// trainSome builds a small DQL, fills replay, and runs batches with a seeded
// RNG, returning the learner for inspection.
func trainSome(trace *TrainingTrace, batches int) *DQL {
	d := NewDQL(newNet(3, 4, 5, 2), DQLConfig{BatchSize: 2, SyncEvery: 4, ReplayCap: 8})
	d.Trace = trace
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 6; i++ {
		d.Observe(Experience{
			State:  []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()},
			Action: i % 2,
			Reward: rng.Float64(),
		})
	}
	for i := 0; i < batches; i++ {
		d.TrainBatch(rng)
	}
	return d
}

func TestTrainingTraceRecordsCurves(t *testing.T) {
	tr := &TrainingTrace{Every: 2}
	tr.ObserveEpsilon(0.9)
	d := trainSome(tr, 6) // 6 batches of 2 -> 12 SGD steps
	if got := tr.Points(); got != 3 {
		t.Fatalf("Points = %d, want 3 (6 batches, Every=2)", got)
	}
	if len(tr.Loss) != 3 || len(tr.ReplayFill) != 3 || len(tr.Epsilon) != 3 {
		t.Fatalf("curve lengths diverge: loss %d, fill %d, eps %d",
			len(tr.Loss), len(tr.ReplayFill), len(tr.Epsilon))
	}
	// Steps is the x-axis: strictly increasing SGD-step counts ending at the
	// learner's total.
	for i := 1; i < len(tr.Steps); i++ {
		if tr.Steps[i] <= tr.Steps[i-1] {
			t.Fatalf("Steps not increasing: %v", tr.Steps)
		}
	}
	if tr.Steps[len(tr.Steps)-1] != d.Steps() {
		t.Fatalf("last point at step %d, learner at %d", tr.Steps[len(tr.Steps)-1], d.Steps())
	}
	// Replay holds 6 of 8 experiences throughout.
	for _, f := range tr.ReplayFill {
		if f != 6.0/8 {
			t.Fatalf("ReplayFill = %v, want 0.75", tr.ReplayFill)
		}
	}
	// Epsilon is whatever the harness last fed.
	for _, e := range tr.Epsilon {
		if e != 0.9 {
			t.Fatalf("Epsilon = %v, want 0.9 everywhere", tr.Epsilon)
		}
	}
	// SyncEvery=4 over 12 steps: target refreshed at steps 4, 8 and 12.
	if want := []int64{4, 8, 12}; len(tr.SyncSteps) != len(want) {
		t.Fatalf("SyncSteps = %v, want %v", tr.SyncSteps, want)
	} else {
		for i, s := range want {
			if tr.SyncSteps[i] != s {
				t.Fatalf("SyncSteps = %v, want %v", tr.SyncSteps, want)
			}
		}
	}
}

// TestTrainingTraceIsPassive pins the no-perturbation contract: a traced
// learner follows the exact weight trajectory of an untraced one.
func TestTrainingTraceIsPassive(t *testing.T) {
	plain := trainSome(nil, 5)
	traced := trainSome(&TrainingTrace{Every: 1}, 5)
	in := []float64{0.3, 0.1, 0.7, 0.2}
	p, q := plain.Online.Forward(in), traced.Online.Forward(in)
	for i := range p {
		if p[i] != q[i] {
			t.Fatalf("traced training diverged: output %v vs %v", p, q)
		}
	}
}

func TestTrainingTraceEmptyReplay(t *testing.T) {
	tr := &TrainingTrace{}
	d := NewDQL(newNet(3, 4, 5, 2), DQLConfig{})
	d.Trace = tr
	if loss := d.TrainBatch(rand.New(rand.NewSource(1))); loss != 0 {
		t.Fatalf("empty-replay TrainBatch loss = %v, want 0", loss)
	}
	if tr.Points() != 0 {
		t.Fatalf("empty-replay TrainBatch recorded %d points", tr.Points())
	}
}
