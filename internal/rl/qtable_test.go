package rl

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQTableBasics(t *testing.T) {
	q := NewQTable(3, 0.5, 0.9)
	if q.States() != 0 || q.Bytes() != 0 {
		t.Fatal("fresh table not empty")
	}
	row := q.Row(42)
	if len(row) != 3 {
		t.Fatalf("row width %d", len(row))
	}
	if q.States() != 1 {
		t.Fatal("Row did not materialize the state")
	}
	if q.Peek(43) != nil {
		t.Fatal("Peek materialized a state")
	}
	if q.Bytes() != 8+3*8 {
		t.Fatalf("Bytes = %d", q.Bytes())
	}
}

func TestQTableBestRespectsValidity(t *testing.T) {
	q := NewQTable(4, 0.5, 0.9)
	row := q.Row(7)
	row[0], row[1], row[2], row[3] = 5, 9, 1, 7
	a, v := q.Best(7, []int{0, 2, 3})
	if a != 3 || v != 7 {
		t.Fatalf("Best = (%d,%v), want (3,7): action 1 is invalid", a, v)
	}
	// Unknown state: first valid action at value 0.
	a, v = q.Best(999, []int{2, 1})
	if a != 2 || v != 0 {
		t.Fatalf("unknown-state Best = (%d,%v)", a, v)
	}
}

func TestQTableUpdateConverges(t *testing.T) {
	q := NewQTable(2, 0.5, 0)
	for i := 0; i < 100; i++ {
		q.Update(1, 0, 10, 0, nil) // terminal reward 10
	}
	if got := q.Row(1)[0]; got < 9.9 || got > 10.1 {
		t.Fatalf("Q converged to %v, want 10", got)
	}
}

func TestQTableBellmanChain(t *testing.T) {
	// Two-state chain: s1 -a0-> s2 (r=0), s2 -a0-> terminal (r=1).
	// With gamma 0.5, Q(s1,a0) converges to 0.5.
	q := NewQTable(1, 0.3, 0.5)
	for i := 0; i < 500; i++ {
		q.Update(2, 0, 1, 0, nil)
		q.Update(1, 0, 0, 2, []int{0})
	}
	if got := q.Row(1)[0]; got < 0.45 || got > 0.55 {
		t.Fatalf("chained Q = %v, want ~0.5", got)
	}
}

func TestQTableEpsilonGreedy(t *testing.T) {
	q := NewQTable(3, 0.5, 0.9)
	row := q.Row(5)
	row[1] = 100
	rng := rand.New(rand.NewSource(1))
	greedy, explored := 0, 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		a := q.EpsilonGreedy(rng, 5, []int{0, 1, 2}, 0.3)
		if a == 1 {
			greedy++
		} else {
			explored++
		}
	}
	// P(action 1) = 0.7 + 0.3/3 = 0.8.
	frac := float64(greedy) / trials
	if frac < 0.77 || frac > 0.83 {
		t.Fatalf("greedy fraction %.3f, want ~0.8", frac)
	}
	if explored == 0 {
		t.Fatal("never explored")
	}
}

func TestQTablePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewQTable(0, 0.5, 0.9) },
		func() { NewQTable(2, 0, 0.9) },
		func() { NewQTable(2, 1.5, 0.9) },
		func() { NewQTable(2, 0.5, 0.9).Best(1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestQuickQTableBounded(t *testing.T) {
	// Property: with rewards in [0,1] and gamma g, Q-values stay within
	// [0, 1/(1-g)] under arbitrary update sequences.
	f := func(seed int64, n16 uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		const gamma = 0.5
		q := NewQTable(3, 0.5, gamma)
		bound := 1/(1-gamma) + 1e-9
		for i := 0; i < int(n16)%2000; i++ {
			s := uint64(rng.Intn(10))
			next := uint64(rng.Intn(10))
			q.Update(s, rng.Intn(3), rng.Float64(), next, []int{0, 1, 2})
		}
		for s := uint64(0); s < 10; s++ {
			row := q.Peek(s)
			for _, v := range row {
				if v < 0 || v > bound {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
