// Package fault is the fault-injection and resilience layer of the NoC
// simulator: deterministic, seeded fault schedules (permanent link kills,
// transient link outages, router freezes, and a stochastic hazard process
// driven by an explicit *rand.Rand), an Injector that applies them to a
// noc.Network through its link-state hooks, and fault-aware routing
// algorithms (a minimal table router rebuilt on fault events and a
// west-first turn-model fallback) that route around dead links or return an
// explicit unreachable verdict.
//
// The design contract is graceful degradation without silent loss: a message
// in flight across a killed link is requeued upstream, a message whose
// destination became unreachable is evicted with a counted, reported
// verdict, and with an all-healthy Plan the fault layer is zero-cost — every
// result is bit-identical to the fault-free code path.
package fault

import (
	"fmt"
	"sort"

	"mlnoc/internal/noc"
)

// Kind classifies a fault event.
type Kind uint8

// Fault event kinds.
const (
	// KindLinkKill takes a link down permanently at Event.From.
	KindLinkKill Kind = iota
	// KindLinkOutage takes a link down at Event.From and restores it at
	// Event.To.
	KindLinkOutage
	// KindRouterFreeze stops a router from making any grants during
	// [Event.From, Event.To); with To == 0 the freeze is permanent.
	KindRouterFreeze
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindLinkKill:
		return "link-kill"
	case KindLinkOutage:
		return "link-outage"
	case KindRouterFreeze:
		return "router-freeze"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one scheduled fault. Link events identify a link by its upstream
// router and output port and, unless OneWay is set, affect both directions
// of the link.
type Event struct {
	Kind   Kind
	Router int        // router ID
	Port   noc.PortID // link events only
	// From is the first cycle the fault is in effect; To is the restoration
	// cycle (exclusive), 0 meaning never.
	From, To int64
	// OneWay restricts a link event to the Router -> peer direction.
	OneWay bool
}

// String implements fmt.Stringer.
func (e Event) String() string {
	switch e.Kind {
	case KindLinkKill:
		return fmt.Sprintf("kill link router#%d.%s at cycle %d", e.Router, e.Port, e.From)
	case KindLinkOutage:
		return fmt.Sprintf("outage link router#%d.%s cycles [%d,%d)", e.Router, e.Port, e.From, e.To)
	case KindRouterFreeze:
		if e.To == 0 {
			return fmt.Sprintf("freeze router#%d at cycle %d", e.Router, e.From)
		}
		return fmt.Sprintf("freeze router#%d cycles [%d,%d)", e.Router, e.From, e.To)
	}
	return e.Kind.String()
}

// Plan is a deterministic fault schedule: a list of events applied to a
// network by an Injector. The zero value is the all-healthy plan.
type Plan struct {
	Events []Event
}

// Empty reports whether the plan schedules no faults.
func (p Plan) Empty() bool { return len(p.Events) == 0 }

// Clone returns a deep copy of the plan.
func (p Plan) Clone() Plan {
	return Plan{Events: append([]Event(nil), p.Events...)}
}

// KillLink schedules a permanent kill of the link at (router, port) from
// cycle at onward.
func (p *Plan) KillLink(router int, port noc.PortID, at int64) {
	p.Events = append(p.Events, Event{Kind: KindLinkKill, Router: router, Port: port, From: at})
}

// Outage schedules a transient outage of the link at (router, port): down at
// cycle from, restored at cycle to.
func (p *Plan) Outage(router int, port noc.PortID, from, to int64) {
	p.Events = append(p.Events, Event{Kind: KindLinkOutage, Router: router, Port: port, From: from, To: to})
}

// FreezeRouter schedules a router freeze during [from, to); to == 0 freezes
// forever.
func (p *Plan) FreezeRouter(router int, from, to int64) {
	p.Events = append(p.Events, Event{Kind: KindRouterFreeze, Router: router, From: from, To: to})
}

// Validate checks every event against the target network: router IDs in
// range, link events on connected ports, and coherent cycle bounds.
func (p Plan) Validate(net *noc.Network) error {
	routers := net.Routers()
	for i, e := range p.Events {
		if e.Router < 0 || e.Router >= len(routers) {
			return fmt.Errorf("fault: event %d (%s): router %d out of range [0,%d)",
				i, e, e.Router, len(routers))
		}
		if e.From < 0 {
			return fmt.Errorf("fault: event %d (%s): negative start cycle", i, e)
		}
		switch e.Kind {
		case KindLinkKill:
			if !routers[e.Router].HasPort(e.Port) {
				return fmt.Errorf("fault: event %d (%s): port not connected", i, e)
			}
		case KindLinkOutage:
			if !routers[e.Router].HasPort(e.Port) {
				return fmt.Errorf("fault: event %d (%s): port not connected", i, e)
			}
			if e.To <= e.From {
				return fmt.Errorf("fault: event %d (%s): outage must end after it starts", i, e)
			}
		case KindRouterFreeze:
			if e.To != 0 && e.To <= e.From {
				return fmt.Errorf("fault: event %d (%s): freeze must end after it starts", i, e)
			}
		default:
			return fmt.Errorf("fault: event %d: unknown kind %d", i, e.Kind)
		}
	}
	return nil
}

// transition is one state flip derived from an event: a fault taking effect
// (down) or being repaired.
type transition struct {
	at   int64
	ev   Event
	down bool
}

// timeline expands the plan into transitions sorted by cycle.
func (p Plan) timeline() []transition {
	ts := make([]transition, 0, 2*len(p.Events))
	for _, e := range p.Events {
		ts = append(ts, transition{at: e.From, ev: e, down: true})
		if e.To > 0 {
			ts = append(ts, transition{at: e.To, ev: e, down: false})
		}
	}
	sort.SliceStable(ts, func(i, j int) bool { return ts[i].at < ts[j].at })
	return ts
}
