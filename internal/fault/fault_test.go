package fault

import (
	"fmt"
	"math/rand"
	"testing"

	"mlnoc/internal/arb"
	"mlnoc/internal/noc"
)

func mesh(w, h, vcs int) (*noc.Network, []*noc.Node) {
	net, cores := noc.BuildMeshCores(noc.Config{Width: w, Height: h, VCs: vcs, BufferCap: 4})
	net.SetPolicy(arb.NewGlobalAge())
	return net, cores
}

// drive injects deterministic uniform-random traffic, one candidate message
// per cycle for the given number of cycles, then drains.
func drive(net *noc.Network, cores []*noc.Node, seed int64, cycles int) {
	rng := rand.New(rand.NewSource(seed))
	vcs := net.Config().VCs
	id := uint64(0)
	for i := 0; i < cycles; i++ {
		src := cores[rng.Intn(len(cores))]
		dst := cores[rng.Intn(len(cores))]
		if src != dst {
			id++
			src.Inject(&noc.Message{
				ID:        id,
				Dst:       dst.ID,
				Class:     noc.Class(rng.Intn(vcs)),
				SizeFlits: 1 + rng.Intn(4),
			})
		}
		net.Step()
	}
	net.Drain(100_000)
}

// traceDeliveries records every delivery as "cycle:msgID:dstNode" in order.
func traceDeliveries(cores []*noc.Node) *[]string {
	var trace []string
	for _, c := range cores {
		c := c
		c.Sink = func(now int64, m *noc.Message) {
			trace = append(trace, fmt.Sprintf("%d:%d:%d", now, m.ID, c.ID))
		}
	}
	return &trace
}

// TestHealthySpecBitIdentical pins the zero-cost-off acceptance criterion: a
// network equipped with an all-healthy fault Spec (fault-aware table routing
// installed, injector attached, nothing scheduled) produces a delivery trace
// bit-identical to the plain fault-free network.
func TestHealthySpecBitIdentical(t *testing.T) {
	run := func(equip bool) []string {
		net, cores := mesh(4, 4, 3)
		if equip {
			if _, err := (Spec{}).Equip(net); err != nil {
				t.Fatalf("Equip: %v", err)
			}
			if !net.Faulty() {
				t.Fatal("equipped network should report Faulty (routing installed)")
			}
		}
		trace := traceDeliveries(cores)
		drive(net, cores, 42, 600)
		if net.Stats().Delivered == 0 {
			t.Fatal("no traffic delivered")
		}
		return *trace
	}
	plain := run(false)
	equipped := run(true)
	if len(plain) != len(equipped) {
		t.Fatalf("delivery counts differ: plain %d, equipped %d", len(plain), len(equipped))
	}
	for i := range plain {
		if plain[i] != equipped[i] {
			t.Fatalf("delivery %d differs: plain %q, equipped %q", i, plain[i], equipped[i])
		}
	}
}

// TestTableRoutingRoutesAroundKills kills several links mid-run on a mesh
// that stays connected and requires every message to still arrive: no
// unreachable verdicts, no losses, and reroutes actually happen.
func TestTableRoutingRoutesAroundKills(t *testing.T) {
	net, cores := mesh(4, 4, 2)
	var plan Plan
	// Kill three interior links at cycle 100; the 4x4 mesh stays connected.
	plan.KillLink(net.RouterAt(1, 1).ID(), noc.PortEast, 100)
	plan.KillLink(net.RouterAt(2, 2).ID(), noc.PortSouth, 100)
	plan.KillLink(net.RouterAt(0, 1).ID(), noc.PortEast, 100)
	inj, err := (Spec{Plan: plan}).Equip(net)
	if err != nil {
		t.Fatalf("Equip: %v", err)
	}
	drive(net, cores, 7, 800)
	s := net.Stats()
	fs := inj.Stats()
	if s.Injected == 0 || s.Delivered != s.Injected {
		t.Fatalf("lost messages: injected %d, delivered %d (unreachable %d, requeued %d)",
			s.Injected, s.Delivered, fs.Unreachable, fs.Requeued)
	}
	if fs.Unreachable != 0 {
		t.Fatalf("connected mesh produced %d unreachable verdicts", fs.Unreachable)
	}
	if fs.Reroutes == 0 {
		t.Fatal("no reroutes counted despite killed links on active paths")
	}
	if fs.LinksDown != 6 { // 3 undirected kills = 6 directed links
		t.Fatalf("LinksDown = %d, want 6", fs.LinksDown)
	}
	if fs.LinkKills != 3 {
		t.Fatalf("LinkKills = %d, want 3", fs.LinkKills)
	}
}

// TestPartitionConservation splits a 2x1 mesh mid-run and checks the
// accounting identity Injected == Delivered + Unreachable after drain: a
// message stranded on the wrong side of a partition is evicted and reported,
// never silently lost.
func TestPartitionConservation(t *testing.T) {
	net, cores := mesh(2, 1, 1)
	var plan Plan
	plan.KillLink(0, noc.PortEast, 50)
	inj, err := (Spec{Plan: plan}).Equip(net)
	if err != nil {
		t.Fatalf("Equip: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	id := uint64(0)
	for i := 0; i < 200; i++ {
		src, dst := cores[rng.Intn(2)], cores[rng.Intn(2)]
		if src != dst {
			id++
			src.Inject(&noc.Message{ID: id, Dst: dst.ID, SizeFlits: 1 + rng.Intn(3)})
		}
		net.Step()
	}
	if !net.Drain(10_000) {
		t.Fatal("partitioned network did not drain — stranded messages were not evicted")
	}
	s := net.Stats()
	fs := inj.Stats()
	if fs.Unreachable == 0 {
		t.Fatal("partition produced no unreachable verdicts")
	}
	if s.Injected != s.Delivered+fs.Unreachable {
		t.Fatalf("conservation broken: injected=%d delivered=%d unreachable=%d",
			s.Injected, s.Delivered, fs.Unreachable)
	}
	if reps := inj.Reports(); len(reps) == 0 {
		t.Fatal("no unreachable reports retained")
	}
}

// TestTransientOutage checks outage scheduling and the per-link downtime
// ledger: the link is down exactly during [from, to) and traffic resumes
// afterwards.
func TestTransientOutage(t *testing.T) {
	net, cores := mesh(2, 1, 1)
	var plan Plan
	plan.Outage(0, noc.PortEast, 10, 30)
	inj, err := (Spec{Plan: plan}).Equip(net)
	if err != nil {
		t.Fatalf("Equip: %v", err)
	}
	cores[0].Inject(&noc.Message{ID: 1, Dst: cores[1].ID, SizeFlits: 1})
	net.Run(60)
	net.Drain(100)
	if net.Stats().Delivered != 1 {
		t.Fatalf("delivered %d, want 1 after outage ended", net.Stats().Delivered)
	}
	down := inj.Downtime()
	fwd := down[Link{Router: 0, Port: noc.PortEast}]
	rev := down[Link{Router: 1, Port: noc.PortWest}]
	if fwd != 20 || rev != 20 {
		t.Fatalf("per-link downtime = %d/%d cycles, want 20/20", fwd, rev)
	}
	fs := inj.Stats()
	if fs.DowntimeCycles != 40 {
		t.Fatalf("aggregate DowntimeCycles = %d, want 40 (2 directed links x 20)", fs.DowntimeCycles)
	}
	if fs.LinkOutages != 1 || fs.Repairs != 1 {
		t.Fatalf("outages=%d repairs=%d, want 1/1", fs.LinkOutages, fs.Repairs)
	}
	if fs.LinksDown != 0 {
		t.Fatalf("LinksDown = %d after repair, want 0", fs.LinksDown)
	}
}

// TestWestFirstRouting checks the turn model: eastbound traffic detours
// minimally around a dead east link, while westbound traffic blocked on its
// only admissible direction gets the unreachable verdict.
func TestWestFirstRouting(t *testing.T) {
	net, cores := mesh(3, 3, 1)
	wf, err := NewWestFirstRouting(net)
	if err != nil {
		t.Fatal(err)
	}
	net.SetRouting(wf)
	// Kill the east link out of (1,1) — both directions.
	mid := net.RouterAt(1, 1).ID()
	net.SetLinkDown(mid, noc.PortEast, true)
	net.SetLinkDown(net.RouterAt(2, 1).ID(), noc.PortWest, true)

	// Eastbound (1,1) -> (2,2): east is dead at (1,1) but the pending
	// southward hop is a minimal detour (south, then east, then deliver).
	src := cores[4] // (1,1) in row-major order
	dst := cores[8] // (2,2)
	src.Inject(&noc.Message{ID: 1, Dst: dst.ID, SizeFlits: 1})
	if !net.Drain(200) || net.Stats().Delivered != 1 {
		t.Fatalf("eastbound message not delivered around dead link (delivered=%d)", net.Stats().Delivered)
	}
	if net.FaultStats().Reroutes == 0 {
		t.Fatal("detour not counted as a reroute")
	}

	// Westbound (2,1) -> (0,1): west is the only admissible direction under
	// west-first, so the dead west link is an unreachable verdict.
	cores[5].Inject(&noc.Message{ID: 2, Dst: cores[3].ID, SizeFlits: 1})
	net.Run(10)
	if net.FaultStats().Unreachable != 1 {
		t.Fatalf("Unreachable = %d, want 1 (west-first cannot detour westbound)", net.FaultStats().Unreachable)
	}
}

// TestHazardDeterminism runs the stochastic hazard process twice with the
// same seed and once with a different seed.
func TestHazardDeterminism(t *testing.T) {
	run := func(seed int64) (Stats, int64) {
		net, cores := mesh(4, 4, 2)
		spec := Spec{Hazard: Hazard{Rate: 0.02, Repair: 40}, Seed: seed}
		inj, err := spec.Equip(net)
		if err != nil {
			t.Fatalf("Equip: %v", err)
		}
		drive(net, cores, 11, 500)
		return inj.Stats(), net.Stats().Delivered
	}
	a, da := run(5)
	b, db := run(5)
	if a != b || da != db {
		t.Fatalf("same seed diverged:\n%+v (delivered %d)\n%+v (delivered %d)", a, da, b, db)
	}
	if a.HazardOutages == 0 {
		t.Fatal("hazard process raised no outages at rate 0.02 over 500+ cycles")
	}
	c, _ := run(6)
	if c == a {
		t.Fatal("different seeds produced identical fault histories")
	}
}

// TestRandomLinkKillsConnectivity samples kill plans at several fractions and
// verifies they are deterministic per seed and never disconnect the mesh.
func TestRandomLinkKillsConnectivity(t *testing.T) {
	net, _ := mesh(8, 8, 1)
	links := MeshLinks(net)
	if len(links) != 2*8*7 {
		t.Fatalf("8x8 mesh has %d links, want %d", len(links), 2*8*7)
	}
	for _, frac := range []float64{0.05, 0.15, 0.5} {
		rng := rand.New(rand.NewSource(9))
		plan, err := RandomLinkKills(net, frac, 10, rng)
		if err != nil {
			t.Fatalf("RandomLinkKills(%v): %v", frac, err)
		}
		if len(plan.Events) == 0 {
			t.Fatalf("RandomLinkKills(%v) produced no kills", frac)
		}
		killed := make(map[Link]bool)
		for _, e := range plan.Events {
			killed[Link{Router: e.Router, Port: e.Port}] = true
		}
		if !connectedWithout(net, links, killed) {
			t.Fatalf("RandomLinkKills(%v) disconnected the mesh", frac)
		}
		rng2 := rand.New(rand.NewSource(9))
		plan2, err := RandomLinkKills(net, frac, 10, rng2)
		if err != nil || len(plan2.Events) != len(plan.Events) {
			t.Fatalf("same seed gave different plans (%d vs %d kills)", len(plan.Events), len(plan2.Events))
		}
		for i := range plan.Events {
			if plan.Events[i] != plan2.Events[i] {
				t.Fatalf("same seed, kill %d differs: %v vs %v", i, plan.Events[i], plan2.Events[i])
			}
		}
	}
	if _, err := RandomLinkKills(net, 1.5, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	if _, err := RandomLinkKills(net, 0.1, 0, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

func TestPlanValidate(t *testing.T) {
	net, _ := mesh(2, 2, 1)
	cases := []struct {
		name string
		plan func() Plan
	}{
		{"router out of range", func() Plan {
			var p Plan
			p.KillLink(99, noc.PortEast, 0)
			return p
		}},
		{"unconnected port", func() Plan {
			var p Plan
			// Router 0 is the NW corner: no west neighbor.
			p.KillLink(0, noc.PortWest, 0)
			return p
		}},
		{"outage ends before start", func() Plan {
			var p Plan
			p.Outage(0, noc.PortEast, 30, 10)
			return p
		}},
		{"negative start", func() Plan {
			var p Plan
			p.KillLink(0, noc.PortEast, -5)
			return p
		}},
		{"freeze ends before start", func() Plan {
			var p Plan
			p.FreezeRouter(1, 20, 5)
			return p
		}},
	}
	for _, tc := range cases {
		if err := tc.plan().Validate(net); err == nil {
			t.Errorf("%s: Validate accepted invalid plan", tc.name)
		}
	}
	var ok Plan
	ok.KillLink(0, noc.PortEast, 10)
	ok.Outage(1, noc.PortWest, 5, 25)
	ok.FreezeRouter(3, 10, 0)
	if err := ok.Validate(net); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if _, err := Attach(net, Config{Plan: func() Plan {
		var p Plan
		p.KillLink(99, noc.PortEast, 0)
		return p
	}()}); err == nil {
		t.Error("Attach accepted invalid plan")
	}
	if _, err := Attach(net, Config{Hazard: Hazard{Rate: 0.5}}); err == nil {
		t.Error("Attach accepted hazard without RNG")
	}
	if _, err := Attach(net, Config{Hazard: Hazard{Rate: 2}}); err == nil {
		t.Error("Attach accepted hazard rate > 1")
	}
}

// TestRouterFreezeEvent checks freeze scheduling end to end through the
// injector.
func TestRouterFreezeEvent(t *testing.T) {
	net, cores := mesh(2, 1, 1)
	var plan Plan
	plan.FreezeRouter(0, 1, 40)
	inj, err := Attach(net, Config{Plan: plan})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	cores[0].Inject(&noc.Message{ID: 1, Dst: cores[1].ID, SizeFlits: 1})
	net.Run(30)
	if net.Stats().Delivered != 0 {
		t.Fatal("frozen router forwarded a message")
	}
	net.Run(30)
	net.Drain(100)
	if net.Stats().Delivered != 1 {
		t.Fatalf("delivered %d after thaw, want 1", net.Stats().Delivered)
	}
	if fs := inj.Stats(); fs.RouterFreezes != 1 || fs.FrozenRouters != 0 {
		t.Fatalf("freezes=%d frozen-now=%d, want 1/0", fs.RouterFreezes, fs.FrozenRouters)
	}
}
