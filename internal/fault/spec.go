package fault

import (
	"fmt"
	"math"
	"math/rand"

	"mlnoc/internal/noc"
)

// Link identifies a directed link by its upstream router and output port. In
// undirected contexts (MeshLinks, the hazard process) links are canonicalized
// to their east- or south-facing direction.
type Link struct {
	Router int
	Port   noc.PortID
}

// String implements fmt.Stringer.
func (l Link) String() string { return fmt.Sprintf("router#%d.%s", l.Router, l.Port) }

// MeshLinks enumerates the undirected router-to-router mesh links of the
// network in canonical form (east and south ports only), in deterministic
// order: ascending router ID, east before south.
func MeshLinks(net *noc.Network) []Link {
	var links []Link
	for _, r := range net.Routers() {
		if r.Neighbor(noc.PortEast) != nil {
			links = append(links, Link{Router: r.ID(), Port: noc.PortEast})
		}
		if r.Neighbor(noc.PortSouth) != nil {
			links = append(links, Link{Router: r.ID(), Port: noc.PortSouth})
		}
	}
	return links
}

// RandomLinkKills builds a plan killing approximately fraction of the mesh's
// undirected links at cycle at, sampling without replacement from rng. The
// selection is connectivity-preserving: a candidate whose removal would
// disconnect the router graph is skipped, so every destination stays
// reachable for a table-rebuilding router and request/response protocols
// retain liveness. When preserving connectivity leaves fewer than the
// requested number of kills, the plan holds as many as possible.
func RandomLinkKills(net *noc.Network, fraction float64, at int64, rng *rand.Rand) (Plan, error) {
	if fraction < 0 || fraction > 1 {
		return Plan{}, fmt.Errorf("fault: kill fraction %v outside [0,1]", fraction)
	}
	if at < 0 {
		return Plan{}, fmt.Errorf("fault: negative kill cycle %d", at)
	}
	if rng == nil {
		return Plan{}, fmt.Errorf("fault: RandomLinkKills requires an explicit RNG")
	}
	links := MeshLinks(net)
	target := int(math.Round(fraction * float64(len(links))))
	var plan Plan
	if target == 0 {
		return plan, nil
	}
	killed := make(map[Link]bool, target)
	for _, i := range rng.Perm(len(links)) {
		if len(killed) == target {
			break
		}
		l := links[i]
		killed[l] = true
		if !connectedWithout(net, links, killed) {
			delete(killed, l)
			continue
		}
		plan.KillLink(l.Router, l.Port, at)
	}
	return plan, nil
}

// connectedWithout reports whether the router graph stays connected using
// only the undirected links not in killed.
func connectedWithout(net *noc.Network, links []Link, killed map[Link]bool) bool {
	routers := net.Routers()
	if len(routers) == 0 {
		return true
	}
	adj := make([][]int, len(routers))
	for _, l := range links {
		if killed[l] {
			continue
		}
		u := l.Router
		v := routers[u].Neighbor(l.Port).ID()
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	seen := make([]bool, len(routers))
	queue := []int{0}
	seen[0] = true
	reached := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				reached++
				queue = append(queue, v)
			}
		}
	}
	return reached == len(routers)
}

// Spec is the one-struct description of a fault scenario used by the CLIs and
// experiment sweeps: an explicit plan, an optional random kill wave, and an
// optional stochastic hazard, all reproducible from Seed. The zero value is
// the all-healthy scenario (which still installs fault-aware routing, so
// equipping it must not change results — the regression tests pin this).
type Spec struct {
	// Plan is an explicit fault schedule, applied as given.
	Plan Plan
	// KillFraction, if positive, kills that fraction of the mesh's undirected
	// links at cycle KillAt, chosen connectivity-preservingly at random from
	// Seed.
	KillFraction float64
	// KillAt is the cycle the random kill wave lands.
	KillAt int64
	// Hazard optionally layers stochastic transient outages on top.
	Hazard Hazard
	// Seed seeds the RNG behind KillFraction and Hazard.
	Seed int64
}

// Empty reports whether the spec describes the all-healthy scenario.
func (s Spec) Empty() bool {
	return s.Plan.Empty() && s.KillFraction == 0 && s.Hazard.Rate == 0
}

// Equip installs the fault scenario on net: fault-aware table routing
// (rebuilt on every fault event) plus an Injector applying the spec's plan,
// random kill wave, and hazard. It returns the injector for stats and
// reports.
func (s Spec) Equip(net *noc.Network) (*Injector, error) {
	rng := rand.New(rand.NewSource(s.Seed))
	plan := s.Plan.Clone()
	if s.KillFraction != 0 {
		kills, err := RandomLinkKills(net, s.KillFraction, s.KillAt, rng)
		if err != nil {
			return nil, err
		}
		plan.Events = append(plan.Events, kills.Events...)
	}
	rt := NewTableRouting(net)
	net.SetRouting(rt)
	return Attach(net, Config{
		Plan:     plan,
		Hazard:   s.Hazard,
		RNG:      rng,
		OnChange: func(int64) { rt.Rebuild() },
	})
}
