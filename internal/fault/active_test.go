package fault

import (
	"testing"

	"mlnoc/internal/noc"
)

// TestActiveSetInvarianceDegraded pins the active-set stepping engine against
// the full-scan engine through the deepest fault stack in the repo: table
// routing degrades to up*/down* after mid-run link kills, messages carry
// RouteBits phase state, outages repair, and a router freezes. TableRouting
// is shard-safe, so the active path runs lazy unreachable eviction — any
// divergence in probe coverage or eviction order shows up as a trace or stats
// mismatch. Checked sequentially and with the two-phase fork engaged.
func TestActiveSetInvarianceDegraded(t *testing.T) {
	topologies := map[string]func() (*noc.Network, []*noc.Node){
		"mesh":  func() (*noc.Network, []*noc.Node) { return mesh(4, 4, 2) },
		"torus": func() (*noc.Network, []*noc.Node) { return torus(4, 4, 2) },
	}
	for tname, build := range topologies {
		t.Run(tname, func(t *testing.T) {
			run := func(shards int, fullScan bool) (*noc.Network, []string, Stats) {
				net, cores := build()
				var plan Plan
				plan.KillLink(net.RouterAt(1, 1).ID(), noc.PortEast, 100)
				plan.KillLink(net.RouterAt(2, 2).ID(), noc.PortSouth, 100)
				plan.Outage(net.RouterAt(0, 1).ID(), noc.PortEast, 150, 400)
				plan.FreezeRouter(net.RouterAt(3, 0).ID(), 200, 350)
				inj, err := (Spec{Plan: plan}).Equip(net)
				if err != nil {
					t.Fatalf("Equip: %v", err)
				}
				net.SetActiveStepping(!fullScan)
				net.SetShards(shards)
				net.SetShardMinActive(0)
				defer net.SetShards(1)
				trace := traceDeliveries(cores)
				drive(net, cores, 31, 800)
				return net, *trace, inj.Stats()
			}
			baseNet, baseTrace, baseStats := run(1, true)
			if baseStats.Reroutes == 0 || baseStats.Requeued == 0 {
				t.Fatalf("fault scenario is vacuous: %+v", baseStats)
			}
			if len(baseTrace) == 0 {
				t.Fatal("no deliveries recorded")
			}
			for _, k := range []int{1, 2, 4} {
				net, trace, stats := run(k, false)
				if len(trace) != len(baseTrace) {
					t.Fatalf("K=%d delivery counts diverge: %d vs %d", k, len(trace), len(baseTrace))
				}
				for i := range baseTrace {
					if trace[i] != baseTrace[i] {
						t.Fatalf("K=%d delivery %d diverges: %q vs %q", k, i, trace[i], baseTrace[i])
					}
				}
				if stats != baseStats {
					t.Fatalf("K=%d fault stats diverge: %+v vs %+v", k, stats, baseStats)
				}
				if net.Stats().Injected != baseNet.Stats().Injected ||
					net.Stats().Latency.Mean() != baseNet.Stats().Latency.Mean() {
					t.Fatalf("K=%d network stats diverge", k)
				}
			}
		})
	}
}
